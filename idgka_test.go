package idgka

import (
	"bytes"
	"fmt"
	"testing"
)

func buildPublicGroup(t testing.TB, n int) (*Authority, *Network, []*Member) {
	t.Helper()
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork()
	var members []*Member
	for i := 0; i < n; i++ {
		mb, err := auth.NewMember(fmt.Sprintf("node-%02d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(mb); err != nil {
			t.Fatal(err)
		}
		members = append(members, mb)
	}
	return auth, net, members
}

func TestPublicAPILifecycle(t *testing.T) {
	auth, net, members := buildPublicGroup(t, 4)
	if members[0].GroupKey() != nil {
		t.Fatal("key before establishment")
	}
	if err := Establish(net, members); err != nil {
		t.Fatalf("Establish: %v", err)
	}
	key := members[0].GroupKey()
	for _, mb := range members {
		if !bytes.Equal(mb.GroupKey(), key) {
			t.Fatalf("%s disagrees on key", mb.ID())
		}
		if got := mb.Roster(); len(got) != 4 {
			t.Fatalf("roster %v", got)
		}
	}

	// Join.
	dave, err := auth.NewMember("dave")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(dave); err != nil {
		t.Fatal(err)
	}
	if err := Join(net, members, dave); err != nil {
		t.Fatalf("Join: %v", err)
	}
	group := append(members, dave)
	if bytes.Equal(group[0].GroupKey(), key) {
		t.Fatal("join did not refresh key")
	}
	for _, mb := range group[1:] {
		if !bytes.Equal(mb.GroupKey(), group[0].GroupKey()) {
			t.Fatalf("%s disagrees after join", mb.ID())
		}
	}

	// Leave.
	if err := Leave(net, group, "node-02"); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	var remain []*Member
	for _, mb := range group {
		if mb.ID() != "node-02" {
			remain = append(remain, mb)
		}
	}
	for _, mb := range remain[1:] {
		if !bytes.Equal(mb.GroupKey(), remain[0].GroupKey()) {
			t.Fatalf("%s disagrees after leave", mb.ID())
		}
	}

	// Partition.
	if err := Partition(net, remain, []string{"node-03", "dave"}); err != nil {
		t.Fatalf("Partition: %v", err)
	}
}

func TestPublicAPIMerge(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork()
	mk := func(prefix string, k int) []*Member {
		sub := NewNetwork()
		var g []*Member
		for i := 0; i < k; i++ {
			mb, err := auth.NewMember(fmt.Sprintf("%s%d", prefix, i))
			if err != nil {
				t.Fatal(err)
			}
			if err := sub.Attach(mb); err != nil {
				t.Fatal(err)
			}
			g = append(g, mb)
		}
		if err := Establish(sub, g); err != nil {
			t.Fatal(err)
		}
		for _, mb := range g {
			if err := net.Attach(mb); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	a := mk("a", 3)
	b := mk("b", 2)
	if err := Merge(net, a, b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	all := append(a, b...)
	for _, mb := range all[1:] {
		if !bytes.Equal(mb.GroupKey(), all[0].GroupKey()) {
			t.Fatalf("%s disagrees after merge", mb.ID())
		}
	}
}

func TestPublicAPIReportsAndEnergy(t *testing.T) {
	_, net, members := buildPublicGroup(t, 3)
	if err := Establish(net, members); err != nil {
		t.Fatal(err)
	}
	r := members[1].Report()
	if r.Exp != 3 {
		t.Fatalf("Exp = %d, want 3", r.Exp)
	}
	model := DefaultEnergyModel()
	j := model.EnergyJ(r)
	if j <= 0 || j > 1 {
		t.Fatalf("per-member energy %.4g J implausible", j)
	}
	sensor := SensorEnergyModel()
	if sensor.EnergyJ(r) <= j {
		t.Fatal("sensor radio should cost more than WLAN")
	}
	members[1].ResetReport()
	if members[1].Report().Exp != 0 {
		t.Fatal("ResetReport failed")
	}
	msgs, _ := net.Totals()
	if msgs != 6 { // 2 per member
		t.Fatalf("network totals %d msgs, want 6", msgs)
	}
}

func TestEstablishValidation(t *testing.T) {
	_, net, members := buildPublicGroup(t, 2)
	if err := Establish(nil, members); err == nil {
		t.Fatal("nil network accepted")
	}
	if err := Establish(net, members[:1]); err == nil {
		t.Fatal("singleton accepted")
	}
}

func TestStrictConfigMember(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork()
	var members []*Member
	for i := 0; i < 4; i++ {
		mb, err := auth.NewMemberWithConfig(fmt.Sprintf("s%d", i), Config{StrictNonceRefresh: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(mb); err != nil {
			t.Fatal(err)
		}
		members = append(members, mb)
	}
	if err := Establish(net, members); err != nil {
		t.Fatal(err)
	}
	if err := Leave(net, members, "s2"); err != nil {
		t.Fatalf("strict leave: %v", err)
	}
}

// TestAcceleratedConfigMember checks the public acceleration knobs plumb
// through to the engine: a mixed group of accelerated and plain members
// establishes, re-keys and agrees (acceleration is mathematically
// transparent — and the shared generator table means plain members in
// the same process silently gain the faster-but-identical g^x path).
func TestAcceleratedConfigMember(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork()
	var members []*Member
	for i := 0; i < 4; i++ {
		cfg := Config{}
		if i%2 == 0 {
			cfg = Config{Precompute: true, VerifyWorkers: 4}
		}
		mb, err := auth.NewMemberWithConfig(fmt.Sprintf("x%d", i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(mb); err != nil {
			t.Fatal(err)
		}
		members = append(members, mb)
	}
	if err := Establish(net, members); err != nil {
		t.Fatal(err)
	}
	key := members[0].GroupKey()
	for _, mb := range members[1:] {
		if !bytes.Equal(mb.GroupKey(), key) {
			t.Fatalf("%s disagrees on the key", mb.ID())
		}
	}
	if err := Leave(net, members, "x1"); err != nil {
		t.Fatalf("accelerated leave: %v", err)
	}
}
