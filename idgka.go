// Package idgka is an implementation of the energy-efficient ID-based
// authenticated group key agreement protocols of Tan & Teo (IPDPS 2006)
// for wireless networks, together with every substrate the paper's
// evaluation depends on: the GQ identity-based signature scheme with batch
// verification, the Burmester-Desmedt ring protocol, certificate-based
// (DSA/ECDSA) and pairing-based (SOK) baselines, a broadcast network
// simulator with operation metering, and the StrongARM/radio energy model
// of the paper's Section 6.
//
// Quick start:
//
//	auth, _ := idgka.NewAuthority()            // the PKG (Setup)
//	net := idgka.NewNetwork()                  // shared broadcast medium
//	alice, _ := auth.NewMember("alice")        // Extract + member state
//	bob, _ := auth.NewMember("bob")
//	carol, _ := auth.NewMember("carol")
//	members := []*idgka.Member{alice, bob, carol}
//	for _, m := range members {
//	    net.Attach(m)
//	}
//	_ = idgka.Establish(net, members)          // 2-round authenticated GKA
//	key := alice.GroupKey()                    // == bob.GroupKey() ...
//
// Dynamic membership (the paper's Section 7):
//
//	idgka.Join(net, members, dave)
//	idgka.Leave(net, group, "bob")
//	idgka.Partition(net, group, []string{"carol", "erin"})
//	idgka.Merge(net, groupA, groupB)
//
// Every member carries an operation meter; price it with the paper's
// energy model:
//
//	model := idgka.DefaultEnergyModel()
//	joules := model.EnergyJ(alice.Report())
//
// The helpers above run the protocols lockstep over a shared Network.
// For real deployments each member can instead be driven event-by-event
// through a Session handle — the application owns the routing, members
// react only to their own inboxes, and out-of-order or concurrent
// sessions are tolerated (see Member.NewSession and internal/engine):
//
//	sess, _ := alice.NewSession("room-7", roster)
//	for !sess.Done() {
//	    for _, p := range sess.Outbox() {
//	        transportSend(p)
//	    }
//	    if err := sess.HandleMessage(transportRecv()); err != nil {
//	        return err // protocol failure; Done() is now true
//	    }
//	}
//	for _, p := range sess.Outbox() {
//	    transportSend(p) // the final reaction can commit AND emit
//	}
//
// Dynamic membership is event-driven too: each committed session stays
// registered under its id inside the member's machine, and the dynamic
// sessions name the group they re-key — one member can serve any number
// of independent groups concurrently with no cross-talk:
//
//	js, _ := alice.JoinSession("room-7/j1", "room-7", nil, "dave")   // members
//	jd, _ := dave.JoinSession("room-7/j1", "", roster, "dave")       // the joiner
//	ls, _ := alice.LeaveSession("room-7/l1", "room-7/j1", []string{"bob"})
//	cs, _ := alice.ConfirmSession("room-7/c1", "room-7/l1")
//
// Members and their Session handles are safe for concurrent use (see the
// Member doc for the exact contract); internal/serve builds a sharded
// multi-group host on top of them for processes that serve thousands of
// concurrent groups over one transport.
package idgka

import (
	"crypto/rand"
	"errors"
	"io"
	"sort"
	"sync"

	"idgka/internal/core"
	"idgka/internal/energy"
	"idgka/internal/engine"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/params"
	"idgka/internal/pki"
)

// Report is the operation-counter snapshot of one member: group
// exponentiations, signature operations, certificate handling, symmetric
// operations and radio traffic.
type Report = meter.Report

// EnergyModel prices Reports in Joules using the paper's per-operation
// cost tables.
type EnergyModel = energy.Model

// Config tunes member behaviour; see the field docs in internal/core.
type Config struct {
	// Rand overrides the randomness source (crypto/rand by default).
	Rand io.Reader
	// MaxRetries bounds the retransmission loop on verification failure.
	MaxRetries int
	// StrictNonceRefresh makes Leave/Partition survivors refresh their GQ
	// commitments instead of reusing them as the paper (unsafely)
	// specifies.
	StrictNonceRefresh bool
	// Precompute builds fixed-base tables for the group generator and the
	// member's identity key at creation, accelerating every keying round.
	// Mathematically transparent: keys, traffic and operation meters are
	// unchanged. The generator table attaches to the process-shared
	// parameter set, so once any member precomputes, every member of the
	// process gets the (bit-identical, faster) table path for g^x; the
	// identity-key table is per member.
	Precompute bool
	// VerifyWorkers bounds the worker pool that verifies independent
	// incoming contributions concurrently (0 or 1 = sequential, the
	// paper-exact path).
	VerifyWorkers int
}

// Authority is the paper's PKG: it owns the system parameters and master
// keys and extracts identity keys for members.
type Authority struct {
	pkg *pki.PKG
	set *params.Set
}

// NewAuthority creates an authority on the embedded production-size
// parameter set (1024-bit group, 160-bit exponents, 1024-bit GQ modulus).
// Deterministic and fast; for fresh parameters use GenerateAuthority.
func NewAuthority() (*Authority, error) {
	return newAuthority(params.Default())
}

// GenerateAuthority creates an authority with freshly generated parameters
// at the paper's sizes. This runs prime searches and takes seconds.
func GenerateAuthority(r io.Reader) (*Authority, error) {
	if r == nil {
		r = rand.Reader
	}
	set, err := params.Generate(r, params.SizeProduction)
	if err != nil {
		return nil, err
	}
	return newAuthority(set)
}

func newAuthority(set *params.Set) (*Authority, error) {
	p, err := pki.NewPKG(rand.Reader, set)
	if err != nil {
		return nil, err
	}
	return &Authority{pkg: p, set: set}, nil
}

// Member is one protocol participant, bound to an extracted identity key.
//
// A Member is safe for concurrent use: the event-driven Session API
// (HandleMessage, Outbox, Tick, Close, the Start*/New* constructors,
// HandlePacket) and the member accessors (GroupKey, Roster, DeadPeers,
// SetPeerDownHandler) may be called from any goroutine. One mutex
// serializes the member's protocol machine, so work on DIFFERENT members
// proceeds in parallel while each member's cryptography stays ordered.
// The lockstep helpers (Establish, Join, ...) are the one exception:
// they drive several members' machines from one goroutine and require
// exclusive use of every member they touch for the duration of the call.
type Member struct {
	inner *core.Member
	m     *meter.Meter
	// mu guards the protocol machine and all mutable member state below:
	// the session-handle registry, every Session handle's fields, and the
	// peer-down record. The peer-down handler is NOT invoked under mu —
	// it runs after the lock is released, so it may call back into the
	// member (e.g. to launch LeaveSession).
	mu sync.Mutex
	// sessions routes engine lifecycle events to the owning event-driven
	// Session handle (see session.go).
	//gkalint:guard mu
	sessions map[string]*Session
	//gkalint:guard -
	// retries is the per-flow retransmission budget the session runtime
	// enforces (Config.MaxRetries, defaulted); immutable after creation.
	retries int
	// dead records peers the medium reported down; onPeerDown is the
	// application's notification hook (see SetPeerDownHandler).
	//gkalint:guard mu
	dead map[string]bool
	//gkalint:callback
	onPeerDown func(peer string)
}

// NewMember extracts an identity key and builds a participant with default
// configuration.
func (a *Authority) NewMember(id string) (*Member, error) {
	return a.NewMemberWithConfig(id, Config{})
}

// NewMemberWithConfig extracts an identity key and builds a participant.
func (a *Authority) NewMemberWithConfig(id string, cfg Config) (*Member, error) {
	sk, err := a.pkg.ExtractGQ(id)
	if err != nil {
		return nil, err
	}
	m := meter.New()
	ecfg := core.Config{
		Set:                a.set.Public(),
		Rand:               cfg.Rand,
		MaxRetries:         cfg.MaxRetries,
		StrictNonceRefresh: cfg.StrictNonceRefresh,
		Accel: engine.AccelConfig{
			Precompute:    cfg.Precompute,
			VerifyWorkers: cfg.VerifyWorkers,
		},
	}
	inner, err := core.NewMember(ecfg, sk, m)
	if err != nil {
		return nil, err
	}
	return &Member{inner: inner, m: m, retries: ecfg.Retries()}, nil
}

// BatchVerifier is a host-level settlement queue for the GQ batch checks
// of the keying rounds; see the docs in internal/engine. Hosts that serve
// many concurrent groups (internal/serve) install one on their members to
// coalesce checks across groups into amortized combined verifications.
type BatchVerifier = engine.BatchVerifier

// SetBatchVerifier routes the member's per-round GQ batch checks through
// a host-level claim queue (nil restores in-line verification). Keys,
// verdicts, wire bytes and operation meters are unchanged; only where —
// and how amortized — the verification work runs differs. Safe to call
// concurrently with session activity; in-flight flows pick the change up
// at their next verification phase.
func (mb *Member) SetBatchVerifier(v BatchVerifier) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.inner.SetBatchVerifier(v)
}

// ID returns the member identity.
func (mb *Member) ID() string { return mb.inner.ID() }

// GroupKey returns the current group key as key material for a symmetric
// session (nil before a session is established).
func (mb *Member) GroupKey() []byte {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	k := mb.inner.Key()
	if k == nil {
		return nil
	}
	return k.Bytes()
}

// Roster returns the current ring order, or nil before establishment.
func (mb *Member) Roster() []string {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	s := mb.inner.Session()
	if s == nil {
		return nil
	}
	return append([]string(nil), s.Roster...)
}

// SetPeerDownHandler installs the peer-death notification hook: it fires
// the first time the medium reports each peer dead — a netsim.TypePeerDown
// control packet fed through any of the member's session handles (or
// HandlePacket), as the TCP transport and the async simulator inject on
// disconnect/crash. The handler runs on the goroutine that delivered the
// notice, AFTER the member lock is released, so it may call back into the
// member — the idiomatic reaction is to evict the peer from every shared
// group via LeaveSession, re-keying the survivors.
func (mb *Member) SetPeerDownHandler(f func(peer string)) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.onPeerDown = f
}

// DeadPeers returns the peers the medium has reported down, sorted.
func (mb *Member) DeadPeers() []string {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	out := make([]string, 0, len(mb.dead))
	for id := range mb.dead {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// notePeerDownLocked records a peer death exactly once; it returns the
// handler to fire once the member lock is released, or nil for repeat
// notices (and when no handler is installed).
func (mb *Member) notePeerDownLocked(peer string) func(string) {
	if mb.dead == nil {
		mb.dead = map[string]bool{}
	}
	if mb.dead[peer] {
		return nil
	}
	mb.dead[peer] = true
	return mb.onPeerDown
}

// Report snapshots the member's operation counters.
func (mb *Member) Report() Report { return mb.m.Report() }

// ResetReport clears the member's operation counters.
func (mb *Member) ResetReport() { mb.m.Reset() }

// Network is the shared broadcast medium members communicate over.
type Network struct {
	inner *netsim.Network
}

// NewNetwork creates an empty medium.
func NewNetwork() *Network { return &Network{inner: netsim.New()} }

// Attach registers a member on the medium.
func (n *Network) Attach(mb *Member) error {
	return n.inner.Register(mb.ID(), mb.m)
}

// Detach removes a member from the medium (e.g. after it leaves).
func (n *Network) Detach(id string) { n.inner.Unregister(id) }

// Totals reports medium-wide message and byte counts.
func (n *Network) Totals() (msgs int, bytes int64) { return n.inner.Totals() }

// unwrap converts the public slice to the internal one.
func unwrap(members []*Member) []*core.Member {
	out := make([]*core.Member, len(members))
	for i, m := range members {
		out[i] = m.inner
	}
	return out
}

// Establish runs the two-round authenticated group key agreement of the
// paper's Section 4 over the network. members[0] acts as the trusted
// controller U_1; the slice order is the ring order.
func Establish(n *Network, members []*Member) error {
	if n == nil || len(members) < 2 {
		return errors.New("idgka: Establish needs a network and >= 2 members")
	}
	return core.RunInitial(n.inner, unwrap(members))
}

// Join admits joiner into the established group (3 rounds; Section 7).
// The joiner must already be attached to the network.
func Join(n *Network, members []*Member, joiner *Member) error {
	return core.RunJoin(n.inner, unwrap(members), joiner.inner)
}

// Leave removes one member and re-keys the survivors (2 rounds).
func Leave(n *Network, members []*Member, leaver string) error {
	return core.RunLeave(n.inner, unwrap(members), leaver)
}

// Partition removes a set of members and re-keys the survivors (2 rounds).
func Partition(n *Network, members []*Member, leavers []string) error {
	return core.RunPartition(n.inner, unwrap(members), leavers)
}

// Merge fuses two established groups into one (3 rounds). All members of
// both groups must be attached to the same network.
func Merge(n *Network, groupA, groupB []*Member) error {
	return core.RunMerge(n.inner, unwrap(groupA), unwrap(groupB))
}

// DefaultEnergyModel returns the paper's Table 5 configuration: 133 MHz
// StrongARM with the Spectrum24 WLAN card.
func DefaultEnergyModel() EnergyModel { return energy.DefaultModel() }

// SensorEnergyModel returns StrongARM with the 100 kbps sensor-class
// transceiver (the other radio of Figure 1).
func SensorEnergyModel() EnergyModel {
	m := energy.DefaultModel()
	m.Radio = energy.Radio100kbps()
	return m
}
