// Command benchgate is the CI bench-regression gate: it compares a fresh
// `gkabench -accel -json` document against the committed baseline
// (BENCH_BASELINE.json) and exits non-zero when any tracked op has
// regressed beyond the allowed threshold.
//
//	benchgate -baseline BENCH_BASELINE.json -current bench.json
//	benchgate ... -max-regress 0.25     # the default threshold
//	benchgate ... -abs                  # additionally gate absolute ns
//
// The gated metric is each op's SPEEDUP ratio (serial ns / accelerated
// ns): ratios measure what the acceleration layer delivers and are far
// more stable across runner hardware than absolute nanoseconds, so the
// gate does not flake when CI moves to a different machine class. An op
// fails when
//
//	current.speedup < baseline.speedup × (1 - max-regress)
//
// and when a tracked op disappears from the current document (a silently
// dropped benchmark is itself a regression). With -abs the accelerated
// absolute time is gated by the same threshold — only meaningful when
// baseline and current ran on comparable hardware.
//
// Intentional regressions (e.g. a correctness fix that costs speed) are
// landed by either refreshing the baseline in the same PR or applying the
// `bench-reset` override label/commit-message marker that CI honours; see
// README.md "Performance".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"idgka/internal/experiments"
)

// benchDoc is the subset of the gkabench -json schema the gate reads.
type benchDoc struct {
	Schema     int                           `json:"schema"`
	GoVersion  string                        `json:"go_version"`
	GoMaxProcs int                           `json:"gomaxprocs"`
	Parallel   int                           `json:"parallel"`
	Ops        map[string]experiments.OpStat `json:"ops"`
}

func readDoc(path string) (benchDoc, error) {
	var d benchDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// gate compares the tracked ops and returns a rendered report plus the
// list of failures (empty = pass).
func gate(baseline, current benchDoc, maxRegress float64, abs bool) (string, []string) {
	var failures []string
	if len(baseline.Ops) == 0 {
		failures = append(failures, "baseline document tracks no ops (regenerate it with `gkabench -accel -json`)")
	}
	names := make([]string, 0, len(baseline.Ops))
	for name := range baseline.Ops {
		names = append(names, name)
	}
	sort.Strings(names)

	out := fmt.Sprintf("bench gate: baseline %d-proc/%d-worker vs current %d-proc/%d-worker, max regression %.0f%%\n",
		baseline.GoMaxProcs, baseline.Parallel, current.GoMaxProcs, current.Parallel, maxRegress*100)
	for _, name := range names {
		base := baseline.Ops[name]
		cur, ok := current.Ops[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: tracked op missing from current run", name))
			out += fmt.Sprintf("  FAIL %-26s missing from current run\n", name)
			continue
		}
		floor := base.Speedup * (1 - maxRegress)
		status := "ok  "
		switch {
		case cur.Speedup < floor:
			status = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s: speedup %.2fx below allowed floor %.2fx (baseline %.2fx)",
					name, cur.Speedup, floor, base.Speedup))
		case abs && cur.AccelNS > base.AccelNS*(1+maxRegress):
			status = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s: accelerated time %.0fns above allowed ceiling %.0fns (baseline %.0fns)",
					name, cur.AccelNS, base.AccelNS*(1+maxRegress), base.AccelNS))
		}
		out += fmt.Sprintf("  %s %-26s speedup %.2fx (baseline %.2fx, floor %.2fx)\n",
			status, name, cur.Speedup, base.Speedup, floor)
	}
	for name := range current.Ops {
		if _, ok := baseline.Ops[name]; !ok {
			out += fmt.Sprintf("  new  %-26s speedup %.2fx (not in baseline yet)\n", name, current.Ops[name].Speedup)
		}
	}
	return out, failures
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline document")
	currentPath := flag.String("current", "", "fresh gkabench -json document to gate")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional speedup regression per op")
	abs := flag.Bool("abs", false, "also gate absolute accelerated ns (same-machine comparisons only)")
	flag.Parse()
	if *currentPath == "" {
		log.Fatal("-current is required")
	}
	if *maxRegress < 0 || *maxRegress >= 1 {
		log.Fatal("-max-regress must be in [0, 1)")
	}
	baseline, err := readDoc(*baselinePath)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	current, err := readDoc(*currentPath)
	if err != nil {
		log.Fatalf("current: %v", err)
	}
	report, failures := gate(baseline, current, *maxRegress, *abs)
	fmt.Print(report)
	if len(failures) > 0 {
		fmt.Println("\nbench gate FAILED:")
		for _, f := range failures {
			fmt.Printf("  - %s\n", f)
		}
		fmt.Println("\nIf the regression is intentional, refresh BENCH_BASELINE.json from a CI run artifact")
		fmt.Println("or land the change with the `bench-reset` override (see README.md \"Performance\").")
		os.Exit(1)
	}
	fmt.Println("bench gate passed")
}
