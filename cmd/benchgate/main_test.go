package main

import (
	"strings"
	"testing"

	"idgka/internal/experiments"
)

func docWith(ops map[string]experiments.OpStat) benchDoc {
	return benchDoc{Schema: 2, GoMaxProcs: 4, Parallel: 4, Ops: ops}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	baseline := docWith(map[string]experiments.OpStat{
		"a": {SerialNS: 100, AccelNS: 25, Speedup: 4.0},
		"b": {SerialNS: 100, AccelNS: 50, Speedup: 2.0},
	})
	current := docWith(map[string]experiments.OpStat{
		"a": {SerialNS: 100, AccelNS: 30, Speedup: 3.3}, // -17.5%: within 25%
		"b": {SerialNS: 100, AccelNS: 40, Speedup: 2.5}, // improvement
	})
	report, failures := gate(baseline, current, 0.25, false)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v\n%s", failures, report)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	baseline := docWith(map[string]experiments.OpStat{
		"a": {SerialNS: 100, AccelNS: 25, Speedup: 4.0},
	})
	current := docWith(map[string]experiments.OpStat{
		"a": {SerialNS: 100, AccelNS: 40, Speedup: 2.5}, // -37.5%: beyond 25%
	})
	report, failures := gate(baseline, current, 0.25, false)
	if len(failures) != 1 {
		t.Fatalf("want 1 failure, got %v\n%s", failures, report)
	}
	if !strings.Contains(failures[0], "a:") {
		t.Fatalf("failure does not name the op: %q", failures[0])
	}
}

func TestGateFailsOnMissingOp(t *testing.T) {
	baseline := docWith(map[string]experiments.OpStat{
		"a": {Speedup: 4.0},
		"b": {Speedup: 2.0},
	})
	current := docWith(map[string]experiments.OpStat{
		"a": {Speedup: 4.0},
	})
	_, failures := gate(baseline, current, 0.25, false)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("dropped op not flagged: %v", failures)
	}
}

func TestGateFailsOnEmptyBaseline(t *testing.T) {
	_, failures := gate(docWith(nil), docWith(nil), 0.25, false)
	if len(failures) == 0 {
		t.Fatal("empty baseline passed")
	}
}

func TestGateNewOpsAreInformational(t *testing.T) {
	baseline := docWith(map[string]experiments.OpStat{"a": {Speedup: 3.0}})
	current := docWith(map[string]experiments.OpStat{
		"a": {Speedup: 3.0},
		"c": {Speedup: 1.1},
	})
	report, failures := gate(baseline, current, 0.25, false)
	if len(failures) != 0 {
		t.Fatalf("new op caused failure: %v", failures)
	}
	if !strings.Contains(report, "new") {
		t.Fatalf("new op not reported:\n%s", report)
	}
}

func TestGateAbsMode(t *testing.T) {
	baseline := docWith(map[string]experiments.OpStat{
		"a": {SerialNS: 100, AccelNS: 25, Speedup: 4.0},
	})
	current := docWith(map[string]experiments.OpStat{
		"a": {SerialNS: 160, AccelNS: 40, Speedup: 4.0}, // ratio held, abs +60%
	})
	if _, failures := gate(baseline, current, 0.25, false); len(failures) != 0 {
		t.Fatalf("ratio-only mode should pass: %v", failures)
	}
	if _, failures := gate(baseline, current, 0.25, true); len(failures) != 1 {
		t.Fatalf("abs mode should fail: %v", failures)
	}
}
