// Command gkademo walks a simulated MANET group through its whole
// lifecycle — initial authenticated key agreement, a join, a leave, a
// merge with a second group and a partition — printing the ring, the key
// fingerprints and the per-member energy bill after each event.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"

	"idgka"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gkademo: ")
	n := flag.Int("n", 5, "initial group size")
	flag.Parse()
	if *n < 2 {
		log.Fatal("-n must be >= 2")
	}

	auth, err := idgka.NewAuthority()
	if err != nil {
		log.Fatalf("authority: %v", err)
	}
	net := idgka.NewNetwork()
	model := idgka.DefaultEnergyModel()

	var group []*idgka.Member
	for i := 0; i < *n; i++ {
		mb, err := auth.NewMember(fmt.Sprintf("node-%02d", i+1))
		if err != nil {
			log.Fatalf("member: %v", err)
		}
		if err := net.Attach(mb); err != nil {
			log.Fatalf("attach: %v", err)
		}
		group = append(group, mb)
	}

	show := func(event string, members []*idgka.Member) {
		fmt.Printf("== %s ==\n", event)
		key := members[0].GroupKey()
		fp := sha256.Sum256(key)
		fmt.Printf("  ring: %v\n", members[0].Roster())
		fmt.Printf("  key fingerprint: %x\n", fp[:8])
		for _, mb := range members {
			r := mb.Report()
			fmt.Printf("  %-8s exp=%d sig(gen/ver)=%d/%d sym(enc/dec)=%d/%d tx/rx=%dB/%dB energy=%.2f mJ\n",
				mb.ID(), r.Exp, r.TotalSignGen(), r.TotalSignVer(), r.SymEnc, r.SymDec,
				r.BytesTx, r.BytesRx, model.EnergyJ(r)*1000)
		}
		fmt.Println()
	}

	// 1. Initial two-round authenticated GKA.
	if err := idgka.Establish(net, group); err != nil {
		log.Fatalf("establish: %v", err)
	}
	show("initial group key agreement", group)

	// 2. A new node joins.
	joiner, err := auth.NewMember("joiner-1")
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Attach(joiner); err != nil {
		log.Fatal(err)
	}
	for _, mb := range group {
		mb.ResetReport()
	}
	if err := idgka.Join(net, group, joiner); err != nil {
		log.Fatalf("join: %v", err)
	}
	group = append(group, joiner)
	show("join (3 rounds, 4 messages)", group)

	// 3. One member leaves.
	leaver := group[1].ID()
	for _, mb := range group {
		mb.ResetReport()
	}
	if err := idgka.Leave(net, group, leaver); err != nil {
		log.Fatalf("leave: %v", err)
	}
	var survivors []*idgka.Member
	for _, mb := range group {
		if mb.ID() != leaver {
			survivors = append(survivors, mb)
		}
	}
	net.Detach(leaver)
	group = survivors
	show(fmt.Sprintf("leave of %s (2 rounds)", leaver), group)

	// 4. Merge with a second group.
	sub := idgka.NewNetwork()
	var groupB []*idgka.Member
	for i := 0; i < 3; i++ {
		mb, err := auth.NewMember(fmt.Sprintf("peer-%02d", i+1))
		if err != nil {
			log.Fatal(err)
		}
		if err := sub.Attach(mb); err != nil {
			log.Fatal(err)
		}
		groupB = append(groupB, mb)
	}
	if err := idgka.Establish(sub, groupB); err != nil {
		log.Fatalf("group B establish: %v", err)
	}
	for _, mb := range groupB {
		if err := net.Attach(mb); err != nil {
			log.Fatal(err)
		}
	}
	for _, mb := range append(append([]*idgka.Member{}, group...), groupB...) {
		mb.ResetReport()
	}
	if err := idgka.Merge(net, group, groupB); err != nil {
		log.Fatalf("merge: %v", err)
	}
	group = append(group, groupB...)
	show("merge with 3-node group (3 rounds, 6 messages)", group)

	// 5. Partition: the merged peers drop out of range.
	var leavers []string
	for _, mb := range groupB {
		leavers = append(leavers, mb.ID())
	}
	for _, mb := range group {
		mb.ResetReport()
	}
	if err := idgka.Partition(net, group, leavers); err != nil {
		log.Fatalf("partition: %v", err)
	}
	survivors = nil
	out := map[string]bool{}
	for _, id := range leavers {
		out[id] = true
		net.Detach(id)
	}
	for _, mb := range group {
		if !out[mb.ID()] {
			survivors = append(survivors, mb)
		}
	}
	show(fmt.Sprintf("partition of %v (2 rounds)", leavers), survivors)

	msgs, bytes := net.Totals()
	fmt.Printf("medium totals since start: %d messages, %d bytes\n", msgs, bytes)
}
