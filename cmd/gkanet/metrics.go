package main

import (
	"net"
	"net/http"

	"idgka/internal/metrics"
)

// serveMetrics exposes the process-wide metrics registry (every counter,
// gauge and histogram the serve/transport/engine layers register — the
// reference table lives in docs/OPERATIONS.md) as an expvar-compatible
// JSON document on addr. It returns the bound address (useful with a
// ":0" port) and leaves the server running for the life of the process.
func serveMetrics(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/", metrics.Default.Handler())
	mux.Handle("/metrics", metrics.Default.Handler())
	srv := &http.Server{Handler: mux}
	//gkalint:bounded process-lifetime metrics listener; Serve returns when the listener closes at exit
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
