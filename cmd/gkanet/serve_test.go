package main

import (
	"testing"

	"idgka"
)

// TestServeMultiGroupOverTCP: the sharded serve layer hosts several
// groups (rotated rings over all nodes) concurrently over one real hub;
// every group converges on an agreed, confirmed key.
func TestServeMultiGroupOverTCP(t *testing.T) {
	const n, groups = 3, 4
	p := newProc(t, n)
	fps, err := p.serveScenario(p.ids, groups, "", "", idgka.Config{})
	if err != nil {
		t.Fatalf("serve scenario: %v", err)
	}
	if len(fps) != groups {
		t.Fatalf("got %d fingerprints, want %d", len(fps), groups)
	}
	// Rotated rings have distinct controllers (and fresh randomness):
	// no two groups may share a key.
	seen := map[[32]byte]bool{}
	for g, fp := range fps {
		if seen[fp] {
			t.Fatalf("group %d reuses another group's key", g)
		}
		seen[fp] = true
	}
}

// TestServeCrashRecoveryOverTCP: the victim dies mid-deployment; every
// hosted group independently evicts it and converges on a fresh
// confirmed key.
func TestServeCrashRecoveryOverTCP(t *testing.T) {
	for _, phase := range []string{phaseEstablished, phaseConfirmed} {
		t.Run(phase, func(t *testing.T) {
			const n, groups = 3, 3
			p := newProc(t, n)
			victim := p.ids[1]
			fps, err := p.serveScenario(p.ids, groups, victim, phase, idgka.Config{})
			if err != nil {
				t.Fatalf("serve crash scenario (%s): %v", phase, err)
			}
			if len(fps) != groups {
				t.Fatalf("got %d fingerprints, want %d", len(fps), groups)
			}
		})
	}
}
