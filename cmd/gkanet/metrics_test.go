package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"idgka/internal/metrics"
)

// TestMetricsEndpointServesRegistry boots the -metrics-addr endpoint and
// checks it serves the live default registry as valid expvar JSON, with
// the serving stack's instruments present (this binary links serve,
// transport and the engine, so their package-level metrics registered at
// import time).
func TestMetricsEndpointServesRegistry(t *testing.T) {
	addr, err := serveMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/", "/metrics"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("%s did not serve valid JSON: %v\n%s", path, err, body)
		}
		for _, want := range []string{
			"serve_starts_total", "serve_time_to_key_ms",
			"transport_sends_total", "engine_timeouts_total",
		} {
			if _, ok := doc[want]; !ok {
				t.Errorf("%s: metric %q missing from the endpoint", path, want)
			}
		}
	}
}

// metricTableRow matches one row of the docs/OPERATIONS.md metrics
// reference table: | `name` | type | ...
var metricTableRow = regexp.MustCompile("^\\| *`([a-z0-9_]+)` *\\|")

// TestMetricsMatchOperationsDoc is the docs meta-test: the metric names
// this process registers (the exact set gkanet -metrics-addr serves) and
// the reference table in docs/OPERATIONS.md must match one-for-one — a
// metric added without documentation, or documented without existing,
// fails here.
func TestMetricsMatchOperationsDoc(t *testing.T) {
	raw, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		if m := metricTableRow.FindStringSubmatch(line); m != nil {
			if documented[m[1]] {
				t.Errorf("docs/OPERATIONS.md documents %q twice", m[1])
			}
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no metrics reference table found in docs/OPERATIONS.md")
	}

	registered := metrics.Default.Names()
	for _, name := range registered {
		if !documented[name] {
			t.Errorf("metric %q is registered but missing from the docs/OPERATIONS.md table", name)
		}
		delete(documented, name)
	}
	stale := make([]string, 0, len(documented))
	for name := range documented {
		stale = append(stale, name)
	}
	sort.Strings(stale)
	for _, name := range stale {
		t.Errorf("docs/OPERATIONS.md documents %q but no code registers it", name)
	}
}
