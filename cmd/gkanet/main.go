// Command gkanet runs the authenticated group key agreement over real TCP
// sockets: a relay hub plus one TCP connection per node, exercising the
// same protocol code as the simulator (internal/core is generic over the
// netsim.Medium interface).
//
//	gkanet -n 5                 # hub + 5 nodes on loopback
//	gkanet -listen :7777        # choose the hub port
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"time"

	"idgka/internal/core"
	"idgka/internal/energy"
	"idgka/internal/meter"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
	"idgka/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gkanet: ")
	n := flag.Int("n", 5, "group size")
	listen := flag.String("listen", "127.0.0.1:0", "hub listen address")
	flag.Parse()
	if *n < 2 {
		log.Fatal("-n must be >= 2")
	}

	hub, err := transport.NewHub(*listen)
	if err != nil {
		log.Fatalf("hub: %v", err)
	}
	defer hub.Close()
	fmt.Printf("hub listening on %s\n", hub.Addr())

	router := transport.NewRouter(hub.Addr())
	defer router.Close()

	set := params.Default()
	cfg := core.Config{Set: set.Public()}
	var members []*core.Member
	for i := 0; i < *n; i++ {
		id := fmt.Sprintf("node-%02d", i+1)
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			log.Fatalf("extract: %v", err)
		}
		m := meter.New()
		mb, err := core.NewMember(cfg, sk, m)
		if err != nil {
			log.Fatal(err)
		}
		if err := router.Attach(id, m); err != nil {
			log.Fatalf("attach: %v", err)
		}
		members = append(members, mb)
		fmt.Printf("node %s connected over TCP\n", id)
	}

	start := time.Now()
	if err := core.RunInitial(router, members); err != nil {
		log.Fatalf("GKA: %v", err)
	}
	elapsed := time.Since(start)
	if err := core.ConfirmKey(router, members); err != nil {
		log.Fatalf("confirmation: %v", err)
	}
	fp := sha256.Sum256(members[0].Key().Bytes())
	fmt.Printf("\ngroup key agreed and confirmed over TCP in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("key fingerprint: %x\n", fp[:8])

	model := energy.DefaultModel()
	for _, mb := range members {
		r := mb.Meter().Report()
		fmt.Printf("  %-8s tx=%dB rx=%dB -> %.2f mJ (modelled)\n",
			mb.ID(), r.BytesTx, r.BytesRx, model.EnergyJ(r)*1000)
	}
}
