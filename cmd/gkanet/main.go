// Command gkanet runs the authenticated group key agreement over real TCP
// sockets: a relay hub plus one TCP connection per node, exercising the
// same protocol engine as the simulator.
//
// Two execution modes:
//
//   - event (default): every node runs as an independent event-driven
//     worker with its own engine.Machine, driven ONLY by its own inbox —
//     no global coordinator touches more than one member. This is the
//     deployment shape of internal/engine. With -dynamic (on by default)
//     the run continues past establishment: a fresh TCP node is admitted
//     by the Join protocol and a member is evicted by Leave, each re-key
//     explicitly confirmed, all still coordinator-free — every node
//     derives the next flow's parameters from its own committed session
//     state (the engine's per-session group registry).
//
//   - lockstep: the original driver (core.RunInitial) marches all members
//     through the rounds from one goroutine, as the paper's tables do.
//
//     gkanet -n 5                 # hub + 5 nodes: establish, join, evict
//     gkanet -dynamic=false -n 5  # establishment + confirmation only
//     gkanet -mode lockstep -n 5  # the legacy lockstep orchestrator
//     gkanet -listen :7777        # choose the hub port
//     gkanet -precompute -workers 4  # crypto acceleration (tables + pool)
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"idgka/internal/core"
	"idgka/internal/energy"
	"idgka/internal/engine"
	"idgka/internal/meter"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
	"idgka/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gkanet: ")
	n := flag.Int("n", 5, "group size")
	listen := flag.String("listen", "127.0.0.1:0", "hub listen address")
	mode := flag.String("mode", "event", "execution mode: event (per-node state machines) or lockstep (driver)")
	dynamic := flag.Bool("dynamic", true, "event mode: admit one joiner and evict one member after establishment")
	precompute := flag.Bool("precompute", false, "build fixed-base tables for the generator and identity keys")
	workers := flag.Int("workers", 0, "per-node verification worker pool size (0 or 1 = sequential)")
	flag.Parse()
	if *n < 2 {
		log.Fatal("-n must be >= 2")
	}
	if *mode != "event" && *mode != "lockstep" {
		log.Fatalf("unknown -mode %q", *mode)
	}

	hub, err := transport.NewHub(*listen)
	if err != nil {
		log.Fatalf("hub: %v", err)
	}
	defer hub.Close()
	fmt.Printf("hub listening on %s\n", hub.Addr())

	router := transport.NewRouter(hub.Addr())
	defer router.Close()

	set := params.Default()
	cfg := engine.Config{Set: set.Public(), Accel: engine.AccelConfig{
		Precompute:    *precompute,
		VerifyWorkers: *workers,
	}}
	total := *n
	if *mode == "event" && *dynamic {
		total = *n + 1 // the node admitted by the Join demo
	}
	ids := make([]string, total)
	meters := make([]*meter.Meter, total)
	keys := make([]*gq.PrivateKey, total)
	for i := 0; i < total; i++ {
		id := fmt.Sprintf("node-%02d", i+1)
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			log.Fatalf("extract: %v", err)
		}
		ids[i] = id
		keys[i] = sk
		meters[i] = meter.New()
		if err := router.Attach(id, meters[i]); err != nil {
			log.Fatalf("attach: %v", err)
		}
		fmt.Printf("node %s connected over TCP\n", id)
	}
	roster := ids[:*n]

	var fingerprint [32]byte
	start := time.Now()
	switch {
	case *mode == "lockstep":
		members := make([]*core.Member, *n)
		for i := range roster {
			mb, err := core.NewMember(cfg, keys[i], meters[i])
			if err != nil {
				log.Fatal(err)
			}
			members[i] = mb
		}
		if err := core.RunInitial(router, members); err != nil {
			log.Fatalf("GKA: %v", err)
		}
		if err := core.ConfirmKey(router, members); err != nil {
			log.Fatalf("confirmation: %v", err)
		}
		fingerprint = sha256.Sum256(members[0].Key().Bytes())
	case *dynamic:
		joiner := ids[total-1]
		evictee := roster[1]
		fps, err := runEventLifecycle(router, cfg, roster, keys, meters, joiner, evictee)
		if err != nil {
			log.Fatalf("GKA: %v", err)
		}
		if fingerprint, err = checkAgreement(ids, fps, evictee); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\njoin:  %s admitted over TCP, key rotated and confirmed\n", joiner)
		fmt.Printf("leave: %s evicted, survivors re-keyed and confirmed\n", evictee)
	default:
		fps, err := runEventDriven(router, cfg, roster, keys, meters)
		if err != nil {
			log.Fatalf("GKA: %v", err)
		}
		if fingerprint, err = checkAgreement(roster, fps, ""); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("\ngroup key agreed and confirmed over TCP in %v (%s mode)\n",
		elapsed.Round(time.Millisecond), *mode)
	fmt.Printf("key fingerprint: %x\n", fingerprint[:8])

	model := energy.DefaultModel()
	for i, id := range ids {
		r := meters[i].Report()
		fmt.Printf("  %-8s tx=%dB rx=%dB -> %.2f mJ (modelled)\n",
			id, r.BytesTx, r.BytesRx, model.EnergyJ(r)*1000)
	}
}

// checkAgreement verifies every participating node (skip excluded, which
// left before the final re-key) confirmed the same key, returning it.
func checkAgreement(ids []string, fps [][32]byte, skip string) ([32]byte, error) {
	var ref [32]byte
	have := false
	for i, id := range ids {
		if id == skip {
			continue
		}
		if !have {
			ref, have = fps[i], true
			continue
		}
		if fps[i] != ref {
			return ref, fmt.Errorf("node %s confirmed a different key", id)
		}
	}
	return ref, nil
}

// worker owns one node's protocol machine and drives it exclusively from
// its own TCP inbox — the per-node half of an event-driven deployment.
type worker struct {
	id     string
	mach   *engine.Machine
	router *transport.Router
}

func (w *worker) send(outs []engine.Outbound) error {
	return engine.SendAll(w.router, w.id, outs)
}

// runFlow starts one flow and pumps inbox deliveries until an event
// satisfies done. Every drained message is stepped (the machine buffers
// traffic of flows not started yet), so nothing a faster peer sent early
// is lost. Failures — including protocol-retryable ones — are fatal
// here: the paper's "all members retransmit" loop needs every member to
// agree on restarting an attempt, and without a coordinator that
// agreement is a protocol extension of its own (the engine's attempt
// numbering is the hook for it); over a reliable TCP hub there are no
// transient failures to retry.
func (w *worker) runFlow(start func() ([]engine.Outbound, []engine.Event, error),
	done func(ev engine.Event) bool) error {

	outs, evts, err := start()
	if err != nil {
		return err
	}
	if err := w.send(outs); err != nil {
		return err
	}
	met := false
	for _, ev := range evts {
		if ev.Kind == engine.EventFailed {
			return fmt.Errorf("%s: flow failed at start: %w", w.id, ev.Err)
		}
		if done(ev) {
			met = true
		}
	}
	for !met {
		msgs, err := w.router.RecvWait(w.id)
		if err != nil {
			return err
		}
		for _, msg := range msgs {
			outs, evts := w.mach.Step(msg)
			if err := w.send(outs); err != nil {
				return err
			}
			for _, ev := range evts {
				if ev.Kind == engine.EventFailed {
					return fmt.Errorf("%s: flow failed: %w", w.id, ev.Err)
				}
				if done(ev) {
					met = true
				}
			}
		}
	}
	return nil
}

// established matches the commit of one session id.
func established(sid string) func(engine.Event) bool {
	return func(ev engine.Event) bool {
		return ev.Kind == engine.EventEstablished && ev.SID == sid
	}
}

// confirmed matches the completion of one confirmation session.
func confirmed(sid string) func(engine.Event) bool {
	return func(ev engine.Event) bool {
		return ev.Kind == engine.EventConfirmed && ev.SID == sid
	}
}

// forEachNode runs one goroutine per node; the first failure tears the
// transport down so peers blocked in RecvWait wake with an error instead
// of hanging forever on messages a dead node will never send.
func forEachNode(router *transport.Router, cfg engine.Config, ids []string,
	keys []*gq.PrivateKey, meters []*meter.Meter,
	run func(i int, w *worker) error) error {

	var failOnce sync.Once
	var rootErr error
	fail := func(err error) {
		failOnce.Do(func() {
			rootErr = err
			router.Close()
		})
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			mach, err := engine.NewMachine(cfg, keys[i], meters[i])
			if err != nil {
				fail(fmt.Errorf("node %s: %w", id, err))
				return
			}
			if err := run(i, &worker{id: id, mach: mach, router: router}); err != nil {
				fail(fmt.Errorf("node %s: %w", id, err))
			}
		}(i, id)
	}
	wg.Wait()
	return rootErr
}

// runEventDriven establishes and confirms one group, every node driven
// exclusively by its own inbox.
func runEventDriven(router *transport.Router, cfg engine.Config, roster []string,
	keys []*gq.PrivateKey, meters []*meter.Meter) ([][32]byte, error) {

	const sidEstablish = "gkanet/establish"
	const sidConfirm = "gkanet/confirm"

	fps := make([][32]byte, len(roster))
	err := forEachNode(router, cfg, roster, keys, meters, func(i int, w *worker) error {
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartInitial(sidEstablish, roster)
		}, established(sidEstablish)); err != nil {
			return err
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartConfirm(sidConfirm, sidEstablish)
		}, confirmed(sidConfirm)); err != nil {
			return err
		}
		fps[i] = sha256.Sum256(w.mach.Session(sidEstablish).Key.Bytes())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fps, nil
}

// runEventLifecycle runs the full dynamic-membership demo with no
// coordinator: the founders establish and confirm; joiner is admitted by
// the three-round Join and the grown group confirms; then evictee is
// removed by Leave and the survivors confirm again. Each node starts
// every flow from its OWN machine's committed state — the Leave
// parameters (contracted ring, refresh set) are derived per node from
// the session registry, identically everywhere, which is exactly what
// the per-session base selection exists for.
func runEventLifecycle(router *transport.Router, cfg engine.Config, roster []string,
	keys []*gq.PrivateKey, meters []*meter.Meter, joiner, evictee string) ([][32]byte, error) {

	const (
		sidEstablish = "gkanet/establish"
		sidConfirm1  = "gkanet/confirm-1"
		sidJoin      = "gkanet/join"
		sidConfirm2  = "gkanet/confirm-2"
		sidLeave     = "gkanet/leave"
		sidConfirm3  = "gkanet/confirm-3"
	)

	ids := append(append([]string(nil), roster...), joiner)
	fps := make([][32]byte, len(ids))
	err := forEachNode(router, cfg, ids, keys, meters, func(i int, w *worker) error {
		founder := w.id != joiner
		if founder {
			if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
				return w.mach.StartInitial(sidEstablish, roster)
			}, established(sidEstablish)); err != nil {
				return err
			}
			if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
				return w.mach.StartConfirm(sidConfirm1, sidEstablish)
			}, confirmed(sidConfirm1)); err != nil {
				return err
			}
		}

		// Join: founders extend the group committed under sidEstablish;
		// the joiner itself has no base session.
		base := sidEstablish
		if !founder {
			base = ""
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartJoin(sidJoin, base, roster, joiner)
		}, established(sidJoin)); err != nil {
			return err
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartConfirm(sidConfirm2, sidJoin)
		}, confirmed(sidConfirm2)); err != nil {
			return err
		}
		if w.id == evictee {
			// The evicted node's last key is the joined group's.
			fps[i] = sha256.Sum256(w.mach.Session(sidJoin).Key.Bytes())
			return nil
		}

		// Leave: every survivor derives the contracted ring and refresh
		// set from its own committed session — no coordinator.
		newRoster, refresh, err := engine.PlanLeave(w.mach.Session(sidJoin), []string{evictee})
		if err != nil {
			return err
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartPartition(sidLeave, sidJoin, newRoster, refresh)
		}, established(sidLeave)); err != nil {
			return err
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartConfirm(sidConfirm3, sidLeave)
		}, confirmed(sidConfirm3)); err != nil {
			return err
		}
		fps[i] = sha256.Sum256(w.mach.Session(sidLeave).Key.Bytes())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fps, nil
}
