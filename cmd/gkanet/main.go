// Command gkanet runs the authenticated group key agreement over real TCP
// sockets: a relay hub plus one TCP connection per node, exercising the
// same protocol engine as the simulator.
//
// Two execution modes:
//
//   - event (default): every node runs as an independent event-driven
//     worker with its own engine.Machine, driven ONLY by its own inbox —
//     no global coordinator touches more than one member. This is the
//     deployment shape of internal/engine. With -dynamic (on by default)
//     the run continues past establishment: a fresh TCP node is admitted
//     by the Join protocol and a member is evicted by Leave, each re-key
//     explicitly confirmed, all still coordinator-free — every node
//     derives the next flow's parameters from its own committed session
//     state (the engine's per-session group registry).
//
//   - lockstep: the original driver (core.RunInitial) marches all members
//     through the rounds from one goroutine, as the paper's tables do.
//
// Fault scenarios (-crash) kill one node at a chosen phase and let the
// survivors recover without a coordinator: the hub's peer-down frame wakes
// them, they evict the dead node with the paper's Leave protocol and
// converge on (and confirm) a fresh key. Sends are bounded by
// -send-timeout, so a wedged transport fails fast instead of hanging.
//
// With -serve the process instead hosts MANY groups at once through the
// sharded internal/serve layer: every group is a rotated ring over the -n
// nodes, all groups establish and confirm concurrently over one hub, and
// the host's bounded worker pool (not a goroutine per node or session)
// drives every member. -crash composes: each hosted group independently
// evicts the victim and re-keys, cross-checked per group.
//
// A run can span several OS processes: one process starts the hub, the
// others dial it with -connect, and -own names the subset of nodes each
// process drives. A ready-barrier over the hub synchronises the processes
// before the first protocol round.
//
//	gkanet -n 5                     # hub + 5 nodes: establish, join, evict
//	gkanet -dynamic=false -n 5      # establishment + confirmation only
//	gkanet -mode lockstep -n 5      # the legacy lockstep orchestrator
//	gkanet -listen :7777            # choose the hub port
//	gkanet -precompute -workers 4   # crypto acceleration (tables + pool)
//	gkanet -n 5 -crash node-02@confirmed   # kill node-02, survivors re-key
//	gkanet -n 4 -serve -groups 16          # host 16 concurrent groups
//	gkanet -n 4 -serve -groups 8 -crash node-02@established
//	gkanet -n 4 -own node-01,node-02 &     # multi-process: hub + 2 nodes,
//	gkanet -n 4 -connect HOST:PORT -own node-03,node-04 -crash node-04@confirmed
package main

import (
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"log"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"idgka"
	"idgka/internal/core"
	"idgka/internal/energy"
	"idgka/internal/engine"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/params"
	"idgka/internal/serve"
	"idgka/internal/sigs/gq"
	"idgka/internal/transport"
)

// Crash phases: the point in the run after which the victim's process
// dies. "established" kills it after the initial key commit but BEFORE the
// confirmation round (survivors wedge mid-confirm and must abort it on the
// peer-down event); "confirmed" kills it after confirmation completed.
const (
	phaseEstablished = "established"
	phaseConfirmed   = "confirmed"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gkanet: ")
	n := flag.Int("n", 5, "group size")
	listen := flag.String("listen", "127.0.0.1:0", "hub listen address")
	connect := flag.String("connect", "", "dial an existing hub at this address instead of starting one (multi-process runs)")
	own := flag.String("own", "", "comma-separated node ids this process drives (default: all; multi-process runs)")
	mode := flag.String("mode", "event", "execution mode: event (per-node state machines) or lockstep (driver)")
	dynamic := flag.Bool("dynamic", true, "event mode: admit one joiner and evict one member after establishment")
	crash := flag.String("crash", "", "event mode fault scenario: <id>@<phase> kills node id after phase (established|confirmed); survivors evict it via Leave and re-key")
	serveMode := flag.Bool("serve", false, "host -groups concurrent groups (rotated rings over the -n nodes) through the sharded internal/serve layer; composes with -crash")
	groups := flag.Int("groups", 8, "group count for -serve")
	sendTimeout := flag.Duration("send-timeout", 15*time.Second, "per-delivery deadline on every Broadcast/Send (0 = unbounded)")
	precompute := flag.Bool("precompute", false, "build fixed-base tables for the generator and identity keys")
	workers := flag.Int("workers", 0, "per-node verification worker pool size (0 or 1 = sequential)")
	metricsAddr := flag.String("metrics-addr", "", "serve the process metrics registry as expvar-compatible JSON on this HTTP address (e.g. 127.0.0.1:9100)")
	flag.Parse()
	if *n < 2 {
		log.Fatal("-n must be >= 2")
	}
	if *mode != "event" && *mode != "lockstep" {
		log.Fatalf("unknown -mode %q", *mode)
	}
	victim, phase, err := parseCrash(*crash)
	if err != nil {
		log.Fatal(err)
	}
	if victim != "" && *mode != "event" {
		log.Fatal("-crash needs -mode event")
	}
	if *serveMode {
		if *mode != "event" {
			log.Fatal("-serve needs -mode event")
		}
		if *connect != "" || *own != "" {
			log.Fatal("-serve is single-process (no -connect/-own)")
		}
		if *groups < 1 {
			log.Fatal("-groups must be >= 1")
		}
		if victim != "" && *n < 3 {
			log.Fatal("-serve -crash needs -n >= 3 (survivor rings must keep >= 2 members)")
		}
	}

	if *metricsAddr != "" {
		addr, err := serveMetrics(*metricsAddr)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("metrics on http://%s/\n", addr)
	}

	var router *transport.Router
	if *connect != "" {
		router = transport.NewRouter(*connect)
		fmt.Printf("joining hub at %s\n", *connect)
	} else {
		hub, err := transport.NewHub(*listen)
		if err != nil {
			log.Fatalf("hub: %v", err)
		}
		defer hub.Close()
		fmt.Printf("hub listening on %s\n", hub.Addr())
		router = transport.NewRouter(hub.Addr())
	}
	defer router.Close()
	router.SetSendTimeout(*sendTimeout)

	set := params.Default()
	cfg := engine.Config{Set: set.Public(), Accel: engine.AccelConfig{
		Precompute:    *precompute,
		VerifyWorkers: *workers,
	}}
	total := *n
	if *mode == "event" && *dynamic && victim == "" && !*serveMode {
		total = *n + 1 // the node admitted by the Join demo
	}
	ids := make([]string, total)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%02d", i+1)
	}
	if victim != "" && !slices.Contains(ids, victim) {
		log.Fatalf("-crash victim %q is not one of %v", victim, ids)
	}
	ownIDs, err := parseOwn(*own, ids)
	if err != nil {
		log.Fatal(err)
	}
	p := &proc{router: router, cfg: cfg, ids: ownIDs}
	if len(ownIDs) < total || *connect != "" {
		// Multi-process run: synchronise on a ready-barrier before the
		// first protocol round, so no broadcast misses a late process.
		p.barrierTotal = total
	}
	p.keys = make([]*gq.PrivateKey, len(ownIDs))
	p.meters = make([]*meter.Meter, len(ownIDs))
	for i, id := range ownIDs {
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			log.Fatalf("extract: %v", err)
		}
		p.keys[i] = sk
		p.meters[i] = meter.New()
		if err := router.Attach(id, p.meters[i]); err != nil {
			log.Fatalf("attach: %v", err)
		}
		fmt.Printf("node %s connected over TCP\n", id)
	}
	roster := ids[:*n]

	var fingerprint [32]byte
	start := time.Now()
	switch {
	case *serveMode:
		fps, err := p.serveScenario(roster, *groups, victim, phase, idgka.Config{
			Precompute:    *precompute,
			VerifyWorkers: *workers,
		})
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		elapsed := time.Since(start)
		for g, fp := range fps {
			fmt.Printf("group g%02d key fingerprint: %x\n", g, fp[:8])
		}
		if victim != "" {
			fmt.Printf("\ncrash: %s killed at phase %q; survivors evicted it per group and re-keyed\n", victim, phase)
		}
		fmt.Printf("serve: %d groups converged on confirmed keys over TCP in %v (%d nodes)\n",
			len(fps), elapsed.Round(time.Millisecond), *n)
		for i, id := range p.ids {
			r := p.meters[i].Report()
			fmt.Printf("  %-8s tx=%dB rx=%dB\n", id, r.BytesTx, r.BytesRx)
		}
		return
	case *mode == "lockstep":
		if p.barrierTotal > 0 {
			log.Fatal("-connect/-own need -mode event")
		}
		members := make([]*core.Member, *n)
		for i := range roster {
			mb, err := core.NewMember(cfg, p.keys[i], p.meters[i])
			if err != nil {
				log.Fatal(err)
			}
			members[i] = mb
		}
		if err := core.RunInitial(router, members); err != nil {
			log.Fatalf("GKA: %v", err)
		}
		if err := core.ConfirmKey(router, members); err != nil {
			log.Fatalf("confirmation: %v", err)
		}
		fingerprint = sha256.Sum256(members[0].Key().Bytes())
	case victim != "":
		fps, err := p.crashScenario(roster, victim, phase)
		if err != nil {
			log.Fatalf("GKA: %v", err)
		}
		if fingerprint, err = checkAgreement(p.ids, fps, victim); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncrash: %s killed at phase %q; survivors detected the death,\n", victim, phase)
		fmt.Printf("       evicted it via Leave and confirmed a fresh key\n")
	case *dynamic:
		joiner := ids[total-1]
		evictee := roster[1]
		fps, err := p.lifecycle(roster, joiner, evictee)
		if err != nil {
			log.Fatalf("GKA: %v", err)
		}
		if fingerprint, err = checkAgreement(p.ids, fps, evictee); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\njoin:  %s admitted over TCP, key rotated and confirmed\n", joiner)
		fmt.Printf("leave: %s evicted, survivors re-keyed and confirmed\n", evictee)
	default:
		fps, err := p.eventDriven(roster)
		if err != nil {
			log.Fatalf("GKA: %v", err)
		}
		if fingerprint, err = checkAgreement(p.ids, fps, ""); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("\ngroup key agreed and confirmed over TCP in %v (%s mode)\n",
		elapsed.Round(time.Millisecond), *mode)
	fmt.Printf("key fingerprint: %x\n", fingerprint[:8])

	model := energy.DefaultModel()
	for i, id := range p.ids {
		r := p.meters[i].Report()
		fmt.Printf("  %-8s tx=%dB rx=%dB -> %.2f mJ (modelled)\n",
			id, r.BytesTx, r.BytesRx, model.EnergyJ(r)*1000)
	}
}

// parseCrash splits an -crash value into victim id and phase.
func parseCrash(v string) (victim, phase string, err error) {
	if v == "" {
		return "", "", nil
	}
	at := strings.LastIndex(v, "@")
	if at <= 0 || at == len(v)-1 {
		return "", "", fmt.Errorf("-crash wants <id>@<phase>, got %q", v)
	}
	victim, phase = v[:at], v[at+1:]
	if phase != phaseEstablished && phase != phaseConfirmed {
		return "", "", fmt.Errorf("-crash phase %q not one of %s|%s", phase, phaseEstablished, phaseConfirmed)
	}
	return victim, phase, nil
}

// parseOwn resolves the -own subset against the deployment's ids.
func parseOwn(v string, ids []string) ([]string, error) {
	if v == "" {
		return ids, nil
	}
	var out []string
	for _, id := range strings.Split(v, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if !slices.Contains(ids, id) {
			return nil, fmt.Errorf("-own id %q is not one of %v", id, ids)
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return nil, errors.New("-own named no nodes")
	}
	sort.Strings(out)
	return out, nil
}

// checkAgreement verifies every participating node (skip excluded, which
// left before the final re-key) confirmed the same key, returning it.
func checkAgreement(ids []string, fps [][32]byte, skip string) ([32]byte, error) {
	var ref [32]byte
	have := false
	for i, id := range ids {
		if id == skip {
			continue
		}
		if !have {
			ref, have = fps[i], true
			continue
		}
		if fps[i] != ref {
			return ref, fmt.Errorf("node %s confirmed a different key", id)
		}
	}
	return ref, nil
}

// proc is the slice of an event-driven deployment one OS process drives:
// the nodes it owns (with their keys and meters, parallel slices), the
// shared router, and — for multi-process runs — the total node count the
// ready-barrier waits for (0 = single process, no barrier).
type proc struct {
	router       *transport.Router
	cfg          engine.Config
	ids          []string
	keys         []*gq.PrivateKey
	meters       []*meter.Meter
	barrierTotal int
}

// worker owns one node's protocol machine and drives it exclusively from
// its own TCP inbox — the per-node half of an event-driven deployment.
type worker struct {
	id     string
	mach   *engine.Machine
	router *transport.Router
	// dead accumulates peers the transport reported down (EventPeerDown).
	dead map[string]bool
	// stash holds messages drained outside a flow (by the ready-barrier)
	// for replay when the next flow runs.
	stash []netsim.Message
}

// send routes outbound messages. A recipient dying mid-delivery is not
// fatal: the hub settles the send with a *PeerDownError once every
// SURVIVING recipient has the message, so the worker records the death
// (exactly like a peer-down frame) and carries on — the eviction logic
// deals with the dead node.
func (w *worker) send(outs []engine.Outbound) error {
	for _, o := range outs {
		var err error
		if o.To == "" {
			err = w.router.BroadcastState(w.id, o.Type, o.Payload, o.StateLen)
		} else {
			err = w.router.SendState(w.id, o.To, o.Type, o.Payload, o.StateLen)
		}
		var pd *transport.PeerDownError
		if errors.As(err, &pd) {
			w.dead[pd.Peer] = true
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

const typeReady = "gkanet/ready"

// barrier synchronises a multi-process run: every node broadcasts a ready
// beacon until it has seen one from every other node, then announces
// readiness once more (everyone is attached by then, so nobody can miss
// it) and proceeds. Non-beacon traffic drained along the way is stashed
// for the first flow. Beacons carry a nil payload on purpose: the energy
// model prices bytes, so the synchronisation traffic cannot perturb the
// printed per-node byte/energy accounting.
func (w *worker) barrier(total int, timeout time.Duration) error {
	seen := map[string]bool{w.id: true}
	deadline := time.Now().Add(timeout)
	for {
		msgs, err := w.router.Recv(w.id)
		if err != nil {
			return err
		}
		for _, m := range msgs {
			if m.Type == typeReady {
				seen[m.From] = true
			} else {
				w.stash = append(w.stash, m)
			}
		}
		if len(seen) >= total {
			return w.router.Broadcast(w.id, typeReady, nil)
		}
		if err := w.router.Broadcast(w.id, typeReady, nil); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s: ready barrier timed out with %d/%d nodes", w.id, len(seen), total)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// peerDownAbort reports a flow abandoned because a participant died.
type peerDownAbort struct{ peer string }

func (e *peerDownAbort) Error() string {
	return fmt.Sprintf("flow aborted: peer %s is down", e.peer)
}

// flowRun tracks one drive of a flow: the completion predicate and
// whether it has been met.
type flowRun struct {
	w    *worker
	done func(engine.Event) bool
	met  bool
}

// consume folds a batch of lifecycle events into the run: peer deaths are
// recorded on the worker, failures are fatal (see drive's doc for why),
// and the completion predicate flips met.
func (fr *flowRun) consume(evts []engine.Event) error {
	for _, ev := range evts {
		switch {
		case ev.Kind == engine.EventPeerDown:
			fr.w.dead[ev.Peer] = true
		case ev.Kind == engine.EventFailed:
			return fmt.Errorf("%s: flow failed: %w", fr.w.id, ev.Err)
		case fr.done != nil && fr.done(ev):
			fr.met = true
		}
	}
	return nil
}

// handle steps a batch of delivered messages through the machine,
// transmitting reactions and consuming events.
func (fr *flowRun) handle(msgs []netsim.Message) error {
	for _, msg := range msgs {
		outs, evts := fr.w.mach.Step(msg)
		if err := fr.w.send(outs); err != nil {
			return err
		}
		if err := fr.consume(evts); err != nil {
			return err
		}
	}
	return nil
}

// deadOf returns a dead member of watch (excluding this node), or "".
func (w *worker) deadOf(watch []string) string {
	for _, id := range watch {
		if id != w.id && w.dead[id] {
			return id
		}
	}
	return ""
}

// runFlow starts one flow and pumps inbox deliveries until an event
// satisfies done. Every drained message is stepped (the machine buffers
// traffic of flows not started yet), so nothing a faster peer sent early
// is lost. watch is the flow's roster: if any OTHER watched member is (or
// becomes) dead, the flow is abandoned with a *peerDownAbort instead of
// waiting forever for messages the dead node will never send — the caller
// aborts the session and re-keys via Leave. Protocol failures stay fatal
// here: the paper's "all members retransmit" loop needs every member to
// agree on restarting an attempt, and over a reliable TCP hub there are
// no transient failures to retry (the idgka.Session Tick runtime
// implements that loop for applications that need it).
func (w *worker) runFlow(start func() ([]engine.Outbound, []engine.Event, error),
	done func(ev engine.Event) bool, watch []string) error {

	fr := &flowRun{w: w, done: done}
	outs, evts, err := start()
	if err != nil {
		return err
	}
	if err := w.send(outs); err != nil {
		return err
	}
	if err := fr.consume(evts); err != nil {
		return err
	}
	stash := w.stash
	w.stash = nil
	if err := fr.handle(stash); err != nil {
		return err
	}
	for !fr.met {
		if p := w.deadOf(watch); p != "" {
			return &peerDownAbort{peer: p}
		}
		msgs, err := w.router.RecvWait(w.id)
		if err != nil {
			return err
		}
		if err := fr.handle(msgs); err != nil {
			return err
		}
	}
	return nil
}

// awaitPeerDown pumps the inbox until the transport reports peer dead.
func (w *worker) awaitPeerDown(peer string) error {
	fr := &flowRun{w: w}
	for !w.dead[peer] {
		msgs, err := w.router.RecvWait(w.id)
		if err != nil {
			return err
		}
		if err := fr.handle(msgs); err != nil {
			return err
		}
	}
	return nil
}

// established matches the commit of one session id.
func established(sid string) func(engine.Event) bool {
	return func(ev engine.Event) bool {
		return ev.Kind == engine.EventEstablished && ev.SID == sid
	}
}

// confirmed matches the completion of one confirmation session.
func confirmed(sid string) func(engine.Event) bool {
	return func(ev engine.Event) bool {
		return ev.Kind == engine.EventConfirmed && ev.SID == sid
	}
}

// forEach runs one goroutine per owned node; the first failure tears the
// transport down so peers blocked in RecvWait wake with an error instead
// of hanging forever on messages a dead node will never send.
func (p *proc) forEach(run func(i int, w *worker) error) error {
	var failOnce sync.Once
	var rootErr error
	fail := func(err error) {
		failOnce.Do(func() {
			rootErr = err
			p.router.Close()
		})
	}
	var wg sync.WaitGroup
	for i, id := range p.ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			mach, err := engine.NewMachine(p.cfg, p.keys[i], p.meters[i])
			if err != nil {
				fail(fmt.Errorf("node %s: %w", id, err))
				return
			}
			w := &worker{id: id, mach: mach, router: p.router, dead: map[string]bool{}}
			if p.barrierTotal > 0 {
				if err := w.barrier(p.barrierTotal, time.Minute); err != nil {
					fail(fmt.Errorf("node %s: %w", id, err))
					return
				}
			}
			if err := run(i, w); err != nil {
				fail(fmt.Errorf("node %s: %w", id, err))
			}
		}(i, id)
	}
	wg.Wait()
	return rootErr
}

// eventDriven establishes and confirms one group, every node driven
// exclusively by its own inbox.
func (p *proc) eventDriven(roster []string) ([][32]byte, error) {
	const sidEstablish = "gkanet/establish"
	const sidConfirm = "gkanet/confirm"

	fps := make([][32]byte, len(p.ids))
	err := p.forEach(func(i int, w *worker) error {
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartInitial(sidEstablish, roster)
		}, established(sidEstablish), roster); err != nil {
			return err
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartConfirm(sidConfirm, sidEstablish)
		}, confirmed(sidConfirm), roster); err != nil {
			return err
		}
		fps[i] = sha256.Sum256(w.mach.Session(sidEstablish).Key.Bytes())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fps, nil
}

// lifecycle runs the full dynamic-membership demo with no coordinator:
// the founders establish and confirm; joiner is admitted by the
// three-round Join and the grown group confirms; then evictee is removed
// by Leave and the survivors confirm again. Each node starts every flow
// from its OWN machine's committed state — the Leave parameters
// (contracted ring, refresh set) are derived per node from the session
// registry, identically everywhere, which is exactly what the per-session
// base selection exists for.
func (p *proc) lifecycle(roster []string, joiner, evictee string) ([][32]byte, error) {
	const (
		sidEstablish = "gkanet/establish"
		sidConfirm1  = "gkanet/confirm-1"
		sidJoin      = "gkanet/join"
		sidConfirm2  = "gkanet/confirm-2"
		sidLeave     = "gkanet/leave"
		sidConfirm3  = "gkanet/confirm-3"
	)

	joined := append(append([]string(nil), roster...), joiner)
	fps := make([][32]byte, len(p.ids))
	err := p.forEach(func(i int, w *worker) error {
		founder := w.id != joiner
		if founder {
			if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
				return w.mach.StartInitial(sidEstablish, roster)
			}, established(sidEstablish), roster); err != nil {
				return err
			}
			if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
				return w.mach.StartConfirm(sidConfirm1, sidEstablish)
			}, confirmed(sidConfirm1), roster); err != nil {
				return err
			}
		}

		// Join: founders extend the group committed under sidEstablish;
		// the joiner itself has no base session.
		base := sidEstablish
		if !founder {
			base = ""
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartJoin(sidJoin, base, roster, joiner)
		}, established(sidJoin), joined); err != nil {
			return err
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartConfirm(sidConfirm2, sidJoin)
		}, confirmed(sidConfirm2), joined); err != nil {
			return err
		}
		if w.id == evictee {
			// The evicted node's last key is the joined group's.
			fps[i] = sha256.Sum256(w.mach.Session(sidJoin).Key.Bytes())
			return nil
		}

		// Leave: every survivor derives the contracted ring and refresh
		// set from its own committed session — no coordinator.
		newRoster, refresh, err := engine.PlanLeave(w.mach.Session(sidJoin), []string{evictee})
		if err != nil {
			return err
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartPartition(sidLeave, sidJoin, newRoster, refresh)
		}, established(sidLeave), newRoster); err != nil {
			return err
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartConfirm(sidConfirm3, sidLeave)
		}, confirmed(sidConfirm3), newRoster); err != nil {
			return err
		}
		fps[i] = sha256.Sum256(w.mach.Session(sidLeave).Key.Bytes())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fps, nil
}

// serveScenario is the multi-group deployment: all -n nodes live in ONE
// process behind one serve.Host, every group is a rotated ring over the
// full node set (so controllers differ), and all groups establish and
// confirm concurrently over the shared TCP hub — the host's shard workers
// replace the goroutine-per-node drivers of the other scenarios. With a
// victim, the crash composes per group: the victim's connection dies, the
// hub's peer-down frames reach every hosted member, wedged confirmation
// runs are cancelled, and each group independently evicts the victim via
// Leave and confirms a fresh key. Returns the final per-group
// fingerprints (cross-checked across members).
func (p *proc) serveScenario(roster []string, groups int, victim, phase string, mcfg idgka.Config) ([][32]byte, error) {
	auth, err := idgka.NewAuthority()
	if err != nil {
		return nil, err
	}
	host := serve.NewHost(serve.Config{Deadline: 30 * time.Second}, func(from string, pkt idgka.Packet) error {
		var err error
		if pkt.To == "" {
			err = p.router.BroadcastState(from, pkt.Type, pkt.Payload, pkt.StateLen)
		} else {
			err = p.router.SendState(from, pkt.To, pkt.Type, pkt.Payload, pkt.StateLen)
		}
		var pd *transport.PeerDownError
		if errors.As(err, &pd) {
			// The message reached every SURVIVING recipient; the dead
			// peer is handled by the eviction flows.
			return nil
		}
		return err
	})
	defer host.Close()

	members := map[string]*idgka.Member{}
	for _, id := range roster {
		mb, err := auth.NewMemberWithConfig(id, mcfg)
		if err != nil {
			return nil, err
		}
		if err := host.AddMember(mb); err != nil {
			return nil, err
		}
		members[id] = mb
	}
	// Pumps: one per node, draining the router inbox into the host. They
	// exit when the router (or the node's attachment) goes down — the
	// caller's deferred router.Close, not this function, reaps them;
	// delivering into a closed host is a no-op.
	for _, id := range roster {
		//gkalint:bounded pump returns when RecvWait errors: the deferred router.Close wakes and reaps it
		go func(id string) {
			for {
				msgs, err := p.router.RecvWait(id)
				if err != nil {
					return
				}
				for _, m := range msgs {
					_ = host.Deliver(id, idgka.Packet{From: m.From, To: m.To, Type: m.Type, Payload: m.Payload})
				}
			}
		}(id)
	}

	rings := make([][]string, groups)
	for g := range rings {
		k := g % len(roster)
		rings[g] = append(append([]string(nil), roster[k:]...), roster[:k]...)
	}
	sidEst := func(g int) string { return fmt.Sprintf("serve/g%02d/est", g) }

	// Establish every group concurrently.
	est := make([][]*serve.Run, groups)
	for g, ring := range rings {
		for _, id := range ring {
			sid, ring := sidEst(g), ring
			r, err := host.Start(id, sid, func(mb *idgka.Member) (*idgka.Session, error) {
				return mb.NewSession(sid, ring)
			})
			if err != nil {
				return nil, err
			}
			est[g] = append(est[g], r)
		}
	}
	keys, err := serve.SettleGroups("establish", est, 2*time.Minute)
	if err != nil {
		return nil, err
	}
	fps := make([][32]byte, groups)
	for g := range keys {
		fps[g] = sha256.Sum256(keys[g])
	}

	confirmAll := func(tag string, ringOf func(g int) []string, baseOf func(g int) string) ([][]*serve.Run, error) {
		runs := make([][]*serve.Run, groups)
		for g := 0; g < groups; g++ {
			for _, id := range ringOf(g) {
				sid, base := fmt.Sprintf("serve/g%02d/%s", g, tag), baseOf(g)
				r, err := host.Start(id, sid, func(mb *idgka.Member) (*idgka.Session, error) {
					return mb.ConfirmSession(sid, base)
				})
				if err != nil {
					return nil, err
				}
				runs[g] = append(runs[g], r)
			}
		}
		return runs, nil
	}

	if victim == "" || phase == phaseConfirmed {
		cfm, err := confirmAll("cfm", func(g int) []string { return rings[g] }, sidEst)
		if err != nil {
			return nil, err
		}
		if _, err := serve.SettleGroups("confirm", cfm, 2*time.Minute); err != nil {
			return nil, err
		}
	}
	if victim == "" {
		return fps, nil
	}

	// Crash: the victim's connection dies. At phase "established" the
	// survivors' confirmation runs are already in flight and genuinely
	// wedge — the peer-down notice is what unblocks them (via Cancel).
	survivorsOf := func(g int) []string {
		out := make([]string, 0, len(rings[g])-1)
		for _, id := range rings[g] {
			if id != victim {
				out = append(out, id)
			}
		}
		return out
	}
	var wedged [][]*serve.Run
	if phase == phaseEstablished {
		w, err := confirmAll("cfm", survivorsOf, sidEst)
		if err != nil {
			return nil, err
		}
		wedged = w
	}
	p.router.Detach(victim)

	// Every surviving member learns of the death through the hub's
	// peer-down frames.
	waitDead := time.Now().Add(30 * time.Second)
	for _, id := range roster {
		if id == victim {
			continue
		}
		for !slices.Contains(members[id].DeadPeers(), victim) {
			if time.Now().After(waitDead) {
				return nil, fmt.Errorf("%s never observed the death of %s", id, victim)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for _, runs := range wedged {
		for _, r := range runs {
			r.Cancel()
		}
	}

	// Per group: evict the victim via Leave and confirm the fresh key.
	evict := make([][]*serve.Run, groups)
	for g := 0; g < groups; g++ {
		for _, id := range survivorsOf(g) {
			sid, base := fmt.Sprintf("serve/g%02d/evict", g), sidEst(g)
			r, err := host.Start(id, sid, func(mb *idgka.Member) (*idgka.Session, error) {
				return mb.LeaveSession(sid, base, []string{victim})
			})
			if err != nil {
				return nil, err
			}
			evict[g] = append(evict[g], r)
		}
	}
	if _, err := serve.SettleGroups("evict", evict, 2*time.Minute); err != nil {
		return nil, err
	}
	cfm2, err := confirmAll("cfm-evict",
		survivorsOf, func(g int) string { return fmt.Sprintf("serve/g%02d/evict", g) })
	if err != nil {
		return nil, err
	}
	fresh, err := serve.SettleGroups("confirm-evict", cfm2, 2*time.Minute)
	if err != nil {
		return nil, err
	}
	for g := range fresh {
		fp := sha256.Sum256(fresh[g])
		if fp == fps[g] {
			return nil, fmt.Errorf("g%02d: eviction did not rotate the key", g)
		}
		fps[g] = fp
	}
	return fps, nil
}

// crashScenario is the fault-tolerance acceptance run: the group
// establishes (and, at phase "confirmed", confirms); then victim's
// connection dies without warning. The hub settles everything blocked on
// the dead node and deals every survivor a peer-down frame; the survivors
// abort whatever the death wedged, evict the victim with the paper's
// Leave protocol — parameters derived from each node's own committed
// session, no coordinator — and confirm the fresh key. The victim's slot
// in fps keeps its last key so callers can assert it differs.
func (p *proc) crashScenario(roster []string, victim, phase string) ([][32]byte, error) {
	const (
		sidEstablish = "gkanet/establish"
		sidConfirm1  = "gkanet/confirm-1"
		sidEvict     = "gkanet/evict"
		sidConfirm2  = "gkanet/confirm-evict"
	)

	fps := make([][32]byte, len(p.ids))
	err := p.forEach(func(i int, w *worker) error {
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartInitial(sidEstablish, roster)
		}, established(sidEstablish), roster); err != nil {
			return err
		}
		if w.id == victim && phase == phaseEstablished {
			fps[i] = sha256.Sum256(w.mach.Session(sidEstablish).Key.Bytes())
			p.router.Detach(w.id)
			return nil
		}

		// Confirmation: at phase "established" the victim is already dead
		// and its digest will never come — the peer-down event aborts the
		// wedged flow and the survivors fall through to the eviction.
		err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartConfirm(sidConfirm1, sidEstablish)
		}, confirmed(sidConfirm1), roster)
		var downAbort *peerDownAbort
		if errors.As(err, &downAbort) {
			w.mach.Abort(sidConfirm1)
		} else if err != nil {
			return err
		}
		if w.id == victim { // phase == phaseConfirmed
			fps[i] = sha256.Sum256(w.mach.Session(sidEstablish).Key.Bytes())
			p.router.Detach(w.id)
			return nil
		}

		// Survivors: wait for the transport's death notice, then re-key.
		if err := w.awaitPeerDown(victim); err != nil {
			return err
		}
		newRoster, refresh, err := engine.PlanLeave(w.mach.Session(sidEstablish), []string{victim})
		if err != nil {
			return err
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartPartition(sidEvict, sidEstablish, newRoster, refresh)
		}, established(sidEvict), newRoster); err != nil {
			return err
		}
		if err := w.runFlow(func() ([]engine.Outbound, []engine.Event, error) {
			return w.mach.StartConfirm(sidConfirm2, sidEvict)
		}, confirmed(sidConfirm2), newRoster); err != nil {
			return err
		}
		fps[i] = sha256.Sum256(w.mach.Session(sidEvict).Key.Bytes())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fps, nil
}
