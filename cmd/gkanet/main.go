// Command gkanet runs the authenticated group key agreement over real TCP
// sockets: a relay hub plus one TCP connection per node, exercising the
// same protocol engine as the simulator.
//
// Two execution modes:
//
//   - event (default): every node runs as an independent event-driven
//     worker with its own engine.Machine, driven ONLY by its own inbox —
//     no global coordinator touches more than one member. This is the
//     deployment shape of internal/engine.
//
//   - lockstep: the original driver (core.RunInitial) marches all members
//     through the rounds from one goroutine, as the paper's tables do.
//
//     gkanet -n 5                 # hub + 5 event-driven nodes on loopback
//     gkanet -mode lockstep -n 5  # the legacy lockstep orchestrator
//     gkanet -listen :7777        # choose the hub port
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"idgka/internal/core"
	"idgka/internal/energy"
	"idgka/internal/engine"
	"idgka/internal/meter"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
	"idgka/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gkanet: ")
	n := flag.Int("n", 5, "group size")
	listen := flag.String("listen", "127.0.0.1:0", "hub listen address")
	mode := flag.String("mode", "event", "execution mode: event (per-node state machines) or lockstep (driver)")
	flag.Parse()
	if *n < 2 {
		log.Fatal("-n must be >= 2")
	}
	if *mode != "event" && *mode != "lockstep" {
		log.Fatalf("unknown -mode %q", *mode)
	}

	hub, err := transport.NewHub(*listen)
	if err != nil {
		log.Fatalf("hub: %v", err)
	}
	defer hub.Close()
	fmt.Printf("hub listening on %s\n", hub.Addr())

	router := transport.NewRouter(hub.Addr())
	defer router.Close()

	set := params.Default()
	cfg := engine.Config{Set: set.Public()}
	roster := make([]string, *n)
	meters := make([]*meter.Meter, *n)
	keys := make([]*gq.PrivateKey, *n)
	for i := 0; i < *n; i++ {
		id := fmt.Sprintf("node-%02d", i+1)
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			log.Fatalf("extract: %v", err)
		}
		roster[i] = id
		keys[i] = sk
		meters[i] = meter.New()
		if err := router.Attach(id, meters[i]); err != nil {
			log.Fatalf("attach: %v", err)
		}
		fmt.Printf("node %s connected over TCP\n", id)
	}

	var fingerprint [32]byte
	start := time.Now()
	if *mode == "lockstep" {
		members := make([]*core.Member, *n)
		for i := range roster {
			mb, err := core.NewMember(cfg, keys[i], meters[i])
			if err != nil {
				log.Fatal(err)
			}
			members[i] = mb
		}
		if err := core.RunInitial(router, members); err != nil {
			log.Fatalf("GKA: %v", err)
		}
		if err := core.ConfirmKey(router, members); err != nil {
			log.Fatalf("confirmation: %v", err)
		}
		fingerprint = sha256.Sum256(members[0].Key().Bytes())
	} else {
		fps, err := runEventDriven(router, cfg, roster, keys, meters)
		if err != nil {
			log.Fatalf("GKA: %v", err)
		}
		fingerprint = fps[0]
		for i, fp := range fps {
			if fp != fingerprint {
				log.Fatalf("node %s confirmed a different key", roster[i])
			}
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("\ngroup key agreed and confirmed over TCP in %v (%s mode)\n",
		elapsed.Round(time.Millisecond), *mode)
	fmt.Printf("key fingerprint: %x\n", fingerprint[:8])

	model := energy.DefaultModel()
	for i, id := range roster {
		r := meters[i].Report()
		fmt.Printf("  %-8s tx=%dB rx=%dB -> %.2f mJ (modelled)\n",
			id, r.BytesTx, r.BytesRx, model.EnergyJ(r)*1000)
	}
}

// runEventDriven spawns one worker goroutine per node. Each worker owns
// its member's protocol machine and is driven exclusively by its own
// inbox: it starts the establishment flow, reacts to whatever the hub
// delivers, then runs key confirmation the same way. No coordinator ever
// sees more than one member's state.
//
// Failures — including protocol-retryable ones — are fatal here: the
// paper's "all members retransmit" loop needs every member to agree on
// restarting an attempt, and without a coordinator that agreement is a
// protocol extension of its own (the engine's attempt numbering is the
// hook for it). Lockstep mode retains the retry loop; over a reliable
// TCP hub the event path has no transient failures to retry.
func runEventDriven(router *transport.Router, cfg engine.Config, roster []string,
	keys []*gq.PrivateKey, meters []*meter.Meter) ([][32]byte, error) {

	const sidEstablish = "gkanet/establish"
	const sidConfirm = "gkanet/confirm"

	fps := make([][32]byte, len(roster))
	errs := make([]error, len(roster))

	// First failure wins and tears the transport down, so peers blocked
	// in RecvWait wake with an error instead of hanging forever on
	// messages the dead node will never send.
	var failOnce sync.Once
	var rootErr error
	fail := func(err error) {
		failOnce.Do(func() {
			rootErr = err
			router.Close()
		})
	}

	var wg sync.WaitGroup
	for i, id := range roster {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			errs[i] = func() error {
				mach, err := engine.NewMachine(cfg, keys[i], meters[i])
				if err != nil {
					return err
				}
				send := func(outs []engine.Outbound) error {
					return engine.SendAll(router, id, outs)
				}
				// pump drives the machine on inbox deliveries until the
				// predicate is met; every drained message is stepped (the
				// machine buffers traffic of flows not started yet), so
				// nothing a faster peer sent early is lost.
				pump := func(until func(ev engine.Event) bool) error {
					for {
						msgs, err := router.RecvWait(id)
						if err != nil {
							return err
						}
						met := false
						for _, msg := range msgs {
							outs, evts := mach.Step(msg)
							if err := send(outs); err != nil {
								return err
							}
							for _, ev := range evts {
								if ev.Kind == engine.EventFailed {
									return fmt.Errorf("%s: flow failed: %w", id, ev.Err)
								}
								if until(ev) {
									met = true
								}
							}
						}
						if met {
							return nil
						}
					}
				}

				outs, evts0, err := mach.StartInitial(sidEstablish, roster)
				if err != nil {
					return err
				}
				for _, ev := range evts0 {
					if ev.Kind == engine.EventFailed {
						return fmt.Errorf("%s: start failed: %w", id, ev.Err)
					}
				}
				if err := send(outs); err != nil {
					return err
				}
				if err := pump(func(ev engine.Event) bool {
					return ev.Kind == engine.EventEstablished && ev.SID == sidEstablish
				}); err != nil {
					return err
				}

				outs, evts, err := mach.StartConfirm(sidConfirm)
				if err != nil {
					return err
				}
				if err := send(outs); err != nil {
					return err
				}
				confirmed := false
				for _, ev := range evts {
					if ev.Kind == engine.EventFailed {
						return fmt.Errorf("%s: confirm start failed: %w", id, ev.Err)
					}
					if ev.Kind == engine.EventConfirmed {
						confirmed = true
					}
				}
				if !confirmed {
					if err := pump(func(ev engine.Event) bool {
						return ev.Kind == engine.EventConfirmed && ev.SID == sidConfirm
					}); err != nil {
						return err
					}
				}
				fps[i] = sha256.Sum256(mach.Key().Bytes())
				return nil
			}()
			if errs[i] != nil {
				fail(fmt.Errorf("node %s: %w", id, errs[i]))
			}
		}(i, id)
	}
	wg.Wait()
	if rootErr != nil {
		return nil, rootErr
	}
	return fps, nil
}
