package main

import (
	"fmt"
	"testing"

	"idgka/internal/engine"
	"idgka/internal/meter"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
	"idgka/internal/transport"
)

// newProc wires a hub, a router and n owned nodes for one in-process
// event-driven deployment.
func newProc(t *testing.T, n int) *proc {
	t.Helper()
	hub, err := transport.NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	router := transport.NewRouter(hub.Addr())
	t.Cleanup(router.Close)

	set := params.Default()
	p := &proc{
		router: router,
		cfg:    engine.Config{Set: set.Public()},
		ids:    make([]string, n),
		keys:   make([]*gq.PrivateKey, n),
		meters: make([]*meter.Meter, n),
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node-%02d", i+1)
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			t.Fatal(err)
		}
		p.ids[i] = id
		p.keys[i] = sk
		p.meters[i] = meter.New()
		if err := router.Attach(id, p.meters[i]); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestEventDrivenEstablishmentOverTCP is the acceptance path of the
// event-driven deployment: a real hub on loopback, one TCP connection per
// node, and every member driven ONLY by its own inbox — establishment and
// key confirmation complete with matching fingerprints.
func TestEventDrivenEstablishmentOverTCP(t *testing.T) {
	const n = 4
	p := newProc(t, n)
	roster := p.ids

	fps, err := p.eventDriven(roster)
	if err != nil {
		t.Fatalf("event-driven GKA over TCP: %v", err)
	}
	for i := 1; i < n; i++ {
		if fps[i] != fps[0] {
			t.Fatalf("node %s confirmed a different key", roster[i])
		}
	}
	// Each member transmitted its two protocol rounds plus one
	// confirmation digest.
	for i, m := range p.meters {
		if r := m.Report(); r.MsgTx != 3 {
			t.Errorf("%s: MsgTx = %d, want 3", roster[i], r.MsgTx)
		}
	}
}

// TestEventDrivenDynamicLifecycleOverTCP runs the coordinator-free
// dynamic-membership demo over a real hub: establish, admit a new TCP
// node via Join, evict a member via Leave, confirming after every
// re-key. Every node derives the flow parameters from its own session
// registry; no goroutine sees more than one member.
func TestEventDrivenDynamicLifecycleOverTCP(t *testing.T) {
	const n = 4 // founders; one more node joins dynamically
	p := newProc(t, n+1)
	roster, joiner, evictee := p.ids[:n], p.ids[n], p.ids[1]

	fps, err := p.lifecycle(roster, joiner, evictee)
	if err != nil {
		t.Fatalf("event-driven lifecycle over TCP: %v", err)
	}
	// All survivors — including the joined node — confirmed one final
	// key; the evictee's last key (the joined group's) must differ.
	ref, err := checkAgreement(p.ids, fps, evictee)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range p.ids {
		if id == evictee && fps[i] == ref {
			t.Fatal("evictee still holds the survivors' key")
		}
	}
}

// TestEventDrivenCrashRecoveryOverTCP is the fault-tolerance acceptance
// path: a node's connection dies without warning; the hub settles every
// delivery blocked on it and deals peer-down frames to the survivors,
// which abort whatever the death wedged, evict the dead node via the
// paper's Leave protocol — flow parameters derived from each node's own
// committed session, no coordinator — and converge on a confirmed fresh
// key the victim does not hold. At phase "established" the victim dies
// before the confirmation round, so every survivor's confirm flow is
// genuinely wedged until the peer-down event aborts it.
func TestEventDrivenCrashRecoveryOverTCP(t *testing.T) {
	for _, phase := range []string{phaseEstablished, phaseConfirmed} {
		t.Run(phase, func(t *testing.T) {
			const n = 4
			p := newProc(t, n)
			victim := p.ids[1]

			fps, err := p.crashScenario(p.ids, victim, phase)
			if err != nil {
				t.Fatalf("crash scenario (%s): %v", phase, err)
			}
			ref, err := checkAgreement(p.ids, fps, victim)
			if err != nil {
				t.Fatal(err)
			}
			for i, id := range p.ids {
				if id == victim && fps[i] == ref {
					t.Fatal("crashed node still holds the survivors' key")
				}
			}
		})
	}
}

// TestParseCrash covers the -crash flag grammar.
func TestParseCrash(t *testing.T) {
	if v, ph, err := parseCrash("node-02@confirmed"); err != nil || v != "node-02" || ph != "confirmed" {
		t.Fatalf("parseCrash: %q %q %v", v, ph, err)
	}
	for _, bad := range []string{"node-02", "@confirmed", "node-02@", "node-02@nope"} {
		if _, _, err := parseCrash(bad); err == nil {
			t.Errorf("parseCrash(%q) accepted", bad)
		}
	}
	if v, ph, err := parseCrash(""); err != nil || v != "" || ph != "" {
		t.Fatalf("empty -crash: %q %q %v", v, ph, err)
	}
}

// TestParseOwn covers the -own flag grammar.
func TestParseOwn(t *testing.T) {
	ids := []string{"node-01", "node-02", "node-03"}
	got, err := parseOwn("node-03, node-01", ids)
	if err != nil || len(got) != 2 || got[0] != "node-01" || got[1] != "node-03" {
		t.Fatalf("parseOwn: %v %v", got, err)
	}
	if _, err := parseOwn("node-09", ids); err == nil {
		t.Fatal("unknown id accepted")
	}
	if got, err := parseOwn("", ids); err != nil || len(got) != 3 {
		t.Fatalf("default own: %v %v", got, err)
	}
}
