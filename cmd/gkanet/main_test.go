package main

import (
	"fmt"
	"testing"

	"idgka/internal/engine"
	"idgka/internal/meter"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
	"idgka/internal/transport"
)

// TestEventDrivenEstablishmentOverTCP is the acceptance path of the
// event-driven deployment: a real hub on loopback, one TCP connection per
// node, and every member driven ONLY by its own inbox — establishment and
// key confirmation complete with matching fingerprints.
func TestEventDrivenEstablishmentOverTCP(t *testing.T) {
	hub, err := transport.NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	router := transport.NewRouter(hub.Addr())
	defer router.Close()

	set := params.Default()
	cfg := engine.Config{Set: set.Public()}
	const n = 4
	roster := make([]string, n)
	keys := make([]*gq.PrivateKey, n)
	meters := make([]*meter.Meter, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node-%02d", i+1)
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			t.Fatal(err)
		}
		roster[i] = id
		keys[i] = sk
		meters[i] = meter.New()
		if err := router.Attach(id, meters[i]); err != nil {
			t.Fatal(err)
		}
	}

	fps, err := runEventDriven(router, cfg, roster, keys, meters)
	if err != nil {
		t.Fatalf("event-driven GKA over TCP: %v", err)
	}
	for i := 1; i < n; i++ {
		if fps[i] != fps[0] {
			t.Fatalf("node %s confirmed a different key", roster[i])
		}
	}
	// Each member transmitted its two protocol rounds plus one
	// confirmation digest.
	for i, m := range meters {
		if r := m.Report(); r.MsgTx != 3 {
			t.Errorf("%s: MsgTx = %d, want 3", roster[i], r.MsgTx)
		}
	}
}

// TestEventDrivenDynamicLifecycleOverTCP runs the coordinator-free
// dynamic-membership demo over a real hub: establish, admit a new TCP
// node via Join, evict a member via Leave, confirming after every
// re-key. Every node derives the flow parameters from its own session
// registry; no goroutine sees more than one member.
func TestEventDrivenDynamicLifecycleOverTCP(t *testing.T) {
	hub, err := transport.NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	router := transport.NewRouter(hub.Addr())
	defer router.Close()

	set := params.Default()
	cfg := engine.Config{Set: set.Public()}
	const n = 4 // founders; one more node joins dynamically
	ids := make([]string, n+1)
	keys := make([]*gq.PrivateKey, n+1)
	meters := make([]*meter.Meter, n+1)
	for i := range ids {
		id := fmt.Sprintf("node-%02d", i+1)
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		keys[i] = sk
		meters[i] = meter.New()
		if err := router.Attach(id, meters[i]); err != nil {
			t.Fatal(err)
		}
	}
	roster, joiner, evictee := ids[:n], ids[n], ids[1]

	fps, err := runEventLifecycle(router, cfg, roster, keys, meters, joiner, evictee)
	if err != nil {
		t.Fatalf("event-driven lifecycle over TCP: %v", err)
	}
	// All survivors — including the joined node — confirmed one final
	// key; the evictee's last key (the joined group's) must differ.
	ref, err := checkAgreement(ids, fps, evictee)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id == evictee && fps[i] == ref {
			t.Fatal("evictee still holds the survivors' key")
		}
	}
}
