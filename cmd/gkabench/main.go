// Command gkabench regenerates the tables and figure of the paper's
// evaluation from instrumented protocol executions.
//
// Usage:
//
//	gkabench -all                      # everything at default parameters
//	gkabench -all -json                # same, as machine-readable JSON
//	gkabench -table 1 -n 10            # Table 1 at group size 10
//	gkabench -table 4 -n 100 -m 20 -ld 20
//	gkabench -table 5 -n 100 -m 20 -ld 20   # the paper's exact setting
//	gkabench -figure 1 -measured 50    # measure counters up to n=50
//	gkabench -accel -parallel 4        # acceleration-layer benchmark, 4 workers
//	gkabench -groups 64                # multi-group serve throughput ladder (1,4,16,64)
//	gkabench -groups 64 -amortize      # same, settling GQ checks through the amortized verify queue
//
// With -json the command emits one JSON document on stdout: the runner
// fingerprint (GOMAXPROCS, Go version, -parallel), the run parameters
// and, per regenerated artifact, its name, wall-clock cost and rendered
// output — so benchmark trajectories (BENCH_*.json) can be captured
// mechanically across revisions and diffed. The -accel artifact
// additionally emits per-op serial/accelerated timings whose speedup
// ratios cmd/benchgate compares against the committed BENCH_BASELINE.json
// in CI.
//
// Tables 4 and 5 at the paper's n=100 execute tens of thousands of real
// signature verifications for the BD baseline and take a minute or two;
// the default n=40 keeps runs snappy while preserving every qualitative
// conclusion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"idgka/internal/analytic"
	"idgka/internal/experiments"
	"idgka/internal/serve"
)

// record is one regenerated artifact in -json mode.
type record struct {
	Name      string  `json:"name"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Output    string  `json:"output"`
}

// document is the top-level -json payload. Schema 2 adds the runner
// fingerprint (GOMAXPROCS, Go version, the -parallel setting) and the
// tracked-op map of the acceleration benchmark, which the CI
// bench-regression gate (cmd/benchgate) compares against the committed
// BENCH_BASELINE.json.
type document struct {
	Schema     int                           `json:"schema"`
	GoVersion  string                        `json:"go_version"`
	GoMaxProcs int                           `json:"gomaxprocs"`
	Parallel   int                           `json:"parallel"`
	Params     map[string]int                `json:"params"`
	Results    []record                      `json:"results"`
	Ops        map[string]experiments.OpStat `json:"ops,omitempty"`
	// MultiGroup is the -groups serve-layer throughput ladder (additive;
	// cmd/benchgate ignores it, so the schema number is unchanged).
	MultiGroup []serve.GroupStat `json:"multi_group,omitempty"`
	TotalMS    float64           `json:"total_ms"`
}

// groupLadder builds the rung counts for -groups N: powers of four up to
// and always including N.
func groupLadder(n int) []int {
	var out []int
	for c := 1; c < n; c *= 4 {
		out = append(out, c)
	}
	return append(out, n)
}

// renderGroups formats the ladder as a text table. When the host's
// amortized settlement queue was on, three verify-throughput columns show
// the coalescing at work: total claims settled, the batches they were
// folded into, and claims settled per second of settlement-lane busy time
// (Stats.VerifyBusy — the lane's throughput, not a rung-wall-time rate).
func renderGroups(stats []serve.GroupStat, amortize bool) string {
	var b strings.Builder
	if len(stats) > 0 {
		fmt.Fprintf(&b, "Multi-group serve throughput (pool %d, ring %d, GOMAXPROCS %d, amortized verify %v)\n",
			stats[0].Pool, stats[0].GroupSize, runtime.GOMAXPROCS(0), amortize)
	}
	fmt.Fprintf(&b, "%8s  %14s  %12s  %14s  %12s",
		"groups", "establish/s", "est ms", "rekey/s", "rekey ms")
	if amortize {
		fmt.Fprintf(&b, "  %8s  %8s  %10s", "claims", "batches", "verify/s")
	}
	b.WriteByte('\n')
	for _, s := range stats {
		fmt.Fprintf(&b, "%8d  %14.1f  %12.1f  %14.1f  %12.1f",
			s.Groups, s.EstablishPerSec, s.EstablishMS, s.RekeyPerSec, s.RekeyMS)
		if amortize {
			fmt.Fprintf(&b, "  %8d  %8d  %10.1f", s.VerifyClaims, s.VerifyBatches, s.VerifyPerSec)
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gkabench: ")
	table := flag.Int("table", 0, "regenerate one table (1-5)")
	figure := flag.Int("figure", 0, "regenerate one figure (1)")
	all := flag.Bool("all", false, "regenerate everything")
	n := flag.Int("n", 40, "current group size")
	m := flag.Int("m", 20, "merging group size")
	ld := flag.Int("ld", 20, "leaving/partitioned users")
	measured := flag.Int("measured", 10, "largest n measured (not extrapolated) in Figure 1")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	accel := flag.Bool("accel", false, "run the crypto acceleration-layer benchmark (tracked by the CI bench gate)")
	groups := flag.Int("groups", 0, "multi-group serve-layer throughput ladder up to N concurrent groups (0 = skip)")
	amortize := flag.Bool("amortize", false, "with -groups: settle GQ checks through the host's amortized verify queue")
	parallel := flag.Int("parallel", 0, "worker-pool size for accelerated runs (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON document on stdout")
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && !*ablations && !*accel && *groups <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatalf("environment: %v", err)
	}
	doc := document{
		Schema:     2,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Parallel:   workers,
		Params: map[string]int{
			"n": *n, "m": *m, "ld": *ld, "measured": *measured,
		},
	}
	begin := time.Now()
	run := func(name string, f func() (string, error)) {
		start := time.Now()
		out, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		elapsed := time.Since(start)
		doc.Results = append(doc.Results, record{
			Name:      name,
			ElapsedMS: float64(elapsed.Microseconds()) / 1000,
			Output:    out,
		})
		if !*jsonOut {
			fmt.Println(out)
			fmt.Printf("[%s regenerated in %v]\n\n", name, elapsed.Round(time.Millisecond))
		}
	}

	if *all || *table == 1 {
		run("Table 1", func() (string, error) { return env.Table1(*n) })
	}
	if *all || *table == 2 {
		run("Table 2", func() (string, error) { return experiments.Table2(), nil })
	}
	if *all || *table == 3 {
		run("Table 3", func() (string, error) { return experiments.Table3(), nil })
	}
	if *all || *figure == 1 {
		run("Figure 1", func() (string, error) { return env.Figure1(*measured) })
	}
	if *all || *table == 4 {
		run("Table 4", func() (string, error) { return env.Table4(*n, *m, *ld) })
	}
	if *all || *table == 5 {
		run("Table 5", func() (string, error) {
			return env.Table5(analytic.Table5Params{N: *n, M: *m, Ld: *ld})
		})
	}
	if *all || *accel {
		run(fmt.Sprintf("Acceleration layer (n=%d)", experiments.AccelGroupSize), func() (string, error) {
			out, ops, err := env.AccelBench(experiments.AccelGroupSize, workers)
			if err != nil {
				return "", err
			}
			doc.Ops = ops
			return out, nil
		})
	}
	if *groups > 0 {
		run(fmt.Sprintf("Multi-group serve throughput (up to %d groups)", *groups), func() (string, error) {
			stats, err := serve.BenchmarkGroups(groupLadder(*groups), serve.BenchOptions{
				Accel:          *accel,
				Workers:        workers,
				AmortizeVerify: *amortize,
			})
			if err != nil {
				return "", err
			}
			doc.MultiGroup = stats
			return renderGroups(stats, *amortize), nil
		})
	}
	if *all || *ablations {
		run("Ablation: batch verification", func() (string, error) {
			return experiments.AblationBatchVerify([]int{10, 50, 100, 500}), nil
		})
		run("Ablation: strict nonce refresh", func() (string, error) {
			return env.AblationStrictNonces(*n, 1)
		})
		run("Related work (ING, GDH.2)", func() (string, error) {
			return env.RelatedWork(min(*n, 20))
		})
	}

	if *jsonOut {
		doc.TotalMS = float64(time.Since(begin).Microseconds()) / 1000
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatalf("encoding: %v", err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
