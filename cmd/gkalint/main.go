// Command gkalint runs the repo's invariant analyzers (internal/lint)
// over the packages matching its go-list pattern arguments:
//
//	go run ./cmd/gkalint ./...
//	go run ./cmd/gkalint -json ./...
//	go run ./cmd/gkalint -sarif gkalint.sarif -lockgraph locks.dot ./...
//
// Each finding prints as file:line:col: message (analyzer); with -json
// the run emits a single JSON object carrying the findings and the
// suite's wall-clock time, for CI artifacts. -sarif writes a SARIF
// 2.1.0 log (one rule per analyzer; waived findings appear with an
// inSource suppression carrying the waiver's justification) that GitHub
// code scanning ingests. -lockgraph writes the whole-program lock
// acquisition graph as Graphviz DOT, cycle participants highlighted.
// Exit codes are distinct so scripts can tell "dirty" from "broken":
// 0 means the sweep is clean, 1 that un-waived findings survive, 2 that
// loading or the analyzers themselves failed.
//
// A site that deliberately breaks an invariant is waived in source with
// a justified control comment — //gkalint:<verb> <reason> on the
// offending line or the line above; a waiver without a reason is itself
// a finding. The analyzers and their verbs:
//
//	blockunderlock //gkalint:blocked   no unbounded blocking while a lock is held (PR 10)
//	boundedwait    //gkalint:unbounded transport waits need deadlines (PR 4)
//	consttime      //gkalint:vartime   crypto hot paths stay secret-independent (PR 9)
//	doccomment     //gkalint:nodoc     operator-facing exports carry godoc (PR 8)
//	goroleak       //gkalint:bounded   goroutines need a visible shutdown path (PR 9)
//	lockcycle      //gkalint:lockcycle lock acquisition order stays acyclic (PR 10)
//	lockorder      //gkalint:unlocked  guarded state needs its documented lock (interprocedural since PR 10)
//	montdomain     //gkalint:rawdomain mathx.Elem converts before boundaries (PR 6)
//	secretflow     //gkalint:secretok  key material stays out of logs (interprocedural since PR 9)
//	sidroute       //gkalint:nosid     engine.Outbound carries its session id (PR 5)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"idgka/internal/lint"
	"idgka/internal/lint/analysis"
	"idgka/internal/lint/sarif"
)

// jsonFinding is one finding in machine-readable form.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the -json output envelope.
type jsonReport struct {
	Findings  []jsonFinding `json:"findings"`
	Count     int           `json:"count"`
	ElapsedMS int64         `json:"elapsed_ms"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a single JSON object on stdout")
	sarifOut := flag.String("sarif", "", "write a SARIF 2.1.0 log (active + suppressed findings) to `file`")
	graphOut := flag.String("lockgraph", "", "write the lock acquisition graph as Graphviz DOT to `file`")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gkalint [-json] [-sarif file] [-lockgraph file] [packages]\n\nruns the idgka invariant analyzers; see package docs under internal/lint\nexit codes: 0 clean, 1 findings, 2 load/internal error\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gkalint:", err)
		os.Exit(2)
	}
	start := time.Now()
	sweep, err := lint.Run(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gkalint:", err)
		os.Exit(2)
	}
	findings := sweep.Active
	if *sarifOut != "" {
		all := make([]analysis.Finding, 0, len(findings)+len(sweep.Suppressed))
		all = append(all, findings...)
		all = append(all, sweep.Suppressed...)
		if err := writeSARIF(*sarifOut, all, dir); err != nil {
			fmt.Fprintln(os.Stderr, "gkalint:", err)
			os.Exit(2)
		}
	}
	if *graphOut != "" {
		if err := os.WriteFile(*graphOut, []byte(sweep.Prog.Locks().DOT()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gkalint:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		report := jsonReport{
			Findings:  []jsonFinding{},
			Count:     len(findings),
			ElapsedMS: time.Since(start).Milliseconds(),
		}
		for _, f := range findings {
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "gkalint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gkalint: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}

// writeSARIF renders the sweep (active and waiver-suppressed findings
// alike) as a SARIF log at path, URIs relative to root.
func writeSARIF(path string, findings []analysis.Finding, root string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	log := sarif.New(lint.Suite, findings, root)
	if err := log.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
