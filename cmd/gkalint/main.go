// Command gkalint runs the repo's invariant analyzers (internal/lint)
// over the packages matching its go-list pattern arguments:
//
//	go run ./cmd/gkalint ./...
//	go run ./cmd/gkalint -json ./...
//
// Each finding prints as file:line:col: message (analyzer); with -json
// the run emits a single JSON object carrying the findings and the
// suite's wall-clock time, for CI artifacts. Exit codes are distinct so
// scripts can tell "dirty" from "broken": 0 means the sweep is clean,
// 1 that un-waived findings survive, 2 that loading or the analyzers
// themselves failed.
//
// A site that deliberately breaks an invariant is waived in source with
// a justified control comment — //gkalint:<verb> <reason> on the
// offending line or the line above; a waiver without a reason is itself
// a finding. The analyzers and their verbs:
//
//	boundedwait  //gkalint:unbounded   transport waits need deadlines (PR 4)
//	consttime    //gkalint:vartime     crypto hot paths stay secret-independent (PR 9)
//	doccomment   //gkalint:nodoc       operator-facing exports carry godoc (PR 8)
//	goroleak     //gkalint:bounded     goroutines need a visible shutdown path (PR 9)
//	lockorder    //gkalint:unlocked    guarded state needs its documented lock (PR 5)
//	montdomain   //gkalint:rawdomain   mathx.Elem converts before boundaries (PR 6)
//	secretflow   //gkalint:secretok    key material stays out of logs (interprocedural since PR 9)
//	sidroute     //gkalint:nosid       engine.Outbound carries its session id (PR 5)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"idgka/internal/lint"
)

// jsonFinding is one finding in machine-readable form.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the -json output envelope.
type jsonReport struct {
	Findings  []jsonFinding `json:"findings"`
	Count     int           `json:"count"`
	ElapsedMS int64         `json:"elapsed_ms"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a single JSON object on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gkalint [-json] [packages]\n\nruns the idgka invariant analyzers; see package docs under internal/lint\nexit codes: 0 clean, 1 findings, 2 load/internal error\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gkalint:", err)
		os.Exit(2)
	}
	start := time.Now()
	findings, err := lint.Check(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gkalint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		report := jsonReport{
			Findings:  []jsonFinding{},
			Count:     len(findings),
			ElapsedMS: time.Since(start).Milliseconds(),
		}
		for _, f := range findings {
			report.Findings = append(report.Findings, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "gkalint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gkalint: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}
