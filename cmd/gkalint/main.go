// Command gkalint runs the repo's invariant analyzers (internal/lint)
// over the packages matching its go-list pattern arguments and exits
// non-zero if any un-waived violation survives:
//
//	go run ./cmd/gkalint ./...
//
// Each finding prints as file:line:col: message (analyzer). A site that
// deliberately breaks an invariant is waived in source with a justified
// control comment — //gkalint:<verb> <reason> on the offending line or
// the line above; a waiver without a reason is itself a finding. The
// analyzers and their verbs:
//
//	boundedwait  //gkalint:unbounded   transport waits need deadlines (PR 4)
//	doccomment   //gkalint:nodoc       operator-facing exports carry godoc (PR 8)
//	lockorder    //gkalint:unlocked    guarded state needs its documented lock (PR 5)
//	montdomain   //gkalint:rawdomain   mathx.Elem converts before boundaries (PR 6)
//	secretflow   //gkalint:secretok    key material stays out of logs
//	sidroute     //gkalint:nosid       engine.Outbound carries its session id (PR 5)
package main

import (
	"flag"
	"fmt"
	"os"

	"idgka/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gkalint [packages]\n\nruns the idgka invariant analyzers; see package docs under internal/lint\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gkalint:", err)
		os.Exit(2)
	}
	findings, err := lint.Check(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gkalint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gkalint: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}
