// Command gkaload is the serve layer's soak harness: it offers a fixed
// rate of group-lifecycle operations (establish / re-key / join /
// crash-evict mixes) against one in-process Host for a fixed duration and
// reports time-to-key quantiles, admission-control shed rate and the
// queue high-water mark as a schema-2 JSON document (SOAK_*.json).
//
// Usage:
//
//	gkaload -duration 8s -rate 25                  # nominal-rate soak
//	gkaload -rate 200 -queue 64                    # overload against a depth watermark
//	gkaload -duration 8s -rate 25 -max-shed-rate 0 # CI smoke: fail on any shed
//
// Exit status is non-zero when any admitted operation failed, or when
// -max-shed-rate is set (>= 0) and the observed shed rate exceeds it —
// so CI asserts "zero shed at nominal rate" by running the harness alone.
// Every runtime knob the harness forwards is documented in
// docs/OPERATIONS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"idgka/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gkaload: ")
	var (
		pool     = flag.Int("pool", 8, "hosted member pool size")
		group    = flag.Int("group", 3, "ring size per operation")
		shards   = flag.Int("shards", 0, "host dispatch lanes (0 = GOMAXPROCS)")
		rate     = flag.Float64("rate", 25, "offered operation rate, ops/sec")
		duration = flag.Duration("duration", 5*time.Second, "offering window")
		queue    = flag.Int("queue", 0, "admission high watermark on shard queue depth (0 = unbounded)")
		queueAge = flag.Duration("queue-age", 0, "admission high watermark on shard queue age (0 = unbounded)")
		fair     = flag.Float64("fair-share", 0, "fairness share of a pressured shard one group may hold (0 = default 0.5)")
		amortize = flag.Bool("amortize", false, "settle GQ batch checks through the host's amortized verify queue")
		budget   = flag.Duration("op-budget", 30*time.Second, "settle budget per admitted operation")
		maxShed  = flag.Float64("max-shed-rate", -1, "fail (exit 1) when the shed rate exceeds this fraction (<0 disables)")
		out      = flag.String("o", "", "write the JSON report to this file instead of stdout")
	)
	flag.Parse()

	report, err := serve.RunSoak(serve.SoakOptions{
		Pool:             *pool,
		GroupSize:        *group,
		Shards:           *shards,
		Rate:             *rate,
		Duration:         *duration,
		MaxShardQueue:    *queue,
		MaxShardQueueAge: *queueAge,
		FairShare:        *fair,
		AmortizeVerify:   *amortize,
		OpBudget:         *budget,
	})
	if err != nil {
		log.Fatal(err)
	}

	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	doc = append(doc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			log.Fatal(err)
		}
	} else {
		os.Stdout.Write(doc)
	}

	fmt.Fprintf(os.Stderr,
		"gkaload: offered %d admitted %d shed %d failed %d | p50 %.1fms p99 %.1fms | peak queue %d\n",
		report.Offered, report.Admitted, report.Shed, report.Failed,
		report.P50MS, report.P99MS, report.PeakQueueDepth)
	if report.Failed > 0 {
		log.Fatalf("%d admitted operations failed", report.Failed)
	}
	if *maxShed >= 0 && report.ShedRate > *maxShed {
		log.Fatalf("shed rate %.3f exceeds -max-shed-rate %.3f", report.ShedRate, *maxShed)
	}
}
