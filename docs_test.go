package idgka_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles is the documentation tree the link checker walks: the front
// door plus everything under docs/ and the roadmap.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "ROADMAP.md"}
	under, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, under...)
}

var (
	mdLink    = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	mdHeading = regexp.MustCompile(`(?m)^#{1,6} +(.+?) *$`)
	// anchorDrop strips the characters GitHub removes when it slugs a
	// heading into an anchor id.
	anchorDrop = regexp.MustCompile(`[^a-z0-9 _-]`)
	codeFence  = regexp.MustCompile("(?s)```.*?```|`[^`\n]*`")
)

// anchorsOf returns the GitHub-style anchor ids of a markdown document's
// headings (lowercase, punctuation stripped, spaces hyphenated).
func anchorsOf(raw string) map[string]bool {
	anchors := map[string]bool{}
	for _, m := range mdHeading.FindAllStringSubmatch(raw, -1) {
		h := strings.ReplaceAll(m[1], "`", "")
		h = strings.ToLower(h)
		h = anchorDrop.ReplaceAllString(h, "")
		anchors[strings.ReplaceAll(h, " ", "-")] = true
	}
	return anchors
}

// TestDocLinksResolve is the docs link checker: every relative markdown
// link in the documentation tree must point at an existing file, and a
// `#fragment` into a markdown file must name one of its headings. CI
// runs it in the docs job, so a renamed file or retitled section fails
// the build instead of leaving a dead link.
func TestDocLinksResolve(t *testing.T) {
	for _, file := range docFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		// Links inside code spans/fences are examples, not navigation.
		text := codeFence.ReplaceAllString(string(raw), "")
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			link := m[1]
			if strings.Contains(link, "://") || strings.HasPrefix(link, "mailto:") {
				continue // external; not checked offline
			}
			path, frag, _ := strings.Cut(link, "#")
			target := file
			if path != "" {
				target = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(target); err != nil {
					t.Errorf("%s: link %q: target does not exist", file, link)
					continue
				}
			}
			if frag == "" || !strings.HasSuffix(target, ".md") {
				continue
			}
			dest, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			if !anchorsOf(string(dest))[frag] {
				t.Errorf("%s: link %q: no heading in %s produces anchor #%s", file, link, target, frag)
			}
		}
	}
}
