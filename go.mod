module idgka

go 1.21
