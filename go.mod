module idgka

go 1.22
