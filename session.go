package idgka

import (
	"errors"
	"fmt"

	"idgka/internal/engine"
	"idgka/internal/netsim"
)

// Packet is one protocol message as routed by an event-driven deployment.
// An empty To means broadcast to every group member. StateLen marks the
// trailing payload bytes that carry session-state transfer (metered
// separately from protocol traffic by the built-in media).
type Packet struct {
	From     string
	To       string
	Type     string
	Payload  []byte
	StateLen int
}

// Session is a member's event-driven handle on one protocol run,
// identified by a caller-chosen session id. Unlike the lockstep helpers
// (Establish, Join, ...), a Session never touches a shared network object:
// the application routes messages itself — feed inbound packets to
// HandleMessage, transmit whatever Outbox returns, and watch Done. One
// member can run any number of concurrent sessions; out-of-order and
// duplicated deliveries are tolerated, and an inbound packet may be fed
// through ANY of the member's session handles — the wire envelope names
// the session, so completions are routed to the owning handle even when
// another handle stepped the machine. A member's sessions must be driven
// from a single goroutine.
//
//	sess, _ := alice.NewSession("room-7", roster)
//	for !sess.Done() {
//	    for _, p := range sess.Outbox() {
//	        transportSend(p)   // application-owned routing
//	    }
//	    if err := sess.HandleMessage(transportRecv()); err != nil {
//	        return err         // protocol failure; Done() is now true
//	    }
//	}
//	for _, p := range sess.Outbox() {
//	    transportSend(p)       // the final reaction can commit AND emit
//	}
//	key := sess.Key()
type Session struct {
	mb     *Member
	sid    string
	outbox []Packet
	done   bool
	err    error
	// Terminal results, cached when the flow commits so the machine-side
	// per-session state can be released.
	key    []byte
	roster []string
}

// NewSession starts the two-round authenticated establishment of the
// paper's Section 4 as an event-driven session. roster is the ring order
// (roster[0] is the trusted controller) and must contain this member; sid
// names the session on the wire and must be shared by all participants.
func (mb *Member) NewSession(sid string, roster []string) (*Session, error) {
	if sid == "" {
		return nil, errors.New("idgka: session id must be non-empty")
	}
	s := &Session{mb: mb, sid: sid}
	if mb.sessions == nil {
		mb.sessions = map[string]*Session{}
	}
	mb.sessions[sid] = s
	outs, evts, err := mb.inner.Machine().StartInitial(sid, roster)
	if err != nil {
		delete(mb.sessions, sid)
		return nil, err
	}
	s.ingest(outs, evts)
	return s, nil
}

// ingest folds machine reactions into session state. Outbound packets go
// to this handle's outbox (any handle may transmit them — the payloads
// carry their own session envelope); lifecycle events are routed to the
// handle owning their session id.
func (s *Session) ingest(outs []engine.Outbound, evts []engine.Event) {
	for _, o := range outs {
		s.outbox = append(s.outbox, Packet{
			From: s.mb.ID(), To: o.To, Type: o.Type, Payload: o.Payload, StateLen: o.StateLen,
		})
	}
	for _, ev := range evts {
		target := s
		if ev.SID != s.sid {
			if target = s.mb.sessions[ev.SID]; target == nil {
				continue // a flow this member runs outside the Session API
			}
		}
		switch ev.Kind {
		case engine.EventEstablished, engine.EventConfirmed:
			target.done = true
			if ev.Group != nil {
				target.key = ev.Group.Key.Bytes()
				target.roster = append([]string(nil), ev.Group.Roster...)
			}
			// Terminal: cache the results above, then release both the
			// handle registry entry and the machine-side session state so
			// long-lived members do not accumulate per-session groups.
			// (The engine fires at most one terminal event per flow.)
			delete(s.mb.sessions, target.sid)
			s.mb.inner.Machine().Release(target.sid)
		case engine.EventFailed:
			// A failed flow is terminal too: Done must release the
			// application's routing loop, with Err/Key telling success
			// from failure.
			target.done = true
			delete(s.mb.sessions, target.sid)
			s.mb.inner.Machine().Release(target.sid)
			if target.err == nil {
				target.err = ev.Err
				if target.err == nil {
					target.err = fmt.Errorf("idgka: session %q failed", target.sid)
				}
			}
		}
	}
}

// HandleMessage feeds one delivered packet into the member's protocol
// machine. Reactions appear in Outbox; completion in Done. Messages of
// other concurrent sessions are routed internally and never an error.
func (s *Session) HandleMessage(p Packet) error {
	outs, evts := s.mb.inner.Machine().Step(netsim.Message{
		From: p.From, To: p.To, Type: p.Type, Payload: p.Payload,
	})
	s.ingest(outs, evts)
	return s.err
}

// Outbox drains and returns the messages the member wants transmitted.
func (s *Session) Outbox() []Packet {
	out := s.outbox
	s.outbox = nil
	return out
}

// Done reports whether the session has reached a terminal state —
// either committed (Key non-nil) or failed (Err non-nil).
func (s *Session) Done() bool { return s.done }

// Err returns the session's failure, if any.
func (s *Session) Err() error { return s.err }

// Key returns the established session key material, or nil before Done
// (and nil after a failure).
func (s *Session) Key() []byte { return s.key }

// Roster returns the committed ring of this session, or nil before Done.
func (s *Session) Roster() []string {
	return append([]string(nil), s.roster...)
}

// Close abandons a session that can no longer make progress (e.g. a peer
// died mid-establishment and the application timed out): the in-flight
// flow, its buffered traffic and the registry entry are discarded. Closing
// a completed session is a no-op beyond state release.
func (s *Session) Close() {
	if !s.done {
		s.done = true
		if s.err == nil {
			s.err = fmt.Errorf("idgka: session %q closed", s.sid)
		}
	}
	delete(s.mb.sessions, s.sid)
	s.mb.inner.Machine().Abort(s.sid)
	s.mb.inner.Machine().Release(s.sid)
}
