package idgka

import (
	"errors"
	"fmt"
	"time"

	"idgka/internal/engine"
	"idgka/internal/metrics"
	"idgka/internal/netsim"
)

// The engine runtime's process-wide metrics; documented in
// docs/OPERATIONS.md.
var (
	mRetries  = metrics.NewCounter("engine_retries_total")
	mRestarts = metrics.NewCounter("engine_restarts_total")
	mTimeouts = metrics.NewCounter("engine_timeouts_total")
)

// ErrSessionTimeout classifies sessions failed by an expired deadline with
// no retransmission budget left; match with errors.Is on Session.Err.
var ErrSessionTimeout = errors.New("idgka: session deadline exceeded")

// PeerDownPacket builds the control packet a failure-aware medium injects
// when a peer dies (the TCP transport and netsim.Async do this on
// disconnect/crash). Applications that own their routing can synthesize it
// from their own failure detector and feed it through any session handle:
// the member records the death, fires the SetPeerDownHandler hook, and the
// packet is never treated as protocol traffic.
func PeerDownPacket(peer string) Packet {
	return Packet{From: peer, Type: netsim.TypePeerDown}
}

// Packet is one protocol message as routed by an event-driven deployment.
// An empty To means broadcast to every group member. StateLen marks the
// trailing payload bytes that carry session-state transfer (metered
// separately from protocol traffic by the built-in media).
type Packet struct {
	From     string
	To       string
	Type     string
	Payload  []byte
	StateLen int
}

// Session is a member's event-driven handle on one protocol run,
// identified by a caller-chosen session id. Unlike the lockstep helpers
// (Establish, Join, ...), a Session never touches a shared network object:
// the application routes messages itself — feed inbound packets to
// HandleMessage, transmit whatever Outbox returns, and watch Done. One
// member can run any number of concurrent sessions; out-of-order and
// duplicated deliveries are tolerated, and an inbound packet may be fed
// through ANY of the member's session handles — the wire envelope names
// the session, so both completions AND outbound reactions are routed to
// the owning handle even when another handle stepped the machine.
//
// Sessions are safe for concurrent use: HandleMessage, Outbox, Tick and
// Close (and every other method) may be called from any goroutine; the
// member's mutex serializes the underlying machine. Handles of DIFFERENT
// members never contend.
//
//	sess, _ := alice.NewSession("room-7", roster)
//	for !sess.Done() {
//	    for _, p := range sess.Outbox() {
//	        transportSend(p)   // application-owned routing
//	    }
//	    if err := sess.HandleMessage(transportRecv()); err != nil {
//	        return err         // protocol failure; Done() is now true
//	    }
//	}
//	for _, p := range sess.Outbox() {
//	    transportSend(p)       // the final reaction can commit AND emit
//	}
//	key := sess.Key()
type Session struct {
	mb  *Member
	sid string

	// All fields below are guarded by mb.mu.
	//gkalint:guard mb.mu
	outbox []Packet
	done   bool
	closed bool
	err    error
	// Terminal results, cached when the flow commits.
	//gkalint:secret
	key    []byte
	roster []string

	// Timeout/retransmit runtime (see SetDeadline and Tick). start
	// re-drives the flow's opening transitions under a fresh attempt
	// number; retryArmed marks a pending engine.Retryable failure;
	// attempts counts restarts against the member's MaxRetries budget.
	start      func() ([]engine.Outbound, []engine.Event, error)
	deadline   time.Time
	retryArmed bool
	attempts   int
}

// ingestResult carries the side effects of an ingestLocked call that must
// happen after the member lock is released: peer-down handler invocations
// (the handler may call back into the member) and — for member-level
// HandlePacket ingestion — the reaction packets handed back to the caller.
type ingestResult struct {
	reactions []Packet
	downFns   []func(string)
	downPeers []string
}

// fire invokes the collected peer-down handlers; call it only after the
// member lock has been released.
//
//gkalint:callback
func (r *ingestResult) fire() {
	for i, fn := range r.downFns {
		fn(r.downPeers[i])
	}
}

// ingestLocked folds machine reactions into member/session state; the
// caller holds mb.mu. Outbound packets are routed to the handle owning
// their session id — the stepping handle is only the fallback for flows
// run outside the Session API (legacy wire mode has no envelope). With a
// nil stepping handle (member-level HandlePacket), ALL outbounds are
// returned in the result for the caller to transmit. Lifecycle events are
// always routed to the handle owning their session id.
func (mb *Member) ingestLocked(stepping *Session, outs []engine.Outbound, evts []engine.Event) ingestResult {
	var res ingestResult
	for _, o := range outs {
		pkt := Packet{
			From: mb.inner.ID(), To: o.To, Type: o.Type, Payload: o.Payload, StateLen: o.StateLen,
		}
		if stepping == nil {
			res.reactions = append(res.reactions, pkt)
			continue
		}
		target := stepping
		if o.SID != "" && o.SID != target.sid {
			if owner := mb.sessions[o.SID]; owner != nil {
				// The reaction belongs to a different live session: append
				// it to the OWNING handle's outbox. Leaving it on the
				// stepping handle would strand it once that handle reports
				// Done and the application stops draining it.
				target = owner
			}
		}
		target.outbox = append(target.outbox, pkt)
	}
	for _, ev := range evts {
		if ev.Kind == engine.EventPeerDown {
			// Member-level, not session-level: record the death and defer
			// the application hook (which typically launches LeaveSession
			// over every group shared with the dead peer) until the lock
			// is released.
			if fn := mb.notePeerDownLocked(ev.Peer); fn != nil {
				res.downFns = append(res.downFns, fn)
				res.downPeers = append(res.downPeers, ev.Peer)
			}
			continue
		}
		target := mb.sessions[ev.SID]
		if target == nil {
			if stepping != nil && ev.SID == stepping.sid {
				target = stepping
			} else {
				continue // a flow this member runs outside the Session API
			}
		}
		switch ev.Kind {
		case engine.EventEstablished, engine.EventConfirmed:
			target.done = true
			if ev.Group != nil {
				// Establishment commits ev.Group; confirmation carries the
				// flow's snapshot of the confirmed group.
				target.key = ev.Group.Key.Bytes()
				target.roster = append([]string(nil), ev.Group.Roster...)
			}
			// Terminal: cache the results above and drop the handle
			// registry entry. The machine-side group stays registered
			// under the sid — it is the base for later dynamic sessions —
			// until the application calls Close.
			// (The engine fires at most one terminal event per flow.)
			delete(mb.sessions, target.sid)
		case engine.EventFailed:
			if ev.Retryable && target.start != nil && target.attempts < target.mb.retries {
				// The paper's "all members retransmit again" signal: the
				// engine already retired the failed attempt, so instead of
				// failing terminally, arm the retransmit scheduler — the
				// next Tick re-drives the flow under a fresh attempt
				// number. Buffered traffic of peers that already moved to
				// the new attempt stays queued and is replayed on restart.
				target.retryArmed = true
				mRetries.Inc()
				continue
			}
			// A failed flow is terminal too: Done must release the
			// application's routing loop, with Err/Key telling success
			// from failure. Teardown matches Tick's budget-exhausted path
			// (Abort + Release), so no live flow or buffered traffic of
			// the dead session lingers in the machine.
			target.done = true
			delete(mb.sessions, target.sid)
			mb.inner.Machine().Abort(target.sid)
			mb.inner.Machine().Release(target.sid)
			if target.err == nil {
				target.err = ev.Err
				if target.err == nil {
					target.err = fmt.Errorf("idgka: session %q failed", target.sid)
				}
			}
		}
	}
	return res
}

// newHandle registers a session handle and runs the flow's opening
// transitions, unregistering again if the start is rejected.
func (mb *Member) newHandle(sid string,
	start func() ([]engine.Outbound, []engine.Event, error)) (*Session, error) {
	if sid == "" {
		return nil, errors.New("idgka: session id must be non-empty")
	}
	s := &Session{mb: mb, sid: sid, start: start}
	mb.mu.Lock()
	if mb.sessions == nil {
		mb.sessions = map[string]*Session{}
	}
	prev := mb.sessions[sid]
	mb.sessions[sid] = s
	outs, evts, err := start()
	if err != nil {
		if prev != nil {
			mb.sessions[sid] = prev
		} else {
			delete(mb.sessions, sid)
		}
		mb.mu.Unlock()
		return nil, err
	}
	res := mb.ingestLocked(s, outs, evts)
	mb.mu.Unlock()
	res.fire()
	return s, nil
}

// NewSession starts the two-round authenticated establishment of the
// paper's Section 4 as an event-driven session. roster is the ring order
// (roster[0] is the trusted controller) and must contain this member; sid
// names the session on the wire and must be shared by all participants.
//
// The committed group stays registered under sid inside the member's
// machine, so later dynamic sessions (JoinSession, LeaveSession,
// MergeSession, ConfirmSession) can name it as their base. Call Close
// once a group has been superseded or is no longer needed, so long-lived
// members do not accumulate per-session state.
func (mb *Member) NewSession(sid string, roster []string) (*Session, error) {
	return mb.newHandle(sid, func() ([]engine.Outbound, []engine.Event, error) {
		return mb.inner.Machine().StartInitial(sid, roster)
	})
}

// JoinSession starts the paper's three-round Join protocol as an
// event-driven session, admitting joiner into the group committed under
// the base session. Every existing member starts the flow naming its
// committed base session (oldRoster may be nil — it is then taken from
// the base group's ring — or passed explicitly as a cross-check); the
// joining node itself (mb.ID() == joiner) holds no base session, passes
// base == "" and must supply the group's current ring via oldRoster. The
// extended group commits under sid, which becomes a valid base for later
// dynamic sessions.
func (mb *Member) JoinSession(sid, base string, oldRoster []string, joiner string) (*Session, error) {
	if mb.ID() != joiner && base == "" {
		// The base must be explicit: an empty base would fall back to the
		// machine's most recently committed group — exactly the recency
		// aliasing the per-session registry exists to prevent.
		return nil, errors.New("idgka: JoinSession needs a base session id (only the joiner passes an empty base)")
	}
	return mb.newHandle(sid, func() ([]engine.Outbound, []engine.Event, error) {
		// Snapshot the base ring under the member lock on the first start;
		// restarts reuse the snapshot so a concurrent re-key cannot switch
		// rings between attempts.
		if mb.ID() != joiner && oldRoster == nil {
			g := mb.inner.Machine().Session(base)
			if g == nil {
				return nil, nil, fmt.Errorf("idgka: no committed session %q to join onto", base)
			}
			oldRoster = append([]string(nil), g.Roster...)
		}
		return mb.inner.Machine().StartJoin(sid, base, oldRoster, joiner)
	})
}

// LeaveSession starts the paper's two-round Leave/Partition protocol as
// an event-driven session, evicting leavers from the group committed
// under the base session. Every survivor starts the same flow with the
// same leaver set; the contracted ring and the refresh set are derived
// deterministically from the base group's state, so all survivors agree
// without a coordinator. The re-keyed group commits under sid.
func (mb *Member) LeaveSession(sid, base string, leavers []string) (*Session, error) {
	if base == "" {
		return nil, errors.New("idgka: LeaveSession needs a base session id")
	}
	var newRoster, refresh []string
	planned := false
	return mb.newHandle(sid, func() ([]engine.Outbound, []engine.Event, error) {
		// Plan under the member lock on the first start; restarts reuse
		// the plan (the base group snapshot is immutable anyway).
		if !planned {
			g := mb.inner.Machine().Session(base)
			if g == nil {
				return nil, nil, fmt.Errorf("idgka: no committed session %q to leave from", base)
			}
			var err error
			newRoster, refresh, err = engine.PlanLeave(g, leavers)
			if err != nil {
				return nil, nil, err
			}
			planned = true
		}
		return mb.inner.Machine().StartPartition(sid, base, newRoster, refresh)
	})
}

// MergeSession starts the paper's three-round Merge protocol as an
// event-driven session, fusing the groups with rings rosterA and rosterB
// into one keyed group with ring A‖B. Every member of both groups starts
// the same flow with identical rosters, each naming its own ring's
// committed session as base. The merged group commits under sid.
func (mb *Member) MergeSession(sid, base string, rosterA, rosterB []string) (*Session, error) {
	if base == "" {
		return nil, errors.New("idgka: MergeSession needs a base session id")
	}
	return mb.newHandle(sid, func() ([]engine.Outbound, []engine.Event, error) {
		return mb.inner.Machine().StartMerge(sid, base, rosterA, rosterB)
	})
}

// ConfirmSession starts an explicit key-confirmation round over the
// group committed under the base session: every member broadcasts
// H(key ‖ id ‖ roster) and checks every peer's digest. On success the
// handle's Key and Roster report the confirmed group.
func (mb *Member) ConfirmSession(sid, base string) (*Session, error) {
	if base == "" {
		return nil, errors.New("idgka: ConfirmSession needs a base session id")
	}
	return mb.newHandle(sid, func() ([]engine.Outbound, []engine.Event, error) {
		return mb.inner.Machine().StartConfirm(sid, base)
	})
}

// HandlePacket feeds one delivered packet into the member's protocol
// machine at member level — no session handle needed. It is the inbound
// entry point for serve layers (internal/serve) that demultiplex a whole
// transport inbox: the wire envelope routes the packet to its flow, and
// lifecycle events still complete the owning Session handles (Done, Err,
// Key). Unlike Session.HandleMessage, the reaction packets are RETURNED
// for the caller to transmit instead of being appended to per-session
// outboxes; a session's Outbox then only ever carries its own start and
// Tick-restart traffic. Use either ingestion style per member, not both,
// or be prepared to drain both paths.
func (mb *Member) HandlePacket(p Packet) []Packet {
	mb.mu.Lock()
	//gkalint:blocked the engine pool's semaphore is drained by CPU-only workers that always finish; the wait under mb.mu is bounded by construction
	outs, evts := mb.inner.Machine().Step(netsim.Message{
		From: p.From, To: p.To, Type: p.Type, Payload: p.Payload,
	})
	res := mb.ingestLocked(nil, outs, evts)
	mb.mu.Unlock()
	res.fire()
	return res.reactions
}

// SID returns the caller-chosen session id this handle was started under.
func (s *Session) SID() string { return s.sid }

// HandleMessage feeds one delivered packet into the member's protocol
// machine. Reactions appear in the owning session's Outbox; completion in
// Done. Messages of other concurrent sessions are routed internally and
// never an error.
func (s *Session) HandleMessage(p Packet) error {
	s.mb.mu.Lock()
	//gkalint:blocked the engine pool's semaphore is drained by CPU-only workers that always finish; the wait under mb.mu is bounded by construction
	outs, evts := s.mb.inner.Machine().Step(netsim.Message{
		From: p.From, To: p.To, Type: p.Type, Payload: p.Payload,
	})
	res := s.mb.ingestLocked(s, outs, evts)
	err := s.err
	s.mb.mu.Unlock()
	res.fire()
	return err
}

// Outbox drains and returns the messages the member wants transmitted.
func (s *Session) Outbox() []Packet {
	s.mb.mu.Lock()
	defer s.mb.mu.Unlock()
	out := s.outbox
	s.outbox = nil
	return out
}

// Done reports whether the session has reached a terminal state —
// either committed (Key non-nil) or failed (Err non-nil).
func (s *Session) Done() bool {
	s.mb.mu.Lock()
	defer s.mb.mu.Unlock()
	return s.done
}

// Err returns the session's failure, if any.
func (s *Session) Err() error {
	s.mb.mu.Lock()
	defer s.mb.mu.Unlock()
	return s.err
}

// Key returns the established session key material, or nil before Done
// (and nil after a failure).
func (s *Session) Key() []byte {
	s.mb.mu.Lock()
	defer s.mb.mu.Unlock()
	return s.key
}

// Roster returns the committed ring of this session, or nil before Done.
func (s *Session) Roster() []string {
	s.mb.mu.Lock()
	defer s.mb.mu.Unlock()
	return append([]string(nil), s.roster...)
}

// SetDeadline arms a one-shot deadline: the first Tick at or past t either
// retransmits the flow (when budget remains — a deadline expiry is treated
// as lost traffic) or fails the session with ErrSessionTimeout. Restarts
// clear the deadline; re-arm it after draining the restart's Outbox. The
// zero time disarms.
func (s *Session) SetDeadline(t time.Time) {
	s.mb.mu.Lock()
	defer s.mb.mu.Unlock()
	s.deadline = t
}

// Attempts reports how many retransmission restarts the session has
// consumed (bounded by Config.MaxRetries).
func (s *Session) Attempts() int {
	s.mb.mu.Lock()
	defer s.mb.mu.Unlock()
	return s.attempts
}

// Tick drives the session's timeout/retransmit runtime and must be called
// periodically with the current time by the application's event loop (it
// is cheap when nothing is due). Two conditions trigger it: a pending
// engine.Retryable failure — the paper's "all members retransmit again"
// signal, armed by HandleMessage instead of failing the session — and an
// expired deadline (lost traffic, or a dead peer that will never answer).
// Either way the flow is re-driven under a fresh attempt number and the
// restart's opening messages appear in Outbox; peers restart their side by
// their own ticks, and stale traffic of superseded attempts is discarded
// by the engine. Once the MaxRetries budget is exhausted the session fails
// terminally: a retryable failure with its own error, an expired deadline
// with ErrSessionTimeout. Tick returns the session error, nil while the
// session is still live (or already committed).
func (s *Session) Tick(now time.Time) error {
	s.mb.mu.Lock()
	if s.done {
		defer s.mb.mu.Unlock()
		return s.err
	}
	if cur := s.mb.sessions[s.sid]; cur != s {
		// A newer handle reused the sid (the restart pattern Close's doc
		// endorses); this stale handle must not tear down — or re-drive —
		// the successor's flow. Fail it locally.
		s.done = true
		if s.err == nil {
			s.err = fmt.Errorf("idgka: session %q superseded by a newer handle", s.sid)
		}
		defer s.mb.mu.Unlock()
		return s.err
	}
	expired := !s.deadline.IsZero() && !now.Before(s.deadline)
	if !s.retryArmed && !expired {
		s.mb.mu.Unlock()
		return nil
	}
	if s.start == nil || s.attempts >= s.mb.retries {
		s.done = true
		if s.err == nil {
			if expired {
				s.err = fmt.Errorf("idgka: session %q: %w", s.sid, ErrSessionTimeout)
				mTimeouts.Inc()
			} else {
				s.err = fmt.Errorf("idgka: session %q: retransmission budget exhausted", s.sid)
			}
		}
		delete(s.mb.sessions, s.sid)
		s.mb.inner.Machine().Abort(s.sid)
		s.mb.inner.Machine().Release(s.sid)
		defer s.mb.mu.Unlock()
		return s.err
	}
	s.retryArmed = false
	s.deadline = time.Time{}
	s.attempts++
	mRestarts.Inc()
	// Restarting the same session id supersedes whatever attempt is still
	// in flight: the machine assigns attempt+1, replays any buffered
	// traffic peers already sent for it, and drops the stale attempt's.
	outs, evts, err := s.start()
	if err != nil {
		s.done = true
		s.err = err
		delete(s.mb.sessions, s.sid)
		s.mb.inner.Machine().Abort(s.sid)
		s.mb.inner.Machine().Release(s.sid)
		defer s.mb.mu.Unlock()
		return s.err
	}
	res := s.mb.ingestLocked(s, outs, evts)
	err = s.err
	s.mb.mu.Unlock()
	res.fire()
	return err
}

// Close abandons a session that can no longer make progress (e.g. a peer
// died mid-establishment and the application timed out): the in-flight
// flow, its buffered traffic and the registry entry are discarded. On a
// completed session Close releases the machine-side group committed
// under this sid — call it once the group has been superseded by a later
// dynamic session (or is otherwise no longer needed), after which the
// sid can no longer serve as a base. Close is idempotent: repeated calls
// are no-ops, and cannot disturb a newer session reusing the id.
func (s *Session) Close() {
	s.mb.mu.Lock()
	defer s.mb.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if !s.done {
		s.done = true
		if s.err == nil {
			s.err = fmt.Errorf("idgka: session %q closed", s.sid)
		}
	}
	// A newer handle may have been opened under the same sid since this
	// one completed; its flow and registry entry are not ours to discard.
	if cur := s.mb.sessions[s.sid]; cur != nil && cur != s {
		return
	}
	delete(s.mb.sessions, s.sid)
	s.mb.inner.Machine().Abort(s.sid)
	s.mb.inner.Machine().Release(s.sid)
}
