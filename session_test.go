package idgka

import (
	"bytes"
	"fmt"
	"testing"
)

// routePackets delivers queued packets FIFO among the sessions until
// quiescence, fanning broadcasts to every other member.
func routePackets(t *testing.T, sessions map[string]*Session) {
	t.Helper()
	type delivery struct {
		to  string
		pkt Packet
	}
	var queue []delivery
	drain := func(id string, s *Session) {
		for _, p := range s.Outbox() {
			if p.To != "" {
				queue = append(queue, delivery{to: p.To, pkt: p})
				continue
			}
			for other := range sessions {
				if other != id {
					queue = append(queue, delivery{to: other, pkt: p})
				}
			}
		}
	}
	for id, s := range sessions {
		drain(id, s)
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		s := sessions[d.to]
		if err := s.HandleMessage(d.pkt); err != nil {
			t.Fatalf("session of %s failed: %v", d.to, err)
		}
		drain(d.to, s)
	}
}

// TestSessionEstablishment drives the event-driven public API with
// application-owned routing: no Network object, no lockstep driver.
func TestSessionEstablishment(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	roster := make([]string, n)
	members := make([]*Member, n)
	for i := 0; i < n; i++ {
		roster[i] = fmt.Sprintf("ev-%02d", i+1)
		members[i], err = auth.NewMember(roster[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	sessions := map[string]*Session{}
	for i, mb := range members {
		s, err := mb.NewSession("room-7", roster)
		if err != nil {
			t.Fatal(err)
		}
		sessions[roster[i]] = s
	}
	routePackets(t, sessions)

	key := sessions[roster[0]].Key()
	if key == nil {
		t.Fatal("no key established")
	}
	for _, id := range roster {
		s := sessions[id]
		if !s.Done() {
			t.Fatalf("%s not done", id)
		}
		if s.Err() != nil {
			t.Fatalf("%s: %v", id, s.Err())
		}
		if !bytes.Equal(s.Key(), key) {
			t.Fatalf("%s disagrees on the session key", id)
		}
		if got := s.Roster(); len(got) != n || got[0] != roster[0] {
			t.Fatalf("%s: roster %v", id, got)
		}
	}
	// The members' primary group view reflects the established session.
	for _, mb := range members {
		if !bytes.Equal(mb.GroupKey(), key) {
			t.Fatalf("%s: GroupKey does not match the session", mb.ID())
		}
	}
}

// TestSessionValidation covers constructor error paths.
func TestSessionValidation(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := auth.NewMember("solo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.NewSession("", []string{"solo", "x"}); err == nil {
		t.Fatal("empty session id accepted")
	}
	if _, err := mb.NewSession("s", []string{"solo"}); err == nil {
		t.Fatal("singleton roster accepted")
	}
	if _, err := mb.NewSession("s", []string{"a", "b"}); err == nil {
		t.Fatal("roster without the member accepted")
	}
}

// TestSessionDynamicLifecycle drives the full dynamic-membership API
// event-driven: establish, admit a joiner, confirm, evict a member —
// every phase with application-owned routing and no lockstep helper.
func TestSessionDynamicLifecycle(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	roster := []string{"d-01", "d-02", "d-03"}
	members := map[string]*Member{}
	for _, id := range append(append([]string(nil), roster...), "d-04") {
		if members[id], err = auth.NewMember(id); err != nil {
			t.Fatal(err)
		}
	}

	// Establish over the founders.
	est := map[string]*Session{}
	for _, id := range roster {
		if est[id], err = members[id].NewSession("est", roster); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, est)
	key0 := est[roster[0]].Key()
	if key0 == nil {
		t.Fatal("establishment failed")
	}

	// Join: members derive the old ring from their base session (nil
	// roster); the joiner supplies it explicitly.
	join := map[string]*Session{}
	for _, id := range roster {
		if join[id], err = members[id].JoinSession("join", "est", nil, "d-04"); err != nil {
			t.Fatal(err)
		}
	}
	if join["d-04"], err = members["d-04"].JoinSession("join", "", roster, "d-04"); err != nil {
		t.Fatal(err)
	}
	routePackets(t, join)
	keyJ := join["d-04"].Key()
	if keyJ == nil || bytes.Equal(keyJ, key0) {
		t.Fatalf("join did not derive a fresh key")
	}
	for id, s := range join {
		if !bytes.Equal(s.Key(), keyJ) {
			t.Fatalf("%s disagrees on the post-join key", id)
		}
		if got := s.Roster(); len(got) != 4 || got[3] != "d-04" {
			t.Fatalf("%s: post-join roster %v", id, got)
		}
	}

	// Confirm the joined group; the handle reports the confirmed key.
	cfm := map[string]*Session{}
	for id := range join {
		if cfm[id], err = members[id].ConfirmSession("cfm", "join"); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, cfm)
	for id, s := range cfm {
		if !s.Done() || s.Err() != nil {
			t.Fatalf("%s: confirm done=%v err=%v", id, s.Done(), s.Err())
		}
		if !bytes.Equal(s.Key(), keyJ) {
			t.Fatalf("%s: confirm reported a different key", id)
		}
	}

	// Leave: d-02 is evicted; every survivor derives the contracted ring
	// and refresh set locally from its base session.
	leave := map[string]*Session{}
	for _, id := range []string{"d-01", "d-03", "d-04"} {
		if leave[id], err = members[id].LeaveSession("leave", "join", []string{"d-02"}); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, leave)
	keyL := leave["d-01"].Key()
	if keyL == nil || bytes.Equal(keyL, keyJ) {
		t.Fatal("leave did not derive a fresh key")
	}
	for id, s := range leave {
		if !bytes.Equal(s.Key(), keyL) {
			t.Fatalf("%s disagrees on the post-leave key", id)
		}
		for _, rid := range s.Roster() {
			if rid == "d-02" {
				t.Fatalf("%s still lists the evicted member", id)
			}
		}
	}
}

// TestSessionMerge fuses two independently established groups through the
// event-driven MergeSession API.
func TestSessionMerge(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	ringA := []string{"m-01", "m-02"}
	ringB := []string{"m-03", "m-04", "m-05"}
	members := map[string]*Member{}
	for _, id := range append(append([]string(nil), ringA...), ringB...) {
		if members[id], err = auth.NewMember(id); err != nil {
			t.Fatal(err)
		}
	}
	estA := map[string]*Session{}
	for _, id := range ringA {
		if estA[id], err = members[id].NewSession("est-a", ringA); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, estA)
	estB := map[string]*Session{}
	for _, id := range ringB {
		if estB[id], err = members[id].NewSession("est-b", ringB); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, estB)

	mrg := map[string]*Session{}
	for _, id := range ringA {
		if mrg[id], err = members[id].MergeSession("mrg", "est-a", ringA, ringB); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ringB {
		if mrg[id], err = members[id].MergeSession("mrg", "est-b", ringA, ringB); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, mrg)
	key := mrg["m-01"].Key()
	if key == nil {
		t.Fatal("merge failed")
	}
	if bytes.Equal(key, estA["m-01"].Key()) || bytes.Equal(key, estB["m-03"].Key()) {
		t.Fatal("merge did not derive a fresh key")
	}
	for id, s := range mrg {
		if !bytes.Equal(s.Key(), key) {
			t.Fatalf("%s disagrees on the merged key", id)
		}
		if got := s.Roster(); len(got) != 5 || got[0] != "m-01" {
			t.Fatalf("%s: merged roster %v", id, got)
		}
	}
}

// TestSessionCrossRouting: with two concurrent sessions per member, a
// packet of session B fed through session A's handle must still complete
// session B's handle — the wire envelope, not the handle, names the flow.
func TestSessionCrossRouting(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	roster := []string{"x-01", "x-02", "x-03"}
	members := map[string]*Member{}
	for _, id := range roster {
		if members[id], err = auth.NewMember(id); err != nil {
			t.Fatal(err)
		}
	}
	sessA := map[string]*Session{}
	sessB := map[string]*Session{}
	for _, id := range roster {
		if sessA[id], err = members[id].NewSession("sess-a", roster); err != nil {
			t.Fatal(err)
		}
		if sessB[id], err = members[id].NewSession("sess-b", roster); err != nil {
			t.Fatal(err)
		}
	}
	// Route EVERYTHING through the sess-a handles only.
	type delivery struct {
		to  string
		pkt Packet
	}
	var queue []delivery
	drain := func(id string) {
		for _, s := range []*Session{sessA[id], sessB[id]} {
			for _, p := range s.Outbox() {
				for _, other := range roster {
					if other != id {
						queue = append(queue, delivery{to: other, pkt: p})
					}
				}
			}
		}
	}
	for _, id := range roster {
		drain(id)
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if err := sessA[d.to].HandleMessage(d.pkt); err != nil {
			t.Fatalf("%s: %v", d.to, err)
		}
		drain(d.to)
	}
	for _, id := range roster {
		if !sessA[id].Done() || !sessB[id].Done() {
			t.Fatalf("%s: done a=%v b=%v", id, sessA[id].Done(), sessB[id].Done())
		}
		if sessB[id].Key() == nil {
			t.Fatalf("%s: session B has no key despite routing via A", id)
		}
	}
	if bytes.Equal(sessA[roster[0]].Key(), sessB[roster[0]].Key()) {
		t.Fatal("concurrent sessions derived the same key")
	}
}
