package idgka

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"idgka/internal/engine"
	"idgka/internal/wire"
)

// routePackets delivers queued packets FIFO among the sessions until
// quiescence, fanning broadcasts to every other member.
func routePackets(t *testing.T, sessions map[string]*Session) {
	t.Helper()
	type delivery struct {
		to  string
		pkt Packet
	}
	var queue []delivery
	drain := func(id string, s *Session) {
		for _, p := range s.Outbox() {
			if p.To != "" {
				queue = append(queue, delivery{to: p.To, pkt: p})
				continue
			}
			for other := range sessions {
				if other != id {
					queue = append(queue, delivery{to: other, pkt: p})
				}
			}
		}
	}
	for id, s := range sessions {
		drain(id, s)
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		s := sessions[d.to]
		if err := s.HandleMessage(d.pkt); err != nil {
			t.Fatalf("session of %s failed: %v", d.to, err)
		}
		drain(d.to, s)
	}
}

// TestSessionEstablishment drives the event-driven public API with
// application-owned routing: no Network object, no lockstep driver.
func TestSessionEstablishment(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	roster := make([]string, n)
	members := make([]*Member, n)
	for i := 0; i < n; i++ {
		roster[i] = fmt.Sprintf("ev-%02d", i+1)
		members[i], err = auth.NewMember(roster[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	sessions := map[string]*Session{}
	for i, mb := range members {
		s, err := mb.NewSession("room-7", roster)
		if err != nil {
			t.Fatal(err)
		}
		sessions[roster[i]] = s
	}
	routePackets(t, sessions)

	key := sessions[roster[0]].Key()
	if key == nil {
		t.Fatal("no key established")
	}
	for _, id := range roster {
		s := sessions[id]
		if !s.Done() {
			t.Fatalf("%s not done", id)
		}
		if s.Err() != nil {
			t.Fatalf("%s: %v", id, s.Err())
		}
		if !bytes.Equal(s.Key(), key) {
			t.Fatalf("%s disagrees on the session key", id)
		}
		if got := s.Roster(); len(got) != n || got[0] != roster[0] {
			t.Fatalf("%s: roster %v", id, got)
		}
	}
	// The members' primary group view reflects the established session.
	for _, mb := range members {
		if !bytes.Equal(mb.GroupKey(), key) {
			t.Fatalf("%s: GroupKey does not match the session", mb.ID())
		}
	}
}

// TestSessionValidation covers constructor error paths.
func TestSessionValidation(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := auth.NewMember("solo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.NewSession("", []string{"solo", "x"}); err == nil {
		t.Fatal("empty session id accepted")
	}
	if _, err := mb.NewSession("s", []string{"solo"}); err == nil {
		t.Fatal("singleton roster accepted")
	}
	if _, err := mb.NewSession("s", []string{"a", "b"}); err == nil {
		t.Fatal("roster without the member accepted")
	}
}

// TestSessionDynamicLifecycle drives the full dynamic-membership API
// event-driven: establish, admit a joiner, confirm, evict a member —
// every phase with application-owned routing and no lockstep helper.
func TestSessionDynamicLifecycle(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	roster := []string{"d-01", "d-02", "d-03"}
	members := map[string]*Member{}
	for _, id := range append(append([]string(nil), roster...), "d-04") {
		if members[id], err = auth.NewMember(id); err != nil {
			t.Fatal(err)
		}
	}

	// Establish over the founders.
	est := map[string]*Session{}
	for _, id := range roster {
		if est[id], err = members[id].NewSession("est", roster); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, est)
	key0 := est[roster[0]].Key()
	if key0 == nil {
		t.Fatal("establishment failed")
	}

	// Join: members derive the old ring from their base session (nil
	// roster); the joiner supplies it explicitly.
	join := map[string]*Session{}
	for _, id := range roster {
		if join[id], err = members[id].JoinSession("join", "est", nil, "d-04"); err != nil {
			t.Fatal(err)
		}
	}
	if join["d-04"], err = members["d-04"].JoinSession("join", "", roster, "d-04"); err != nil {
		t.Fatal(err)
	}
	routePackets(t, join)
	keyJ := join["d-04"].Key()
	if keyJ == nil || bytes.Equal(keyJ, key0) {
		t.Fatalf("join did not derive a fresh key")
	}
	for id, s := range join {
		if !bytes.Equal(s.Key(), keyJ) {
			t.Fatalf("%s disagrees on the post-join key", id)
		}
		if got := s.Roster(); len(got) != 4 || got[3] != "d-04" {
			t.Fatalf("%s: post-join roster %v", id, got)
		}
	}

	// Confirm the joined group; the handle reports the confirmed key.
	cfm := map[string]*Session{}
	for id := range join {
		if cfm[id], err = members[id].ConfirmSession("cfm", "join"); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, cfm)
	for id, s := range cfm {
		if !s.Done() || s.Err() != nil {
			t.Fatalf("%s: confirm done=%v err=%v", id, s.Done(), s.Err())
		}
		if !bytes.Equal(s.Key(), keyJ) {
			t.Fatalf("%s: confirm reported a different key", id)
		}
	}

	// Leave: d-02 is evicted; every survivor derives the contracted ring
	// and refresh set locally from its base session.
	leave := map[string]*Session{}
	for _, id := range []string{"d-01", "d-03", "d-04"} {
		if leave[id], err = members[id].LeaveSession("leave", "join", []string{"d-02"}); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, leave)
	keyL := leave["d-01"].Key()
	if keyL == nil || bytes.Equal(keyL, keyJ) {
		t.Fatal("leave did not derive a fresh key")
	}
	for id, s := range leave {
		if !bytes.Equal(s.Key(), keyL) {
			t.Fatalf("%s disagrees on the post-leave key", id)
		}
		for _, rid := range s.Roster() {
			if rid == "d-02" {
				t.Fatalf("%s still lists the evicted member", id)
			}
		}
	}
}

// TestSessionMerge fuses two independently established groups through the
// event-driven MergeSession API.
func TestSessionMerge(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	ringA := []string{"m-01", "m-02"}
	ringB := []string{"m-03", "m-04", "m-05"}
	members := map[string]*Member{}
	for _, id := range append(append([]string(nil), ringA...), ringB...) {
		if members[id], err = auth.NewMember(id); err != nil {
			t.Fatal(err)
		}
	}
	estA := map[string]*Session{}
	for _, id := range ringA {
		if estA[id], err = members[id].NewSession("est-a", ringA); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, estA)
	estB := map[string]*Session{}
	for _, id := range ringB {
		if estB[id], err = members[id].NewSession("est-b", ringB); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, estB)

	mrg := map[string]*Session{}
	for _, id := range ringA {
		if mrg[id], err = members[id].MergeSession("mrg", "est-a", ringA, ringB); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ringB {
		if mrg[id], err = members[id].MergeSession("mrg", "est-b", ringA, ringB); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, mrg)
	key := mrg["m-01"].Key()
	if key == nil {
		t.Fatal("merge failed")
	}
	if bytes.Equal(key, estA["m-01"].Key()) || bytes.Equal(key, estB["m-03"].Key()) {
		t.Fatal("merge did not derive a fresh key")
	}
	for id, s := range mrg {
		if !bytes.Equal(s.Key(), key) {
			t.Fatalf("%s disagrees on the merged key", id)
		}
		if got := s.Roster(); len(got) != 5 || got[0] != "m-01" {
			t.Fatalf("%s: merged roster %v", id, got)
		}
	}
}

// TestSessionCrossRouting: with two concurrent sessions per member, a
// packet of session B fed through session A's handle must still complete
// session B's handle — the wire envelope, not the handle, names the flow.
func TestSessionCrossRouting(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	roster := []string{"x-01", "x-02", "x-03"}
	members := map[string]*Member{}
	for _, id := range roster {
		if members[id], err = auth.NewMember(id); err != nil {
			t.Fatal(err)
		}
	}
	sessA := map[string]*Session{}
	sessB := map[string]*Session{}
	for _, id := range roster {
		if sessA[id], err = members[id].NewSession("sess-a", roster); err != nil {
			t.Fatal(err)
		}
		if sessB[id], err = members[id].NewSession("sess-b", roster); err != nil {
			t.Fatal(err)
		}
	}
	// Route EVERYTHING through the sess-a handles only.
	type delivery struct {
		to  string
		pkt Packet
	}
	var queue []delivery
	drain := func(id string) {
		for _, s := range []*Session{sessA[id], sessB[id]} {
			for _, p := range s.Outbox() {
				for _, other := range roster {
					if other != id {
						queue = append(queue, delivery{to: other, pkt: p})
					}
				}
			}
		}
	}
	for _, id := range roster {
		drain(id)
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if err := sessA[d.to].HandleMessage(d.pkt); err != nil {
			t.Fatalf("%s: %v", d.to, err)
		}
		drain(d.to)
	}
	for _, id := range roster {
		if !sessA[id].Done() || !sessB[id].Done() {
			t.Fatalf("%s: done a=%v b=%v", id, sessA[id].Done(), sessB[id].Done())
		}
		if sessB[id].Key() == nil {
			t.Fatalf("%s: session B has no key despite routing via A", id)
		}
	}
	if bytes.Equal(sessA[roster[0]].Key(), sessB[roster[0]].Key()) {
		t.Fatal("concurrent sessions derived the same key")
	}
}

// TestSessionRetransmitRecovery exercises the timeout/retransmit runtime
// end to end: a corrupted round-1 message fails alice's flow with the
// engine's Retryable signal, which arms the retransmit scheduler instead
// of killing the session. Alice's Tick re-drives the flow under a fresh
// attempt; bob — wedged on the stale attempt — is restarted by his own
// deadline-driven Tick; both converge on one key, exactly the paper's
// "all members retransmit again" loop without a coordinator.
func TestSessionRetransmitRecovery(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	roster := []string{"rt-01", "rt-02"}
	alice, err := auth.NewMember(roster[0])
	if err != nil {
		t.Fatal(err)
	}
	bob, err := auth.NewMember(roster[1])
	if err != nil {
		t.Fatal(err)
	}
	sa, err := alice.NewSession("room-rt", roster)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := bob.NewSession("room-rt", roster)
	if err != nil {
		t.Fatal(err)
	}

	// A corrupted round-1 (valid session envelope, garbage protocol
	// payload) claiming to come from bob: alice's flow fails retryable.
	env := wire.NewBuffer().PutString("room-rt").PutUint(0).Bytes()
	bad := Packet{From: roster[1], Type: engine.MsgRound1, Payload: append(env, 0xde, 0xad)}
	if err := sa.HandleMessage(bad); err != nil {
		t.Fatalf("retryable failure surfaced as terminal: %v", err)
	}
	if sa.Done() {
		t.Fatal("session terminal after a retryable failure")
	}

	// Alice's tick retransmits; her restart traffic reaches bob early and
	// is buffered under the new attempt.
	now := time.Now()
	if err := sa.Tick(now); err != nil {
		t.Fatal(err)
	}
	if sa.Attempts() != 1 {
		t.Fatalf("Attempts = %d after one restart", sa.Attempts())
	}
	restart := sa.Outbox()
	if len(restart) == 0 {
		t.Fatal("restart produced no retransmission")
	}
	for _, p := range restart {
		if err := sb.HandleMessage(p); err != nil {
			t.Fatal(err)
		}
	}
	// Bob's deadline expires: his tick abandons the stale attempt and
	// re-drives the flow, replaying alice's buffered restart traffic.
	sb.SetDeadline(now)
	if err := sb.Tick(now); err != nil {
		t.Fatal(err)
	}
	routePackets(t, map[string]*Session{roster[0]: sa, roster[1]: sb})

	if !sa.Done() || !sb.Done() {
		t.Fatalf("not converged: a=%v b=%v", sa.Done(), sb.Done())
	}
	if sa.Key() == nil || !bytes.Equal(sa.Key(), sb.Key()) {
		t.Fatal("retransmitted session keys disagree")
	}
}

// TestSessionDeadlineTimeout: with no peer answering, each expired
// deadline consumes one retransmission; once the budget is gone the
// session fails terminally with ErrSessionTimeout.
func TestSessionDeadlineTimeout(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewMember("to-01")
	if err != nil {
		t.Fatal(err)
	}
	s, err := alice.NewSession("room-to", []string{"to-01", "to-99"})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := s.Tick(now); err != nil || s.Attempts() != 0 {
		t.Fatalf("tick without deadline acted: %v, attempts %d", err, s.Attempts())
	}
	for want := 1; want <= 2; want++ { // MaxRetries defaults to 2
		s.SetDeadline(now)
		if err := s.Tick(now); err != nil {
			t.Fatalf("restart %d failed: %v", want, err)
		}
		if s.Attempts() != want || s.Done() {
			t.Fatalf("after deadline %d: attempts %d, done %v", want, s.Attempts(), s.Done())
		}
		if len(s.Outbox()) == 0 {
			t.Fatalf("restart %d sent nothing", want)
		}
	}
	s.SetDeadline(now)
	err = s.Tick(now)
	if !errors.Is(err, ErrSessionTimeout) {
		t.Fatalf("want ErrSessionTimeout, got %v", err)
	}
	if !s.Done() || s.Err() == nil || s.Key() != nil {
		t.Fatal("timed-out session not terminal")
	}
}

// TestPeerDownHandlerAndDeadPeers: a peer-down control packet fed through
// any session handle records the death once, fires the handler once, and
// is never treated as protocol traffic.
func TestPeerDownHandlerAndDeadPeers(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewMember("pd-01")
	if err != nil {
		t.Fatal(err)
	}
	var fired []string
	alice.SetPeerDownHandler(func(peer string) { fired = append(fired, peer) })
	s, err := alice.NewSession("room-pd", []string{"pd-01", "pd-02"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // duplicate notices collapse
		if err := s.HandleMessage(PeerDownPacket("pd-02")); err != nil {
			t.Fatal(err)
		}
	}
	if len(fired) != 1 || fired[0] != "pd-02" {
		t.Fatalf("handler fired %v", fired)
	}
	if dead := alice.DeadPeers(); len(dead) != 1 || dead[0] != "pd-02" {
		t.Fatalf("DeadPeers = %v", dead)
	}
	if s.Done() {
		t.Fatal("peer-down notice terminated the session")
	}
}

// TestSessionCloseIdempotent: Close is safe to repeat and cannot disturb
// a newer session that reused the id.
func TestSessionCloseIdempotent(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	roster := []string{"cl-01", "cl-02"}
	members := make([]*Member, 2)
	sessions := map[string]*Session{}
	for i, id := range roster {
		if members[i], err = auth.NewMember(id); err != nil {
			t.Fatal(err)
		}
		if sessions[id], err = members[i].NewSession("room-cl", roster); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, sessions)
	first := sessions[roster[0]]
	if !first.Done() || first.Key() == nil {
		t.Fatal("establishment failed")
	}

	// A new handle reuses the sid (retransmission-style restart); closing
	// the COMPLETED old handle must not tear the new flow or the
	// committed base group down.
	second, err := members[0].NewSession("room-cl", roster)
	if err != nil {
		t.Fatal(err)
	}
	first.Close()
	first.Close() // idempotent
	if members[0].inner.Machine().Session("room-cl") == nil {
		t.Fatal("closing a superseded handle released the live session's group")
	}
	if second.Done() {
		t.Fatal("closing a superseded handle killed the new flow")
	}
	second.Close()
	second.Close() // idempotent on an aborted in-flight session too
	if !second.Done() || second.Err() == nil {
		t.Fatal("closed in-flight session not terminal")
	}
	if members[0].inner.Machine().Session("room-cl") != nil {
		t.Fatal("owning handle's Close did not release the group")
	}
}

// TestSessionTickSupersededHandle: a stale handle's Tick must fail
// locally instead of tearing down (or re-driving) a newer session that
// reused the sid.
func TestSessionTickSupersededHandle(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewMember("sp-01")
	if err != nil {
		t.Fatal(err)
	}
	roster := []string{"sp-01", "sp-02"}
	old, err := alice.NewSession("room-sp", roster)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := alice.NewSession("room-sp", roster) // supersedes old
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	old.SetDeadline(now)
	for i := 0; i < 4; i++ { // budget exhausted and beyond
		old.Tick(now)
		old.SetDeadline(now)
	}
	if !old.Done() || old.Err() == nil {
		t.Fatal("stale handle not failed")
	}
	if fresh.Done() {
		t.Fatal("stale handle's Tick killed the live session")
	}
	if alice.sessions["room-sp"] != fresh {
		t.Fatal("stale handle's Tick dropped the live registry entry")
	}
	// The live handle still ticks/restarts normally.
	fresh.SetDeadline(now)
	if err := fresh.Tick(now); err != nil || fresh.Attempts() != 1 {
		t.Fatalf("live handle broken after stale tick: %v, attempts %d", err, fresh.Attempts())
	}
}
