package idgka

import (
	"bytes"
	"fmt"
	"testing"
)

// routePackets delivers queued packets FIFO among the sessions until
// quiescence, fanning broadcasts to every other member.
func routePackets(t *testing.T, sessions map[string]*Session) {
	t.Helper()
	type delivery struct {
		to  string
		pkt Packet
	}
	var queue []delivery
	drain := func(id string, s *Session) {
		for _, p := range s.Outbox() {
			if p.To != "" {
				queue = append(queue, delivery{to: p.To, pkt: p})
				continue
			}
			for other := range sessions {
				if other != id {
					queue = append(queue, delivery{to: other, pkt: p})
				}
			}
		}
	}
	for id, s := range sessions {
		drain(id, s)
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		s := sessions[d.to]
		if err := s.HandleMessage(d.pkt); err != nil {
			t.Fatalf("session of %s failed: %v", d.to, err)
		}
		drain(d.to, s)
	}
}

// TestSessionEstablishment drives the event-driven public API with
// application-owned routing: no Network object, no lockstep driver.
func TestSessionEstablishment(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	roster := make([]string, n)
	members := make([]*Member, n)
	for i := 0; i < n; i++ {
		roster[i] = fmt.Sprintf("ev-%02d", i+1)
		members[i], err = auth.NewMember(roster[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	sessions := map[string]*Session{}
	for i, mb := range members {
		s, err := mb.NewSession("room-7", roster)
		if err != nil {
			t.Fatal(err)
		}
		sessions[roster[i]] = s
	}
	routePackets(t, sessions)

	key := sessions[roster[0]].Key()
	if key == nil {
		t.Fatal("no key established")
	}
	for _, id := range roster {
		s := sessions[id]
		if !s.Done() {
			t.Fatalf("%s not done", id)
		}
		if s.Err() != nil {
			t.Fatalf("%s: %v", id, s.Err())
		}
		if !bytes.Equal(s.Key(), key) {
			t.Fatalf("%s disagrees on the session key", id)
		}
		if got := s.Roster(); len(got) != n || got[0] != roster[0] {
			t.Fatalf("%s: roster %v", id, got)
		}
	}
	// The members' primary group view reflects the established session.
	for _, mb := range members {
		if !bytes.Equal(mb.GroupKey(), key) {
			t.Fatalf("%s: GroupKey does not match the session", mb.ID())
		}
	}
}

// TestSessionValidation covers constructor error paths.
func TestSessionValidation(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := auth.NewMember("solo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.NewSession("", []string{"solo", "x"}); err == nil {
		t.Fatal("empty session id accepted")
	}
	if _, err := mb.NewSession("s", []string{"solo"}); err == nil {
		t.Fatal("singleton roster accepted")
	}
	if _, err := mb.NewSession("s", []string{"a", "b"}); err == nil {
		t.Fatal("roster without the member accepted")
	}
}

// TestSessionCrossRouting: with two concurrent sessions per member, a
// packet of session B fed through session A's handle must still complete
// session B's handle — the wire envelope, not the handle, names the flow.
func TestSessionCrossRouting(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	roster := []string{"x-01", "x-02", "x-03"}
	members := map[string]*Member{}
	for _, id := range roster {
		if members[id], err = auth.NewMember(id); err != nil {
			t.Fatal(err)
		}
	}
	sessA := map[string]*Session{}
	sessB := map[string]*Session{}
	for _, id := range roster {
		if sessA[id], err = members[id].NewSession("sess-a", roster); err != nil {
			t.Fatal(err)
		}
		if sessB[id], err = members[id].NewSession("sess-b", roster); err != nil {
			t.Fatal(err)
		}
	}
	// Route EVERYTHING through the sess-a handles only.
	type delivery struct {
		to  string
		pkt Packet
	}
	var queue []delivery
	drain := func(id string) {
		for _, s := range []*Session{sessA[id], sessB[id]} {
			for _, p := range s.Outbox() {
				for _, other := range roster {
					if other != id {
						queue = append(queue, delivery{to: other, pkt: p})
					}
				}
			}
		}
	}
	for _, id := range roster {
		drain(id)
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if err := sessA[d.to].HandleMessage(d.pkt); err != nil {
			t.Fatalf("%s: %v", d.to, err)
		}
		drain(d.to)
	}
	for _, id := range roster {
		if !sessA[id].Done() || !sessB[id].Done() {
			t.Fatalf("%s: done a=%v b=%v", id, sessA[id].Done(), sessB[id].Done())
		}
		if sessB[id].Key() == nil {
			t.Fatalf("%s: session B has no key despite routing via A", id)
		}
	}
	if bytes.Equal(sessA[roster[0]].Key(), sessB[roster[0]].Key()) {
		t.Fatal("concurrent sessions derived the same key")
	}
}
