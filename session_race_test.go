package idgka

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stressFan distributes one outbound packet to the other members' inboxes
// without blocking forever when the test is shutting down.
func stressFan(p Packet, from string, inboxes map[string]chan Packet, stop <-chan struct{}) {
	for id, ch := range inboxes {
		if id == from || (p.To != "" && p.To != id) {
			continue
		}
		select {
		case ch <- p:
		case <-stop:
			return
		}
	}
}

// TestMemberConcurrentSessionStress drives one member's sessions from
// many goroutines at once — concurrent HandleMessage, Outbox, Tick and
// Close across several in-flight establishments, followed by a sid-reuse
// restart racing the stale handle's Tick/Close — and asserts every
// session still converges on an agreed key. Run under -race this is the
// thread-safety contract's acceptance test.
func TestMemberConcurrentSessionStress(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"st-01", "st-02"}
	members := map[string]*Member{}
	for _, id := range ids {
		if members[id], err = auth.NewMember(id); err != nil {
			t.Fatal(err)
		}
	}

	const groups = 5
	const workers = 4
	sids := make([]string, groups)
	for g := range sids {
		sids[g] = fmt.Sprintf("stress-%d", g)
	}
	handles := map[string][]*Session{}
	for _, id := range ids {
		for _, sid := range sids {
			s, err := members[id].NewSession(sid, ids)
			if err != nil {
				t.Fatal(err)
			}
			handles[id] = append(handles[id], s)
		}
	}

	run := func(phase string, check func() bool) {
		stop := make(chan struct{})
		inboxes := map[string]chan Packet{}
		for _, id := range ids {
			inboxes[id] = make(chan Packet, 8192)
		}
		var wg sync.WaitGroup
		var step atomic.Uint64
		for _, id := range ids {
			// Seed: drain whatever the handles already queued.
			for _, s := range handles[id] {
				for _, p := range s.Outbox() {
					stressFan(p, id, inboxes, stop)
				}
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id string, w int) {
					defer wg.Done()
					hs := handles[id]
					for {
						var pkt Packet
						select {
						case <-stop:
							return
						case pkt = <-inboxes[id]:
						}
						// Any handle may ingest any delivery: rotate so
						// every handle sees foreign traffic.
						n := step.Add(1)
						h := hs[int(n)%len(hs)]
						_ = h.HandleMessage(pkt) // a closed handle's own error is expected
						for _, s := range hs {
							for _, p := range s.Outbox() {
								stressFan(p, id, inboxes, stop)
							}
							if n%17 == 0 {
								_ = s.Tick(time.Now())
								_ = s.Done()
								_ = s.Attempts()
							}
						}
						if n%29 == 0 {
							_ = members[id].DeadPeers()
							_ = members[id].GroupKey()
						}
					}
				}(id, w)
			}
		}
		deadline := time.After(60 * time.Second)
		for !check() {
			select {
			case <-deadline:
				close(stop)
				wg.Wait()
				t.Fatalf("%s: sessions did not converge in time", phase)
			case <-time.After(time.Millisecond):
			}
		}
		close(stop)
		wg.Wait()
	}

	allDone := func() bool {
		for _, id := range ids {
			for _, s := range handles[id] {
				if !s.Done() {
					return false
				}
			}
		}
		return true
	}
	run("establish", allDone)
	for g := range sids {
		ref := handles[ids[0]][g].Key()
		if ref == nil || handles[ids[0]][g].Err() != nil {
			t.Fatalf("%s failed: %v", sids[g], handles[ids[0]][g].Err())
		}
		for _, id := range ids[1:] {
			if !bytes.Equal(handles[id][g].Key(), ref) {
				t.Fatalf("%s: members disagree on the key", sids[g])
			}
		}
	}

	// Sid-reuse restart storm: fresh handles reuse every sid while the
	// stale completed handles are concurrently Closed and Ticked from
	// other goroutines — none of which may disturb the new flows.
	stale := map[string][]*Session{}
	for _, id := range ids {
		stale[id] = handles[id]
		handles[id] = nil
	}
	var chaos sync.WaitGroup
	for _, id := range ids {
		for _, s := range stale[id] {
			chaos.Add(1)
			go func(s *Session) {
				defer chaos.Done()
				for i := 0; i < 20; i++ {
					_ = s.Tick(time.Now())
				}
				s.Close()
				s.Close()
			}(s)
		}
	}
	for _, id := range ids {
		for _, sid := range sids {
			s, err := members[id].NewSession(sid, ids)
			if err != nil {
				t.Fatal(err)
			}
			handles[id] = append(handles[id], s)
		}
	}
	chaos.Wait()
	allDone2 := func() bool {
		for _, id := range ids {
			for _, s := range handles[id] {
				if !s.Done() {
					return false
				}
			}
		}
		return true
	}
	run("sid-reuse restart", allDone2)
	for g := range sids {
		ref := handles[ids[0]][g].Key()
		if ref == nil || handles[ids[0]][g].Err() != nil {
			t.Fatalf("restarted %s failed: %v", sids[g], handles[ids[0]][g].Err())
		}
		for _, id := range ids[1:] {
			if !bytes.Equal(handles[id][g].Key(), ref) {
				t.Fatalf("restarted %s: members disagree on the key", sids[g])
			}
		}
	}
}

// TestMemberConcurrentPeerDown hammers the peer-down path from many
// goroutines: duplicate notices through different handles must fire the
// (lock-free) handler exactly once per peer, and the handler may call
// back into the member.
func TestMemberConcurrentPeerDown(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewMember("pd-st-01")
	if err != nil {
		t.Fatal(err)
	}
	var fired sync.Map
	var count atomic.Int32
	alice.SetPeerDownHandler(func(peer string) {
		count.Add(1)
		fired.Store(peer, true)
		_ = alice.DeadPeers() // reentrancy: the member lock is not held here
	})
	s, err := alice.NewSession("pd-st", []string{"pd-st-01", "pd-st-02"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				peer := fmt.Sprintf("ghost-%d", i%4)
				if w%2 == 0 {
					_ = s.HandleMessage(PeerDownPacket(peer))
				} else {
					alice.HandlePacket(PeerDownPacket(peer))
				}
			}
		}(w)
	}
	wg.Wait()
	if got := count.Load(); got != 4 {
		t.Fatalf("handler fired %d times, want 4 (once per distinct peer)", got)
	}
	if dead := alice.DeadPeers(); len(dead) != 4 {
		t.Fatalf("DeadPeers = %v", dead)
	}
}
