package idgka

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"idgka/internal/engine"
	"idgka/internal/wire"
)

// TestCrossSessionOutboxRouting: a wire delivery fed through one session
// handle whose reaction belongs to a DIFFERENT live session must appear in
// the owning handle's Outbox — not the stepping handle's. The regression
// scenario: two concurrent sessions share deliveries through one handle;
// that handle completes first, the application stops draining it, and the
// other session's reactions were silently stranded there.
func TestCrossSessionOutboxRouting(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	roster := []string{"or-01", "or-02"}
	a, err := auth.NewMember(roster[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := auth.NewMember(roster[1])
	if err != nil {
		t.Fatal(err)
	}

	// Complete the "fast" session first.
	saF, err := a.NewSession("fast", roster)
	if err != nil {
		t.Fatal(err)
	}
	sbF, err := b.NewSession("fast", roster)
	if err != nil {
		t.Fatal(err)
	}
	routePackets(t, map[string]*Session{roster[0]: saF, roster[1]: sbF})
	if !sbF.Done() || sbF.Key() == nil {
		t.Fatal("fast session did not complete")
	}

	// Start the "slow" session on both sides; park b's own opening
	// traffic so the flow is mid-establishment.
	saS, err := a.NewSession("slow", roster)
	if err != nil {
		t.Fatal(err)
	}
	sbS, err := b.NewSession("slow", roster)
	if err != nil {
		t.Fatal(err)
	}
	parked := sbS.Outbox()

	// Feed a's slow-session round 1 through b's COMPLETED fast handle.
	// b holds both round-1 contributions afterwards, so the machine
	// reacts with b's round 2 — which belongs to the slow session.
	for _, p := range saS.Outbox() {
		if err := sbF.HandleMessage(p); err != nil {
			t.Fatal(err)
		}
	}
	if leaked := sbF.Outbox(); len(leaked) != 0 {
		t.Fatalf("%d reaction(s) stranded on the completed stepping handle", len(leaked))
	}
	reaction := sbS.Outbox()
	if len(reaction) == 0 {
		t.Fatal("no reaction routed to the owning session's outbox")
	}

	// Completeness: deliver everything and check the slow session agrees.
	for _, p := range append(parked, reaction...) {
		if err := saS.HandleMessage(p); err != nil {
			t.Fatal(err)
		}
	}
	routePackets(t, map[string]*Session{roster[0]: saS, roster[1]: sbS})
	if saS.Key() == nil || !bytes.Equal(saS.Key(), sbS.Key()) {
		t.Fatal("slow session keys disagree after cross-handle routing")
	}
}

// TestTerminalFailureReleasesMachineState: a terminal EventFailed through
// HandleMessage must tear the machine down exactly like Tick's
// budget-exhausted path — no live flow, no buffered traffic and no
// committed view may linger under the dead session id.
func TestTerminalFailureReleasesMachineState(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewMemberWithConfig("tf-01", Config{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := alice.NewSession("tf", []string{"tf-01", "tf-02"})
	if err != nil {
		t.Fatal(err)
	}

	// Future-attempt traffic buffers inside the machine.
	future := wire.NewBuffer().PutString("tf").PutUint(9).Bytes()
	if err := s.HandleMessage(Packet{From: "tf-02", Type: engine.MsgRound1, Payload: append(future, 0x01)}); err != nil {
		t.Fatal(err)
	}
	if got := alice.inner.Machine().Buffered("tf"); got != 1 {
		t.Fatalf("future-attempt message not buffered: %d", got)
	}

	// First corrupt round 1: retryable, consumes the retransmit arm.
	env0 := wire.NewBuffer().PutString("tf").PutUint(0).Bytes()
	if err := s.HandleMessage(Packet{From: "tf-02", Type: engine.MsgRound1, Payload: append(env0, 0xde)}); err != nil {
		t.Fatalf("retryable failure surfaced as terminal: %v", err)
	}
	if err := s.Tick(time.Now()); err != nil || s.Attempts() != 1 {
		t.Fatalf("restart failed: %v (attempts %d)", err, s.Attempts())
	}
	s.Outbox()

	// Second corrupt round 1 exhausts MaxRetries=1: terminal failure.
	env1 := wire.NewBuffer().PutString("tf").PutUint(1).Bytes()
	err = s.HandleMessage(Packet{From: "tf-02", Type: engine.MsgRound1, Payload: append(env1, 0xde)})
	if err == nil || !s.Done() || s.Err() == nil {
		t.Fatalf("budget-exhausted failure not terminal: err=%v done=%v", err, s.Done())
	}

	mc := alice.inner.Machine()
	if mc.ActiveFlow("tf") {
		t.Fatal("dead session still has a live flow in the machine")
	}
	if got := mc.Buffered("tf"); got != 0 {
		t.Fatalf("dead session still holds %d buffered message(s)", got)
	}
	if mc.Session("tf") != nil {
		t.Fatal("dead session still has a committed view registered")
	}
	if alice.sessions["tf"] != nil {
		t.Fatal("dead session still registered on the member")
	}
}

// TestTickStartErrorReleasesMachineState: when a Tick restart is rejected
// by the engine, the terminal teardown must clear buffered traffic too
// (same invariant as the terminal-failure path).
func TestTickStartErrorReleasesMachineState(t *testing.T) {
	auth, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewMember("te-01")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	s, err := alice.newHandle("te", func() ([]engine.Outbound, []engine.Event, error) {
		calls++
		if calls > 1 {
			return nil, nil, fmt.Errorf("synthetic restart rejection")
		}
		return alice.inner.Machine().StartInitial("te", []string{"te-01", "te-02"})
	})
	if err != nil {
		t.Fatal(err)
	}
	future := wire.NewBuffer().PutString("te").PutUint(9).Bytes()
	if err := s.HandleMessage(Packet{From: "te-02", Type: engine.MsgRound1, Payload: append(future, 0x01)}); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	s.SetDeadline(now)
	if err := s.Tick(now); err == nil || !s.Done() {
		t.Fatalf("rejected restart not terminal: %v", err)
	}
	if got := alice.inner.Machine().Buffered("te"); got != 0 {
		t.Fatalf("rejected restart left %d buffered message(s)", got)
	}
}
