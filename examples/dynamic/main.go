// Dynamic membership: a mobile ad-hoc group that nodes join and leave,
// that splits when vehicles drive apart and re-merges when they meet —
// the scenario the paper's Section 7 protocols are designed for.
//
//	go run ./examples/dynamic
package main

import (
	"crypto/sha256"
	"fmt"
	"log"

	"idgka"
)

func fingerprint(m *idgka.Member) string {
	fp := sha256.Sum256(m.GroupKey())
	return fmt.Sprintf("%x", fp[:6])
}

func main() {
	log.SetFlags(0)
	authority, err := idgka.NewAuthority()
	if err != nil {
		log.Fatal(err)
	}
	network := idgka.NewNetwork()

	newNode := func(id string) *idgka.Member {
		m, err := authority.NewMember(id)
		if err != nil {
			log.Fatalf("extract %s: %v", id, err)
		}
		if err := network.Attach(m); err != nil {
			log.Fatalf("attach %s: %v", id, err)
		}
		return m
	}

	// A convoy of six vehicles establishes a key.
	var convoy []*idgka.Member
	for i := 1; i <= 6; i++ {
		convoy = append(convoy, newNode(fmt.Sprintf("car-%d", i)))
	}
	if err := idgka.Establish(network, convoy); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convoy keyed: ring=%v key=%s\n", convoy[0].Roster(), fingerprint(convoy[0]))

	// A seventh vehicle catches up: 3-round Join, only three nodes do any
	// public-key work.
	late := newNode("car-7")
	if err := idgka.Join(network, convoy, late); err != nil {
		log.Fatal(err)
	}
	convoy = append(convoy, late)
	fmt.Printf("car-7 joined:  ring=%v key=%s\n", convoy[0].Roster(), fingerprint(convoy[0]))

	// car-3 exits the highway: 2-round Leave; its old key is useless now.
	if err := idgka.Leave(network, convoy, "car-3"); err != nil {
		log.Fatal(err)
	}
	stale := fingerprint(convoy[2]) // car-3's stale view
	var remaining []*idgka.Member
	for _, m := range convoy {
		if m.ID() != "car-3" {
			remaining = append(remaining, m)
		}
	}
	network.Detach("car-3")
	convoy = remaining
	fmt.Printf("car-3 left:    ring=%v key=%s (car-3 still sees %s)\n",
		convoy[0].Roster(), fingerprint(convoy[0]), stale)

	// A second convoy appears at an on-ramp with its own key...
	side := idgka.NewNetwork()
	var vans []*idgka.Member
	for i := 1; i <= 3; i++ {
		v, err := authority.NewMember(fmt.Sprintf("van-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		if err := side.Attach(v); err != nil {
			log.Fatal(err)
		}
		vans = append(vans, v)
	}
	if err := idgka.Establish(side, vans); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("van convoy:    ring=%v key=%s\n", vans[0].Roster(), fingerprint(vans[0]))

	// ...and merges: 3 rounds, 6 messages, only the two controllers
	// exponentiate.
	for _, v := range vans {
		if err := network.Attach(v); err != nil {
			log.Fatal(err)
		}
	}
	if err := idgka.Merge(network, convoy, vans); err != nil {
		log.Fatal(err)
	}
	convoy = append(convoy, vans...)
	fmt.Printf("merged:        ring=%v key=%s\n", convoy[0].Roster(), fingerprint(convoy[0]))

	// The vans take a different route: Partition removes all three at
	// once.
	if err := idgka.Partition(network, convoy, []string{"van-1", "van-2", "van-3"}); err != nil {
		log.Fatal(err)
	}
	var cars []*idgka.Member
	for _, m := range convoy {
		if m.ID()[0] == 'c' {
			cars = append(cars, m)
		}
	}
	fmt.Printf("partitioned:   ring=%v key=%s\n", cars[0].Roster(), fingerprint(cars[0]))

	msgs, bytes := network.Totals()
	fmt.Printf("\nwhole lifecycle: %d messages, %d bytes on the medium\n", msgs, bytes)
}
