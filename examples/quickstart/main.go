// Quickstart: establish an authenticated group key among five wireless
// nodes with the paper's two-round protocol and use it to protect a
// message.
//
//	go run ./examples/quickstart
package main

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"log"

	"idgka"
)

func main() {
	log.SetFlags(0)

	// The PKG (Setup): owns the system parameters and master keys. Every
	// node later receives only the public parameters plus its own
	// identity key — no certificates anywhere.
	authority, err := idgka.NewAuthority()
	if err != nil {
		log.Fatalf("authority: %v", err)
	}

	// A shared broadcast medium (radio range).
	network := idgka.NewNetwork()

	// Extract identity keys for five nodes and attach them. The slice
	// order is the ring order; the first member acts as the trusted
	// controller U_1.
	ids := []string{"gateway", "sensor-a", "sensor-b", "sensor-c", "relay"}
	var members []*idgka.Member
	for _, id := range ids {
		m, err := authority.NewMember(id)
		if err != nil {
			log.Fatalf("extract %s: %v", id, err)
		}
		if err := network.Attach(m); err != nil {
			log.Fatalf("attach %s: %v", id, err)
		}
		members = append(members, m)
	}

	// Two rounds of broadcasts, one batch signature verification per node,
	// and everyone holds the same key.
	if err := idgka.Establish(network, members); err != nil {
		log.Fatalf("establish: %v", err)
	}

	key := members[0].GroupKey()
	fp := sha256.Sum256(key)
	fmt.Printf("group of %d established; key fingerprint %x\n", len(members), fp[:8])
	for _, m := range members {
		other := sha256.Sum256(m.GroupKey())
		if other != fp {
			log.Fatalf("%s disagrees on the key!", m.ID())
		}
	}

	// Use the agreed key for secure group communication.
	block, err := aes.NewCipher(fp[:16])
	if err != nil {
		log.Fatal(err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		log.Fatal(err)
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		log.Fatal(err)
	}
	ct := aead.Seal(nil, nonce, []byte("sensor readings: 21.4C, 48%RH"), nil)
	pt, err := aead.Open(nil, nonce, ct, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast protected under the group key: %q\n", pt)

	// What did it cost each node? (paper's Table 1 row: 3 exponentiations,
	// 1 signature generation, 1 batch verification, 2 tx, 2(n-1) rx.)
	model := idgka.DefaultEnergyModel()
	for _, m := range members {
		r := m.Report()
		fmt.Printf("  %-9s exp=%d sigGen=%d sigVer=%d tx=%dB rx=%dB -> %.1f mJ\n",
			m.ID(), r.Exp, r.TotalSignGen(), r.TotalSignVer(), r.BytesTx, r.BytesRx,
			model.EnergyJ(r)*1000)
	}
}
