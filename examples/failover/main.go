// Failover: a sensor cluster loses a node without warning and re-keys
// itself — the fault-tolerance runtime of the event-driven Session API.
//
// The cluster establishes a key; then one node goes dark. The medium's
// failure detector injects a peer-down control packet (exactly what the
// TCP transport and netsim.Async deliver on disconnect/crash), the
// surviving members' peer-down handlers fire, and each survivor launches
// the paper's Leave protocol from its OWN committed session state — no
// coordinator — then confirms the fresh key. A deadline on the lost
// node's half-open session shows the timeout runtime failing it cleanly.
//
//	go run ./examples/failover
package main

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"log"
	"time"

	"idgka"
)

func fingerprint(key []byte) string {
	fp := sha256.Sum256(key)
	return fmt.Sprintf("%x", fp[:6])
}

// route delivers queued packets among live sessions until quiescence,
// fanning broadcasts to every other member. Packets for dead members are
// dropped on the floor — that is what "dead" means.
func route(sessions map[string]*idgka.Session) {
	type delivery struct {
		to  string
		pkt idgka.Packet
	}
	var queue []delivery
	drain := func(id string) {
		for _, p := range sessions[id].Outbox() {
			for other := range sessions {
				if other != id && (p.To == "" || p.To == other) {
					queue = append(queue, delivery{to: other, pkt: p})
				}
			}
		}
	}
	for id := range sessions {
		drain(id)
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if err := sessions[d.to].HandleMessage(d.pkt); err != nil {
			log.Fatalf("%s: %v", d.to, err)
		}
		drain(d.to)
	}
}

func main() {
	log.SetFlags(0)
	authority, err := idgka.NewAuthority()
	if err != nil {
		log.Fatal(err)
	}

	roster := []string{"sensor-1", "sensor-2", "sensor-3", "sensor-4"}
	members := map[string]*idgka.Member{}
	for _, id := range roster {
		if members[id], err = authority.NewMember(id); err != nil {
			log.Fatalf("extract %s: %v", id, err)
		}
	}

	// Establish: application-owned routing, every member event-driven.
	est := map[string]*idgka.Session{}
	for _, id := range roster {
		if est[id], err = members[id].NewSession("cluster", roster); err != nil {
			log.Fatal(err)
		}
	}
	route(est)
	fmt.Printf("cluster keyed: %v key=%s\n", roster, fingerprint(est[roster[0]].Key()))

	// sensor-3 goes dark. The failure detector (the TCP hub's peer-down
	// frame, netsim.Async's Crash, or the application's own liveness
	// probe) tells the survivors; each member's handler queues the
	// eviction.
	const victim = "sensor-3"
	survivors := []string{"sensor-1", "sensor-2", "sensor-4"}
	leave := map[string]*idgka.Session{}
	for _, id := range survivors {
		id := id
		members[id].SetPeerDownHandler(func(peer string) {
			fmt.Printf("%s: peer %s is down — evicting\n", id, peer)
			s, err := members[id].LeaveSession("cluster/evict", "cluster", []string{peer})
			if err != nil {
				log.Fatal(err)
			}
			leave[id] = s
		})
	}
	for _, id := range survivors {
		if err := est[id].HandleMessage(idgka.PeerDownPacket(victim)); err != nil {
			log.Fatal(err)
		}
	}
	route(leave)

	// Confirm the fresh key among the survivors.
	cfm := map[string]*idgka.Session{}
	for _, id := range survivors {
		if cfm[id], err = members[id].ConfirmSession("cluster/evict/c", "cluster/evict"); err != nil {
			log.Fatal(err)
		}
	}
	route(cfm)
	fmt.Printf("survivors re-keyed: %v key=%s (confirmed)\n", survivors, fingerprint(cfm[survivors[0]].Key()))
	fmt.Printf("the dead node's key %s no longer opens anything\n", fingerprint(est[victim].Key()))

	// Timeout runtime: the dead node also had a half-open session (a
	// confirm it will never finish). Deadline ticks retransmit while
	// budget remains, then fail it terminally instead of leaking it.
	ghost, err := members[victim].ConfirmSession("cluster/ghost", "cluster")
	if err != nil {
		log.Fatal(err)
	}
	now := time.Now()
	for !ghost.Done() {
		ghost.SetDeadline(now)
		if err := ghost.Tick(now); err != nil && !errors.Is(err, idgka.ErrSessionTimeout) {
			log.Fatal(err)
		}
		ghost.Outbox() // retransmissions go nowhere; the node is isolated
	}
	fmt.Printf("ghost session timed out cleanly after %d retransmissions: %v\n",
		ghost.Attempts(), ghost.Err())
}
