// Energy planning: how long will a battery last? This example prices a
// deployment's re-keying schedule with the paper's StrongARM + radio cost
// model — the calculation an engineer would do before picking a GKA
// protocol for a sensor fleet.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"idgka"
)

func main() {
	log.SetFlags(0)

	// Scenario: a 20-node group re-keys once per hour (membership churn),
	// nodes carry a 2×AA budget of ~10 kJ, of which 5% is reserved for
	// security.
	const (
		groupSize      = 20
		rekeysPerDay   = 24
		securityBudget = 500.0 // Joules
	)

	authority, err := idgka.NewAuthority()
	if err != nil {
		log.Fatal(err)
	}
	network := idgka.NewNetwork()
	var members []*idgka.Member
	for i := 0; i < groupSize; i++ {
		m, err := authority.NewMember(fmt.Sprintf("sensor-%02d", i))
		if err != nil {
			log.Fatal(err)
		}
		if err := network.Attach(m); err != nil {
			log.Fatal(err)
		}
		members = append(members, m)
	}
	if err := idgka.Establish(network, members); err != nil {
		log.Fatal(err)
	}

	// Price one full re-key (the conservative strategy: run the initial
	// protocol again) under both radios.
	rep := members[1].Report() // an ordinary member's bill
	for _, tc := range []struct {
		name  string
		model idgka.EnergyModel
	}{
		{"WLAN card", idgka.DefaultEnergyModel()},
		{"100kbps sensor radio", idgka.SensorEnergyModel()},
	} {
		perRekey := tc.model.EnergyJ(rep)
		perDay := perRekey * rekeysPerDay
		days := securityBudget / perDay
		fmt.Printf("%-22s %.1f mJ per re-key, %.2f J/day, budget lasts %.0f days\n",
			tc.name, perRekey*1000, perDay, days)
	}

	// Churn is cheaper than re-keying: compare a full re-key with the
	// proposed Join for the passive majority.
	for _, m := range members {
		m.ResetReport()
	}
	joiner, err := authority.NewMember("sensor-new")
	if err != nil {
		log.Fatal(err)
	}
	if err := network.Attach(joiner); err != nil {
		log.Fatal(err)
	}
	if err := idgka.Join(network, members, joiner); err != nil {
		log.Fatal(err)
	}
	model := idgka.DefaultEnergyModel()
	fmt.Println("\nproposed Join instead of a full re-key (WLAN):")
	fmt.Printf("  controller U1:   %8.2f mJ\n", model.EnergyJ(members[0].Report())*1000)
	fmt.Printf("  ring-closer Un:  %8.2f mJ\n", model.EnergyJ(members[groupSize-1].Report())*1000)
	fmt.Printf("  joiner:          %8.2f mJ\n", model.EnergyJ(joiner.Report())*1000)
	fmt.Printf("  passive member:  %8.2f mJ (vs %.2f mJ for a full re-key)\n",
		model.EnergyJ(members[1].Report())*1000, model.EnergyJ(rep)*1000)
}
