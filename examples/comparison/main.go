// Comparison: run all five protocols of the paper's Table 1 at the same
// group size on the simulator and print the measured per-user operation
// counts and energy — a miniature, fully measured version of Figure 1.
//
//	go run ./examples/comparison [-n 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"idgka/internal/analytic"
	"idgka/internal/energy"
	"idgka/internal/experiments"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 8, "group size")
	flag.Parse()

	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}
	cpu := energy.StrongARM()
	fmt.Printf("Measured per-user cost of one authenticated GKA, n = %d\n\n", *n)
	fmt.Printf("%-10s %5s %8s %8s %6s %6s %12s %12s\n",
		"protocol", "exp", "sigGen", "sigVer", "certs", "map2pt", "J @100kbps", "J @WLAN")
	for _, p := range analytic.AllProtocols() {
		rep, _, err := env.MeasureStatic(p, *n)
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		certScheme := energy.Model{}.CertVerifyAs
		_ = certScheme
		m100 := energy.Model{CPU: cpu, Radio: energy.Radio100kbps()}
		mWlan := energy.Model{CPU: cpu, Radio: energy.WLANCard()}
		fmt.Printf("%-10s %5d %8d %8d %6d %6d %12.4f %12.4f\n",
			p, rep.Exp, rep.TotalSignGen(), rep.TotalSignVer(), rep.CertVer, rep.MapToPoint,
			m100.EnergyJ(rep), mWlan.EnergyJ(rep))
	}
	fmt.Println("\nNote how the proposed scheme's single batch verification keeps its")
	fmt.Println("cost flat while every baseline pays per peer (SignVer column).")
}
