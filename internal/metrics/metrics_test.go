package metrics

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("get-or-create returned a different counter for the same name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax(9) = %d", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering \"x\" as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram should report NaN")
	}
	// 99 fast samples and one slow one: p50 stays near 1ms, p99 spans
	// the outlier's bucket.
	for i := 0; i < 99; i++ {
		h.Observe(900 * time.Microsecond)
	}
	h.Observe(500 * time.Millisecond)
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 > 2 {
		t.Fatalf("p50 = %vms, want ~1ms", p50)
	}
	// The outlier is the 100th sample; p99 rounds to rank 99, still in
	// the fast bucket — p100 must cover the outlier.
	p100 := h.Quantile(1.0)
	if p100 < 500 {
		t.Fatalf("p100 = %vms, want >= 500ms", p100)
	}
	if p99 > p100 {
		t.Fatalf("p99 %v above max %v", p99, p100)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
}

func TestHistogramWindowRotation(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	// Simulate two windows of silence: everything windowed expires, the
	// cumulative count survives.
	h.mu.Lock()
	h.rotated = time.Now().Add(-3 * histWindow)
	h.mu.Unlock()
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("quantile should be NaN after the window fully expired")
	}
	if h.Count() != 1 {
		t.Fatalf("cumulative count = %d, want 1", h.Count())
	}
	// One window of silence: samples slide into prev and still count.
	h.Observe(time.Millisecond)
	h.mu.Lock()
	h.rotated = time.Now().Add(-histWindow - time.Second)
	h.mu.Unlock()
	if math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("previous window's samples should still answer quantiles")
	}
}

// TestHistogramConcurrent drives observers and quantile readers in
// parallel; under -race this proves snapshots are never torn.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(ms int) {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				h.Observe(time.Duration(ms) * time.Millisecond)
			}
		}(i + 1)
	}
	for i := 0; i < 500; i++ {
		h.Quantile(0.99)
		_ = h.String()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestHandlerServesExpvarJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(3)
	r.Gauge("depth").Set(-2)
	r.Histogram("lat_ms").Observe(2 * time.Millisecond)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("endpoint did not emit valid JSON: %v\n%s", err, rec.Body.String())
	}
	if doc["reqs_total"] != float64(3) {
		t.Fatalf("reqs_total = %v", doc["reqs_total"])
	}
	if doc["depth"] != float64(-2) {
		t.Fatalf("depth = %v", doc["depth"])
	}
	hist, ok := doc["lat_ms"].(map[string]any)
	if !ok {
		t.Fatalf("lat_ms = %v, want an object", doc["lat_ms"])
	}
	if hist["count"] != float64(1) {
		t.Fatalf("lat_ms.count = %v", hist["count"])
	}
}

func TestDefaultRegistryPublishesToExpvar(t *testing.T) {
	c := NewCounter("metrics_test_published_total")
	c.Inc()
	// Registered names are visible through the package registry.
	found := false
	for _, name := range Default.Names() {
		if name == "metrics_test_published_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("default registry does not list the new counter")
	}
}
