// Package metrics is the process-wide observability surface of the
// serving stack: counters, gauges and windowed latency histograms with
// p50/p99 extraction, collected in a name-keyed registry and exported in
// the expvar JSON wire format (the taschain monitor/ shape: one global
// registry, cheap atomic instruments, an HTTP snapshot endpoint).
//
// Instruments are created once — typically as package-level variables,
// so importing an instrumented package registers its metrics — and are
// safe for concurrent use. Creation is get-or-create by name: asking
// twice for the same name returns the same instrument, so tests and
// multiple hosts in one process share (and aggregate into) one surface.
// Every registered metric is also published into the standard library's
// expvar registry, so the stock /debug/vars endpoint carries them too.
//
// The complete reference of the names the repo registers — one table of
// every counter, gauge and histogram, its unit, and what a spike means —
// lives in docs/OPERATIONS.md; a meta-test keeps the table and the
// registry in lockstep.
package metrics

import (
	"expvar"
	"fmt"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing uint64 — events since process
// start. Spikes are read as deltas between snapshots.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// String renders the counter as an expvar JSON value.
func (c *Counter) String() string { return strconv.FormatUint(c.v.Load(), 10) }

// A Gauge is an instantaneous int64 level: queue depths, live-run
// counts. It moves both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to n if n is above the current level — a
// high-water mark.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// String renders the gauge as an expvar JSON value.
func (g *Gauge) String() string { return strconv.FormatInt(g.v.Load(), 10) }

// histBuckets is the resolution of a Histogram: bucket i counts
// observations in [2^(i-1), 2^i) microseconds, so the range spans
// sub-microsecond to ~36 minutes with ~2x relative error — plenty for
// latency quantiles.
const histBuckets = 42

// window is the rotation period of a Histogram: quantiles reflect the
// current plus the previous window (1-2 minutes of traffic), so a
// long-running process reports recent latency, not its lifetime average.
const histWindow = time.Minute

// A Histogram is a windowed latency distribution with quantile
// extraction. Observations land in exponential (power-of-two
// microsecond) buckets; Quantile merges the current and previous window
// so a freshly rotated histogram never reports empty. Count and Sum are
// cumulative over the process lifetime.
type Histogram struct {
	mu sync.Mutex
	//gkalint:guard mu
	cur, prev [histBuckets]uint64
	rotated   time.Time
	count     uint64
	sum       time.Duration
}

// bucketOf maps a duration onto its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpperMS returns a bucket's upper bound in milliseconds — the
// value quantile extraction reports for observations in that bucket.
func bucketUpperMS(i int) float64 {
	return float64(uint64(1)<<uint(i)) / 1000
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	now := time.Now()
	h.mu.Lock()
	h.rotateLocked(now)
	h.cur[bucketOf(d)]++
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// ObserveSince records the latency from start to now.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// rotateLocked slides the window: after histWindow the current slab
// becomes the previous one; after two windows of silence both clear.
func (h *Histogram) rotateLocked(now time.Time) {
	if h.rotated.IsZero() {
		h.rotated = now
		return
	}
	elapsed := now.Sub(h.rotated)
	if elapsed < histWindow {
		return
	}
	if elapsed < 2*histWindow {
		h.prev = h.cur
	} else {
		h.prev = [histBuckets]uint64{}
	}
	h.cur = [histBuckets]uint64{}
	h.rotated = now
}

// Quantile returns the q-quantile (0 < q <= 1) in milliseconds over the
// current and previous window, or NaN with no samples in the window.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rotateLocked(time.Now())
	var total uint64
	for i := 0; i < histBuckets; i++ {
		total += h.cur[i] + h.prev[i]
	}
	if total == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.cur[i] + h.prev[i]
		if seen >= rank {
			return bucketUpperMS(i)
		}
	}
	return bucketUpperMS(histBuckets - 1)
}

// Count returns the cumulative number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// String renders the histogram as an expvar JSON object with the
// cumulative count, the cumulative sum in milliseconds, and the
// windowed p50/p99 (null with no samples in the window).
func (h *Histogram) String() string {
	h.mu.Lock()
	h.rotateLocked(time.Now())
	count := h.count
	sumMS := float64(h.sum.Microseconds()) / 1000
	h.mu.Unlock()
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	return fmt.Sprintf(`{"count":%d,"sum_ms":%s,"p50_ms":%s,"p99_ms":%s}`,
		count, jsonFloat(sumMS), jsonFloat(p50), jsonFloat(p99))
}

// jsonFloat renders a float as JSON, mapping NaN (no samples) to null.
func jsonFloat(f float64) string {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return "null"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Var is the expvar contract every instrument satisfies: String returns
// a valid JSON value.
type Var interface {
	String() string
}

// A Registry is a name-keyed set of instruments. Most code uses the
// package-level Default registry through NewCounter/NewGauge/
// NewHistogram; a separate Registry isolates tests that must not share
// state.
type Registry struct {
	mu sync.Mutex
	//gkalint:guard mu
	vars map[string]Var
	// publish mirrors registrations into the stdlib expvar registry
	// (Default only — expvar has one global namespace per process).
	publish bool
}

// NewRegistry builds an empty, isolated registry (not mirrored into
// expvar).
func NewRegistry() *Registry {
	return &Registry{vars: map[string]Var{}}
}

// Default is the process-wide registry every package-level instrument
// registers into and the gkanet -metrics-addr endpoint serves.
var Default = &Registry{vars: map[string]Var{}, publish: true}

// getOrCreate returns the instrument registered under name, creating it
// with mk on first use. A name already registered as a different
// instrument kind panics — a wiring bug, not a runtime condition.
func (r *Registry) getOrCreate(name string, mk func() Var) Var {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		return v
	}
	v := mk()
	r.vars[name] = v
	if r.publish && expvar.Get(name) == nil {
		expvar.Publish(name, v)
	}
	return v
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	v := r.getOrCreate(name, func() Var { return &Counter{} })
	c, ok := v.(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %q is registered as %T, not a counter", name, v))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	v := r.getOrCreate(name, func() Var { return &Gauge{} })
	g, ok := v.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %q is registered as %T, not a gauge", name, v))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	v := r.getOrCreate(name, func() Var { return &Histogram{} })
	h, ok := v.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %q is registered as %T, not a histogram", name, v))
	}
	return h
}

// Names returns the registry's metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.vars))
	for name := range r.vars {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Do calls f for every registered metric in name order.
func (r *Registry) Do(f func(name string, v Var)) {
	names := r.Names()
	for _, name := range names {
		r.mu.Lock()
		v := r.vars[name]
		r.mu.Unlock()
		if v != nil {
			f(name, v)
		}
	}
}

// WriteJSON writes the registry snapshot in the expvar wire format: one
// JSON object, metric names as keys, each value the instrument's JSON
// rendering.
func (r *Registry) WriteJSON(w *strings.Builder) {
	w.WriteString("{\n")
	first := true
	r.Do(func(name string, v Var) {
		if !first {
			w.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", name, v.String())
	})
	w.WriteString("\n}\n")
}

// Handler serves the registry as an expvar-compatible JSON document —
// mount it on the address the operator passes (gkanet -metrics-addr).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var b strings.Builder
		r.WriteJSON(&b)
		_, _ = w.Write([]byte(b.String()))
	})
}

// NewCounter returns the Default-registry counter under name, creating
// it on first use. Call it in a package-level var declaration so the
// metric registers at import time.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge returns the Default-registry gauge under name, creating it
// on first use.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram returns the Default-registry histogram under name,
// creating it on first use.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }
