package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"idgka/internal/netsim"
)

// dialRaw registers id at the hub over a bare TCP connection that never
// acknowledges relayed messages: a peer that is wedged at protocol level,
// or about to die mid-delivery.
func dialRaw(t *testing.T, addr, id string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, &frame{Kind: kindHello, From: id}); err != nil {
		t.Fatal(err)
	}
	ack, err := readFrame(conn)
	if err != nil || ack.Kind != kindDone {
		t.Fatalf("raw registration of %q not confirmed: %v", id, err)
	}
	return conn
}

// TestCrossRouterConcurrentBroadcast is the regression test for the
// sequence-number collision: two Router processes attached to one hub
// number their frames independently, so a hub keyed on Seq alone conflates
// their deliveries and one sender's done frame is lost forever. Before
// the (sender, seq) pending key this deadlocked on the first concurrent
// pair.
func TestCrossRouterConcurrentBroadcast(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	ra := NewRouter(hub.Addr())
	defer ra.Close()
	rb := NewRouter(hub.Addr())
	defer rb.Close()
	if err := ra.Attach("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := rb.Attach("b", nil); err != nil {
		t.Fatal(err)
	}

	const rounds = 50
	finished := make(chan error, 2)
	broadcast := func(r *Router, id string) {
		for i := 0; i < rounds; i++ {
			if err := r.Broadcast(id, "t", []byte(id)); err != nil {
				finished <- err
				return
			}
		}
		finished <- nil
	}
	go broadcast(ra, "a")
	go broadcast(rb, "b")
	for i := 0; i < 2; i++ {
		select {
		case err := <-finished:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("concurrent cross-router broadcasts deadlocked")
		}
	}
	if msgs, _ := ra.Recv("a"); len(msgs) != rounds {
		t.Fatalf("a received %d, want %d", len(msgs), rounds)
	}
	if msgs, _ := rb.Recv("b"); len(msgs) != rounds {
		t.Fatalf("b received %d, want %d", len(msgs), rounds)
	}
}

// TestDeadPeerUnblocksSender kills a node mid-broadcast: the raw peer
// never acks, so the sender is blocked until the disconnect — at which
// point the hub settles the delivery with an error done-frame and the
// sender returns a *PeerDownError instead of hanging forever. Survivors
// are notified with a peer-down inbox message.
func TestDeadPeerUnblocksSender(t *testing.T) {
	hub, r, _ := newPair(t, "a", "b")
	z := dialRaw(t, hub.Addr(), "z")

	result := make(chan error, 1)
	go func() { result <- r.Broadcast("a", "t", []byte("payload")) }()
	select {
	case err := <-result:
		t.Fatalf("broadcast returned before the wedged peer acked: %v", err)
	case <-time.After(100 * time.Millisecond):
		// Still blocked on z, as the delivery contract demands.
	}
	_ = z.Close()
	select {
	case err := <-result:
		var pd *PeerDownError
		if !errors.As(err, &pd) || pd.Peer != "z" {
			t.Fatalf("want PeerDownError{z}, got %v", err)
		}
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("errors.Is(ErrPeerDown) false for %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sender still wedged after the peer died")
	}
	// The message reached the healthy recipient, and both survivors got
	// the peer-down notice.
	msgs, err := r.RecvWait("b")
	if err != nil {
		t.Fatal(err)
	}
	var gotMsg, gotDown bool
	for _, m := range msgs {
		switch {
		case m.Type == "t" && m.From == "a":
			gotMsg = true
		case m.Type == netsim.TypePeerDown && m.From == "z":
			gotDown = true
		}
	}
	if !gotMsg || !gotDown {
		t.Fatalf("b inbox missing message/peer-down: %+v", msgs)
	}
	if msgs, err := r.RecvWait("a"); err != nil || len(msgs) == 0 || msgs[0].Type != netsim.TypePeerDown {
		t.Fatalf("a did not get the peer-down notice: %+v %v", msgs, err)
	}
	// The hub holds no leaked deliveries and later broadcasts work.
	if err := r.Broadcast("a", "t2", nil); err != nil {
		t.Fatal(err)
	}
	if hub.PendingCount() != 0 {
		t.Fatalf("hub leaked %d pending deliveries", hub.PendingCount())
	}
}

// TestSendDeadline bounds a send blocked on a wedged-but-alive peer: the
// per-delivery deadline fires and the send returns ErrSendTimeout instead
// of blocking unboundedly. The confirmation slot is released.
func TestSendDeadline(t *testing.T) {
	hub, r, _ := newPair(t, "a")
	z := dialRaw(t, hub.Addr(), "z")
	defer z.Close()

	r.SetSendTimeout(150 * time.Millisecond)
	start := time.Now()
	err := r.Broadcast("a", "t", []byte("x"))
	if !errors.Is(err, ErrSendTimeout) {
		t.Fatalf("want ErrSendTimeout, got %v", err)
	}
	if d := time.Since(start); d < 150*time.Millisecond || d > 10*time.Second {
		t.Fatalf("deadline fired after %v", d)
	}
	// The slot was reclaimed: no leaked confirmation channel.
	r.mu.Lock()
	n := r.nodes["a"]
	r.mu.Unlock()
	n.mu.Lock()
	leaked := len(n.done)
	n.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d confirmation slots leaked after timeout", leaked)
	}
}

// TestHubCloseWakesBlockedNodes: a hub restart (or crash) must not strand
// nodes — RecvWait wakes with an error and sends fail fast, and a fresh
// hub accepts new attachments.
func TestHubCloseWakesBlockedNodes(t *testing.T) {
	hub, r, _ := newPair(t, "a", "b")
	woke := make(chan error, 1)
	go func() {
		_, err := r.RecvWait("a")
		woke <- err
	}()
	time.Sleep(50 * time.Millisecond) // let RecvWait block
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-woke:
		if err == nil {
			t.Fatal("RecvWait returned without error after hub close")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RecvWait still blocked after hub close")
	}
	if err := r.Broadcast("b", "t", nil); err == nil {
		t.Fatal("broadcast succeeded against a closed hub")
	}

	// A replacement hub serves fresh attachments.
	hub2, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub2.Close()
	r2 := NewRouter(hub2.Addr())
	defer r2.Close()
	if err := r2.Attach("a", nil); err != nil {
		t.Fatalf("attach to restarted hub: %v", err)
	}
}

// TestDuplicateHelloRejected: a second registration of a live id — e.g. a
// node trying to reconnect while its old connection is still up — is
// refused without disturbing the original.
func TestDuplicateHelloRejected(t *testing.T) {
	hub, r, _ := newPair(t, "a", "b")
	r2 := NewRouter(hub.Addr())
	defer r2.Close()
	if err := r2.Attach("a", nil); err == nil {
		t.Fatal("duplicate hello accepted")
	}
	// The original node is untouched.
	if err := r.Broadcast("a", "t", []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := r.Recv("b"); len(msgs) != 1 {
		t.Fatalf("original node disturbed: %+v", msgs)
	}
	if hub.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d after rejected dup", hub.NodeCount())
	}
}

// TestRecvWaitWakesOnDetach: detaching a node releases its blocked
// receiver with an error instead of leaving it asleep forever.
func TestRecvWaitWakesOnDetach(t *testing.T) {
	_, r, _ := newPair(t, "a", "b")
	woke := make(chan error, 1)
	go func() {
		_, err := r.RecvWait("a")
		woke <- err
	}()
	time.Sleep(50 * time.Millisecond)
	r.Detach("a")
	select {
	case err := <-woke:
		if err == nil {
			t.Fatal("RecvWait returned without error after Detach")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RecvWait still blocked after Detach")
	}
}

// TestConcurrentSendersWithCrash floods the hub from three routers while
// a fourth node dies mid-storm: every sender must terminate — success or
// a peer-down/timeout error — with no delivery left pending on the hub.
func TestConcurrentSendersWithCrash(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	routers := make([]*Router, 3)
	ids := []string{"a", "b", "c"}
	for i, id := range ids {
		routers[i] = NewRouter(hub.Addr())
		defer routers[i].Close()
		routers[i].SetSendTimeout(10 * time.Second)
		if err := routers[i].Attach(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	z := dialRaw(t, hub.Addr(), "z")

	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(r *Router, id string) {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				err := r.Broadcast(id, "t", []byte(id))
				if err != nil && !errors.Is(err, ErrPeerDown) {
					t.Errorf("%s: %v", id, err)
					return
				}
			}
		}(routers[i], id)
	}
	time.Sleep(20 * time.Millisecond)
	_ = z.Close() // crash mid-storm
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("senders wedged after mid-storm crash")
	}
	if hub.PendingCount() != 0 {
		t.Fatalf("hub leaked %d pending deliveries", hub.PendingCount())
	}
}

// TestUnicastToAbsentRecipientFails: a directed send to a dead (or never
// registered) node must surface as a PeerDownError — matching
// netsim.Async's crash semantics — while a broadcast into an empty group
// stays a vacuous success.
func TestUnicastToAbsentRecipientFails(t *testing.T) {
	hub, r, _ := newPair(t, "a", "b")
	z := dialRaw(t, hub.Addr(), "z")
	_ = z.Close()
	// Wait until the hub has processed z's departure.
	deadline := time.Now().Add(10 * time.Second)
	for hub.NodeCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("hub never cleaned up the dead node")
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainDowns := func(id string) { // clear z's peer-down notices
		if _, err := r.RecvWait(id); err != nil {
			t.Fatal(err)
		}
	}
	drainDowns("a")
	drainDowns("b")

	var pd *PeerDownError
	if err := r.Send("a", "z", "t", []byte("x")); !errors.As(err, &pd) || pd.Peer != "z" {
		t.Fatalf("unicast to dead node: want PeerDownError{z}, got %v", err)
	}
	if err := r.Send("a", "ghost", "t", nil); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("unicast to unknown node: want ErrPeerDown, got %v", err)
	}
	// Healthy unicast and empty-group broadcast still succeed.
	if err := r.Send("a", "b", "t", nil); err != nil {
		t.Fatal(err)
	}
	hub2, r2, _ := newPair(t, "solo")
	defer hub2.Close()
	if err := r2.Broadcast("solo", "t", nil); err != nil {
		t.Fatalf("empty-group broadcast: %v", err)
	}
}
