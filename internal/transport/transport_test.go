package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"idgka/internal/core"
	"idgka/internal/meter"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
)

func newPair(t *testing.T, ids ...string) (*Hub, *Router, map[string]*meter.Meter) {
	t.Helper()
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })
	router := NewRouter(hub.Addr())
	t.Cleanup(router.Close)
	ms := map[string]*meter.Meter{}
	for _, id := range ids {
		ms[id] = meter.New()
		if err := router.Attach(id, ms[id]); err != nil {
			t.Fatal(err)
		}
	}
	return hub, router, ms
}

func TestBroadcastDeliversSynchronously(t *testing.T) {
	_, r, ms := newPair(t, "a", "b", "c")
	payload := []byte("hello over tcp")
	if err := r.Broadcast("a", "t1", payload); err != nil {
		t.Fatal(err)
	}
	// The synchronous contract: after Broadcast returns, the message is
	// already in every inbox — no polling.
	for _, id := range []string{"b", "c"} {
		msgs, err := r.RecvType(id, "t1")
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, payload) {
			t.Fatalf("%s: got %+v", id, msgs)
		}
	}
	if msgs, _ := r.Recv("a"); len(msgs) != 0 {
		t.Fatal("sender received own broadcast")
	}
	if ms["a"].Report().MsgTx != 1 || ms["b"].Report().MsgRx != 1 {
		t.Fatal("metering wrong")
	}
}

func TestUnicast(t *testing.T) {
	_, r, _ := newPair(t, "a", "b", "c")
	if err := r.Send("a", "b", "t", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := r.Recv("c"); len(msgs) != 0 {
		t.Fatal("unicast leaked")
	}
	msgs, _ := r.Recv("b")
	if len(msgs) != 1 || msgs[0].To != "b" {
		t.Fatalf("unicast not delivered: %+v", msgs)
	}
}

func TestStateBytesAccounting(t *testing.T) {
	_, r, ms := newPair(t, "a", "b")
	payload := make([]byte, 100)
	if err := r.BroadcastState("a", "t", payload, 30); err != nil {
		t.Fatal(err)
	}
	ra := ms["a"].Report()
	if ra.BytesTx != 70 || ra.StateTx != 30 {
		t.Fatalf("sender state accounting: %+v", ra)
	}
	rb := ms["b"].Report()
	if rb.BytesRx != 70 || rb.StateRx != 30 {
		t.Fatalf("receiver state accounting: %+v", rb)
	}
}

func TestUnknownNodeRejected(t *testing.T) {
	_, r, _ := newPair(t, "a")
	if err := r.Broadcast("zz", "t", nil); err == nil {
		t.Fatal("unknown sender accepted")
	}
	if _, err := r.Recv("zz"); err == nil {
		t.Fatal("unknown receiver accepted")
	}
}

func TestDuplicateAttachRejected(t *testing.T) {
	_, r, _ := newPair(t, "a")
	if err := r.Attach("a", nil); err == nil {
		t.Fatal("duplicate attach accepted")
	}
}

func TestRecvTypeOrderingDeterministic(t *testing.T) {
	_, r, _ := newPair(t, "a", "b", "c")
	if err := r.Broadcast("c", "t", []byte{3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Broadcast("a", "t", []byte{1}); err != nil {
		t.Fatal(err)
	}
	msgs, _ := r.RecvType("b", "t")
	if len(msgs) != 2 || msgs[0].From != "a" || msgs[1].From != "c" {
		t.Fatalf("ordering wrong: %+v", msgs)
	}
}

func TestConcurrentSenders(t *testing.T) {
	_, r, _ := newPair(t, "a", "b", "c", "d")
	var wg sync.WaitGroup
	for _, id := range []string{"a", "b", "c", "d"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := r.Broadcast(id, "t", []byte(id)); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	for _, id := range []string{"a", "b", "c", "d"} {
		msgs, _ := r.Recv(id)
		if len(msgs) != 60 {
			t.Fatalf("%s received %d, want 60", id, len(msgs))
		}
	}
}

// TestFullGKAOverTCP is the integration payoff: the complete two-round
// authenticated GKA plus a join, running over real sockets.
func TestFullGKAOverTCP(t *testing.T) {
	hub, err := NewHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	router := NewRouter(hub.Addr())
	defer router.Close()

	set := params.Default()
	cfg := core.Config{Set: set.Public()}
	var members []*core.Member
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("tcp-%02d", i+1)
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			t.Fatal(err)
		}
		m := meter.New()
		mb, err := core.NewMember(cfg, sk, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := router.Attach(id, m); err != nil {
			t.Fatal(err)
		}
		members = append(members, mb)
	}
	if err := core.RunInitial(router, members); err != nil {
		t.Fatalf("GKA over TCP: %v", err)
	}
	key := members[0].Key()
	for _, mb := range members[1:] {
		if mb.Key().Cmp(key) != 0 {
			t.Fatalf("%s disagrees over TCP", mb.ID())
		}
	}

	// Join over TCP, exercising unicast + state transfer.
	sk, _ := gq.Extract(set.RSA, "tcp-join")
	jm := meter.New()
	joiner, _ := core.NewMember(cfg, sk, jm)
	if err := router.Attach("tcp-join", jm); err != nil {
		t.Fatal(err)
	}
	if err := core.RunJoin(router, members, joiner); err != nil {
		t.Fatalf("join over TCP: %v", err)
	}
	all := append(members, joiner)
	for _, mb := range all[1:] {
		if mb.Key().Cmp(all[0].Key()) != 0 {
			t.Fatalf("%s disagrees after TCP join", mb.ID())
		}
	}
	// Confirmation round over TCP too.
	if err := core.ConfirmKey(router, all); err != nil {
		t.Fatalf("confirm over TCP: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &frame{Kind: kindMsg, Seq: 42, From: "a", To: "b", Type: "x", StateLen: 7, Payload: []byte{9, 8}}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Seq != in.Seq || out.From != in.From ||
		out.To != in.To || out.Type != in.Type || out.StateLen != in.StateLen ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	if _, err := readFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 4, 1, 2, 3, 4})); err == nil {
		t.Fatal("malformed body accepted")
	}
}

func TestHubNodeCount(t *testing.T) {
	hub, r, _ := newPair(t, "a", "b")
	if hub.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d", hub.NodeCount())
	}
	r.Detach("a")
	// Detachment propagates asynchronously; just ensure Close works.
}
