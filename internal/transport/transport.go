// Package transport carries the protocols over real TCP sockets with the
// same delivery contract as the in-memory simulator: Broadcast/Send return
// only once the message sits in every recipient's inbox, so the lockstep
// orchestrators of internal/core and internal/baseline run unchanged over
// a genuine network stack.
//
// Topology: a Hub process accepts one TCP connection per node and relays
// frames. Delivery acknowledgements flow back through the hub to the
// sender, giving the synchronous semantics netsim.Medium promises. A
// Router bundles any number of local node connections behind the
// netsim.Medium interface.
//
// Failure semantics: the hub gives every blocked sender an explicit
// outcome. Pending deliveries are keyed by (sender, seq) — each Router
// numbers its frames independently, so a bare sequence number collides the
// moment two processes broadcast concurrently. When a node disconnects,
// every delivery still waiting on its acknowledgement is settled with an
// error done-frame naming the dead peer (the sender unblocks with a
// *PeerDownError instead of hanging forever), deliveries the dead node
// itself originated are dropped, and every survivor receives a peer-down
// control frame that surfaces in its inbox as a netsim.TypePeerDown
// message — the trigger for the application to re-key via Leave. On top of
// that, every Router send carries a deadline (SetSendTimeout, default
// DefaultSendTimeout) so no Broadcast/Send can block unboundedly even if
// the hub itself wedges.
//
// Frame format (all fields via internal/wire):
//
//	kind ‖ seq ‖ from ‖ to ‖ type ‖ stateLen ‖ payload
//
// kinds: "hello" (registration), "msg" (data), "ack" (delivery
// confirmation, node→hub, To names the original sender), "done"
// (hub→sender: all recipients confirmed, or From names a recipient that
// died first), "down" (hub→survivors: node From disconnected).
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"idgka/internal/meter"
	"idgka/internal/metrics"
	"idgka/internal/netsim"
	"idgka/internal/wire"
)

// The transport's process-wide metrics; documented in docs/OPERATIONS.md.
var (
	mSends        = metrics.NewCounter("transport_sends_total")
	mSendTimeouts = metrics.NewCounter("transport_send_timeouts_total")
	mPeerDowns    = metrics.NewCounter("transport_peer_downs_total")
)

// Frame kinds.
const (
	kindHello = "hello"
	kindMsg   = "msg"
	kindAck   = "ack"
	kindDone  = "done"
	kindDown  = "down"
)

// DefaultSendTimeout bounds how long a Broadcast/Send may wait for the
// hub's delivery confirmation before failing with ErrSendTimeout. Tune per
// Router with SetSendTimeout.
const DefaultSendTimeout = 30 * time.Second

// ErrPeerDown classifies delivery failures caused by a recipient dying
// before acknowledging; match with errors.Is. The concrete error is a
// *PeerDownError naming the dead node.
var ErrPeerDown = errors.New("transport: peer down")

// ErrSendTimeout classifies sends that exhausted their delivery deadline;
// match with errors.Is.
var ErrSendTimeout = errors.New("transport: send timed out")

// PeerDownError reports that a recipient disconnected before confirming a
// delivery (or that a relay write to it failed). The message may or may
// not have reached the peer; the group should treat it as dead and re-key.
type PeerDownError struct{ Peer string }

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("transport: peer %q went down before acknowledging delivery", e.Peer)
}

// Is lets errors.Is(err, ErrPeerDown) match.
func (e *PeerDownError) Is(target error) bool { return target == ErrPeerDown }

// frame is the unit of exchange between nodes and the hub.
type frame struct {
	Kind     string
	Seq      uint64
	From     string
	To       string // empty = broadcast
	Type     string
	StateLen uint64
	Payload  []byte
}

// writeFrame serialises a frame with a 4-byte length prefix.
func writeFrame(w io.Writer, f *frame) error {
	body := wire.NewBuffer().
		PutString(f.Kind).
		PutUint(f.Seq).
		PutString(f.From).
		PutString(f.To).
		PutString(f.Type).
		PutUint(f.StateLen).
		PutBytes(f.Payload).
		Bytes()
	head := wire.NewBuffer().PutBytes(body).Bytes()
	_, err := w.Write(head)
	return err
}

// readFrame parses one length-prefixed frame.
func readFrame(r io.Reader) (*frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3]))
	if n < 0 || n > 64<<20 {
		return nil, fmt.Errorf("transport: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	rd := wire.NewReader(body)
	f := &frame{
		Kind:     rd.String(),
		Seq:      rd.Uint(),
		From:     rd.String(),
		To:       rd.String(),
		Type:     rd.String(),
		StateLen: rd.Uint(),
		Payload:  append([]byte(nil), rd.Bytes()...),
	}
	if err := rd.Close(); err != nil {
		return nil, fmt.Errorf("transport: bad frame: %w", err)
	}
	return f, nil
}

// Hub is the relay at the centre of the star topology.
type Hub struct {
	ln net.Listener

	mu sync.Mutex
	//gkalint:guard mu
	conns   map[string]net.Conn
	pending map[pendingKey]*delivery
	closed  bool
	//gkalint:guard -
	wg sync.WaitGroup
}

// pendingKey identifies one relayed message. Routers number their frames
// independently, so the sequence number alone collides as soon as two
// processes broadcast concurrently; the sender id disambiguates (the hub
// enforces unique node ids at registration).
type pendingKey struct {
	sender string
	seq    uint64
}

// delivery tracks outstanding acknowledgements for one relayed message.
type delivery struct {
	sender  string
	waiting map[string]bool
	// failed names the first recipient that disconnected (or whose relay
	// write failed) before acknowledging; it is reported to the sender in
	// the done-frame when the waiting set drains.
	failed string
}

// NewHub starts a hub listening on addr (e.g. "127.0.0.1:0").
func NewHub(addr string) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	h := &Hub{ln: ln, conns: map[string]net.Conn{}, pending: map[pendingKey]*delivery{}}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Close shuts the hub down and disconnects all nodes.
func (h *Hub) Close() error {
	h.mu.Lock()
	h.closed = true
	err := h.ln.Close()
	for _, c := range h.conns {
		_ = c.Close()
	}
	h.mu.Unlock()
	h.wg.Wait()
	return err
}

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go h.serve(conn)
	}
}

// serve handles one node connection: first frame must be a hello carrying
// the node id; afterwards msg frames are relayed and ack frames settle
// deliveries. On disconnect the node's footprint is cleaned up: its
// registration, its own unfinished deliveries, every delivery still
// waiting on its acknowledgement (settled with an error done-frame so the
// blocked senders return instead of wedging forever), and survivors are
// told via a peer-down frame.
func (h *Hub) serve(conn net.Conn) {
	defer h.wg.Done()
	hello, err := readFrame(conn)
	if err != nil || hello.Kind != kindHello || hello.From == "" {
		_ = conn.Close()
		return
	}
	id := hello.From
	h.mu.Lock()
	if _, dup := h.conns[id]; dup || h.closed {
		h.mu.Unlock()
		// Rejected registrations (duplicate hello, closing hub) never
		// joined the topology: close without disturbing the live node.
		_ = conn.Close()
		return
	}
	h.conns[id] = conn
	h.mu.Unlock()
	// Confirm registration so Attach is synchronous.
	if err := writeFrame(conn, &frame{Kind: kindDone, Seq: hello.Seq}); err != nil {
		h.disconnect(id, conn)
		return
	}
	defer h.disconnect(id, conn)
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		switch f.Kind {
		case kindMsg:
			h.relay(id, f)
		case kindAck:
			// The ack's To field names the original sender, reconstructing
			// the (sender, seq) delivery key.
			h.settle(pendingKey{sender: f.To, seq: f.Seq}, id, "")
		}
	}
}

// disconnect removes a departed node and releases everything blocked on
// it: deliveries it originated are dropped (the sender is gone),
// deliveries waiting on its ack are settled as failed, and survivors get
// a peer-down frame they surface as a netsim.TypePeerDown inbox message.
func (h *Hub) disconnect(id string, conn net.Conn) {
	_ = conn.Close()
	h.mu.Lock()
	if h.conns[id] != conn {
		// A different connection owns the id (should not happen: dup
		// hellos are rejected before registration); leave it alone.
		h.mu.Unlock()
		return
	}
	delete(h.conns, id)
	type doneWrite struct {
		conn net.Conn
		f    *frame
	}
	var writes []doneWrite
	for key, d := range h.pending {
		if d.sender == id {
			delete(h.pending, key)
			continue
		}
		if d.waiting[id] {
			delete(d.waiting, id)
			if d.failed == "" {
				d.failed = id
			}
			if len(d.waiting) == 0 {
				delete(h.pending, key)
				if c := h.conns[d.sender]; c != nil {
					writes = append(writes, doneWrite{c, &frame{Kind: kindDone, Seq: key.seq, From: d.failed}})
				}
			}
		}
	}
	closed := h.closed
	var survivors []net.Conn
	if !closed {
		for _, c := range h.conns {
			survivors = append(survivors, c)
		}
	}
	h.mu.Unlock()
	for _, w := range writes {
		_ = writeFrame(w.conn, w.f)
	}
	for _, c := range survivors {
		_ = writeFrame(c, &frame{Kind: kindDown, From: id})
	}
}

// relay forwards a message to its recipients and records the pending
// delivery; when there are no recipients the done is immediate. Write
// failures are surfaced: a recipient whose socket rejects the frame is
// settled as failed instead of leaving the sender waiting on an ack that
// can never come.
func (h *Hub) relay(sender string, f *frame) {
	// The delivery key and the acks both use the frame's From field; pin
	// it to the authenticated registration id so a buggy or malicious
	// router cannot collide another sender's deliveries.
	f.From = sender
	key := pendingKey{sender: sender, seq: f.Seq}
	h.mu.Lock()
	var recipients []string
	for id := range h.conns {
		if id == sender {
			continue
		}
		if f.To == "" || f.To == id {
			recipients = append(recipients, id)
		}
	}
	d := &delivery{sender: sender, waiting: map[string]bool{}}
	for _, id := range recipients {
		d.waiting[id] = true
	}
	h.pending[key] = d
	conns := make(map[string]net.Conn, len(recipients))
	for _, id := range recipients {
		conns[id] = h.conns[id]
	}
	senderConn := h.conns[sender]
	h.mu.Unlock()

	for id, c := range conns {
		if err := writeFrame(c, f); err != nil {
			h.settle(key, id, id)
		}
	}
	if len(recipients) == 0 {
		h.mu.Lock()
		delete(h.pending, key)
		h.mu.Unlock()
		// A broadcast to an empty group (or a self-addressed send, which
		// the hub never loops back) is vacuously delivered; a directed
		// send to an absent (dead or never-registered) recipient is a
		// failure the sender must see — mirroring netsim.Async's crash
		// semantics — not a silent success.
		done := &frame{Kind: kindDone, Seq: f.Seq}
		if f.To != "" && f.To != sender {
			done.From = f.To
		}
		if senderConn != nil {
			_ = writeFrame(senderConn, done)
		}
	}
}

// settle records one recipient's acknowledgement — or, when failed is
// non-empty, its failure — and sends the sender its done frame once the
// waiting set drains.
func (h *Hub) settle(key pendingKey, by, failed string) {
	h.mu.Lock()
	d, ok := h.pending[key]
	if !ok || !d.waiting[by] {
		h.mu.Unlock()
		return
	}
	delete(d.waiting, by)
	if failed != "" && d.failed == "" {
		d.failed = failed
	}
	var senderConn net.Conn
	var done *frame
	if len(d.waiting) == 0 {
		delete(h.pending, key)
		senderConn = h.conns[d.sender]
		done = &frame{Kind: kindDone, Seq: key.seq, From: d.failed}
	}
	h.mu.Unlock()
	if senderConn != nil {
		_ = writeFrame(senderConn, done)
	}
}

// NodeCount reports currently registered nodes (diagnostics).
func (h *Hub) NodeCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

// PendingCount reports deliveries still waiting on acknowledgements
// (diagnostics; a healthy quiescent hub reports 0).
func (h *Hub) PendingCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pending)
}

// node is one TCP-connected endpoint owned by a Router.
type node struct {
	id   string
	conn net.Conn
	m    *meter.Meter

	mu     sync.Mutex
	arrive *sync.Cond // signalled on inbox growth and on read errors
	//gkalint:guard mu
	inbox []netsim.Message
	done  map[uint64]chan error
	err   error
	//gkalint:guard -
	wmu sync.Mutex // serialises frame writes
}

// Router bundles local nodes behind the netsim.Medium interface: each
// attached node holds its own TCP connection to the hub, and the medium
// methods route by node id exactly like the in-memory simulator.
type Router struct {
	addr string

	mu sync.Mutex
	//gkalint:guard mu
	nodes   map[string]*node
	seq     uint64
	timeout time.Duration
}

// NewRouter creates a router that will dial the given hub address.
func NewRouter(hubAddr string) *Router {
	return &Router{addr: hubAddr, nodes: map[string]*node{}, timeout: DefaultSendTimeout}
}

// SetSendTimeout bounds how long every subsequent Broadcast/Send may wait
// for the hub's delivery confirmation; past the deadline the send returns
// an ErrSendTimeout-wrapped error instead of blocking forever. d <= 0
// removes the bound (the pre-deadline behaviour).
func (r *Router) SetSendTimeout(d time.Duration) {
	r.mu.Lock()
	r.timeout = d
	r.mu.Unlock()
}

// Attach dials the hub and registers a node id. The meter may be nil.
func (r *Router) Attach(id string, m *meter.Meter) error {
	if id == "" {
		return errors.New("transport: empty node id")
	}
	conn, err := net.Dial("tcp", r.addr)
	if err != nil {
		return fmt.Errorf("transport: dial: %w", err)
	}
	n := &node{id: id, conn: conn, m: m, done: map[uint64]chan error{}}
	n.arrive = sync.NewCond(&n.mu)
	if err := writeFrame(conn, &frame{Kind: kindHello, From: id}); err != nil {
		_ = conn.Close()
		return err
	}
	// Wait for the hub's registration confirmation before exposing the
	// node, so subsequent broadcasts from peers cannot miss it. The hub
	// rejects duplicate ids by closing the socket, which surfaces here as
	// a failed confirmation read.
	if ack, err := readFrame(conn); err != nil || ack.Kind != kindDone {
		_ = conn.Close()
		return fmt.Errorf("transport: registration of %q not confirmed (duplicate id or hub down)", id)
	}
	r.mu.Lock()
	if _, dup := r.nodes[id]; dup {
		r.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("transport: duplicate node %q", id)
	}
	r.nodes[id] = n
	r.mu.Unlock()
	//gkalint:bounded readLoop exits when the node's connection closes (Detach or router Close)
	go n.readLoop()
	return nil
}

// Detach closes a node's connection. Goroutines blocked in the node's
// RecvWait wake with an error; the hub settles whatever was waiting on
// the node and announces its departure to the survivors.
func (r *Router) Detach(id string) {
	r.mu.Lock()
	n := r.nodes[id]
	delete(r.nodes, id)
	r.mu.Unlock()
	if n != nil {
		_ = n.conn.Close()
	}
}

// Close detaches every node.
func (r *Router) Close() {
	r.mu.Lock()
	nodes := r.nodes
	r.nodes = map[string]*node{}
	r.mu.Unlock()
	for _, n := range nodes {
		_ = n.conn.Close()
	}
}

// fail records a terminal connection error and releases everything
// blocked on the node: pending sends get the error, RecvWait wakes.
func (n *node) fail(err error) {
	n.mu.Lock()
	if n.err == nil {
		n.err = err
	}
	for seq, ch := range n.done {
		delete(n.done, seq)
		//gkalint:blocked the buffered (cap 1) slot is deleted first, so this lone send cannot park while n.mu is held
		ch <- err //gkalint:unbounded confirmation channels are buffered (cap 1); deleting the slot first makes this the only sender
	}
	n.arrive.Broadcast()
	n.mu.Unlock()
}

// readLoop drains the node's socket: data frames go to the inbox (with an
// ack back to the hub), done frames release blocked senders, down frames
// surface as peer-down inbox messages.
func (n *node) readLoop() {
	for {
		f, err := readFrame(n.conn)
		if err != nil {
			n.fail(err)
			return
		}
		switch f.Kind {
		case kindMsg:
			n.mu.Lock()
			n.inbox = append(n.inbox, netsim.Message{
				From: f.From, To: f.To, Type: f.Type, Payload: f.Payload,
			})
			n.arrive.Broadcast()
			n.mu.Unlock()
			n.m.Rx(len(f.Payload))
			n.m.RxState(int(f.StateLen))
			n.wmu.Lock()
			// The ack names the original sender so the hub can rebuild the
			// (sender, seq) delivery key.
			err := writeFrame(n.conn, &frame{Kind: kindAck, Seq: f.Seq, To: f.From})
			n.wmu.Unlock()
			if err != nil {
				n.fail(err)
				return
			}
		case kindDone:
			n.mu.Lock()
			ch, ok := n.done[f.Seq]
			delete(n.done, f.Seq)
			n.mu.Unlock()
			if ok {
				if f.From != "" {
					ch <- &PeerDownError{Peer: f.From} //gkalint:unbounded buffered (cap 1); deleting the slot under n.mu made this the only sender
				} else {
					ch <- nil //gkalint:unbounded buffered (cap 1); deleting the slot under n.mu made this the only sender
				}
			}
		case kindDown:
			// A peer died: surface it in the inbox so event-driven nodes
			// blocked in RecvWait wake and can trigger a re-key.
			mPeerDowns.Inc()
			n.mu.Lock()
			n.inbox = append(n.inbox, netsim.PeerDown(f.From))
			n.arrive.Broadcast()
			n.mu.Unlock()
		}
	}
}

func (r *Router) lookup(id string) (*node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		return nil, fmt.Errorf("transport: unknown node %q", id)
	}
	return n, nil
}

// send transmits one frame from a node and blocks until the hub confirms
// delivery to all recipients, the node's deadline expires, or the
// connection fails — it can no longer block unboundedly. A recipient
// dying mid-delivery surfaces as a *PeerDownError.
func (r *Router) send(from, to, typ string, payload []byte, stateLen int) error {
	n, err := r.lookup(from)
	if err != nil {
		return err
	}
	mSends.Inc()
	r.mu.Lock()
	r.seq++
	seq := r.seq
	timeout := r.timeout
	r.mu.Unlock()
	ch := make(chan error, 1)
	n.mu.Lock()
	if n.err != nil {
		err := n.err
		n.mu.Unlock()
		return err
	}
	n.done[seq] = ch
	n.mu.Unlock()
	n.wmu.Lock()
	err = writeFrame(n.conn, &frame{
		Kind: kindMsg, Seq: seq, From: from, To: to, Type: typ,
		StateLen: uint64(stateLen), Payload: payload,
	})
	n.wmu.Unlock()
	if err != nil {
		// The frame never left: release the confirmation slot instead of
		// leaking it (and the channel) forever.
		n.mu.Lock()
		delete(n.done, seq)
		n.mu.Unlock()
		return err
	}
	n.m.Tx(len(payload))
	n.m.TxState(stateLen)
	if timeout <= 0 {
		return <-ch //gkalint:unbounded the caller explicitly disabled the send deadline (SetSendTimeout(0)); fail() settles the slot on connection teardown
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-ch:
		return err
	case <-timer.C:
		n.mu.Lock()
		_, armed := n.done[seq]
		delete(n.done, seq)
		n.mu.Unlock()
		if !armed {
			// The confirmation raced the deadline; honour it.
			return <-ch //gkalint:unbounded slot already disarmed, so the buffered confirmation send has happened or is in flight; returns promptly
		}
		mSendTimeouts.Inc()
		return fmt.Errorf("transport: delivery %d from %q unconfirmed after %v: %w",
			seq, from, timeout, ErrSendTimeout)
	}
}

// Broadcast implements netsim.Medium.
func (r *Router) Broadcast(from, typ string, payload []byte) error {
	return r.send(from, "", typ, payload, 0)
}

// BroadcastState implements netsim.Medium.
func (r *Router) BroadcastState(from, typ string, payload []byte, stateLen int) error {
	return r.send(from, "", typ, payload, stateLen)
}

// Send implements netsim.Medium.
func (r *Router) Send(from, to, typ string, payload []byte) error {
	return r.send(from, to, typ, payload, 0)
}

// SendState implements netsim.Medium.
func (r *Router) SendState(from, to, typ string, payload []byte, stateLen int) error {
	return r.send(from, to, typ, payload, stateLen)
}

// Recv implements netsim.Medium: drain the node's whole inbox.
func (r *Router) Recv(id string) ([]netsim.Message, error) {
	n, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.inbox
	n.inbox = nil
	sortMessages(out)
	return out, nil
}

// RecvWait blocks until the node's inbox is non-empty (or its connection
// fails), then drains it like Recv. It is the receive primitive for
// event-driven nodes that are woken only by their own inbox rather than
// pumped by a lockstep orchestrator. Peer deaths wake it too, as
// netsim.TypePeerDown messages; Detach/Close wake it with an error.
func (r *Router) RecvWait(id string) ([]netsim.Message, error) {
	n, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.inbox) == 0 {
		if n.err != nil {
			return nil, n.err
		}
		n.arrive.Wait()
	}
	out := n.inbox
	n.inbox = nil
	sortMessages(out)
	return out, nil
}

// RecvType implements netsim.Medium: drain messages of one type.
func (r *Router) RecvType(id, typ string) ([]netsim.Message, error) {
	n, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var out, rest []netsim.Message
	for _, m := range n.inbox {
		if m.Type == typ {
			out = append(out, m)
		} else {
			rest = append(rest, m)
		}
	}
	n.inbox = rest
	sortMessages(out)
	return out, nil
}

// sortMessages orders deterministically by (Type, From), matching the
// simulator.
func sortMessages(msgs []netsim.Message) {
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].Type != msgs[j].Type {
			return msgs[i].Type < msgs[j].Type
		}
		return msgs[i].From < msgs[j].From
	})
}

var _ netsim.Medium = (*Router)(nil)
