// Package transport carries the protocols over real TCP sockets with the
// same delivery contract as the in-memory simulator: Broadcast/Send return
// only once the message sits in every recipient's inbox, so the lockstep
// orchestrators of internal/core and internal/baseline run unchanged over
// a genuine network stack.
//
// Topology: a Hub process accepts one TCP connection per node and relays
// frames. Delivery acknowledgements flow back through the hub to the
// sender, giving the synchronous semantics netsim.Medium promises. A
// Router bundles any number of local node connections behind the
// netsim.Medium interface.
//
// Frame format (all fields via internal/wire):
//
//	kind ‖ seq ‖ from ‖ to ‖ type ‖ stateLen ‖ payload
//
// kinds: "hello" (registration), "msg" (data), "ack" (delivery
// confirmation, node→hub), "done" (hub→sender: all recipients confirmed).
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/wire"
)

// Frame kinds.
const (
	kindHello = "hello"
	kindMsg   = "msg"
	kindAck   = "ack"
	kindDone  = "done"
)

// frame is the unit of exchange between nodes and the hub.
type frame struct {
	Kind     string
	Seq      uint64
	From     string
	To       string // empty = broadcast
	Type     string
	StateLen uint64
	Payload  []byte
}

// writeFrame serialises a frame with a 4-byte length prefix.
func writeFrame(w io.Writer, f *frame) error {
	body := wire.NewBuffer().
		PutString(f.Kind).
		PutUint(f.Seq).
		PutString(f.From).
		PutString(f.To).
		PutString(f.Type).
		PutUint(f.StateLen).
		PutBytes(f.Payload).
		Bytes()
	head := wire.NewBuffer().PutBytes(body).Bytes()
	_, err := w.Write(head)
	return err
}

// readFrame parses one length-prefixed frame.
func readFrame(r io.Reader) (*frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3]))
	if n < 0 || n > 64<<20 {
		return nil, fmt.Errorf("transport: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	rd := wire.NewReader(body)
	f := &frame{
		Kind:     rd.String(),
		Seq:      rd.Uint(),
		From:     rd.String(),
		To:       rd.String(),
		Type:     rd.String(),
		StateLen: rd.Uint(),
		Payload:  append([]byte(nil), rd.Bytes()...),
	}
	if err := rd.Close(); err != nil {
		return nil, fmt.Errorf("transport: bad frame: %w", err)
	}
	return f, nil
}

// Hub is the relay at the centre of the star topology.
type Hub struct {
	ln net.Listener

	mu      sync.Mutex
	conns   map[string]net.Conn
	pending map[uint64]*delivery
	closed  bool
	wg      sync.WaitGroup
}

// delivery tracks outstanding acknowledgements for one relayed message.
type delivery struct {
	sender  string
	waiting map[string]bool
}

// NewHub starts a hub listening on addr (e.g. "127.0.0.1:0").
func NewHub(addr string) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	h := &Hub{ln: ln, conns: map[string]net.Conn{}, pending: map[uint64]*delivery{}}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Close shuts the hub down and disconnects all nodes.
func (h *Hub) Close() error {
	h.mu.Lock()
	h.closed = true
	err := h.ln.Close()
	for _, c := range h.conns {
		_ = c.Close()
	}
	h.mu.Unlock()
	h.wg.Wait()
	return err
}

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go h.serve(conn)
	}
}

// serve handles one node connection: first frame must be a hello carrying
// the node id; afterwards msg frames are relayed and ack frames settle
// deliveries.
func (h *Hub) serve(conn net.Conn) {
	defer h.wg.Done()
	hello, err := readFrame(conn)
	if err != nil || hello.Kind != kindHello || hello.From == "" {
		_ = conn.Close()
		return
	}
	id := hello.From
	h.mu.Lock()
	if _, dup := h.conns[id]; dup || h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return
	}
	h.conns[id] = conn
	h.mu.Unlock()
	// Confirm registration so Attach is synchronous.
	if err := writeFrame(conn, &frame{Kind: kindDone, Seq: hello.Seq}); err != nil {
		return
	}
	defer func() {
		h.mu.Lock()
		delete(h.conns, id)
		h.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		switch f.Kind {
		case kindMsg:
			h.relay(id, f)
		case kindAck:
			h.settle(f.Seq, id)
		}
	}
}

// relay forwards a message to its recipients and records the pending
// delivery; when there are no recipients the done is immediate.
func (h *Hub) relay(sender string, f *frame) {
	h.mu.Lock()
	var recipients []string
	for id := range h.conns {
		if id == sender {
			continue
		}
		if f.To == "" || f.To == id {
			recipients = append(recipients, id)
		}
	}
	d := &delivery{sender: sender, waiting: map[string]bool{}}
	for _, id := range recipients {
		d.waiting[id] = true
	}
	h.pending[f.Seq] = d
	conns := make(map[string]net.Conn, len(recipients))
	for _, id := range recipients {
		conns[id] = h.conns[id]
	}
	senderConn := h.conns[sender]
	h.mu.Unlock()

	for _, c := range conns {
		_ = writeFrame(c, f)
	}
	if len(recipients) == 0 {
		h.mu.Lock()
		delete(h.pending, f.Seq)
		h.mu.Unlock()
		if senderConn != nil {
			_ = writeFrame(senderConn, &frame{Kind: kindDone, Seq: f.Seq})
		}
	}
}

// settle records one recipient's acknowledgement; when the set drains the
// sender gets its done frame.
func (h *Hub) settle(seq uint64, by string) {
	h.mu.Lock()
	d, ok := h.pending[seq]
	if !ok {
		h.mu.Unlock()
		return
	}
	delete(d.waiting, by)
	var senderConn net.Conn
	if len(d.waiting) == 0 {
		delete(h.pending, seq)
		senderConn = h.conns[d.sender]
	}
	h.mu.Unlock()
	if senderConn != nil {
		_ = writeFrame(senderConn, &frame{Kind: kindDone, Seq: seq})
	}
}

// NodeCount reports currently registered nodes (diagnostics).
func (h *Hub) NodeCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

// node is one TCP-connected endpoint owned by a Router.
type node struct {
	id   string
	conn net.Conn
	m    *meter.Meter

	mu     sync.Mutex
	arrive *sync.Cond // signalled on inbox growth and on read errors
	inbox  []netsim.Message
	done   map[uint64]chan struct{}
	err    error
	wmu    sync.Mutex // serialises frame writes
}

// Router bundles local nodes behind the netsim.Medium interface: each
// attached node holds its own TCP connection to the hub, and the medium
// methods route by node id exactly like the in-memory simulator.
type Router struct {
	addr string

	mu    sync.Mutex
	nodes map[string]*node
	seq   uint64
}

// NewRouter creates a router that will dial the given hub address.
func NewRouter(hubAddr string) *Router {
	return &Router{addr: hubAddr, nodes: map[string]*node{}}
}

// Attach dials the hub and registers a node id. The meter may be nil.
func (r *Router) Attach(id string, m *meter.Meter) error {
	if id == "" {
		return errors.New("transport: empty node id")
	}
	conn, err := net.Dial("tcp", r.addr)
	if err != nil {
		return fmt.Errorf("transport: dial: %w", err)
	}
	n := &node{id: id, conn: conn, m: m, done: map[uint64]chan struct{}{}}
	n.arrive = sync.NewCond(&n.mu)
	if err := writeFrame(conn, &frame{Kind: kindHello, From: id}); err != nil {
		_ = conn.Close()
		return err
	}
	// Wait for the hub's registration confirmation before exposing the
	// node, so subsequent broadcasts from peers cannot miss it.
	if ack, err := readFrame(conn); err != nil || ack.Kind != kindDone {
		_ = conn.Close()
		return fmt.Errorf("transport: registration of %q not confirmed", id)
	}
	r.mu.Lock()
	if _, dup := r.nodes[id]; dup {
		r.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("transport: duplicate node %q", id)
	}
	r.nodes[id] = n
	r.mu.Unlock()
	go n.readLoop()
	return nil
}

// Detach closes a node's connection.
func (r *Router) Detach(id string) {
	r.mu.Lock()
	n := r.nodes[id]
	delete(r.nodes, id)
	r.mu.Unlock()
	if n != nil {
		_ = n.conn.Close()
	}
}

// Close detaches every node.
func (r *Router) Close() {
	r.mu.Lock()
	nodes := r.nodes
	r.nodes = map[string]*node{}
	r.mu.Unlock()
	for _, n := range nodes {
		_ = n.conn.Close()
	}
}

// readLoop drains the node's socket: data frames go to the inbox (with an
// ack back to the hub), done frames release blocked senders.
func (n *node) readLoop() {
	for {
		f, err := readFrame(n.conn)
		if err != nil {
			n.mu.Lock()
			n.err = err
			for _, ch := range n.done {
				close(ch)
			}
			n.done = map[uint64]chan struct{}{}
			n.arrive.Broadcast()
			n.mu.Unlock()
			return
		}
		switch f.Kind {
		case kindMsg:
			n.mu.Lock()
			n.inbox = append(n.inbox, netsim.Message{
				From: f.From, To: f.To, Type: f.Type, Payload: f.Payload,
			})
			n.arrive.Broadcast()
			n.mu.Unlock()
			n.m.Rx(len(f.Payload))
			n.m.RxState(int(f.StateLen))
			n.wmu.Lock()
			_ = writeFrame(n.conn, &frame{Kind: kindAck, Seq: f.Seq})
			n.wmu.Unlock()
		case kindDone:
			n.mu.Lock()
			if ch, ok := n.done[f.Seq]; ok {
				delete(n.done, f.Seq)
				close(ch)
			}
			n.mu.Unlock()
		}
	}
}

func (r *Router) lookup(id string) (*node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.nodes[id]
	if !ok {
		return nil, fmt.Errorf("transport: unknown node %q", id)
	}
	return n, nil
}

// send transmits one frame from a node and blocks until the hub confirms
// delivery to all recipients.
func (r *Router) send(from, to, typ string, payload []byte, stateLen int) error {
	n, err := r.lookup(from)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.mu.Unlock()
	ch := make(chan struct{})
	n.mu.Lock()
	if n.err != nil {
		err := n.err
		n.mu.Unlock()
		return err
	}
	n.done[seq] = ch
	n.mu.Unlock()
	n.wmu.Lock()
	err = writeFrame(n.conn, &frame{
		Kind: kindMsg, Seq: seq, From: from, To: to, Type: typ,
		StateLen: uint64(stateLen), Payload: payload,
	})
	n.wmu.Unlock()
	if err != nil {
		return err
	}
	n.m.Tx(len(payload))
	n.m.TxState(stateLen)
	<-ch
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Broadcast implements netsim.Medium.
func (r *Router) Broadcast(from, typ string, payload []byte) error {
	return r.send(from, "", typ, payload, 0)
}

// BroadcastState implements netsim.Medium.
func (r *Router) BroadcastState(from, typ string, payload []byte, stateLen int) error {
	return r.send(from, "", typ, payload, stateLen)
}

// Send implements netsim.Medium.
func (r *Router) Send(from, to, typ string, payload []byte) error {
	return r.send(from, to, typ, payload, 0)
}

// SendState implements netsim.Medium.
func (r *Router) SendState(from, to, typ string, payload []byte, stateLen int) error {
	return r.send(from, to, typ, payload, stateLen)
}

// Recv implements netsim.Medium: drain the node's whole inbox.
func (r *Router) Recv(id string) ([]netsim.Message, error) {
	n, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.inbox
	n.inbox = nil
	sortMessages(out)
	return out, nil
}

// RecvWait blocks until the node's inbox is non-empty (or its connection
// fails), then drains it like Recv. It is the receive primitive for
// event-driven nodes that are woken only by their own inbox rather than
// pumped by a lockstep orchestrator.
func (r *Router) RecvWait(id string) ([]netsim.Message, error) {
	n, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.inbox) == 0 {
		if n.err != nil {
			return nil, n.err
		}
		n.arrive.Wait()
	}
	out := n.inbox
	n.inbox = nil
	sortMessages(out)
	return out, nil
}

// RecvType implements netsim.Medium: drain messages of one type.
func (r *Router) RecvType(id, typ string) ([]netsim.Message, error) {
	n, err := r.lookup(id)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var out, rest []netsim.Message
	for _, m := range n.inbox {
		if m.Type == typ {
			out = append(out, m)
		} else {
			rest = append(rest, m)
		}
	}
	n.inbox = rest
	sortMessages(out)
	return out, nil
}

// sortMessages orders deterministically by (Type, From), matching the
// simulator.
func sortMessages(msgs []netsim.Message) {
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].Type != msgs[j].Type {
			return msgs[i].Type < msgs[j].Type
		}
		return msgs[i].From < msgs[j].From
	})
}

var _ netsim.Medium = (*Router)(nil)
