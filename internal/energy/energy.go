// Package energy implements the paper's evaluation methodology (Section 6):
// per-operation energy costs for the 133 MHz StrongARM SA-1110 derived from
// Pentium III-450 MIRACL timings via the extrapolation rule of equation
// (4), per-bit radio costs for the two transceivers of Table 3, and an
// accounting model that prices a meter.Report — the operation counters of
// an actual protocol execution — in Joules.
//
// The paper never runs on hardware; it multiplies operation counts by these
// published constants. This package reproduces that pipeline exactly, with
// the counts coming from instrumented executions instead of hand counting.
package energy

import (
	"fmt"

	"idgka/internal/meter"
)

// StrongARMPowerMW is the SA-1110 active power draw from Carman et al.
// [3]: 240 mW.
const StrongARMPowerMW = 240.0

// P3ModExpMs is the MIRACL 1024-bit modular exponentiation time on the
// Pentium III 450 MHz, the anchor of the extrapolation (8.8 ms).
const P3ModExpMs = 8.8

// StrongARMModExpMJ is the measured StrongARM modular exponentiation energy
// from [3] (9.1 mJ), giving the 37.92 ms anchor timing.
const StrongARMModExpMJ = 9.1

// strongARMModExpMs = 9.1 mJ / 240 mW.
const strongARMModExpMs = StrongARMModExpMJ / StrongARMPowerMW * 1000

// Extrapolate applies equation (4): given an operation's time on the
// P3-450 (ms), return its estimated StrongARM time (ms) and energy (mJ).
func Extrapolate(p3Ms float64) (armMs, mJ float64) {
	armMs = p3Ms / P3ModExpMs * strongARMModExpMs
	mJ = StrongARMPowerMW * armMs / 1000
	return armMs, mJ
}

// P3Seeds are the Pentium III-450 timings (ms) the paper extrapolates
// from: MIRACL measurements [11], with the Tate pairing and MapToPoint
// scaled down from P3-1GHz figures by 1000/450 = 2.22 as in the text.
type P3Seeds struct {
	ModExp     float64
	MapToPoint float64
	TatePair   float64
	ScalarMul  float64
	GenDSA     float64
	GenECDSA   float64
	GenSOK     float64
	GenGQ      float64
	VerDSA     float64
	VerECDSA   float64
	VerSOK     float64
	VerGQ      float64
}

// PaperSeeds returns the seed timings used in Table 2.
func PaperSeeds() P3Seeds {
	return P3Seeds{
		ModExp:     8.8,
		MapToPoint: 17.78, // (35 - 27) ms on P3-1GHz / 2.22... ×... see §6
		TatePair:   44.4,  // 20 ms on P3-1GHz × 2.22
		ScalarMul:  8.5,
		GenDSA:     8.8,
		GenECDSA:   8.5,
		GenSOK:     17.0,
		GenGQ:      17.6,
		VerDSA:     10.75,
		VerECDSA:   10.5,
		VerSOK:     133.2, // 3 Tate pairings
		VerGQ:      17.6,
	}
}

// CPUProfile carries per-operation energies in millijoules.
type CPUProfile struct {
	Name      string
	ModExpMJ  float64
	MapToPtMJ float64
	PairingMJ float64
	ScalarMJ  float64
	SignGenMJ map[meter.Scheme]float64
	SignVerMJ map[meter.Scheme]float64
	SymOpMJ   float64 // per symmetric encryption/decryption
}

// StrongARM builds the paper's Table 2 profile by running the
// extrapolation pipeline over the published seeds. The symmetric-operation
// cost is this repository's documented estimate (the paper only says it is
// "orders of magnitude lower" than an exponentiation, citing [3][6]).
func StrongARM() *CPUProfile {
	s := PaperSeeds()
	mj := func(p3 float64) float64 {
		_, v := Extrapolate(p3)
		return v
	}
	return &CPUProfile{
		Name:      "133MHz StrongARM SA-1110",
		ModExpMJ:  mj(s.ModExp),
		MapToPtMJ: mj(s.MapToPoint),
		PairingMJ: mj(s.TatePair),
		ScalarMJ:  mj(s.ScalarMul),
		SignGenMJ: map[meter.Scheme]float64{
			meter.SchemeDSA:   mj(s.GenDSA),
			meter.SchemeECDSA: mj(s.GenECDSA),
			meter.SchemeSOK:   mj(s.GenSOK),
			meter.SchemeGQ:    mj(s.GenGQ),
		},
		SignVerMJ: map[meter.Scheme]float64{
			meter.SchemeDSA:   mj(s.VerDSA),
			meter.SchemeECDSA: mj(s.VerECDSA),
			meter.SchemeSOK:   mj(s.VerSOK),
			meter.SchemeGQ:    mj(s.VerGQ),
		},
		SymOpMJ: 0.02,
	}
}

// RadioProfile carries per-bit transmission/reception energies in
// millijoules (Table 3).
type RadioProfile struct {
	Name    string
	TxMJBit float64
	RxMJBit float64
}

// Radio100kbps is the sensor-class 100 kbps transceiver of [3][6]:
// 10.8 µJ/bit transmit, 7.51 µJ/bit receive.
func Radio100kbps() RadioProfile {
	return RadioProfile{Name: "100kbps transceiver", TxMJBit: 0.0108, RxMJBit: 0.00751}
}

// WLANCard is the IEEE 802.11 Spectrum24 LA-4121 card of [8]:
// 0.66 µJ/bit transmit, 0.31 µJ/bit receive.
func WLANCard() RadioProfile {
	return RadioProfile{Name: "Spectrum24 WLAN card", TxMJBit: 0.00066, RxMJBit: 0.00031}
}

// Model prices operation reports.
type Model struct {
	CPU   *CPUProfile
	Radio RadioProfile
	// CertVerifyAs selects the signature scheme a certificate verification
	// is priced as (the certificate's own scheme). Defaults to ECDSA.
	CertVerifyAs meter.Scheme
	// IncludeStateBytes charges state-transfer traffic (joiner/merge table
	// shipping) to the radio as well. Off by default so results stay
	// comparable to the paper's accounting; EXPERIMENTS.md reports both.
	IncludeStateBytes bool
}

// DefaultModel is StrongARM + WLAN, the combination of the paper's
// Table 5.
func DefaultModel() Model {
	return Model{CPU: StrongARM(), Radio: WLANCard(), CertVerifyAs: meter.SchemeECDSA}
}

// ComputeMJ prices the computational part of a report in millijoules.
func (m Model) ComputeMJ(r meter.Report) float64 {
	certScheme := m.CertVerifyAs
	if certScheme == "" {
		certScheme = meter.SchemeECDSA
	}
	total := float64(r.Exp) * m.CPU.ModExpMJ
	for s, n := range r.SignGen {
		total += float64(n) * m.CPU.SignGenMJ[s]
	}
	for s, n := range r.SignVer {
		total += float64(n) * m.CPU.SignVerMJ[s]
	}
	total += float64(r.CertVer) * m.CPU.SignVerMJ[certScheme]
	total += float64(r.MapToPoint) * m.CPU.MapToPtMJ
	total += float64(r.Pairing) * m.CPU.PairingMJ
	total += float64(r.SymEnc+r.SymDec) * m.CPU.SymOpMJ
	return total
}

// CommMJ prices the radio part of a report in millijoules.
func (m Model) CommMJ(r meter.Report) float64 {
	tx := float64(r.BytesTx)
	rx := float64(r.BytesRx)
	if m.IncludeStateBytes {
		tx += float64(r.StateTx)
		rx += float64(r.StateRx)
	}
	return tx*8*m.Radio.TxMJBit + rx*8*m.Radio.RxMJBit
}

// EnergyJ prices a full report in Joules.
func (m Model) EnergyJ(r meter.Report) float64 {
	return (m.ComputeMJ(r) + m.CommMJ(r)) / 1000
}

// String renders the model configuration.
func (m Model) String() string {
	return fmt.Sprintf("%s + %s", m.CPU.Name, m.Radio.Name)
}
