package energy

import (
	"math"
	"testing"

	"idgka/internal/meter"
)

// approx asserts relative closeness.
func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", what, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > tol {
		t.Errorf("%s = %.4g, want %.4g (±%.0f%%)", what, got, want, tol*100)
	}
}

// TestExtrapolationReproducesTable2 checks the equation-(4) pipeline
// against the paper's published StrongARM values.
func TestExtrapolationReproducesTable2(t *testing.T) {
	cases := []struct {
		name   string
		p3Ms   float64
		wantMs float64
		wantMJ float64
	}{
		{"ModExp", 8.8, 37.92, 9.1},
		{"MapToPoint", 17.78, 76.67, 18.4},
		{"TatePairing", 44.4, 191.5, 47.0},
		{"ScalarMul", 8.5, 36.67, 8.8},
		{"DSA sign", 8.8, 37.92, 9.1},
		{"ECDSA sign", 8.5, 36.67, 8.8},
		{"SOK sign", 17.0, 73.33, 17.6},
		{"GQ sign", 17.6, 75.83, 18.2},
		{"DSA verify", 10.75, 46.33, 11.1},
		{"ECDSA verify", 10.5, 45.42, 10.9},
		{"SOK verify", 133.2, 573.75, 137.7},
		{"GQ verify", 17.6, 75.83, 18.2},
	}
	for _, c := range cases {
		ms, mj := Extrapolate(c.p3Ms)
		approx(t, ms, c.wantMs, 0.03, c.name+" ms")
		approx(t, mj, c.wantMJ, 0.03, c.name+" mJ")
	}
}

// TestRadioCostsReproduceTable3 checks the derived per-message costs the
// paper lists in Table 3.
func TestRadioCostsReproduceTable3(t *testing.T) {
	r100 := Radio100kbps()
	wlan := WLANCard()
	cases := []struct {
		name  string
		bytes int
		radio RadioProfile
		tx    bool
		want  float64 // mJ
	}{
		{"Tx 263B DSA cert @100kbps", 263, r100, true, 22.72},
		{"Rx 263B DSA cert @100kbps", 263, r100, false, 15.8},
		{"Tx 86B ECDSA cert @100kbps", 86, r100, true, 7.43},
		{"Rx 86B ECDSA cert @100kbps", 86, r100, false, 5.17},
		{"Tx 263B DSA cert @WLAN", 263, wlan, true, 1.38},
		{"Rx 263B DSA cert @WLAN", 263, wlan, false, 0.64},
		{"Tx DSA/ECDSA sig @100kbps", 40, r100, true, 3.46},
		{"Rx DSA/ECDSA sig @100kbps", 40, r100, false, 2.40},
		{"Tx GQ sig @100kbps", 148, r100, true, 12.79},
		{"Rx GQ sig @100kbps", 148, r100, false, 8.89},
	}
	for _, c := range cases {
		bits := float64(c.bytes) * 8
		var got float64
		if c.tx {
			got = bits * c.radio.TxMJBit
		} else {
			got = bits * c.radio.RxMJBit
		}
		approx(t, got, c.want, 0.035, c.name)
	}
}

func TestComputePricing(t *testing.T) {
	m := DefaultModel()
	r := meter.NewReport()
	r.Exp = 3
	r.SignGen[meter.SchemeGQ] = 1
	r.SignVer[meter.SchemeGQ] = 1
	// 3 × 9.1 + 18.2 + 18.2 = 63.7 mJ.
	approx(t, m.ComputeMJ(r), 63.7, 0.03, "proposed per-user compute")
}

func TestCertVerPricedBySelectedScheme(t *testing.T) {
	r := meter.NewReport()
	r.CertVer = 10
	mE := DefaultModel()
	mD := DefaultModel()
	mD.CertVerifyAs = meter.SchemeDSA
	if mE.ComputeMJ(r) >= mD.ComputeMJ(r) {
		t.Fatal("DSA cert verification should cost more than ECDSA")
	}
	approx(t, mE.ComputeMJ(r), 10*10.9, 0.03, "ECDSA cert ver")
}

func TestCommPricingAndStateBytes(t *testing.T) {
	m := DefaultModel()
	r := meter.NewReport()
	r.BytesTx = 1000
	r.BytesRx = 2000
	r.StateTx = 50000
	want := 1000*8*0.00066 + 2000*8*0.00031
	approx(t, m.CommMJ(r), want, 1e-9, "comm without state")
	m.IncludeStateBytes = true
	want += 50000 * 8 * 0.00066
	approx(t, m.CommMJ(r), want, 1e-9, "comm with state")
}

func TestEnergyJCombines(t *testing.T) {
	m := DefaultModel()
	r := meter.NewReport()
	r.Exp = 1
	r.BytesTx = 125 // 1000 bits
	wantJ := (9.1 + 1000*0.00066) / 1000
	approx(t, m.EnergyJ(r), wantJ, 0.03, "combined energy")
}

func TestSOKVerifyDominates(t *testing.T) {
	// The structural fact behind Figure 1: one SOK verification costs more
	// than an entire proposed-protocol participant.
	cpu := StrongARM()
	if cpu.SignVerMJ[meter.SchemeSOK] < 100 {
		t.Fatal("SOK verification should be >100 mJ")
	}
	proposedTotal := 3*cpu.ModExpMJ + cpu.SignGenMJ[meter.SchemeGQ] + cpu.SignVerMJ[meter.SchemeGQ]
	if cpu.SignVerMJ[meter.SchemeSOK] < proposedTotal {
		t.Fatal("one SOK verify should exceed the proposed scheme's full compute")
	}
}
