// Package bdkey implements the Burmester-Desmedt ring-key mathematics
// shared by the proposed protocol (internal/core), the signature-
// authenticated BD baselines and the SSN reconstruction
// (internal/baseline): the X_i round-2 values, the Lemma-1 product check,
// and the per-member group key computation.
//
// All functions work over an arbitrary modulus so the same code serves the
// Schnorr-group protocols (prime p) and the SSN reconstruction (composite
// N).
package bdkey

import (
	"errors"
	"fmt"
	"math/big"

	"idgka/internal/mathx"
)

// XValue computes the round-2 broadcast value
//
//	X_i = (z_next / z_prev)^{r} mod m,
//
// the quantity whose ring-product telescopes to 1 (Lemma 1).
func XValue(zNext, zPrev, r, m *big.Int) (*big.Int, error) {
	inv, err := mathx.ModInverse(zPrev, m)
	if err != nil {
		return nil, fmt.Errorf("bdkey: z_prev not invertible: %w", err)
	}
	base := new(big.Int).Mul(zNext, inv)
	base.Mod(base, m)
	return new(big.Int).Exp(base, r, m), nil
}

// CheckLemma1 verifies Π X_i ≡ 1 (mod m) — the paper's integrity check on
// the round-2 values. The order of xs is irrelevant.
func CheckLemma1(xs []*big.Int, m *big.Int) error {
	if mathx.ProductMod(xs, m).Cmp(mathx.One) != 0 {
		return errors.New("bdkey: Lemma 1 failed: ΠX_i ≠ 1, at least one X is corrupt")
	}
	return nil
}

// Key computes member i's view of the Burmester-Desmedt group key
//
//	K_i = z_{i-1}^{n·r_i} · X_i^{n-1} · X_{i+1}^{n-2} ··· X_{i+n-2}^{1} mod m
//
// over a ring of n members; xs must be the X values in ring order
// (xs[j] = X_j) and i is the member's 0-based ring position. The result
// equals g^{r_1 r_2 + r_2 r_3 + ··· + r_n r_1} for every member.
func Key(i int, r, zPrev *big.Int, xs []*big.Int, m *big.Int) (*big.Int, error) {
	n := len(xs)
	if n == 0 {
		return nil, errors.New("bdkey: empty ring")
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("bdkey: index %d out of ring of %d", i, n)
	}
	// Dominant exponentiation: z_{i-1}^{n·r_i}.
	e := new(big.Int).Mul(big.NewInt(int64(n)), r)
	k := new(big.Int).Exp(zPrev, e, m)
	// Small-exponent products: X_{i+j}^{n-1-j} for j = 0..n-2.
	for j := 0; j < n-1; j++ {
		idx := (i + j) % n
		exp := big.NewInt(int64(n - 1 - j))
		t := new(big.Int).Exp(xs[idx], exp, m)
		k.Mul(k, t)
		k.Mod(k, m)
	}
	return k, nil
}

// KeyMultiExp computes exactly the same group key as Key, folding the
// n-1 small-exponent factors X_{i+j}^{n-1-j} into one interleaved
// multi-exponentiation (their exponents are bounded by the ring size, so
// the shared squaring chain is only ~log2(n) deep). The dominant
// z_{i-1}^{n·r_i} term keeps the library exponentiation, which is faster
// for full-width exponents. Part of the acceleration layer; the result
// is bit-identical to Key.
func KeyMultiExp(i int, r, zPrev *big.Int, xs []*big.Int, m *big.Int) (*big.Int, error) {
	n := len(xs)
	if n == 0 {
		return nil, errors.New("bdkey: empty ring")
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("bdkey: index %d out of ring of %d", i, n)
	}
	e := new(big.Int).Mul(big.NewInt(int64(n)), r)
	k := new(big.Int).Exp(zPrev, e, m)
	bases := make([]*big.Int, 0, n-1)
	exps := make([]*big.Int, 0, n-1)
	for j := 0; j < n-1; j++ {
		bases = append(bases, xs[(i+j)%n])
		exps = append(exps, big.NewInt(int64(n-1-j)))
	}
	chain, err := mathx.MultiExp(bases, exps, m)
	if err != nil {
		return nil, err
	}
	k.Mul(k, chain)
	return k.Mod(k, m), nil
}

// DirectKey computes g^{Σ r_j r_{j+1}} from all ring exponents — the
// white-box reference used by tests to validate Key against the paper's
// equation (3). Never used by the protocols themselves.
func DirectKey(g *big.Int, rs []*big.Int, order, m *big.Int) *big.Int {
	n := len(rs)
	sum := new(big.Int)
	for i := 0; i < n; i++ {
		t := new(big.Int).Mul(rs[i], rs[(i+1)%n])
		sum.Add(sum, t)
	}
	if order != nil {
		sum.Mod(sum, order)
	}
	return new(big.Int).Exp(g, sum, m)
}
