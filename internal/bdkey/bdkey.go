// Package bdkey implements the Burmester-Desmedt ring-key mathematics
// shared by the proposed protocol (internal/core), the signature-
// authenticated BD baselines and the SSN reconstruction
// (internal/baseline): the X_i round-2 values, the Lemma-1 product check,
// and the per-member group key computation.
//
// All functions work over an arbitrary modulus so the same code serves the
// Schnorr-group protocols (prime p) and the SSN reconstruction (composite
// N).
package bdkey

import (
	"errors"
	"fmt"
	"math/big"

	"idgka/internal/mathx"
)

// XValue computes the round-2 broadcast value
//
//	X_i = (z_next / z_prev)^{r} mod m,
//
// the quantity whose ring-product telescopes to 1 (Lemma 1).
func XValue(zNext, zPrev, r, m *big.Int) (*big.Int, error) {
	inv, err := mathx.ModInverse(zPrev, m)
	if err != nil {
		return nil, fmt.Errorf("bdkey: z_prev not invertible: %w", err)
	}
	base := new(big.Int).Mul(zNext, inv)
	base.Mod(base, m)
	return new(big.Int).Exp(base, r, m), nil
}

// XFromPowers assembles the round-2 broadcast value from the two directed
// DH edge powers the member raised itself: given a = z_next^r and
// b = z_prev^r it returns X = a·b^{-1} mod m — the same value XValue
// computes from the raw z's. Splitting the computation this way costs the
// same total work as XValue (two exponentiations and one inversion per
// member across the session, counting the key derivation) but leaves b =
// z_prev^{r} in the session state, which collapses the dominant
// z_prev^{n·r} term of equation (3) to b^n — a handful of squarings.
func XFromPowers(a, b, m *big.Int) (*big.Int, error) {
	inv, err := mathx.ModInverse(b, m)
	if err != nil {
		return nil, fmt.Errorf("bdkey: edge power not invertible: %w", err)
	}
	x := new(big.Int).Mul(a, inv)
	return x.Mod(x, m), nil
}

// XValuesBatch computes every ring member's X value in one call with a
// single modular inversion: the z_prev inverses all come from one
// Montgomery-trick batch inversion instead of n independent extended
// GCDs. zs and rs are the ring-ordered public values and secret
// exponents. Drivers that materialize whole rings (benchmarks, tests, the
// lockstep flows' white-box checks) use this to drop the inversion count
// from O(n) to O(1); the values are bit-identical to per-member XValue.
func XValuesBatch(zs, rs []*big.Int, m *big.Int) ([]*big.Int, error) {
	n := len(zs)
	if n == 0 || n != len(rs) {
		return nil, errors.New("bdkey: ring size mismatch")
	}
	mo, err := mathx.NewModulus(m)
	if err != nil {
		return nil, err
	}
	prevs := make([]*big.Int, n)
	for i := range zs {
		prevs[i] = zs[(i-1+n)%n]
	}
	invs, err := mo.BatchInverse(prevs)
	if err != nil {
		return nil, fmt.Errorf("bdkey: z_prev not invertible: %w", err)
	}
	xs := make([]*big.Int, n)
	for i := range zs {
		base := new(big.Int).Mul(zs[(i+1)%n], invs[i])
		base.Mod(base, m)
		xs[i] = new(big.Int).Exp(base, rs[i], m)
	}
	return xs, nil
}

// CheckLemma1 verifies Π X_i ≡ 1 (mod m) — the paper's integrity check on
// the round-2 values. The order of xs is irrelevant.
func CheckLemma1(xs []*big.Int, m *big.Int) error {
	if mathx.ProductMod(xs, m).Cmp(mathx.One) != 0 {
		return errors.New("bdkey: Lemma 1 failed: ΠX_i ≠ 1, at least one X is corrupt")
	}
	return nil
}

// CheckLemma1Mont is CheckLemma1 over X values already converted into the
// Montgomery domain (the product check is domain-invariant: ΠX_i ≡ 1 iff
// the Montgomery product of the images equals the image of 1).
func CheckLemma1Mont(mo *mathx.Modulus, xs []mathx.Elem) error {
	if !mo.IsOne(mo.ProductElem(xs)) {
		return errors.New("bdkey: Lemma 1 failed: ΠX_i ≠ 1, at least one X is corrupt")
	}
	return nil
}

// Key computes member i's view of the Burmester-Desmedt group key
//
//	K_i = z_{i-1}^{n·r_i} · X_i^{n-1} · X_{i+1}^{n-2} ··· X_{i+n-2}^{1} mod m
//
// over a ring of n members; xs must be the X values in ring order
// (xs[j] = X_j) and i is the member's 0-based ring position. The result
// equals g^{r_1 r_2 + r_2 r_3 + ··· + r_n r_1} for every member.
func Key(i int, r, zPrev *big.Int, xs []*big.Int, m *big.Int) (*big.Int, error) {
	n := len(xs)
	if n == 0 {
		return nil, errors.New("bdkey: empty ring")
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("bdkey: index %d out of ring of %d", i, n)
	}
	// Dominant exponentiation: z_{i-1}^{n·r_i}.
	e := new(big.Int).Mul(big.NewInt(int64(n)), r)
	k := new(big.Int).Exp(zPrev, e, m)
	// Small-exponent products: X_{i+j}^{n-1-j} for j = 0..n-2.
	for j := 0; j < n-1; j++ {
		idx := (i + j) % n
		exp := big.NewInt(int64(n - 1 - j))
		t := new(big.Int).Exp(xs[idx], exp, m)
		k.Mul(k, t)
		k.Mod(k, m)
	}
	return k, nil
}

// KeyMultiExp computes exactly the same group key as Key, folding the
// n-1 small-exponent factors X_{i+j}^{n-1-j} into one interleaved
// multi-exponentiation (their exponents are bounded by the ring size, so
// the shared squaring chain is only ~log2(n) deep). The dominant
// z_{i-1}^{n·r_i} term keeps the library exponentiation, which is faster
// for full-width exponents. Part of the acceleration layer; the result
// is bit-identical to Key.
func KeyMultiExp(i int, r, zPrev *big.Int, xs []*big.Int, m *big.Int) (*big.Int, error) {
	n := len(xs)
	if n == 0 {
		return nil, errors.New("bdkey: empty ring")
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("bdkey: index %d out of ring of %d", i, n)
	}
	e := new(big.Int).Mul(big.NewInt(int64(n)), r)
	k := new(big.Int).Exp(zPrev, e, m)
	bases := make([]*big.Int, 0, n-1)
	exps := make([]*big.Int, 0, n-1)
	for j := 0; j < n-1; j++ {
		bases = append(bases, xs[(i+j)%n])
		exps = append(exps, big.NewInt(int64(n-1-j)))
	}
	chain, err := mathx.MultiExp(bases, exps, m)
	if err != nil {
		return nil, err
	}
	k.Mul(k, chain)
	return k.Mod(k, m), nil
}

// KeyFromEdgeMont computes member i's group key (equation 3) from the
// directed DH edge b = z_{i-1}^{r_i} that the restructured round 2 leaves
// in the session state, entirely in the Montgomery domain:
//
//	K_i = b^n · X_i^{n-1} · X_{i+1}^{n-2} ··· X_{i+n-2}^{1} mod m
//
// b^n needs only ~log2(n) squarings, and the descending consecutive
// exponents of the X chain telescope into prefix products (Horner):
// Π_t S_t with S_t = X_i···X_{i+t} gives X_{i+j} exponent (n-1)-j. The
// whole assembly is ~2n Montgomery multiplications with no full-width
// exponentiation left. xs are the ring-ordered X values in Montgomery
// form (converted once per session at the wire boundary); the result
// converts back out and is bit-identical to Key.
func KeyFromEdgeMont(mo *mathx.Modulus, i int, edge mathx.Elem, xs []mathx.Elem) (*big.Int, error) {
	n := len(xs)
	if n == 0 {
		return nil, errors.New("bdkey: empty ring")
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("bdkey: index %d out of ring of %d", i, n)
	}
	k := mo.ExpElem(edge, big.NewInt(int64(n)))
	if n > 1 {
		prefix := append(mathx.Elem(nil), xs[i]...)
		acc := append(mathx.Elem(nil), prefix...)
		for j := 1; j <= n-2; j++ {
			mo.MulInto(prefix, prefix, xs[(i+j)%n])
			mo.MulInto(acc, acc, prefix)
		}
		mo.MulInto(k, k, acc)
	}
	return mo.FromMont(k), nil
}

// DirectKey computes g^{Σ r_j r_{j+1}} from all ring exponents — the
// white-box reference used by tests to validate Key against the paper's
// equation (3). Never used by the protocols themselves.
func DirectKey(g *big.Int, rs []*big.Int, order, m *big.Int) *big.Int {
	n := len(rs)
	sum := new(big.Int)
	for i := 0; i < n; i++ {
		t := new(big.Int).Mul(rs[i], rs[(i+1)%n])
		sum.Add(sum, t)
	}
	if order != nil {
		sum.Mod(sum, order)
	}
	return new(big.Int).Exp(g, sum, m)
}
