package bdkey

import (
	"crypto/rand"
	"math/big"
	"testing"

	"idgka/internal/mathx"
	"idgka/internal/params"
)

// buildRing simulates n members' honest round-1/round-2 values.
func buildRing(t testing.TB, n int) (rs, zs, xs []*big.Int, g *mathx.SchnorrGroup) {
	t.Helper()
	g = params.Default().Schnorr
	rs = make([]*big.Int, n)
	zs = make([]*big.Int, n)
	xs = make([]*big.Int, n)
	for i := 0; i < n; i++ {
		r, err := mathx.RandScalar(rand.Reader, g.Q)
		if err != nil {
			t.Fatal(err)
		}
		rs[i] = r
		zs[i] = g.Exp(r)
	}
	for i := 0; i < n; i++ {
		x, err := XValue(zs[(i+1)%n], zs[(i-1+n)%n], rs[i], g.P)
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = x
	}
	return rs, zs, xs, g
}

func TestLemma1HoldsForHonestRing(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 16} {
		_, _, xs, g := buildRing(t, n)
		if err := CheckLemma1(xs, g.P); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestLemma1DetectsCorruption(t *testing.T) {
	_, _, xs, g := buildRing(t, 5)
	xs[2] = new(big.Int).Add(xs[2], big.NewInt(1))
	if err := CheckLemma1(xs, g.P); err == nil {
		t.Fatal("corrupted X passed Lemma 1")
	}
}

func TestAllMembersAgreeAndMatchEquation3(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 10} {
		rs, zs, xs, g := buildRing(t, n)
		want := DirectKey(g.G, rs, g.Q, g.P)
		for i := 0; i < n; i++ {
			k, err := Key(i, rs[i], zs[(i-1+n)%n], xs, g.P)
			if err != nil {
				t.Fatal(err)
			}
			if k.Cmp(want) != 0 {
				t.Fatalf("n=%d member %d disagrees with equation (3)", n, i)
			}
		}
	}
}

func TestKeyIndexValidation(t *testing.T) {
	rs, zs, xs, g := buildRing(t, 3)
	if _, err := Key(-1, rs[0], zs[2], xs, g.P); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := Key(3, rs[0], zs[2], xs, g.P); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := Key(0, rs[0], zs[2], nil, g.P); err == nil {
		t.Fatal("empty ring accepted")
	}
}

func TestXValueRejectsNonInvertible(t *testing.T) {
	g := params.Default().Schnorr
	if _, err := XValue(big.NewInt(2), new(big.Int).Set(g.P), big.NewInt(3), g.P); err == nil {
		t.Fatal("z_prev = p (≡0) accepted")
	}
}

func TestKeyDiffersWhenExponentChanges(t *testing.T) {
	// Freshness: changing one r must change the key.
	rs, zs, xs, g := buildRing(t, 4)
	k1, _ := Key(0, rs[0], zs[3], xs, g.P)
	rs2 := append([]*big.Int(nil), rs...)
	rs2[1] = new(big.Int).Add(rs[1], big.NewInt(1))
	want := DirectKey(g.G, rs2, g.Q, g.P)
	if k1.Cmp(want) == 0 {
		t.Fatal("key insensitive to exponent change")
	}
}

func BenchmarkKeyN100(b *testing.B) {
	rs, zs, xs, g := buildRing(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Key(0, rs[0], zs[99], xs, g.P); err != nil {
			b.Fatal(err)
		}
	}
}

// TestKeyMultiExpMatchesKey cross-checks the multi-exponentiation fast
// path against the straight-line key computation for several ring sizes.
func TestKeyMultiExpMatchesKey(t *testing.T) {
	for _, n := range []int{2, 3, 5, 16} {
		rs, zs, xs, g := buildRing(t, n)
		for i := 0; i < n; i++ {
			zPrev := zs[(i-1+n)%n]
			want, err := Key(i, rs[i], zPrev, xs, g.P)
			if err != nil {
				t.Fatal(err)
			}
			got, err := KeyMultiExp(i, rs[i], zPrev, xs, g.P)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("n=%d member %d: KeyMultiExp diverges from Key", n, i)
			}
		}
	}
}

// TestKeyMultiExpRejectsBadInputs mirrors Key's error contract.
func TestKeyMultiExpRejectsBadInputs(t *testing.T) {
	rs, zs, xs, g := buildRing(t, 3)
	if _, err := KeyMultiExp(0, rs[0], zs[2], nil, g.P); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := KeyMultiExp(3, rs[0], zs[2], xs, g.P); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}
