package bdkey

import (
	"crypto/rand"
	"math/big"
	"testing"

	"idgka/internal/mathx"
	"idgka/internal/params"
)

// buildRing simulates n members' honest round-1/round-2 values.
func buildRing(t testing.TB, n int) (rs, zs, xs []*big.Int, g *mathx.SchnorrGroup) {
	t.Helper()
	g = params.Default().Schnorr
	rs = make([]*big.Int, n)
	zs = make([]*big.Int, n)
	xs = make([]*big.Int, n)
	for i := 0; i < n; i++ {
		r, err := mathx.RandScalar(rand.Reader, g.Q)
		if err != nil {
			t.Fatal(err)
		}
		rs[i] = r
		zs[i] = g.Exp(r)
	}
	for i := 0; i < n; i++ {
		x, err := XValue(zs[(i+1)%n], zs[(i-1+n)%n], rs[i], g.P)
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = x
	}
	return rs, zs, xs, g
}

func TestLemma1HoldsForHonestRing(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 16} {
		_, _, xs, g := buildRing(t, n)
		if err := CheckLemma1(xs, g.P); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestLemma1DetectsCorruption(t *testing.T) {
	_, _, xs, g := buildRing(t, 5)
	xs[2] = new(big.Int).Add(xs[2], big.NewInt(1))
	if err := CheckLemma1(xs, g.P); err == nil {
		t.Fatal("corrupted X passed Lemma 1")
	}
}

func TestAllMembersAgreeAndMatchEquation3(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 10} {
		rs, zs, xs, g := buildRing(t, n)
		want := DirectKey(g.G, rs, g.Q, g.P)
		for i := 0; i < n; i++ {
			k, err := Key(i, rs[i], zs[(i-1+n)%n], xs, g.P)
			if err != nil {
				t.Fatal(err)
			}
			if k.Cmp(want) != 0 {
				t.Fatalf("n=%d member %d disagrees with equation (3)", n, i)
			}
		}
	}
}

func TestKeyIndexValidation(t *testing.T) {
	rs, zs, xs, g := buildRing(t, 3)
	if _, err := Key(-1, rs[0], zs[2], xs, g.P); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := Key(3, rs[0], zs[2], xs, g.P); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := Key(0, rs[0], zs[2], nil, g.P); err == nil {
		t.Fatal("empty ring accepted")
	}
}

func TestXValueRejectsNonInvertible(t *testing.T) {
	g := params.Default().Schnorr
	if _, err := XValue(big.NewInt(2), new(big.Int).Set(g.P), big.NewInt(3), g.P); err == nil {
		t.Fatal("z_prev = p (≡0) accepted")
	}
}

func TestKeyDiffersWhenExponentChanges(t *testing.T) {
	// Freshness: changing one r must change the key.
	rs, zs, xs, g := buildRing(t, 4)
	k1, _ := Key(0, rs[0], zs[3], xs, g.P)
	rs2 := append([]*big.Int(nil), rs...)
	rs2[1] = new(big.Int).Add(rs[1], big.NewInt(1))
	want := DirectKey(g.G, rs2, g.Q, g.P)
	if k1.Cmp(want) == 0 {
		t.Fatal("key insensitive to exponent change")
	}
}

func BenchmarkKeyN100(b *testing.B) {
	rs, zs, xs, g := buildRing(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Key(0, rs[0], zs[99], xs, g.P); err != nil {
			b.Fatal(err)
		}
	}
}

// TestKeyMultiExpMatchesKey cross-checks the multi-exponentiation fast
// path against the straight-line key computation for several ring sizes.
func TestKeyMultiExpMatchesKey(t *testing.T) {
	for _, n := range []int{2, 3, 5, 16} {
		rs, zs, xs, g := buildRing(t, n)
		for i := 0; i < n; i++ {
			zPrev := zs[(i-1+n)%n]
			want, err := Key(i, rs[i], zPrev, xs, g.P)
			if err != nil {
				t.Fatal(err)
			}
			got, err := KeyMultiExp(i, rs[i], zPrev, xs, g.P)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("n=%d member %d: KeyMultiExp diverges from Key", n, i)
			}
		}
	}
}

// TestKeyMultiExpRejectsBadInputs mirrors Key's error contract.
func TestKeyMultiExpRejectsBadInputs(t *testing.T) {
	rs, zs, xs, g := buildRing(t, 3)
	if _, err := KeyMultiExp(0, rs[0], zs[2], nil, g.P); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := KeyMultiExp(3, rs[0], zs[2], xs, g.P); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestXFromPowersMatchesXValue checks the edge-carrying restructure: the
// X assembled from the two directed edge powers must be bit-identical to
// the ratio-form XValue.
func TestXFromPowersMatchesXValue(t *testing.T) {
	rs, zs, xs, g := buildRing(t, 5)
	for i := 0; i < 5; i++ {
		a := new(big.Int).Exp(zs[(i+1)%5], rs[i], g.P)
		b := new(big.Int).Exp(zs[(i-1+5)%5], rs[i], g.P)
		got, err := XFromPowers(a, b, g.P)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(xs[i]) != 0 {
			t.Fatalf("member %d: XFromPowers diverges from XValue", i)
		}
	}
	if _, err := XFromPowers(big.NewInt(2), new(big.Int).Set(g.P), g.P); err == nil {
		t.Fatal("non-invertible edge power accepted")
	}
}

// TestXValuesBatchMatchesXValue checks batch X computation is
// bit-identical to per-member XValue and uses exactly one modular
// inversion regardless of ring size.
func TestXValuesBatchMatchesXValue(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16} {
		rs, zs, want, g := buildRing(t, n)
		before := mathx.InverseCalls()
		got, err := XValuesBatch(zs, rs, g.P)
		if err != nil {
			t.Fatal(err)
		}
		if calls := mathx.InverseCalls() - before; calls != 1 {
			t.Fatalf("n=%d: XValuesBatch used %d inversions, want 1", n, calls)
		}
		for i := range want {
			if got[i].Cmp(want[i]) != 0 {
				t.Fatalf("n=%d member %d: batch X diverges", n, i)
			}
		}
	}
	if _, err := XValuesBatch(nil, nil, big.NewInt(7)); err == nil {
		t.Fatal("empty ring accepted")
	}
}

// TestKeyFromEdgeMontMatchesKey checks the Montgomery-domain Horner
// assembly against the straight-line equation (3) for every member of
// several ring sizes, including the n=1 and n=2 degenerate shapes.
func TestKeyFromEdgeMontMatchesKey(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16} {
		rs, zs, xs, g := buildRing(t, n)
		mo := g.Mont()
		if mo == nil {
			t.Fatal("nil Montgomery context")
		}
		xsMont := make([]mathx.Elem, n)
		for i := range xs {
			xsMont[i] = mo.ToMont(xs[i])
		}
		for i := 0; i < n; i++ {
			zPrev := zs[(i-1+n)%n]
			want, err := Key(i, rs[i], zPrev, xs, g.P)
			if err != nil {
				t.Fatal(err)
			}
			edge := new(big.Int).Exp(zPrev, rs[i], g.P)
			got, err := KeyFromEdgeMont(mo, i, mo.ToMont(edge), xsMont)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("n=%d member %d: KeyFromEdgeMont diverges from Key", n, i)
			}
		}
	}
}

// TestCheckLemma1MontMatches checks the Montgomery-domain Lemma 1 product
// check agrees with the big.Int one on both honest and corrupted rings.
func TestCheckLemma1MontMatches(t *testing.T) {
	_, _, xs, g := buildRing(t, 6)
	mo := g.Mont()
	toMont := func(vs []*big.Int) []mathx.Elem {
		es := make([]mathx.Elem, len(vs))
		for i, v := range vs {
			es[i] = mo.ToMont(v)
		}
		return es
	}
	if err := CheckLemma1Mont(mo, toMont(xs)); err != nil {
		t.Fatalf("honest ring rejected: %v", err)
	}
	xs[3] = new(big.Int).Add(xs[3], big.NewInt(1))
	if err := CheckLemma1Mont(mo, toMont(xs)); err == nil {
		t.Fatal("corrupted X passed Montgomery Lemma 1")
	}
}

// BenchmarkXValues proves the batch path drops the inversion count from
// O(n) to O(1): per-member XValue performs one ModInverse each, the batch
// performs one total.
func BenchmarkXValues(b *testing.B) {
	const n = 16
	rs, zs, _, g := buildRing(b, n)
	b.Run("per-member", func(b *testing.B) {
		start := mathx.InverseCalls()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				if _, err := XValue(zs[(j+1)%n], zs[(j-1+n)%n], rs[j], g.P); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(mathx.InverseCalls()-start)/float64(b.N), "inversions/ring")
	})
	b.Run("batch", func(b *testing.B) {
		start := mathx.InverseCalls()
		for i := 0; i < b.N; i++ {
			if _, err := XValuesBatch(zs, rs, g.P); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(mathx.InverseCalls()-start)/float64(b.N), "inversions/ring")
	})
}
