package mathx

import (
	"errors"
	"math/big"
	"sync"
)

// This file is the bottom of the crypto acceleration layer: windowed
// fixed-base precomputation (the BGMW radix-2^w method), simultaneous
// multi-exponentiation (the generalised Shamir trick), and chunked
// modular products for worker pools. Everything here is mathematically
// transparent — accelerated paths return bit-identical values to their
// naive counterparts, so operation meters and protocol transcripts are
// unaffected by whether a table is attached.

// DefaultWindow is the radix width used by Precompute helpers: 2^6 digits
// balance table size (~ceil(bits/6)·63 entries) against the number of
// modular multiplications per exponentiation (ceil(bits/6) - 1).
const DefaultWindow = 6

// FixedBaseTable holds the precomputed powers of one long-lived base —
// a group generator or an identity key — enabling exponentiation in
// ~ceil(maxBits/window) modular multiplications with NO squarings:
//
//	rows[i][j] = base^(j << (window·i)) mod m
//
// so base^e = Π_i rows[i][digit_i(e)] where digit_i is the i-th radix-2^w
// digit of e. A table is immutable after construction and safe for
// concurrent use.
type FixedBaseTable struct {
	base, mod *big.Int
	window    uint
	maxBits   int
	rows      [][]*big.Int
}

// NewFixedBaseTable precomputes the powers of base modulo mod for
// exponents up to maxBits bits using radix-2^window digits.
func NewFixedBaseTable(base, mod *big.Int, maxBits int, window uint) (*FixedBaseTable, error) {
	if mod == nil || mod.Cmp(One) <= 0 {
		return nil, errors.New("mathx: fixed-base modulus must be > 1")
	}
	if base == nil {
		return nil, errors.New("mathx: fixed-base base must be non-nil")
	}
	if maxBits < 1 {
		return nil, errors.New("mathx: fixed-base maxBits must be >= 1")
	}
	if window < 1 || window > 12 {
		return nil, errors.New("mathx: fixed-base window must be in [1, 12]")
	}
	t := &FixedBaseTable{
		base:    new(big.Int).Mod(base, mod),
		mod:     mod,
		window:  window,
		maxBits: maxBits,
	}
	nrows := (maxBits + int(window) - 1) / int(window)
	cur := new(big.Int).Set(t.base) // base^(2^(window·i)) for the current row
	t.rows = make([][]*big.Int, nrows)
	for i := 0; i < nrows; i++ {
		row := make([]*big.Int, 1<<window)
		row[0] = big.NewInt(1)
		for j := 1; j < 1<<window; j++ {
			row[j] = new(big.Int).Mul(row[j-1], cur)
			row[j].Mod(row[j], mod)
		}
		t.rows[i] = row
		next := new(big.Int).Mul(row[1<<window-1], cur)
		cur = next.Mod(next, mod)
	}
	return t, nil
}

// MaxBits returns the largest exponent bit length the table covers.
func (t *FixedBaseTable) MaxBits() int { return t.maxBits }

// Window returns the radix width in bits.
func (t *FixedBaseTable) Window() int { return int(t.window) }

// Covers reports whether the table path applies to exponent e
// (non-negative and within the precomputed bit range).
func (t *FixedBaseTable) Covers(e *big.Int) bool {
	return e != nil && e.Sign() >= 0 && e.BitLen() <= t.maxBits
}

// WindowDigit extracts the i-th radix-2^w digit of e — the shared digit
// decomposition of every fixed-base table in the repository (this
// package's FixedBaseTable plus the point tables of internal/ec and
// internal/pairing, whose accumulation strategies differ but whose digit
// logic must stay in lockstep).
func WindowDigit(e *big.Int, i, w int) uint {
	var d uint
	for b := 0; b < w; b++ {
		d |= e.Bit(i*w+b) << b
	}
	return d
}

// Exp returns base^e mod m. Covered exponents use the table (one modular
// multiplication per non-zero digit); anything else — negative or
// oversized — falls back to (*big.Int).Exp with its exact semantics,
// including the nil result for a negative exponent of a non-invertible
// base. Results are bit-identical to the naive computation.
func (t *FixedBaseTable) Exp(e *big.Int) *big.Int {
	if !t.Covers(e) {
		return new(big.Int).Exp(t.base, e, t.mod)
	}
	acc := big.NewInt(1)
	w := int(t.window)
	bits := e.BitLen()
	for i := 0; i*w < bits; i++ {
		if d := WindowDigit(e, i, w); d != 0 {
			acc.Mul(acc, t.rows[i][d])
			acc.Mod(acc, t.mod)
		}
	}
	return acc
}

// MultiExp computes Π bases[i]^exps[i] mod m with one shared squaring
// chain (the generalised Shamir trick): max(bits) squarings plus one
// multiplication per set exponent bit, instead of a full square-and-
// multiply per base. The win is largest when exponents are short (the
// Burmester-Desmedt key assembly, whose exponents are bounded by the
// ring size) or when many bases share one verification equation.
// Negative exponents are resolved through modular inverses, so m must be
// coprime with the corresponding base.
func MultiExp(bases, exps []*big.Int, m *big.Int) (*big.Int, error) {
	if m == nil || m.Sign() <= 0 {
		return nil, errors.New("mathx: MultiExp modulus must be positive")
	}
	if len(bases) != len(exps) {
		return nil, errors.New("mathx: MultiExp bases/exps length mismatch")
	}
	bs := make([]*big.Int, len(bases))
	es := make([]*big.Int, len(exps))
	maxBits := 0
	for i := range bases {
		if bases[i] == nil || exps[i] == nil {
			return nil, errors.New("mathx: MultiExp nil operand")
		}
		b, e := bases[i], exps[i]
		if e.Sign() < 0 {
			inv, err := ModInverse(b, m)
			if err != nil {
				return nil, err
			}
			b = inv
			e = new(big.Int).Neg(e)
		}
		bs[i] = new(big.Int).Mod(b, m)
		es[i] = e
		if bl := e.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	acc := big.NewInt(1)
	for i := maxBits - 1; i >= 0; i-- {
		acc.Mul(acc, acc)
		acc.Mod(acc, m)
		for j := range bs {
			if es[j].Bit(i) == 1 {
				acc.Mul(acc, bs[j])
				acc.Mod(acc, m)
			}
		}
	}
	return acc, nil
}

// productParallelThreshold is the slice length below which chunking a
// modular product across workers costs more than it saves.
const productParallelThreshold = 32

// ProductModParallel is ProductMod with the partial products computed on
// up to `workers` goroutines. Modular multiplication is associative and
// commutative, so the result is bit-identical to the serial product;
// workers <= 1 (or a short slice) runs the exact serial path.
func ProductModParallel(values []*big.Int, m *big.Int, workers int) *big.Int {
	if workers <= 1 || len(values) < productParallelThreshold {
		return ProductMod(values, m)
	}
	if workers > len(values)/(productParallelThreshold/2) {
		workers = len(values) / (productParallelThreshold / 2)
	}
	chunk := (len(values) + workers - 1) / workers
	chunks := (len(values) + chunk - 1) / chunk
	partials := make([]*big.Int, chunks)
	var wg sync.WaitGroup
	for slot := 0; slot < chunks; slot++ {
		lo := slot * chunk
		hi := lo + chunk
		if hi > len(values) {
			hi = len(values)
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			partials[slot] = ProductMod(values[lo:hi], m)
		}(slot, lo, hi)
	}
	wg.Wait()
	return ProductMod(partials, m)
}
