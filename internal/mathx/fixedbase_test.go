package mathx

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// testModulus returns a deterministic-ish odd prime modulus and a base for
// table tests at a size large enough to exercise multi-word arithmetic.
func testModulus(t *testing.T, bits int) (*big.Int, *big.Int) {
	t.Helper()
	p, err := RandPrime(rand.Reader, bits)
	if err != nil {
		t.Fatalf("prime: %v", err)
	}
	b, err := RandInt(rand.Reader, p)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	if b.Sign() == 0 {
		b.SetInt64(2)
	}
	return p, b
}

func TestFixedBaseTableMatchesModExp(t *testing.T) {
	p, base := testModulus(t, 512)
	maxBits := 160
	for _, window := range []uint{1, 2, 5, DefaultWindow, 8} {
		tab, err := NewFixedBaseTable(base, p, maxBits, window)
		if err != nil {
			t.Fatalf("w=%d: %v", window, err)
		}
		bound := new(big.Int).Lsh(One, uint(maxBits))
		for i := 0; i < 40; i++ {
			e, err := RandInt(rand.Reader, bound)
			if err != nil {
				t.Fatal(err)
			}
			want := new(big.Int).Exp(base, e, p)
			if got := tab.Exp(e); got.Cmp(want) != 0 {
				t.Fatalf("w=%d: table exp mismatch for e=%v", window, e)
			}
		}
	}
}

func TestFixedBaseTableEdgeExponents(t *testing.T) {
	p, base := testModulus(t, 256)
	q, err := RandPrime(rand.Reader, 96)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewFixedBaseTable(base, p, q.BitLen(), DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	edges := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(q, One),                // q-1: the largest protocol exponent
		q,                                       // exactly q
		new(big.Int).Lsh(One, uint(q.BitLen())), // oversized: falls back
		new(big.Int).Neg(One),                   // negative: falls back to big.Int.Exp semantics
	}
	for _, e := range edges {
		want := new(big.Int).Exp(base, e, p)
		got := tab.Exp(e)
		switch {
		case want == nil && got == nil:
			// both signal non-invertible negative exponent
		case want == nil || got == nil:
			t.Fatalf("e=%v: nil mismatch (want %v, got %v)", e, want, got)
		case got.Cmp(want) != 0:
			t.Fatalf("e=%v: mismatch", e)
		}
	}
}

func TestFixedBaseTableRejectsBadShapes(t *testing.T) {
	p, base := testModulus(t, 128)
	if _, err := NewFixedBaseTable(base, big.NewInt(1), 16, 4); err == nil {
		t.Fatal("modulus 1 accepted")
	}
	if _, err := NewFixedBaseTable(nil, p, 16, 4); err == nil {
		t.Fatal("nil base accepted")
	}
	if _, err := NewFixedBaseTable(base, p, 0, 4); err == nil {
		t.Fatal("zero maxBits accepted")
	}
	if _, err := NewFixedBaseTable(base, p, 16, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewFixedBaseTable(base, p, 16, 13); err == nil {
		t.Fatal("oversized window accepted")
	}
}

func TestSchnorrGroupPrecomputeTransparent(t *testing.T) {
	sg, err := GenerateSchnorrGroup(rand.Reader, 256, 96)
	if err != nil {
		t.Fatal(err)
	}
	exps := make([]*big.Int, 0, 16)
	for i := 0; i < 12; i++ {
		e, err := RandScalar(rand.Reader, sg.Q)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	exps = append(exps, big.NewInt(0), big.NewInt(1), new(big.Int).Sub(sg.Q, One), sg.Q)
	naive := make([]*big.Int, len(exps))
	for i, e := range exps {
		naive[i] = sg.Exp(e)
	}
	if sg.FixedBase() != nil {
		t.Fatal("table attached before Precompute")
	}
	if tab := sg.Precompute(); tab == nil {
		t.Fatal("Precompute returned nil on a valid group")
	}
	if sg.Precompute() != sg.FixedBase() {
		t.Fatal("Precompute is not idempotent")
	}
	for i, e := range exps {
		if got := sg.Exp(e); got.Cmp(naive[i]) != 0 {
			t.Fatalf("accelerated Exp diverges for exponent %v", e)
		}
	}
}

func TestMultiExpMatchesSeparateExps(t *testing.T) {
	p, _ := testModulus(t, 256)
	for trial := 0; trial < 20; trial++ {
		n := 1 + trial%6
		bases := make([]*big.Int, n)
		exps := make([]*big.Int, n)
		want := big.NewInt(1)
		for i := 0; i < n; i++ {
			b, err := RandInt(rand.Reader, p)
			if err != nil {
				t.Fatal(err)
			}
			if b.Sign() == 0 {
				b.SetInt64(3)
			}
			e, err := RandInt(rand.Reader, new(big.Int).Lsh(One, 64))
			if err != nil {
				t.Fatal(err)
			}
			if trial%3 == 0 {
				e.Neg(e) // exercise the inverse path
			}
			bases[i], exps[i] = b, e
			t1, err := ModExp(b, e, p)
			if err != nil {
				t.Fatal(err)
			}
			want.Mul(want, t1)
			want.Mod(want, p)
		}
		got, err := MultiExp(bases, exps, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: MultiExp mismatch", trial)
		}
	}
}

func TestMultiExpEdgeCases(t *testing.T) {
	p, b := testModulus(t, 128)
	got, err := MultiExp(nil, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(One) != 0 {
		t.Fatalf("empty MultiExp = %v, want 1", got)
	}
	if _, err := MultiExp([]*big.Int{b}, nil, p); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MultiExp([]*big.Int{b}, []*big.Int{One}, big.NewInt(0)); err == nil {
		t.Fatal("zero modulus accepted")
	}
	if _, err := MultiExp([]*big.Int{nil}, []*big.Int{One}, p); err == nil {
		t.Fatal("nil base accepted")
	}
	got, err = MultiExp([]*big.Int{b}, []*big.Int{big.NewInt(0)}, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(One) != 0 {
		t.Fatalf("b^0 = %v, want 1", got)
	}
}

func TestProductModParallelMatchesSerial(t *testing.T) {
	p, _ := testModulus(t, 256)
	// 305 with many workers regression-tests the chunking: ceil-division
	// once produced a final chunk starting past the end of the slice.
	for _, n := range []int{0, 1, 31, 32, 33, 100, 257, 305} {
		values := make([]*big.Int, n)
		for i := range values {
			v, err := RandInt(rand.Reader, p)
			if err != nil {
				t.Fatal(err)
			}
			values[i] = v
		}
		want := ProductMod(values, p)
		for _, workers := range []int{0, 1, 2, 4, 7, 64} {
			if got := ProductModParallel(values, p, workers); got.Cmp(want) != 0 {
				t.Fatalf("n=%d workers=%d: parallel product mismatch", n, workers)
			}
		}
	}
}

func benchGroup(b *testing.B) (*SchnorrGroup, []*big.Int) {
	b.Helper()
	sg, err := GenerateSchnorrGroup(rand.Reader, 1024, 160)
	if err != nil {
		b.Fatal(err)
	}
	exps := make([]*big.Int, 64)
	for i := range exps {
		exps[i], err = RandScalar(rand.Reader, sg.Q)
		if err != nil {
			b.Fatal(err)
		}
	}
	return sg, exps
}

func BenchmarkSchnorrExpNaive(b *testing.B) {
	sg, exps := benchGroup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(big.Int).Exp(sg.G, exps[i%len(exps)], sg.P)
	}
}

func BenchmarkSchnorrExpFixedBase(b *testing.B) {
	sg, exps := benchGroup(b)
	tab := sg.Precompute()
	if tab == nil {
		b.Fatal("no table")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Exp(exps[i%len(exps)])
	}
}
