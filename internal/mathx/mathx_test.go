package mathx

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func TestRandScalarRange(t *testing.T) {
	q := big.NewInt(97)
	for i := 0; i < 200; i++ {
		v, err := RandScalar(rand.Reader, q)
		if err != nil {
			t.Fatalf("RandScalar: %v", err)
		}
		if v.Sign() <= 0 || v.Cmp(q) >= 0 {
			t.Fatalf("scalar %v out of [1, q-1]", v)
		}
	}
}

func TestRandScalarRejectsTinyModulus(t *testing.T) {
	if _, err := RandScalar(rand.Reader, big.NewInt(1)); err == nil {
		t.Fatal("expected error for modulus 1")
	}
}

func TestRandUnitCoprime(t *testing.T) {
	n := big.NewInt(15) // 3*5, plenty of non-units
	for i := 0; i < 100; i++ {
		v, err := RandUnit(rand.Reader, n)
		if err != nil {
			t.Fatalf("RandUnit: %v", err)
		}
		if new(big.Int).GCD(nil, nil, v, n).Cmp(One) != 0 {
			t.Fatalf("RandUnit returned non-unit %v mod %v", v, n)
		}
	}
}

func TestModInverse(t *testing.T) {
	m := big.NewInt(101)
	for i := int64(1); i < 101; i++ {
		v := big.NewInt(i)
		inv, err := ModInverse(v, m)
		if err != nil {
			t.Fatalf("inverse of %d: %v", i, err)
		}
		prod := new(big.Int).Mul(v, inv)
		if prod.Mod(prod, m).Cmp(One) != 0 {
			t.Fatalf("%d * %v != 1 mod 101", i, inv)
		}
	}
	if _, err := ModInverse(big.NewInt(5), big.NewInt(25)); err == nil {
		t.Fatal("expected error: 5 has no inverse mod 25")
	}
}

func TestModExpNegativeExponent(t *testing.T) {
	m := big.NewInt(101)
	base := big.NewInt(7)
	got, err := ModExp(base, big.NewInt(-3), m)
	if err != nil {
		t.Fatalf("ModExp: %v", err)
	}
	// Check by multiplying back: got * 7^3 == 1 mod 101.
	cube := new(big.Int).Exp(base, Three, m)
	prod := new(big.Int).Mul(got, cube)
	if prod.Mod(prod, m).Cmp(One) != 0 {
		t.Fatalf("7^-3 * 7^3 != 1, got %v", got)
	}
}

func TestLegendreSmallPrime(t *testing.T) {
	p := big.NewInt(23)
	residues := map[int64]bool{}
	for i := int64(1); i < 23; i++ {
		sq := new(big.Int).Mul(big.NewInt(i), big.NewInt(i))
		residues[sq.Mod(sq, p).Int64()] = true
	}
	for i := int64(1); i < 23; i++ {
		want := -1
		if residues[i] {
			want = 1
		}
		if got := Legendre(big.NewInt(i), p); got != want {
			t.Fatalf("Legendre(%d/23) = %d, want %d", i, got, want)
		}
	}
	if Legendre(big.NewInt(46), p) != 0 {
		t.Fatal("Legendre of multiple of p should be 0")
	}
}

func TestSqrtModBothResidueClasses(t *testing.T) {
	// p ≡ 3 mod 4 and p ≡ 1 mod 4 paths.
	for _, pv := range []int64{23, 29, 1009, 1013} {
		p := big.NewInt(pv)
		for i := int64(1); i < pv; i++ {
			a := big.NewInt(i)
			if Legendre(a, p) != 1 {
				continue
			}
			r, err := SqrtMod(a, p)
			if err != nil {
				t.Fatalf("SqrtMod(%d, %d): %v", i, pv, err)
			}
			sq := new(big.Int).Mul(r, r)
			if sq.Mod(sq, p).Cmp(a) != 0 {
				t.Fatalf("sqrt(%d) mod %d = %v does not square back", i, pv, r)
			}
		}
	}
}

func TestSqrtModNonResidueErrors(t *testing.T) {
	p := big.NewInt(23)
	if _, err := SqrtMod(big.NewInt(5), p); err == nil {
		t.Fatal("5 is a non-residue mod 23; expected error")
	}
}

func TestSqrtModLargePrime(t *testing.T) {
	p, err := RandPrime(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x, err := RandScalar(rand.Reader, p)
		if err != nil {
			t.Fatal(err)
		}
		a := new(big.Int).Mul(x, x)
		a.Mod(a, p)
		r, err := SqrtMod(a, p)
		if err != nil {
			t.Fatalf("SqrtMod: %v", err)
		}
		sq := new(big.Int).Mul(r, r)
		if sq.Mod(sq, p).Cmp(a) != 0 {
			t.Fatal("root does not square back")
		}
	}
}

func TestProductMod(t *testing.T) {
	m := big.NewInt(1000)
	if ProductMod(nil, m).Cmp(One) != 0 {
		t.Fatal("empty product should be 1")
	}
	vals := []*big.Int{big.NewInt(12), big.NewInt(34), big.NewInt(56)}
	want := big.NewInt(12 * 34 * 56 % 1000)
	if got := ProductMod(vals, m); got.Cmp(want) != 0 {
		t.Fatalf("ProductMod = %v, want %v", got, want)
	}
}

func TestEqualMod(t *testing.T) {
	m := big.NewInt(7)
	if !EqualMod(big.NewInt(10), big.NewInt(3), m) {
		t.Fatal("10 ≡ 3 mod 7")
	}
	if EqualMod(big.NewInt(10), big.NewInt(4), m) {
		t.Fatal("10 ≢ 4 mod 7")
	}
	if !EqualMod(big.NewInt(-4), big.NewInt(3), m) {
		t.Fatal("-4 ≡ 3 mod 7")
	}
}

// Property: for random residues a mod p, SqrtMod(a^2) squares back to a^2.
func TestSqrtModProperty(t *testing.T) {
	p := big.NewInt(1000003) // prime, ≡ 3 mod 4
	f := func(x uint32) bool {
		a := new(big.Int).SetUint64(uint64(x) + 1)
		a.Mod(a, p)
		if a.Sign() == 0 {
			a.SetInt64(1)
		}
		sq := new(big.Int).Mul(a, a)
		sq.Mod(sq, p)
		r, err := SqrtMod(sq, p)
		if err != nil {
			return false
		}
		rr := new(big.Int).Mul(r, r)
		return rr.Mod(rr, p).Cmp(sq) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: modular inverse round-trips for random units mod a prime.
func TestModInverseProperty(t *testing.T) {
	p := big.NewInt(104729)
	f := func(x uint32) bool {
		v := new(big.Int).SetUint64(uint64(x)%104728 + 1)
		inv, err := ModInverse(v, p)
		if err != nil {
			return false
		}
		prod := new(big.Int).Mul(v, inv)
		return prod.Mod(prod, p).Cmp(One) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
