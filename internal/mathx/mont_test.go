package mathx

import (
	"crypto/rand"
	"math/big"
	"math/bits"
	"testing"
)

// montTestModuli builds the modulus shapes the engine must survive:
// word-boundary sizes (1024/2048 bits exactly), one word, a few odd
// non-prime composites, and sizes straddling a limb boundary.
func montTestModuli(t *testing.T) []*big.Int {
	t.Helper()
	out := []*big.Int{
		big.NewInt(3),
		big.NewInt(0xffffffff),               // dense low word
		new(big.Int).SetUint64(1<<63 + 1025), // exactly one 64-bit word, sparse
	}
	for _, bits := range []int{65, 127, 1024, 1025, 2048} {
		p, err := RandPrime(rand.Reader, bits)
		if err != nil {
			t.Fatalf("prime %d: %v", bits, err)
		}
		out = append(out, p)
	}
	// Odd composite (RSA-shaped): primes are not required by the engine.
	a, _ := RandPrime(rand.Reader, 512)
	b, _ := RandPrime(rand.Reader, 512)
	out = append(out, new(big.Int).Mul(a, b))
	return out
}

func TestNewModulusRejects(t *testing.T) {
	for _, m := range []*big.Int{nil, big.NewInt(0), big.NewInt(-7), big.NewInt(4), big.NewInt(1)} {
		if _, err := NewModulus(m); err == nil {
			t.Errorf("NewModulus(%v) accepted an invalid modulus", m)
		}
	}
	huge := new(big.Int).Lsh(One, uint(maxModulusWords*bits.UintSize))
	huge.Add(huge, One)
	if _, err := NewModulus(huge); err == nil {
		t.Errorf("NewModulus accepted a modulus beyond the engine width")
	}
}

// TestMontRoundTrip fuzzes ToMont/FromMont against math/big over every
// modulus shape, pinning the boundary operands 0, 1, m-1 and values >= m
// (which must reduce on entry).
func TestMontRoundTrip(t *testing.T) {
	for _, m := range montTestModuli(t) {
		mo, err := NewModulus(m)
		if err != nil {
			t.Fatalf("NewModulus(%d bits): %v", m.BitLen(), err)
		}
		cases := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			new(big.Int).Sub(m, One),           // m-1
			new(big.Int).Set(m),                // ≡ 0
			new(big.Int).Add(m, One),           // ≡ 1
			new(big.Int).Mul(m, big.NewInt(7)), // ≡ 0, much wider than m
		}
		for i := 0; i < 20; i++ {
			v, err := RandInt(rand.Reader, m)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, v)
		}
		for _, v := range cases {
			want := new(big.Int).Mod(v, m)
			if got := mo.FromMont(mo.ToMont(v)); got.Cmp(want) != 0 {
				t.Fatalf("round trip mod %d bits: v=%v got %v want %v", m.BitLen(), v, got, want)
			}
		}
	}
}

// TestMontMulSqr cross-checks Montgomery products and squares against
// math/big, including the 0 and m-1 boundary operands.
func TestMontMulSqr(t *testing.T) {
	for _, m := range montTestModuli(t) {
		mo, err := NewModulus(m)
		if err != nil {
			t.Fatal(err)
		}
		operands := []*big.Int{big.NewInt(0), big.NewInt(1), new(big.Int).Sub(m, One)}
		for i := 0; i < 10; i++ {
			v, err := RandInt(rand.Reader, m)
			if err != nil {
				t.Fatal(err)
			}
			operands = append(operands, v)
		}
		for _, x := range operands {
			mx := mo.ToMont(x)
			wantSq := new(big.Int).Mod(new(big.Int).Mul(x, x), m)
			if got := mo.FromMont(mo.Sqr(mx)); got.Cmp(wantSq) != 0 {
				t.Fatalf("sqr mod %d bits: x=%v got %v want %v", m.BitLen(), x, got, wantSq)
			}
			for _, y := range operands {
				my := mo.ToMont(y)
				want := new(big.Int).Mod(new(big.Int).Mul(x, y), m)
				if got := mo.FromMont(mo.Mul(mx, my)); got.Cmp(want) != 0 {
					t.Fatalf("mul mod %d bits: x=%v y=%v got %v want %v", m.BitLen(), x, y, got, want)
				}
			}
		}
	}
}

// TestMontExp cross-checks the windowed variable-base exponentiation
// against big.Int.Exp for random inputs at every modulus shape, plus the
// degenerate exponents 0, 1 and base cases 0, m-1.
func TestMontExp(t *testing.T) {
	for _, m := range montTestModuli(t) {
		mo, err := NewModulus(m)
		if err != nil {
			t.Fatal(err)
		}
		bases := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(2), new(big.Int).Sub(m, One)}
		exps := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(65537)}
		for i := 0; i < 6; i++ {
			b, err := RandInt(rand.Reader, m)
			if err != nil {
				t.Fatal(err)
			}
			bases = append(bases, b)
			bl := uint(16 << i) // 16..512-bit exponents span every window width
			e, err := RandInt(rand.Reader, new(big.Int).Lsh(One, bl))
			if err != nil {
				t.Fatal(err)
			}
			exps = append(exps, e)
		}
		for _, b := range bases {
			for _, e := range exps {
				want := new(big.Int).Exp(b, e, m)
				got, err := mo.Exp(b, e)
				if err != nil {
					t.Fatalf("Exp(%v, %v) mod %d bits: %v", b, e, m.BitLen(), err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("Exp(%v, %v) mod %d bits: got %v want %v", b, e, m.BitLen(), got, want)
				}
			}
		}
	}
}

// TestMontExpNegative checks the negative-exponent path against ModExp.
func TestMontExpNegative(t *testing.T) {
	p, err := RandPrime(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := NewModulus(p)
	if err != nil {
		t.Fatal(err)
	}
	b := big.NewInt(12345)
	e := big.NewInt(-789)
	want, err := ModExp(b, e, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mo.Exp(b, e)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("negative exponent: got %v want %v", got, want)
	}
}

// TestMontMultiExp cross-checks the interleaved Montgomery multi-exp
// against the big.Int MultiExp and the naive product of Exps.
func TestMontMultiExp(t *testing.T) {
	p, err := RandPrime(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := NewModulus(p)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 9; n += 4 {
		bases := make([]*big.Int, n)
		exps := make([]*big.Int, n)
		want := big.NewInt(1)
		for i := range bases {
			bases[i], err = RandInt(rand.Reader, p)
			if err != nil {
				t.Fatal(err)
			}
			exps[i], err = RandInt(rand.Reader, new(big.Int).Lsh(One, uint(8+40*i)))
			if err != nil {
				t.Fatal(err)
			}
			want.Mul(want, new(big.Int).Exp(bases[i], exps[i], p))
			want.Mod(want, p)
		}
		got, err := mo.MultiExp(bases, exps)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("MultiExp n=%d: got %v want %v", n, got, want)
		}
		ref, err := MultiExp(bases, exps, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(ref) != 0 {
			t.Fatalf("MultiExp n=%d disagrees with big.Int MultiExp", n)
		}
	}
}

// TestBatchInverse checks Montgomery's trick against per-element
// inversion and proves the O(n) → O(1) inversion-count amortization via
// the package inversion counter.
func TestBatchInverse(t *testing.T) {
	p, err := RandPrime(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := NewModulus(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	values := make([]*big.Int, n)
	for i := range values {
		if values[i], err = RandScalar(rand.Reader, p); err != nil {
			t.Fatal(err)
		}
	}
	before := InverseCalls()
	inv, err := mo.BatchInverse(values)
	if err != nil {
		t.Fatal(err)
	}
	if got := InverseCalls() - before; got != 1 {
		t.Fatalf("batch inversion of %d elements performed %d extended-GCDs, want exactly 1", n, got)
	}
	for i, v := range values {
		want, err := ModInverse(v, p)
		if err != nil {
			t.Fatal(err)
		}
		if inv[i].Cmp(want) != 0 {
			t.Fatalf("batch inverse [%d] mismatch", i)
		}
	}
	// Non-invertible element: the batch must fail, not silently misreport.
	bad := append(append([]*big.Int(nil), values...), new(big.Int).Set(p))
	if _, err := mo.BatchInverse(bad); err == nil {
		t.Fatal("batch inversion accepted a non-invertible element")
	}
}

func benchModulus(b *testing.B, bits int) (*Modulus, *big.Int, *big.Int) {
	b.Helper()
	p, err := RandPrime(rand.Reader, bits)
	if err != nil {
		b.Fatal(err)
	}
	mo, err := NewModulus(p)
	if err != nil {
		b.Fatal(err)
	}
	base, _ := RandInt(rand.Reader, p)
	exp, _ := RandInt(rand.Reader, new(big.Int).Lsh(One, 160))
	return mo, base, exp
}

// BenchmarkVarBaseExp compares the Montgomery engine's variable-base
// exponentiation against math/big at the paper's sizes (1024-bit modulus,
// 160-bit exponent) — the mont/var-base-exp op of the bench gate.
func BenchmarkVarBaseExp(b *testing.B) {
	mo, base, exp := benchModulus(b, 1024)
	b.Run("big", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			new(big.Int).Exp(base, exp, mo.Int())
		}
	})
	b.Run("mont", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mo.Exp(base, exp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mont-domain", func(b *testing.B) {
		be := mo.ToMont(base)
		for i := 0; i < b.N; i++ {
			mo.ExpElem(be, exp)
		}
	})
}

// BenchmarkBatchInverse compares n extended-GCDs against Montgomery's
// trick (one extended-GCD plus 3(n-1) multiplications) at the affine
// conversion batch sizes of the bdkey chain.
func BenchmarkBatchInverse(b *testing.B) {
	mo, _, _ := benchModulus(b, 1024)
	const n = 16
	values := make([]*big.Int, n)
	for i := range values {
		values[i], _ = RandScalar(rand.Reader, mo.Int())
	}
	b.Run("per-element", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range values {
				if _, err := ModInverse(v, mo.Int()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mo.BatchInverse(values); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMontMul(b *testing.B) {
	mo, base, _ := benchModulus(b, 1024)
	x := mo.ToMont(base)
	y := mo.Sqr(x)
	z := make(Elem, mo.Words())
	b.Run("mul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mo.MulInto(z, x, y)
		}
	})
	b.Run("sqr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mo.SqrInto(z, x)
		}
	})
	b.Run("big-mulmod", func(b *testing.B) {
		t := new(big.Int)
		for i := 0; i < b.N; i++ {
			t.Mul(base, base)
			t.Mod(t, mo.Int())
		}
	})
}
