// Package mathx provides the modular-arithmetic toolkit shared by every
// cryptographic substrate in this repository: random scalars and units,
// prime generation (including Schnorr-group and pairing-friendly shapes),
// modular square roots, Legendre symbols and product trees.
//
// Everything is built on math/big and crypto/rand only. The package is
// deliberately free of protocol knowledge; it is the bottom layer of the
// dependency graph.
package mathx

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Handy shared constants. They are treated as immutable; callers must not
// mutate them.
var (
	Zero  = big.NewInt(0)
	One   = big.NewInt(1)
	Two   = big.NewInt(2)
	Three = big.NewInt(3)
	Four  = big.NewInt(4)
)

// primeIterations is the number of Miller-Rabin rounds used by
// ProbablyPrime checks. 32 rounds gives a 2^-64 error bound on random
// candidates, far below the other failure modes of the system.
const primeIterations = 32

// RandInt returns a uniformly random integer in [0, max). It is a thin
// wrapper over crypto/rand.Int that normalises error text.
func RandInt(r io.Reader, max *big.Int) (*big.Int, error) {
	if max.Sign() <= 0 {
		return nil, errors.New("mathx: RandInt bound must be positive")
	}
	v, err := rand.Int(r, max)
	if err != nil {
		return nil, fmt.Errorf("mathx: drawing random int: %w", err)
	}
	return v, nil
}

// RandScalar returns a uniformly random integer in [1, q-1], the usual
// exponent range for a group of prime order q.
func RandScalar(r io.Reader, q *big.Int) (*big.Int, error) {
	if q.Cmp(Two) < 0 {
		return nil, errors.New("mathx: RandScalar modulus must be >= 2")
	}
	bound := new(big.Int).Sub(q, One) // draws from [0, q-2]
	v, err := RandInt(r, bound)
	if err != nil {
		return nil, err
	}
	return v.Add(v, One), nil // shift to [1, q-1]
}

// RandUnit returns a uniformly random element of Z_n^*, i.e. an integer in
// [1, n-1] with gcd(v, n) = 1. For an RSA modulus the retry loop terminates
// after a single iteration with overwhelming probability.
func RandUnit(r io.Reader, n *big.Int) (*big.Int, error) {
	if n.Cmp(Two) < 0 {
		return nil, errors.New("mathx: RandUnit modulus must be >= 2")
	}
	gcd := new(big.Int)
	for i := 0; i < 1000; i++ {
		v, err := RandScalar(r, n)
		if err != nil {
			return nil, err
		}
		if gcd.GCD(nil, nil, v, n); gcd.Cmp(One) == 0 {
			return v, nil
		}
	}
	return nil, errors.New("mathx: RandUnit failed to find a unit (modulus hostile?)")
}

// RandPrime returns a random prime of exactly the given bit length.
func RandPrime(r io.Reader, bits int) (*big.Int, error) {
	if bits < 2 {
		return nil, errors.New("mathx: RandPrime needs bits >= 2")
	}
	p, err := rand.Prime(r, bits)
	if err != nil {
		return nil, fmt.Errorf("mathx: generating %d-bit prime: %w", bits, err)
	}
	return p, nil
}

// IsProbablePrime reports whether v is prime with the package-wide
// Miller-Rabin confidence.
func IsProbablePrime(v *big.Int) bool {
	return v.ProbablyPrime(primeIterations)
}

// ModInverse returns v^-1 mod m, or an error when the inverse does not
// exist. Unlike (*big.Int).ModInverse it never returns nil silently.
// Every call counts toward InverseCalls, the statistic batch inversion
// (Modulus.BatchInverse) amortizes to one per batch.
func ModInverse(v, m *big.Int) (*big.Int, error) {
	inverseCalls.Add(1)
	inv := new(big.Int).ModInverse(v, m)
	if inv == nil {
		return nil, fmt.Errorf("mathx: %v is not invertible mod %v", v, m)
	}
	return inv, nil
}

// ModExp is a convenience wrapper computing base^exp mod m with a fresh
// result, accepting negative exponents (resolved through a modular
// inverse, so m must be coprime with base in that case).
func ModExp(base, exp, m *big.Int) (*big.Int, error) {
	if m.Sign() <= 0 {
		return nil, errors.New("mathx: ModExp modulus must be positive")
	}
	//gkalint:vartime dispatch on the exponent's sign only; both arms run big.Int.Exp on the magnitude
	if exp.Sign() >= 0 {
		return new(big.Int).Exp(base, exp, m), nil
	}
	inv, err := ModInverse(base, m)
	if err != nil {
		return nil, err
	}
	negExp := new(big.Int).Neg(exp)
	return new(big.Int).Exp(inv, negExp, m), nil
}

// Legendre computes the Legendre symbol (a/p) for an odd prime p:
// 1 when a is a non-zero quadratic residue, -1 when a is a non-residue and
// 0 when p divides a.
func Legendre(a, p *big.Int) int {
	e := new(big.Int).Rsh(new(big.Int).Sub(p, One), 1) // (p-1)/2
	s := new(big.Int).Exp(new(big.Int).Mod(a, p), e, p)
	switch {
	case s.Sign() == 0:
		return 0
	case s.Cmp(One) == 0:
		return 1
	default:
		return -1
	}
}

// SqrtMod computes a square root of a modulo an odd prime p, returning an
// error when a is a non-residue. It fast-paths p ≡ 3 (mod 4) and falls back
// to Tonelli-Shanks for p ≡ 1 (mod 4).
func SqrtMod(a, p *big.Int) (*big.Int, error) {
	a = new(big.Int).Mod(a, p)
	if a.Sign() == 0 {
		return big.NewInt(0), nil
	}
	if Legendre(a, p) != 1 {
		return nil, errors.New("mathx: SqrtMod of a non-residue")
	}
	if new(big.Int).And(p, Three).Cmp(Three) == 0 {
		// p ≡ 3 (mod 4): root is a^((p+1)/4).
		e := new(big.Int).Add(p, One)
		e.Rsh(e, 2)
		return new(big.Int).Exp(a, e, p), nil
	}
	return tonelliShanks(a, p)
}

// tonelliShanks implements the general odd-prime square root algorithm.
func tonelliShanks(a, p *big.Int) (*big.Int, error) {
	// Write p-1 = q * 2^s with q odd.
	q := new(big.Int).Sub(p, One)
	s := 0
	for q.Bit(0) == 0 {
		q.Rsh(q, 1)
		s++
	}
	// Find a non-residue z.
	z := big.NewInt(2)
	for Legendre(z, p) != -1 {
		z.Add(z, One)
		if z.Cmp(p) >= 0 {
			return nil, errors.New("mathx: tonelliShanks failed to find non-residue")
		}
	}
	m := s
	c := new(big.Int).Exp(z, q, p)
	t := new(big.Int).Exp(a, q, p)
	r := new(big.Int).Exp(a, new(big.Int).Rsh(new(big.Int).Add(q, One), 1), p)
	for t.Cmp(One) != 0 {
		// Find least i in (0, m) with t^(2^i) = 1.
		i := 0
		t2 := new(big.Int).Set(t)
		for t2.Cmp(One) != 0 {
			t2.Mul(t2, t2).Mod(t2, p)
			i++
			if i == m {
				return nil, errors.New("mathx: tonelliShanks internal failure")
			}
		}
		// b = c^(2^(m-i-1))
		b := new(big.Int).Set(c)
		for j := 0; j < m-i-1; j++ {
			b.Mul(b, b).Mod(b, p)
		}
		m = i
		c.Mul(b, b).Mod(c, p)
		t.Mul(t, c).Mod(t, p)
		r.Mul(r, b).Mod(r, p)
	}
	return r, nil
}

// ProductMod returns the product of all values modulo m. A nil or empty
// slice yields 1, matching the empty-product convention used by the batch
// verification equations.
func ProductMod(values []*big.Int, m *big.Int) *big.Int {
	acc := big.NewInt(1)
	for _, v := range values {
		acc.Mul(acc, v)
		acc.Mod(acc, m)
	}
	return acc
}

// EqualMod reports whether a ≡ b (mod m).
func EqualMod(a, b, m *big.Int) bool {
	x := new(big.Int).Mod(a, m)
	y := new(big.Int).Mod(b, m)
	return x.Cmp(y) == 0
}
