package mathx

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"sync/atomic"
)

// This file is the fixed-width Montgomery-form modular arithmetic engine
// under the variable-base hot paths: the Burmester-Desmedt key assembly
// (equation 3), the GQ respond/verify folds and the DSA/Schnorr verify
// multi-exponentiation. A Modulus precomputes everything expensive about
// one modulus — the word count, -m^{-1} mod 2^W and R² mod m — exactly
// once; Elem values stay in the Montgomery domain across whole
// verification pipelines, converting on entry and leaving only at wire
// boundaries. Every operation is mathematically transparent: results are
// bit-identical to the math/big computation, so transcripts, keys and
// operation meters are unaffected by which engine ran.
//
// The core loops are CIOS (coarsely integrated operand scanning) with a
// dedicated squaring that halves the partial-product count. Everything
// is pure Go over math/bits intrinsics — no assembly, no dependencies.

// maxModulusWords bounds the fixed scratch buffers of the CIOS loops
// (64 words = 4096 bits on 64-bit platforms), far above the 1024/2048-bit
// moduli of the protocols.
const maxModulusWords = 64

// inverseCalls counts modular inversions performed through this package
// (ModInverse and the single inversion inside each batch-inversion call).
// Tests use the counter to prove the O(n) → O(1) inversion amortization
// of Montgomery's trick; the atomic add is negligible next to the
// extended-GCD it counts.
var inverseCalls atomic.Uint64

// InverseCalls returns the number of modular inversions performed so far
// process-wide.
func InverseCalls() uint64 { return inverseCalls.Load() }

// Elem is one residue in the Montgomery domain of a Modulus: a fixed-width
// little-endian limb vector of exactly the modulus' word count, holding
// v·R mod m. Elems are only meaningful with the Modulus that created them.
type Elem []big.Word

// Modulus is the precomputed context for Montgomery arithmetic modulo one
// odd m: the limb image of m, the word count k, n0 = -m^{-1} mod 2^W and
// R² mod m (R = 2^(W·k)). Construction costs one big.Int division; every
// subsequent operation is division-free. A Modulus is immutable after
// construction and safe for concurrent use.
type Modulus struct {
	m     *big.Int
	words []big.Word // little-endian limbs of m, length k
	k     int
	n0    big.Word // -m^{-1} mod 2^W
	r2    Elem     // R² mod m  (ToMont multiplier)
	one   Elem     // R mod m   (Montgomery image of 1)
}

// NewModulus precomputes a Montgomery context for an odd modulus > 1.
func NewModulus(m *big.Int) (*Modulus, error) {
	if m == nil || m.Sign() <= 0 {
		return nil, errors.New("mathx: Montgomery modulus must be positive")
	}
	if m.Bit(0) == 0 {
		return nil, errors.New("mathx: Montgomery modulus must be odd")
	}
	if m.Cmp(One) == 0 {
		return nil, errors.New("mathx: Montgomery modulus must be > 1")
	}
	limbs := m.Bits()
	k := len(limbs)
	if k > maxModulusWords {
		return nil, fmt.Errorf("mathx: modulus of %d words exceeds the %d-word Montgomery engine", k, maxModulusWords)
	}
	mo := &Modulus{
		m:     new(big.Int).Set(m),
		words: append([]big.Word(nil), limbs...),
		k:     k,
	}
	// n0 = -m^{-1} mod 2^W by Newton iteration: each step doubles the
	// number of correct low bits, and odd m guarantees invertibility.
	inv := uint(mo.words[0]) // 1 correct bit
	for i := 0; i < 6; i++ {
		inv *= 2 - uint(mo.words[0])*inv
	}
	mo.n0 = big.Word(-inv)
	// R mod m and R² mod m via one-time big.Int reductions.
	r := new(big.Int).Lsh(One, uint(k*bits.UintSize))
	mo.one = mo.elemFromBig(new(big.Int).Mod(r, m))
	mo.r2 = mo.elemFromBig(new(big.Int).Mod(new(big.Int).Mul(r, r), m))
	return mo, nil
}

// Int returns the modulus as a big.Int. Callers must not mutate it.
func (mo *Modulus) Int() *big.Int { return mo.m }

// Words returns the modulus' limb count (the fixed width of its Elems).
func (mo *Modulus) Words() int { return mo.k }

// elemFromBig widens the little-endian limbs of a canonical residue
// (0 <= v < m) to the fixed width. It does NOT convert to the Montgomery
// domain.
func (mo *Modulus) elemFromBig(v *big.Int) Elem {
	e := make(Elem, mo.k)
	copy(e, v.Bits())
	return e
}

// bigFromElem reads a fixed-width limb vector back into a big.Int.
func bigFromElem(e Elem) *big.Int {
	// Trim high zero limbs; big.Int.SetBits requires a normalized slice.
	i := len(e)
	for i > 0 && e[i-1] == 0 {
		i--
	}
	return new(big.Int).SetBits(append([]big.Word(nil), e[:i]...))
}

// ToMont converts v (any integer; reduced mod m first) into the Montgomery
// domain: one reduction plus one Montgomery multiplication by R².
func (mo *Modulus) ToMont(v *big.Int) Elem {
	red := new(big.Int).Mod(v, mo.m)
	z := make(Elem, mo.k)
	mo.montMul(z, mo.elemFromBig(red), mo.r2)
	return z
}

// FromMont converts an Elem back to a canonical big.Int residue in [0, m):
// one Montgomery multiplication by 1.
func (mo *Modulus) FromMont(e Elem) *big.Int {
	z := make(Elem, mo.k)
	oneLimb := make(Elem, mo.k)
	oneLimb[0] = 1
	mo.montMul(z, e, oneLimb)
	return bigFromElem(z)
}

// MontOne returns the Montgomery image of 1 (a fresh copy).
func (mo *Modulus) MontOne() Elem {
	return append(Elem(nil), mo.one...)
}

// Mul returns x·y in the Montgomery domain.
func (mo *Modulus) Mul(x, y Elem) Elem {
	z := make(Elem, mo.k)
	mo.montMul(z, x, y)
	return z
}

// MulInto computes z = x·y in the Montgomery domain; z may alias x or y.
func (mo *Modulus) MulInto(z, x, y Elem) { mo.montMul(z, x, y) }

// Sqr returns x² in the Montgomery domain.
func (mo *Modulus) Sqr(x Elem) Elem {
	z := make(Elem, mo.k)
	mo.SqrInto(z, x)
	return z
}

// SqrInto computes z = x² in the Montgomery domain; z may alias x.
// At the 16/32-word sizes the fully unrolled CIOS multiply beats the
// generic separated squaring, so those widths square through montMul.
func (mo *Modulus) SqrInto(z, x Elem) {
	if mo.k == 16 || mo.k == 32 {
		mo.montMul(z, x, x)
		return
	}
	mo.montSqr(z, x)
}

// addMulVVW computes z += x·y and returns the outgoing carry, the inner
// kernel of every Montgomery operation. Requires len(x) >= len(z); the
// range-over-z form lets the compiler eliminate the bounds checks.
func addMulVVW(z, x []big.Word, y big.Word) big.Word {
	yy := uint(y)
	x = x[:len(z)]
	var c uint
	for i, zi := range z {
		hi, lo := bits.Mul(uint(x[i]), yy)
		lo, cc := bits.Add(lo, c, 0)
		hi += cc
		lo, cc = bits.Add(lo, uint(zi), 0)
		z[i] = big.Word(lo)
		c = hi + cc
	}
	return big.Word(c)
}

// mulAddWWW is one word step of addMulVVW: z + x·y + c over a single
// limb, returning the low word and the outgoing carry. Small enough that
// the compiler inlines it into the unrolled kernels.
func mulAddWWW(xi, y, zi, c uint) (uint, uint) {
	hi, lo := bits.Mul(xi, y)
	lo, cc := bits.Add(lo, c, 0)
	hi += cc
	lo, cc = bits.Add(lo, zi, 0)
	return lo, hi + cc
}

// addMulVVW16 is addMulVVW fully unrolled for a 16-word (1024-bit on
// 64-bit platforms) window with a carry-in: fixed-size array pointers let
// the compiler drop every bounds check and loop branch, which is worth
// ~25% on the CIOS inner product.
func addMulVVW16(z, x *[16]big.Word, y big.Word, c uint) uint {
	yy := uint(y)
	var w uint
	w, c = mulAddWWW(uint(x[0]), yy, uint(z[0]), c)
	z[0] = big.Word(w)
	w, c = mulAddWWW(uint(x[1]), yy, uint(z[1]), c)
	z[1] = big.Word(w)
	w, c = mulAddWWW(uint(x[2]), yy, uint(z[2]), c)
	z[2] = big.Word(w)
	w, c = mulAddWWW(uint(x[3]), yy, uint(z[3]), c)
	z[3] = big.Word(w)
	w, c = mulAddWWW(uint(x[4]), yy, uint(z[4]), c)
	z[4] = big.Word(w)
	w, c = mulAddWWW(uint(x[5]), yy, uint(z[5]), c)
	z[5] = big.Word(w)
	w, c = mulAddWWW(uint(x[6]), yy, uint(z[6]), c)
	z[6] = big.Word(w)
	w, c = mulAddWWW(uint(x[7]), yy, uint(z[7]), c)
	z[7] = big.Word(w)
	w, c = mulAddWWW(uint(x[8]), yy, uint(z[8]), c)
	z[8] = big.Word(w)
	w, c = mulAddWWW(uint(x[9]), yy, uint(z[9]), c)
	z[9] = big.Word(w)
	w, c = mulAddWWW(uint(x[10]), yy, uint(z[10]), c)
	z[10] = big.Word(w)
	w, c = mulAddWWW(uint(x[11]), yy, uint(z[11]), c)
	z[11] = big.Word(w)
	w, c = mulAddWWW(uint(x[12]), yy, uint(z[12]), c)
	z[12] = big.Word(w)
	w, c = mulAddWWW(uint(x[13]), yy, uint(z[13]), c)
	z[13] = big.Word(w)
	w, c = mulAddWWW(uint(x[14]), yy, uint(z[14]), c)
	z[14] = big.Word(w)
	w, c = mulAddWWW(uint(x[15]), yy, uint(z[15]), c)
	z[15] = big.Word(w)
	return c
}

// addMulWin is addMulVVW over a window of exactly len(z) words,
// dispatching 16- and 32-word windows (1024/2048-bit moduli) to the
// unrolled kernel. Requires len(x) >= len(z).
func addMulWin(z, x []big.Word, y big.Word) big.Word {
	switch len(z) {
	case 16:
		return big.Word(addMulVVW16((*[16]big.Word)(z), (*[16]big.Word)(x), y, 0))
	case 32:
		c := addMulVVW16((*[16]big.Word)(z), (*[16]big.Word)(x), y, 0)
		return big.Word(addMulVVW16((*[16]big.Word)(z[16:]), (*[16]big.Word)(x[16:]), y, c))
	}
	return addMulVVW(z, x, y)
}

// subVV computes z = x - y and returns the outgoing borrow; the slices
// must have equal length.
func subVV(z, x, y []big.Word) big.Word {
	y = y[:len(z)]
	x = x[:len(z)]
	var b uint
	for i := range z {
		d, bb := bits.Sub(uint(x[i]), uint(y[i]), b)
		z[i] = big.Word(d)
		b = bb
	}
	return big.Word(b)
}

// addVW computes z += y for a single incoming word and returns the
// outgoing carry.
func addVW(z []big.Word, y big.Word) big.Word {
	c := uint(y)
	for i := range z {
		if c == 0 {
			return 0
		}
		s, cc := bits.Add(uint(z[i]), c, 0)
		z[i] = big.Word(s)
		c = cc
	}
	return big.Word(c)
}

// montMul computes z = x·y·R^{-1} mod m with the CIOS method over a
// sliding 2k-word accumulator (the math/big montgomery shape). z may
// alias x or y: the product accumulates in a stack scratch buffer and is
// copied out after the final conditional subtraction.
func (mo *Modulus) montMul(z, x, y Elem) {
	k := mo.k
	n := mo.words
	var tbuf [2 * maxModulusWords]big.Word
	t := tbuf[:2*k]
	for i := range t {
		t[i] = 0
	}
	var c big.Word
	for i := 0; i < k; i++ {
		win := t[i : i+k]
		c2 := addMulWin(win, x, y[i])
		q := t[i] * mo.n0
		c3 := addMulWin(win, n, q)
		cx := c + c2
		cy := cx + c3
		t[i+k] = cy
		if cx < c2 || cy < c3 {
			c = 1
		} else {
			c = 0
		}
	}
	// The result t[k:2k] with overflow bit c is < 2m: one conditional
	// subtraction brings it into [0, m).
	if c != 0 || geWords(t[k:], n) {
		subVV(z, t[k:], n)
	} else {
		copy(z, t[k:])
	}
}

// montSqr computes z = x²·R^{-1} mod m: the off-diagonal partial products
// are computed once and doubled (k(k-1)/2 multiplies instead of k²), the
// diagonal added, then a separated Montgomery reduction pass runs over the
// double-width product. z may alias x.
func (mo *Modulus) montSqr(z, x Elem) {
	k := mo.k
	n := mo.words
	var tbuf [2*maxModulusWords + 1]big.Word
	t := tbuf[:2*k+1]
	for i := range t {
		t[i] = 0
	}
	// Off-diagonal products x[i]·x[j], j > i.
	for i := 0; i < k-1; i++ {
		t[i+k] = addMulVVW(t[2*i+1:i+k], x[i+1:], x[i])
	}
	// Double the cross terms: t <<= 1 over the 2k low words.
	var carry uint
	for i := 0; i < 2*k; i++ {
		w := uint(t[i])
		t[i] = big.Word(w<<1 | carry)
		carry = w >> (bits.UintSize - 1)
	}
	t[2*k] = big.Word(carry)
	// Add the diagonal x[i]² at positions 2i, 2i+1.
	var c uint
	for i := 0; i < k; i++ {
		hi, lo := bits.Mul(uint(x[i]), uint(x[i]))
		s, cc := bits.Add(uint(t[2*i]), lo, c)
		t[2*i] = big.Word(s)
		s, cc = bits.Add(uint(t[2*i+1]), hi, cc)
		t[2*i+1] = big.Word(s)
		c = cc
	}
	t[2*k] += big.Word(c) // cannot overflow: x² fits 2k words exactly
	// Separated Montgomery reduction over the double-width product.
	for i := 0; i < k; i++ {
		q := t[i] * mo.n0
		c := addMulWin(t[i:i+k], n, q)
		// Ripple the window carry into the high words (bounded by the
		// 2k+1-word value: x² + m·Σq_i·2^{Wi} < R² + R·m < 2·R²).
		for j := i + k; c != 0; j++ {
			s, cc := bits.Add(uint(t[j]), uint(c), 0)
			t[j] = big.Word(s)
			c = big.Word(cc)
		}
	}
	// Result occupies t[k .. 2k] with t[2k] the overflow word.
	if t[2*k] != 0 || geWords(t[k:2*k], n) {
		subVV(z, t[k:2*k], n)
	} else {
		copy(z, t[k:2*k])
	}
}

// geWords reports whether a >= b for equal-length little-endian limbs.
func geWords(a, b []big.Word) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return true
}

// expWindow picks the sliding-window width for an exponent size.
func expWindow(bits int) int {
	switch {
	case bits <= 8:
		return 1
	case bits <= 48:
		return 3
	case bits <= 160:
		return 4
	case bits <= 768:
		return 5
	default:
		return 6
	}
}

// ExpElem computes base^e in the Montgomery domain for a non-negative
// exponent, with a left-to-right sliding window over precomputed odd
// powers. e = 0 yields the Montgomery image of 1.
func (mo *Modulus) ExpElem(base Elem, e *big.Int) Elem {
	eb := e.BitLen()
	if e.Sign() < 0 {
		panic("mathx: ExpElem needs a non-negative exponent")
	}
	if eb == 0 {
		return mo.MontOne()
	}
	w := expWindow(eb)
	// Odd powers base^1, base^3, ..., base^(2^w - 1).
	table := make([]Elem, 1<<(w-1))
	table[0] = append(Elem(nil), base...)
	if len(table) > 1 {
		b2 := mo.Sqr(base)
		for i := 1; i < len(table); i++ {
			table[i] = mo.Mul(table[i-1], b2)
		}
	}
	acc := make(Elem, mo.k)
	started := false
	for i := eb - 1; i >= 0; {
		if e.Bit(i) == 0 {
			if started {
				mo.SqrInto(acc, acc)
			}
			i--
			continue
		}
		// Find the longest window [i..l] with a set low bit, width <= w.
		l := i - w + 1
		if l < 0 {
			l = 0
		}
		for e.Bit(l) == 0 {
			l++
		}
		var digit uint
		for j := i; j >= l; j-- {
			digit = digit<<1 | uint(e.Bit(j))
		}
		if started {
			for j := 0; j < i-l+1; j++ {
				mo.SqrInto(acc, acc)
			}
			mo.MulInto(acc, acc, table[digit>>1])
		} else {
			copy(acc, table[digit>>1])
			started = true
		}
		i = l - 1
	}
	return acc
}

// Exp computes base^e mod m through the Montgomery engine, bit-identical
// to (*big.Int).Exp / mathx.ModExp. Negative exponents are resolved
// through a modular inverse (m must be coprime with base).
func (mo *Modulus) Exp(base, e *big.Int) (*big.Int, error) {
	if e.Sign() < 0 {
		inv, err := ModInverse(base, mo.m)
		if err != nil {
			return nil, err
		}
		return mo.FromMont(mo.ExpElem(mo.ToMont(inv), new(big.Int).Neg(e))), nil
	}
	return mo.FromMont(mo.ExpElem(mo.ToMont(base), e)), nil
}

// MultiExpElem computes Π bases[i]^exps[i] in the Montgomery domain with
// one interleaved squaring chain shared by every base (windowed Shamir
// trick): max-bits squarings total plus, per base, a sliding window's
// worth of multiplications (~bits/(w+1) instead of one per set bit) over
// its precomputed odd powers. Exponents must be non-negative. The win
// over per-base exponentiation is largest when exponents are short — the
// BD key assembly — or when many bases share one verification equation.
func (mo *Modulus) MultiExpElem(bases []Elem, exps []*big.Int) (Elem, error) {
	if len(bases) != len(exps) {
		return nil, errors.New("mathx: MultiExpElem bases/exps length mismatch")
	}
	maxBits := 0
	for i, e := range exps {
		if e == nil || bases[i] == nil {
			return nil, errors.New("mathx: MultiExpElem nil operand")
		}
		if e.Sign() < 0 {
			return nil, errors.New("mathx: MultiExpElem needs non-negative exponents")
		}
		if bl := e.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	if maxBits == 0 {
		return mo.MontOne(), nil
	}
	// Decompose every exponent into left-to-right sliding windows of odd
	// digits and bucket the pending multiplications by each window's low
	// bit; the merge pass below then walks one squaring chain and folds in
	// every base's window where it lands.
	type pendMul struct {
		base  int
		digit uint // odd window digit; table index is digit>>1
	}
	pend := make([][]pendMul, maxBits)
	tables := make([][]Elem, len(bases))
	for j, e := range exps {
		eb := e.BitLen()
		if eb == 0 {
			continue
		}
		w := expWindow(eb)
		maxDigit := uint(0)
		for i := eb - 1; i >= 0; {
			if e.Bit(i) == 0 {
				i--
				continue
			}
			l := i - w + 1
			if l < 0 {
				l = 0
			}
			for e.Bit(l) == 0 {
				l++
			}
			var digit uint
			for t := i; t >= l; t-- {
				digit = digit<<1 | uint(e.Bit(t))
			}
			if digit > maxDigit {
				maxDigit = digit
			}
			pend[l] = append(pend[l], pendMul{base: j, digit: digit})
			i = l - 1
		}
		// Odd powers base, base^3, ... up to the largest digit this
		// exponent actually uses (entries are read-only; index 0 aliases
		// the caller's element).
		tab := make([]Elem, maxDigit/2+1)
		tab[0] = bases[j]
		if len(tab) > 1 {
			b2 := mo.Sqr(bases[j])
			for i := 1; i < len(tab); i++ {
				tab[i] = mo.Mul(tab[i-1], b2)
			}
		}
		tables[j] = tab
	}
	var acc Elem
	for i := maxBits - 1; i >= 0; i-- {
		if acc != nil {
			mo.SqrInto(acc, acc)
		}
		for _, pm := range pend[i] {
			if acc == nil {
				acc = append(Elem(nil), tables[pm.base][pm.digit>>1]...)
			} else {
				mo.MulInto(acc, acc, tables[pm.base][pm.digit>>1])
			}
		}
	}
	return acc, nil
}

// MultiExp is MultiExpElem over big.Int operands: bases convert into the
// Montgomery domain once, negative exponents resolve through modular
// inverses, and the accumulated product converts back out. Bit-identical
// to mathx.MultiExp.
func (mo *Modulus) MultiExp(bases, exps []*big.Int) (*big.Int, error) {
	bs := make([]Elem, len(bases))
	es := make([]*big.Int, len(exps))
	if len(bases) != len(exps) {
		return nil, errors.New("mathx: MultiExp bases/exps length mismatch")
	}
	for i := range bases {
		if bases[i] == nil || exps[i] == nil {
			return nil, errors.New("mathx: MultiExp nil operand")
		}
		b, e := bases[i], exps[i]
		if e.Sign() < 0 {
			inv, err := ModInverse(b, mo.m)
			if err != nil {
				return nil, err
			}
			b = inv
			e = new(big.Int).Neg(e)
		}
		bs[i] = mo.ToMont(b)
		es[i] = e
	}
	acc, err := mo.MultiExpElem(bs, es)
	if err != nil {
		return nil, err
	}
	return mo.FromMont(acc), nil
}

// IsOne reports whether e is the Montgomery image of 1.
func (mo *Modulus) IsOne(e Elem) bool {
	for i := range e {
		if e[i] != mo.one[i] {
			return false
		}
	}
	return len(e) == mo.k
}

// ProductElem folds Elems into their Montgomery-domain product. An empty
// slice yields the image of 1 (the empty-product convention of the batch
// verification equations).
func (mo *Modulus) ProductElem(es []Elem) Elem {
	acc := mo.MontOne()
	for _, e := range es {
		mo.MulInto(acc, acc, e)
	}
	return acc
}

// BatchInverseElem inverts every Elem with Montgomery's trick: prefix
// products, ONE modular inversion, then a backward sweep — 3(n-1)
// multiplications plus a single extended-GCD, against n extended-GCDs for
// per-element inversion. Fails if any input (equivalently, the product) is
// not invertible.
func (mo *Modulus) BatchInverseElem(es []Elem) ([]Elem, error) {
	n := len(es)
	if n == 0 {
		return nil, nil
	}
	// prefix[i] = e_0 · ... · e_i  (Montgomery domain).
	prefix := make([]Elem, n)
	prefix[0] = append(Elem(nil), es[0]...)
	for i := 1; i < n; i++ {
		prefix[i] = mo.Mul(prefix[i-1], es[i])
	}
	// One inversion of the total product.
	totalInv, err := ModInverse(mo.FromMont(prefix[n-1]), mo.m)
	if err != nil {
		return nil, fmt.Errorf("mathx: batch inversion: %w", err)
	}
	acc := mo.ToMont(totalInv) // (e_0···e_{n-1})^{-1} in the domain
	out := make([]Elem, n)
	for i := n - 1; i > 0; i-- {
		out[i] = mo.Mul(acc, prefix[i-1])
		mo.MulInto(acc, acc, es[i])
	}
	out[0] = acc
	return out, nil
}

// BatchInverse inverts every value modulo m with a single extended-GCD
// (Montgomery's trick over big.Int operands). Bit-identical to calling
// ModInverse per element; fails if any element is not invertible.
func (mo *Modulus) BatchInverse(values []*big.Int) ([]*big.Int, error) {
	es := make([]Elem, len(values))
	for i, v := range values {
		if v == nil {
			return nil, errors.New("mathx: BatchInverse nil value")
		}
		es[i] = mo.ToMont(v)
	}
	inv, err := mo.BatchInverseElem(es)
	if err != nil {
		return nil, err
	}
	out := make([]*big.Int, len(inv))
	for i, e := range inv {
		out[i] = mo.FromMont(e)
	}
	return out, nil
}
