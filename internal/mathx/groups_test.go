package mathx

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestGenerateSchnorrGroup(t *testing.T) {
	sg, err := GenerateSchnorrGroup(rand.Reader, 256, 160)
	if err != nil {
		t.Fatalf("GenerateSchnorrGroup: %v", err)
	}
	if err := sg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sg.P.BitLen() != 256 {
		t.Fatalf("p has %d bits, want 256", sg.P.BitLen())
	}
	if sg.Q.BitLen() != 160 {
		t.Fatalf("q has %d bits, want 160", sg.Q.BitLen())
	}
}

func TestSchnorrGroupExpAndMembership(t *testing.T) {
	sg, err := GenerateSchnorrGroup(rand.Reader, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	x, err := RandScalar(rand.Reader, sg.Q)
	if err != nil {
		t.Fatal(err)
	}
	z := sg.Exp(x)
	if !sg.InSubgroup(z) {
		t.Fatal("g^x should be in the subgroup")
	}
	if sg.InSubgroup(big.NewInt(0)) {
		t.Fatal("0 must not be a member")
	}
	if sg.InSubgroup(sg.P) {
		t.Fatal("p must not be a member")
	}
}

func TestSchnorrValidateRejectsBadGroups(t *testing.T) {
	sg, err := GenerateSchnorrGroup(rand.Reader, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	bad := &SchnorrGroup{P: new(big.Int).Add(sg.P, One), Q: sg.Q, G: sg.G}
	if err := bad.Validate(); err == nil {
		t.Fatal("composite p accepted")
	}
	bad = &SchnorrGroup{P: sg.P, Q: sg.Q, G: big.NewInt(1)}
	if err := bad.Validate(); err == nil {
		t.Fatal("generator 1 accepted")
	}
	if err := (&SchnorrGroup{}).Validate(); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestGenerateRSAParams(t *testing.T) {
	rp, err := GenerateRSAParams(rand.Reader, 512)
	if err != nil {
		t.Fatalf("GenerateRSAParams: %v", err)
	}
	if err := rp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := rp.N.BitLen(); got < 511 || got > 512 {
		t.Fatalf("modulus bit length %d out of expected range", got)
	}
	// Exponent round trip: (x^d)^e == x.
	x := big.NewInt(123456789)
	s := new(big.Int).Exp(x, rp.D, rp.N)
	back := new(big.Int).Exp(s, rp.E, rp.N)
	if back.Cmp(x) != 0 {
		t.Fatal("d/e are not inverse exponents")
	}
}

func TestRSAPublicStripsSecrets(t *testing.T) {
	rp, err := GenerateRSAParams(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	pub := rp.Public()
	if pub.D != nil || pub.P != nil || pub.Q != nil {
		t.Fatal("Public() leaked secret components")
	}
	if pub.N.Cmp(rp.N) != 0 || pub.E.Cmp(rp.E) != 0 {
		t.Fatal("Public() mangled public components")
	}
}

func TestRSAValidateRejectsInconsistent(t *testing.T) {
	rp, err := GenerateRSAParams(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	bad := &RSAParams{N: rp.N, E: rp.E, P: rp.P, Q: new(big.Int).Add(rp.Q, Two), D: rp.D}
	if err := bad.Validate(); err == nil {
		t.Fatal("N != P*Q accepted")
	}
}

func BenchmarkSchnorrExp(b *testing.B) {
	sg, err := GenerateSchnorrGroup(rand.Reader, 1024, 160)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := RandScalar(rand.Reader, sg.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg.Exp(x)
	}
}
