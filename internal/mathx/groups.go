package mathx

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync/atomic"
)

// SchnorrGroup describes a prime-order-q subgroup of Z_p^*, the setting of
// the Burmester-Desmedt protocol and DSA: q | p-1 and g generates the
// subgroup of order q.
type SchnorrGroup struct {
	P *big.Int // field prime (paper: 1024-bit)
	Q *big.Int // subgroup order (paper: 160-bit)
	G *big.Int // generator of the order-q subgroup

	// fixedBase caches the windowed precomputation table for G, attached
	// by Precompute. Groups are shared by pointer across every member of
	// a deployment, so the table is published atomically; a nil table
	// selects the naive path.
	fixedBase atomic.Pointer[FixedBaseTable]

	// mont caches the Montgomery context for p (built lazily by Mont).
	mont atomic.Pointer[Modulus]
}

// Mont returns the group's cached Montgomery context for the field prime
// p, building it on first use. Groups are shared by pointer across every
// member of a deployment, so the one-off construction (a single big.Int
// division) is amortised process-wide. Never nil for a valid group.
func (sg *SchnorrGroup) Mont() *Modulus {
	if mo := sg.mont.Load(); mo != nil {
		return mo
	}
	mo, err := NewModulus(sg.P)
	if err != nil {
		return nil
	}
	sg.mont.CompareAndSwap(nil, mo)
	return sg.mont.Load()
}

// GenerateSchnorrGroup produces a fresh Schnorr group with the requested
// sizes: a qBits-bit prime q and a pBits-bit prime p = k*q + 1, plus a
// generator g of the order-q subgroup.
func GenerateSchnorrGroup(r io.Reader, pBits, qBits int) (*SchnorrGroup, error) {
	if qBits >= pBits {
		return nil, errors.New("mathx: Schnorr group needs qBits < pBits")
	}
	q, err := RandPrime(r, qBits)
	if err != nil {
		return nil, err
	}
	// Search p = k*q + 1 with the right bit length.
	kBits := pBits - qBits
	p := new(big.Int)
	k := new(big.Int)
	for attempt := 0; ; attempt++ {
		if attempt > 64*pBits {
			return nil, errors.New("mathx: Schnorr prime search exhausted")
		}
		kr, err := RandInt(r, new(big.Int).Lsh(One, uint(kBits)))
		if err != nil {
			return nil, err
		}
		// Force the top bit so p has exactly pBits bits, and make k even so
		// p = k*q+1 is odd.
		kr.SetBit(kr, kBits-1, 1)
		kr.SetBit(kr, 0, 0)
		p.Mul(kr, q)
		p.Add(p, One)
		if p.BitLen() != pBits {
			continue
		}
		if IsProbablePrime(p) {
			k.Set(kr)
			break
		}
	}
	g, err := subgroupGenerator(r, p, q, k)
	if err != nil {
		return nil, err
	}
	return &SchnorrGroup{P: p, Q: q, G: g}, nil
}

// subgroupGenerator finds g = h^k mod p with order exactly q, where
// p = k*q + 1.
func subgroupGenerator(r io.Reader, p, q, k *big.Int) (*big.Int, error) {
	for i := 0; i < 1000; i++ {
		h, err := RandScalar(r, p)
		if err != nil {
			return nil, err
		}
		g := new(big.Int).Exp(h, k, p)
		if g.Cmp(One) != 0 {
			return g, nil
		}
	}
	return nil, errors.New("mathx: failed to find subgroup generator")
}

// Validate performs structural checks: primality of p and q, the divisor
// relation q | p-1, and that g has order q.
func (sg *SchnorrGroup) Validate() error {
	if sg == nil || sg.P == nil || sg.Q == nil || sg.G == nil {
		return errors.New("mathx: incomplete Schnorr group")
	}
	if !IsProbablePrime(sg.P) {
		return errors.New("mathx: Schnorr p is not prime")
	}
	if !IsProbablePrime(sg.Q) {
		return errors.New("mathx: Schnorr q is not prime")
	}
	pm1 := new(big.Int).Sub(sg.P, One)
	if new(big.Int).Mod(pm1, sg.Q).Sign() != 0 {
		return errors.New("mathx: q does not divide p-1")
	}
	if sg.G.Cmp(Two) < 0 || sg.G.Cmp(pm1) >= 0 {
		return errors.New("mathx: generator out of range")
	}
	if new(big.Int).Exp(sg.G, sg.Q, sg.P).Cmp(One) != 0 {
		return errors.New("mathx: generator order is not q")
	}
	return nil
}

// Precompute attaches a windowed fixed-base table for the generator,
// turning subsequent Exp calls into ~ceil(|q|/window) modular
// multiplications instead of a full square-and-multiply. Idempotent and
// safe to call concurrently; returns the attached table (nil only when
// the group is structurally unusable). The accelerated Exp returns
// bit-identical values, so transcripts and operation accounting are
// unaffected.
func (sg *SchnorrGroup) Precompute() *FixedBaseTable {
	if sg == nil || sg.P == nil || sg.Q == nil || sg.G == nil {
		return nil
	}
	if t := sg.fixedBase.Load(); t != nil {
		return t
	}
	t, err := NewFixedBaseTable(sg.G, sg.P, sg.Q.BitLen(), DefaultWindow)
	if err != nil {
		return nil
	}
	sg.fixedBase.CompareAndSwap(nil, t)
	return sg.fixedBase.Load()
}

// FixedBase returns the precomputation table attached by Precompute, or
// nil when the group runs the naive path.
func (sg *SchnorrGroup) FixedBase() *FixedBaseTable { return sg.fixedBase.Load() }

// Exp computes g^x mod p for the group generator, through the fixed-base
// table when one has been precomputed.
func (sg *SchnorrGroup) Exp(x *big.Int) *big.Int {
	if t := sg.fixedBase.Load(); t != nil {
		return t.Exp(x)
	}
	return new(big.Int).Exp(sg.G, x, sg.P)
}

// InSubgroup reports whether v is a member of the order-q subgroup
// (excluding 0; the identity 1 is a member).
func (sg *SchnorrGroup) InSubgroup(v *big.Int) bool {
	if v.Sign() <= 0 || v.Cmp(sg.P) >= 0 {
		return false
	}
	return new(big.Int).Exp(v, sg.Q, sg.P).Cmp(One) == 0
}

// RSAParams is the PKG-side description of the GQ modulus: n = p*q with the
// signing/verification exponent pair d, e satisfying e*d ≡ 1 (mod λ(n)).
//
// The paper's Setup says "gcd(e,d) = 1", which is a typo for the standard
// GQ/RSA relation; we implement e·d ≡ 1 (mod λ(n)) (see DESIGN.md §4).
type RSAParams struct {
	N *big.Int // public modulus
	E *big.Int // public verification exponent
	//gkalint:secret
	P *big.Int // secret prime factor
	//gkalint:secret
	Q *big.Int // secret prime factor
	//gkalint:secret
	D *big.Int // secret extraction exponent

	// mont caches the Montgomery context for N (built lazily by Mont).
	mont atomic.Pointer[Modulus]
}

// Mont returns the cached Montgomery context for the modulus N, building
// it on first use. Parameter sets are shared by pointer, so the context
// is built once per process. Never nil for a valid parameter set.
func (rp *RSAParams) Mont() *Modulus {
	if mo := rp.mont.Load(); mo != nil {
		return mo
	}
	mo, err := NewModulus(rp.N)
	if err != nil {
		return nil
	}
	rp.mont.CompareAndSwap(nil, mo)
	return rp.mont.Load()
}

// GenerateRSAParams produces a GQ modulus of the requested size. e is fixed
// to 65537 unless that happens to divide λ(n), in which case the primes are
// re-drawn (vanishingly rare).
func GenerateRSAParams(r io.Reader, bits int) (*RSAParams, error) {
	if bits < 32 {
		return nil, errors.New("mathx: RSA modulus too small")
	}
	e := big.NewInt(65537)
	for attempt := 0; attempt < 64; attempt++ {
		p, err := RandPrime(r, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := RandPrime(r, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, One)
		qm1 := new(big.Int).Sub(q, One)
		lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), new(big.Int).GCD(nil, nil, pm1, qm1))
		d := new(big.Int).ModInverse(e, lambda)
		if d == nil {
			continue
		}
		return &RSAParams{N: n, E: new(big.Int).Set(e), P: p, Q: q, D: d}, nil
	}
	return nil, errors.New("mathx: RSA parameter generation exhausted retries")
}

// Validate checks the public/secret consistency of the parameter set.
func (rp *RSAParams) Validate() error {
	if rp == nil || rp.N == nil || rp.E == nil {
		return errors.New("mathx: incomplete RSA params")
	}
	if rp.P != nil && rp.Q != nil {
		//gkalint:vartime offline parameter validation at setup, not a per-session signing path
		if new(big.Int).Mul(rp.P, rp.Q).Cmp(rp.N) != 0 {
			return errors.New("mathx: N != P*Q")
		}
		//gkalint:vartime Miller-Rabin on the factors is inherently variable-time; setup only
		if !IsProbablePrime(rp.P) || !IsProbablePrime(rp.Q) {
			return errors.New("mathx: RSA factor not prime")
		}
	}
	if rp.D != nil && rp.P != nil && rp.Q != nil {
		probe := big.NewInt(0xabcdef)
		sig := new(big.Int).Exp(probe, rp.D, rp.N)
		back := new(big.Int).Exp(sig, rp.E, rp.N)
		if back.Cmp(probe) != 0 {
			return errors.New("mathx: e,d are not inverse exponents")
		}
	}
	return nil
}

// Public returns a copy with the secret components stripped, suitable for
// distribution to protocol participants.
func (rp *RSAParams) Public() *RSAParams {
	return &RSAParams{N: new(big.Int).Set(rp.N), E: new(big.Int).Set(rp.E)}
}

// String renders a short fingerprint for logs; secrets are never printed.
func (rp *RSAParams) String() string {
	return fmt.Sprintf("RSAParams{n:%d bits, e:%v}", rp.N.BitLen(), rp.E)
}
