package pairing

import (
	"errors"
	"math/big"
)

// GT is a pairing output: an element of the order-q subgroup of F_p²^*.
type GT struct {
	v FP2
	p *big.Int
}

// Equal reports GT equality.
func (t GT) Equal(o GT) bool { return t.v.Equal(o.v) }

// IsOne reports whether the value is the identity (which a pairing of
// linearly dependent or degenerate inputs produces).
func (t GT) IsOne() bool { return t.v.IsOne() }

// Bytes returns a fixed-width serialisation for key derivation.
func (t GT) Bytes() []byte { return t.v.Bytes(t.p) }

// Exp raises the pairing value to a scalar power.
func (g *Group) Exp(t GT, k *big.Int) GT {
	kk := new(big.Int).Mod(k, g.pp.Q)
	return GT{v: g.ctx.exp(t.v, kk), p: g.pp.P}
}

// MulGT multiplies two pairing values.
func (g *Group) MulGT(a, b GT) GT {
	return GT{v: g.ctx.mul(a.v, b.v), p: g.pp.P}
}

// InvGT inverts a pairing value. Pairing outputs lie in the order-q
// cyclotomic subgroup where the conjugate is the inverse, so this never
// fails for well-formed values.
func (g *Group) InvGT(a GT) GT {
	return GT{v: g.ctx.conj(a.v), p: g.pp.P}
}

// distort applies φ(x, y) = (-x, i·y), returning the F_p² coordinates
// (xd ∈ F_p embedded, yd purely imaginary).
func (g *Group) distort(q Point) (xd, yd FP2) {
	negX := new(big.Int).Neg(q.X)
	xd = g.ctx.newFP2(negX, big.NewInt(0))
	yd = g.ctx.newFP2(big.NewInt(0), new(big.Int).Set(q.Y))
	return xd, yd
}

// lineEval evaluates the line through a and b (tangent when a = b) at the
// distorted point (xd, yd): l = (yd - y_a) - λ(xd - x_a). The slope λ is
// supplied by the group-law step. All of a's coordinates are in F_p; the
// result is a genuine F_p² element (its imaginary part carries y_Q), which
// is what makes BKLS denominator elimination sound here.
func (g *Group) lineEval(a Point, lam *big.Int, xd, yd FP2) FP2 {
	// (xd - x_a) has only a real part: -x_Q - x_a.
	dx := g.ctx.sub(xd, g.ctx.newFP2(a.X, big.NewInt(0)))
	// λ·dx is real; (yd - y_a) = -y_a + i·y_Q.
	lamDx := g.ctx.mul(g.ctx.newFP2(lam, big.NewInt(0)), dx)
	dy := g.ctx.sub(yd, g.ctx.newFP2(a.Y, big.NewInt(0)))
	return g.ctx.sub(dy, lamDx)
}

// Pair computes the modified Tate pairing ê(P, Q) = f_{q,P}(φ(Q))^((p²-1)/q).
//
// Both arguments must lie in the order-q subgroup of E(F_p). The result is
// symmetric (ê(P,Q) = ê(Q,P)) and bilinear; ê(P,P) ≠ 1 for P ≠ ∞, which is
// what the distortion map buys.
func (g *Group) Pair(pP, pQ Point) (GT, error) {
	if pP.IsInfinity() || pQ.IsInfinity() {
		return GT{v: g.ctx.one(), p: g.pp.P}, nil
	}
	if !g.IsOnCurve(pP) || !g.IsOnCurve(pQ) {
		return GT{}, errors.New("pairing: input off curve")
	}
	xd, yd := g.distort(pQ)
	f := g.ctx.one()
	t := pP
	q := g.pp.Q
	for i := q.BitLen() - 2; i >= 0; i-- {
		// Doubling step: f = f² · l_{T,T}(φ(Q)).
		f = g.ctx.square(f)
		tPrev := t
		next, lam := g.addWithSlope(t, t)
		if lam != nil {
			f = g.ctx.mul(f, g.lineEval(tPrev, lam, xd, yd))
		}
		// Vertical tangent (y=0) cannot occur inside an odd-order subgroup;
		// if T reached infinity the remaining factors are 1.
		t = next
		if q.Bit(i) == 1 {
			if t.IsInfinity() {
				t = pP
				continue
			}
			tPrev = t
			sum, lam := g.addWithSlope(t, pP)
			if lam != nil {
				f = g.ctx.mul(f, g.lineEval(tPrev, lam, xd, yd))
			}
			// Vertical chord (T = -P): line value x_φ(Q) - x_T ∈ F_p is
			// killed by the final exponentiation — skip it (BKLS).
			t = sum
		}
	}
	out := g.ctx.exp(f, g.finalExp)
	return GT{v: out, p: g.pp.P}, nil
}
