// Package pairing implements a symmetric bilinear pairing from scratch on
// a supersingular elliptic curve, the construction used by the
// Sakai-Ohgishi-Kasahara era of identity-based cryptography that the
// paper's "BD with SOK" baseline relies on.
//
// Setting: E : y² = x³ + x over F_p with p ≡ 3 (mod 4). The curve is
// supersingular with #E(F_p) = p + 1; parameters choose a prime q | p + 1
// and work in the order-q subgroup G. The distortion map
// φ(x, y) = (-x, i·y) (with i² = -1 in F_p²) maps G to a linearly
// independent group, turning the Tate pairing into a symmetric pairing
//
//	ê : G × G → F_p²,  ê(P, Q) = f_{q,P}(φ(Q))^((p²-1)/q)
//
// computed with Miller's algorithm plus BKLS denominator elimination
// (vertical lines take values in F_p, which the final exponentiation
// kills because (p-1) | (p²-1)/q).
package pairing

import (
	"errors"
	"math/big"
)

// FP2 is an element a + b·i of F_p² with i² = -1. Elements are immutable
// by convention: operations return fresh values.
type FP2 struct {
	A, B *big.Int
}

// fp2Ctx carries the field modulus for F_p² arithmetic.
type fp2Ctx struct {
	p *big.Int
}

func (c fp2Ctx) newFP2(a, b *big.Int) FP2 {
	return FP2{A: new(big.Int).Mod(a, c.p), B: new(big.Int).Mod(b, c.p)}
}

// One returns the multiplicative identity.
func (c fp2Ctx) one() FP2 {
	return FP2{A: big.NewInt(1), B: big.NewInt(0)}
}

// IsOne reports whether v = 1.
func (v FP2) IsOne() bool {
	return v.A != nil && v.A.Cmp(big.NewInt(1)) == 0 && v.B.Sign() == 0
}

// IsZero reports whether v = 0.
func (v FP2) IsZero() bool {
	return v.A == nil || (v.A.Sign() == 0 && v.B.Sign() == 0)
}

// Equal reports element equality.
func (v FP2) Equal(o FP2) bool {
	return v.A.Cmp(o.A) == 0 && v.B.Cmp(o.B) == 0
}

func (c fp2Ctx) add(x, y FP2) FP2 {
	return c.newFP2(new(big.Int).Add(x.A, y.A), new(big.Int).Add(x.B, y.B))
}

func (c fp2Ctx) sub(x, y FP2) FP2 {
	return c.newFP2(new(big.Int).Sub(x.A, y.A), new(big.Int).Sub(x.B, y.B))
}

// mul computes (a+bi)(c+di) = (ac-bd) + (ad+bc)i.
func (c fp2Ctx) mul(x, y FP2) FP2 {
	ac := new(big.Int).Mul(x.A, y.A)
	bd := new(big.Int).Mul(x.B, y.B)
	ad := new(big.Int).Mul(x.A, y.B)
	bc := new(big.Int).Mul(x.B, y.A)
	return c.newFP2(ac.Sub(ac, bd), ad.Add(ad, bc))
}

// square computes (a+bi)² = (a+b)(a-b) + 2ab·i.
func (c fp2Ctx) square(x FP2) FP2 {
	sum := new(big.Int).Add(x.A, x.B)
	diff := new(big.Int).Sub(x.A, x.B)
	re := sum.Mul(sum, diff)
	im := new(big.Int).Mul(x.A, x.B)
	im.Lsh(im, 1)
	return c.newFP2(re, im)
}

// conj returns the conjugate a - bi.
func (c fp2Ctx) conj(x FP2) FP2 {
	return c.newFP2(new(big.Int).Set(x.A), new(big.Int).Neg(x.B))
}

// inv computes 1/(a+bi) = (a-bi)/(a²+b²).
func (c fp2Ctx) inv(x FP2) (FP2, error) {
	norm := new(big.Int).Mul(x.A, x.A)
	norm.Add(norm, new(big.Int).Mul(x.B, x.B))
	norm.Mod(norm, c.p)
	nInv := new(big.Int).ModInverse(norm, c.p)
	if nInv == nil {
		return FP2{}, errors.New("pairing: FP2 inverse of zero")
	}
	return c.newFP2(
		new(big.Int).Mul(x.A, nInv),
		new(big.Int).Mul(new(big.Int).Neg(x.B), nInv),
	), nil
}

// exp computes x^e by square-and-multiply. Negative exponents are not
// needed by the pairing and are rejected.
func (c fp2Ctx) exp(x FP2, e *big.Int) FP2 {
	if e.Sign() < 0 {
		panic("pairing: negative FP2 exponent")
	}
	acc := c.one()
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc = c.square(acc)
		if e.Bit(i) == 1 {
			acc = c.mul(acc, x)
		}
	}
	return acc
}

// Bytes returns a fixed-width serialisation (A || B, each padded to the
// field width) suitable for hashing pairing outputs into keys.
func (v FP2) Bytes(p *big.Int) []byte {
	bl := (p.BitLen() + 7) / 8
	out := make([]byte, 2*bl)
	v.A.FillBytes(out[:bl])
	v.B.FillBytes(out[bl:])
	return out
}
