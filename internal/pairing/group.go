package pairing

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync/atomic"

	"idgka/internal/hashx"
	"idgka/internal/mathx"
	"idgka/internal/params"
)

// Point is an affine point on E : y² = x³ + x over F_p. The zero value is
// the point at infinity.
type Point struct {
	X, Y *big.Int
}

// Infinity returns the identity element.
func Infinity() Point { return Point{} }

// IsInfinity reports whether the point is the identity.
func (pt Point) IsInfinity() bool { return pt.X == nil || pt.Y == nil }

// Equal reports point equality.
func (pt Point) Equal(o Point) bool {
	if pt.IsInfinity() || o.IsInfinity() {
		return pt.IsInfinity() && o.IsInfinity()
	}
	return pt.X.Cmp(o.X) == 0 && pt.Y.Cmp(o.Y) == 0
}

// Group binds the supersingular curve parameters and implements the group
// law, hashing, and the modified Tate pairing.
type Group struct {
	pp  *params.PairingParams
	ctx fp2Ctx
	// finalExp = (p² - 1) / q, the Tate final exponentiation.
	finalExp *big.Int
	// fixedBase caches the windowed multiples of the generator attached
	// by Precompute; nil selects naive double-and-add. The curve law here
	// is affine (one field inversion per addition), so cutting the
	// operation count cuts inversions one-for-one.
	fixedBase atomic.Pointer[basePointTable]
}

// basePointTable holds windowed multiples of the generator:
// rows[i][j] = (j << (window·i))·G, so k·G is a sum of at most
// ceil(bits/window) precomputed points.
type basePointTable struct {
	window uint
	rows   [][]Point
}

// Precompute builds the fixed-base multiples of the generator, turning
// ScalarBaseMult into ~ceil(|q|/window) point additions with no
// doublings. Idempotent, safe for concurrent use and mathematically
// transparent.
func (g *Group) Precompute() {
	if g.fixedBase.Load() != nil {
		return
	}
	w := uint(mathx.DefaultWindow)
	bits := g.pp.Q.BitLen()
	nrows := (bits + int(w) - 1) / int(w)
	t := &basePointTable{window: w, rows: make([][]Point, nrows)}
	cur := g.Generator()
	for i := 0; i < nrows; i++ {
		row := make([]Point, 1<<w)
		row[0] = Infinity()
		for j := 1; j < 1<<w; j++ {
			row[j] = g.Add(row[j-1], cur)
		}
		t.rows[i] = row
		cur = g.Add(row[1<<w-1], cur)
	}
	g.fixedBase.CompareAndSwap(nil, t)
}

// scalarBaseMultTable evaluates k·G from the precomputed table; k must be
// non-negative and within the table's bit range. The structure mirrors
// internal/ec's table, but this curve's group law is affine, so
// accumulation uses plain Add (one inversion per non-zero digit).
func (g *Group) scalarBaseMultTable(t *basePointTable, k *big.Int) Point {
	acc := Infinity()
	w := int(t.window)
	bits := k.BitLen()
	for i := 0; i*w < bits; i++ {
		if d := mathx.WindowDigit(k, i, w); d != 0 {
			acc = g.Add(acc, t.rows[i][d])
		}
	}
	return acc
}

// NewGroup constructs a Group from validated parameters.
func NewGroup(pp *params.PairingParams) (*Group, error) {
	if err := pp.Validate(); err != nil {
		return nil, fmt.Errorf("pairing: %w", err)
	}
	p2 := new(big.Int).Mul(pp.P, pp.P)
	p2.Sub(p2, mathx.One)
	fe := new(big.Int).Div(p2, pp.Q)
	return &Group{pp: pp, ctx: fp2Ctx{p: pp.P}, finalExp: fe}, nil
}

// Params exposes the underlying parameters.
func (g *Group) Params() *params.PairingParams { return g.pp }

// Generator returns the order-q base point.
func (g *Group) Generator() Point {
	return Point{X: new(big.Int).Set(g.pp.Gx), Y: new(big.Int).Set(g.pp.Gy)}
}

// Order returns q.
func (g *Group) Order() *big.Int { return g.pp.Q }

// IsOnCurve reports whether pt satisfies y² = x³ + x.
func (g *Group) IsOnCurve(pt Point) bool {
	if pt.IsInfinity() {
		return true
	}
	p := g.pp.P
	lhs := new(big.Int).Mul(pt.Y, pt.Y)
	lhs.Mod(lhs, p)
	rhs := new(big.Int).Exp(pt.X, mathx.Three, p)
	rhs.Add(rhs, pt.X)
	rhs.Mod(rhs, p)
	return lhs.Cmp(rhs) == 0
}

// Neg returns -pt.
func (g *Group) Neg(pt Point) Point {
	if pt.IsInfinity() {
		return Infinity()
	}
	return Point{X: new(big.Int).Set(pt.X), Y: new(big.Int).Sub(g.pp.P, pt.Y)}
}

// Add returns a + b on the curve.
func (g *Group) Add(a, b Point) Point {
	pt, _ := g.addWithSlope(a, b)
	return pt
}

// addWithSlope adds two points and returns the chord/tangent slope when it
// exists; the slope is nil for vertical lines and infinity inputs. The
// Miller loop consumes the slope for its line evaluations.
func (g *Group) addWithSlope(a, b Point) (Point, *big.Int) {
	p := g.pp.P
	if a.IsInfinity() {
		return b, nil
	}
	if b.IsInfinity() {
		return a, nil
	}
	var lam *big.Int
	if a.X.Cmp(b.X) == 0 {
		ySum := new(big.Int).Add(a.Y, b.Y)
		ySum.Mod(ySum, p)
		if ySum.Sign() == 0 {
			return Infinity(), nil // vertical line
		}
		// Tangent: λ = (3x² + 1) / 2y.
		num := new(big.Int).Mul(a.X, a.X)
		num.Mul(num, mathx.Three)
		num.Add(num, mathx.One)
		den := new(big.Int).Lsh(a.Y, 1)
		den.Mod(den, p)
		lam = num.Mul(num, new(big.Int).ModInverse(den, p))
	} else {
		num := new(big.Int).Sub(b.Y, a.Y)
		den := new(big.Int).Sub(b.X, a.X)
		den.Mod(den, p)
		lam = num.Mul(num, new(big.Int).ModInverse(den, p))
	}
	lam.Mod(lam, p)
	x3 := new(big.Int).Mul(lam, lam)
	x3.Sub(x3, a.X)
	x3.Sub(x3, b.X)
	x3.Mod(x3, p)
	y3 := new(big.Int).Sub(a.X, x3)
	y3.Mul(y3, lam)
	y3.Sub(y3, a.Y)
	y3.Mod(y3, p)
	return Point{X: x3, Y: y3}, lam
}

// ScalarMult returns k·pt via double-and-add.
func (g *Group) ScalarMult(pt Point, k *big.Int) Point {
	if pt.IsInfinity() || k.Sign() == 0 {
		return Infinity()
	}
	kk := new(big.Int).Set(k)
	if kk.Sign() < 0 {
		kk.Neg(kk)
		pt = g.Neg(pt)
	}
	acc := Infinity()
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc = g.Add(acc, acc)
		if kk.Bit(i) == 1 {
			acc = g.Add(acc, pt)
		}
	}
	return acc
}

// ScalarBaseMult returns k·G, through the fixed-base table when one has
// been precomputed. Scalars are reduced modulo the group order q (the
// generator has order q, so the result is unchanged).
func (g *Group) ScalarBaseMult(k *big.Int) Point {
	if t := g.fixedBase.Load(); t != nil {
		kk := new(big.Int).Mod(k, g.pp.Q)
		if kk.Sign() == 0 {
			return Infinity()
		}
		return g.scalarBaseMultTable(t, kk)
	}
	return g.ScalarMult(g.Generator(), k)
}

// RandScalar draws a uniform scalar in [1, q-1].
func (g *Group) RandScalar(r io.Reader) (*big.Int, error) {
	return mathx.RandScalar(r, g.pp.Q)
}

// HashToGroup maps an arbitrary string onto the order-q subgroup
// (MapToPoint in the paper's operation accounting): try-and-increment onto
// the curve, then clear the cofactor.
func (g *Group) HashToGroup(msg string) (Point, error) {
	p := g.pp.P
	for ctr := uint32(0); ctr < 1<<16; ctr++ {
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		x := hashx.ScalarDigest(hashx.TagMapToPoint, p, []byte(msg), cb[:])
		rhs := new(big.Int).Exp(x, mathx.Three, p)
		rhs.Add(rhs, x)
		rhs.Mod(rhs, p)
		if rhs.Sign() == 0 {
			continue
		}
		if mathx.Legendre(rhs, p) != 1 {
			continue
		}
		y, err := mathx.SqrtMod(rhs, p)
		if err != nil {
			continue
		}
		// Pick the "even" root deterministically.
		if y.Bit(0) == 1 {
			y.Sub(p, y)
		}
		pt := g.ScalarMult(Point{X: x, Y: y}, g.pp.C) // clear cofactor
		if pt.IsInfinity() {
			continue
		}
		return pt, nil
	}
	return Point{}, errors.New("pairing: HashToGroup exhausted counters")
}

// Marshal encodes a point as X || Y with field-width padding; infinity is
// the single byte 0.
func (g *Group) Marshal(pt Point) []byte {
	if pt.IsInfinity() {
		return []byte{0}
	}
	bl := (g.pp.P.BitLen() + 7) / 8
	out := make([]byte, 2*bl)
	pt.X.FillBytes(out[:bl])
	pt.Y.FillBytes(out[bl:])
	return out
}

// Unmarshal decodes a point produced by Marshal, validating membership of
// the curve (not of the subgroup; use CheckSubgroup when required).
func (g *Group) Unmarshal(data []byte) (Point, error) {
	if len(data) == 1 && data[0] == 0 {
		return Infinity(), nil
	}
	bl := (g.pp.P.BitLen() + 7) / 8
	if len(data) != 2*bl {
		return Point{}, fmt.Errorf("pairing: bad point encoding length %d", len(data))
	}
	pt := Point{
		X: new(big.Int).SetBytes(data[:bl]),
		Y: new(big.Int).SetBytes(data[bl:]),
	}
	if pt.X.Cmp(g.pp.P) >= 0 || pt.Y.Cmp(g.pp.P) >= 0 {
		return Point{}, errors.New("pairing: coordinate out of range")
	}
	if !g.IsOnCurve(pt) {
		return Point{}, errors.New("pairing: point not on curve")
	}
	return pt, nil
}

// CheckSubgroup verifies that pt has order dividing q.
func (g *Group) CheckSubgroup(pt Point) error {
	if !g.IsOnCurve(pt) {
		return errors.New("pairing: point not on curve")
	}
	if !g.ScalarMult(pt, g.pp.Q).IsInfinity() {
		return errors.New("pairing: point not in order-q subgroup")
	}
	return nil
}
