package pairing

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"

	"idgka/internal/params"
)

var (
	tgOnce sync.Once
	tg     *Group
)

// testGroup returns a shared Group on the embedded production parameters.
func testGroup(t testing.TB) *Group {
	t.Helper()
	tgOnce.Do(func() {
		g, err := NewGroup(params.Default().Pairing)
		if err != nil {
			panic(err)
		}
		tg = g
	})
	return tg
}

func TestGroupLawBasics(t *testing.T) {
	g := testGroup(t)
	gen := g.Generator()
	if !g.IsOnCurve(gen) {
		t.Fatal("generator off curve")
	}
	if !g.Add(gen, Infinity()).Equal(gen) {
		t.Fatal("G + O != G")
	}
	if !g.Add(gen, g.Neg(gen)).IsInfinity() {
		t.Fatal("G + (-G) != O")
	}
	p2 := g.Add(gen, gen)
	p3a := g.Add(p2, gen)
	p3b := g.ScalarMult(gen, big.NewInt(3))
	if !p3a.Equal(p3b) {
		t.Fatal("2G + G != 3G")
	}
}

func TestGeneratorOrder(t *testing.T) {
	g := testGroup(t)
	if !g.ScalarBaseMult(g.Order()).IsInfinity() {
		t.Fatal("q*G != O")
	}
	if g.ScalarBaseMult(big.NewInt(1)).IsInfinity() {
		t.Fatal("1*G = O")
	}
}

func TestPairNonDegenerate(t *testing.T) {
	g := testGroup(t)
	e, err := g.Pair(g.Generator(), g.Generator())
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	if e.IsOne() {
		t.Fatal("ê(G, G) = 1: pairing degenerate")
	}
	// Output must have order dividing q: e^q == 1.
	if !g.Exp(e, big.NewInt(0)).IsOne() { // e^0 = 1 sanity
		t.Fatal("exp identity broken")
	}
	eq := g.ctx.exp(e.v, g.Order())
	if !eq.IsOne() {
		t.Fatal("pairing output does not have order dividing q")
	}
}

func TestPairBilinearity(t *testing.T) {
	g := testGroup(t)
	gen := g.Generator()
	a, err := g.RandScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.RandScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	aP := g.ScalarMult(gen, a)
	bP := g.ScalarMult(gen, b)

	eAB, err := g.Pair(aP, bP)
	if err != nil {
		t.Fatal(err)
	}
	base, err := g.Pair(gen, gen)
	if err != nil {
		t.Fatal(err)
	}
	ab := new(big.Int).Mul(a, b)
	ab.Mod(ab, g.Order())
	want := g.Exp(base, ab)
	if !eAB.Equal(want) {
		t.Fatal("ê(aP, bP) != ê(P, P)^(ab)")
	}
}

func TestPairSymmetric(t *testing.T) {
	g := testGroup(t)
	gen := g.Generator()
	a, _ := g.RandScalar(rand.Reader)
	b, _ := g.RandScalar(rand.Reader)
	aP := g.ScalarMult(gen, a)
	bP := g.ScalarMult(gen, b)
	e1, err := g.Pair(aP, bP)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := g.Pair(bP, aP)
	if err != nil {
		t.Fatal(err)
	}
	if !e1.Equal(e2) {
		t.Fatal("pairing not symmetric")
	}
}

func TestPairLinearInFirstArg(t *testing.T) {
	g := testGroup(t)
	gen := g.Generator()
	a, _ := g.RandScalar(rand.Reader)
	aP := g.ScalarMult(gen, a)
	e1, err := g.Pair(aP, gen)
	if err != nil {
		t.Fatal(err)
	}
	base, err := g.Pair(gen, gen)
	if err != nil {
		t.Fatal(err)
	}
	if !e1.Equal(g.Exp(base, a)) {
		t.Fatal("ê(aP, Q) != ê(P, Q)^a")
	}
}

func TestPairProductRelation(t *testing.T) {
	// ê(P+Q, R) = ê(P, R)·ê(Q, R): the multiplicative property SOK
	// verification depends on.
	g := testGroup(t)
	gen := g.Generator()
	a, _ := g.RandScalar(rand.Reader)
	b, _ := g.RandScalar(rand.Reader)
	P := g.ScalarMult(gen, a)
	Q := g.ScalarMult(gen, b)
	sum := g.Add(P, Q)
	lhs, err := g.Pair(sum, gen)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := g.Pair(P, gen)
	e2, _ := g.Pair(Q, gen)
	if !lhs.Equal(g.MulGT(e1, e2)) {
		t.Fatal("ê(P+Q, R) != ê(P,R)·ê(Q,R)")
	}
}

func TestPairInfinityIsOne(t *testing.T) {
	g := testGroup(t)
	e, err := g.Pair(Infinity(), g.Generator())
	if err != nil || !e.IsOne() {
		t.Fatal("ê(O, G) should be 1")
	}
	e, err = g.Pair(g.Generator(), Infinity())
	if err != nil || !e.IsOne() {
		t.Fatal("ê(G, O) should be 1")
	}
}

func TestPairRejectsOffCurve(t *testing.T) {
	g := testGroup(t)
	bad := Point{X: big.NewInt(1), Y: big.NewInt(1)}
	if g.IsOnCurve(bad) {
		t.Skip("surprisingly on curve")
	}
	if _, err := g.Pair(bad, g.Generator()); err == nil {
		t.Fatal("off-curve input accepted")
	}
}

func TestInvGT(t *testing.T) {
	g := testGroup(t)
	e, _ := g.Pair(g.Generator(), g.Generator())
	prod := g.MulGT(e, g.InvGT(e))
	if !prod.IsOne() {
		t.Fatal("e · e^-1 != 1")
	}
}

func TestHashToGroup(t *testing.T) {
	g := testGroup(t)
	pt, err := g.HashToGroup("alice")
	if err != nil {
		t.Fatalf("HashToGroup: %v", err)
	}
	if err := g.CheckSubgroup(pt); err != nil {
		t.Fatalf("hashed point: %v", err)
	}
	pt2, err := g.HashToGroup("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Equal(pt2) {
		t.Fatal("HashToGroup not deterministic")
	}
	pt3, err := g.HashToGroup("bob")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Equal(pt3) {
		t.Fatal("distinct identities hashed to same point")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	g := testGroup(t)
	k, _ := g.RandScalar(rand.Reader)
	pt := g.ScalarBaseMult(k)
	enc := g.Marshal(pt)
	dec, err := g.Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(pt) {
		t.Fatal("round trip mismatch")
	}
	// Infinity.
	inf, err := g.Unmarshal(g.Marshal(Infinity()))
	if err != nil || !inf.IsInfinity() {
		t.Fatal("infinity round trip failed")
	}
	// Corrupt.
	enc[5] ^= 0xff
	if _, err := g.Unmarshal(enc); err == nil {
		// A corrupted encoding may land on the curve; flip more to be sure.
		enc[6] ^= 0xff
		if _, err := g.Unmarshal(enc); err == nil {
			t.Log("corrupted point still on curve (rare); not failing")
		}
	}
}

func TestNewGroupRejectsInvalidParams(t *testing.T) {
	good := params.Default().Pairing
	bad := *good
	bad.Q = new(big.Int).Add(good.Q, big.NewInt(2))
	if _, err := NewGroup(&bad); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestGTBytesStable(t *testing.T) {
	g := testGroup(t)
	e, _ := g.Pair(g.Generator(), g.Generator())
	b1 := e.Bytes()
	b2 := e.Bytes()
	if len(b1) != 2*((g.Params().P.BitLen()+7)/8) {
		t.Fatalf("GT encoding length %d", len(b1))
	}
	if string(b1) != string(b2) {
		t.Fatal("GT bytes unstable")
	}
}

func BenchmarkPair(b *testing.B) {
	g := testGroup(b)
	gen := g.Generator()
	k, _ := g.RandScalar(rand.Reader)
	aP := g.ScalarMult(gen, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Pair(aP, gen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashToGroup(b *testing.B) {
	g := testGroup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.HashToGroup("bench-identity"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarMult(b *testing.B) {
	g := testGroup(b)
	k, _ := g.RandScalar(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ScalarBaseMult(k)
	}
}
