package pairing

import (
	"crypto/rand"
	"math/big"
	"testing"

	"idgka/internal/params"
)

// TestScalarBaseMultPrecomputeTransparent cross-checks the fixed-base
// table against naive double-and-add on random and edge scalars. A fresh
// Group is built so the shared test group keeps exercising the naive path.
func TestScalarBaseMultPrecomputeTransparent(t *testing.T) {
	g, err := NewGroup(params.Default().Pairing)
	if err != nil {
		t.Fatal(err)
	}
	q := g.Order()
	scalars := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(q, big.NewInt(1)),
		q,
		new(big.Int).Add(q, big.NewInt(7)), // reduced before lookup
	}
	for i := 0; i < 10; i++ {
		k, err := g.RandScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		scalars = append(scalars, k)
	}
	naive := make([]Point, len(scalars))
	for i, k := range scalars {
		naive[i] = g.ScalarMult(g.Generator(), new(big.Int).Mod(k, q))
	}
	g.Precompute()
	if g.fixedBase.Load() == nil {
		t.Fatal("no table after Precompute")
	}
	g.Precompute() // idempotent
	for i, k := range scalars {
		got := g.ScalarBaseMult(k)
		if !got.Equal(naive[i]) {
			t.Fatalf("table ScalarBaseMult diverges for k=%v", k)
		}
		if !got.IsInfinity() && !g.IsOnCurve(got) {
			t.Fatalf("table result off-curve for k=%v", k)
		}
	}
}

func BenchmarkPairingScalarBaseMultNaive(b *testing.B) {
	g := testGroup(b)
	k, _ := g.RandScalar(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ScalarMult(g.Generator(), k)
	}
}

func BenchmarkPairingScalarBaseMultFixedBase(b *testing.B) {
	g, err := NewGroup(params.Default().Pairing)
	if err != nil {
		b.Fatal(err)
	}
	g.Precompute()
	k, _ := g.RandScalar(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ScalarBaseMult(k)
	}
}
