// Package lockcycle reports cycles in the global lock-acquisition
// graph as potential deadlocks. The shared lock engine (analysis.Locks)
// records an edge A → B wherever the program acquires lock B while
// (transitively, through any call chain) holding lock A, with locks
// named at the type level; an elementary cycle in that graph is the
// classic ABBA deadlock — two call chains that take the same pair of
// locks in opposite orders — and a self-edge is a re-acquisition of a
// non-reentrant mutex (e.g. recursion that re-locks, the PR 5 bug
// shape). The diagnostic spells out every edge of the cycle with the
// function and call chain that witnesses it, so both halves of the race
// are in the message.
//
// The implementer union behind interface calls over-approximates, so a
// reported cycle can be infeasible (the two chains can never run against
// the same lock instances, or an implementer is never registered).
// Vetted false cycles carry //gkalint:lockcycle <why> on the witnessing
// line. Operators can render the whole graph with gkalint -lockgraph.
package lockcycle

import (
	"idgka/internal/lint/analysis"
)

// Analyzer reports elementary cycles in the whole-program
// lock-acquisition graph.
var Analyzer = &analysis.Analyzer{
	Name:       "lockcycle",
	Doc:        "the global lock-acquisition graph must stay acyclic: a cycle is two call chains that can deadlock each other (ABBA), a self-edge a re-acquired non-reentrant mutex",
	WaiverVerb: "lockcycle",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Prog.PackageOf(pass.Pkg)
	if pkg == nil {
		return nil
	}
	for _, c := range pass.Prog.Locks().Cycles() {
		// Each cycle is reported exactly once, in the package that owns
		// its first (deterministically ordered) witnessing edge.
		e := c.Edges[0]
		if e.Pkg != pkg {
			continue
		}
		pass.Reportf(e.Pos, "lock cycle %s — %s; break the acquisition order or waive with //gkalint:lockcycle <reason>", c.Key, c.Describe())
	}
	return nil
}
