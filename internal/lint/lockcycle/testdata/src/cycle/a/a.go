// Package a holds three deadlock shapes for the cycle detector: the
// cross-package ABBA (A locks its mutex, calls into b, which calls back
// through an interface into a), the recursion self-cycle (a method that
// re-locks its own mutex through recursion), and a vetted false cycle
// that carries the //gkalint:lockcycle waiver.
package a

import (
	"sync"

	"cycle/b"
)

// A implements b.Poker and holds its own lock around everything.
type A struct {
	mu sync.Mutex
	b  *b.B
}

// One: a.mu is held while b.Mu is acquired (through Two) AND while a.mu
// itself is re-acquired (through Two → Poke) — one witnessing line, two
// cycles.
func (a *A) One() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.Two() // want `lock cycle cycle/a\.A\.mu → cycle/a\.A\.mu` `lock cycle cycle/a\.A\.mu → cycle/b\.B\.Mu → cycle/a\.A\.mu`
}

// Poke is the interface implementation package b calls back into.
func (a *A) Poke() {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// R is the recursion shape: Relock re-enters itself with the
// non-reentrant mutex still held.
type R struct {
	mu sync.Mutex
	n  int
}

func (r *R) Relock() {
	r.mu.Lock()
	if r.n > 0 {
		r.n--
		r.Relock() // want `lock cycle cycle/a\.R\.mu → cycle/a\.R\.mu`
	}
	r.mu.Unlock()
}

// P/Q form a cycle on paper that production ordering makes infeasible —
// the vetted-false-cycle case the waiver verb exists for.
type P struct {
	mu sync.Mutex
	q  *Q
}

type Q struct {
	mu sync.Mutex
	p  *P
}

func (p *P) Left() {
	p.mu.Lock()
	defer p.mu.Unlock()
	//gkalint:lockcycle construction order pins P-before-Q in production; the Right path only runs in teardown after workers stop
	p.q.Grab()
}

func (q *Q) Grab() {
	q.mu.Lock()
	defer q.mu.Unlock()
}

func (q *Q) Right() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.p.Hold()
}

func (p *P) Hold() {
	p.mu.Lock()
	defer p.mu.Unlock()
}
