// Package b is the far side of the cross-package ABBA fixture: it locks
// its own mutex and then calls back through an interface, which the
// engine resolves to the implementer in package a — closing the cycle
// without an import cycle.
package b

import "sync"

// Poker is the callback interface package a implements.
type Poker interface {
	Poke()
}

// B locks Mu around its callback.
type B struct {
	Mu sync.Mutex
	P  Poker
}

// Two acquires b's lock and then dispatches through the interface.
func (b *B) Two() {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	b.P.Poke()
}
