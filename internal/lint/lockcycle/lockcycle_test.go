package lockcycle_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/lockcycle"
)

func TestLockCycle(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockcycle.Analyzer, "cycle/...")
}
