package lint_test

import (
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"idgka/internal/lint"
)

// suiteBudget bounds the whole-repo sweep's wall-clock time. The
// whole-program layer (call graph + bounded taint fixpoint) must stay
// cheap enough to run on every push; if the suite outgrows this, fix
// the engine, don't raise the budget.
const suiteBudget = 2 * time.Minute

// TestRepoIsClean is the meta-test the CI lint-gkalint job mirrors: the
// whole repository, with its deliberate waivers, must pass the full
// analyzer suite. A failure here means either a real regression of one
// of the encoded invariants or a new deliberate exception that needs a
// justified //gkalint waiver.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	start := time.Now()
	findings, err := lint.Check(root, "./...")
	if err != nil {
		t.Fatalf("lint.Check: %v", err)
	}
	if elapsed := time.Since(start); elapsed > suiteBudget {
		t.Errorf("suite took %v, over the %v budget — the whole-program pass has regressed", elapsed, suiteBudget)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("%d violation(s); fix them or waive with a justified //gkalint comment", len(findings))
	}
}
