package lint_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"idgka/internal/lint"
)

// TestRepoIsClean is the meta-test the CI lint-gkalint job mirrors: the
// whole repository, with its deliberate waivers, must pass the full
// analyzer suite. A failure here means either a real regression of one
// of the encoded invariants or a new deliberate exception that needs a
// justified //gkalint waiver.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	findings, err := lint.Check(root, "./...")
	if err != nil {
		t.Fatalf("lint.Check: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("%d violation(s); fix them or waive with a justified //gkalint comment", len(findings))
	}
}
