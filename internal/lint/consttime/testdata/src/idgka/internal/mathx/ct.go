// Package mathx replicates the repo's crypto hot-path import path so
// the consttime analyzer's scoping applies to the fixture.
package mathx

// Scalar is fixture key material.
type Scalar struct {
	//gkalint:secret
	K []byte
}

// Select branches and table-indexes on secret bytes — the classic
// sliding-window leak shape.
func Select(s Scalar, table []uint32) uint32 {
	if s.K[0]&1 == 1 { // want `secret-dependent branch on idgka/internal/mathx\.Scalar\.K`
		return table[s.K[1]] // want `secret-dependent table index on idgka/internal/mathx\.Scalar\.K`
	}
	return 0
}

// Iterate loops over the secret: the bound leaks its length and the
// body's trip pattern its content.
func Iterate(s Scalar) int {
	n := 0
	for _, b := range s.K { // want `secret-dependent loop bound on idgka/internal/mathx\.Scalar\.K`
		n += int(b)
	}
	return n
}

// inner never mentions a marked name itself: the secret arrives only
// through Outer's call, carried by the forward pass — the finding the
// old single-function suite could not see.
func inner(k []byte) int {
	if k[0] == 0 { // want `secret-dependent branch on idgka/internal/mathx\.Scalar\.K`
		return 1
	}
	return 0
}

// Outer feeds the secret across the call edge.
func Outer(s Scalar) int {
	return inner(s.K)
}

// Validate stays clean: nil-ness is presence, not content.
func Validate(s Scalar) bool {
	if s.K == nil {
		return false
	}
	return true
}

// Waived is the sanctioned escape hatch for deliberate variable-time
// code.
func Waived(s Scalar, table []uint32) uint32 {
	//gkalint:vartime fixture justification for a deliberate branch
	if s.K[0] == 0 {
		return table[0]
	}
	return 1
}

// Public control flow stays silent.
func Public(n int, table []uint32) uint32 {
	if n > 0 {
		return table[n]
	}
	return 0
}
