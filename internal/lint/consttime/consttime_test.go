package consttime_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/consttime"
)

func TestConstTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), consttime.Analyzer, "idgka/...")
}
