// Package consttime enforces constant-time discipline in the crypto hot
// paths: within internal/mathx, internal/bdkey and internal/sigs/...,
// control flow and memory addressing must not depend on secret values.
// A branch on a private exponent's bits, a loop bounded by key material,
// or a table index derived from a secret is an instruction-cache /
// branch-predictor side channel — the classic leak shape in modular
// exponentiation code.
//
// Secrets are the same roots the secretflow analyzer uses (the builtin
// list plus //gkalint:secret markers), carried interprocedurally by the
// shared taint engine: the forward pass marks every parameter that any
// caller, in any package, feeds a secret — so the engine knows that
// mathx.ExpElem's exponent is the engine layer's Group.R long before
// mathx itself mentions a marked field. Within a scoped function the
// analyzer reports:
//
//   - an if condition or switch tag mentioning a secret-derived value
//     (secret-dependent branch);
//   - a for condition or range operand mentioning one (secret-dependent
//     loop bound — iterating a secret's bits leaks its length and
//     pattern);
//   - a slice/array/map index mentioning one (secret-dependent table
//     lookup — data-cache addressing leaks the digit).
//
// The repo's math/big-backed fallbacks are deliberately variable-time
// (math/big itself is, irreducibly); those sites carry a justified
// //gkalint:vartime <why> waiver so the exception is visible in the
// diff, not silent.
package consttime

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"idgka/internal/lint/analysis"
)

// scopedPrefixes are the crypto hot-path packages (and their fixture
// replicas under analysistest trees) where the discipline applies.
var scopedPrefixes = []string{
	"idgka/internal/mathx",
	"idgka/internal/bdkey",
	"idgka/internal/sigs",
}

// Analyzer reports secret-dependent control flow and indexing in the
// crypto hot paths.
var Analyzer = &analysis.Analyzer{
	Name:       "consttime",
	Doc:        "crypto hot paths must not branch, loop, or index on secret-derived values; deliberate variable-time fallbacks carry //gkalint:vartime (PR 9)",
	WaiverVerb: "vartime",
	Run:        run,
}

func scoped(path string) bool {
	for _, p := range scopedPrefixes {
		if analysis.PathWithin(path, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !scoped(pass.Pkg.Path()) {
		return nil
	}
	taint := pass.Prog.Taint()
	pkg := pass.Prog.PackageOf(pass.Pkg)
	if pkg == nil {
		return nil
	}
	for _, fn := range pass.Prog.Funcs() {
		if fn.Pkg != pkg || fn.Decl == nil || fn.Body() == nil {
			continue
		}
		checkFunc(pass, taint.FuncTaint(fn), fn)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, q *analysis.FuncTaint, fn *analysis.Func) {
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			report(pass, q, n.Cond, n.Pos(), "branch")
		case *ast.SwitchStmt:
			if n.Tag != nil {
				report(pass, q, n.Tag, n.Pos(), "branch")
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				report(pass, q, n.Cond, n.Pos(), "loop bound")
			}
		case *ast.RangeStmt:
			report(pass, q, n.X, n.Pos(), "loop bound")
		case *ast.IndexExpr:
			if indexable(pass, n.X) {
				report(pass, q, n.Index, n.Pos(), "table index")
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, q *analysis.FuncTaint, e ast.Expr, pos token.Pos, kind string) {
	roots := q.Mentions(e)
	if len(roots) == 0 {
		return
	}
	pass.Reportf(pos, "secret-dependent %s on %s in a crypto hot path; make it constant-time or waive with //gkalint:vartime <reason>",
		kind, strings.Join(roots, ", "))
}

// indexable reports whether the indexed operand is data memory (slice,
// array, map) rather than a generic instantiation.
func indexable(pass *analysis.Pass, x ast.Expr) bool {
	t := pass.Info.Types[x].Type
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map:
		return true
	}
	return false
}
