// Package load turns Go packages into the type-checked form the lint
// framework analyzes, without any dependency outside the standard
// library. Two loaders cover the two call sites: Packages resolves `go
// list` patterns against the enclosing module, type-checking each target
// from source with its imports satisfied from the build cache's export
// data (offline, no module downloads); Source type-checks a GOPATH-style
// fixture tree (testdata/src) for analysistest, with standard-library
// imports satisfied by the source importer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"idgka/internal/lint/analysis"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Name       string
}

// Packages loads and type-checks the packages matching the go-list
// patterns (e.g. "./...") rooted at dir. Only non-test files are
// analyzed; imports — standard library and module-internal alike — are
// resolved from compiler export data produced by `go list -export`, so
// the whole load works offline and type-checks each target exactly once.
func Packages(dir string, patterns ...string) ([]*analysis.Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Name",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*analysis.Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &analysis.Package{
			PkgPath: t.ImportPath,
			Fset:    fset,
			Files:   files,
			Types:   tp,
			Info:    info,
		})
	}
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
