package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"idgka/internal/lint/analysis"
)

// SourceLoader type-checks packages out of GOPATH-style source roots —
// the layout analysistest fixtures use (testdata/src/<importpath>/*.go).
// Imports resolving inside a root load recursively from source (with
// comments, so fixture annotations are visible to the annotation index);
// everything else falls back to the standard library's source importer.
type SourceLoader struct {
	Fset  *token.FileSet
	Roots []string

	std  types.Importer
	pkgs map[string]*analysis.Package
}

// NewSourceLoader builds a loader over GOPATH-style roots.
func NewSourceLoader(roots ...string) *SourceLoader {
	fset := token.NewFileSet()
	return &SourceLoader{
		Fset:  fset,
		Roots: roots,
		std:   importer.ForCompiler(fset, "source", nil),
		pkgs:  map[string]*analysis.Package{},
	}
}

// Loaded returns every package loaded from the roots so far (targets and
// fixture dependencies), for annotation indexing.
func (l *SourceLoader) Loaded() []*analysis.Package {
	var out []*analysis.Package
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out
}

// Load type-checks the package at the import path, resolving it against
// the loader's roots.
func (l *SourceLoader) Load(path string) (*analysis.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := ""
	for _, root := range l.Roots {
		cand := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(cand); err == nil && st.IsDir() {
			dir = cand
			break
		}
	}
	if dir == "" {
		return nil, fmt.Errorf("package %q not found under %v", path, l.Roots)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("package %q: no Go files in %s", path, dir)
	}
	info := newInfo()
	conf := types.Config{Importer: (*sourceImporter)(l)}
	tp, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &analysis.Package{PkgPath: path, Fset: l.Fset, Files: files, Types: tp, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// sourceImporter adapts the loader into a types.Importer: fixture-tree
// paths load recursively, anything else defers to the stdlib source
// importer.
type sourceImporter SourceLoader

func (si *sourceImporter) Import(path string) (*types.Package, error) {
	l := (*SourceLoader)(si)
	for _, root := range l.Roots {
		if st, err := os.Stat(filepath.Join(root, filepath.FromSlash(path))); err == nil && st.IsDir() {
			p, err := l.Load(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	return l.std.Import(path)
}
