// Package lint assembles the gkalint analyzer suite: the repo's crypto,
// locking and lifecycle invariants — each one a bug class a previous PR
// fixed by hand — encoded as mechanical checks so CI catches the next
// regression at review time instead of under -race in production.
//
// Run it locally with
//
//	go run ./cmd/gkalint ./...
//
// See each analyzer's package documentation for the invariant it
// enforces and the waiver syntax; docs/STATIC-ANALYSIS.md has the
// overview.
package lint

import (
	"idgka/internal/lint/analysis"
	"idgka/internal/lint/blockunderlock"
	"idgka/internal/lint/boundedwait"
	"idgka/internal/lint/consttime"
	"idgka/internal/lint/doccomment"
	"idgka/internal/lint/goroleak"
	"idgka/internal/lint/load"
	"idgka/internal/lint/lockcycle"
	"idgka/internal/lint/lockorder"
	"idgka/internal/lint/montdomain"
	"idgka/internal/lint/secretflow"
	"idgka/internal/lint/sidroute"
)

// Suite is every gkalint analyzer, in reporting order.
var Suite = []*analysis.Analyzer{
	blockunderlock.Analyzer,
	boundedwait.Analyzer,
	consttime.Analyzer,
	doccomment.Analyzer,
	goroleak.Analyzer,
	lockcycle.Analyzer,
	lockorder.Analyzer,
	montdomain.Analyzer,
	secretflow.Analyzer,
	sidroute.Analyzer,
}

// Check loads the packages matching the go-list patterns rooted at dir
// and runs the whole suite, returning the surviving (un-waived)
// findings.
func Check(dir string, patterns ...string) ([]analysis.Finding, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(pkgs, Suite)
}

// A Sweep is one full-suite run with everything the richer front ends
// need: active findings, waiver-suppressed findings with their
// justifications (for SARIF), and the whole-program lock engine (for the
// -lockgraph DOT dump).
type Sweep struct {
	// Active is the post-waiver findings — what Check returns.
	Active []analysis.Finding
	// Suppressed is the findings covered by justified waivers.
	Suppressed []analysis.Finding
	// Prog is the whole-program view of the swept packages.
	Prog *analysis.Program
}

// Run executes the full suite like Check, but retains the suppressed
// findings and the program view.
func Run(dir string, patterns ...string) (*Sweep, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	all, prog, err := analysis.RunAll(pkgs, pkgs, Suite)
	if err != nil {
		return nil, err
	}
	s := &Sweep{Prog: prog}
	for _, f := range all {
		if f.Suppressed {
			s.Suppressed = append(s.Suppressed, f)
		} else {
			s.Active = append(s.Active, f)
		}
	}
	return s, nil
}
