package lockorder_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "a")
}

// TestHeldSetRegressions pins the engine's held-set tracking: deferred
// unlocks, early-return branch copies, RLock/Lock write asymmetry, and
// recursion convergence.
func TestHeldSetRegressions(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "regress")
}

// TestCrossPackageGuards runs the multi-package fixture: the guard is
// declared (and the lock taken, via a helper) in lockfix/store while the
// guarded field is touched from lockfix/svc.
func TestCrossPackageGuards(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "lockfix/...")
}
