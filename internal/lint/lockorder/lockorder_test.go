package lockorder_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "a")
}
