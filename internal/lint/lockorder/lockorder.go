// Package lockorder mechanically checks the PR 5 locking discipline
// around mutex-guarded state:
//
//   - struct fields declared guarded (a //gkalint:guard <path> marker
//     inside the struct, covering every field after it until
//     //gkalint:guard -) may only be read or written while the named
//     mutex is held, where <path> is spelled relative to the struct
//     value (guard "mb.mu" on a Session field means s.mb.mu must be
//     held to touch s.field);
//   - a method whose name ends in Locked runs under the caller's lock:
//     calling one without holding a lock on the receiver's path is a
//     race, and re-locking the receiver's mutex inside one is a
//     deadlock;
//   - a callable marked //gkalint:callback (the peer-down handler and
//     its wrappers) is a user callback that may re-enter the member —
//     invoking it while any lock is held re-creates the PR 5
//     re-entrancy deadlock.
//
// The lock tracker is a source-order scan: Lock()/RLock() on a
// sync.Mutex/RWMutex adds the mutex expression to the held set,
// Unlock()/RUnlock() removes it, nested control-flow blocks work on
// copies so an early-return Unlock inside an if-branch does not leak
// into the fallthrough path. Function literals are skipped (their lock
// state at call time is unknowable statically), as are fields of values
// freshly constructed in the same function (not yet shared, so not yet
// guarded). Sites the scan cannot see — e.g. a lock taken by a helper —
// carry //gkalint:unlocked <why>.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"idgka/internal/lint/analysis"
)

// Analyzer reports guarded-field access without the documented lock,
// Locked-suffix contract violations, and callbacks invoked under a lock.
var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "mutex-guarded fields need their documented lock held; *Locked methods run under the caller's lock; user callbacks only fire after unlock (PR 5)",
	WaiverVerb: "unlocked",
	Run:        run,
}

const guardVerb = "gkalint:guard"

// guardSet maps "pkgpath.Type" -> field name -> guard path relative to
// the struct value (e.g. "mu", "mb.mu").
type guardSet map[string]map[string]string

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &scanner{pass: pass, guards: guards, fd: fd, fresh: map[types.Object]bool{}}
			s.stmts(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

// collectGuards reads //gkalint:guard markers out of struct bodies. A
// marker guards every field declared after it (in source order) until a
// //gkalint:guard - marker ends the region.
func collectGuards(pass *analysis.Pass) guardSet {
	guards := guardSet{}
	for _, f := range pass.Files {
		// Comments inside a struct body may be floating (attached to the
		// file, not a field), so index them all by position.
		type marker struct {
			pos  token.Pos
			path string
		}
		var markers []marker
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "gkalint:guard") {
					continue
				}
				path := strings.TrimSpace(strings.TrimPrefix(text, "gkalint:guard"))
				markers = append(markers, marker{pos: c.Pos(), path: path})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			typeName := pass.Pkg.Path() + "." + ts.Name.Name
			for _, fld := range st.Fields.List {
				// The innermost marker before this field wins.
				cur := ""
				for _, m := range markers {
					if m.pos > st.Struct && m.pos < fld.Pos() {
						cur = m.path
					}
				}
				if cur == "" || cur == "-" {
					continue
				}
				if guards[typeName] == nil {
					guards[typeName] = map[string]string{}
				}
				for _, name := range fld.Names {
					guards[typeName][name.Name] = cur
				}
			}
			return true
		})
	}
	return guards
}

// scanner walks one function body in source order, tracking held locks.
type scanner struct {
	pass   *analysis.Pass
	guards guardSet
	fd     *ast.FuncDecl
	fresh  map[types.Object]bool
}

// underCallerLock reports whether the scanned function itself runs under the
// caller's lock (the *Locked naming contract).
func (s *scanner) underCallerLock() bool { return strings.HasSuffix(s.fd.Name.Name, "Locked") }

// recvName returns the receiver's binding name, or "".
func (s *scanner) recvName() string {
	if s.fd.Recv == nil || len(s.fd.Recv.List) == 0 || len(s.fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return s.fd.Recv.List[0].Names[0].Name
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k := range held {
		c[k] = true
	}
	return c
}

func (s *scanner) stmts(list []ast.Stmt, held map[string]bool) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

func (s *scanner) stmt(st ast.Stmt, held map[string]bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if mutex, op, ok := lockOp(s.pass, st.X); ok {
			s.transition(mutex, op, st.Pos(), held)
			return
		}
		s.expr(st.X, held)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			s.expr(r, held)
		}
		for _, l := range st.Lhs {
			s.expr(l, held)
		}
		if st.Tok == token.DEFINE {
			s.trackFresh(st)
		}
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held for the remainder of
		// the scan — which is exactly the runtime behavior until return.
		if _, _, ok := lockOp(s.pass, st.Call); ok {
			return
		}
		s.expr(st.Call, held)
	case *ast.GoStmt:
		// The goroutine body runs later, without this function's locks.
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			gs := &scanner{pass: s.pass, guards: s.guards, fd: s.fd, fresh: s.fresh}
			gs.stmts(fl.Body.List, map[string]bool{})
		}
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		s.stmts(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
	case *ast.BlockStmt:
		s.stmts(st.List, held)
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		s.stmts(st.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		s.expr(st.X, held)
		s.stmts(st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		for _, cc := range st.Body.List {
			s.stmts(cc.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			s.stmts(cc.(*ast.CaseClause).Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			s.stmts(cc.(*ast.CommClause).Body, copyHeld(held))
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	case *ast.IncDecStmt:
		s.expr(st.X, held)
	case *ast.SendStmt:
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, held)
					}
				}
			}
		}
	}
}

// transition applies a Lock/Unlock statement to the held set, checking
// the Locked-suffix deadlock rule on the way.
func (s *scanner) transition(mutex, op string, pos token.Pos, held map[string]bool) {
	switch op {
	case "Lock", "RLock":
		if s.underCallerLock() && s.recvName() != "" && strings.HasPrefix(mutex, s.recvName()+".") {
			s.pass.Reportf(pos, "%s runs under the caller's lock (Locked suffix) but locks %s itself: deadlock", s.fd.Name.Name, mutex)
		}
		held[mutex] = true
	case "Unlock", "RUnlock":
		delete(held, mutex)
	}
}

// lockOp matches x.mu.Lock()-shaped calls on sync mutexes.
func lockOp(pass *analysis.Pass, e ast.Expr) (mutex, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if !analysis.IsMutex(pass.Info.Types[sel.X].Type) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// trackFresh records locals bound to values constructed in this
// function: their fields are not shared yet, so guards do not apply.
func (s *scanner) trackFresh(st *ast.AssignStmt) {
	for i, l := range st.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || i >= len(st.Rhs) {
			continue
		}
		switch r := ast.Unparen(st.Rhs[i]).(type) {
		case *ast.CompositeLit:
		case *ast.UnaryExpr:
			if _, lit := r.X.(*ast.CompositeLit); r.Op != token.AND || !lit {
				continue
			}
		case *ast.CallExpr:
			if obj := analysis.CalleeObj(s.pass.Info, r); obj == nil || (obj.Name() != "new" && obj.Name() != "make") {
				continue
			}
		default:
			continue
		}
		if obj := s.pass.Info.Defs[id]; obj != nil {
			s.fresh[obj] = true
		}
	}
}

// expr checks all accesses and calls inside one expression.
func (s *scanner) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // lock state at call time is unknowable
		case *ast.CallExpr:
			s.checkCall(n, held)
		case *ast.SelectorExpr:
			s.checkAccess(n, held)
		}
		return true
	})
}

// checkCall enforces the *Locked calling contract and the
// callback-after-unlock rule.
func (s *scanner) checkCall(call *ast.CallExpr, held map[string]bool) {
	// User callbacks must not run under any lock.
	if key := s.callbackKey(call); key != "" && len(held) > 0 {
		s.pass.Reportf(call.Pos(), "user callback %s invoked while a lock is held (%s); release the lock first — the callback may re-enter and deadlock", key, oneOf(held))
		return
	}
	// fooLocked() requires the caller to hold a lock on foo's owner.
	name := calleeName(call)
	if !strings.HasSuffix(name, "Locked") || s.underCallerLock() {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		base := types.ExprString(sel.X)
		for m := range held {
			if strings.HasPrefix(m, base+".") {
				return
			}
		}
		s.pass.Reportf(call.Pos(), "%s.%s requires the caller to hold %s's lock (Locked suffix), but no lock on that path is held", base, name, base)
		return
	}
	if len(held) == 0 {
		s.pass.Reportf(call.Pos(), "%s requires the caller to hold a lock (Locked suffix), but none is held", name)
	}
}

// checkAccess enforces guarded-field access.
func (s *scanner) checkAccess(sel *ast.SelectorExpr, held map[string]bool) {
	fld, owner, ok := analysis.FieldOf(s.pass.Info, sel)
	if !ok {
		return
	}
	guard := s.guards[owner][fld.Name()]
	if guard == "" {
		return
	}
	if s.underCallerLock() {
		return // runs under the caller's lock by contract
	}
	if id := rootIdent(sel.X); id != nil {
		if obj := s.pass.Info.Uses[id]; obj != nil && s.fresh[obj] {
			return // freshly constructed, not shared yet
		}
	}
	required := types.ExprString(sel.X) + "." + guard
	if held[required] {
		return
	}
	s.pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, which is not held here; lock it or waive with //gkalint:unlocked <reason>", types.ExprString(sel.X), fld.Name(), required)
}

// callbackKey resolves a call to an annotated callback field or method.
func (s *scanner) callbackKey(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if fld, owner, ok := analysis.FieldOf(s.pass.Info, sel); ok {
		if key := owner + "." + fld.Name(); s.pass.Index.Callbacks[key] {
			return key
		}
		return ""
	}
	if selection, ok := s.pass.Info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
		t := selection.Recv()
		if p, okp := t.Underlying().(*types.Pointer); okp {
			t = p.Elem()
		}
		if key := analysis.NamedName(t) + "." + sel.Sel.Name; s.pass.Index.Callbacks[key] {
			return key
		}
	}
	return ""
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func oneOf(held map[string]bool) string {
	for m := range held {
		return m
	}
	return ""
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
