// Package lockorder mechanically checks the PR 5 locking discipline
// around mutex-guarded state:
//
//   - struct fields declared guarded (a //gkalint:guard <path> marker
//     inside the struct, covering every field after it until
//     //gkalint:guard -) may only be read or written while the named
//     mutex is held, where <path> is spelled relative to the struct
//     value (guard "mb.mu" on a Session field means s.mb.mu must be
//     held to touch s.field); writing such a field under only an RLock
//     is also a race;
//   - a method whose name ends in Locked runs under the caller's lock:
//     calling one without holding a lock on the receiver's path is a
//     race, and re-locking the receiver's mutex inside one is a
//     deadlock;
//   - a callable marked //gkalint:callback (the peer-down handler and
//     its wrappers) is a user callback that may re-enter the member —
//     invoking it while any lock is held re-creates the PR 5
//     re-entrancy deadlock.
//
// v2 rides the shared interprocedural lock engine (analysis.Locks): the
// held set is maintained by the whole-program walker, so a lock taken by
// a helper (s.lockMember()), released by a bound method value, or held
// across an in-place function literal is visible here — the sites that
// previously forced //gkalint:unlocked waivers are now proven. Guard
// declarations come from the cross-package annotation index, so a guard
// declared in one package protects accesses from every other package.
// Fields of values freshly constructed in the same function stay exempt
// (not yet shared, so not yet guarded), as do bodies of *Locked methods
// (under the caller's lock by contract).
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"idgka/internal/lint/analysis"
)

// Analyzer reports guarded-field access without the documented lock,
// Locked-suffix contract violations, and callbacks invoked under a lock.
var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "mutex-guarded fields need their documented lock held (interprocedurally); *Locked methods run under the caller's lock; user callbacks only fire after unlock (PR 5)",
	WaiverVerb: "unlocked",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Prog.PackageOf(pass.Pkg)
	if pkg == nil {
		return nil
	}
	locks := pass.Prog.Locks()
	for _, fn := range pass.Prog.Funcs() {
		if fn.Pkg != pkg || fn.Lit != nil || fn.Body() == nil {
			continue // literals are reached through their enclosing walk
		}
		s := &scanner{
			pass:   pass,
			fn:     fn,
			fresh:  map[types.Object]bool{},
			writes: map[ast.Node]bool{},
		}
		locks.Walk(fn, nil, &analysis.LockVisitor{
			Node:    s.node,
			Acquire: s.acquire,
			Call:    s.checkCall,
		})
	}
	return nil
}

// scanner holds one declared function's per-walk state.
type scanner struct {
	pass   *analysis.Pass
	fn     *analysis.Func
	fresh  map[types.Object]bool // locals bound to freshly constructed values
	writes map[ast.Node]bool     // selector nodes that are write targets
}

// underCallerLock reports whether the walked function itself runs under
// the caller's lock (the *Locked naming contract).
func (s *scanner) underCallerLock() bool {
	return strings.HasSuffix(s.fn.Decl.Name.Name, "Locked")
}

// recvName returns the receiver's binding name, or "".
func (s *scanner) recvName() string {
	fd := s.fn.Decl
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// node is the walker hook: it marks write targets and fresh locals when
// a statement comes by, and checks guarded accesses on selectors.
func (s *scanner) node(n ast.Node, held analysis.HeldSet) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			s.markWrite(l)
		}
		if n.Tok == token.DEFINE {
			s.trackFresh(n)
		}
	case *ast.IncDecStmt:
		s.markWrite(n.X)
	case *ast.SelectorExpr:
		s.checkAccess(n, held)
	}
	return true
}

// markWrite records the selector a write lands on, unwrapping indexing
// and dereferences (m.counts[k]++ writes m.counts).
func (s *scanner) markWrite(e ast.Expr) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			s.writes[x] = true
			return
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return
		}
	}
}

// acquire enforces the Locked-suffix deadlock rule: a method that runs
// under the caller's lock must not re-lock the receiver's mutex.
func (s *scanner) acquire(mutex, canon string, mode analysis.LockMode, pos token.Pos, held analysis.HeldSet) {
	if s.underCallerLock() && s.recvName() != "" && strings.HasPrefix(mutex, s.recvName()+".") {
		s.pass.Reportf(pos, "%s runs under the caller's lock (Locked suffix) but locks %s itself: deadlock", s.fn.Decl.Name.Name, mutex)
	}
}

// trackFresh records locals bound to values constructed in this
// function: their fields are not shared yet, so guards do not apply.
func (s *scanner) trackFresh(st *ast.AssignStmt) {
	for i, l := range st.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || i >= len(st.Rhs) {
			continue
		}
		switch r := ast.Unparen(st.Rhs[i]).(type) {
		case *ast.CompositeLit:
		case *ast.UnaryExpr:
			if _, lit := r.X.(*ast.CompositeLit); r.Op != token.AND || !lit {
				continue
			}
		case *ast.CallExpr:
			if obj := analysis.CalleeObj(s.pass.Info, r); obj == nil || (obj.Name() != "new" && obj.Name() != "make") {
				continue
			}
		default:
			continue
		}
		if obj := s.pass.Info.Defs[id]; obj != nil {
			s.fresh[obj] = true
		}
	}
}

// checkCall enforces the *Locked calling contract and the
// callback-after-unlock rule.
func (s *scanner) checkCall(call *ast.CallExpr, callee *analysis.Func, held analysis.HeldSet) {
	// User callbacks must not run under any lock.
	if key := s.callbackKey(call); key != "" && len(held) > 0 {
		s.pass.Reportf(call.Pos(), "user callback %s invoked while a lock is held (%s); release the lock first — the callback may re-enter and deadlock", key, oneOf(held))
		return
	}
	// fooLocked() requires the caller to hold a lock on foo's owner.
	name := calleeName(call)
	if !strings.HasSuffix(name, "Locked") || s.underCallerLock() {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		base := types.ExprString(sel.X)
		for m := range held {
			if strings.HasPrefix(m, base+".") {
				return
			}
		}
		s.pass.Reportf(call.Pos(), "%s.%s requires the caller to hold %s's lock (Locked suffix), but no lock on that path is held", base, name, base)
		return
	}
	if len(held) == 0 {
		s.pass.Reportf(call.Pos(), "%s requires the caller to hold a lock (Locked suffix), but none is held", name)
	}
}

// checkAccess enforces guarded-field access: the documented lock must be
// held, and held exclusively when the access is a write.
func (s *scanner) checkAccess(sel *ast.SelectorExpr, held analysis.HeldSet) {
	fld, owner, ok := analysis.FieldOf(s.pass.Info, sel)
	if !ok {
		return
	}
	guard := s.pass.Index.Guard(owner, fld.Name())
	if guard == "" {
		return
	}
	if s.underCallerLock() {
		return // runs under the caller's lock by contract
	}
	if id := rootIdent(sel.X); id != nil {
		if obj := s.pass.Info.Uses[id]; obj != nil && s.fresh[obj] {
			return // freshly constructed, not shared yet
		}
	}
	required := types.ExprString(sel.X) + "." + guard
	hi, isHeld := held[required]
	if !isHeld {
		s.pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, which is not held here; lock it or waive with //gkalint:unlocked <reason>", types.ExprString(sel.X), fld.Name(), required)
		return
	}
	if s.writes[sel] && hi.Mode == analysis.LockRead {
		s.pass.Reportf(sel.Pos(), "%s.%s is written while %s is only read-locked (RLock); writes need the exclusive Lock", types.ExprString(sel.X), fld.Name(), required)
	}
}

// callbackKey resolves a call to an annotated callback field or method.
func (s *scanner) callbackKey(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if fld, owner, ok := analysis.FieldOf(s.pass.Info, sel); ok {
		if key := owner + "." + fld.Name(); s.pass.Index.Callbacks[key] {
			return key
		}
		return ""
	}
	if selection, ok := s.pass.Info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
		t := selection.Recv()
		if p, okp := t.Underlying().(*types.Pointer); okp {
			t = p.Elem()
		}
		if key := analysis.NamedName(t) + "." + sel.Sel.Name; s.pass.Index.Callbacks[key] {
			return key
		}
	}
	return ""
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func oneOf(held analysis.HeldSet) string {
	for m := range held {
		return m
	}
	return ""
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
