// Package regress pins the lock engine's held-set tracking: deferred
// unlocks, early-return branch copies, RLock/Lock asymmetry, and
// fixpoint convergence through recursion. Each case fails if branch-copy
// state leaks or a summary mis-states a function's net lock effects.
package regress

import "sync"

// Counter is read-mostly state behind an RWMutex.
type Counter struct {
	mu sync.RWMutex
	//gkalint:guard mu
	n int
	//gkalint:guard -
}

func (c *Counter) Read() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n // RLock suffices for a read
}

func (c *Counter) badBump() {
	c.mu.RLock()
	c.n++ // want `c\.n is written while c\.mu is only read-locked`
	c.mu.RUnlock()
}

func (c *Counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// relockPhases: sequential write-lock and read-lock phases each keep
// their own mode — the write in the first phase is fine, and the read in
// the second needs no exclusivity.
func (c *Counter) relockPhases() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.mu.RLock()
	_ = c.n
	c.mu.RUnlock()
}

// branchRelease: an Unlock inside a branch must not leak into the
// fallthrough path.
func (c *Counter) branchRelease(cold bool) int {
	c.mu.Lock()
	if cold {
		c.mu.Unlock()
		return 0
	}
	n := c.n // still held on this path
	c.mu.Unlock()
	return n
}

// branchAcquire: a Lock inside a branch must not leak out either.
func (c *Counter) branchAcquire(cold bool) int {
	if cold {
		c.mu.Lock()
		c.mu.Unlock()
	}
	return c.n // want `c\.n is guarded by c\.mu, which is not held here`
}

// deferEarly: the deferred unlock keeps the lock held across every
// early return...
func (c *Counter) deferEarly(cold bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cold {
		return 0
	}
	return c.n
}

// ...but the summary still records the release: a caller of deferEarly
// is NOT left holding c.mu.
func (c *Counter) afterDeferEarly() int {
	_ = c.deferEarly(false)
	return c.n // want `c\.n is guarded by c\.mu, which is not held here`
}

// Transitive helper chain: the acquisition propagates through two
// summaries before reaching the access.
func (c *Counter) lockIt() { c.mu.Lock() }
func (c *Counter) deep()   { c.lockIt() }
func (c *Counter) deepest() int {
	c.deep()
	n := c.n // lock taken two frames down is visible
	c.mu.Unlock()
	return n
}

// Mutual recursion must converge within the bounded fixpoint without
// inventing lock effects: neither function nets an acquisition.
func (c *Counter) ping(depth int) {
	if depth <= 0 {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
		return
	}
	c.pong(depth - 1)
}

func (c *Counter) pong(depth int) {
	c.ping(depth)
}

func (c *Counter) afterRecursion() int {
	c.ping(3)
	return c.n // want `c\.n is guarded by c\.mu, which is not held here`
}
