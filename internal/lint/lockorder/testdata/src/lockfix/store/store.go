// Package store declares the guard; package svc (the other half of the
// lockfix fixture) takes the lock through a helper and touches the
// guarded field from the far side of the import — the cross-package case
// the annotation index plus the interprocedural engine must carry.
package store

import "sync"

// Table is shared tabular state guarded by its own mutex.
type Table struct {
	Mu sync.Mutex
	//gkalint:guard Mu
	Rows map[string]int
	//gkalint:guard -
}

// LockTable acquires the table lock on the caller's behalf.
func (t *Table) LockTable() { t.Mu.Lock() }

// UnlockTable releases it.
func (t *Table) UnlockTable() { t.Mu.Unlock() }
