// Package svc touches store's guarded field from across the package
// boundary: the guard declaration and the lock-taking helper both live
// in store, so every proof here is interprocedural AND cross-package.
package svc

import "lockfix/store"

// Sum holds the lock via store's helper — the guard is declared in one
// package, taken in another.
func Sum(t *store.Table) int {
	t.LockTable()
	defer t.UnlockTable()
	n := 0
	for _, v := range t.Rows {
		n += v
	}
	return n
}

// Racy reads the guarded field with no lock anywhere on the path.
func Racy(t *store.Table) int {
	return len(t.Rows) // want `t\.Rows is guarded by t\.Mu, which is not held here`
}
