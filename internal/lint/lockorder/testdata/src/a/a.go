// Package a seeds lockorder violations and proves the exemptions,
// modeled on the repo's Member/Session locking idiom.
package a

import "sync"

// Member owns the lock; Session state is guarded through a path.
type Member struct {
	mu sync.Mutex
	id string // above the marker: unguarded

	//gkalint:guard mu
	sessions map[string]*Session
	dead     map[string]bool
	// onPeerDown is the application's hook; it may re-enter the member.
	//gkalint:callback
	onPeerDown func(peer string)
	//gkalint:guard -
	retries int // after the end marker: unguarded again
}

// Session fields are guarded by the owning member's mutex.
type Session struct {
	mb *Member

	//gkalint:guard mb.mu
	done bool
	err  error
}

func (mb *Member) lookupLocked(sid string) *Session {
	return mb.sessions[sid] // Locked suffix: caller holds mb.mu
}

func (mb *Member) deadlocks(sid string) *Session {
	return mb.lookupLocked(sid) // want `mb\.lookupLocked requires the caller to hold mb's lock`
}

func (mb *Member) holds(sid string) *Session {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.lookupLocked(sid)
}

func (mb *Member) badLocked(sid string) *Session {
	mb.mu.Lock() // want `badLocked runs under the caller's lock \(Locked suffix\) but locks mb\.mu itself: deadlock`
	defer mb.mu.Unlock()
	return mb.sessions[sid]
}

func (mb *Member) racyRead(sid string) *Session {
	return mb.sessions[sid] // want `mb\.sessions is guarded by mb\.mu, which is not held here`
}

func (mb *Member) racyWrite(peer string) {
	mb.dead[peer] = true // want `mb\.dead is guarded by mb\.mu, which is not held here`
}

func (mb *Member) guardedWrite(peer string) {
	mb.mu.Lock()
	mb.dead[peer] = true
	mb.mu.Unlock()
}

func (mb *Member) unguardedFields() (string, int) {
	return mb.id, mb.retries // outside the guard region: no lock needed
}

func (mb *Member) earlyReturnBranch(sid string) *Session {
	mb.mu.Lock()
	if s, ok := mb.sessions[sid]; ok {
		mb.mu.Unlock() // branch-local release must not leak into fallthrough
		return s
	}
	s := &Session{mb: mb}
	mb.sessions[sid] = s // still held on this path
	mb.mu.Unlock()
	return s
}

func (mb *Member) freshConstruction() *Session {
	s := &Session{mb: mb}
	s.done = true // fresh value: not shared, guard does not apply
	return s
}

func (mb *Member) callbackUnderLock(peer string) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.onPeerDown(peer) // want `user callback a\.Member\.onPeerDown invoked while a lock is held`
}

func (mb *Member) callbackAfterUnlock(peer string) {
	mb.mu.Lock()
	fn := mb.onPeerDown
	mb.mu.Unlock()
	if fn != nil {
		fn(peer)
	}
}

func (s *Session) pathGuard() bool {
	s.mb.mu.Lock()
	defer s.mb.mu.Unlock()
	return s.done
}

func (s *Session) pathRacy() bool {
	return s.done // want `s\.done is guarded by s\.mb\.mu, which is not held here`
}

// lockMember/unlockMember take the member lock on the session's behalf.
// Before the interprocedural engine these helpers forced an
// //gkalint:unlocked waiver at every call site; v2 proves them.
func (s *Session) lockMember()   { s.mb.mu.Lock() }
func (s *Session) unlockMember() { s.mb.mu.Unlock() }

func (s *Session) viaHelpers() bool {
	s.lockMember()
	defer s.unlockMember()
	return s.done // helper-taken lock is visible here
}

func (s *Session) viaMethodValues() bool {
	lock, unlock := s.lockMember, s.unlockMember
	lock()
	done := s.done // bound method value still carries the lock effect
	unlock()
	return done
}

func (mb *Member) closureHeld() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	func() { n = len(mb.sessions) }() // in-place literal: held set flows in
	return n
}

func (mb *Member) closureRacy() func() bool {
	return func() bool {
		return mb.dead["x"] // want `mb\.dead is guarded by mb\.mu, which is not held here`
	}
}

func (mb *Member) goRacy() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	go func() {
		delete(mb.sessions, "x") // want `mb\.sessions is guarded by mb\.mu, which is not held here`
	}()
}
