package sarif_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"idgka/internal/lint/analysis"
	"idgka/internal/lint/sarif"
)

func TestNew(t *testing.T) {
	analyzers := []*analysis.Analyzer{
		{Name: "alpha", Doc: "first invariant"},
		{Name: "beta", Doc: "second invariant"},
	}
	root := filepath.Join("/", "repo")
	findings := []analysis.Finding{
		{
			Analyzer: "beta",
			Pos:      token.Position{Filename: filepath.Join(root, "pkg", "f.go"), Line: 7, Column: 3},
			Message:  "beta fired",
		},
		{
			Analyzer:      "alpha",
			Pos:           token.Position{Filename: filepath.Join(root, "g.go"), Line: 2, Column: 1},
			Message:       "alpha fired but was waived",
			Suppressed:    true,
			Justification: "vetted: bounded by construction",
		},
	}
	log := sarif.New(analyzers, findings, root)

	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "gkalint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 || run.Tool.Driver.Rules[0].ID != "alpha" || run.Tool.Driver.Rules[1].ID != "beta" {
		t.Fatalf("rules = %+v", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d", len(run.Results))
	}

	active := run.Results[0]
	if active.RuleID != "beta" || active.RuleIndex != 1 || active.Level != "error" {
		t.Errorf("active result: %+v", active)
	}
	loc := active.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "pkg/f.go" {
		t.Errorf("active URI = %q, want repo-relative slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 7 || loc.Region.StartColumn != 3 {
		t.Errorf("active region = %+v", loc.Region)
	}
	if len(active.Suppressions) != 0 {
		t.Errorf("active result carries suppressions: %+v", active.Suppressions)
	}

	waived := run.Results[1]
	if waived.Level != "note" || len(waived.Suppressions) != 1 {
		t.Fatalf("suppressed result: %+v", waived)
	}
	if s := waived.Suppressions[0]; s.Kind != "inSource" || s.Justification != "vetted: bounded by construction" {
		t.Errorf("suppression = %+v", s)
	}
}

func TestEncodeRoundTrips(t *testing.T) {
	log := sarif.New([]*analysis.Analyzer{{Name: "alpha", Doc: "d"}}, nil, "")
	var buf bytes.Buffer
	if err := log.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.Contains(buf.String(), `"$schema"`) {
		t.Errorf("encoded log missing $schema: %s", buf.String())
	}
	var back sarif.Log
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Version != "2.1.0" {
		t.Errorf("round-tripped version = %q", back.Version)
	}
}

func TestFileOutsideRootKeepsAbsolutePath(t *testing.T) {
	f := analysis.Finding{Analyzer: "alpha", Pos: token.Position{Filename: filepath.Join("/", "elsewhere", "x.go"), Line: 1}}
	log := sarif.New([]*analysis.Analyzer{{Name: "alpha"}}, []analysis.Finding{f}, filepath.Join("/", "repo"))
	uri := log.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if !strings.HasPrefix(uri, "/elsewhere") {
		t.Errorf("URI = %q, want absolute fallback", uri)
	}
}
