// Package sarif renders gkalint findings as SARIF 2.1.0 — the Static
// Analysis Results Interchange Format GitHub code scanning ingests — so
// sweep results annotate pull requests inline. One rule per analyzer,
// one result per finding; findings covered by a justified //gkalint
// waiver are emitted with an inSource suppression carrying the waiver's
// justification, keeping the audit trail machine-readable instead of
// silently dropping it.
package sarif

import (
	"encoding/json"
	"io"
	"path/filepath"

	"idgka/internal/lint/analysis"
)

// SchemaURI is the SARIF 2.1.0 schema location.
const SchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// Log is the SARIF top-level object.
type Log struct {
	Version string `json:"version"`
	Schema  string `json:"$schema"`
	Runs    []Run  `json:"runs"`
}

// Run is one tool invocation.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool wraps the driver description.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver describes gkalint and its rules.
type Driver struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules"`
}

// Rule is one analyzer.
type Rule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

// Message is SARIF's text wrapper.
type Message struct {
	Text string `json:"text"`
}

// Result is one finding.
type Result struct {
	RuleID       string        `json:"ruleId"`
	RuleIndex    int           `json:"ruleIndex"`
	Level        string        `json:"level"`
	Message      Message       `json:"message"`
	Locations    []Location    `json:"locations"`
	Suppressions []Suppression `json:"suppressions,omitempty"`
}

// Location anchors a result in a file.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation is a file URI plus region.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

// ArtifactLocation is the file, relative to the sweep root.
type ArtifactLocation struct {
	URI string `json:"uri"`
}

// Region is the position within the file.
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// Suppression records a justified in-source waiver.
type Suppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// New builds a single-run SARIF log: one rule per analyzer (in suite
// order), one result per finding. Active findings carry level "error";
// waiver-suppressed ones carry level "note" plus an inSource suppression
// with the waiver's justification. File URIs are slash-separated paths
// relative to root (absolute paths pass through when they do not share
// the root).
func New(analyzers []*analysis.Analyzer, findings []analysis.Finding, root string) *Log {
	driver := Driver{Name: "gkalint"}
	ruleIndex := map[string]int{}
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(driver.Rules)
		driver.Rules = append(driver.Rules, Rule{
			ID:               a.Name,
			ShortDescription: Message{Text: a.Doc},
		})
	}
	results := make([]Result, 0, len(findings))
	for _, f := range findings {
		r := Result{
			RuleID:    f.Analyzer,
			RuleIndex: ruleIndex[f.Analyzer],
			Level:     "error",
			Message:   Message{Text: f.Message},
			Locations: []Location{{PhysicalLocation: PhysicalLocation{
				ArtifactLocation: ArtifactLocation{URI: relURI(root, f.Pos.Filename)},
				Region:           Region{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		}
		if f.Suppressed {
			r.Level = "note"
			r.Suppressions = []Suppression{{Kind: "inSource", Justification: f.Justification}}
		}
		results = append(results, r)
	}
	return &Log{
		Version: "2.1.0",
		Schema:  SchemaURI,
		Runs:    []Run{{Tool: Tool{Driver: driver}, Results: results}},
	}
}

// relURI renders a file path relative to root with forward slashes.
func relURI(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// Encode writes the log as indented JSON.
func (l *Log) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}
