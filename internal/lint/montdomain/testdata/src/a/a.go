// Package a seeds montdomain violations and proves the exemptions.
package a

import (
	"fmt"
	"math/big"
	"reflect"

	"idgka/internal/mathx"
	"idgka/internal/meter"
	"idgka/internal/wire"
)

func leaks(mo *mathx.Modulus, e mathx.Elem, es []mathx.Elem) {
	fmt.Printf("elem=%v\n", e)       // want `mathx\.Elem crosses a fmt boundary`
	fmt.Println(es)                  // want `mathx\.Elem crosses a fmt boundary`
	wire.NewBuffer().PutWords(e)     // want `mathx\.Elem crosses a idgka/internal/wire boundary`
	meter.Record("key", e)           // want `mathx\.Elem crosses a idgka/internal/meter boundary`
	fmt.Println(mo.FromMont(e))      // canonical: converted before the boundary
	fmt.Printf("words=%d\n", len(e)) // a length is not a residue
}

func mixes(mo *mathx.Modulus, e mathx.Elem) *big.Int {
	_ = new(big.Int).SetBits(e)                // want `SetBits on mathx\.Elem limbs`
	_ = new(big.Int).SetBits([]big.Word(e))    // want `SetBits on mathx\.Elem limbs`
	return new(big.Int).SetBits([]big.Word{1}) // fresh limbs: no domain to confuse
}

func compares(a, b mathx.Elem) bool {
	return reflect.DeepEqual(a, b) // want `reflect\.DeepEqual over mathx\.Elem`
}

func roundTrips(mo *mathx.Modulus, e mathx.Elem, v *big.Int) {
	_ = mo.ToMont(mo.FromMont(e)) // want `ToMont\(FromMont\(…\)\) round-trips`
	_ = mo.FromMont(mo.ToMont(v)) // want `FromMont\(ToMont\(…\)\) round-trips`
	_ = mo.ToMont(v)
	_ = mo.FromMont(e)
}

func waived(e mathx.Elem) {
	//gkalint:rawdomain debugging dump of raw limbs, never parsed back
	fmt.Println(e)
}
