// Package mathx is the fixture stub of idgka/internal/mathx: the
// Montgomery-domain types the montdomain fixtures exercise.
package mathx

import "math/big"

// Elem mirrors the real Montgomery-domain residue type.
type Elem []big.Word

// Modulus mirrors the real Montgomery context.
type Modulus struct{}

// ToMont converts a canonical residue into the Montgomery domain.
func (mo *Modulus) ToMont(v *big.Int) Elem { return nil }

// FromMont converts a Montgomery-domain residue back to canonical form.
func (mo *Modulus) FromMont(e Elem) *big.Int { return new(big.Int) }
