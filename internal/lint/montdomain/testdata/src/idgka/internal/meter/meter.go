// Package meter is the fixture stub of idgka/internal/meter.
package meter

// Record notes one metered quantity.
func Record(what string, v any) {}
