// Package wire is the fixture stub of idgka/internal/wire.
package wire

// Buffer mirrors the real wire buffer's appending writer.
type Buffer struct{}

// NewBuffer opens an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// PutWords appends raw limbs (fixture-only shape).
func (b *Buffer) PutWords(v any) *Buffer { return b }
