// Package montdomain enforces the PR 6 Montgomery-domain contract: a
// mathx.Elem holds v·R mod m — a representation, not a value — so its
// limbs must never leave the domain unconverted. Serializing, logging,
// metering or re-interpreting an Elem as a canonical residue silently
// corrupts transcripts at wire boundaries; conversion must go through
// Modulus.FromMont.
//
// The analyzer reports, package by package:
//
//   - an Elem (or []Elem, map of Elem, *Elem) argument reaching a
//     boundary sink: any function of fmt, log, an encoding/* package,
//     idgka/internal/wire or idgka/internal/meter;
//   - a big.Int built straight from Elem limbs via SetBits (the exact
//     domain-mixing shape PR 6 guarded against);
//   - reflect.DeepEqual over Elems (representation comparison — convert
//     to canonical form first);
//   - immediate round-trips ToMont(FromMont(x)) / FromMont(ToMont(x)),
//     the per-function pairing check: a round-trip means the author lost
//     track of which domain the value was in.
//
// Deliberate exceptions carry //gkalint:rawdomain <why>.
package montdomain

import (
	"go/ast"
	"strings"

	"idgka/internal/lint/analysis"
)

const elemType = "idgka/internal/mathx.Elem"

// sinkPkgs are package paths whose call arguments constitute a domain
// boundary.
var sinkPkgs = map[string]bool{
	"fmt":                  true,
	"log":                  true,
	"idgka/internal/wire":  true,
	"idgka/internal/meter": true,
}

// Analyzer reports Montgomery-domain values crossing wire, format or
// comparison boundaries without FromMont.
var Analyzer = &analysis.Analyzer{
	Name:       "montdomain",
	Doc:        "mathx.Elem values must convert via FromMont before serialization, comparison or metering (PR 6)",
	WaiverVerb: "rawdomain",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == "idgka/internal/mathx" {
		// The engine's own package owns the representation; its internal
		// limb manipulation is the implementation, not a boundary.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkSink(pass, call)
			checkSetBits(pass, call)
			checkDeepEqual(pass, call)
			checkRoundTrip(pass, call)
			return true
		})
	}
	return nil
}

// isElemArg reports whether the expression carries mathx.Elem values,
// looking through one explicit conversion (e.g. []big.Word(e)).
func isElemArg(pass *analysis.Pass, e ast.Expr) bool {
	if analysis.TypeContains(pass.Info.Types[e].Type, elemType) {
		return true
	}
	if conv, ok := ast.Unparen(e).(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if tv, ok := pass.Info.Types[conv.Fun]; ok && tv.IsType() {
			return analysis.TypeContains(pass.Info.Types[conv.Args[0]].Type, elemType)
		}
	}
	return false
}

func checkSink(pass *analysis.Pass, call *ast.CallExpr) {
	path := analysis.CalleePkgPath(pass.Info, call)
	if path == "" {
		return
	}
	if !sinkPkgs[path] && !strings.HasPrefix(path, "encoding/") {
		return
	}
	for _, arg := range call.Args {
		if isElemArg(pass, arg) {
			pass.Reportf(arg.Pos(), "mathx.Elem crosses a %s boundary still in the Montgomery domain; convert with FromMont first or waive with //gkalint:rawdomain <reason>", path)
		}
	}
}

// checkSetBits flags new(big.Int).SetBits(elem) and friends: limbs of a
// Montgomery residue reinterpreted as a canonical big.Int.
func checkSetBits(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "SetBits" || len(call.Args) != 1 {
		return
	}
	if !analysis.TypeContains(pass.Info.Types[sel.X].Type, "math/big.Int") {
		return
	}
	if isElemArg(pass, call.Args[0]) {
		pass.Reportf(call.Pos(), "big.Int.SetBits on mathx.Elem limbs reinterprets a Montgomery residue as canonical; use FromMont")
	}
}

func checkDeepEqual(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.CalleeObj(pass.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "reflect" || obj.Name() != "DeepEqual" {
		return
	}
	for _, arg := range call.Args {
		if isElemArg(pass, arg) {
			pass.Reportf(call.Pos(), "reflect.DeepEqual over mathx.Elem compares Montgomery representations; convert with FromMont and compare canonical values")
			return
		}
	}
}

// checkRoundTrip flags mo.ToMont(mo.FromMont(x)) and the inverse: a
// same-expression round-trip means the domain of x was lost.
func checkRoundTrip(pass *analysis.Pass, call *ast.CallExpr) {
	outer := convName(pass, call)
	if outer == "" || len(call.Args) != 1 {
		return
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	in := convName(pass, inner)
	if (outer == "ToMont" && in == "FromMont") || (outer == "FromMont" && in == "ToMont") {
		pass.Reportf(call.Pos(), "%s(%s(…)) round-trips the Montgomery domain; keep the value in one domain per function", outer, in)
	}
}

// convName returns "ToMont"/"FromMont" when the call is a mathx.Modulus
// conversion, else "".
func convName(pass *analysis.Pass, call *ast.CallExpr) string {
	obj := analysis.CalleeObj(pass.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "idgka/internal/mathx" {
		return ""
	}
	switch obj.Name() {
	case "ToMont", "FromMont":
		return obj.Name()
	}
	return ""
}
