package montdomain_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/montdomain"
)

func TestMontDomain(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), montdomain.Analyzer, "a")
}
