// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` markers, mirroring
// golang.org/x/tools/go/analysis/analysistest over the in-tree
// framework. Fixtures live in a GOPATH-style tree (testdata/src/<path>)
// so they can replicate the real repo's import paths — an analyzer
// matching idgka/internal/mathx.Elem sees the same fully-qualified name
// in fixtures and production code. Diagnostics pass through the central
// waiver filter, so negative fixtures prove //gkalint:<verb> comments
// suppress findings (and that justification-free waivers do not).
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"idgka/internal/lint/analysis"
	"idgka/internal/lint/load"
)

// TestData returns the caller's testdata directory root.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want (.*)$")
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads each fixture package beneath testdata/src and reports, via
// t, any mismatch between the analyzer's findings and the fixtures'
// `// want` markers.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := load.NewSourceLoader(filepath.Join(testdata, "src"))
	var targets []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", p, err)
		}
		targets = append(targets, pkg)
	}
	findings, err := analysis.RunWithIndex(targets, loader.Loaded(), []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, loader.Fset, targets)

	for _, f := range findings {
		if !matchWant(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", filepath.Base(f.Pos.Filename), f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", filepath.Base(w.file), w.line, w.rx)
		}
	}
}

func matchWant(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans fixture comments for want markers. A marker expects
// its diagnostics on its own line; several quoted or backquoted regexps
// may follow one marker.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					args := wantArgRe.FindAllStringSubmatch(m[1], -1)
					if len(args) == 0 {
						t.Fatalf("%s:%d: malformed want marker %q", pos.Filename, pos.Line, c.Text)
					}
					for _, arg := range args {
						pat := arg[1]
						if pat == "" {
							pat = unquote(arg[2])
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
					}
				}
			}
		}
	}
	return wants
}

func unquote(s string) string {
	r := strings.NewReplacer(`\"`, `"`, `\\`, `\`)
	return r.Replace(s)
}

// Fprint is a debugging aid: it renders findings one per line.
func Fprint(findings []analysis.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}
