// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` markers, mirroring
// golang.org/x/tools/go/analysis/analysistest over the in-tree
// framework. Fixtures live in a GOPATH-style tree (testdata/src/<path>)
// so they can replicate the real repo's import paths — an analyzer
// matching idgka/internal/mathx.Elem sees the same fully-qualified name
// in fixtures and production code. Diagnostics pass through the central
// waiver filter, so negative fixtures prove //gkalint:<verb> comments
// suppress findings (and that justification-free waivers do not).
//
// Since PR 9 fixture arguments may be "dir/..." patterns: every package
// directory beneath testdata/src/dir is loaded as a target, which is how
// the interprocedural analyzers get multi-package fixtures — a secret
// declared in one fixture package, leaked from another, with want
// markers on both sides of the import edge.
//
// Since PR 10 a fixture can also pin the analyzer's machine-readable
// surface: RunGolden renders the sweep — active findings and
// waiver-suppressed ones alike — as a SARIF log with URIs relative to
// testdata and compares it byte-for-byte against a checked-in golden
// file. Set GKALINT_UPDATE=1 to rewrite the golden after an intentional
// change.
package analysistest

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"idgka/internal/lint/analysis"
	"idgka/internal/lint/load"
	"idgka/internal/lint/sarif"
)

// TestData returns the caller's testdata directory root.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("// want (.*)$")
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads each fixture package beneath testdata/src and reports, via
// t, any mismatch between the analyzer's findings and the fixtures'
// `// want` markers.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	problems, err := Problems(testdata, a, paths...)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	for _, p := range problems {
		t.Errorf("%s", p)
	}
}

// Problems is the harness core, separated from testing.T so the harness
// itself is testable: it runs the analyzer over the fixture packages and
// returns one message per mismatch — an unexpected diagnostic, or a want
// marker nothing matched. An empty slice means the fixture is green.
func Problems(testdata string, a *analysis.Analyzer, paths ...string) ([]string, error) {
	expanded, err := Expand(testdata, paths...)
	if err != nil {
		return nil, err
	}
	loader := load.NewSourceLoader(filepath.Join(testdata, "src"))
	var targets []*analysis.Package
	for _, p := range expanded {
		pkg, err := loader.Load(p)
		if err != nil {
			return nil, fmt.Errorf("loading fixture %q: %v", p, err)
		}
		targets = append(targets, pkg)
	}
	findings, err := analysis.RunWithIndex(targets, loader.Loaded(), []*analysis.Analyzer{a})
	if err != nil {
		return nil, fmt.Errorf("running %s: %v", a.Name, err)
	}
	wants, err := collectWants(loader.Fset, targets)
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, f := range findings {
		if !matchWant(wants, f) {
			problems = append(problems, fmt.Sprintf("%s: unexpected diagnostic: %s", filepath.Base(f.Pos.Filename), f))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched `%s`", filepath.Base(w.file), w.line, w.rx))
		}
	}
	return problems, nil
}

// RunGolden checks the analyzer's SARIF rendering of the fixture
// packages against the golden file at testdata/<golden>. Unlike Run it
// keeps waiver-suppressed findings, so the golden pins the suppression
// objects (kind inSource plus the waiver's justification) exactly as CI
// uploads them. When the environment variable GKALINT_UPDATE is set the
// golden is rewritten instead and the test passes.
func RunGolden(t *testing.T, testdata string, a *analysis.Analyzer, golden string, paths ...string) {
	t.Helper()
	got, err := GoldenSARIF(testdata, a, paths...)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	path := filepath.Join(testdata, golden)
	if os.Getenv("GKALINT_UPDATE") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("updating golden %s: %v", golden, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden %s (rerun with GKALINT_UPDATE=1 to create it): %v", golden, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("SARIF output diverges from %s (rerun with GKALINT_UPDATE=1 after verifying the change):\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// GoldenSARIF is RunGolden's core: it runs the analyzer over the fixture
// packages keeping suppressed findings and renders the SARIF log with
// URIs relative to testdata (so goldens are machine-independent).
func GoldenSARIF(testdata string, a *analysis.Analyzer, paths ...string) ([]byte, error) {
	expanded, err := Expand(testdata, paths...)
	if err != nil {
		return nil, err
	}
	loader := load.NewSourceLoader(filepath.Join(testdata, "src"))
	var targets []*analysis.Package
	for _, p := range expanded {
		pkg, err := loader.Load(p)
		if err != nil {
			return nil, fmt.Errorf("loading fixture %q: %v", p, err)
		}
		targets = append(targets, pkg)
	}
	findings, _, err := analysis.RunAll(targets, loader.Loaded(), []*analysis.Analyzer{a})
	if err != nil {
		return nil, fmt.Errorf("running %s: %v", a.Name, err)
	}
	var buf bytes.Buffer
	if err := sarif.New([]*analysis.Analyzer{a}, findings, testdata).Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Expand resolves fixture arguments to package paths: a plain path names
// one package, "dir/..." every directory beneath testdata/src/dir that
// contains .go files, in sorted order.
func Expand(testdata string, paths ...string) ([]string, error) {
	src := filepath.Join(testdata, "src")
	var out []string
	for _, p := range paths {
		dir, ok := strings.CutSuffix(p, "/...")
		if !ok {
			out = append(out, p)
			continue
		}
		var found []string
		root := filepath.Join(src, filepath.FromSlash(dir))
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() && strings.HasSuffix(path, ".go") {
				rel, err := filepath.Rel(src, filepath.Dir(path))
				if err != nil {
					return err
				}
				found = append(found, filepath.ToSlash(rel))
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("expanding fixture pattern %q: %v", p, err)
		}
		sort.Strings(found)
		prev := ""
		for _, f := range found {
			if f != prev {
				out = append(out, f)
				prev = f
			}
		}
		if len(found) == 0 {
			return nil, fmt.Errorf("fixture pattern %q matched no packages", p)
		}
	}
	return out, nil
}

func matchWant(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans fixture comments for want markers. A marker expects
// its diagnostics on its own line; several quoted or backquoted regexps
// may follow one marker.
func collectWants(fset *token.FileSet, pkgs []*analysis.Package) ([]*want, error) {
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					args := wantArgRe.FindAllStringSubmatch(m[1], -1)
					if len(args) == 0 {
						return nil, fmt.Errorf("%s:%d: malformed want marker %q", pos.Filename, pos.Line, c.Text)
					}
					for _, arg := range args {
						pat := arg[1]
						if pat == "" {
							pat = unquote(arg[2])
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
					}
				}
			}
		}
	}
	return wants, nil
}

func unquote(s string) string {
	r := strings.NewReplacer(`\"`, `"`, `\\`, `\`)
	return r.Replace(s)
}

// Fprint is a debugging aid: it renders findings one per line.
func Fprint(findings []analysis.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}
