// Package dep is the imported half of the multi-package harness
// fixture: its marker must be honored when loaded via "multi/...".
package dep

// Bad is flagged by the harness's test analyzer.
func Bad() {} // want `function Bad declared`

// Good is not.
func Good() int { return 1 }
