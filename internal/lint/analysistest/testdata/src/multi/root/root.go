// Package root imports its sibling fixture package, proving the
// "multi/..." pattern loads both sides of the edge as targets.
package root

import "multi/dep"

// Bad is flagged by the harness's test analyzer.
func Bad() int { return dep.Good() } // want `function Bad declared`
