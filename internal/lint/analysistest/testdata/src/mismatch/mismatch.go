// Package mismatch is deliberately wrong in both directions: a finding
// with no marker, and a marker with no finding. The harness's own tests
// assert Problems reports both.
package mismatch

// Bad has no want marker: an unexpected diagnostic.
func Bad() {}

// Good never fires the analyzer, so this marker goes unmatched.
func Good() {} // want `function Bad declared`
