package analysistest_test

import (
	"go/ast"
	"strings"
	"testing"

	"idgka/internal/lint/analysis"
	"idgka/internal/lint/analysistest"
)

// badFunc is a minimal deterministic analyzer for exercising the
// harness itself: it flags every function declared with the name Bad.
var badFunc = &analysis.Analyzer{
	Name:       "badfunc",
	Doc:        "harness test analyzer: flags functions named Bad",
	WaiverVerb: "badok",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Bad" {
					pass.Reportf(fd.Pos(), "function Bad declared")
				}
			}
		}
		return nil
	},
}

func TestExpandPattern(t *testing.T) {
	got, err := analysistest.Expand(analysistest.TestData(), "multi/...")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"multi/dep", "multi/root"}
	if len(got) != len(want) {
		t.Fatalf("Expand(multi/...) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Expand(multi/...) = %v, want %v", got, want)
		}
	}
}

func TestExpandPlainPathPassesThrough(t *testing.T) {
	got, err := analysistest.Expand(analysistest.TestData(), "mismatch")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "mismatch" {
		t.Fatalf("Expand(mismatch) = %v", got)
	}
}

func TestExpandNoMatch(t *testing.T) {
	if _, err := analysistest.Expand(analysistest.TestData(), "nosuch/..."); err == nil {
		t.Fatal("Expand(nosuch/...) succeeded, want error")
	}
}

// TestMultiPackage runs the full harness over the two-package fixture:
// markers in both the root and the imported package must be honored.
func TestMultiPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), badFunc, "multi/...")
}

// TestProblemsReportsBothDirections checks the harness core catches an
// unexpected diagnostic and an unmatched marker.
func TestProblemsReportsBothDirections(t *testing.T) {
	problems, err := analysistest.Problems(analysistest.TestData(), badFunc, "mismatch")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("Problems = %v, want 2 entries", problems)
	}
	var unexpected, unmatched bool
	for _, p := range problems {
		if strings.Contains(p, "unexpected diagnostic") {
			unexpected = true
		}
		if strings.Contains(p, "no diagnostic matched") {
			unmatched = true
		}
	}
	if !unexpected || !unmatched {
		t.Fatalf("Problems = %v, want one unexpected-diagnostic and one unmatched-marker entry", problems)
	}
}
