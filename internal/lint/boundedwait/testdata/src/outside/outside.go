// Package outside is not a transport path: identical waits draw no
// findings, proving the analyzer's package scoping.
package outside

func nakedSend(ch chan int) {
	ch <- 1
}

func rangeWorker(ch chan int) {
	for range ch {
	}
}
