package transport

import "io"

func frameRead(c *conn, p []byte) {
	io.ReadFull(c, p) // want `io\.ReadFull over a deadline-capable connection`
}

func bufferedCopy(dst io.Writer, src io.Reader) {
	// Plain readers and writers carry no deadline surface; not flagged.
	io.Copy(dst, src)
}
