// Package transport is a boundedwait fixture living at the real
// transport's import path, so the analyzer's package scoping applies.
package transport

import "time"

// conn is a deadline-capable connection (net.Conn-shaped, duck-typed so
// the fixture needs no cgo-tainted net import).
type conn struct{}

func (c *conn) Read(p []byte) (int, error)    { return 0, nil }
func (c *conn) Write(p []byte) (int, error)   { return 0, nil }
func (c *conn) SetDeadline(t time.Time) error { return nil }

type ctx struct{}

func (ctx) Done() <-chan struct{} { return nil }

func nakedSend(ch chan int) {
	ch <- 1 // want `unbounded channel send on a transport path`
}

func nakedRecv(ch chan int) int {
	return <-ch // want `unbounded channel receive on a transport path`
}

func singleCaseSelect(ch chan int) {
	select {
	case ch <- 1: // want `unbounded channel send on a transport path`
	}
}

func escapedSend(ch chan int, closed chan struct{}) {
	select {
	case ch <- 1:
	case <-closed:
	}
}

func defaultSend(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

func timeoutRecv(ch chan int, t *time.Timer, tk *time.Ticker, c ctx) {
	select {
	case <-ch:
	case <-time.After(time.Second):
	}
	<-t.C      // a fired timer is inherently bounded
	<-tk.C     // so is a ticker
	<-c.Done() // and a done channel
	<-time.After(time.Millisecond)
}

func rangeWorker(ch chan int) {
	for v := range ch { // want `for-range over a channel blocks unboundedly`
		_ = v
	}
}

func waivedWorker(ch chan int) {
	//gkalint:unbounded per-shard FIFO is unbounded by design; a bounded queue deadlocks loopback transports
	for v := range ch {
		_ = v
	}
}

func deadlineLessWrite(c *conn, p []byte) {
	c.Write(p) // want `Write on a deadline-capable connection`
}

func deadlineArmedWrite(c *conn, p []byte) {
	c.SetDeadline(time.Now().Add(time.Second))
	c.Write(p)
}

func waivedWrite(c *conn, p []byte) {
	c.Write(p) //gkalint:unbounded deadline armed by the caller holding the delivery slot
}
