package boundedwait_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/boundedwait"
)

func TestBoundedWait(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), boundedwait.Analyzer,
		"idgka/internal/transport", "outside")
}
