// Package boundedwait enforces the PR 4 no-wedge rule on transport
// paths: a blocking operation on the delivery pipeline must carry an
// escape — a deadline, a second select case, or an explicit, justified
// waiver. The PR 4 bug class was exactly an unbounded wait: a hub
// delivery blocked forever on a dead peer's ack and wedged every
// subsequent broadcast.
//
// Within the scoped packages (the transport and serve layers) the
// analyzer reports:
//
//   - a channel send or receive outside a select that has an escape
//     hatch (a second case or a default). Receives from inherently
//     bounded sources — time.After/Tick, a Timer/Ticker's C, a Done()
//     channel — are exempt;
//   - a for-range loop over a channel (it blocks between messages
//     forever; worker FIFOs that want this must say so);
//   - Read/Write-style I/O on a deadline-capable connection (anything
//     with SetDeadline in its method set, net.Conn included) in a
//     function that never arms a deadline — including such connections
//     handed to io.ReadFull/io.Copy.
//
// Deliberately unbounded sites carry //gkalint:unbounded <why> — e.g.
// the serve layer's per-shard FIFO, which is unbounded by design because
// a bounded queue deadlocks loopback transports.
package boundedwait

import (
	"go/ast"
	"go/token"
	"go/types"

	"idgka/internal/lint/analysis"
)

// Packages scopes the analyzer: only these import paths are transport
// paths where every wait must be bounded.
var Packages = map[string]bool{
	"idgka/internal/transport": true,
	"idgka/internal/serve":     true,
}

// ioHelpers are io functions that block on the reader/writer they wrap.
var ioHelpers = map[string]bool{
	"ReadFull": true, "ReadAll": true, "Copy": true, "CopyN": true, "WriteString": true,
}

// Analyzer reports unbounded channel and network waits on transport
// paths.
var Analyzer = &analysis.Analyzer{
	Name:       "boundedwait",
	Doc:        "channel and network waits on transport paths need a deadline, an escape case, or a justified //gkalint:unbounded waiver (PR 4)",
	WaiverVerb: "unbounded",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	if !Packages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Pass 1: collect operations that live inside a select with an
	// escape hatch, and whether any deadline is armed in this function.
	exempt := map[ast.Node]bool{}
	armsDeadline := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cl.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault || len(n.Body.List) >= 2 {
				for _, cl := range n.Body.List {
					markComm(exempt, cl.(*ast.CommClause).Comm)
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
					armsDeadline = true
				}
			}
		}
		return true
	})
	// Pass 2: report unbounded operations.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !exempt[n] {
				pass.Reportf(n.Pos(), "unbounded channel send on a transport path; give the select an escape case or waive with //gkalint:unbounded <reason>")
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || exempt[n] || boundedSource(pass, n.X) {
				return true
			}
			pass.Reportf(n.Pos(), "unbounded channel receive on a transport path; select against a timeout/done case or waive with //gkalint:unbounded <reason>")
		case *ast.RangeStmt:
			if t := pass.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Reportf(n.Pos(), "for-range over a channel blocks unboundedly between messages; waive with //gkalint:unbounded <reason> if this worker FIFO is unbounded by design")
				}
			}
		case *ast.CallExpr:
			checkConnIO(pass, n, armsDeadline)
		}
		return true
	})
}

// markComm registers a comm clause's blocking operation as select-guarded.
func markComm(exempt map[ast.Node]bool, comm ast.Stmt) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		exempt[s] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok {
			exempt[u] = true
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok {
				exempt[u] = true
			}
		}
	}
}

// boundedSource reports whether a receive operand is inherently bounded:
// time.After/Tick, a Timer/Ticker C field, or a Done() channel.
func boundedSource(pass *analysis.Pass, x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
		if analysis.CalleePkgPath(pass.Info, x) == "time" {
			if obj := analysis.CalleeObj(pass.Info, x); obj != nil {
				switch obj.Name() {
				case "After", "Tick":
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		if x.Sel.Name != "C" {
			return false
		}
		t := pass.Info.Types[x.X].Type
		if t == nil {
			return false
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		switch analysis.NamedName(t) {
		case "time.Timer", "time.Ticker":
			return true
		}
	}
	return false
}

// checkConnIO flags deadline-capable I/O in functions that never arm a
// deadline.
func checkConnIO(pass *analysis.Pass, call *ast.CallExpr, armsDeadline bool) {
	if armsDeadline {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// conn.Read/Write style.
	switch sel.Sel.Name {
	case "Read", "Write", "ReadFrom", "WriteTo":
		if deadlineCapable(pass, pass.Info.Types[sel.X].Type) {
			pass.Reportf(call.Pos(), "%s on a deadline-capable connection in a function that never arms SetDeadline; bound the wait or waive with //gkalint:unbounded <reason>", sel.Sel.Name)
		}
		return
	}
	// io.ReadFull(conn, …) style.
	if analysis.CalleePkgPath(pass.Info, call) == "io" && ioHelpers[sel.Sel.Name] {
		for _, arg := range call.Args {
			if deadlineCapable(pass, pass.Info.Types[arg].Type) {
				pass.Reportf(call.Pos(), "io.%s over a deadline-capable connection in a function that never arms SetDeadline; bound the wait or waive with //gkalint:unbounded <reason>", sel.Sel.Name)
				return
			}
		}
	}
}

// deadlineCapable reports whether the type's method set includes
// SetDeadline (net.Conn and anything wrapping it duck-typed).
func deadlineCapable(pass *analysis.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, "SetDeadline")
	_, isFn := obj.(*types.Func)
	return isFn
}
