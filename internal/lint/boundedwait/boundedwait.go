// Package boundedwait enforces the PR 4 no-wedge rule on transport
// paths: a blocking operation on the delivery pipeline must carry an
// escape — a deadline, a second select case, or an explicit, justified
// waiver. The PR 4 bug class was exactly an unbounded wait: a hub
// delivery blocked forever on a dead peer's ack and wedged every
// subsequent broadcast.
//
// Within the scoped packages (the transport and serve layers) the
// analyzer reports:
//
//   - a channel send or receive outside a select that has an escape
//     hatch (a second case or a default). Receives from inherently
//     bounded sources — time.After/Tick, a Timer/Ticker's C, a Done()
//     channel — are exempt;
//   - a for-range loop over a channel (it blocks between messages
//     forever; worker FIFOs that want this must say so);
//   - Read/Write-style I/O on a deadline-capable connection (anything
//     with SetDeadline in its method set, net.Conn included) in a
//     function that never arms a deadline — including such connections
//     handed to io.ReadFull/io.Copy.
//
// The blocking-site catalogue itself (what counts as a block, and what
// escapes it) lives in analysis/blocking.go, shared with the lock
// engine's blockunderlock — one definition of "can this wedge a
// goroutine" for both analyzers.
//
// Deliberately unbounded sites carry //gkalint:unbounded <why> — e.g.
// the serve layer's per-shard FIFO, which is unbounded by design because
// a bounded queue deadlocks loopback transports.
package boundedwait

import (
	"go/ast"
	"go/token"

	"idgka/internal/lint/analysis"
)

// Packages scopes the analyzer: only these import paths are transport
// paths where every wait must be bounded.
var Packages = map[string]bool{
	"idgka/internal/transport": true,
	"idgka/internal/serve":     true,
}

// Analyzer reports unbounded channel and network waits on transport
// paths.
var Analyzer = &analysis.Analyzer{
	Name:       "boundedwait",
	Doc:        "channel and network waits on transport paths need a deadline, an escape case, or a justified //gkalint:unbounded waiver (PR 4)",
	WaiverVerb: "unbounded",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	if !Packages[pass.Pkg.Path()] {
		return nil
	}
	pkg := pass.Prog.PackageOf(pass.Pkg)
	if pkg == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, pkg, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, pkg *analysis.Package, fd *ast.FuncDecl) {
	exempt := analysis.SelectEscapes(fd.Body)
	armed := analysis.ArmsDeadline(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !exempt[n] {
				pass.Reportf(n.Pos(), "unbounded channel send on a transport path; give the select an escape case or waive with //gkalint:unbounded <reason>")
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || exempt[n] || analysis.BoundedRecv(pass.Info, n.X) {
				return true
			}
			pass.Reportf(n.Pos(), "unbounded channel receive on a transport path; select against a timeout/done case or waive with //gkalint:unbounded <reason>")
		case *ast.RangeStmt:
			if desc, ok := analysis.BlockingNode(pkg, n, exempt); ok && desc == "for-range over a channel" {
				pass.Reportf(n.Pos(), "for-range over a channel blocks unboundedly between messages; waive with //gkalint:unbounded <reason> if this worker FIFO is unbounded by design")
			}
		case *ast.CallExpr:
			if armed {
				return true
			}
			if desc, kind, ok := analysis.BlockingCall(pkg, n); ok && kind == analysis.BlockIO {
				pass.Reportf(n.Pos(), "%s in a function that never arms SetDeadline; bound the wait or waive with //gkalint:unbounded <reason>", desc)
			}
		}
		return true
	})
}
