package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The global lock-acquisition graph: a directed edge A → B for every
// program point that acquires lock B while (transitively) holding lock
// A, with locks named at the type level ("pkg.Type.field"), so two call
// chains that take the same pair of locks in opposite orders show up as
// a cycle — the classic ABBA deadlock — before any execution does.
// Cycles are reported by the lockcycle analyzer; cmd/gkalint -lockgraph
// renders the whole graph as DOT for operators.

const (
	maxCycleLen = 6  // elementary cycles longer than this are noise
	maxCycles   = 32 // defensive cap; a real repo has a handful at most
)

// A LockEdge is one acquired-while-holding fact.
type LockEdge struct {
	From, To string   // canonical lock names
	Mode     LockMode // how To is acquired
	Pos      token.Pos
	Pkg      *Package
	Fn       string // function containing the acquisition (or call)
	Via      string // call chain when the acquisition is transitive
}

// Position resolves the edge's position against its package's fileset.
func (e *LockEdge) Position() token.Position { return e.Pkg.Fset.Position(e.Pos) }

// A LockCycle is an elementary cycle in the acquisition graph,
// canonicalised to start at its lexicographically smallest lock.
type LockCycle struct {
	Key   string // "A → B → A", used for dedupe and messages
	Edges []*LockEdge
}

// Describe renders the cycle with each edge's witness chain, e.g.
// "a.Mu → b.Mu in A.One via B.Two; b.Mu → a.Mu in B.Two via Poke".
func (c *LockCycle) Describe() string {
	parts := make([]string, 0, len(c.Edges))
	for _, e := range c.Edges {
		p := fmt.Sprintf("%s → %s in %s", e.From, e.To, e.Fn)
		if e.Via != "" {
			p += " via " + e.Via
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, "; ")
}

// Edges returns the deduplicated acquisition edges, sorted.
func (l *Locks) Edges() []*LockEdge { return l.edges }

// Cycles returns the elementary cycles found in the acquisition graph.
func (l *Locks) Cycles() []*LockCycle { return l.cycles }

// buildGraph runs the post-fixpoint edge pass: every declared function
// is walked once more, and each acquisition (direct or through a
// callee's summary) under a non-empty held set contributes edges.
func (l *Locks) buildGraph() {
	var raw []*LockEdge
	for _, fn := range l.prog.all {
		if fn.Lit != nil || fn.Body() == nil {
			continue // literals are reached through their enclosing function
		}
		fn := fn
		v := &LockVisitor{
			Acquire: func(mutex, canon string, mode LockMode, pos token.Pos, held HeldSet) {
				if canon == "" {
					return
				}
				for _, h := range held {
					if h.Canon == "" {
						continue
					}
					raw = append(raw, &LockEdge{From: h.Canon, To: canon, Mode: mode, Pos: pos, Pkg: fn.Pkg, Fn: fn.ShortName()})
				}
			},
			Call: func(call *ast.CallExpr, callee *Func, held HeldSet) {
				if len(held) == 0 {
					return
				}
				for _, target := range l.CallTargets(fn.Pkg, call, callee) {
					for canon, site := range l.summaryOf(target).acquires {
						for _, h := range held {
							if h.Canon == "" {
								continue
							}
							raw = append(raw, &LockEdge{From: h.Canon, To: canon, Mode: site.mode, Pos: call.Pos(), Pkg: fn.Pkg, Fn: fn.ShortName(), Via: chain(target, site.via)})
						}
					}
				}
			},
		}
		l.Walk(fn, nil, v)
	}
	// Deterministic order, then one witness per (From, To) pair —
	// direct edges sort before transitive ones at the same position
	// only by file order, which is stable.
	sort.Slice(raw, func(i, j int) bool {
		if raw[i].From != raw[j].From {
			return raw[i].From < raw[j].From
		}
		if raw[i].To != raw[j].To {
			return raw[i].To < raw[j].To
		}
		pi, pj := raw[i].Position(), raw[j].Position()
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return raw[i].Via < raw[j].Via
	})
	l.edges = l.edges[:0]
	seen := map[string]bool{}
	for _, e := range raw {
		k := e.From + "\x00" + e.To
		if seen[k] {
			continue
		}
		seen[k] = true
		l.edges = append(l.edges, e)
	}
	l.cycles = findCycles(l.edges)
}

// findCycles enumerates elementary cycles: a DFS from each start node in
// sorted order that only visits nodes >= the start, so every cycle is
// found exactly once, rooted at its smallest lock. Self-edges (acquiring
// a lock already held, e.g. through recursion) are length-1 cycles.
func findCycles(edges []*LockEdge) []*LockCycle {
	adj := map[string][]*LockEdge{}
	nodeSet := map[string]bool{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
		nodeSet[e.From], nodeSet[e.To] = true, true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var cycles []*LockCycle
	for _, start := range nodes {
		if len(cycles) >= maxCycles {
			break
		}
		var path []*LockEdge
		onPath := map[string]bool{start: true}
		var dfs func(node string)
		dfs = func(node string) {
			if len(cycles) >= maxCycles || len(path) >= maxCycleLen {
				return
			}
			for _, e := range adj[node] {
				if e.To < start {
					continue
				}
				if e.To == start {
					c := make([]*LockEdge, len(path)+1)
					copy(c, path)
					c[len(path)] = e
					names := make([]string, 0, len(c)+1)
					for _, ce := range c {
						names = append(names, ce.From)
					}
					names = append(names, start)
					cycles = append(cycles, &LockCycle{Key: strings.Join(names, " → "), Edges: c})
					continue
				}
				if onPath[e.To] {
					continue
				}
				onPath[e.To] = true
				path = append(path, e)
				dfs(e.To)
				path = path[:len(path)-1]
				delete(onPath, e.To)
			}
		}
		dfs(start)
	}
	return cycles
}

// DOT renders the acquisition graph for `gkalint -lockgraph`: one node
// per canonical lock, one labelled edge per acquired-while-holding
// witness. Locks on a cycle are drawn filled so the deadlock candidates
// stand out.
func (l *Locks) DOT() string {
	onCycle := map[string]bool{}
	for _, c := range l.cycles {
		for _, e := range c.Edges {
			onCycle[e.From], onCycle[e.To] = true, true
		}
	}
	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("\trankdir=LR;\n")
	b.WriteString("\tnode [shape=box, fontname=\"monospace\"];\n")
	nodeSet := map[string]bool{}
	for _, e := range l.edges {
		nodeSet[e.From], nodeSet[e.To] = true, true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if onCycle[n] {
			fmt.Fprintf(&b, "\t%q [style=filled, fillcolor=\"#ffdddd\"];\n", n)
		} else {
			fmt.Fprintf(&b, "\t%q;\n", n)
		}
	}
	for _, e := range l.edges {
		label := e.Fn
		if e.Via != "" {
			label += " → " + e.Via
		}
		if e.Mode == LockRead {
			label += " (RLock)"
		}
		fmt.Fprintf(&b, "\t%q -> %q [label=%q];\n", e.From, e.To, label)
	}
	b.WriteString("}\n")
	return b.String()
}
