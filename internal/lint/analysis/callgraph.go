package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// A Func is one analyzable function body in the program: a declared
// function or method (Decl set) or a function literal (Lit set), with
// the package it lives in. Function literals are registered so the
// taint engine can summarize closures bound to variables; their bodies
// are additionally scanned in place as part of their enclosing
// declaration, which is how captured variables stay visible.
type Func struct {
	// Key is the program-wide symbolic name — "pkgpath.Name" for
	// functions, "pkgpath.Type.Name" for methods, "" for literals.
	// Symbolic keys, not types.Object identity, link call sites to
	// declarations: each package is type-checked in its own object
	// universe (targets from source, imports from export data), so the
	// same declaration is a different object on each side of an import.
	Key  string
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *Package
}

// Body returns the function's body block (nil for bodyless declarations
// such as assembly stubs).
func (f *Func) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// Sig returns the function's AST type.
func (f *Func) Sig() *ast.FuncType {
	if f.Decl != nil {
		return f.Decl.Type
	}
	return f.Lit.Type
}

// IsMethod reports whether f is a declared method.
func (f *Func) IsMethod() bool { return f.Decl != nil && f.Decl.Recv != nil }

// ShortName is the human-readable name used in diagnostic paths.
func (f *Func) ShortName() string {
	if f.Decl != nil {
		return f.Decl.Name.Name
	}
	pos := f.Pkg.Fset.Position(f.Lit.Pos())
	return fmt.Sprintf("func@%d", pos.Line)
}

// Params returns the function's parameters in call-site order, receiver
// first for methods. Entries are nil for unnamed (or blank) parameters,
// which still occupy their positional slot.
func (f *Func) Params() []types.Object {
	var out []types.Object
	field := func(fl *ast.Field) {
		if len(fl.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, name := range fl.Names {
			out = append(out, f.Pkg.Info.Defs[name])
		}
	}
	if f.IsMethod() {
		for _, fl := range f.Decl.Recv.List {
			field(fl)
		}
	}
	if f.Sig().Params != nil {
		for _, fl := range f.Sig().Params.List {
			field(fl)
		}
	}
	return out
}

// Results returns the named result objects (nil entries for unnamed
// results) and the total result count.
func (f *Func) Results() ([]types.Object, int) {
	var out []types.Object
	if f.Sig().Results == nil {
		return nil, 0
	}
	for _, fl := range f.Sig().Results.List {
		if len(fl.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range fl.Names {
			out = append(out, f.Pkg.Info.Defs[name])
		}
	}
	return out, len(out)
}

// A Program is the whole-program view the interprocedural analyzers
// share: every function of every loaded package, indexed for call
// resolution, plus the cross-package annotation index. Build once per
// run (Run does this); analyzers reach it through Pass.Prog.
type Program struct {
	Pkgs  []*Package
	Index *Index

	funcs   map[string]*Func       // declared functions and methods by Key
	lits    map[*ast.FuncLit]*Func // literals by node
	all     []*Func                // deterministic order: package, file, position
	methods map[string][]*Func     // method name -> declared methods (interface fallback)

	taint *Taint // lazily built shared taint engine
	locks *Locks // lazily built shared lock engine
}

// BuildProgram indexes every function of the loaded packages.
func BuildProgram(pkgs []*Package, idx *Index) *Program {
	p := &Program{
		Pkgs:    pkgs,
		Index:   idx,
		funcs:   map[string]*Func{},
		lits:    map[*ast.FuncLit]*Func{},
		methods: map[string][]*Func{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					fn := &Func{Decl: n, Pkg: pkg}
					if obj, ok := pkg.Info.Defs[n.Name].(*types.Func); ok {
						fn.Key = FuncKey(obj)
					}
					if fn.Key != "" {
						p.funcs[fn.Key] = fn
					}
					if n.Recv != nil {
						p.methods[n.Name.Name] = append(p.methods[n.Name.Name], fn)
					}
					p.all = append(p.all, fn)
				case *ast.FuncLit:
					fn := &Func{Lit: n, Pkg: pkg}
					p.lits[n] = fn
					p.all = append(p.all, fn)
				}
				return true
			})
		}
	}
	return p
}

// Funcs returns every indexed function in deterministic order.
func (p *Program) Funcs() []*Func { return p.all }

// PackageOf maps a pass's type-checked package back to its loaded
// Package (analyzers hold a *types.Package; the program indexes the
// loader's wrappers).
func (p *Program) PackageOf(tp *types.Package) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Types == tp {
			return pkg
		}
	}
	return nil
}

// FuncByKey resolves a symbolic key to its declaration.
func (p *Program) FuncByKey(key string) *Func { return p.funcs[key] }

// FuncKey computes the symbolic program-wide key of a function object:
// "pkgpath.Name", or "pkgpath.Type.Name" for a method (pointerness of
// the receiver erased). Interface methods and builtins yield "".
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if pt, ok := t.Underlying().(*types.Pointer); ok {
			t = pt.Elem()
		}
		if _, ok := t.Underlying().(*types.Interface); ok {
			return "" // dynamic dispatch: no single declaration
		}
		name := NamedName(t)
		if name == "" {
			return ""
		}
		return name + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// Callee resolves a call expression to the in-program function it
// invokes: a function literal called in place, or a declared function
// or method (by symbolic key). Calls through variables, interfaces and
// out-of-program targets return nil.
func (p *Program) Callee(pkg *Package, call *ast.CallExpr) *Func {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return p.lits[lit]
	}
	fn, ok := CalleeObj(pkg.Info, call).(*types.Func)
	if !ok {
		return nil
	}
	return p.funcs[FuncKey(fn)]
}

// IsInterfaceCall reports whether the call dispatches dynamically
// through an interface method.
func IsInterfaceCall(pkg *Package, call *ast.CallExpr) bool {
	fn, ok := CalleeObj(pkg.Info, call).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if pt, ok := t.Underlying().(*types.Pointer); ok {
		t = pt.Elem()
	}
	_, isIface := t.Underlying().(*types.Interface)
	return isIface
}

// Implementers returns the conservative implementation set of an
// interface method: every declared method in the program with the same
// name and parameter count. Name-based matching (rather than
// types.Implements) is deliberate — packages type-checked from source
// and their export-data images live in distinct type universes, so
// object-identity–based checks do not carry across them. The
// over-approximation is the documented "conservative: all
// implementations" fallback.
func (p *Program) Implementers(name string, nparams int) []*Func {
	var out []*Func
	for _, fn := range p.methods[name] {
		if len(fn.Params()) == nparams+1 { // +1: receiver slot
			out = append(out, fn)
		}
	}
	return out
}

// PathWithin reports whether an import path is the repo package or a
// fixture replica of it: equal to full, or ending in "/"+full's slash
// form — so analyzers scoped to real packages also fire on analysistest
// fixtures replicating those paths under testdata/src.
func PathWithin(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}
