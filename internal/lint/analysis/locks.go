package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program lock engine shared by the concurrency
// analyzers (lockorder v2, blockunderlock, lockcycle). It mirrors the
// taint engine's architecture: every function gets a summary — the
// locks it net-acquires or net-releases on behalf of its caller, the
// locks it may transitively acquire anywhere beneath it, and whether it
// may block — iterated to a bounded fixpoint so recursion converges.
// On top of the summaries, a source-order walker maintains the held
// lock set through helpers, function literals, and method values
// instead of discarding it at every call boundary (the v1 lockorder
// limitation that forced //gkalint:unlocked waivers exactly where the
// risk lives).
//
// Deliberate approximations, documented in docs/STATIC-ANALYSIS.md:
// held keys are expression paths ("mb.mu", "s.mb.mu") so aliasing is
// invisible; a lock acquired only on one branch does not propagate out
// of the function; interface calls and function-typed parameters do not
// carry held-set effects (only blocking and acquisition summaries, via
// the conservative implementer union); and escaping function literals
// inherit the held set at their creation site — the closure usually
// runs either in place (sort.Search) or on a fresh goroutine, and the
// go-statement case is walked separately with an empty held set.

// A LockMode distinguishes exclusive from read-shared acquisition.
type LockMode int

const (
	// LockRead is an RLock acquisition.
	LockRead LockMode = iota + 1
	// LockWrite is an exclusive Lock acquisition.
	LockWrite
)

func (m LockMode) String() string {
	if m == LockRead {
		return "RLock"
	}
	return "Lock"
}

// HeldInfo describes one held lock: the mode it is held in and the
// type-level canonical name of the mutex ("pkgpath.Type.field" for a
// struct-field mutex, "pkgpath.var" for a package-level one, "" for a
// local the graph cannot name).
type HeldInfo struct {
	Mode  LockMode
	Canon string
}

// A HeldSet maps in-function lock expression paths (types.ExprString of
// the mutex expression, e.g. "mb.mu" or "s.mb.mu") to how they are held.
type HeldSet map[string]HeldInfo

// Copy returns an independent copy, used for branch bodies so an
// early-return Unlock inside an if-branch does not leak out.
func (h HeldSet) Copy() HeldSet {
	c := make(HeldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// Describe renders the held set for diagnostics, sorted, with canonical
// names where known: "mb.mu (idgka.Member.mu)".
func (h HeldSet) Describe() string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		if c := h[k].Canon; c != "" && c != k {
			parts = append(parts, k+" ("+c+")")
		} else {
			parts = append(parts, k)
		}
	}
	return strings.Join(parts, ", ")
}

// A BlockSite is a (possibly transitive) blocking operation: where it
// is, what it does, and the call chain that reaches it.
type BlockSite struct {
	Pos  token.Pos
	Desc string
	Via  string // call chain from the summarized function, "" if direct
	Kind BlockKind
}

// heldMeta is a summary-side held lock: mode plus canonical name.
type heldMeta struct {
	mode  LockMode
	canon string
}

// acqSite records one (possibly transitive) lock acquisition for the
// global graph.
type acqSite struct {
	pos  token.Pos
	pkg  *Package
	via  string
	mode LockMode
}

// A lockSummary is one function's lock behaviour as seen from call
// sites.
type lockSummary struct {
	exitHeld  map[string]heldMeta // "#i[.path]" net-acquired at exit
	exitFreed map[string]bool     // "#i[.path]" caller locks net-released at exit
	acquires  map[string]acqSite  // canonical name -> transitive acquisition
	block     *BlockSite          // first transitive unescaped blocking op
}

func newLockSummary() *lockSummary {
	return &lockSummary{
		exitHeld:  map[string]heldMeta{},
		exitFreed: map[string]bool{},
		acquires:  map[string]acqSite{},
	}
}

func (s *lockSummary) recordAcquire(canon string, at acqSite) {
	if _, ok := s.acquires[canon]; !ok {
		s.acquires[canon] = at
	}
}

func lockSummaryEqual(a, b *lockSummary) bool {
	if len(a.exitHeld) != len(b.exitHeld) || len(a.exitFreed) != len(b.exitFreed) || len(a.acquires) != len(b.acquires) {
		return false
	}
	for k, v := range a.exitHeld {
		if b.exitHeld[k] != v {
			return false
		}
	}
	for k := range a.exitFreed {
		if !b.exitFreed[k] {
			return false
		}
	}
	for k, v := range a.acquires {
		o, ok := b.acquires[k]
		if !ok || o != v {
			return false
		}
	}
	if (a.block == nil) != (b.block == nil) {
		return false
	}
	if a.block != nil && *a.block != *b.block {
		return false
	}
	return true
}

// Locks is the shared whole-program lock engine. Build it once per run
// through Program.Locks; the concurrency analyzers all consume it.
type Locks struct {
	prog   *Program
	sums   map[*Func]*lockSummary
	edges  []*LockEdge
	cycles []*LockCycle
}

// Locks returns the program's shared lock engine, building it on first
// use: the bounded summary fixpoint followed by the acquisition-graph
// pass.
func (p *Program) Locks() *Locks {
	if p.locks != nil {
		return p.locks
	}
	l := &Locks{prog: p, sums: map[*Func]*lockSummary{}}
	l.buildSummaries()
	l.buildGraph()
	p.locks = l
	return l
}

func (l *Locks) summaryOf(fn *Func) *lockSummary {
	if s, ok := l.sums[fn]; ok {
		return s
	}
	return newLockSummary()
}

// FnBlock returns the function's transitive blocking site, or nil.
func (l *Locks) FnBlock(fn *Func) *BlockSite { return l.summaryOf(fn).block }

// buildSummaries iterates the per-function summaries to a bounded
// fixpoint, exactly like the taint engine: round N sees the round N-1
// summaries of every callee, so effects through recursion and mutual
// recursion accumulate monotonically.
func (l *Locks) buildSummaries() {
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, fn := range l.prog.all {
			if fn.Body() == nil {
				continue
			}
			s := l.computeSummary(fn)
			if !lockSummaryEqual(l.summaryOf(fn), s) {
				changed = true
			}
			l.sums[fn] = s
		}
		if !changed {
			break
		}
	}
}

func (l *Locks) computeSummary(fn *Func) *lockSummary {
	sum := newLockSummary()
	w := newLockWalker(l, fn)
	w.freed = map[string]bool{}
	w.skipEscaping = true
	w.v = &LockVisitor{
		Acquire: func(mutex, canon string, mode LockMode, pos token.Pos, held HeldSet) {
			if canon != "" {
				sum.recordAcquire(canon, acqSite{pos: pos, pkg: fn.Pkg, mode: mode})
			}
		},
		Call: func(call *ast.CallExpr, callee *Func, held HeldSet) {
			for _, target := range l.CallTargets(fn.Pkg, call, callee) {
				ts := l.summaryOf(target)
				for canon, site := range ts.acquires {
					sum.recordAcquire(canon, acqSite{pos: call.Pos(), pkg: fn.Pkg, via: chain(target, site.via), mode: site.mode})
				}
				if ts.block != nil && sum.block == nil {
					sum.block = &BlockSite{Pos: call.Pos(), Desc: ts.block.Desc, Via: chain(target, ts.block.Via), Kind: ts.block.Kind}
				}
			}
		},
		Blocked: func(pos token.Pos, desc string, kind BlockKind, held HeldSet) {
			if sum.block == nil {
				sum.block = &BlockSite{Pos: pos, Desc: desc, Kind: kind}
			}
		},
	}
	held := HeldSet{}
	w.walk(held)
	for _, fire := range w.deferred {
		fire(held)
	}
	for k, hi := range held {
		if pk, ok := w.paramRel(k); ok {
			sum.exitHeld[pk] = heldMeta{mode: hi.Mode, canon: hi.Canon}
		}
	}
	sum.exitFreed = w.freed
	return sum
}

// chain prefixes a callee onto an existing call chain.
func chain(target *Func, via string) string {
	if via == "" {
		return target.ShortName()
	}
	return target.ShortName() + " → " + via
}

// CallTargets resolves a call to the functions it may invoke: the
// direct in-program callee, or — for interface dispatch — the
// conservative implementer union, narrowed to receivers whose method
// set covers every method name of the dispatching interface (name-only
// matching survives the per-package type universes; without the
// narrowing, any type with a Close method is a candidate net.Conn).
// callee is the already-resolved direct target (may be nil).
func (l *Locks) CallTargets(pkg *Package, call *ast.CallExpr, callee *Func) []*Func {
	if callee != nil {
		return []*Func{callee}
	}
	if !IsInterfaceCall(pkg, call) {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	names := interfaceMethodNames(pkg, call)
	var out []*Func
	for _, fn := range l.prog.Implementers(sel.Sel.Name, len(call.Args)) {
		if coversMethods(fn, names) {
			out = append(out, fn)
		}
	}
	return out
}

// interfaceMethodNames returns every method name of the interface a
// dynamic call dispatches through.
func interfaceMethodNames(pkg *Package, call *ast.CallExpr) []string {
	fn, ok := CalleeObj(pkg.Info, call).(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	names := make([]string, 0, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		names = append(names, iface.Method(i).Name())
	}
	return names
}

// coversMethods reports whether the declared method's receiver type has
// a method for every listed name (checked in the receiver's own type
// universe, so it is sound across per-package checking).
func coversMethods(fn *Func, names []string) bool {
	obj, ok := fn.Pkg.Info.Defs[fn.Decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	have := make(map[string]bool, ms.Len())
	for i := 0; i < ms.Len(); i++ {
		have[ms.At(i).Obj().Name()] = true
	}
	for _, n := range names {
		if !have[n] {
			return false
		}
	}
	return true
}

// A LockVisitor receives the walker's events. Any hook may be nil.
type LockVisitor struct {
	// Node fires for every statement and expression node in source
	// order with the held set current at that point. Returning false
	// prunes the node's subtree.
	Node func(n ast.Node, held HeldSet) bool
	// Acquire fires on a direct Lock/RLock, before the held set gains
	// the mutex. canon is "" for locks the graph cannot name.
	Acquire func(mutex, canon string, mode LockMode, pos token.Pos, held HeldSet)
	// Call fires on every non-lock-op call with the held set at call
	// time, before the callee's net lock effects are applied. callee is
	// the resolved in-program target, nil for external or interface
	// calls.
	Call func(call *ast.CallExpr, callee *Func, held HeldSet)
	// Blocked fires on every direct blocking site from the shared
	// catalogue that has no escape (select case, bounded source, or —
	// for I/O — a deadline armed in the same function).
	Blocked func(pos token.Pos, desc string, kind BlockKind, held HeldSet)
}

// Walk traverses fn's body in source order, maintaining the held lock
// set interprocedurally (direct Lock/Unlock plus the net effects of
// in-program callees' summaries, through helpers, function literals and
// bound method values) and invoking the visitor's hooks. seed is the
// held set on entry (nil for empty) — analyzers use it to model the
// *Locked calling contract.
func (l *Locks) Walk(fn *Func, seed HeldSet, v *LockVisitor) {
	if fn.Body() == nil {
		return
	}
	w := newLockWalker(l, fn)
	w.v = v
	if seed == nil {
		seed = HeldSet{}
	}
	w.walk(seed)
}

// ---------------------------------------------------------------------
// The walker

// lockBinding is a local variable bound to a known function value, so a
// later call through the variable applies the target's summary. For
// method values the receiver's expression text is captured at bind time.
type lockBinding struct {
	fn       *Func
	recvText string
	isMethod bool
}

type lockWalker struct {
	l  *Locks
	fn *Func
	v  *LockVisitor

	params   map[string]int // root identifier name -> param slot (receiver first)
	exempt   map[ast.Node]bool
	armed    bool
	inPlace  map[*ast.FuncLit]bool
	bindings map[types.Object]*lockBinding

	freed        map[string]bool   // summary mode: caller locks net-released
	skipEscaping bool              // summary mode: escaping literals are not this function's effects
	deferred     []func(h HeldSet) // release effects that fire at function exit
}

func newLockWalker(l *Locks, fn *Func) *lockWalker {
	w := &lockWalker{
		l: l, fn: fn,
		params:   map[string]int{},
		exempt:   SelectEscapes(fn.Body()),
		armed:    ArmsDeadline(fn.Body()),
		inPlace:  map[*ast.FuncLit]bool{},
		bindings: map[types.Object]*lockBinding{},
	}
	for i, obj := range fn.Params() {
		if obj != nil && obj.Name() != "" && obj.Name() != "_" {
			w.params[obj.Name()] = i
		}
	}
	return w
}

func (w *lockWalker) pkg() *Package     { return w.fn.Pkg }
func (w *lockWalker) info() *types.Info { return w.fn.Pkg.Info }

func (w *lockWalker) walk(held HeldSet) {
	w.stmts(w.fn.Body().List, held)
}

func (w *lockWalker) stmts(list []ast.Stmt, held HeldSet) {
	for _, st := range list {
		w.stmt(st, held)
	}
}

func (w *lockWalker) stmt(st ast.Stmt, held HeldSet) {
	if st == nil {
		return
	}
	if w.v.Node != nil && !w.v.Node(st, held) {
		return
	}
	switch st := st.(type) {
	case *ast.ExprStmt:
		if mutex, op, ok := mutexOp(w.pkg(), st.X); ok {
			w.transition(mutex, op, st.Pos(), held)
			return
		}
		w.expr(st.X, held)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.expr(r, held)
		}
		for _, l := range st.Lhs {
			w.expr(l, held)
		}
		w.recordBindings(st)
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held for the remainder of
		// the scan — which is exactly the runtime behaviour until
		// return — but the release must still reach the function's exit
		// state, or every mu.Lock(); defer mu.Unlock() helper would
		// claim to net-acquire its lock. The same goes for deferred
		// in-program helpers (defer s.unlockMember()): their net effects
		// are queued and applied when the summary computes the exit set.
		if mutex, op, ok := mutexOp(w.pkg(), st.Call); ok {
			if op == "Unlock" || op == "RUnlock" {
				key := types.ExprString(mutex)
				w.deferred = append(w.deferred, func(h HeldSet) { w.release(key, h) })
			}
			return
		}
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			w.inPlace[lit] = true
			w.stmts(lit.Body.List, held.Copy())
		} else {
			callee := w.l.prog.Callee(w.pkg(), st.Call)
			if w.v.Call != nil {
				w.v.Call(st.Call, callee, held)
			}
			if callee != nil && callee != w.fn && callee.Body() != nil {
				slots := w.callSlots(st.Call, callee)
				w.deferred = append(w.deferred, func(h HeldSet) { w.applySummary(callee, slots, h) })
			}
		}
		for _, a := range st.Call.Args {
			w.expr(a, held)
		}
	case *ast.GoStmt:
		// The goroutine body runs later, without this function's locks,
		// and the spawned callee's lock effects are not the spawner's.
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			w.inPlace[lit] = true
			w.stmts(lit.Body.List, HeldSet{})
		}
		for _, a := range st.Call.Args {
			w.expr(a, held)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		w.expr(st.Cond, held)
		w.stmts(st.Body.List, held.Copy())
		if st.Else != nil {
			w.stmt(st.Else, held.Copy())
		}
	case *ast.BlockStmt:
		w.stmts(st.List, held)
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.expr(st.Cond, held)
		}
		w.stmts(st.Body.List, held.Copy())
	case *ast.RangeStmt:
		if desc, ok := BlockingNode(w.pkg(), st, w.exempt); ok {
			w.blocked(st.Pos(), desc, BlockChan, held)
		}
		w.expr(st.X, held)
		w.stmts(st.Body.List, held.Copy())
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			w.expr(st.Tag, held)
		}
		for _, cc := range st.Body.List {
			w.stmts(cc.(*ast.CaseClause).Body, held.Copy())
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			w.stmts(cc.(*ast.CaseClause).Body, held.Copy())
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			c := held.Copy()
			if comm := cc.(*ast.CommClause).Comm; comm != nil {
				w.stmt(comm, c)
			}
			w.stmts(cc.(*ast.CommClause).Body, c)
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	case *ast.IncDecStmt:
		w.expr(st.X, held)
	case *ast.SendStmt:
		if desc, ok := BlockingNode(w.pkg(), st, w.exempt); ok {
			w.blocked(st.Pos(), desc, BlockChan, held)
		}
		w.expr(st.Chan, held)
		w.expr(st.Value, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	}
}

// expr traverses one expression subtree, firing Node hooks, applying
// call effects, walking function literals, and catching blocking
// receives.
func (w *lockWalker) expr(e ast.Expr, held HeldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if w.v.Node != nil && !w.v.Node(n, held) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if w.inPlace[n] {
				return false // body walked by the call that invokes it
			}
			// Escaping literal: inherits the held set at its creation
			// site (see the package comment for why).
			if !w.skipEscaping {
				w.stmts(n.Body.List, held.Copy())
			}
			return false
		case *ast.CallExpr:
			if mutex, op, ok := mutexOp(w.pkg(), n); ok {
				w.transition(mutex, op, n.Pos(), held)
				return false
			}
			w.call(n, held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if desc, ok := BlockingNode(w.pkg(), n, w.exempt); ok {
					w.blocked(n.Pos(), desc, BlockChan, held)
				}
			}
		}
		return true
	})
}

// call fires the visitor, then applies the callee's net lock effects to
// the held set.
func (w *lockWalker) call(call *ast.CallExpr, held HeldSet) {
	if desc, kind, ok := BlockingCall(w.pkg(), call); ok {
		w.blocked(call.Pos(), desc, kind, held)
	}
	// Function literal invoked in place: its body runs here, under the
	// current held set, and its transitions flow back out.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.inPlace[lit] = true
		if w.v.Call != nil {
			w.v.Call(call, w.l.prog.lits[lit], held)
		}
		w.stmts(lit.Body.List, held)
		return
	}
	callee := w.l.prog.Callee(w.pkg(), call)
	var slotText func(int) (string, bool)
	if callee == nil {
		// Call through a local binding (func value or method value).
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := w.info().Uses[id]; obj != nil {
				if b := w.bindings[obj]; b != nil {
					callee = b.fn
					slotText = func(slot int) (string, bool) {
						if b.isMethod {
							if slot == 0 {
								return b.recvText, b.recvText != ""
							}
							slot--
						}
						if slot < len(call.Args) {
							return argText(call.Args[slot]), true
						}
						return "", false
					}
				}
			}
		}
	}
	if w.v.Call != nil {
		w.v.Call(call, callee, held)
	}
	if callee == nil || callee == w.fn || callee.Body() == nil {
		return
	}
	if slotText == nil {
		slotText = w.callSlots(call, callee)
	}
	w.applySummary(callee, slotText, held)
}

// applySummary maps a callee's net lock effects into the caller's held
// set through the call-site argument texts.
func (w *lockWalker) applySummary(callee *Func, slotText func(int) (string, bool), held HeldSet) {
	sum := w.l.summaryOf(callee)
	mapKey := func(key string) (string, bool) {
		tag, rest, _ := strings.Cut(key, ".")
		slot, ok := tagIndex(tag)
		if !ok {
			return "", false
		}
		text, ok := slotText(slot)
		if !ok || text == "" {
			return "", false
		}
		if rest != "" {
			text += "." + rest
		}
		return text, true
	}
	for key := range sum.exitFreed {
		if ck, ok := mapKey(key); ok {
			w.release(ck, held)
		}
	}
	for key, hm := range sum.exitHeld {
		if ck, ok := mapKey(key); ok {
			w.addHeld(held, ck, hm.mode, hm.canon)
		}
	}
}

// callSlots maps a callee's receiver-first parameter slots to argument
// expression texts at this call site.
func (w *lockWalker) callSlots(call *ast.CallExpr, callee *Func) func(int) (string, bool) {
	recvText := ""
	methodVal := false
	if callee.IsMethod() {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, found := w.info().Selections[sel]; found && s.Kind() == types.MethodVal {
				methodVal = true
				recvText = argText(sel.X)
			}
		}
	}
	return func(slot int) (string, bool) {
		if methodVal {
			if slot == 0 {
				return recvText, recvText != ""
			}
			slot--
		}
		if slot < len(call.Args) {
			return argText(call.Args[slot]), true
		}
		return "", false
	}
}

// argText renders an argument as a lock-path root, looking through
// parens and a leading address-of (a helper taking *sync.Mutex is
// called with &x.mu, whose path is x.mu).
func argText(e ast.Expr) string {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	return types.ExprString(e)
}

func (w *lockWalker) transition(mutex ast.Expr, op string, pos token.Pos, held HeldSet) {
	key := types.ExprString(mutex)
	switch op {
	case "Lock", "RLock":
		mode := LockWrite
		if op == "RLock" {
			mode = LockRead
		}
		canon := w.canonOf(mutex)
		if w.v.Acquire != nil {
			w.v.Acquire(key, canon, mode, pos, held)
		}
		w.addHeld(held, key, mode, canon)
	case "Unlock", "RUnlock":
		w.release(key, held)
	}
}

func (w *lockWalker) addHeld(held HeldSet, key string, mode LockMode, canon string) {
	if cur, ok := held[key]; ok {
		if mode > cur.Mode {
			cur.Mode = mode
		}
		if cur.Canon == "" {
			cur.Canon = canon
		}
		held[key] = cur
		return
	}
	held[key] = HeldInfo{Mode: mode, Canon: canon}
}

func (w *lockWalker) release(key string, held HeldSet) {
	if _, ok := held[key]; ok {
		delete(held, key)
		return
	}
	// Releasing a lock this function never took: it is the caller's.
	if w.freed != nil {
		if pk, ok := w.paramRel(key); ok {
			w.freed[pk] = true
		}
	}
}

func (w *lockWalker) blocked(pos token.Pos, desc string, kind BlockKind, held HeldSet) {
	if kind == BlockIO && w.armed {
		return // a deadline armed in this function bounds its I/O
	}
	if w.v.Blocked != nil {
		w.v.Blocked(pos, desc, kind, held)
	}
}

// paramRel translates an in-function lock path to a caller-visible
// "#i[.path]" key when its root is a parameter or the receiver.
func (w *lockWalker) paramRel(key string) (string, bool) {
	root, rest, _ := strings.Cut(key, ".")
	i, ok := w.params[root]
	if !ok {
		return "", false
	}
	out := paramTag(i)
	if rest != "" {
		out += "." + rest
	}
	return out, true
}

// canonOf names a mutex expression at the type level: the declaring
// struct's "pkgpath.Type.field" for field mutexes, "pkgpath.name" for
// package-level ones, "" for locals.
func (w *lockWalker) canonOf(mutex ast.Expr) string {
	switch m := ast.Unparen(mutex).(type) {
	case *ast.SelectorExpr:
		if fld, owner, ok := FieldOf(w.info(), m); ok {
			return owner + "." + fld.Name()
		}
	case *ast.Ident:
		if obj := w.info().Uses[m]; obj != nil && obj.Pkg() != nil {
			if v, isVar := obj.(*types.Var); isVar && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
	}
	return ""
}

// recordBindings tracks locals bound to known function values so calls
// through the variable apply the target's lock summary; method values
// capture the receiver path at bind time.
func (w *lockWalker) recordBindings(st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := w.info().Defs[id]
		if obj == nil {
			obj = w.info().Uses[id]
		}
		if obj == nil {
			continue
		}
		var b *lockBinding
		switch r := ast.Unparen(st.Rhs[i]).(type) {
		case *ast.FuncLit:
			b = &lockBinding{fn: w.l.prog.lits[r]}
		case *ast.Ident:
			if tf, isFn := w.info().Uses[r].(*types.Func); isFn {
				b = &lockBinding{fn: w.l.prog.funcs[FuncKey(tf)]}
			}
		case *ast.SelectorExpr:
			if sel, found := w.info().Selections[r]; found && sel.Kind() == types.MethodVal {
				if tf, isFn := sel.Obj().(*types.Func); isFn {
					if target := w.l.prog.funcs[FuncKey(tf)]; target != nil {
						b = &lockBinding{fn: target, recvText: argText(r.X), isMethod: true}
					}
				}
			} else if tf, isFn := w.info().Uses[r.Sel].(*types.Func); isFn {
				b = &lockBinding{fn: w.l.prog.funcs[FuncKey(tf)]}
			}
		}
		if b != nil && b.fn != nil {
			w.bindings[obj] = b
		}
	}
}

// mutexOp matches x.mu.Lock()-shaped calls on sync mutexes, returning
// the mutex expression and the operation.
func mutexOp(pkg *Package, e ast.Expr) (mutex ast.Expr, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return nil, "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	if !IsMutex(pkg.Info.Types[sel.X].Type) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}
