package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the whole-program taint engine shared by the
// interprocedural analyzers (secretflow v2, consttime). Taint roots are
// the repo's declared secrets — the builtin key-material list plus every
// //gkalint:secret marker collected in the annotation index. Taint
// propagates through assignments, returns, composite literals, closures
// scanned in place, method values, and call boundaries via per-function
// summaries; a bounded fixpoint over the summaries makes the engine
// whole-program without ever being more than linear passes over each
// body. Deliberate non-goals, documented in docs/STATIC-ANALYSIS.md:
// writes into container objects (x.f = secret taints neither x nor other
// readers of x), channels, and package-level variables do not carry
// taint, and unknown out-of-program callees (the standard library,
// except the explicit propagator lists below) act as sanitizers.

// BuiltinSecrets is the floor of taint roots: the repo's known key
// material, enforced even where //gkalint:secret annotations are outside
// the analyzed package set. "pkgpath.Type" marks a whole type,
// "pkgpath.Type.Field" one struct field.
var BuiltinSecrets = []string{
	"idgka/internal/sigs/gq.PrivateKey",
	"idgka/internal/sigs/gq.PrivateKey.S",
	"idgka/internal/sigs/sok.PrivateKey",
	"idgka/internal/sigs/sok.PrivateKey.D",
	"idgka/internal/sigs/sok.PKG.s",
	"idgka/internal/engine.Group.R",
	"idgka/internal/engine.Group.Key",
	"idgka.Session.key",
}

// SinkPkgs are the packages whose call arguments constitute formatted
// or exported output: key material reaching any of them is a leak.
var SinkPkgs = map[string]bool{
	"fmt":                    true,
	"log":                    true,
	"log/slog":               true,
	"idgka/internal/metrics": true,
}

// bigCarry lists the math/big.Int methods that preserve or encode the
// receiver's (or argument's) value: taint rides through them. Arithmetic
// (Exp, Mul, Mod, ...) deliberately does not propagate — a group element
// computed from a secret exponent is public key-agreement material, and
// flagging it would taint every derived public value in the repo.
var bigCarry = map[string]bool{
	"Set": true, "SetBytes": true, "SetBits": true, "SetString": true,
	"Neg": true, "Abs": true,
	"Bytes": true, "FillBytes": true, "Text": true, "String": true,
	"Append": true, "AppendText": true, "Bits": true, "Bit": true,
	"Int64": true, "Uint64": true,
	"GobEncode": true, "MarshalText": true, "MarshalJSON": true,
}

// bigMutate is the subset of bigCarry that writes the receiver.
var bigMutate = map[string]bool{
	"Set": true, "SetBytes": true, "SetBits": true, "SetString": true,
	"Neg": true, "Abs": true,
}

// encoderPkgs re-encode their arguments: the output is the secret in a
// different alphabet, so taint propagates.
var encoderPkgs = map[string]bool{
	"encoding/hex": true, "encoding/base64": true, "encoding/json": true,
}

// stringifierCarry are method names that serialize their receiver on any
// type; a tainted receiver taints the result.
var stringifierCarry = map[string]bool{
	"String": true, "GoString": true, "Text": true, "Bytes": true,
	"Append": true, "AppendText": true, "MarshalText": true, "MarshalJSON": true,
}

// A taintSet is the set of root names an expression's value derives
// from. During summary computation the set also carries positional
// parameter tags ("#0", "#1", ...).
type taintSet map[string]bool

func (ts taintSet) add(r string) bool {
	if ts[r] {
		return false
	}
	ts[r] = true
	return true
}

func (ts taintSet) merge(o taintSet) bool {
	changed := false
	for r := range o {
		if ts.add(r) {
			changed = true
		}
	}
	return changed
}

func paramTag(i int) string { return "#" + strconv.Itoa(i) }

func tagIndex(r string) (int, bool) {
	if !strings.HasPrefix(r, "#") {
		return 0, false
	}
	i, err := strconv.Atoi(r[1:])
	return i, err == nil
}

// sinkInfo describes where a tainted parameter ends up.
type sinkInfo struct {
	Pkg string // sink package path (fmt, log, ...)
	Via string // call chain from the summarized function to the sink, "" if direct
}

// A summary is one function's taint behaviour as seen from call sites.
type summary struct {
	flows map[int]uint64   // param index -> bitmask of tainted results
	sinks map[int]sinkInfo // param index -> sink it (transitively) reaches
	rets  map[int]taintSet // result index -> roots tainted unconditionally
}

func newSummary() *summary {
	return &summary{flows: map[int]uint64{}, sinks: map[int]sinkInfo{}, rets: map[int]taintSet{}}
}

func summaryEqual(a, b *summary) bool {
	if len(a.flows) != len(b.flows) || len(a.sinks) != len(b.sinks) || len(a.rets) != len(b.rets) {
		return false
	}
	for k, v := range a.flows {
		if b.flows[k] != v {
			return false
		}
	}
	for k, v := range a.sinks {
		if b.sinks[k] != v {
			return false
		}
	}
	for k, v := range a.rets {
		o, ok := b.rets[k]
		if !ok || len(o) != len(v) {
			return false
		}
		for r := range v {
			if !o[r] {
				return false
			}
		}
	}
	return true
}

// Fixpoint bounds. Summary rounds bound the interprocedural fixpoint
// (recursion and mutual recursion converge round by round); scan
// iterations bound the flow-insensitive propagation inside one body.
// Both are hard caps so a pathological input degrades to an
// under-approximation instead of blowing up CI time.
const (
	maxSummaryRounds = 6
	maxScanIters     = 8
)

// A Leak is one secret value reaching a sink, attributed to the source
// root and the call chain that carried it.
type Leak struct {
	Pos  token.Pos
	Root string // the secret's declared name
	Sink string // sink package path
	Via  string // call chain ("helper → fmt.Errorf"), "" for direct calls
}

// Taint is the shared whole-program taint engine. Build it once per run
// through Program.Taint; secretflow and consttime both consume it.
type Taint struct {
	prog         *Program
	secrets      map[string]bool
	sums         map[*Func]*summary
	secretParams map[*Func]map[int]taintSet
	spChanged    bool
}

// Taint returns the program's shared taint engine, building it on first
// use: the bounded summary fixpoint followed by the forward
// secret-parameter propagation.
func (p *Program) Taint() *Taint {
	if p.taint != nil {
		return p.taint
	}
	t := &Taint{
		prog:         p,
		secrets:      map[string]bool{},
		sums:         map[*Func]*summary{},
		secretParams: map[*Func]map[int]taintSet{},
	}
	for _, s := range BuiltinSecrets {
		t.secrets[s] = true
	}
	for s := range p.Index.Secrets {
		t.secrets[s] = true
	}
	t.buildSummaries()
	t.buildSecretParams()
	p.taint = t
	return t
}

// Secret reports whether a root name is in the engine's secret set.
func (t *Taint) Secret(name string) bool { return t.secrets[name] }

func (t *Taint) summaryOf(fn *Func) *summary {
	if s, ok := t.sums[fn]; ok {
		return s
	}
	return newSummary()
}

// buildSummaries computes every function's summary, iterating rounds
// until the summaries stop changing (or the bound is hit): round N sees
// the round N-1 summaries of every callee, so flows through recursion
// and mutual recursion accumulate monotonically.
func (t *Taint) buildSummaries() {
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, fn := range t.prog.all {
			if fn.Body() == nil {
				continue
			}
			s := t.computeSummary(fn)
			if !summaryEqual(t.summaryOf(fn), s) {
				changed = true
			}
			t.sums[fn] = s
		}
		if !changed {
			break
		}
	}
}

func (t *Taint) computeSummary(fn *Func) *summary {
	ft := newFnTaint(t, fn, modeSummary)
	for i, obj := range fn.Params() {
		if obj != nil {
			ft.vars[obj] = taintSet{paramTag(i): true}
		}
	}
	ft.propagate()
	s := newSummary()
	results, _ := fn.Results()
	for i, obj := range results {
		if obj != nil {
			ft.mergeRet(i, ft.vars[obj])
		}
	}
	for i, ts := range ft.retTaint {
		for r := range ts {
			if p, ok := tagIndex(r); ok {
				s.flows[p] |= 1 << uint(i)
			} else {
				if s.rets[i] == nil {
					s.rets[i] = taintSet{}
				}
				s.rets[i].add(r)
			}
		}
	}
	s.sinks = ft.paramSinks
	return s
}

// buildSecretParams propagates secrets forward from call sites: a
// parameter is secret-carrying if any caller, anywhere in the program,
// passes it a tainted argument. Bounded rounds make transitive chains
// (engine → bdkey → mathx) converge.
func (t *Taint) buildSecretParams() {
	for round := 0; round < maxSummaryRounds; round++ {
		t.spChanged = false
		for _, fn := range t.prog.all {
			if fn.Body() == nil || fn.Lit != nil {
				continue // literals are scanned in place by their encloser
			}
			ft := newFnTaint(t, fn, modeForward)
			ft.capturing = true
			ft.seedForward()
			ft.propagate()
		}
		if !t.spChanged {
			break
		}
	}
}

func (t *Taint) addSecretParam(fn *Func, idx int, roots taintSet) {
	m := t.secretParams[fn]
	if m == nil {
		m = map[int]taintSet{}
		t.secretParams[fn] = m
	}
	if m[idx] == nil {
		m[idx] = taintSet{}
	}
	for r := range roots {
		if _, isTag := tagIndex(r); isTag {
			continue
		}
		if m[idx].add(r) {
			t.spChanged = true
		}
	}
}

// Leaks runs the reporting pass over one package: every declared
// function is scanned with roots seeded from actual secret expressions,
// and each root that reaches a sink — directly or through the summaries
// of the functions it is passed to — yields a Leak at the argument
// position in this package.
func (t *Taint) Leaks(pkg *Package) []Leak {
	seen := map[string]bool{}
	var out []Leak
	for _, fn := range t.prog.all {
		if fn.Pkg != pkg || fn.Lit != nil || fn.Body() == nil {
			continue
		}
		ft := newFnTaint(t, fn, modeReport)
		ft.propagate()
		ft.reporting = true
		ft.scan()
		for _, l := range ft.leaks {
			key := fmt.Sprintf("%d|%s|%s", l.Pos, l.Root, l.Sink)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Root < out[j].Root
	})
	return out
}

// FuncTaint exposes per-expression classification inside one function,
// seeded with the function's own roots plus every parameter the forward
// propagation proved secret-carrying. consttime drives its
// branch/index checks off this.
type FuncTaint struct{ ft *fnTaint }

// FuncTaint builds the classification for a declared function.
func (t *Taint) FuncTaint(fn *Func) *FuncTaint {
	ft := newFnTaint(t, fn, modeForward)
	ft.seedForward()
	ft.propagate()
	return &FuncTaint{ft: ft}
}

// Mentions returns, sorted, the secret roots appearing anywhere in the
// expression subtree — the value itself or any sub-value it is computed
// from. Comparisons against nil are pruned: nil-ness is presence, not
// content, so `if sk.S == nil` validation branches reveal no key bits.
func (q *FuncTaint) Mentions(e ast.Expr) []string {
	roots := taintSet{}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ) && (q.isNil(n.X) || q.isNil(n.Y)) {
				return false
			}
			// Operator nodes derive taint purely from their operands; the
			// walk classifies the leaves, so pruned subtrees stay pruned.
		case *ast.ParenExpr, *ast.UnaryExpr:
		case ast.Expr:
			roots.merge(q.ft.exprTaint(n))
		}
		return true
	})
	return sortedRoots(roots)
}

func (q *FuncTaint) isNil(e ast.Expr) bool {
	tv, ok := q.ft.info().Types[e]
	return ok && tv.IsNil()
}

func sortedRoots(ts taintSet) []string {
	var out []string
	for r := range ts {
		if _, isTag := tagIndex(r); !isTag {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return filterRoots(out)
}

// filterRoots drops a whole-type root when a more precise field root of
// the same type is present, so one leak reports as PrivateKey.S, not as
// PrivateKey and PrivateKey.S twice.
func filterRoots(roots []string) []string {
	var out []string
	for _, r := range roots {
		specific := false
		for _, o := range roots {
			if o != r && strings.HasPrefix(o, r+".") {
				specific = true
				break
			}
		}
		if !specific {
			out = append(out, r)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Per-function propagation

const (
	modeSummary = iota // params tagged; output: summary
	modeReport         // roots only; output: leaks
	modeForward        // roots + secret params; output: classification / capture
)

// binding records a local variable holding a known function value: a
// closure, a declared function, or a method value (with the receiver's
// taint at bind time; recvBound distinguishes a method value, whose
// receiver slot is already filled, from a method expression, whose
// receiver arrives as the first call argument).
type binding struct {
	fn        *Func
	recvTaint taintSet
	recvBound bool
}

type fnTaint struct {
	t    *Taint
	fn   *Func
	mode int

	vars       map[types.Object]taintSet
	bindings   map[types.Object]*binding
	retTaint   map[int]taintSet
	ownRets    map[*ast.ReturnStmt]bool
	paramSinks map[int]sinkInfo

	reporting bool // final scan: emit leaks
	capturing bool // forward rounds: record secret params at call sites
	leaks     []Leak
	changed   bool
}

func newFnTaint(t *Taint, fn *Func, mode int) *fnTaint {
	return &fnTaint{
		t: t, fn: fn, mode: mode,
		vars:       map[types.Object]taintSet{},
		bindings:   map[types.Object]*binding{},
		retTaint:   map[int]taintSet{},
		ownRets:    ownReturns(fn),
		paramSinks: map[int]sinkInfo{},
	}
}

func (ft *fnTaint) info() *types.Info { return ft.fn.Pkg.Info }

func (ft *fnTaint) seedForward() {
	params := ft.fn.Params()
	for idx, roots := range ft.t.secretParams[ft.fn] {
		if idx < len(params) && params[idx] != nil {
			if ft.vars[params[idx]] == nil {
				ft.vars[params[idx]] = taintSet{}
			}
			ft.vars[params[idx]].merge(roots)
		}
	}
}

// ownReturns collects the return statements belonging to the function
// itself, excluding those of nested function literals (whose returns
// must not feed the encloser's summary).
func ownReturns(fn *Func) map[*ast.ReturnStmt]bool {
	out := map[*ast.ReturnStmt]bool{}
	body := fn.Body()
	if body == nil {
		return out
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				out[m] = true
			}
			return true
		})
	}
	walk(body)
	return out
}

// propagate iterates the flow-insensitive scan until the tainted-object
// set stops growing (bounded).
func (ft *fnTaint) propagate() {
	for i := 0; i < maxScanIters; i++ {
		ft.changed = false
		ft.scan()
		if !ft.changed {
			break
		}
	}
}

// scan makes one monotone pass over the body: statements transfer taint
// between objects, every call is evaluated (for result taint, sink hits
// and forward capture), and nested function literals are walked in
// place so closures see their captured variables' taint.
func (ft *fnTaint) scan() {
	body := ft.fn.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			ft.assign(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, name := range n.Names {
				lhs[i] = name
			}
			if len(n.Values) > 0 {
				ft.assign(lhs, n.Values)
			}
		case *ast.RangeStmt:
			ts := ft.exprTaint(n.X)
			if len(ts) > 0 {
				ft.taintLhs(n.Key, ts)
				ft.taintLhs(n.Value, ts)
			}
		case *ast.ReturnStmt:
			if ft.ownRets[n] {
				ft.recordReturn(n)
			}
		case *ast.CallExpr:
			ft.evalCall(n)
		}
		return true
	})
}

func (ft *fnTaint) recordReturn(ret *ast.ReturnStmt) {
	if len(ret.Results) == 1 {
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			_, n := ft.fn.Results()
			if n > 1 { // return f() forwarding a multi-value call
				for i, ts := range ft.evalCall(call) {
					ft.mergeRet(i, ts)
				}
				return
			}
		}
	}
	for i, r := range ret.Results {
		ft.mergeRet(i, ft.exprTaint(r))
	}
}

func (ft *fnTaint) mergeRet(i int, ts taintSet) {
	if len(ts) == 0 {
		return
	}
	if ft.retTaint[i] == nil {
		ft.retTaint[i] = taintSet{}
	}
	if ft.retTaint[i].merge(ts) {
		ft.changed = true
	}
}

// assign transfers rhs taint to lhs identifiers and records function
// value bindings. Writes through selectors, indexes, or dereferences are
// a documented non-goal: they would taint whole container objects and
// flood unrelated reads.
func (ft *fnTaint) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		var sets []taintSet
		switch r := ast.Unparen(rhs[0]).(type) {
		case *ast.CallExpr:
			sets = ft.evalCall(r)
		default: // v, ok := m[k] / <-ch / x.(T)
			ts := ft.exprTaint(rhs[0])
			sets = []taintSet{ts}
		}
		for i, l := range lhs {
			if i < len(sets) {
				ft.taintLhs(l, sets[i])
			}
		}
		return
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		ft.recordBinding(l, rhs[i])
		ft.taintLhs(l, ft.exprTaint(rhs[i]))
	}
}

func (ft *fnTaint) taintLhs(l ast.Expr, ts taintSet) {
	if l == nil || len(ts) == 0 {
		return
	}
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := ft.info().Defs[id]
	if obj == nil {
		obj = ft.info().Uses[id]
	}
	ft.taintObj(obj, ts)
}

func (ft *fnTaint) taintObj(obj types.Object, ts taintSet) {
	if obj == nil || len(ts) == 0 {
		return
	}
	if ft.vars[obj] == nil {
		ft.vars[obj] = taintSet{}
	}
	if ft.vars[obj].merge(ts) {
		ft.changed = true
	}
}

// recordBinding tracks local variables bound to callable values so
// later calls through the variable use the target's summary; method
// values keep the receiver's taint from bind time.
func (ft *fnTaint) recordBinding(l, r ast.Expr) {
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := ft.info().Defs[id]
	if obj == nil {
		obj = ft.info().Uses[id]
	}
	if obj == nil {
		return
	}
	var b *binding
	switch r := ast.Unparen(r).(type) {
	case *ast.FuncLit:
		b = &binding{fn: ft.t.prog.lits[r]}
	case *ast.Ident:
		if tf, ok := ft.info().Uses[r].(*types.Func); ok {
			b = &binding{fn: ft.t.prog.funcs[FuncKey(tf)]}
		}
	case *ast.SelectorExpr:
		if sel, ok := ft.info().Selections[r]; ok && sel.Kind() == types.MethodVal {
			if tf, ok := sel.Obj().(*types.Func); ok {
				if target := ft.t.prog.funcs[FuncKey(tf)]; target != nil {
					b = &binding{fn: target, recvTaint: ft.exprTaint(r.X), recvBound: true}
				}
			}
		} else if tf, ok := ft.info().Uses[r.Sel].(*types.Func); ok {
			b = &binding{fn: ft.t.prog.funcs[FuncKey(tf)]}
		}
	}
	if b == nil || b.fn == nil {
		return
	}
	if prev := ft.bindings[obj]; prev != nil && prev.fn == b.fn {
		if b.recvTaint != nil {
			if prev.recvTaint == nil {
				prev.recvTaint = taintSet{}
			}
			if prev.recvTaint.merge(b.recvTaint) {
				ft.changed = true
			}
		}
		return
	}
	ft.bindings[obj] = b
	ft.changed = true
}

// ---------------------------------------------------------------------
// Expression classification

// exprTaint computes the roots an expression's value derives from.
func (ft *fnTaint) exprTaint(e ast.Expr) taintSet {
	if e == nil {
		return nil
	}
	out := taintSet{}
	tv, hasTV := ft.info().Types[e]
	if hasTV && !tv.IsValue() {
		return nil
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := ft.info().Uses[e]
		if obj == nil {
			obj = ft.info().Defs[e]
		}
		out.merge(ft.vars[obj])
	case *ast.SelectorExpr:
		out.merge(ft.selTaint(e))
	case *ast.CallExpr:
		for _, ts := range ft.evalCall(e) {
			out.merge(ts)
		}
	case *ast.ParenExpr:
		out.merge(ft.exprTaint(e.X))
	case *ast.StarExpr:
		out.merge(ft.exprTaint(e.X))
	case *ast.UnaryExpr:
		out.merge(ft.exprTaint(e.X))
	case *ast.BinaryExpr:
		out.merge(ft.exprTaint(e.X))
		out.merge(ft.exprTaint(e.Y))
	case *ast.IndexExpr:
		out.merge(ft.exprTaint(e.X))
	case *ast.SliceExpr:
		out.merge(ft.exprTaint(e.X))
	case *ast.TypeAssertExpr:
		out.merge(ft.exprTaint(e.X))
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			// A pointer element does not taint the container: fmt renders
			// nested pointer fields as addresses, never their contents, so
			// &Member{sk: key} is printable while creds{key: bytes} is not.
			if t := ft.info().Types[elt].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Pointer, *types.Signature, *types.Chan:
					continue
				}
			}
			out.merge(ft.exprTaint(elt))
		}
	case *ast.FuncLit:
		return nil
	}
	// A value of a secret-marked type is a root wherever it appears.
	if hasTV {
		if name := ft.typeSecret(tv.Type); name != "" {
			out.add(name)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// typeSecret returns the secret name of a marked named type (looking
// through pointers and one container level), or "".
func (ft *fnTaint) typeSecret(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if name := NamedName(t); name != "" && ft.t.secrets[name] {
		return name
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if name := NamedName(u.Elem()); name != "" && ft.t.secrets[name] {
			return name
		}
	case *types.Array:
		if name := NamedName(u.Elem()); name != "" && ft.t.secrets[name] {
			return name
		}
	case *types.Map:
		if name := NamedName(u.Elem()); name != "" && ft.t.secrets[name] {
			return name
		}
	}
	return ""
}

// selTaint classifies a field selection: a marked field is a root;
// selecting an unmarked field out of a value tainted only by its own
// type marker projects back to public (printing sk leaks, printing
// sk.ID does not).
func (ft *fnTaint) selTaint(sel *ast.SelectorExpr) taintSet {
	fld, owner, ok := FieldOf(ft.info(), sel)
	if !ok {
		return nil
	}
	key := owner + "." + fld.Name()
	base := ft.exprTaint(sel.X)
	out := taintSet{}
	if ft.t.secrets[key] {
		out.add(key)
	}
	baseType := ""
	if tv, ok := ft.info().Types[sel.X]; ok {
		t := tv.Type
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		baseType = NamedName(t)
	}
	for r := range base {
		if r == baseType {
			continue // type-marker projection: field's own status decides
		}
		out.add(r)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ---------------------------------------------------------------------
// Calls

// evalCall computes per-result taint for a call and, depending on mode,
// registers sink hits (summary/report) and secret parameters (forward).
func (ft *fnTaint) evalCall(call *ast.CallExpr) []taintSet {
	info := ft.info()
	// Conversion: T(x) keeps x's taint.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return []taintSet{ft.exprTaint(call.Args[0])}
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return ft.evalBuiltin(id.Name, call)
		}
		// Call through a local binding (closure, func value, method value).
		if obj := info.Uses[id]; obj != nil {
			if b := ft.bindings[obj]; b != nil {
				return ft.applyCallee(call, b.fn, b.recvTaint, b.recvBound)
			}
		}
	}
	// In-program declared function, method, or literal called in place.
	if callee := ft.t.prog.Callee(ft.fn.Pkg, call); callee != nil {
		var recv taintSet
		recvBound := false
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && callee.IsMethod() {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				recv = ft.exprTaint(sel.X)
				recvBound = true
			}
		}
		return ft.applyCallee(call, callee, recv, recvBound)
	}
	// Interface dispatch: conservative union over same-name methods.
	if IsInterfaceCall(ft.fn.Pkg, call) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			impls := ft.t.prog.Implementers(sel.Sel.Name, len(call.Args))
			if len(impls) > 0 {
				recv := ft.exprTaint(sel.X)
				out := []taintSet{}
				for _, impl := range impls {
					for i, ts := range ft.applyCallee(call, impl, recv, true) {
						for len(out) <= i {
							out = append(out, taintSet{})
						}
						out[i].merge(ts)
					}
				}
				return out
			}
		}
	}
	return ft.evalExternal(call)
}

// applyCallee maps call arguments onto the callee's parameter slots and
// applies its summary: result taint, transitive sink hits, and forward
// secret-parameter capture. recvBound says the receiver slot is already
// filled (method value / m.f(...) call), so arguments start at slot 1;
// a method expression T.M(recv, args...) passes the receiver as args[0]
// and the receiver-first params list lines up with offset 0.
func (ft *fnTaint) applyCallee(call *ast.CallExpr, callee *Func, recvTaint taintSet, recvBound bool) []taintSet {
	params := callee.Params()
	clamp := func(i int) int {
		if i >= len(params) && len(params) > 0 {
			return len(params) - 1 // variadic tail
		}
		return i
	}
	offset := 0
	argTaint := map[int]taintSet{}
	argExpr := map[int]ast.Expr{}
	if callee.IsMethod() && recvBound {
		offset = 1
		if len(recvTaint) > 0 {
			argTaint[0] = recvTaint
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				argExpr[0] = sel.X
			}
		}
	}
	for i, a := range call.Args {
		idx := clamp(offset + i)
		ts := ft.exprTaint(a)
		if len(ts) == 0 {
			continue
		}
		if argTaint[idx] == nil {
			argTaint[idx] = taintSet{}
		}
		argTaint[idx].merge(ts)
		argExpr[idx] = a
	}
	sum := ft.t.summaryOf(callee)
	_, nres := callee.Results()
	out := make([]taintSet, nres)
	for i := range out {
		out[i] = taintSet{}
		out[i].merge(sum.rets[i])
	}
	for idx, ts := range argTaint {
		if ft.capturing {
			ft.t.addSecretParam(callee, idx, ts)
		}
		if mask, ok := sum.flows[idx]; ok {
			for i := 0; i < nres; i++ {
				if mask&(1<<uint(i)) != 0 {
					out[i].merge(ts)
				}
			}
		}
		if si, ok := sum.sinks[idx]; ok {
			via := callee.ShortName()
			if si.Via != "" {
				via += " → " + si.Via
			}
			pos := call.Pos()
			if e, ok := argExpr[idx]; ok {
				pos = e.Pos()
			}
			ft.sinkHit(pos, ts, sinkInfo{Pkg: si.Pkg, Via: via})
		}
	}
	if nres == 0 {
		return nil
	}
	return out
}

func (ft *fnTaint) evalBuiltin(name string, call *ast.CallExpr) []taintSet {
	switch name {
	case "append", "min", "max":
		out := taintSet{}
		for _, a := range call.Args {
			out.merge(ft.exprTaint(a))
		}
		return []taintSet{out}
	case "copy":
		if len(call.Args) == 2 {
			ft.taintLhs(baseIdent(call.Args[0]), ft.exprTaint(call.Args[1]))
		}
	}
	// len/cap/make/new/delete/clear: lengths and fresh values declassify.
	return nil
}

// evalExternal handles out-of-program callees: sinks, the explicit
// propagator lists, and the default sanitizer behaviour.
func (ft *fnTaint) evalExternal(call *ast.CallExpr) []taintSet {
	info := ft.info()
	obj := CalleeObj(info, call)
	pkgPath := ""
	if obj != nil && obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	// Sink: any argument's taint is a hit.
	if SinkPkgs[pkgPath] {
		out := taintSet{}
		for _, a := range call.Args {
			ts := ft.exprTaint(a)
			if len(ts) == 0 {
				continue
			}
			ft.sinkHit(a.Pos(), ts, sinkInfo{Pkg: pkgPath})
			out.merge(ts) // Sprintf/Errorf: the formatted result is the secret too
		}
		if len(out) > 0 {
			return []taintSet{out}
		}
		return nil
	}
	// Encoders re-alphabetize their input.
	if encoderPkgs[pkgPath] {
		out := taintSet{}
		for _, a := range call.Args {
			out.merge(ft.exprTaint(a))
		}
		if len(out) > 0 {
			return []taintSet{out}
		}
		return nil
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil
	}
	// math/big value-preserving methods.
	if tf, ok := obj.(*types.Func); ok && pkgPath == "math/big" && bigCarry[tf.Name()] {
		out := taintSet{}
		out.merge(ft.exprTaint(sel.X))
		for _, a := range call.Args {
			out.merge(ft.exprTaint(a))
		}
		if len(out) > 0 {
			if bigMutate[tf.Name()] {
				ft.taintLhs(baseIdent(sel.X), out)
			}
			if tf.Name() == "FillBytes" && len(call.Args) == 1 {
				ft.taintLhs(baseIdent(call.Args[0]), out)
			}
			return []taintSet{out}
		}
		return nil
	}
	// Generic stringifiers: a tainted receiver's serialization is tainted.
	if stringifierCarry[sel.Sel.Name] {
		if ts := ft.exprTaint(sel.X); len(ts) > 0 {
			return []taintSet{ts}
		}
	}
	return nil
}

// baseIdent unwraps selectors/indexes/derefs to the root identifier of
// an lvalue chain (x in x.f[i]), or nil.
func baseIdent(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sinkHit routes a tainted value arriving at a sink: parameter tags feed
// the function's summary, real roots become leaks in the reporting scan.
func (ft *fnTaint) sinkHit(pos token.Pos, ts taintSet, si sinkInfo) {
	switch ft.mode {
	case modeSummary:
		for r := range ts {
			if idx, ok := tagIndex(r); ok {
				if _, exists := ft.paramSinks[idx]; !exists {
					ft.paramSinks[idx] = si
				}
			}
		}
	case modeReport:
		if !ft.reporting {
			return
		}
		for _, r := range sortedRoots(ts) {
			ft.leaks = append(ft.leaks, Leak{Pos: pos, Root: r, Sink: si.Pkg, Via: si.Via})
		}
	}
}
