package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared blocking-site catalogue: the single answer to
// "can this operation park the goroutine indefinitely?" that boundedwait
// (PR 4's no-wedge rule on transport paths) and the interprocedural
// lock engine's blocks-summary (blockunderlock) both consume. Keeping
// one catalogue means a shape added for one analyzer — a new io helper,
// a new bounded source — is immediately visible to the other.

// A BlockKind classifies a blocking site, because the exemptions differ:
// channel operations escape through selects, I/O through deadlines, and
// Wait through nothing at all.
type BlockKind int

const (
	// BlockChan is a channel send, receive, or for-range.
	BlockChan BlockKind = iota
	// BlockIO is deadline-capable connection I/O (direct or through an
	// io helper) in a context that never arms a deadline.
	BlockIO
	// BlockWait is sync.WaitGroup.Wait.
	BlockWait
)

// IOHelpers are io functions that block on the reader/writer they wrap.
var IOHelpers = map[string]bool{
	"ReadFull": true, "ReadAll": true, "Copy": true, "CopyN": true, "WriteString": true,
}

// SelectEscapes collects the channel operations that live inside a
// select with an escape hatch (a default case, or at least two cases):
// such operations cannot wedge the goroutine on their own, so both
// boundedwait and the lock engine's blocking detection exempt them.
func SelectEscapes(body ast.Node) map[ast.Node]bool {
	exempt := map[ast.Node]bool{}
	if body == nil {
		return exempt
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault || len(sel.Body.List) >= 2 {
			for _, cl := range sel.Body.List {
				markComm(exempt, cl.(*ast.CommClause).Comm)
			}
		}
		return true
	})
	return exempt
}

// markComm registers a comm clause's blocking operation as select-guarded.
func markComm(exempt map[ast.Node]bool, comm ast.Stmt) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		exempt[s] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok {
			exempt[u] = true
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok {
				exempt[u] = true
			}
		}
	}
}

// ArmsDeadline reports whether the body ever arms a connection deadline
// (SetDeadline and friends), which bounds every subsequent I/O wait in
// the same function.
func ArmsDeadline(body ast.Node) bool {
	armed := false
	if body == nil {
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				armed = true
			}
		}
		return true
	})
	return armed
}

// BoundedRecv reports whether a receive operand is inherently bounded:
// time.After/Tick, a Timer/Ticker C field, or a Done() channel.
func BoundedRecv(info *types.Info, x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
		if CalleePkgPath(info, x) == "time" {
			if obj := CalleeObj(info, x); obj != nil {
				switch obj.Name() {
				case "After", "Tick":
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		if x.Sel.Name != "C" {
			return false
		}
		t := info.Types[x.X].Type
		if t == nil {
			return false
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		switch NamedName(t) {
		case "time.Timer", "time.Ticker":
			return true
		}
	}
	return false
}

// DeadlineCapable reports whether the type's method set includes
// SetDeadline (net.Conn and anything wrapping it duck-typed).
func DeadlineCapable(pkg *types.Package, t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, "SetDeadline")
	_, isFn := obj.(*types.Func)
	return isFn
}

// BlockingCall classifies a call expression as a blocking operation:
// deadline-capable connection I/O (direct Read/Write or through an io
// helper) and sync.WaitGroup.Wait. sync.Cond.Wait is deliberately not
// blocking here — it atomically releases the mutex it rides on, so it is
// the one wait that is safe (and idiomatic) under a lock.
func BlockingCall(pkg *Package, call *ast.CallExpr) (desc string, kind BlockKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Read", "Write", "ReadFrom", "WriteTo":
		if DeadlineCapable(pkg.Types, pkg.Info.Types[sel.X].Type) {
			return sel.Sel.Name + " on a deadline-capable connection", BlockIO, true
		}
	case "Wait":
		t := pkg.Info.Types[sel.X].Type
		if t == nil {
			return "", 0, false
		}
		if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if NamedName(t) == "sync.WaitGroup" {
			return "sync.WaitGroup.Wait", BlockWait, true
		}
	}
	if CalleePkgPath(pkg.Info, call) == "io" && IOHelpers[sel.Sel.Name] {
		for _, arg := range call.Args {
			if DeadlineCapable(pkg.Types, pkg.Info.Types[arg].Type) {
				return "io." + sel.Sel.Name + " over a deadline-capable connection", BlockIO, true
			}
		}
	}
	return "", 0, false
}

// BlockingNode classifies non-call blocking nodes: channel sends,
// receives outside bounded sources, and for-range over a channel. The
// exempt set (SelectEscapes) must already cover the node's select
// context.
func BlockingNode(pkg *Package, n ast.Node, exempt map[ast.Node]bool) (desc string, ok bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		if !exempt[n] {
			return "channel send", true
		}
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !exempt[n] && !BoundedRecv(pkg.Info, n.X) {
			return "channel receive", true
		}
	case *ast.RangeStmt:
		if t := pkg.Info.Types[n.X].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return "for-range over a channel", true
			}
		}
	}
	return "", false
}
