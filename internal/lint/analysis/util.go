package analysis

import (
	"go/ast"
	"go/types"
)

// NamedName returns the fully-qualified "pkgpath.Name" of a named or
// aliased type, or "" for unnamed types.
func NamedName(t types.Type) string {
	if t == nil {
		return ""
	}
	if alias, ok := t.(*types.Alias); ok {
		t = types.Unalias(alias)
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// TypeContains reports whether t is the named type full, or a pointer,
// slice, array, or map whose element (or key) is. It looks through one
// container level — enough for the []Elem / map[string]Elem shapes the
// analyzers care about.
func TypeContains(t types.Type, full string) bool {
	if t == nil {
		return false
	}
	if NamedName(t) == full {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return NamedName(u.Elem()) == full
	case *types.Slice:
		return NamedName(u.Elem()) == full
	case *types.Array:
		return NamedName(u.Elem()) == full
	case *types.Map:
		return NamedName(u.Key()) == full || NamedName(u.Elem()) == full
	}
	return false
}

// CalleeObj resolves the object a call expression invokes (function,
// method, or nil for indirect calls through non-selector expressions).
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel]
	}
	return nil
}

// CalleePkgPath returns the import path of the package declaring a
// call's target, or "".
func CalleePkgPath(info *types.Info, call *ast.CallExpr) string {
	obj := CalleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// IsMutex reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer).
func IsMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch NamedName(t) {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	return false
}

// FieldOf resolves a selector expression to the struct field it reads or
// writes, returning the field variable and the full name of the named
// struct type declaring it ("pkgpath.Type"). ok is false for method
// selections, package qualifiers and unresolved selectors.
func FieldOf(info *types.Info, sel *ast.SelectorExpr) (fld *types.Var, owner string, ok bool) {
	s, found := info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return nil, "", false
	}
	v, isVar := s.Obj().(*types.Var)
	if !isVar {
		return nil, "", false
	}
	// Walk the receiver type to the named struct that declares the field
	// (the last embedded step of the selection path).
	t := s.Recv()
	for _, i := range s.Index()[:len(s.Index())-1] {
		st, okc := structOf(t)
		if !okc {
			return nil, "", false
		}
		t = st.Field(i).Type()
	}
	if p, okc := t.Underlying().(*types.Pointer); okc {
		t = p.Elem()
	}
	name := NamedName(t)
	if name == "" {
		return nil, "", false
	}
	return v, name, true
}

func structOf(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}
