// Package analysis is the repo's in-tree static-analysis framework: a
// deliberately small, API-compatible subset of
// golang.org/x/tools/go/analysis, built on the standard library only so
// the lint suite needs no module downloads. Analyzers inspect one
// type-checked package at a time and report position-anchored
// diagnostics; a shared waiver mechanism (//gkalint:<verb> <reason>
// comments) suppresses individual findings with an audit trail, and an
// annotation index carries cross-package markers such as
// //gkalint:secret. If the x/tools dependency ever becomes available,
// analyzers port over by swapping the import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc explains the invariant the analyzer enforces, why it exists
	// (which PR's bug class motivated it) and the waiver syntax.
	Doc string
	// WaiverVerb is the gkalint comment verb that waives this analyzer's
	// diagnostics at a site: a comment //gkalint:<verb> <justification>
	// on the reported line or the line directly above suppresses the
	// finding. An empty verb means the analyzer's findings cannot be
	// waived.
	WaiverVerb string
	// Run reports the package's violations through pass.Report.
	Run func(*Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Package is one loaded, type-checked package — the unit an analyzer
// runs over. Loaders (internal/lint/load) produce them.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Index holds cross-package gkalint annotations collected over every
	// loaded package (never nil during Run).
	Index *Index
	// Prog is the whole-program view (call graph, shared taint engine)
	// over every loaded package — the substrate of the interprocedural
	// analyzers (never nil during Run).
	Prog *Program

	report func(Diagnostic)
}

// Report records one violation.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records one violation with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Index aggregates gkalint annotations across every package of a run, so
// an analyzer checking package A sees markers declared in package B
// (e.g. a secret field of an imported type). It is built by Run before
// any analyzer executes.
type Index struct {
	// Secrets holds //gkalint:secret markers: "pkgpath.Type" for a whole
	// type, "pkgpath.Type.Field" for one struct field.
	Secrets map[string]bool
	// Callbacks holds //gkalint:callback markers on func-typed struct
	// fields and on methods: "pkgpath.Type.Name". Marked callables are
	// user callbacks that must not be invoked while a lock is held.
	Callbacks map[string]bool
	// Guards holds //gkalint:guard regions read out of struct bodies:
	// "pkgpath.Type" -> field name -> guard path relative to the struct
	// value (e.g. "mu", "mb.mu"). Collected globally so a guard declared
	// in one package protects accesses from every other package.
	Guards map[string]map[string]string
}

// Guard returns the guard path for a field of an owner type, or "".
func (idx *Index) Guard(owner, field string) string { return idx.Guards[owner][field] }

// A Finding is one post-waiver diagnostic, positioned and attributed.
// Suppressed findings (covered by a justified waiver) are retained by
// RunAll so the SARIF emitter can report them with their audit trail;
// the plain Run entry points drop them.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a finding covered by a justified waiver.
	Suppressed bool
	// Justification is the waiver's reason when Suppressed.
	Justification string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// waiver is one parsed //gkalint:<verb> <reason> comment.
type waiver struct {
	verb   string
	reason string
}

// WaiverPrefix introduces every gkalint control comment.
const WaiverPrefix = "//gkalint:"

// parseWaiver splits a control comment into verb and justification, or
// returns ok=false for ordinary comments.
func parseWaiver(text string) (w waiver, ok bool) {
	if !strings.HasPrefix(text, WaiverPrefix) {
		return w, false
	}
	rest := strings.TrimPrefix(text, WaiverPrefix)
	verb, reason, _ := strings.Cut(rest, " ")
	if verb == "" {
		return w, false
	}
	return waiver{verb: verb, reason: strings.TrimSpace(reason)}, true
}

// waiverMap indexes a package's control comments by file and line.
type waiverMap map[string]map[int][]waiver

func collectWaivers(pkg *Package) waiverMap {
	wm := waiverMap{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				w, ok := parseWaiver(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := wm[pos.Filename]
				if m == nil {
					m = map[int][]waiver{}
					wm[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], w)
			}
		}
	}
	return wm
}

// lookup finds a waiver for verb covering line (same line or the line
// directly above).
func (wm waiverMap) lookup(file string, line int, verb string) (waiver, bool) {
	m := wm[file]
	if m == nil {
		return waiver{}, false
	}
	for _, l := range [2]int{line, line - 1} {
		for _, w := range m[l] {
			if w.verb == verb {
				return w, true
			}
		}
	}
	return waiver{}, false
}

// buildIndex scans every loaded package for cross-package annotations.
func buildIndex(pkgs []*Package) *Index {
	idx := &Index{Secrets: map[string]bool{}, Callbacks: map[string]bool{}, Guards: map[string]map[string]string{}}
	for _, pkg := range pkgs {
		collectAnnotations(pkg, idx)
		collectGuards(pkg, idx)
	}
	return idx
}

// collectGuards reads //gkalint:guard markers out of struct bodies into
// the index. A marker guards every field declared after it (in source
// order) until a //gkalint:guard - marker ends the region.
func collectGuards(pkg *Package, idx *Index) {
	for _, f := range pkg.Files {
		// Comments inside a struct body may be floating (attached to the
		// file, not a field), so index them all by position.
		type marker struct {
			pos  token.Pos
			path string
		}
		var markers []marker
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "gkalint:guard") {
					continue
				}
				path := strings.TrimSpace(strings.TrimPrefix(text, "gkalint:guard"))
				markers = append(markers, marker{pos: c.Pos(), path: path})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			typeName := pkg.PkgPath + "." + ts.Name.Name
			for _, fld := range st.Fields.List {
				// The innermost marker before this field wins.
				cur := ""
				for _, m := range markers {
					if m.pos > st.Struct && m.pos < fld.Pos() {
						cur = m.path
					}
				}
				if cur == "" || cur == "-" {
					continue
				}
				if idx.Guards[typeName] == nil {
					idx.Guards[typeName] = map[string]string{}
				}
				for _, name := range fld.Names {
					idx.Guards[typeName][name.Name] = cur
				}
			}
			return true
		})
	}
}

// markerOn reports whether a gkalint marker verb is attached to the node:
// in its doc comment, its line comment, or on the line directly above.
func markerOn(pkg *Package, wm waiverMap, verbs map[string]bool, docs []*ast.CommentGroup, pos token.Pos) (string, bool) {
	for _, cg := range docs {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if w, ok := parseWaiver(c.Text); ok && verbs[w.verb] {
				return w.verb, true
			}
		}
	}
	p := pkg.Fset.Position(pos)
	for verb := range verbs {
		if _, ok := wm.lookup(p.Filename, p.Line, verb); ok {
			return verb, true
		}
	}
	return "", false
}

var annotationVerbs = map[string]bool{"secret": true, "callback": true}

func collectAnnotations(pkg *Package, idx *Index) {
	wm := collectWaivers(pkg)
	record := func(verb, key string) {
		switch verb {
		case "secret":
			idx.Secrets[key] = true
		case "callback":
			idx.Callbacks[key] = true
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				if verb, ok := markerOn(pkg, wm, annotationVerbs, []*ast.CommentGroup{n.Doc, n.Comment}, n.Pos()); ok {
					record(verb, pkg.PkgPath+"."+n.Name.Name)
				}
				if st, ok := n.Type.(*ast.StructType); ok {
					for _, fld := range st.Fields.List {
						verb, ok := markerOn(pkg, wm, annotationVerbs, []*ast.CommentGroup{fld.Doc, fld.Comment}, fld.Pos())
						if !ok {
							continue
						}
						for _, name := range fld.Names {
							record(verb, pkg.PkgPath+"."+n.Name.Name+"."+name.Name)
						}
					}
				}
			case *ast.FuncDecl:
				if n.Recv == nil || len(n.Recv.List) == 0 {
					return true
				}
				if verb, ok := markerOn(pkg, wm, annotationVerbs, []*ast.CommentGroup{n.Doc}, n.Pos()); ok {
					if tn := recvTypeName(pkg, n); tn != "" {
						record(verb, pkg.PkgPath+"."+tn+"."+n.Name.Name)
					}
				}
			}
			return true
		})
	}
}

// recvTypeName resolves a method's receiver base type name.
func recvTypeName(pkg *Package, fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// Run executes every analyzer over every package, applies waivers, and
// returns the surviving findings sorted by position. A waiver whose
// justification is empty does not suppress — it is itself reported, so
// every waived site carries a reason reviewable in the diff.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunWithIndex(pkgs, pkgs, analyzers)
}

// RunWithIndex is Run with the annotation index built over a wider
// package set than the analyzed one — analysistest uses it so fixture
// dependency packages contribute their //gkalint:secret markers without
// being analyzed themselves.
func RunWithIndex(pkgs, indexed []*Package, analyzers []*Analyzer) ([]Finding, error) {
	all, _, err := RunAll(pkgs, indexed, analyzers)
	if err != nil {
		return nil, err
	}
	var active []Finding
	for _, f := range all {
		if !f.Suppressed {
			active = append(active, f)
		}
	}
	return active, nil
}

// RunAll is RunWithIndex, but it additionally returns waiver-suppressed
// findings (Suppressed true, carrying the waiver's justification)
// interleaved with the active ones, plus the whole-program view — the
// SARIF emitter consumes the full list and the -lockgraph dump consumes
// the program.
func RunAll(pkgs, indexed []*Package, analyzers []*Analyzer) ([]Finding, *Program, error) {
	idx := buildIndex(indexed)
	prog := BuildProgram(indexed, idx)
	var findings []Finding
	for _, pkg := range pkgs {
		wm := collectWaivers(pkg)
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Index:    idx,
				Prog:     prog,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if a.WaiverVerb != "" {
					if w, ok := wm.lookup(pos.Filename, pos.Line, a.WaiverVerb); ok {
						if w.reason != "" {
							// Justified waiver: suppressed but retained for
							// the SARIF audit trail.
							findings = append(findings, Finding{
								Analyzer:      a.Name,
								Pos:           pos,
								Message:       d.Message,
								Suppressed:    true,
								Justification: w.reason,
							})
							continue
						}
						findings = append(findings, Finding{
							Analyzer: a.Name,
							Pos:      pos,
							Message:  fmt.Sprintf("gkalint:%s waiver needs a justification", a.WaiverVerb),
						})
						continue
					}
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return findings, prog, nil
}
