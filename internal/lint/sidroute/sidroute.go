// Package sidroute enforces the PR 5 outbound-routing contract: every
// engine.Outbound constructed with field values must carry its session
// id. An Outbound whose SID is empty is routed to whichever session
// handle happened to step the machine; once that handle completes and
// the application stops draining it, the reaction strands and the peer
// wedges (the TestCrossSessionOutboxRouting bug class).
//
// Two shapes are exempt: the empty literal Outbound{} (the zero value
// returned alongside an error), and sites waived with
//
//	//gkalint:nosid <why the id is stamped elsewhere>
//
// The engine's own flow constructors carry that waiver: their literals
// are deliberately SID-less because Machine.wrapOuts stamps every
// outbound of an enveloped flow centrally.
package sidroute

import (
	"go/ast"

	"idgka/internal/lint/analysis"
)

// outboundType is the routed message type the analyzer guards.
const outboundType = "idgka/internal/engine.Outbound"

// Analyzer reports engine.Outbound composite literals that set fields
// but not SID.
var Analyzer = &analysis.Analyzer{
	Name:       "sidroute",
	Doc:        "engine.Outbound literals must populate SID so reactions route to the owning session handle (PR 5)",
	WaiverVerb: "nosid",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok || analysis.NamedName(tv.Type) != outboundType {
				return true
			}
			if len(lit.Elts) == 0 {
				// Outbound{} is the zero value of an error return, never
				// transmitted; requiring SID there would be noise.
				return true
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					// Positional literal: all fields including SID are
					// spelled out (fewer would not compile).
					return true
				}
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "SID" {
					return true
				}
			}
			pass.Reportf(lit.Pos(), "engine.Outbound constructed without SID: the reaction strands on the stepping handle once it completes; set SID or waive with //gkalint:nosid <reason>")
			return true
		})
	}
	return nil
}
