// Package a seeds sidroute violations and proves the exemptions.
package a

import "idgka/internal/engine"

func broadcast(payload []byte) engine.Outbound {
	return engine.Outbound{Type: "round1", Payload: payload} // want `engine\.Outbound constructed without SID`
}

func batch(payload []byte) []engine.Outbound {
	return []engine.Outbound{
		{Type: "round2", Payload: payload}, // want `engine\.Outbound constructed without SID`
		{SID: "s1", Type: "round2", Payload: payload},
	}
}

func errorPath() (engine.Outbound, error) {
	// The zero-value error return is exempt: nothing is transmitted.
	return engine.Outbound{}, nil
}

func positional(payload []byte) engine.Outbound {
	// Positional literals spell out every field, SID included.
	return engine.Outbound{"s2", "", "round1", payload, 0}
}

func withSID(payload []byte) engine.Outbound {
	return engine.Outbound{SID: "s3", Type: "round1", Payload: payload}
}

func waived(payload []byte) engine.Outbound {
	//gkalint:nosid stamped centrally by wrapOuts before transmission
	return engine.Outbound{Type: "round1", Payload: payload}
}

func waivedInline(payload []byte) engine.Outbound {
	return engine.Outbound{Type: "round1", Payload: payload} //gkalint:nosid stamped centrally by wrapOuts
}

func waivedWithoutReason(payload []byte) engine.Outbound {
	//gkalint:nosid
	return engine.Outbound{Type: "round1", Payload: payload} // want `gkalint:nosid waiver needs a justification`
}
