// Package engine is the fixture stub of idgka/internal/engine: just
// enough surface for the sidroute fixtures to type-check against the
// real fully-qualified type name.
package engine

// Outbound mirrors the real engine.Outbound field set.
type Outbound struct {
	SID      string
	To       string
	Type     string
	Payload  []byte
	StateLen int
}
