package sidroute_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/sidroute"
)

func TestSIDRoute(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sidroute.Analyzer, "a")
}
