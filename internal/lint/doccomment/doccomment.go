// Package doccomment enforces the PR 8 documentation contract on the
// operator-facing packages: every exported top-level symbol of the
// public API (idgka), the serve layer and the metrics surface carries a
// godoc comment, and a comment that documents exactly one symbol starts
// with that symbol's name (the godoc convention, so the rendered index
// reads as reference documentation rather than a bare symbol list).
//
// Within the scoped packages the analyzer reports:
//
//   - an exported func, method (on an exported receiver), type, const
//     or var with no doc comment at all. A grouped const/var
//     declaration's doc covers every spec in the group, so one comment
//     over a const block suffices; a type renders as its own godoc
//     entry, so each exported type needs its own comment even inside a
//     type (...) block;
//   - a doc comment that belongs to a single symbol (its own spec doc,
//     or the decl doc of a one-spec declaration) whose first word is
//     not the symbol's name (a leading article — "A", "An", "The" — is
//     accepted, as godoc renders it naturally).
//
// Deliberately undocumented exports carry //gkalint:nodoc <why> — e.g.
// a symbol kept exported only for a test hook.
package doccomment

import (
	"go/ast"
	"go/token"
	"strings"

	"idgka/internal/lint/analysis"
)

// Packages scopes the analyzer: the operator-facing packages whose
// godoc is part of the documentation layer (see docs/STATIC-ANALYSIS.md
// and docs/OPERATIONS.md).
var Packages = map[string]bool{
	"idgka":                  true,
	"idgka/internal/serve":   true,
	"idgka/internal/metrics": true,
}

// Analyzer reports exported top-level symbols of the scoped packages
// that lack a godoc comment or whose single-symbol comment does not
// start with the symbol's name.
var Analyzer = &analysis.Analyzer{
	Name:       "doccomment",
	Doc:        "exported symbols of the operator-facing packages carry godoc comments starting with the symbol's name (PR 8)",
	WaiverVerb: "nodoc",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	if !Packages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				checkGen(pass, d)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	if d.Recv != nil && !exportedRecv(d.Recv) {
		return
	}
	if d.Doc == nil {
		pass.Reportf(d.Pos(), "exported %s %s has no doc comment; document it or waive with //gkalint:nodoc <reason>", funcKind(d), d.Name.Name)
		return
	}
	checkLeadsWithName(pass, d.Doc, d.Name.Name, funcKind(d), d.Pos())
}

func checkGen(pass *analysis.Pass, d *ast.GenDecl) {
	if d.Tok == token.IMPORT {
		return
	}
	kind := d.Tok.String()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			// A type renders as its own godoc entry even inside a
			// type (...) block, so each exported spec needs its own
			// doc (the decl doc only covers a one-spec declaration).
			switch {
			case s.Doc != nil:
				checkLeadsWithName(pass, s.Doc, s.Name.Name, kind, s.Pos())
			case d.Doc != nil && len(d.Specs) == 1:
				checkLeadsWithName(pass, d.Doc, s.Name.Name, kind, s.Pos())
			default:
				pass.Reportf(s.Pos(), "exported %s %s has no doc comment; document it or waive with //gkalint:nodoc <reason>", kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			name := exportedName(s.Names)
			if name == "" {
				continue
			}
			// Const/var groups read fine under one group comment, so
			// existence is all the analyzer asks of values (and only of
			// proper doc comments — a trailing line comment is not the
			// godoc the reference pages render).
			if s.Doc == nil && d.Doc == nil {
				pass.Reportf(s.Pos(), "exported %s %s has no doc comment; document it or waive with //gkalint:nodoc <reason>", kind, name)
			}
		}
	}
}

// checkLeadsWithName enforces the godoc first-word convention on a doc
// comment that documents exactly one symbol.
func checkLeadsWithName(pass *analysis.Pass, doc *ast.CommentGroup, name, kind string, pos token.Pos) {
	words := strings.Fields(doc.Text())
	// Skip leading articles: "A Run is ..." renders as naturally as
	// "Run is ...".
	for len(words) > 0 && (words[0] == "A" || words[0] == "An" || words[0] == "The") {
		words = words[1:]
	}
	if len(words) > 0 && strings.TrimRight(words[0], ".,:;") == name {
		return
	}
	if len(words) > 0 && words[0] == "Deprecated:" {
		return
	}
	pass.Reportf(pos, "doc comment of exported %s %s should start with %q (godoc convention); rephrase or waive with //gkalint:nodoc <reason>", kind, name, name)
}

// exportedRecv reports whether a method's receiver base type is
// exported (methods on unexported types are not godoc surface).
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// exportedName returns the first exported identifier of a value spec.
func exportedName(names []*ast.Ident) string {
	for _, n := range names {
		if n.IsExported() {
			return n.Name
		}
	}
	return ""
}
