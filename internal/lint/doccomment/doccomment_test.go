package doccomment_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/doccomment"
)

func TestDocComment(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), doccomment.Analyzer,
		"idgka/internal/serve", "outside")
}
