// Package serve is a doccomment fixture replicating a scoped import
// path; the analyzer must fire here.
package serve

// Host is documented and leads with its name: clean.
type Host struct{}

// A Run is documented behind a leading article: clean.
type Run struct{}

type Stats struct{} // want `exported type Stats has no doc comment`

// This comment exists but does not lead with the symbol's name.
type Config struct{} // want `doc comment of exported type Config should start with "Config"`

//gkalint:nodoc kept exported for the bench harness only
type Loopback struct{}

//gkalint:nodoc
type Bare struct{} // want `gkalint:nodoc waiver needs a justification`

// unexported types need nothing.
type shard struct{}

// grouped type specs: the spec's own doc wins and must lead with the
// name; a spec with neither its own doc nor a one-spec decl doc is
// reported.
type (
	// Option configures a Host: clean.
	Option struct{}

	Ticker struct{} // want `exported type Ticker has no doc comment`
)

// Start is documented: clean.
func Start() {}

func Deliver() {} // want `exported func Deliver has no doc comment`

// Stop halts. Wrong leading word for the symbol.
func Halt() {} // want `doc comment of exported func Halt should start with "Halt"`

// Close is a documented method on an exported receiver: clean.
func (h *Host) Close() {}

func (h *Host) Wait() {} // want `exported method Wait has no doc comment`

// methods on unexported receivers are not godoc surface.
func (s *shard) Enqueue() {}

// unexported funcs need nothing.
func dispatch() {}

// DefaultShards is a documented var: clean.
var DefaultShards = 4

var DefaultTick = 100 // want `exported var DefaultTick has no doc comment`

// Watermark defaults for the admission layer (a group doc covers every
// spec of the block).
var (
	DefaultQueue = 0
	DefaultAge   = 0
)

const MaxGroups = 1 << 16 // want `exported const MaxGroups has no doc comment`

// Deprecated: SpareKnob is retired; the marker form is accepted.
var SpareKnob = 0
