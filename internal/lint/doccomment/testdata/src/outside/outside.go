// Package outside is out of the doccomment scope: nothing here is
// reported, documented or not.
package outside

type Undocumented struct{}

func AlsoUndocumented() {}
