// Package vault proves cross-package //gkalint:secret annotations reach
// the analyzer through the annotation index.
package vault

// DRBGState is reseedable generator state; leaking it forfeits forward
// secrecy.
//
//gkalint:secret
type DRBGState struct {
	V []byte
	K []byte
}

// Creds carries one annotated field next to a public one.
type Creds struct {
	User string
	// Token authenticates the session.
	//gkalint:secret
	Token string
}
