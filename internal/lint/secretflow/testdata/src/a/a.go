// Package a seeds secretflow violations and proves the exemptions.
package a

import (
	"fmt"
	"log"

	"idgka/internal/sigs/gq"
	"vault"
)

func leaksBuiltin(sk *gq.PrivateKey) error {
	fmt.Println(sk.S)                                // want `secret idgka/internal/sigs/gq\.PrivateKey\.S reaches fmt formatting`
	log.Printf("key=%v", sk)                         // want `secret idgka/internal/sigs/gq\.PrivateKey reaches log formatting`
	_ = sk.S.String()                                // want `secret idgka/internal/sigs/gq\.PrivateKey\.S stringified via String`
	_ = sk.S.Text(16)                                // want `secret idgka/internal/sigs/gq\.PrivateKey\.S stringified via Text`
	return fmt.Errorf("extract failed for %v", sk.S) // want `secret idgka/internal/sigs/gq\.PrivateKey\.S reaches fmt formatting`
}

func leaksAnnotated(st vault.DRBGState, c vault.Creds) {
	fmt.Println(st)      // want `secret vault\.DRBGState reaches fmt formatting`
	fmt.Println(c.Token) // want `secret vault\.Creds\.Token reaches fmt formatting`
	fmt.Println(c.User)  // public field: fine
}

func fine(sk *gq.PrivateKey) {
	fmt.Println(sk.ID)             // identity is public
	fmt.Println(len(sk.S.Bytes())) // a length leaks no limbs
}

func waived(sk *gq.PrivateKey) {
	//gkalint:secretok test-vector dump behind a debug flag, never in production paths
	fmt.Println(sk.S)
}

// LocalKey is a package-local secret.
//
//gkalint:secret
type LocalKey struct{ d []byte }

// String leaks the exponent bytes through every %v.
func (k LocalKey) String() string { // want `secret type a\.LocalKey declares String`
	return string(k.d)
}
