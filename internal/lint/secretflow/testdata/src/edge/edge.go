// Package edge exercises the taint engine's corner cases: recursion,
// mutual recursion, closures capturing secrets, method values, and
// interface dispatch through the conservative all-implementations
// fallback.
package edge

import "fmt"

// Vault holds fixture key material.
type Vault struct {
	ID string
	//gkalint:secret
	Token []byte
}

// red passes its argument through N levels of self-recursion; the
// summary fixpoint must carry taint through the cycle.
func red(b []byte, n int) []byte {
	if n == 0 {
		return b
	}
	return red(b, n-1)
}

// UseRecursion leaks through the recursive identity.
func UseRecursion(v Vault) {
	fmt.Println(red(v.Token, 2)) // want `secret edge\.Vault\.Token reaches fmt formatting`
}

// ping/pong are mutually recursive; taint converges over rounds.
func ping(b []byte, n int) []byte {
	if n == 0 {
		return b
	}
	return pong(b, n-1)
}

func pong(b []byte, n int) []byte {
	return ping(b, n-1)
}

// UseMutualRecursion leaks through the two-function cycle.
func UseMutualRecursion(v Vault) {
	fmt.Printf("%x", ping(v.Token, 3)) // want `secret edge\.Vault\.Token reaches fmt formatting`
}

// UseClosure leaks through a captured variable: the literal is scanned
// in place, sharing its encloser's object map.
func UseClosure(v Vault) {
	t := v.Token
	dump := func() {
		fmt.Printf("%x\n", t) // want `secret edge\.Vault\.Token reaches fmt formatting`
	}
	dump()
}

// logger's Emit sinks its argument; only callers decide whether that is
// a leak.
type logger struct{ prefix string }

func (l logger) Emit(b []byte) {
	fmt.Printf("%s: %x\n", l.prefix, b)
}

// UseMethodValue binds the method first and calls through the binding:
// the argument must land on parameter slot 1, after the bound receiver.
func UseMethodValue(v Vault) {
	l := logger{prefix: "k"}
	emit := l.Emit
	emit(v.Token) // want `secret edge\.Vault\.Token reaches fmt formatting \(via Emit\)`
}

// writer dispatches dynamically; the engine unions every same-name,
// same-arity method in the program (conservative fallback).
type writer interface{ Write(b []byte) }

type consoleWriter struct{}

func (consoleWriter) Write(b []byte) {
	fmt.Printf("%x\n", b)
}

// UseInterface leaks through dynamic dispatch.
func UseInterface(v Vault, w writer) {
	w.Write(v.Token) // want `secret edge\.Vault\.Token reaches fmt formatting \(via Write\)`
}

// UseProjection stays clean: selecting an unmarked field from a value
// tainted only by its type does not leak.
func UseProjection(v Vault) {
	fmt.Println(v.ID)
}

// UseWaived is suppressed by a justified waiver.
func UseWaived(v Vault) {
	//gkalint:secretok deliberate fixture dump with justification
	fmt.Printf("%x\n", v.Token)
}

// UseBareWaiver shows an unjustified waiver is itself a finding.
func UseBareWaiver(v Vault) {
	//gkalint:secretok
	fmt.Printf("%x\n", v.Token) // want `gkalint:secretok waiver needs a justification`
}
