// Package gq is the fixture stub of idgka/internal/sigs/gq, matching
// the built-in secret list's fully-qualified names.
package gq

import "math/big"

// PrivateKey mirrors the real GQ identity key.
type PrivateKey struct {
	ID string
	S  *big.Int
}
