// Package helper is the provider half of the cross-package fixture:
// it declares the secret and a formatting helper whose summary says
// "my parameter reaches fmt".
package helper

import "fmt"

// Creds is a credential pair: public ID, secret token.
type Creds struct {
	ID string
	//gkalint:secret
	Token []byte
}

// Describe formats a raw token. There is no finding here — the
// parameter is only dangerous once a caller hands it key material.
func Describe(tok []byte) string {
	return fmt.Sprintf("token=%x", tok)
}
