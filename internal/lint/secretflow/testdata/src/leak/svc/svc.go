// Package svc exercises secret flow across a package boundary: the
// secret is declared in leak/helper, the leak happens here, and the
// sink is inside the helper's body — invisible to any single-package
// analysis.
package svc

import (
	"crypto/sha256"
	"fmt"

	"leak/helper"
)

// Report leaks: the marked field crosses the package boundary into a
// helper whose summary reaches fmt.
func Report(c helper.Creds) string {
	return helper.Describe(c.Token) // want `secret leak/helper\.Creds\.Token reaches fmt formatting \(via Describe\)`
}

// Struct leaks through the container: a value field holding the secret
// is printed with the whole struct.
func Struct(c helper.Creds) {
	v := helper.Creds{ID: "copy", Token: c.Token}
	fmt.Printf("%v\n", v) // want `secret leak/helper\.Creds\.Token reaches fmt formatting`
}

// Fingerprint is the sanctioned pattern: only a digest is formatted.
func Fingerprint(c helper.Creds) string {
	sum := sha256.Sum256(c.Token)
	return fmt.Sprintf("token#%x", sum[:4])
}
