package secretflow_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/secretflow"
)

func TestSecretFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), secretflow.Analyzer, "a")
}

// TestInterprocedural covers the cross-package flow: secret declared in
// leak/helper, leaked from leak/svc, sink inside the helper's body.
func TestInterprocedural(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), secretflow.Analyzer, "leak/...")
}

// TestEngineEdgeCases covers recursion, mutual recursion, closures,
// method values, and interface dispatch.
func TestEngineEdgeCases(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), secretflow.Analyzer, "edge")
}
