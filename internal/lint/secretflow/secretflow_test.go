package secretflow_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/secretflow"
)

func TestSecretFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), secretflow.Analyzer, "a")
}
