// Package secretflow keeps key material out of formatted output.
// Private exponents, extracted identity keys and session keys must never
// reach fmt/log formatting, error strings, metrics, or stringification
// methods — one %v on the wrong struct ships a private exponent to a log
// aggregator. Fingerprints (hashes of key bytes) are the sanctioned way
// to print key identity.
//
// Secrets are declared where they live, with a //gkalint:secret marker
// on the struct field or type declaration; the annotation index makes
// markers visible across packages within one gkalint run, and a built-in
// list (analysis.BuiltinSecrets) covers the repo's known key material as
// a floor.
//
// Since PR 9 the analyzer is interprocedural: it rides the shared
// whole-program taint engine (analysis.Taint), so a secret that leaves
// through a helper's return value, a closure capture, a method value, or
// an interface call and only then meets fmt.Errorf is reported at the
// point where the secret entered the flow. The analyzer reports:
//
//   - a secret value — or any value data-derived from one through
//     assignments, returns, function summaries, math/big copies and
//     encodings — reaching any fmt/log/log-slog/metrics sink, across
//     function and package boundaries;
//   - String/Text/GoString/Append called directly on a secret;
//   - a marked type declaring String, GoString, Format, MarshalText or
//     MarshalJSON (stringification invites accidental leaks; redact
//     before formatting and waive the redacting method).
//
// Deliberate output — e.g. a test vector dump — carries
// //gkalint:secretok <why>.
package secretflow

import (
	"go/ast"
	"go/types"

	"idgka/internal/lint/analysis"
)

// stringifiers are method names that turn a value into output.
var stringifiers = map[string]bool{
	"String": true, "GoString": true, "Format": true,
	"Text": true, "Append": true, "AppendText": true,
	"MarshalText": true, "MarshalJSON": true,
}

// Analyzer reports key material flowing into formatted output.
var Analyzer = &analysis.Analyzer{
	Name:       "secretflow",
	Doc:        "private exponents, identity keys and session keys must not reach fmt/log/error/metrics output or Stringers, across function boundaries",
	WaiverVerb: "secretok",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	taint := pass.Prog.Taint()
	if pkg := pass.Prog.PackageOf(pass.Pkg); pkg != nil {
		for _, leak := range taint.Leaks(pkg) {
			pass.Reportf(leak.Pos, "secret %s reaches %s%s; print a fingerprint (hash) instead or waive with //gkalint:secretok <reason>",
				leak.Root, sinkPhrase(leak.Sink), viaClause(leak.Via))
		}
	}
	secrets := func(name string) bool { return taint.Secret(name) }
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkStringified(pass, secrets, n)
			case *ast.FuncDecl:
				checkStringer(pass, secrets, n)
			}
			return true
		})
	}
	return nil
}

func sinkPhrase(pkg string) string {
	if pkg == "idgka/internal/metrics" {
		return "a metrics sink"
	}
	return pkg + " formatting"
}

func viaClause(via string) string {
	if via == "" {
		return ""
	}
	return " (via " + via + ")"
}

// secretName classifies an expression directly: the key it is secret
// under, or "". This is the local (v1) classification used for the
// stringifier checks; flow-derived classification lives in the engine.
func secretName(pass *analysis.Pass, secrets func(string) bool, e ast.Expr) string {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if fld, owner, ok := analysis.FieldOf(pass.Info, sel); ok {
			if key := owner + "." + fld.Name(); secrets(key) {
				return key
			}
		}
	}
	t := pass.Info.Types[e].Type
	if t != nil {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if name := analysis.NamedName(t); name != "" && secrets(name) {
			return name
		}
	}
	return ""
}

// checkStringified flags direct stringification of secrets.
func checkStringified(pass *analysis.Pass, secrets func(string) bool, call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && stringifiers[sel.Sel.Name] {
		if key := secretName(pass, secrets, sel.X); key != "" {
			pass.Reportf(call.Pos(), "secret %s stringified via %s; derive a fingerprint instead", key, sel.Sel.Name)
		}
	}
}

// checkStringer flags formatting methods declared on secret-marked types.
func checkStringer(pass *analysis.Pass, secrets func(string) bool, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || !stringifiers[fd.Name.Name] {
		return
	}
	t := pass.Info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if name := analysis.NamedName(t); name != "" && secrets(name) {
		pass.Reportf(fd.Pos(), "secret type %s declares %s: stringification leaks key material through every %%v; redact and waive with //gkalint:secretok", name, fd.Name.Name)
	}
}
