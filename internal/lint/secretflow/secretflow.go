// Package secretflow keeps key material out of formatted output.
// Private exponents, extracted identity keys and session keys must never
// reach fmt/log formatting, error strings, or stringification methods —
// one %v on the wrong struct ships a private exponent to a log
// aggregator. Fingerprints (hashes of key bytes) are the sanctioned way
// to print key identity.
//
// Secrets are declared where they live, with a //gkalint:secret marker
// on the struct field or type declaration; the annotation index makes
// markers visible across packages within one gkalint run, and a built-in
// list covers the repo's known key material as a floor. The analyzer
// reports:
//
//   - a secret value (marked field selector, or value of a marked type)
//     passed to any fmt or log function — Errorf included, so secrets
//     cannot ride into error chains;
//   - String/Text/GoString/Append called directly on a secret;
//   - a marked type declaring String, GoString, Format, MarshalText or
//     MarshalJSON (stringification invites accidental leaks; redact
//     before formatting and waive the redacting method).
//
// Deliberate output — e.g. a test vector dump — carries
// //gkalint:secretok <why>.
package secretflow

import (
	"go/ast"
	"go/types"

	"idgka/internal/lint/analysis"
)

// builtinSecrets is the floor: the repo's known key material, enforced
// even where annotations are out of the analyzed set.
var builtinSecrets = []string{
	"idgka/internal/sigs/gq.PrivateKey",
	"idgka/internal/sigs/gq.PrivateKey.S",
	"idgka/internal/sigs/sok.PrivateKey",
	"idgka/internal/sigs/sok.PrivateKey.D",
	"idgka/internal/sigs/sok.PKG.s",
	"idgka/internal/engine.Group.R",
	"idgka/internal/engine.Group.Key",
	"idgka.Session.key",
}

// stringifiers are method names that turn a value into output.
var stringifiers = map[string]bool{
	"String": true, "GoString": true, "Format": true,
	"Text": true, "Append": true, "AppendText": true,
	"MarshalText": true, "MarshalJSON": true,
}

// Analyzer reports key material flowing into formatted output.
var Analyzer = &analysis.Analyzer{
	Name:       "secretflow",
	Doc:        "private exponents, identity keys and session keys must not reach fmt/log/error formatting or Stringers",
	WaiverVerb: "secretok",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	secrets := map[string]bool{}
	for _, s := range builtinSecrets {
		secrets[s] = true
	}
	for s := range pass.Index.Secrets {
		secrets[s] = true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, secrets, n)
			case *ast.FuncDecl:
				checkStringer(pass, secrets, n)
			}
			return true
		})
	}
	return nil
}

// secretName classifies an expression: the key it is secret under, or "".
func secretName(pass *analysis.Pass, secrets map[string]bool, e ast.Expr) string {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if fld, owner, ok := analysis.FieldOf(pass.Info, sel); ok {
			if key := owner + "." + fld.Name(); secrets[key] {
				return key
			}
		}
	}
	t := pass.Info.Types[e].Type
	if t != nil {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if name := analysis.NamedName(t); name != "" && secrets[name] {
			return name
		}
	}
	return ""
}

// checkCall flags secrets passed into fmt/log sinks and direct
// stringification of secrets.
func checkCall(pass *analysis.Pass, secrets map[string]bool, call *ast.CallExpr) {
	switch analysis.CalleePkgPath(pass.Info, call) {
	case "fmt", "log", "log/slog":
		for _, arg := range call.Args {
			if key := secretName(pass, secrets, arg); key != "" {
				pass.Reportf(arg.Pos(), "secret %s reaches %s formatting; print a fingerprint (hash) instead or waive with //gkalint:secretok <reason>", key, analysis.CalleePkgPath(pass.Info, call))
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && stringifiers[sel.Sel.Name] {
		if key := secretName(pass, secrets, sel.X); key != "" {
			pass.Reportf(call.Pos(), "secret %s stringified via %s; derive a fingerprint instead", key, sel.Sel.Name)
		}
	}
}

// checkStringer flags formatting methods declared on secret-marked types.
func checkStringer(pass *analysis.Pass, secrets map[string]bool, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || !stringifiers[fd.Name.Name] {
		return
	}
	t := pass.Info.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if name := analysis.NamedName(t); name != "" && secrets[name] {
		pass.Reportf(fd.Pos(), "secret type %s declares %s: stringification leaks key material through every %%v; redact and waive with //gkalint:secretok", name, fd.Name.Name)
	}
}
