// Package blockunderlock reports blocking operations executed while a
// mutex is held — the composition of boundedwait's blocking-site
// catalogue (channel operations outside escaped selects, deadline-less
// connection I/O, sync.WaitGroup.Wait) with the interprocedural held
// set. A helper that parks the goroutine while a caller holds the
// member or shard mutex is the PR 4/PR 5 bug class before it ships:
// every other goroutine needing that lock wedges behind a wait that may
// never end.
//
// The held set comes from the shared lock engine, so the lock may be
// taken by a helper, a bound method value, or the *Locked calling
// contract (a blocking operation inside a fooLocked method blocks under
// whatever lock the caller holds). Blocking reached through a callee is
// reported at the call site with the chain that gets there, including
// the conservative implementer union behind interface calls — the
// settlement-lane verify block is only visible that way.
//
// Exemptions mirror boundedwait: select cases with an escape hatch,
// inherently bounded receives, connection I/O in a function that arms a
// deadline, and sync.Cond.Wait (it atomically releases the mutex it
// rides on — the one wait that is safe under a lock). Deliberate sites
// carry //gkalint:blocked <why>.
package blockunderlock

import (
	"go/ast"
	"go/token"
	"strings"

	"idgka/internal/lint/analysis"
)

// Analyzer reports blocking operations under a held mutex.
var Analyzer = &analysis.Analyzer{
	Name:       "blockunderlock",
	Doc:        "no blocking operation (channel op, deadline-less conn I/O, WaitGroup.Wait) while a mutex is held, directly or through any call chain (PR 4/PR 5)",
	WaiverVerb: "blocked",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Prog.PackageOf(pass.Pkg)
	if pkg == nil {
		return nil
	}
	locks := pass.Prog.Locks()
	for _, fn := range pass.Prog.Funcs() {
		if fn.Pkg != pkg || fn.Lit != nil || fn.Body() == nil {
			continue // literals are reached through their enclosing walk
		}
		fn := fn
		armed := analysis.ArmsDeadline(fn.Body())
		locks.Walk(fn, contractSeed(fn), &analysis.LockVisitor{
			Blocked: func(pos token.Pos, desc string, kind analysis.BlockKind, held analysis.HeldSet) {
				if len(held) == 0 {
					return
				}
				pass.Reportf(pos, "%s while holding %s; release the lock first or waive with //gkalint:blocked <reason>", desc, held.Describe())
			},
			Call: func(call *ast.CallExpr, callee *analysis.Func, held analysis.HeldSet) {
				if len(held) == 0 {
					return
				}
				for _, target := range locks.CallTargets(pkg, call, callee) {
					if target == fn {
						continue
					}
					b := locks.FnBlock(target)
					if b == nil || (b.Kind == analysis.BlockIO && armed) {
						continue
					}
					via := target.ShortName()
					if b.Via != "" {
						via += " → " + b.Via
					}
					pass.Reportf(call.Pos(), "call may block (%s, via %s) while holding %s; release the lock first or waive with //gkalint:blocked <reason>", b.Desc, via, held.Describe())
					return // one report per call site
				}
			},
		})
	}
	return nil
}

// contractSeed models the *Locked naming contract: the body runs under
// a caller-held lock on the receiver, so blocking inside it blocks
// under that lock even though no acquisition is in sight.
func contractSeed(fn *analysis.Func) analysis.HeldSet {
	if !strings.HasSuffix(fn.Decl.Name.Name, "Locked") || !fn.IsMethod() {
		return nil
	}
	recv := "receiver"
	if list := fn.Decl.Recv.List; len(list) > 0 && len(list[0].Names) > 0 {
		recv = list[0].Names[0].Name
	}
	return analysis.HeldSet{recv + ".(caller lock)": {Mode: analysis.LockWrite}}
}
