package blockunderlock_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/blockunderlock"
)

func TestBlockUnderLock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), blockunderlock.Analyzer, "bul")
}

// TestGoldenSARIF pins the machine-readable surface CI uploads: the
// fixture's active findings at level error and the //gkalint:blocked
// waiver at level note with its inSource suppression and justification.
func TestGoldenSARIF(t *testing.T) {
	analysistest.RunGolden(t, analysistest.TestData(), blockunderlock.Analyzer, "bul.sarif.golden", "bul")
}
