// Package bul seeds blocking-under-lock violations and proves the
// exemptions, modeled on the repo's hub/member delivery idiom.
package bul

import (
	"io"
	"net"
	"sync"
	"time"
)

// Hub owns a mutex, a delivery channel, and a connection.
type Hub struct {
	mu    sync.Mutex
	ch    chan int
	wg    sync.WaitGroup
	conn  net.Conn
	cond  *sync.Cond
	ready bool
}

func (h *Hub) directSend() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ch <- 1 // want `channel send while holding h\.mu`
}

func (h *Hub) escapedSend() {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case h.ch <- 1: // escape hatch: cannot wedge on its own
	default:
	}
}

func (h *Hub) boundedRecv() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case v := <-h.ch:
		return v
	case <-time.After(time.Second):
		return 0
	}
}

// flush blocks, but holds nothing itself — clean here, and the blocking
// fact lands in its summary.
func (h *Hub) flush() {
	h.ch <- 1
}

func (h *Hub) helperBlock() {
	h.mu.Lock()
	h.flush() // want `call may block \(channel send, via flush\) while holding h\.mu`
	h.mu.Unlock()
}

func (h *Hub) waitUnder() {
	h.mu.Lock()
	h.wg.Wait() // want `sync\.WaitGroup\.Wait while holding h\.mu`
	h.mu.Unlock()
}

// condWait is the sanctioned wait: sync.Cond.Wait atomically releases
// the mutex it rides on.
func (h *Hub) condWait() {
	h.mu.Lock()
	for !h.ready {
		h.cond.Wait()
	}
	h.mu.Unlock()
}

func (h *Hub) ioUnder(buf []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.ReadFull(h.conn, buf) // want `io\.ReadFull over a deadline-capable connection while holding h\.mu`
	return err
}

// ioArmed bounds its I/O with a deadline, so holding the lock across it
// is a bounded (if rude) wait, not a wedge.
func (h *Hub) ioArmed(buf []byte) error {
	h.conn.SetDeadline(time.Now().Add(time.Second))
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := h.conn.Read(buf)
	return err
}

// drainLocked runs under the caller's lock by contract: blocking here
// blocks under a lock nobody in this body ever took.
func (h *Hub) drainLocked() int {
	return <-h.ch // want `channel receive while holding h\.\(caller lock\)`
}

// waived: the deliberate exception, justified — also the suppression
// case the golden SARIF fixture pins.
func (h *Hub) waived() {
	h.mu.Lock()
	defer h.mu.Unlock()
	//gkalint:blocked ch is buffered cap 1 and the slot is freed under this same lock before every send
	h.ch <- 1
}
