// Package g exercises the goroutine shutdown-path analyzer: every go
// statement needs a visible termination signal or a justified waiver.
package g

import "sync"

func work() {}

// Leak spins forever with no signal — the finding the old suite missed.
func Leak() {
	go func() { // want `goroutine has no visible shutdown path`
		for {
			work()
		}
	}()
}

// LeakSender blocks on send: a sender abandoned by its receiver is the
// leak, so sending is deliberately not a shutdown signal.
func LeakSender(ch chan int) {
	go func() { // want `goroutine has no visible shutdown path`
		for {
			ch <- 1
		}
	}()
}

// Unresolvable spawns through a function value the call graph cannot
// see into.
func Unresolvable(f func()) {
	go f() // want `goroutine target is not statically resolvable`
}

// OKSelect terminates through the done-channel pattern.
func OKSelect(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// OKRange drains a channel; close(ch) ends the loop.
func OKRange(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// OKWaitGroup is accounted for.
func OKWaitGroup(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

func waiter(done chan struct{}) { <-done }

// OKDeclared spawns a declared function whose body receives.
func OKDeclared(done chan struct{}) {
	go waiter(done)
}

// OKIndirect terminates one call level down — within the search depth.
func OKIndirect(done chan struct{}) {
	go func() {
		waiter(done)
	}()
}

// Waived is the sanctioned escape hatch for lifetimes the analyzer
// cannot see.
func Waived() {
	//gkalint:bounded fixture justification: process-lifetime worker
	go func() {
		for {
			work()
		}
	}()
}

// BareWaiver shows an unjustified waiver is itself a finding.
func BareWaiver() {
	//gkalint:bounded
	go func() { // want `gkalint:bounded waiver needs a justification`
		for {
			work()
		}
	}()
}
