// Package goroleak requires every goroutine in non-test code to have a
// visible shutdown path. The serve layer's shard workers, settlement
// lane and shared ticker (PR 5/6/8) all terminate through an explicit
// signal; a `go` statement without one is how hosts accumulate
// goroutines across group churn until the process dies — invisible in
// unit tests, fatal at a million groups.
//
// For each go statement the analyzer resolves the spawned callable — an
// inline function literal, or a declared function/method via the
// program's call graph — and searches its body (and, one level deep,
// the bodies of the in-program functions it calls) for a termination
// signal:
//
//   - a select statement (the done/ctx-channel pattern);
//   - a channel receive (<-done, <-ctx.Done(), a ticker drain);
//   - a for-range over a channel (the worker-FIFO pattern: close(ch)
//     ends the loop);
//   - WaitGroup accounting (Done or Wait on a sync.WaitGroup).
//
// Sending on a channel deliberately does not count: a sender blocked on
// an abandoned receiver is precisely the leak this analyzer exists to
// catch. Goroutines that are bounded for reasons the analyzer cannot
// see — a loop that exits when its listener closes, a process-lifetime
// server — carry //gkalint:bounded <why> at the go statement.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"idgka/internal/lint/analysis"
)

// searchDepth bounds the callee-body search: the spawned body itself
// plus one level of in-program callees.
const searchDepth = 2

// Analyzer reports go statements with no visible shutdown path.
var Analyzer = &analysis.Analyzer{
	Name:       "goroleak",
	Doc:        "every goroutine needs a visible shutdown path — select/done receive, range over a channel, or WaitGroup accounting; waive with //gkalint:bounded (PR 9)",
	WaiverVerb: "bounded",
	Run:        run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Prog.PackageOf(pass.Pkg)
	if pkg == nil {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, pkg, g)
			return true
		})
	}
	return nil
}

func checkGo(pass *analysis.Pass, pkg *analysis.Package, g *ast.GoStmt) {
	target := pass.Prog.Callee(pkg, g.Call)
	if target == nil {
		pass.Reportf(g.Pos(), "goroutine target is not statically resolvable (func value or interface method); document its shutdown path with //gkalint:bounded <reason>")
		return
	}
	seen := map[*analysis.Func]bool{}
	if !hasShutdownPath(pass.Prog, target, searchDepth, seen) {
		pass.Reportf(g.Pos(), "goroutine has no visible shutdown path (no select, done-channel receive, range over a channel, or WaitGroup accounting); make termination explicit or waive with //gkalint:bounded <reason>")
	}
}

// hasShutdownPath searches fn's body, then (depth permitting) the
// bodies of its in-program callees, for a termination signal.
func hasShutdownPath(prog *analysis.Program, fn *analysis.Func, depth int, seen map[*analysis.Func]bool) bool {
	if fn == nil || fn.Body() == nil || seen[fn] {
		return false
	}
	seen[fn] = true
	info := fn.Pkg.Info
	found := false
	var callees []*ast.CallExpr
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupAccounting(info, n) {
				found = true
				return false
			}
			callees = append(callees, n)
		}
		return !found
	})
	if found {
		return true
	}
	if depth <= 1 {
		return false
	}
	for _, call := range callees {
		if callee := prog.Callee(fn.Pkg, call); callee != nil {
			if hasShutdownPath(prog, callee, depth-1, seen) {
				return true
			}
		}
	}
	return false
}

// isWaitGroupAccounting matches Done/Wait on a sync.WaitGroup.
func isWaitGroupAccounting(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Wait") {
		return false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return analysis.NamedName(t) == "sync.WaitGroup"
}
