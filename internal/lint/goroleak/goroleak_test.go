package goroleak_test

import (
	"testing"

	"idgka/internal/lint/analysistest"
	"idgka/internal/lint/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), goroleak.Analyzer, "g")
}
