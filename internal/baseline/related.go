package baseline

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/mathx"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/params"
	"idgka/internal/wire"
)

// This file implements the two historical group-key-agreement protocols
// the paper's related-work section is built on, as unauthenticated keying
// cores (the paper compares authenticated BD variants; these serve as
// extension baselines showing why ring/broadcast protocols won):
//
//   - ING (Ingemarsson-Tang-Wong 1982, [7]): n-1 rounds around a ring;
//     member i raises whatever it received to its own exponent and passes
//     it on. After n-1 hops every member holds g^{r_1 r_2 ··· r_n}.
//   - GDH.2 (Steiner-Tsudik-Waidner, [15]): an upflow chain that
//     accumulates partial products followed by one broadcast by the last
//     member; key is g^{r_1 ··· r_n}.
//
// Both cost Θ(n) rounds or Θ(n)-sized messages, which is exactly the
// overhead the Burmester-Desmedt construction (2 rounds, constant-size
// messages) removed — the comparison cmd/gkabench -related prints.

// Message labels.
const (
	MsgINGPass   = "ing/pass"    // unicast ring hop
	MsgGDHUpflow = "gdh2/upflow" // unicast chain hop
	MsgGDHBcast  = "gdh2/bcast"  // final broadcast
)

// RingParticipant is a member of an ING or GDH.2 run.
type RingParticipant struct {
	id  string
	set *params.Set
	m   *meter.Meter

	r   *big.Int
	key *big.Int
}

// NewRingParticipant builds a member for the historical protocols.
func NewRingParticipant(id string, set *params.Set, m *meter.Meter) (*RingParticipant, error) {
	if id == "" || set == nil {
		return nil, errors.New("baseline: incomplete ring participant")
	}
	return &RingParticipant{id: id, set: set, m: m}, nil
}

// ID returns the member identity.
func (p *RingParticipant) ID() string { return p.id }

// Key returns the agreed key (nil before a run).
func (p *RingParticipant) Key() *big.Int { return p.key }

// Meter returns the member's meter.
func (p *RingParticipant) Meter() *meter.Meter { return p.m }

// RunING executes the Ingemarsson et al. ring protocol: n-1 rounds, each
// member performing one exponentiation per round (n-1 total) and passing
// the intermediate value to its ring successor. The key is
// g^{r_1 r_2 ··· r_n}.
func RunING(net netsim.Medium, parts []*RingParticipant) error {
	n := len(parts)
	if n < 2 {
		return errors.New("baseline: ING needs at least 2 members")
	}
	sg := parts[0].set.Schnorr
	// Draw exponents; hold the current intermediate value per member,
	// starting from g itself (round 0 computes g^{r_i}).
	current := make([]*big.Int, n)
	for i, p := range parts {
		r, err := mathx.RandScalar(sym2rand(), sg.Q)
		if err != nil {
			return err
		}
		p.r = r
		current[i] = new(big.Int).Exp(sg.G, r, sg.P)
		p.m.Exp(1)
	}
	// n-1 ring hops: member i sends its value to i+1, receives from i-1,
	// raises to its own exponent.
	for round := 1; round < n; round++ {
		// Send phase.
		for i, p := range parts {
			next := parts[(i+1)%n]
			payload := wire.NewBuffer().PutString(p.id).PutBig(current[i]).Bytes()
			if err := net.Send(p.id, next.id, MsgINGPass, payload); err != nil {
				return err
			}
		}
		// Receive + exponentiate phase.
		incoming := make([]*big.Int, n)
		for i, p := range parts {
			msgs, err := net.RecvType(p.id, MsgINGPass)
			if err != nil {
				return err
			}
			if len(msgs) != 1 {
				return fmt.Errorf("baseline: ING %s expected 1 hop message, got %d", p.id, len(msgs))
			}
			rd := wire.NewReader(msgs[0].Payload)
			_ = rd.String()
			v := rd.Big()
			if err := rd.Close(); err != nil {
				return err
			}
			incoming[i] = new(big.Int).Exp(v, p.r, sg.P)
			p.m.Exp(1)
		}
		copy(current, incoming)
	}
	for i, p := range parts {
		p.key = current[i]
	}
	// Agreement sanity: all equal g^{Πr_i}.
	for _, p := range parts[1:] {
		if p.key.Cmp(parts[0].key) != 0 {
			return errors.New("baseline: ING members disagree")
		}
	}
	return nil
}

// RunGDH2 executes Steiner et al.'s GDH.2: an upflow pass in which member
// i receives i partial values, exponentiates each, appends g^{r_1···r_i},
// and forwards; the last member broadcasts the n-1 partials from which
// each member lifts its own slot to the group key g^{r_1···r_n}.
func RunGDH2(net netsim.Medium, parts []*RingParticipant) error {
	n := len(parts)
	if n < 2 {
		return errors.New("baseline: GDH.2 needs at least 2 members")
	}
	sg := parts[0].set.Schnorr
	for _, p := range parts {
		r, err := mathx.RandScalar(sym2rand(), sg.Q)
		if err != nil {
			return err
		}
		p.r = r
	}
	// Upflow invariant after member i processes: flow[0] carries all
	// exponents drawn so far, and flow[j] (j >= 1) misses exactly member
	// j-1's exponent.
	flow := []*big.Int{new(big.Int).Set(sg.G)} // member 0 starts from [g]
	for i := 0; i < n-1; i++ {
		p := parts[i]
		newFlow := make([]*big.Int, 0, len(flow)+1)
		for _, v := range flow {
			newFlow = append(newFlow, new(big.Int).Exp(v, p.r, sg.P))
			p.m.Exp(1)
		}
		// The slot missing member i's own exponent is the previous
		// accumulated value (g itself for i = 0).
		newFlow = append(newFlow, flow[0])
		flow = newFlow
		// Forward to the next member.
		buf := wire.NewBuffer().PutString(p.id).PutUint(uint64(len(flow)))
		for _, v := range flow {
			buf.PutBig(v)
		}
		if err := net.Send(p.id, parts[i+1].id, MsgGDHUpflow, buf.Bytes()); err != nil {
			return err
		}
		// Receiver ingests (the network copy is authoritative).
		msgs, err := net.RecvType(parts[i+1].id, MsgGDHUpflow)
		if err != nil {
			return err
		}
		if len(msgs) != 1 {
			return fmt.Errorf("baseline: GDH.2 upflow to %s lost", parts[i+1].id)
		}
		rd := wire.NewReader(msgs[0].Payload)
		_ = rd.String()
		cnt := int(rd.Uint())
		recv := make([]*big.Int, cnt)
		for j := 0; j < cnt; j++ {
			recv[j] = rd.Big()
		}
		if err := rd.Close(); err != nil {
			return err
		}
		flow = recv
	}
	// Last member: flow[0] = g^{r_0 ··· r_{n-2}} gives its key directly.
	last := parts[n-1]
	last.key = new(big.Int).Exp(flow[0], last.r, sg.P)
	last.m.Exp(1)
	// Broadcast slots 1..n-1 (slot j misses member j-1), each lifted by
	// r_{n-1}.
	buf := wire.NewBuffer().PutString(last.id).PutUint(uint64(n - 1))
	for j := 1; j < n; j++ {
		v := new(big.Int).Exp(flow[j], last.r, sg.P)
		last.m.Exp(1)
		buf.PutBig(v)
	}
	if err := net.Broadcast(last.id, MsgGDHBcast, buf.Bytes()); err != nil {
		return err
	}
	for i := 0; i < n-1; i++ {
		p := parts[i]
		msgs, err := net.RecvType(p.id, MsgGDHBcast)
		if err != nil {
			return err
		}
		if len(msgs) != 1 {
			return fmt.Errorf("baseline: GDH.2 broadcast missing at %s", p.id)
		}
		rd := wire.NewReader(msgs[0].Payload)
		_ = rd.String()
		cnt := int(rd.Uint())
		vals := make([]*big.Int, cnt)
		for j := 0; j < cnt; j++ {
			vals[j] = rd.Big()
		}
		if err := rd.Close(); err != nil {
			return err
		}
		// Slot i misses member i's exponent.
		p.key = new(big.Int).Exp(vals[i], p.r, sg.P)
		p.m.Exp(1)
	}
	for _, p := range parts[1:] {
		if p.key.Cmp(parts[0].key) != 0 {
			return errors.New("baseline: GDH.2 members disagree")
		}
	}
	return nil
}

// sym2rand centralises the randomness source for the historical
// protocols.
func sym2rand() io.Reader { return rand.Reader }
