// Package baseline implements the four comparison protocols of the paper's
// Table 1 and the BD re-run dynamics of Table 4:
//
//   - Burmester-Desmedt authenticated with per-peer signatures under SOK
//     (ID-based, pairing), ECDSA (certificate-based, secp160r1) or DSA
//     (certificate-based, 1024-bit);
//   - the Saeednia-Safavi-Naini ID-based scheme (reconstruction; see
//     DESIGN.md §3); and
//   - dynamic membership handled by re-running the full protocol, the
//     strategy the paper charges the baselines with.
//
// The package shares the ring mathematics with internal/core through
// internal/bdkey, and meters the exact operations Table 1 charges.
package baseline

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/bdkey"
	"idgka/internal/mathx"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/params"
	"idgka/internal/wire"
)

// Message type labels.
const (
	MsgBDRound1 = "bd/round1" // id ‖ z_i ‖ [certificate]
	MsgBDRound2 = "bd/round2" // id ‖ X_i ‖ σ_i
)

// Authenticator abstracts the signature scheme a BD run is authenticated
// with. Implementations meter nothing themselves; the engine charges the
// paper's operation counts.
type Authenticator interface {
	// Scheme identifies the signature scheme for metering and pricing.
	Scheme() meter.Scheme
	// Sign produces a signature over msg.
	Sign(rnd io.Reader, msg []byte) ([]byte, error)
	// Verify checks a peer's signature. For ID-based schemes the peer
	// identity is the verification key; certificate-based schemes resolve
	// the key from a previously checked credential.
	Verify(peerID string, msg, sig []byte) error
	// Credential returns the certificate to attach to round 1, or nil for
	// ID-based schemes.
	Credential() []byte
	// CheckCredential verifies and caches a peer's certificate; it is a
	// no-op for ID-based schemes.
	CheckCredential(peerID string, cred []byte) error
	// UsesMapToPoint reports whether each verification performs a
	// MapToPoint (true for SOK), so the engine can charge Table 1's row.
	UsesMapToPoint() bool
}

// Participant is one member of a baseline BD run.
type Participant struct {
	id   string
	set  *params.Set
	auth Authenticator
	m    *meter.Meter
	rnd  io.Reader

	// Session result.
	roster []string
	r      *big.Int
	z      map[string]*big.Int
	key    *big.Int
}

// NewParticipant wires up a BD participant.
func NewParticipant(id string, set *params.Set, auth Authenticator, m *meter.Meter, rnd io.Reader) (*Participant, error) {
	if id == "" || set == nil || auth == nil {
		return nil, errors.New("baseline: incomplete participant")
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	return &Participant{id: id, set: set, auth: auth, m: m, rnd: rnd}, nil
}

// ID returns the participant identity.
func (p *Participant) ID() string { return p.id }

// Key returns the agreed group key (nil before RunBD succeeds).
func (p *Participant) Key() *big.Int { return p.key }

// Meter returns the participant's meter.
func (p *Participant) Meter() *meter.Meter { return p.m }

// RunBD executes signature-authenticated Burmester-Desmedt over the
// network: round 1 broadcasts z_i (plus a certificate for cert-based
// schemes), round 2 broadcasts X_i signed over U_i ‖ z_i ‖ X_i ‖ Πz_j,
// and every member verifies all n-1 peer signatures individually — the
// cost the proposed protocol's batch verification removes.
func RunBD(net netsim.Medium, parts []*Participant) error {
	if len(parts) < 2 {
		return errors.New("baseline: BD needs at least 2 members")
	}
	roster := make([]string, len(parts))
	for i, p := range parts {
		roster[i] = p.id
	}
	sg := parts[0].set.Schnorr

	// Round 1.
	for _, p := range parts {
		r, err := mathx.RandScalar(p.rnd, sg.Q)
		if err != nil {
			return err
		}
		p.roster = roster
		p.r = r
		p.z = map[string]*big.Int{p.id: sg.Exp(r)}
		p.m.Exp(1)
		cred := p.auth.Credential()
		if cred != nil {
			p.m.Cert(1, 0, 0)
		}
		payload := wire.NewBuffer().PutString(p.id).PutBig(p.z[p.id]).PutBytes(cred).Bytes()
		if err := net.Broadcast(p.id, MsgBDRound1, payload); err != nil {
			return err
		}
	}
	// Ingest round 1: store z, check credentials.
	for _, p := range parts {
		msgs, err := net.RecvType(p.id, MsgBDRound1)
		if err != nil {
			return err
		}
		for _, msg := range msgs {
			r := wire.NewReader(msg.Payload)
			id := r.String()
			z := r.Big()
			cred := r.Bytes()
			if err := r.Close(); err != nil {
				return fmt.Errorf("baseline: round1 from %s: %w", msg.From, err)
			}
			if id != msg.From {
				return errors.New("baseline: round1 identity mismatch")
			}
			if len(cred) > 0 {
				if err := p.auth.CheckCredential(id, cred); err != nil {
					return fmt.Errorf("baseline: %s rejects certificate of %s: %w", p.id, id, err)
				}
				p.m.Cert(0, 1, 1)
			}
			p.z[id] = z
		}
		if len(p.z) != len(roster) {
			return fmt.Errorf("baseline: %s has %d of %d round-1 values", p.id, len(p.z), len(roster))
		}
	}

	// Round 2: X_i signed over U_i ‖ z_i ‖ X_i ‖ Πz_j.
	type r2state struct {
		x   *big.Int
		sig []byte
	}
	states := make(map[string]*r2state, len(parts))
	for _, p := range parts {
		idx := indexOf(roster, p.id)
		n := len(roster)
		x, err := bdkey.XValue(p.z[roster[(idx+1)%n]], p.z[roster[(idx-1+n)%n]], p.r, sg.P)
		if err != nil {
			return err
		}
		p.m.Exp(1)
		zs := make([]*big.Int, n)
		for i, id := range roster {
			zs[i] = p.z[id]
		}
		zProd := mathx.ProductMod(zs, sg.P)
		signed := signedPayload(p.id, p.z[p.id], x, zProd)
		sig, err := p.auth.Sign(p.rnd, signed)
		if err != nil {
			return err
		}
		p.m.SignGen(p.auth.Scheme(), 1)
		states[p.id] = &r2state{x: x, sig: sig}
		payload := wire.NewBuffer().PutString(p.id).PutBig(x).PutBytes(sig).Bytes()
		if err := net.Broadcast(p.id, MsgBDRound2, payload); err != nil {
			return err
		}
	}
	// Ingest round 2: verify all peer signatures, check Lemma 1, compute
	// the key.
	for _, p := range parts {
		msgs, err := net.RecvType(p.id, MsgBDRound2)
		if err != nil {
			return err
		}
		xs := map[string]*big.Int{p.id: states[p.id].x}
		n := len(roster)
		zs := make([]*big.Int, n)
		for i, id := range roster {
			zs[i] = p.z[id]
		}
		zProd := mathx.ProductMod(zs, sg.P)
		for _, msg := range msgs {
			r := wire.NewReader(msg.Payload)
			id := r.String()
			x := r.Big()
			sig := r.Bytes()
			if err := r.Close(); err != nil {
				return fmt.Errorf("baseline: round2 from %s: %w", msg.From, err)
			}
			if id != msg.From {
				return errors.New("baseline: round2 identity mismatch")
			}
			signed := signedPayload(id, p.z[id], x, zProd)
			if err := p.auth.Verify(id, signed, sig); err != nil {
				return fmt.Errorf("baseline: %s rejects signature of %s: %w", p.id, id, err)
			}
			p.m.SignVer(p.auth.Scheme(), 1)
			if p.auth.UsesMapToPoint() {
				p.m.MapToPoint(1)
			}
			xs[id] = x
		}
		if len(xs) != n {
			return fmt.Errorf("baseline: %s has %d of %d round-2 values", p.id, len(xs), n)
		}
		ordered := make([]*big.Int, n)
		for i, id := range roster {
			ordered[i] = xs[id]
		}
		if err := bdkey.CheckLemma1(ordered, sg.P); err != nil {
			return err
		}
		idx := indexOf(roster, p.id)
		key, err := bdkey.Key(idx, p.r, p.z[roster[(idx-1+n)%n]], ordered, sg.P)
		if err != nil {
			return err
		}
		p.m.Exp(1)
		p.key = key
	}
	return nil
}

// signedPayload builds the message each member signs in round 2:
// U_i ‖ z_i ‖ X_i ‖ Πz_j, covering both rounds' keying material.
func signedPayload(id string, z, x, zProd *big.Int) []byte {
	return wire.NewBuffer().PutString(id).PutBig(z).PutBig(x).PutBig(zProd).Bytes()
}

func indexOf(roster []string, id string) int {
	for i, v := range roster {
		if v == id {
			return i
		}
	}
	return -1
}

// RunBDRekey re-runs the full BD protocol over a new member set — the
// paper's baseline strategy for Join, Leave, Merge and Partition events.
func RunBDRekey(net netsim.Medium, parts []*Participant) error {
	for _, p := range parts {
		p.key = nil
		p.z = nil
	}
	return RunBD(net, parts)
}
