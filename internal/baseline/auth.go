package baseline

import (
	"fmt"
	"io"
	"math/big"
	"sync"

	"idgka/internal/ec"
	"idgka/internal/meter"
	"idgka/internal/pki"
	"idgka/internal/sigs/dsa"
	"idgka/internal/sigs/ecdsa"
	"idgka/internal/sigs/sok"
)

func newBig(b []byte) *big.Int { return new(big.Int).SetBytes(b) }

// SOKAuth authenticates BD with Sakai-Ohgishi-Kasahara ID-based
// signatures: no certificates, but every verification costs three pairings
// plus a MapToPoint.
type SOKAuth struct {
	params sok.SystemParams
	sk     *sok.PrivateKey
}

// NewSOKAuth builds the authenticator for one member.
func NewSOKAuth(params sok.SystemParams, sk *sok.PrivateKey) *SOKAuth {
	return &SOKAuth{params: params, sk: sk}
}

// Scheme implements Authenticator.
func (a *SOKAuth) Scheme() meter.Scheme { return meter.SchemeSOK }

// Sign implements Authenticator.
func (a *SOKAuth) Sign(rnd io.Reader, msg []byte) ([]byte, error) {
	sig, err := a.sk.Sign(rnd, msg)
	if err != nil {
		return nil, err
	}
	return sig.Encode(a.params.Group), nil
}

// Verify implements Authenticator.
func (a *SOKAuth) Verify(peerID string, msg, sigBytes []byte) error {
	sig, err := sok.Decode(a.params.Group, sigBytes)
	if err != nil {
		return err
	}
	return sok.Verify(a.params, peerID, msg, sig)
}

// Credential implements Authenticator (ID-based: none).
func (a *SOKAuth) Credential() []byte { return nil }

// CheckCredential implements Authenticator (ID-based: none expected).
func (a *SOKAuth) CheckCredential(string, []byte) error { return nil }

// UsesMapToPoint implements Authenticator.
func (a *SOKAuth) UsesMapToPoint() bool { return true }

// ECDSAAuth authenticates BD with certificate-based ECDSA (secp160r1): the
// cheapest per-verification baseline, but each member must ship, receive
// and verify certificates.
type ECDSAAuth struct {
	kp     *ecdsa.KeyPair
	cert   *pki.Certificate
	anchor *pki.TrustAnchor

	mu    sync.Mutex
	peers map[string]*ecdsa.KeyPair // verified peer keys
}

// NewECDSAAuth builds the authenticator from the member's key pair, its
// CA-issued certificate and the CA trust anchor.
func NewECDSAAuth(kp *ecdsa.KeyPair, cert *pki.Certificate, anchor *pki.TrustAnchor) *ECDSAAuth {
	return &ECDSAAuth{kp: kp, cert: cert, anchor: anchor, peers: map[string]*ecdsa.KeyPair{}}
}

// Scheme implements Authenticator.
func (a *ECDSAAuth) Scheme() meter.Scheme { return meter.SchemeECDSA }

// Sign implements Authenticator.
func (a *ECDSAAuth) Sign(rnd io.Reader, msg []byte) ([]byte, error) {
	sig, err := a.kp.Sign(rnd, msg)
	if err != nil {
		return nil, err
	}
	return sig.Encode(a.kp.Curve), nil
}

// Verify implements Authenticator.
func (a *ECDSAAuth) Verify(peerID string, msg, sigBytes []byte) error {
	a.mu.Lock()
	peer := a.peers[peerID]
	a.mu.Unlock()
	if peer == nil {
		return fmt.Errorf("baseline: no verified certificate for %s", peerID)
	}
	sig, err := ecdsa.Decode(sigBytes, peer.Curve)
	if err != nil {
		return err
	}
	return peer.Verify(msg, sig)
}

// Credential implements Authenticator.
func (a *ECDSAAuth) Credential() []byte { return a.cert.Encode() }

// CheckCredential implements Authenticator: verify the CA signature and
// cache the bound public key.
func (a *ECDSAAuth) CheckCredential(peerID string, cred []byte) error {
	cert, err := pki.DecodeCertificate(cred)
	if err != nil {
		return err
	}
	if cert.Subject != peerID {
		return fmt.Errorf("baseline: certificate subject %q != sender %q", cert.Subject, peerID)
	}
	if err := a.anchor.VerifyCertificate(cert); err != nil {
		return err
	}
	curve := a.kp.Curve
	pt, err := curve.UnmarshalCompressed(cert.PublicKey)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.peers[peerID] = &ecdsa.KeyPair{Curve: curve, Q: pt}
	a.mu.Unlock()
	return nil
}

// UsesMapToPoint implements Authenticator.
func (a *ECDSAAuth) UsesMapToPoint() bool { return false }

// NewECDSAIdentity issues a key pair plus certificate for one member.
func NewECDSAIdentity(rnd io.Reader, id string, curve *ec.Curve, ca *pki.CA) (*ECDSAAuth, error) {
	kp, err := ecdsa.GenerateKey(rnd, curve)
	if err != nil {
		return nil, err
	}
	cert, err := ca.Issue(rnd, id, curve.MarshalCompressed(kp.Q))
	if err != nil {
		return nil, err
	}
	return NewECDSAAuth(kp, cert, ca.Anchor()), nil
}

// DSAAuth authenticates BD with certificate-based 1024-bit DSA.
type DSAAuth struct {
	kp     *dsa.KeyPair
	cert   *pki.Certificate
	anchor *pki.TrustAnchor

	mu    sync.Mutex
	peers map[string]*dsa.KeyPair
}

// NewDSAAuth builds the authenticator from key pair, certificate and
// anchor.
func NewDSAAuth(kp *dsa.KeyPair, cert *pki.Certificate, anchor *pki.TrustAnchor) *DSAAuth {
	return &DSAAuth{kp: kp, cert: cert, anchor: anchor, peers: map[string]*dsa.KeyPair{}}
}

// Scheme implements Authenticator.
func (a *DSAAuth) Scheme() meter.Scheme { return meter.SchemeDSA }

// Sign implements Authenticator.
func (a *DSAAuth) Sign(rnd io.Reader, msg []byte) ([]byte, error) {
	sig, err := a.kp.Sign(rnd, msg)
	if err != nil {
		return nil, err
	}
	return sig.Encode(a.kp.Group.Q), nil
}

// Verify implements Authenticator.
func (a *DSAAuth) Verify(peerID string, msg, sigBytes []byte) error {
	a.mu.Lock()
	peer := a.peers[peerID]
	a.mu.Unlock()
	if peer == nil {
		return fmt.Errorf("baseline: no verified certificate for %s", peerID)
	}
	sig, err := dsa.Decode(sigBytes, peer.Group.Q)
	if err != nil {
		return err
	}
	return peer.Verify(msg, sig)
}

// Credential implements Authenticator.
func (a *DSAAuth) Credential() []byte { return a.cert.Encode() }

// CheckCredential implements Authenticator.
func (a *DSAAuth) CheckCredential(peerID string, cred []byte) error {
	cert, err := pki.DecodeCertificate(cred)
	if err != nil {
		return err
	}
	if cert.Subject != peerID {
		return fmt.Errorf("baseline: certificate subject %q != sender %q", cert.Subject, peerID)
	}
	if err := a.anchor.VerifyCertificate(cert); err != nil {
		return err
	}
	y := newBig(cert.PublicKey)
	a.mu.Lock()
	a.peers[peerID] = &dsa.KeyPair{Group: a.kp.Group, Y: y}
	a.mu.Unlock()
	return nil
}

// UsesMapToPoint implements Authenticator.
func (a *DSAAuth) UsesMapToPoint() bool { return false }

// NewDSAIdentity issues a key pair plus certificate for one member.
func NewDSAIdentity(rnd io.Reader, id string, ca *pki.CA, kp *dsa.KeyPair) (*DSAAuth, error) {
	cert, err := ca.Issue(rnd, id, kp.Y.Bytes())
	if err != nil {
		return nil, err
	}
	return NewDSAAuth(kp, cert, ca.Anchor()), nil
}
