package baseline

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/bdkey"
	"idgka/internal/hashx"
	"idgka/internal/mathx"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/sigs/gq"
	"idgka/internal/wire"
)

// SSN message labels.
const (
	MsgSSNRound1 = "ssn/round1" // id ‖ z_i ‖ w_i
	MsgSSNRound2 = "ssn/round2" // id ‖ X_i
)

// SSNParticipant is a member of the Saeednia-Safavi-Naini reconstruction:
// an ID-based Burmester-Desmedt variant over the composite GQ modulus in
// which each member's round-1 value is implicitly authenticated with its
// identity key (no signatures at all), at the price of two modular
// exponentiations per peer — the Θ(n) exponentiation count Table 1 charges
// the SSN column with (paper: 2n+4 per user; this reconstruction: 2n+2,
// see DESIGN.md §3).
//
// Round 1: U_i draws r_i, broadcasts z_i = g^{r_i} mod N and the
// authenticator w_i = S_i · z_i^{h_i} mod N where h_i = H(ID_i ‖ z_i) and
// S_i = H(ID_i)^d is the GQ identity key. Receivers check
//
//	w_j^e == H(ID_j) · z_j^{h_j·e} (mod N)
//
// which holds because w_j^e = S_j^e · z_j^{h_j e} = H(ID_j) · z_j^{h_j e}.
// Round 2 and key computation are standard BD over Z_N^*.
type SSNParticipant struct {
	id  string
	sk  *gq.PrivateKey
	g   *big.Int // public base of large order in Z_N^*
	m   *meter.Meter
	rnd io.Reader

	roster []string
	r      *big.Int
	z      map[string]*big.Int
	key    *big.Int
}

// SSNBase is the fixed public base used by the reconstruction. Its order
// in Z_N^* is overwhelming for random RSA moduli.
var SSNBase = big.NewInt(2)

// NewSSNParticipant builds a member from its GQ identity key.
func NewSSNParticipant(sk *gq.PrivateKey, m *meter.Meter, rnd io.Reader) (*SSNParticipant, error) {
	if sk == nil {
		return nil, errors.New("baseline: nil identity key")
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	return &SSNParticipant{id: sk.ID, sk: sk, g: SSNBase, m: m, rnd: rnd}, nil
}

// ID returns the member identity.
func (p *SSNParticipant) ID() string { return p.id }

// Key returns the agreed key, nil before RunSSN.
func (p *SSNParticipant) Key() *big.Int { return p.key }

// Meter returns the member's meter.
func (p *SSNParticipant) Meter() *meter.Meter { return p.m }

// ssnExponentBits is the size of the ephemeral exponents (matching the
// 160-bit working exponents of the paper's setting).
const ssnExponentBits = 160

// RunSSN executes the reconstruction over the network.
func RunSSN(net netsim.Medium, parts []*SSNParticipant) error {
	if len(parts) < 2 {
		return errors.New("baseline: SSN needs at least 2 members")
	}
	roster := make([]string, len(parts))
	for i, p := range parts {
		roster[i] = p.id
	}
	n := parts[0].sk.Pub.N
	e := parts[0].sk.Pub.E
	bound := new(big.Int).Lsh(mathx.One, ssnExponentBits)

	// Round 1: z_i, w_i.
	for _, p := range parts {
		r, err := mathx.RandScalar(p.rnd, bound)
		if err != nil {
			return err
		}
		z := new(big.Int).Exp(p.g, r, n)
		p.m.Exp(1)
		h := hashx.ScalarDigest(hashx.TagTranscript, bound, []byte(p.id), z.Bytes())
		w := new(big.Int).Exp(z, h, n)
		w.Mul(w, p.sk.S)
		w.Mod(w, n)
		p.m.Exp(1)
		p.roster = roster
		p.r = r
		p.z = map[string]*big.Int{p.id: z}
		payload := wire.NewBuffer().PutString(p.id).PutBig(z).PutBig(w).Bytes()
		if err := net.Broadcast(p.id, MsgSSNRound1, payload); err != nil {
			return err
		}
	}
	// Ingest round 1: two exponentiations per peer for the implicit
	// authentication check.
	for _, p := range parts {
		msgs, err := net.RecvType(p.id, MsgSSNRound1)
		if err != nil {
			return err
		}
		for _, msg := range msgs {
			rd := wire.NewReader(msg.Payload)
			id := rd.String()
			z := rd.Big()
			w := rd.Big()
			if err := rd.Close(); err != nil {
				return fmt.Errorf("baseline: ssn round1 from %s: %w", msg.From, err)
			}
			if id != msg.From {
				return errors.New("baseline: ssn round1 identity mismatch")
			}
			h := hashx.ScalarDigest(hashx.TagTranscript, bound, []byte(id), z.Bytes())
			lhs := new(big.Int).Exp(w, e, n)
			p.m.Exp(1)
			he := new(big.Int).Mul(h, e)
			rhs := new(big.Int).Exp(z, he, n)
			p.m.Exp(1)
			rhs.Mul(rhs, hashx.IdentityDigest(id, n))
			rhs.Mod(rhs, n)
			if lhs.Cmp(rhs) != 0 {
				return fmt.Errorf("baseline: ssn implicit authentication of %s failed at %s", id, p.id)
			}
			p.z[id] = z
		}
		if len(p.z) != len(roster) {
			return fmt.Errorf("baseline: %s has %d of %d ssn round-1 values", p.id, len(p.z), len(roster))
		}
	}

	// Round 2: plain BD X values over Z_N^*.
	xsAll := make(map[string]map[string]*big.Int, len(parts))
	for _, p := range parts {
		idx := indexOf(roster, p.id)
		ringN := len(roster)
		x, err := bdkey.XValue(p.z[roster[(idx+1)%ringN]], p.z[roster[(idx-1+ringN)%ringN]], p.r, n)
		if err != nil {
			return err
		}
		p.m.Exp(1)
		xsAll[p.id] = map[string]*big.Int{p.id: x}
		payload := wire.NewBuffer().PutString(p.id).PutBig(x).Bytes()
		if err := net.Broadcast(p.id, MsgSSNRound2, payload); err != nil {
			return err
		}
	}
	for _, p := range parts {
		msgs, err := net.RecvType(p.id, MsgSSNRound2)
		if err != nil {
			return err
		}
		xs := xsAll[p.id]
		for _, msg := range msgs {
			rd := wire.NewReader(msg.Payload)
			id := rd.String()
			x := rd.Big()
			if err := rd.Close(); err != nil {
				return fmt.Errorf("baseline: ssn round2 from %s: %w", msg.From, err)
			}
			xs[id] = x
		}
		if len(xs) != len(roster) {
			return fmt.Errorf("baseline: %s has %d of %d ssn round-2 values", p.id, len(xs), len(roster))
		}
		ordered := make([]*big.Int, len(roster))
		for i, id := range roster {
			ordered[i] = xs[id]
		}
		if err := bdkey.CheckLemma1(ordered, n); err != nil {
			return err
		}
		idx := indexOf(roster, p.id)
		ringN := len(roster)
		key, err := bdkey.Key(idx, p.r, p.z[roster[(idx-1+ringN)%ringN]], ordered, n)
		if err != nil {
			return err
		}
		p.m.Exp(1)
		p.key = key
	}
	return nil
}
