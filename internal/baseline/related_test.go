package baseline

import (
	"fmt"
	"math/big"
	"testing"

	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/params"
)

func ringGroup(t testing.TB, n int) (*netsim.Network, []*RingParticipant) {
	t.Helper()
	net := netsim.New()
	var parts []*RingParticipant
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("R%02d", i+1)
		m := meter.New()
		p, err := NewRingParticipant(id, params.Default().Public(), m)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Register(id, m); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	return net, parts
}

// directProductKey computes g^{Π r_i} from the drawn exponents.
func directProductKey(parts []*RingParticipant) *big.Int {
	sg := params.Default().Schnorr
	prod := big.NewInt(1)
	for _, p := range parts {
		prod.Mul(prod, p.r)
		prod.Mod(prod, sg.Q)
	}
	return new(big.Int).Exp(sg.G, prod, sg.P)
}

func TestINGAgreementAndKey(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		net, parts := ringGroup(t, n)
		if err := RunING(net, parts); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := directProductKey(parts)
		for _, p := range parts {
			if p.Key().Cmp(want) != 0 {
				t.Fatalf("n=%d: %s key != g^(Πr)", n, p.ID())
			}
		}
	}
}

func TestINGComplexity(t *testing.T) {
	// The historical cost the paper's related work cites: n-1 rounds and
	// n exponentiations per member (1 initial + n-1 hops), n-1 unicasts.
	n := 6
	net, parts := ringGroup(t, n)
	if err := RunING(net, parts); err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		r := p.Meter().Report()
		if r.Exp != n {
			t.Errorf("%s: Exp = %d, want %d", p.ID(), r.Exp, n)
		}
		if r.MsgTx != n-1 || r.MsgRx != n-1 {
			t.Errorf("%s: Tx/Rx = %d/%d, want %d/%d", p.ID(), r.MsgTx, r.MsgRx, n-1, n-1)
		}
	}
}

func TestGDH2AgreementAndKey(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		net, parts := ringGroup(t, n)
		if err := RunGDH2(net, parts); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := directProductKey(parts)
		for _, p := range parts {
			if p.Key().Cmp(want) != 0 {
				t.Fatalf("n=%d: %s key != g^(Πr)", n, p.ID())
			}
		}
	}
}

func TestGDH2ComplexityAsymmetry(t *testing.T) {
	// GDH.2's signature trait: member i performs i+1 upflow
	// exponentiations, the last member n of them — linear and unbalanced,
	// unlike BD's constant 3.
	n := 6
	net, parts := ringGroup(t, n)
	if err := RunGDH2(net, parts); err != nil {
		t.Fatal(err)
	}
	first := parts[0].Meter().Report().Exp
	last := parts[n-1].Meter().Report().Exp
	if first >= last {
		t.Fatalf("GDH.2 should be unbalanced: first=%d last=%d", first, last)
	}
	if last != n {
		t.Fatalf("last member Exp = %d, want %d", last, n)
	}
}

func TestRelatedValidation(t *testing.T) {
	net, parts := ringGroup(t, 2)
	if err := RunING(net, parts[:1]); err == nil {
		t.Fatal("singleton ING accepted")
	}
	if err := RunGDH2(net, parts[:1]); err == nil {
		t.Fatal("singleton GDH.2 accepted")
	}
	if _, err := NewRingParticipant("", params.Default().Public(), nil); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestRelatedKeysFresh(t *testing.T) {
	net, parts := ringGroup(t, 3)
	if err := RunING(net, parts); err != nil {
		t.Fatal(err)
	}
	k1 := parts[0].Key()
	net2, parts2 := ringGroup(t, 3)
	if err := RunING(net2, parts2); err != nil {
		t.Fatal(err)
	}
	if parts2[0].Key().Cmp(k1) == 0 {
		t.Fatal("two ING runs produced the same key")
	}
}

func BenchmarkING8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, parts := ringGroup(b, 8)
		if err := RunING(net, parts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGDH2_8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, parts := ringGroup(b, 8)
		if err := RunGDH2(net, parts); err != nil {
			b.Fatal(err)
		}
	}
}
