package baseline

import (
	"crypto/rand"
	"fmt"
	"sync"
	"testing"

	"idgka/internal/ec"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/pairing"
	"idgka/internal/params"
	"idgka/internal/pki"
	"idgka/internal/sigs/dsa"
	"idgka/internal/sigs/gq"
	"idgka/internal/sigs/sok"
)

var (
	envOnce sync.Once
	envPKG  *pki.PKG
	envSOK  sok.SystemParams
	envCAE  *pki.CA
	envCAD  *pki.CA
)

func testEnv(t testing.TB) (*pki.PKG, sok.SystemParams, *pki.CA, *pki.CA) {
	t.Helper()
	envOnce.Do(func() {
		p, err := pki.NewPKG(rand.Reader, params.Default())
		if err != nil {
			panic(err)
		}
		envPKG = p
		envSOK = p.SOKParams()
		envCAE, err = pki.NewECDSACA(rand.Reader, "ca-ec", ec.Secp160r1())
		if err != nil {
			panic(err)
		}
		envCAD, err = pki.NewDSACA(rand.Reader, "ca-dsa", params.Default().Schnorr)
		if err != nil {
			panic(err)
		}
	})
	return envPKG, envSOK, envCAE, envCAD
}

func buildECDSAGroup(t testing.TB, n int) (*netsim.Network, []*Participant) {
	t.Helper()
	_, _, ca, _ := testEnv(t)
	net := netsim.New()
	var parts []*Participant
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("E%02d", i+1)
		auth, err := NewECDSAIdentity(rand.Reader, id, ec.Secp160r1(), ca)
		if err != nil {
			t.Fatal(err)
		}
		m := meter.New()
		p, err := NewParticipant(id, params.Default().Public(), auth, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Register(id, m); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	return net, parts
}

func assertBDAgreement(t *testing.T, parts []*Participant) {
	t.Helper()
	key := parts[0].Key()
	if key == nil {
		t.Fatal("no key")
	}
	for _, p := range parts[1:] {
		if p.Key() == nil || p.Key().Cmp(key) != 0 {
			t.Fatalf("%s disagrees on key", p.ID())
		}
	}
}

func TestBDWithECDSA(t *testing.T) {
	net, parts := buildECDSAGroup(t, 5)
	if err := RunBD(net, parts); err != nil {
		t.Fatalf("RunBD: %v", err)
	}
	assertBDAgreement(t, parts)
}

// TestBDECDSACountersMatchTable1 checks the BD-with-ECDSA column of
// Table 1: 3 exps, 2 tx, 2(n-1) rx, 1 cert tx, n-1 cert rx/ver, 1 sign
// gen, n-1 sign ver per user.
func TestBDECDSACountersMatchTable1(t *testing.T) {
	n := 5
	net, parts := buildECDSAGroup(t, n)
	if err := RunBD(net, parts); err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		r := p.Meter().Report()
		if r.Exp != 3 {
			t.Errorf("%s: Exp = %d, want 3", p.ID(), r.Exp)
		}
		if r.MsgTx != 2 || r.MsgRx != 2*(n-1) {
			t.Errorf("%s: Tx/Rx = %d/%d, want 2/%d", p.ID(), r.MsgTx, r.MsgRx, 2*(n-1))
		}
		if r.CertTx != 1 || r.CertRx != n-1 || r.CertVer != n-1 {
			t.Errorf("%s: certs = %d/%d/%d, want 1/%d/%d", p.ID(), r.CertTx, r.CertRx, r.CertVer, n-1, n-1)
		}
		if r.SignGen[meter.SchemeECDSA] != 1 || r.SignVer[meter.SchemeECDSA] != n-1 {
			t.Errorf("%s: sign = %d/%d, want 1/%d", p.ID(), r.SignGen[meter.SchemeECDSA], r.SignVer[meter.SchemeECDSA], n-1)
		}
		if r.MapToPoint != 0 {
			t.Errorf("%s: MapToPoint = %d, want 0", p.ID(), r.MapToPoint)
		}
	}
}

func TestBDWithDSA(t *testing.T) {
	_, _, _, ca := testEnv(t)
	net := netsim.New()
	var parts []*Participant
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("D%02d", i+1)
		kp, err := dsa.GenerateKey(rand.Reader, params.Default().Schnorr)
		if err != nil {
			t.Fatal(err)
		}
		auth, err := NewDSAIdentity(rand.Reader, id, ca, kp)
		if err != nil {
			t.Fatal(err)
		}
		m := meter.New()
		p, err := NewParticipant(id, params.Default().Public(), auth, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Register(id, m); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	if err := RunBD(net, parts); err != nil {
		t.Fatalf("RunBD DSA: %v", err)
	}
	assertBDAgreement(t, parts)
	r := parts[0].Meter().Report()
	if r.SignVer[meter.SchemeDSA] != 3 {
		t.Fatalf("SignVer = %d, want 3", r.SignVer[meter.SchemeDSA])
	}
}

func TestBDWithSOK(t *testing.T) {
	pkgI, sokParams, _, _ := testEnv(t)
	net := netsim.New()
	var parts []*Participant
	n := 3 // SOK verifies are pairing-heavy; keep the group small
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("S%02d", i+1)
		sk, err := pkgI.ExtractSOK(id)
		if err != nil {
			t.Fatal(err)
		}
		auth := NewSOKAuth(sokParams, sk)
		m := meter.New()
		p, err := NewParticipant(id, params.Default().Public(), auth, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Register(id, m); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	if err := RunBD(net, parts); err != nil {
		t.Fatalf("RunBD SOK: %v", err)
	}
	assertBDAgreement(t, parts)
	r := parts[0].Meter().Report()
	if r.SignVer[meter.SchemeSOK] != n-1 || r.MapToPoint != n-1 {
		t.Fatalf("SOK counters %d/%d, want %d/%d", r.SignVer[meter.SchemeSOK], r.MapToPoint, n-1, n-1)
	}
	if r.CertTx != 0 || r.CertRx != 0 {
		t.Fatal("ID-based SOK must not move certificates")
	}
}

func TestBDRejectsForgedSignature(t *testing.T) {
	net, parts := buildECDSAGroup(t, 3)
	net.SetFaults(netsim.FaultPlan{CorruptFirst: MsgBDRound2})
	if err := RunBD(net, parts); err == nil {
		t.Fatal("corrupted round-2 signature accepted")
	}
}

func TestBDRejectsForeignCertificate(t *testing.T) {
	// A participant whose certificate comes from an untrusted CA must be
	// rejected during round-1 ingestion.
	_, _, ca, _ := testEnv(t)
	rogue, err := pki.NewECDSACA(rand.Reader, "rogue", ec.Secp160r1())
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New()
	var parts []*Participant
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("F%02d", i+1)
		issuer := ca
		if i == 2 {
			issuer = rogue
		}
		auth, err := NewECDSAIdentity(rand.Reader, id, ec.Secp160r1(), issuer)
		if err != nil {
			t.Fatal(err)
		}
		// All participants trust only the legitimate CA.
		auth.anchor = ca.Anchor()
		m := meter.New()
		p, _ := NewParticipant(id, params.Default().Public(), auth, m, nil)
		_ = net.Register(id, m)
		parts = append(parts, p)
	}
	if err := RunBD(net, parts); err == nil {
		t.Fatal("rogue certificate accepted")
	}
}

func TestBDRekey(t *testing.T) {
	net, parts := buildECDSAGroup(t, 4)
	if err := RunBD(net, parts); err != nil {
		t.Fatal(err)
	}
	k1 := parts[0].Key()
	// Leave: drop one member, full re-run (the paper's baseline strategy).
	leaverID := parts[2].ID()
	net.Unregister(leaverID)
	remaining := append(append([]*Participant{}, parts[:2]...), parts[3:]...)
	if err := RunBDRekey(net, remaining); err != nil {
		t.Fatalf("rekey: %v", err)
	}
	assertBDAgreement(t, remaining)
	if remaining[0].Key().Cmp(k1) == 0 {
		t.Fatal("rekey did not change the key")
	}
}

func TestSSNAgreement(t *testing.T) {
	set := params.Default()
	net := netsim.New()
	var parts []*SSNParticipant
	n := 5
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("N%02d", i+1)
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			t.Fatal(err)
		}
		m := meter.New()
		p, err := NewSSNParticipant(sk, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Register(id, m); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	if err := RunSSN(net, parts); err != nil {
		t.Fatalf("RunSSN: %v", err)
	}
	key := parts[0].Key()
	for _, p := range parts[1:] {
		if p.Key().Cmp(key) != 0 {
			t.Fatalf("%s disagrees", p.ID())
		}
	}
	// Exponentiation count: 2n+2 per user (reconstruction; paper charges
	// 2n+4 — see DESIGN.md §3).
	for _, p := range parts {
		r := p.Meter().Report()
		if r.Exp != 2*n+2 {
			t.Errorf("%s: Exp = %d, want %d", p.ID(), r.Exp, 2*n+2)
		}
		if r.TotalSignGen() != 0 || r.TotalSignVer() != 0 {
			t.Errorf("%s: SSN must not use signatures", p.ID())
		}
		if r.MsgTx != 2 || r.MsgRx != 2*(n-1) {
			t.Errorf("%s: Tx/Rx = %d/%d", p.ID(), r.MsgTx, r.MsgRx)
		}
	}
}

func TestSSNRejectsImpersonation(t *testing.T) {
	set := params.Default()
	net := netsim.New()
	var parts []*SSNParticipant
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("M%02d", i+1)
		key := id
		if i == 2 {
			key = "mallory" // holds mallory's key but claims M03
		}
		sk, err := gq.Extract(set.RSA, key)
		if err != nil {
			t.Fatal(err)
		}
		sk.ID = id // forge the claimed identity
		m := meter.New()
		p, _ := NewSSNParticipant(sk, m, nil)
		_ = net.Register(id, m)
		parts = append(parts, p)
	}
	if err := RunSSN(net, parts); err == nil {
		t.Fatal("impersonation with mismatched identity key accepted")
	}
}

func TestSSNNeedsTwo(t *testing.T) {
	if err := RunSSN(netsim.New(), nil); err == nil {
		t.Fatal("empty SSN run accepted")
	}
}

var _ Authenticator = (*SOKAuth)(nil)
var _ Authenticator = (*ECDSAAuth)(nil)
var _ Authenticator = (*DSAAuth)(nil)
var _ = pairing.Infinity // keep the import referenced via interface checks
