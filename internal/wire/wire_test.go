package wire

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	v := new(big.Int).Lsh(big.NewInt(0x1234), 300)
	buf := NewBuffer().
		PutString("U1").
		PutBig(v).
		PutBytes([]byte{1, 2, 3}).
		PutUint(42).
		Bytes()
	r := NewReader(buf)
	if got := r.String(); got != "U1" {
		t.Fatalf("string = %q", got)
	}
	if got := r.Big(); got.Cmp(v) != 0 {
		t.Fatalf("big mismatch")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes mismatch")
	}
	if got := r.Uint(); got != 42 {
		t.Fatalf("uint = %d", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestNilAndZeroBig(t *testing.T) {
	buf := NewBuffer().PutBig(nil).PutBig(big.NewInt(0)).Bytes()
	r := NewReader(buf)
	if r.Big().Sign() != 0 || r.Big().Sign() != 0 {
		t.Fatal("nil/zero big should decode as 0")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationDetected(t *testing.T) {
	buf := NewBuffer().PutString("hello").PutUint(7).Bytes()
	for cut := 0; cut < len(buf); cut++ {
		r := NewReader(buf[:cut])
		_ = r.String()
		r.Uint()
		if r.Close() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	buf := append(NewBuffer().PutString("x").Bytes(), 0xff)
	r := NewReader(buf)
	_ = r.String()
	if r.Close() == nil {
		t.Fatal("trailing bytes not detected")
	}
}

func TestErrorSticky(t *testing.T) {
	r := NewReader([]byte{0, 0})
	_ = r.Bytes() // fails: truncated length
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	if r.Big() != nil {
		t.Fatal("reads after error should return zero values")
	}
	if got := r.Uint(); got != 0 {
		t.Fatal("uint after error should be 0")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(s string, b []byte, u uint64, vbytes []byte) bool {
		v := new(big.Int).SetBytes(vbytes)
		buf := NewBuffer().PutString(s).PutBytes(b).PutUint(u).PutBig(v).Bytes()
		r := NewReader(buf)
		gs := r.String()
		gb := r.Bytes()
		gu := r.Uint()
		gv := r.Big()
		if r.Close() != nil {
			return false
		}
		return gs == s && bytes.Equal(gb, b) && gu == u && gv.Cmp(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLen(t *testing.T) {
	b := NewBuffer()
	if b.Len() != 0 {
		t.Fatal("fresh buffer not empty")
	}
	b.PutString("ab")
	if b.Len() != 6 { // 4-byte prefix + 2
		t.Fatalf("Len = %d, want 6", b.Len())
	}
}
