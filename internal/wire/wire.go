// Package wire implements the compact deterministic binary encoding used
// for every protocol message: length-prefixed byte strings, big integers
// and unsigned varints. Byte counts on the simulated radio are derived from
// these encodings, so the format is intentionally minimal — a 4-byte length
// prefix per field, no schema overhead.
package wire

import (
	"encoding/binary"
	"errors"
	"math/big"
)

// Buffer accumulates an encoded message.
type Buffer struct {
	b []byte
}

// NewBuffer returns an empty encoder.
func NewBuffer() *Buffer { return &Buffer{} }

// Bytes returns the encoded message.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the current encoded size.
func (w *Buffer) Len() int { return len(w.b) }

// PutBytes appends a length-prefixed byte string.
func (w *Buffer) PutBytes(p []byte) *Buffer {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(p)))
	w.b = append(w.b, l[:]...)
	w.b = append(w.b, p...)
	return w
}

// PutString appends a length-prefixed string.
func (w *Buffer) PutString(s string) *Buffer { return w.PutBytes([]byte(s)) }

// PutBig appends a length-prefixed big integer (minimal big-endian
// magnitude; nil and zero encode identically as empty).
func (w *Buffer) PutBig(v *big.Int) *Buffer {
	if v == nil {
		return w.PutBytes(nil)
	}
	return w.PutBytes(v.Bytes())
}

// PutUint appends a fixed 8-byte unsigned integer.
func (w *Buffer) PutUint(v uint64) *Buffer {
	var l [8]byte
	binary.BigEndian.PutUint64(l[:], v)
	w.b = append(w.b, l[:]...)
	return w
}

// Reader decodes a message produced by Buffer.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps an encoded message.
func NewReader(p []byte) *Reader { return &Reader{b: p} }

// Err returns the first decoding error encountered.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = errors.New("wire: truncated message")
	}
}

// Bytes reads a length-prefixed byte string.
func (r *Reader) Bytes() []byte {
	if r.err != nil {
		return nil
	}
	if r.off+4 > len(r.b) {
		r.fail()
		return nil
	}
	n := int(binary.BigEndian.Uint32(r.b[r.off:]))
	r.off += 4
	if n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Big reads a length-prefixed big integer.
func (r *Reader) Big() *big.Int {
	p := r.Bytes()
	if r.err != nil {
		return nil
	}
	return new(big.Int).SetBytes(p)
}

// Uint reads a fixed 8-byte unsigned integer.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// Close verifies the message was fully and cleanly consumed.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return errors.New("wire: trailing bytes")
	}
	return nil
}
