package params

import (
	"math/big"
	"sync"

	"idgka/internal/mathx"
)

var (
	defaultOnce sync.Once
	defaultSet  *Set
)

// Default returns the embedded production-size parameter set (1024-bit
// Schnorr p / 160-bit q, 1024-bit GQ modulus, 512-bit pairing field). The
// set includes PKG master secrets so tests and examples can play the PKG
// role deterministically; real deployments must call Generate.
func Default() *Set {
	defaultOnce.Do(func() {
		defaultSet = &Set{
			Schnorr: &mathx.SchnorrGroup{
				P: mustHex(defSchnorrP),
				Q: mustHex(defSchnorrQ),
				G: mustHex(defSchnorrG),
			},
			RSA: &mathx.RSAParams{
				N: mustHex(defRSAN),
				E: mustHex(defRSAE),
				P: mustHex(defRSAP),
				Q: mustHex(defRSAQ),
				D: mustHex(defRSAD),
			},
			Pairing: &PairingParams{
				P:  mustHex(defPairP),
				Q:  mustHex(defPairQ),
				C:  mustHex(defPairC),
				Gx: mustHex(defPairGx),
				Gy: mustHex(defPairGy),
			},
		}
	})
	return defaultSet
}

func mustHex(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("params: corrupt embedded constant")
	}
	return v
}
