package params

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	set := Default()
	if err := set.Validate(); err != nil {
		t.Fatalf("embedded default set invalid: %v", err)
	}
	if !set.HasMasterKey() {
		t.Fatal("default set should carry PKG master key")
	}
	if set.Schnorr.P.BitLen() != 1024 || set.Schnorr.Q.BitLen() != 160 {
		t.Fatalf("default Schnorr sizes %d/%d, want 1024/160", set.Schnorr.P.BitLen(), set.Schnorr.Q.BitLen())
	}
	if set.Pairing.P.BitLen() != 512 || set.Pairing.Q.BitLen() != 160 {
		t.Fatalf("default pairing sizes %d/%d, want 512/160", set.Pairing.P.BitLen(), set.Pairing.Q.BitLen())
	}
	if set.RSA.N.BitLen() < 1023 {
		t.Fatalf("default RSA modulus %d bits, want ~1024", set.RSA.N.BitLen())
	}
}

func TestDefaultIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return the cached set")
	}
}

func TestGenerateTestProfile(t *testing.T) {
	set, err := Generate(rand.Reader, SizeTest)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGeneratePairingSmall(t *testing.T) {
	pp, err := GeneratePairing(rand.Reader, 128, 64)
	if err != nil {
		t.Fatalf("GeneratePairing: %v", err)
	}
	if err := pp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Generator must have order q: q*G = infinity.
	if _, _, inf := ssScalarMul(pp.Gx, pp.Gy, pp.Q, pp.P); !inf {
		t.Fatal("generator order is not q")
	}
}

func TestPublicStripsMaster(t *testing.T) {
	pub := Default().Public()
	if pub.HasMasterKey() {
		t.Fatal("Public() must strip the master key")
	}
	if err := pub.RSA.Validate(); err != nil {
		t.Fatalf("public RSA params invalid: %v", err)
	}
}

func TestPairingValidateRejectsCorrupt(t *testing.T) {
	good := Default().Pairing
	bad := *good
	bad.Gx = new(big.Int).Add(good.Gx, big.NewInt(1))
	if err := bad.Validate(); err == nil {
		t.Fatal("off-curve generator accepted")
	}
	bad2 := *good
	bad2.C = new(big.Int).Add(good.C, big.NewInt(1))
	if err := bad2.Validate(); err == nil {
		t.Fatal("wrong cofactor accepted")
	}
}

func TestSSAddIdentities(t *testing.T) {
	pp := Default().Pairing
	// inf + P = P
	x, y, inf := ssAdd(nil, nil, true, pp.Gx, pp.Gy, false, pp.P)
	if inf || x.Cmp(pp.Gx) != 0 || y.Cmp(pp.Gy) != 0 {
		t.Fatal("inf + P != P")
	}
	// P + (-P) = inf
	negY := new(big.Int).Sub(pp.P, pp.Gy)
	if _, _, inf := ssAdd(pp.Gx, pp.Gy, false, pp.Gx, negY, false, pp.P); !inf {
		t.Fatal("P + (-P) != inf")
	}
}
