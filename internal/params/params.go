// Package params defines the system parameter sets the protocols run on:
// the Schnorr group for Burmester-Desmedt key agreement, the GQ/RSA modulus
// for ID-based signatures, and the pairing-friendly supersingular curve for
// the SOK baseline.
//
// The PKG (Private Key Generator) of the paper's Setup phase owns a full
// Set; protocol participants only ever see Set.Public().
//
// Two ways to obtain parameters:
//
//   - Generate(rand.Reader, SizeProduction) — fresh parameters at the
//     paper's sizes (1024-bit p, 160-bit q, 1024-bit RSA modulus, 512-bit
//     pairing field);
//   - Default() — a pre-generated production-size set embedded in the
//     binary, so tests, examples and benchmarks are deterministic and fast.
package params

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/mathx"
)

// Sizes bundles the bit lengths of every parameter in a Set.
type Sizes struct {
	SchnorrP int // Burmester-Desmedt field prime (paper: 1024)
	SchnorrQ int // subgroup order (paper: 160)
	RSAN     int // GQ modulus n = p'q' (paper: 1024, from two 512-bit primes)
	PairingP int // supersingular field prime for SOK (era-typical: 512)
	PairingQ int // pairing group order (160)
}

// SizeProduction mirrors the paper's Setup: 512-bit p', q' (1024-bit n),
// 1024-bit p, 160-bit q; SOK on a 512-bit supersingular field.
var SizeProduction = Sizes{SchnorrP: 1024, SchnorrQ: 160, RSAN: 1024, PairingP: 512, PairingQ: 160}

// SizeTest is a reduced profile for fast randomized tests that must
// exercise generation itself rather than protocol behaviour.
var SizeTest = Sizes{SchnorrP: 256, SchnorrQ: 96, RSAN: 256, PairingP: 192, PairingQ: 96}

// PairingParams describes the supersingular curve y^2 = x^3 + x over F_p
// with p ≡ 3 (mod 4) and a subgroup of prime order q | p+1. The distortion
// map (x, y) -> (-x, iy) with i^2 = -1 turns the Tate pairing into a
// symmetric pairing on the order-q subgroup.
type PairingParams struct {
	P *big.Int // field prime, p ≡ 3 (mod 4)
	Q *big.Int // group order, q | p+1
	C *big.Int // cofactor, p + 1 = c*q
	// Gx, Gy: a generator of the order-q subgroup.
	Gx *big.Int
	Gy *big.Int
}

// Validate checks the structural invariants of the pairing parameters.
func (pp *PairingParams) Validate() error {
	if pp == nil || pp.P == nil || pp.Q == nil || pp.C == nil || pp.Gx == nil || pp.Gy == nil {
		return errors.New("params: incomplete pairing params")
	}
	if !mathx.IsProbablePrime(pp.P) {
		return errors.New("params: pairing p not prime")
	}
	if !mathx.IsProbablePrime(pp.Q) {
		return errors.New("params: pairing q not prime")
	}
	if new(big.Int).And(pp.P, mathx.Three).Cmp(mathx.Three) != 0 {
		return errors.New("params: pairing p must be ≡ 3 (mod 4)")
	}
	lhs := new(big.Int).Add(pp.P, mathx.One)
	if new(big.Int).Mul(pp.C, pp.Q).Cmp(lhs) != 0 {
		return errors.New("params: c*q != p+1")
	}
	// Generator on curve: y^2 = x^3 + x.
	y2 := new(big.Int).Mul(pp.Gy, pp.Gy)
	y2.Mod(y2, pp.P)
	x3 := new(big.Int).Exp(pp.Gx, mathx.Three, pp.P)
	x3.Add(x3, pp.Gx)
	x3.Mod(x3, pp.P)
	if y2.Cmp(x3) != 0 {
		return errors.New("params: pairing generator not on curve")
	}
	return nil
}

// Set is the complete system parameter set produced by the PKG Setup.
type Set struct {
	Schnorr *mathx.SchnorrGroup // (p, q, g) for the GKA exponentiations
	RSA     *mathx.RSAParams    // (n, e [, p', q', d]) for GQ
	Pairing *PairingParams      // supersingular curve for the SOK baseline
}

// Generate runs the Setup of Section 4 at the given sizes, producing a full
// parameter set including PKG master keys.
func Generate(r io.Reader, s Sizes) (*Set, error) {
	sg, err := mathx.GenerateSchnorrGroup(r, s.SchnorrP, s.SchnorrQ)
	if err != nil {
		return nil, fmt.Errorf("params: Schnorr group: %w", err)
	}
	rsa, err := mathx.GenerateRSAParams(r, s.RSAN)
	if err != nil {
		return nil, fmt.Errorf("params: RSA modulus: %w", err)
	}
	pp, err := GeneratePairing(r, s.PairingP, s.PairingQ)
	if err != nil {
		return nil, fmt.Errorf("params: pairing curve: %w", err)
	}
	return &Set{Schnorr: sg, RSA: rsa, Pairing: pp}, nil
}

// GeneratePairing searches for a supersingular parameter set: a qBits-bit
// prime q and pBits-bit prime p = c*q - 1 with p ≡ 3 (mod 4), plus a
// generator of the order-q subgroup of y^2 = x^3 + x.
func GeneratePairing(r io.Reader, pBits, qBits int) (*PairingParams, error) {
	if qBits >= pBits {
		return nil, errors.New("params: pairing needs qBits < pBits")
	}
	q, err := mathx.RandPrime(r, qBits)
	if err != nil {
		return nil, err
	}
	cBits := pBits - qBits
	p := new(big.Int)
	c := new(big.Int)
	for attempt := 0; ; attempt++ {
		if attempt > 64*pBits {
			return nil, errors.New("params: pairing prime search exhausted")
		}
		cr, err := mathx.RandInt(r, new(big.Int).Lsh(mathx.One, uint(cBits)))
		if err != nil {
			return nil, err
		}
		cr.SetBit(cr, cBits-1, 1)
		cr.SetBit(cr, 0, 0) // even cofactor keeps p = c*q - 1 odd
		p.Mul(cr, q)
		p.Sub(p, mathx.One)
		if p.BitLen() != pBits {
			continue
		}
		if new(big.Int).And(p, mathx.Three).Cmp(mathx.Three) != 0 {
			continue
		}
		if mathx.IsProbablePrime(p) {
			c.Set(cr)
			break
		}
	}
	gx, gy, err := pairingGenerator(r, p, q, c)
	if err != nil {
		return nil, err
	}
	return &PairingParams{P: p, Q: q, C: c, Gx: gx, Gy: gy}, nil
}

// pairingGenerator picks a random curve point and multiplies by the
// cofactor to land in the order-q subgroup. Scalar multiplication here is a
// local affine double-and-add — the full group logic lives in
// internal/pairing; params only needs enough to pin down a generator.
func pairingGenerator(r io.Reader, p, q, c *big.Int) (gx, gy *big.Int, err error) {
	for i := 0; i < 1000; i++ {
		x, err := mathx.RandInt(r, p)
		if err != nil {
			return nil, nil, err
		}
		rhs := new(big.Int).Exp(x, mathx.Three, p)
		rhs.Add(rhs, x)
		rhs.Mod(rhs, p)
		if rhs.Sign() == 0 {
			continue
		}
		if mathx.Legendre(rhs, p) != 1 {
			continue
		}
		y, err := mathx.SqrtMod(rhs, p)
		if err != nil {
			continue
		}
		gx, gy, inf := ssScalarMul(x, y, c, p)
		if inf {
			continue
		}
		// Confirm order exactly q: q*G = infinity and G != infinity.
		if _, _, inf := ssScalarMul(gx, gy, q, p); !inf {
			continue
		}
		return gx, gy, nil
	}
	return nil, nil, errors.New("params: no pairing generator found")
}

// ssScalarMul is a minimal affine double-and-add on y^2 = x^3 + x used only
// during parameter generation. The boolean result reports the point at
// infinity.
func ssScalarMul(x, y, k, p *big.Int) (*big.Int, *big.Int, bool) {
	// Accumulator starts at infinity.
	var ax, ay *big.Int
	accInf := true
	bx, by := new(big.Int).Set(x), new(big.Int).Set(y)
	baseInf := false
	for i := 0; i < k.BitLen(); i++ {
		if k.Bit(i) == 1 {
			ax, ay, accInf = ssAdd(ax, ay, accInf, bx, by, baseInf, p)
		}
		bx, by, baseInf = ssAdd(bx, by, baseInf, bx, by, baseInf, p)
	}
	return ax, ay, accInf
}

// ssAdd adds two affine points on y^2 = x^3 + x (a = 1, b = 0).
func ssAdd(x1, y1 *big.Int, inf1 bool, x2, y2 *big.Int, inf2 bool, p *big.Int) (*big.Int, *big.Int, bool) {
	if inf1 {
		if inf2 {
			return nil, nil, true
		}
		return new(big.Int).Set(x2), new(big.Int).Set(y2), false
	}
	if inf2 {
		return new(big.Int).Set(x1), new(big.Int).Set(y1), false
	}
	var lam *big.Int
	if x1.Cmp(x2) == 0 {
		sum := new(big.Int).Add(y1, y2)
		sum.Mod(sum, p)
		if sum.Sign() == 0 {
			return nil, nil, true // P + (-P)
		}
		// λ = (3x² + 1) / 2y
		num := new(big.Int).Mul(x1, x1)
		num.Mul(num, mathx.Three)
		num.Add(num, mathx.One)
		den := new(big.Int).Lsh(y1, 1)
		deninv := new(big.Int).ModInverse(den.Mod(den, p), p)
		lam = num.Mul(num, deninv)
	} else {
		num := new(big.Int).Sub(y2, y1)
		den := new(big.Int).Sub(x2, x1)
		deninv := new(big.Int).ModInverse(den.Mod(den, p), p)
		lam = num.Mul(num, deninv)
	}
	lam.Mod(lam, p)
	x3 := new(big.Int).Mul(lam, lam)
	x3.Sub(x3, x1)
	x3.Sub(x3, x2)
	x3.Mod(x3, p)
	y3 := new(big.Int).Sub(x1, x3)
	y3.Mul(y3, lam)
	y3.Sub(y3, y1)
	y3.Mod(y3, p)
	return x3, y3, false
}

// Public strips the PKG master secrets, leaving what participants receive.
func (s *Set) Public() *Set {
	return &Set{Schnorr: s.Schnorr, RSA: s.RSA.Public(), Pairing: s.Pairing}
}

// Validate checks every component.
func (s *Set) Validate() error {
	if s == nil {
		return errors.New("params: nil set")
	}
	if err := s.Schnorr.Validate(); err != nil {
		return err
	}
	if err := s.RSA.Validate(); err != nil {
		return err
	}
	if s.Pairing != nil {
		if err := s.Pairing.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// HasMasterKey reports whether the set carries the PKG extraction exponent.
func (s *Set) HasMasterKey() bool {
	return s != nil && s.RSA != nil && s.RSA.D != nil
}
