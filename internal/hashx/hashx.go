// Package hashx centralises every hash use in the repository: the paper's
// H : {0,1}* → {0,1}^l (l = 160) challenge hash, identity hashing into
// Z_n^*, domain separation between protocols, and a small KDF for the
// symmetric layer.
//
// The paper is hash-function agnostic ("a one way hash function H"); we
// instantiate with SHA-256 truncated to l bits, which preserves the 160-bit
// challenge length the complexity analysis assumes while avoiding SHA-1.
package hashx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"math/big"
)

// ChallengeBits is the paper's security parameter l: the bit length of the
// challenge hash used by GQ signatures and the batch verification equation.
const ChallengeBits = 160

// ChallengeBytes is ChallengeBits expressed in bytes.
const ChallengeBytes = ChallengeBits / 8

// Domain tags keep the different uses of H computationally independent.
// Every hash invocation in the repository goes through one of these.
const (
	TagChallenge   = "idgka/v1/gq-challenge" // GQ signature + batch challenge
	TagIdentity    = "idgka/v1/identity"     // H(ID) into Z_n
	TagKeyConfirm  = "idgka/v1/key-confirm"  // group-key confirmation digest
	TagSymKey      = "idgka/v1/sym-key"      // group key -> AEAD key derivation
	TagMapToPoint  = "idgka/v1/map-to-point" // pairing hash-to-group
	TagDSADigest   = "idgka/v1/dsa-digest"   // DSA message digest
	TagECDSADigest = "idgka/v1/ecdsa-digest" // ECDSA message digest
	TagSOKDigest   = "idgka/v1/sok-digest"   // SOK message digest
	TagTranscript  = "idgka/v1/transcript"   // protocol transcript binding
)

// Sum computes the domain-separated digest of the concatenation of the
// chunks and returns the full 32-byte SHA-256 output.
func Sum(tag string, chunks ...[]byte) []byte {
	h := sha256.New()
	h.Write([]byte(tag))
	h.Write([]byte{0})
	var lenBuf [8]byte
	for _, c := range chunks {
		// Length-prefix every chunk so concatenation is unambiguous.
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(c)))
		h.Write(lenBuf[:])
		h.Write(c)
	}
	return h.Sum(nil)
}

// Challenge computes the paper's l-bit hash H(...) as an integer in
// [0, 2^l). Used for GQ challenges c = H(τ^e, M) and the batch challenge
// c = H(T, Z).
func Challenge(tag string, chunks ...[]byte) *big.Int {
	d := Sum(tag, chunks...)
	return new(big.Int).SetBytes(d[:ChallengeBytes])
}

// IdentityDigest computes H(ID) reduced into [1, n-1], the per-identity
// public value of the GQ scheme. The reduction excludes 0 to keep the value
// a unit with overwhelming probability for RSA moduli.
func IdentityDigest(id string, n *big.Int) *big.Int {
	// Expand to enough bytes to make the mod-n bias negligible: two
	// counter-indexed blocks give 512 bits for a 1024-bit modulus; for
	// larger moduli add blocks.
	need := n.BitLen()/8 + 16
	var buf []byte
	for ctr := uint32(0); len(buf) < need; ctr++ {
		var c [4]byte
		binary.BigEndian.PutUint32(c[:], ctr)
		buf = append(buf, Sum(TagIdentity, []byte(id), c[:])...)
	}
	v := new(big.Int).SetBytes(buf)
	v.Mod(v, n)
	if v.Sign() == 0 {
		v.SetInt64(1)
	}
	return v
}

// ScalarDigest hashes the chunks into [0, q) for a prime q — used by DSA
// and ECDSA digests as well as hash-to-scalar needs of the pairing layer.
func ScalarDigest(tag string, q *big.Int, chunks ...[]byte) *big.Int {
	need := q.BitLen()/8 + 16
	var buf []byte
	for ctr := uint32(0); len(buf) < need; ctr++ {
		var c [4]byte
		binary.BigEndian.PutUint32(c[:], ctr)
		buf = append(buf, Sum(tag, append(chunks, c[:])...)...)
	}
	v := new(big.Int).SetBytes(buf)
	return v.Mod(v, q)
}

// KDF derives length bytes of key material from the secret and context via
// HMAC-SHA256 in counter mode (NIST SP 800-108 style).
func KDF(secret []byte, context string, length int) []byte {
	out := make([]byte, 0, length)
	var ctr [4]byte
	for i := uint32(1); len(out) < length; i++ {
		binary.BigEndian.PutUint32(ctr[:], i)
		mac := hmac.New(sha256.New, secret)
		mac.Write(ctr[:])
		mac.Write([]byte(context))
		out = mac.Sum(out)
	}
	return out[:length]
}

// BigBytes serialises v as a minimal big-endian byte slice; nil maps to an
// empty slice so it can be fed to Sum safely.
func BigBytes(v *big.Int) []byte {
	if v == nil {
		return nil
	}
	return v.Bytes()
}
