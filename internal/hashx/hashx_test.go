package hashx

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

func TestSumDomainSeparation(t *testing.T) {
	a := Sum(TagChallenge, []byte("msg"))
	b := Sum(TagIdentity, []byte("msg"))
	if bytes.Equal(a, b) {
		t.Fatal("different tags must produce different digests")
	}
}

func TestSumLengthPrefixingPreventsAmbiguity(t *testing.T) {
	// ("ab", "c") and ("a", "bc") must hash differently.
	x := Sum(TagChallenge, []byte("ab"), []byte("c"))
	y := Sum(TagChallenge, []byte("a"), []byte("bc"))
	if bytes.Equal(x, y) {
		t.Fatal("chunk boundaries are ambiguous")
	}
}

func TestChallengeRange(t *testing.T) {
	bound := new(big.Int).Lsh(big.NewInt(1), ChallengeBits)
	for i := 0; i < 50; i++ {
		c := Challenge(TagChallenge, []byte{byte(i)})
		if c.Sign() < 0 || c.Cmp(bound) >= 0 {
			t.Fatalf("challenge %v outside [0, 2^%d)", c, ChallengeBits)
		}
	}
}

func TestChallengeDeterministic(t *testing.T) {
	a := Challenge(TagChallenge, []byte("x"), []byte("y"))
	b := Challenge(TagChallenge, []byte("x"), []byte("y"))
	if a.Cmp(b) != 0 {
		t.Fatal("challenge is not deterministic")
	}
}

func TestIdentityDigestRangeAndStability(t *testing.T) {
	n := new(big.Int).Lsh(big.NewInt(1), 512)
	n.Add(n, big.NewInt(12345))
	d1 := IdentityDigest("alice@example.org", n)
	d2 := IdentityDigest("alice@example.org", n)
	if d1.Cmp(d2) != 0 {
		t.Fatal("identity digest unstable")
	}
	if d1.Sign() <= 0 || d1.Cmp(n) >= 0 {
		t.Fatal("identity digest out of range")
	}
	if IdentityDigest("bob", n).Cmp(d1) == 0 {
		t.Fatal("distinct identities collided")
	}
}

func TestScalarDigestRange(t *testing.T) {
	q := big.NewInt(7919)
	f := func(msg []byte) bool {
		v := ScalarDigest(TagDSADigest, q, msg)
		return v.Sign() >= 0 && v.Cmp(q) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKDFLengthsAndIndependence(t *testing.T) {
	secret := []byte("group key material")
	k16 := KDF(secret, "enc", 16)
	k32 := KDF(secret, "enc", 32)
	if len(k16) != 16 || len(k32) != 32 {
		t.Fatal("KDF returned wrong lengths")
	}
	if !bytes.Equal(k16, k32[:16]) {
		t.Fatal("KDF counter mode should be a prefix-consistent stream")
	}
	other := KDF(secret, "mac", 16)
	if bytes.Equal(k16, other) {
		t.Fatal("different contexts must derive different keys")
	}
}

func TestBigBytesNil(t *testing.T) {
	if BigBytes(nil) != nil && len(BigBytes(nil)) != 0 {
		t.Fatal("nil should map to empty")
	}
	if !bytes.Equal(BigBytes(big.NewInt(0x0102)), []byte{1, 2}) {
		t.Fatal("BigBytes wrong encoding")
	}
}
