package serve

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"idgka"
)

// newTestHost builds a host over a loopback transport with pool members.
func newTestHost(t *testing.T, pool int, cfg Config) (*Host, *loopback, []string) {
	t.Helper()
	auth, err := idgka.NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	lb := &loopback{}
	h := NewHost(cfg, lb.tx)
	lb.setHost(h)
	t.Cleanup(h.Close)
	ids := make([]string, pool)
	for i := range ids {
		ids[i] = fmt.Sprintf("sv-%02d", i)
		mb, err := auth.NewMember(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddMember(mb); err != nil {
			t.Fatal(err)
		}
	}
	return h, lb, ids
}

// startGroup launches one flow per roster member and returns the runs.
func startGroup(t *testing.T, h *Host, sid string, roster []string,
	start func(mb *idgka.Member, id string) (*idgka.Session, error)) []*Run {
	t.Helper()
	runs := make([]*Run, 0, len(roster))
	for _, id := range roster {
		id := id
		r, err := h.Start(id, sid, func(mb *idgka.Member) (*idgka.Session, error) {
			return start(mb, id)
		})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	return runs
}

// awaitGroup waits for every run and asserts one agreed non-nil key.
func awaitGroup(t *testing.T, what string, runs []*Run) []byte {
	t.Helper()
	for _, r := range runs {
		select {
		case <-r.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("%s: run %s timed out", what, r.SID())
		}
		if err := r.Err(); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	}
	ref := runs[0].Key()
	if ref == nil {
		t.Fatalf("%s: no key committed", what)
	}
	for _, r := range runs[1:] {
		if !bytes.Equal(r.Key(), ref) {
			t.Fatalf("%s: members disagree on the key", what)
		}
	}
	return ref
}

// TestHostMultiGroupEstablish: one host, one member pool, many groups
// with rotated rosters — all establish concurrently over the shared
// worker pool and commit distinct keys.
func TestHostMultiGroupEstablish(t *testing.T) {
	h, lb, ids := newTestHost(t, 4, Config{})
	const groups = 8
	keys := map[string]bool{}
	all := make([][]*Run, groups)
	for g := 0; g < groups; g++ {
		roster := []string{ids[g%4], ids[(g+1)%4], ids[(g+2)%4]}
		sid := fmt.Sprintf("mg/%02d", g)
		lb.addRoster(sid, roster)
		all[g] = startGroup(t, h, sid, roster, func(mb *idgka.Member, _ string) (*idgka.Session, error) {
			return mb.NewSession(sid, roster)
		})
	}
	for g := 0; g < groups; g++ {
		key := awaitGroup(t, fmt.Sprintf("group %d", g), all[g])
		keys[string(key)] = true
	}
	if len(keys) != groups {
		t.Fatalf("expected %d distinct keys, got %d", groups, len(keys))
	}
	st := h.Stats()
	if st.Members != 4 || st.LiveRuns != 0 || st.Delivered == 0 {
		t.Fatalf("stats after settling: %+v", st)
	}
}

// TestHostChurn is the multi-group churn scenario: dozens of groups over
// one member pool, then per group a Join, a Leave, or a crash-driven
// eviction (peer-down notice + Leave), every re-key confirmed where the
// flow leaves a confirmable group behind.
func TestHostChurn(t *testing.T) {
	h, lb, ids := newTestHost(t, 6, Config{})
	pool := len(ids)

	var downMu sync.Mutex
	downSeen := map[string]int{}
	h.SetPeerDownHandler(func(owner *idgka.Member, peer string) {
		downMu.Lock()
		downSeen[owner.ID()+"<-"+peer]++
		downMu.Unlock()
	})

	const groups = 24
	rosters := make([][]string, groups)
	est := make([][]*Run, groups)
	for g := 0; g < groups; g++ {
		rosters[g] = []string{ids[g%pool], ids[(g+1)%pool], ids[(g+2)%pool]}
		sid := fmt.Sprintf("churn/%02d/est", g)
		lb.addRoster(sid, rosters[g])
		roster := rosters[g]
		est[g] = startGroup(t, h, sid, roster, func(mb *idgka.Member, _ string) (*idgka.Session, error) {
			return mb.NewSession(sid, roster)
		})
	}
	baseKeys := make([][]byte, groups)
	for g := 0; g < groups; g++ {
		baseKeys[g] = awaitGroup(t, fmt.Sprintf("churn est %d", g), est[g])
	}

	for g := 0; g < groups; g++ {
		base := fmt.Sprintf("churn/%02d/est", g)
		roster := rosters[g]
		switch g % 3 {
		case 0: // Join: admit the next pool member not in the ring.
			joiner := ids[(g+3)%pool]
			sid := fmt.Sprintf("churn/%02d/join", g)
			grown := append(append([]string(nil), roster...), joiner)
			lb.addRoster(sid, grown)
			runs := startGroup(t, h, sid, grown, func(mb *idgka.Member, id string) (*idgka.Session, error) {
				if id == joiner {
					return mb.JoinSession(sid, "", roster, joiner)
				}
				return mb.JoinSession(sid, base, nil, joiner)
			})
			key := awaitGroup(t, fmt.Sprintf("churn join %d", g), runs)
			if bytes.Equal(key, baseKeys[g]) {
				t.Fatalf("group %d: join did not rotate the key", g)
			}
			// Confirm the grown group.
			csid := fmt.Sprintf("churn/%02d/cfm", g)
			lb.addRoster(csid, grown)
			cruns := startGroup(t, h, csid, grown, func(mb *idgka.Member, _ string) (*idgka.Session, error) {
				return mb.ConfirmSession(csid, sid)
			})
			if !bytes.Equal(awaitGroup(t, fmt.Sprintf("churn confirm %d", g), cruns), key) {
				t.Fatalf("group %d: confirmation reported a different key", g)
			}
		case 1: // Leave: evict the middle ring member.
			sid := fmt.Sprintf("churn/%02d/leave", g)
			evict := roster[1]
			survivors := []string{roster[0], roster[2]}
			lb.addRoster(sid, survivors)
			runs := startGroup(t, h, sid, survivors, func(mb *idgka.Member, _ string) (*idgka.Session, error) {
				return mb.LeaveSession(sid, base, []string{evict})
			})
			key := awaitGroup(t, fmt.Sprintf("churn leave %d", g), runs)
			if bytes.Equal(key, baseKeys[g]) {
				t.Fatalf("group %d: leave did not rotate the key", g)
			}
		case 2: // Crash: a peer-down notice triggers eviction via Leave.
			victim := roster[2]
			survivors := []string{roster[0], roster[1]}
			for _, id := range survivors {
				if err := h.Deliver(id, idgka.PeerDownPacket(victim)); err != nil {
					t.Fatal(err)
				}
			}
			sid := fmt.Sprintf("churn/%02d/evict", g)
			lb.addRoster(sid, survivors)
			runs := startGroup(t, h, sid, survivors, func(mb *idgka.Member, _ string) (*idgka.Session, error) {
				return mb.LeaveSession(sid, base, []string{victim})
			})
			key := awaitGroup(t, fmt.Sprintf("churn evict %d", g), runs)
			if bytes.Equal(key, baseKeys[g]) {
				t.Fatalf("group %d: eviction did not rotate the key", g)
			}
		}
	}

	// Every survivor that was dealt a peer-down notice saw it exactly
	// once per dead peer (the member collapses duplicates).
	downMu.Lock()
	defer downMu.Unlock()
	if len(downSeen) == 0 {
		t.Fatal("no peer-down callbacks fired")
	}
	for k, n := range downSeen {
		if n != 1 {
			t.Fatalf("peer-down %s fired %d times", k, n)
		}
	}
}

// TestRunCancelAndSupersede: a wedged run is cancelled (waiters unblock
// with the close error), and a new Start under the same sid supersedes a
// live predecessor.
func TestRunCancelAndSupersede(t *testing.T) {
	h, lb, ids := newTestHost(t, 2, Config{})
	roster := []string{ids[0], "ghost"}
	lb.addRoster("wedge", roster)
	r, err := h.Start(ids[0], "wedge", func(mb *idgka.Member) (*idgka.Session, error) {
		return mb.NewSession("wedge", roster)
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-r.Done():
		t.Fatal("wedged run settled")
	case <-time.After(20 * time.Millisecond):
	}
	r.Cancel()
	if err := r.Wait(); err == nil {
		t.Fatal("cancelled run reported success")
	}
	if st := h.Stats(); st.LiveRuns != 0 {
		t.Fatalf("cancelled run still live: %+v", st)
	}

	// Supersede: two Starts under one sid; the first settles as failed
	// once the second replaces it.
	r1, err := h.Start(ids[0], "dup", func(mb *idgka.Member) (*idgka.Session, error) {
		return mb.NewSession("dup", roster)
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Start(ids[0], "dup", func(mb *idgka.Member) (*idgka.Session, error) {
		return mb.NewSession("dup", roster)
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-r1.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("superseded run never settled")
	}
	if r1.Err() == nil {
		t.Fatal("superseded run reported success")
	}
	r2.Cancel()
}

// TestHostTickerDrivesDeadlines: with a configured deadline and the
// shared ticker, a run whose peer never answers retransmits through its
// budget and then fails with ErrSessionTimeout — no application timer
// involved.
func TestHostTickerDrivesDeadlines(t *testing.T) {
	h, lb, ids := newTestHost(t, 2, Config{
		TickInterval: 5 * time.Millisecond,
		Deadline:     20 * time.Millisecond,
	})
	roster := []string{ids[0], "ghost"}
	lb.addRoster("dead", roster)
	r, err := h.Start(ids[0], "dead", func(mb *idgka.Member) (*idgka.Session, error) {
		return mb.NewSession("dead", roster)
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-r.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("deadline never fired")
	}
	if err := r.Err(); !errors.Is(err, idgka.ErrSessionTimeout) {
		t.Fatalf("want ErrSessionTimeout, got %v", err)
	}
	if r.Session().Attempts() == 0 {
		t.Fatal("no retransmission attempt consumed before the timeout")
	}
}

// TestBenchmarkGroupsSmoke: the ladder harness itself (small rungs).
func TestBenchmarkGroupsSmoke(t *testing.T) {
	stats, err := BenchmarkGroups([]int{1, 4}, BenchOptions{Pool: 4, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].Groups != 1 || stats[1].Groups != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, s := range stats {
		if s.EstablishPerSec <= 0 || s.RekeyPerSec <= 0 {
			t.Fatalf("non-positive throughput: %+v", s)
		}
	}
}
