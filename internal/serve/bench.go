package serve

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"idgka"
	"idgka/internal/engine"
)

// GroupStat is one rung of the multi-group throughput ladder: how fast
// one process establishes (and re-keys) Groups concurrent groups through
// a Host. It is emitted as the `multi_group` section of gkabench -json.
type GroupStat struct {
	Groups          int     `json:"groups"`
	GroupSize       int     `json:"group_size"`
	Pool            int     `json:"pool"`
	EstablishMS     float64 `json:"establish_ms"`
	EstablishPerSec float64 `json:"establish_per_sec"`
	RekeyMS         float64 `json:"rekey_ms"`
	RekeyPerSec     float64 `json:"rekey_per_sec"`
	// Amortized-verify telemetry (zero unless BenchOptions.AmortizeVerify):
	// how many GQ claims the settlement queue checked, in how many
	// coalesced batches, and the lane's throughput — claims divided by
	// the wall time the queue actually spent checking. Claims/batch above
	// 1 is cross-group amortization at work, and VerifyPerSec rises with
	// it as the RLC check spreads its cost over more claims.
	VerifyClaims  uint64  `json:"verify_claims,omitempty"`
	VerifyBatches uint64  `json:"verify_batches,omitempty"`
	VerifyPerSec  float64 `json:"verify_per_sec,omitempty"`
}

// BenchOptions tunes BenchmarkGroups. The zero value selects a pool of 8
// members, 4-member groups, GOMAXPROCS shards and no crypto acceleration.
type BenchOptions struct {
	Pool      int  // member pool size (groups draw rotating rosters from it)
	GroupSize int  // ring size per group
	Shards    int  // host dispatch lanes
	Accel     bool // enable fixed-base precomputation + verify workers
	Workers   int  // verify-worker pool per member when Accel (0 = 4)
	// AmortizeVerify turns on the host's claim settlement queue
	// (Config.AmortizeVerify). Shards defaults to the pool size in this
	// mode, so members parked on a settling batch never starve other
	// members' traffic of a dispatch lane.
	AmortizeVerify bool
}

func (o BenchOptions) pool() int {
	if o.Pool > 0 {
		return o.Pool
	}
	return 8
}

func (o BenchOptions) groupSize() int {
	if o.GroupSize > 1 {
		return o.GroupSize
	}
	return 4
}

// loopback fans host outbounds straight back into the host, scoping
// broadcasts to the emitting session's ring (the multicast a real
// deployment would use) so cross-group noise never reaches machines that
// are not in the group.
type loopback struct {
	mu sync.RWMutex
	//gkalint:guard mu
	h       *Host
	rosters map[string][]string
}

func (l *loopback) setHost(h *Host) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *loopback) addRoster(sid string, roster []string) {
	l.mu.Lock()
	if l.rosters == nil {
		l.rosters = map[string][]string{}
	}
	l.rosters[sid] = roster
	l.mu.Unlock()
}

func (l *loopback) tx(from string, p idgka.Packet) error {
	l.mu.RLock()
	h := l.h
	roster := l.rosters[engine.EnvelopeSID(p.Payload)]
	l.mu.RUnlock()
	if h == nil {
		return fmt.Errorf("serve: loopback has no host")
	}
	if p.To != "" {
		return h.Deliver(p.To, p)
	}
	if roster == nil {
		return h.Deliver("", p)
	}
	for _, id := range roster {
		if id == from {
			continue
		}
		if err := h.Deliver(id, p); err != nil {
			return err
		}
	}
	return nil
}

// SettleGroups blocks until every run of every group settles (or the
// budget expires), verifies each group committed one agreed non-nil key,
// and returns the keys per group. It is the settle-and-cross-check step
// every multi-group driver needs (the bench ladder, gkanet -serve).
func SettleGroups(what string, groups [][]*Run, budget time.Duration) ([][]byte, error) {
	deadline := time.Now().Add(budget)
	keys := make([][]byte, len(groups))
	for g, runs := range groups {
		for _, r := range runs {
			select {
			case <-r.Done():
			case <-time.After(time.Until(deadline)):
				return nil, fmt.Errorf("%s group %d: run %s timed out", what, g, r.SID())
			}
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("%s group %d: %w", what, g, err)
			}
		}
		ref := runs[0].Key()
		if ref == nil {
			return nil, fmt.Errorf("%s group %d committed no key", what, g)
		}
		for _, r := range runs[1:] {
			if !bytes.Equal(r.Key(), ref) {
				return nil, fmt.Errorf("%s group %d disagrees on the key", what, g)
			}
		}
		keys[g] = ref
	}
	return keys, nil
}

// BenchmarkGroups measures multi-group serve-layer throughput: for each
// rung in counts it hosts that many concurrent groups (rotating rosters
// over a fixed member pool), establishes them all, then re-keys each via
// a one-member Leave, reporting establishments/sec and re-keys/sec.
func BenchmarkGroups(counts []int, opt BenchOptions) ([]GroupStat, error) {
	auth, err := idgka.NewAuthority()
	if err != nil {
		return nil, err
	}
	pool, size := opt.pool(), opt.groupSize()
	if size > pool {
		return nil, fmt.Errorf("serve bench: group size %d exceeds pool %d", size, pool)
	}
	// VerifyWorkers is itself an accel knob: without Accel the ladder
	// must measure the exact sequential verification path, whatever
	// Workers the caller filled in.
	workers := 0
	if opt.Accel {
		if workers = opt.Workers; workers <= 0 {
			workers = 4
		}
	}
	ids := make([]string, pool)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%02d", i)
	}

	var stats []GroupStat
	shards := opt.Shards
	if opt.AmortizeVerify && shards == 0 {
		shards = pool
	}
	for _, n := range counts {
		lb := &loopback{}
		host := NewHost(Config{Shards: shards, Deadline: 30 * time.Second, AmortizeVerify: opt.AmortizeVerify}, lb.tx)
		lb.setHost(host)
		for _, id := range ids {
			mb, err := auth.NewMemberWithConfig(id, idgka.Config{
				Precompute:    opt.Accel,
				VerifyWorkers: workers,
			})
			if err != nil {
				host.Close()
				return nil, err
			}
			if err := host.AddMember(mb); err != nil {
				host.Close()
				return nil, err
			}
		}
		rosters := make([][]string, n)
		for g := range rosters {
			r := make([]string, size)
			for j := range r {
				r[j] = ids[(g+j)%pool]
			}
			rosters[g] = r
		}

		// Establish all n groups concurrently.
		est := make([][]*Run, n)
		t0 := time.Now()
		for g, roster := range rosters {
			sid := fmt.Sprintf("bench/g%04d/est", g)
			lb.addRoster(sid, roster)
			for _, id := range roster {
				r, err := host.Start(id, sid, func(mb *idgka.Member) (*idgka.Session, error) {
					return mb.NewSession(sid, roster)
				})
				if err != nil {
					host.Close()
					return nil, err
				}
				est[g] = append(est[g], r)
			}
		}
		if _, err := SettleGroups("establish", est, 2*time.Minute); err != nil {
			host.Close()
			return nil, err
		}
		estElapsed := time.Since(t0)

		// Re-key every group: evict its last ring member via Leave.
		rekey := make([][]*Run, n)
		t1 := time.Now()
		for g, roster := range rosters {
			base := fmt.Sprintf("bench/g%04d/est", g)
			sid := fmt.Sprintf("bench/g%04d/leave", g)
			evict := roster[len(roster)-1]
			survivors := roster[:len(roster)-1]
			lb.addRoster(sid, survivors)
			for _, id := range survivors {
				r, err := host.Start(id, sid, func(mb *idgka.Member) (*idgka.Session, error) {
					return mb.LeaveSession(sid, base, []string{evict})
				})
				if err != nil {
					host.Close()
					return nil, err
				}
				rekey[g] = append(rekey[g], r)
			}
		}
		if _, err := SettleGroups("re-key", rekey, 2*time.Minute); err != nil {
			host.Close()
			return nil, err
		}
		rekeyElapsed := time.Since(t1)
		hostStats := host.Stats()
		host.Close()

		gs := GroupStat{
			Groups:          n,
			GroupSize:       size,
			Pool:            pool,
			EstablishMS:     float64(estElapsed.Microseconds()) / 1000,
			EstablishPerSec: float64(n) / estElapsed.Seconds(),
			RekeyMS:         float64(rekeyElapsed.Microseconds()) / 1000,
			RekeyPerSec:     float64(n) / rekeyElapsed.Seconds(),
		}
		if opt.AmortizeVerify && hostStats.VerifyBusy > 0 {
			gs.VerifyClaims = hostStats.VerifyClaims
			gs.VerifyBatches = hostStats.VerifyBatches
			gs.VerifyPerSec = float64(hostStats.VerifyClaims) / hostStats.VerifyBusy.Seconds()
		}
		stats = append(stats, gs)
	}
	return stats, nil
}
