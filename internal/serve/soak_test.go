package serve

import (
	"testing"
	"time"
)

// TestSoakNominalRate: at a modest offered rate with no watermarks the
// harness sheds nothing and every offered operation completes with a key.
func TestSoakNominalRate(t *testing.T) {
	report, err := RunSoak(SoakOptions{
		Pool: 6, GroupSize: 3,
		Rate: 40, Duration: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Offered == 0 {
		t.Fatal("soak offered no operations")
	}
	if report.Shed != 0 || report.StartSheds != 0 {
		t.Fatalf("nominal rate shed work: %+v", report)
	}
	if report.Failed != 0 {
		t.Fatalf("%d admitted operations failed", report.Failed)
	}
	if report.Completed != report.Offered {
		t.Fatalf("completed %d of %d offered", report.Completed, report.Offered)
	}
	if report.P50MS <= 0 || report.P99MS < report.P50MS {
		t.Fatalf("bad quantiles: p50 %v p99 %v", report.P50MS, report.P99MS)
	}
	if len(report.Ops) == 0 {
		t.Fatal("no per-class stats")
	}
	for _, op := range report.Ops {
		if op.Offered != op.Completed {
			t.Fatalf("class %s: completed %d of %d", op.Op, op.Completed, op.Offered)
		}
	}
}

// TestSoakOverloadShedsButAdmittedComplete is the overload acceptance
// run in miniature: offered far beyond the sustainable rate against a
// tight depth watermark, the host sheds Starts — and every operation it
// did admit still reaches a confirmed key (Failed stays zero; shedding
// happens at admission, never at delivery).
func TestSoakOverloadShedsButAdmittedComplete(t *testing.T) {
	report, err := RunSoak(SoakOptions{
		Pool: 4, GroupSize: 3, Shards: 1,
		Rate: 600, Duration: 1200 * time.Millisecond,
		MaxShardQueue: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Shed == 0 || report.StartSheds == 0 {
		t.Fatalf("overload shed nothing: %+v", report)
	}
	if report.Failed != 0 {
		t.Fatalf("%d ADMITTED operations failed under overload", report.Failed)
	}
	if report.Completed == 0 {
		t.Fatal("overload admitted nothing at all")
	}
	if report.Completed+report.Failed != report.Admitted {
		t.Fatalf("admitted %d != completed %d + failed %d",
			report.Admitted, report.Completed, report.Failed)
	}
	if report.ShedRate <= 0 || report.ShedRate > 1 {
		t.Fatalf("shed rate %v out of range", report.ShedRate)
	}
}

// TestExactQuantileMS pins the nearest-rank math the soak report uses.
func TestExactQuantileMS(t *testing.T) {
	if got := exactQuantileMS(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	ds := []time.Duration{4 * time.Millisecond, 2 * time.Millisecond, 8 * time.Millisecond, 6 * time.Millisecond}
	if got := exactQuantileMS(ds, 0.50); got != 4 {
		t.Fatalf("p50 = %v, want 4", got)
	}
	if got := exactQuantileMS(ds, 0.99); got != 8 {
		t.Fatalf("p99 = %v, want 8", got)
	}
	if got := exactQuantileMS(ds, 0.25); got != 2 {
		t.Fatalf("p25 = %v, want 2", got)
	}
}
