package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"idgka"
)

// SoakOptions tunes RunSoak, the churn driver behind cmd/gkaload: a fixed
// offered rate of group-lifecycle operations (establish / join / leave /
// crash-evict mixes) against one Host for a fixed duration, measuring
// time-to-key quantiles and admission-control shedding under sustained
// load. The zero value selects an 8-member pool, 3-member groups, 25
// ops/sec for 5 seconds and no watermarks.
type SoakOptions struct {
	// Pool is the hosted member pool; GroupSize the ring size each
	// operation draws (rotating) from it. Defaults: 8 and 3.
	Pool      int
	GroupSize int
	// Shards is the host's dispatch-lane count (0 = GOMAXPROCS).
	Shards int
	// Rate is the offered operation rate in ops/sec; Duration how long the
	// driver keeps offering. Defaults: 25/sec for 5s.
	Rate     float64
	Duration time.Duration
	// MaxShardQueue/MaxShardQueueAge/FairShare feed straight into the
	// host's admission Config — zero watermarks soak the unbounded
	// baseline.
	MaxShardQueue    int
	MaxShardQueueAge time.Duration
	FairShare        float64
	// AmortizeVerify turns on the host's claim settlement queue.
	AmortizeVerify bool
	// OpBudget bounds how long one admitted operation may take to settle
	// before it counts as failed. Default 30s.
	OpBudget time.Duration
	// Deadline is the per-run session deadline the host arms (the
	// retransmit driver). Default 10s.
	Deadline time.Duration
}

func (o SoakOptions) pool() int {
	if o.Pool > 0 {
		return o.Pool
	}
	return 8
}

func (o SoakOptions) groupSize() int {
	if o.GroupSize > 1 {
		return o.GroupSize
	}
	return 3
}

func (o SoakOptions) rate() float64 {
	if o.Rate > 0 {
		return o.Rate
	}
	return 25
}

func (o SoakOptions) duration() time.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	return 5 * time.Second
}

func (o SoakOptions) opBudget() time.Duration {
	if o.OpBudget > 0 {
		return o.OpBudget
	}
	return 30 * time.Second
}

func (o SoakOptions) deadline() time.Duration {
	if o.Deadline > 0 {
		return o.Deadline
	}
	return 10 * time.Second
}

// soakMix is the deterministic operation cycle the driver offers: half
// plain establishments, the rest the dynamic flows (leave-based re-key,
// join, crash-evict) that stress sid routing and peer-down handling.
var soakMix = []string{"establish", "rekey", "establish", "join", "establish", "crash"}

// SoakOpStat is one operation class's outcome in a SoakReport.
type SoakOpStat struct {
	// Op names the class: "establish", "rekey", "join" or "crash".
	Op string `json:"op"`
	// Offered = Admitted + Shed; Admitted = Completed + Failed. A shed
	// operation hit ErrOverloaded at admission (nothing registered); a
	// failed one was admitted but did not settle a key within the budget.
	Offered   int `json:"offered"`
	Admitted  int `json:"admitted"`
	Shed      int `json:"shed"`
	Failed    int `json:"failed"`
	Completed int `json:"completed"`
	// P50MS/P99MS are exact time-to-key quantiles over the class's
	// completed operations (0 when none completed). An operation's clock
	// runs from its first Start to its last member's settle — dynamic
	// classes include the base establishment.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// SoakReport is the schema-2 JSON document cmd/gkaload emits
// (SOAK_*.json): offered/admitted/shed/failed/completed totals, exact
// time-to-key quantiles, and the host's queue high-water mark.
type SoakReport struct {
	Schema    int     `json:"schema"`
	Pool      int     `json:"pool"`
	GroupSize int     `json:"group_size"`
	Shards    int     `json:"shards"`
	Rate      float64 `json:"rate_per_sec"`
	// DurationMS is the offering window; the report settles every admitted
	// operation before closing, so wall time may exceed it.
	DurationMS float64 `json:"duration_ms"`
	// Admission watermarks the run was configured with (0 = disabled).
	MaxShardQueue    int     `json:"max_shard_queue"`
	MaxShardQueueAge float64 `json:"max_shard_queue_age_ms"`

	Offered   int `json:"offered"`
	Admitted  int `json:"admitted"`
	Shed      int `json:"shed"`
	Failed    int `json:"failed"`
	Completed int `json:"completed"`
	// ShedRate is Shed/Offered (0 with nothing offered).
	ShedRate float64 `json:"shed_rate"`
	// P50MS/P99MS are exact time-to-key quantiles over every completed
	// operation.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`

	Ops []SoakOpStat `json:"ops"`

	// Host counters at the end of the run: StartSheds is the number of
	// individual Start calls admission rejected (one shed operation may
	// count several), PeakQueueDepth the deepest any shard queue got.
	StartSheds     uint64 `json:"start_sheds"`
	PeakQueueDepth int    `json:"peak_queue_depth"`
	Delivered      uint64 `json:"delivered"`
}

// soakOp is one operation's outcome, streamed back to the aggregator.
type soakOp struct {
	class   string
	shed    bool
	failed  bool
	elapsed time.Duration
}

// RunSoak drives the configured churn mix against one freshly built Host
// over a loopback transport and reports the outcome. The error is only
// non-nil for harness-level faults (authority/member construction);
// operation failures are data, reported in the SoakReport.
func RunSoak(opt SoakOptions) (*SoakReport, error) {
	auth, err := idgka.NewAuthority()
	if err != nil {
		return nil, err
	}
	pool, size := opt.pool(), opt.groupSize()
	if size > pool {
		return nil, fmt.Errorf("soak: group size %d exceeds pool %d", size, pool)
	}
	lb := &loopback{}
	host := NewHost(Config{
		Shards:           opt.Shards,
		Deadline:         opt.deadline(),
		AmortizeVerify:   opt.AmortizeVerify,
		MaxShardQueue:    opt.MaxShardQueue,
		MaxShardQueueAge: opt.MaxShardQueueAge,
		FairShare:        opt.FairShare,
	}, lb.tx)
	lb.setHost(host)
	defer host.Close()
	ids := make([]string, pool)
	for i := range ids {
		ids[i] = fmt.Sprintf("soak-%02d", i)
		mb, err := auth.NewMember(ids[i])
		if err != nil {
			return nil, err
		}
		if err := host.AddMember(mb); err != nil {
			return nil, err
		}
	}

	interval := time.Duration(float64(time.Second) / opt.rate())
	if interval <= 0 {
		interval = time.Microsecond
	}
	stopAt := time.Now().Add(opt.duration())
	results := make(chan soakOp, 1024)
	var wg sync.WaitGroup
	tick := time.NewTicker(interval)
	defer tick.Stop()
	n := 0
	for now := time.Now(); now.Before(stopAt); now = <-tick.C {
		class := soakMix[n%len(soakMix)]
		g := n
		n++
		wg.Add(1)
		go func() {
			defer wg.Done()
			//gkalint:unbounded every op goroutine deposits exactly one result and the aggregation loop below drains until close; the op itself is already bounded by opt.opBudget
			results <- runSoakOp(host, lb, ids, size, g, class, opt.opBudget())
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	report := &SoakReport{
		Schema: 2, Pool: pool, GroupSize: size, Shards: host.cfg.shards(),
		Rate: opt.rate(), DurationMS: float64(opt.duration().Microseconds()) / 1000,
		MaxShardQueue:    opt.MaxShardQueue,
		MaxShardQueueAge: float64(opt.MaxShardQueueAge.Microseconds()) / 1000,
	}
	perClass := map[string]*SoakOpStat{}
	durations := map[string][]time.Duration{}
	var all []time.Duration
	//gkalint:unbounded results is closed once the WaitGroup settles and every producer op is deadline-bounded by opt.opBudget, so this drain terminates
	for op := range results {
		st := perClass[op.class]
		if st == nil {
			st = &SoakOpStat{Op: op.class}
			perClass[op.class] = st
		}
		st.Offered++
		report.Offered++
		switch {
		case op.shed:
			st.Shed++
			report.Shed++
		case op.failed:
			st.Admitted++
			st.Failed++
			report.Admitted++
			report.Failed++
		default:
			st.Admitted++
			st.Completed++
			report.Admitted++
			report.Completed++
			durations[op.class] = append(durations[op.class], op.elapsed)
			all = append(all, op.elapsed)
		}
	}
	for _, class := range []string{"establish", "rekey", "join", "crash"} {
		st := perClass[class]
		if st == nil {
			continue
		}
		st.P50MS = exactQuantileMS(durations[class], 0.50)
		st.P99MS = exactQuantileMS(durations[class], 0.99)
		report.Ops = append(report.Ops, *st)
	}
	if report.Offered > 0 {
		report.ShedRate = float64(report.Shed) / float64(report.Offered)
	}
	report.P50MS = exactQuantileMS(all, 0.50)
	report.P99MS = exactQuantileMS(all, 0.99)
	st := host.Stats()
	report.StartSheds = st.Sheds
	report.PeakQueueDepth = st.PeakQueueDepth
	report.Delivered = st.Delivered
	return report, nil
}

// runSoakOp executes one operation: establish a fresh group, then (per
// class) re-key it by leave, grow it by join, or crash a member and evict
// it. Any Start shed by admission sheds the whole operation — runs the
// operation already started are cancelled, so nothing half-offered
// lingers — while post-admission errors or a blown budget fail it.
func runSoakOp(host *Host, lb *loopback, ids []string, size, g int, class string, budget time.Duration) soakOp {
	pool := len(ids)
	roster := make([]string, size)
	for j := range roster {
		roster[j] = ids[(g+j)%pool]
	}
	t0 := time.Now()
	out := soakOp{class: class}

	sidEst := fmt.Sprintf("soak/op%06d/est", g)
	lb.addRoster(sidEst, roster)
	est, shed, err := startSoakGroup(host, sidEst, roster, func(mb *idgka.Member) (*idgka.Session, error) {
		return mb.NewSession(sidEst, roster)
	})
	if shed {
		out.shed = true
		return out
	}
	if err != nil || settleSoak(est, budget) != nil {
		out.failed = true
		return out
	}

	switch class {
	case "rekey":
		sid := fmt.Sprintf("soak/op%06d/leave", g)
		evict := roster[size-1]
		survivors := roster[:size-1]
		lb.addRoster(sid, survivors)
		runs, shed, err := startSoakGroup(host, sid, survivors, func(mb *idgka.Member) (*idgka.Session, error) {
			return mb.LeaveSession(sid, sidEst, []string{evict})
		})
		if shed {
			out.shed = true
			return out
		}
		if err != nil || settleSoak(runs, budget) != nil {
			out.failed = true
			return out
		}
	case "join":
		joiner := ids[(g+size)%pool]
		sid := fmt.Sprintf("soak/op%06d/join", g)
		grown := append(append([]string(nil), roster...), joiner)
		lb.addRoster(sid, grown)
		runs, shed, err := startSoakGroupBy(host, sid, grown, func(mb *idgka.Member, id string) (*idgka.Session, error) {
			if id == joiner {
				return mb.JoinSession(sid, "", roster, joiner)
			}
			return mb.JoinSession(sid, sidEst, nil, joiner)
		})
		if shed {
			out.shed = true
			return out
		}
		if err != nil || settleSoak(runs, budget) != nil {
			out.failed = true
			return out
		}
	case "crash":
		victim := roster[size-1]
		survivors := roster[:size-1]
		for _, id := range survivors {
			// Protocol traffic is never shed; a failed Deliver here means
			// the host is closing, which the eviction below will surface.
			_ = host.Deliver(id, idgka.PeerDownPacket(victim))
		}
		sid := fmt.Sprintf("soak/op%06d/evict", g)
		lb.addRoster(sid, survivors)
		runs, shed, err := startSoakGroup(host, sid, survivors, func(mb *idgka.Member) (*idgka.Session, error) {
			return mb.LeaveSession(sid, sidEst, []string{victim})
		})
		if shed {
			out.shed = true
			return out
		}
		if err != nil || settleSoak(runs, budget) != nil {
			out.failed = true
			return out
		}
	}
	out.elapsed = time.Since(t0)
	return out
}

// startSoakGroup starts one flow per roster member under sid. An
// ErrOverloaded from any member sheds the whole group: runs already
// started are cancelled and shed=true returns with no live state.
func startSoakGroup(host *Host, sid string, roster []string,
	start func(mb *idgka.Member) (*idgka.Session, error)) (runs []*Run, shed bool, err error) {
	return startSoakGroupBy(host, sid, roster, func(mb *idgka.Member, _ string) (*idgka.Session, error) {
		return start(mb)
	})
}

func startSoakGroupBy(host *Host, sid string, roster []string,
	start func(mb *idgka.Member, id string) (*idgka.Session, error)) (runs []*Run, shed bool, err error) {
	for _, id := range roster {
		id := id
		r, err := host.Start(id, sid, func(mb *idgka.Member) (*idgka.Session, error) {
			return start(mb, id)
		})
		if err != nil {
			for _, done := range runs {
				done.Cancel()
			}
			if errors.Is(err, ErrOverloaded) {
				return nil, true, nil
			}
			return nil, false, err
		}
		runs = append(runs, r)
	}
	return runs, false, nil
}

// settleSoak waits for every run of one admitted operation stage and
// checks the group agreed on one non-nil key.
func settleSoak(runs []*Run, budget time.Duration) error {
	_, err := SettleGroups("soak", [][]*Run{runs}, budget)
	return err
}

// exactQuantileMS computes the q-quantile of ds exactly (nearest-rank on
// the sorted slice), in milliseconds. 0 with no samples — soak reports
// are JSON, where NaN is unrepresentable.
func exactQuantileMS(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1].Microseconds()) / 1000
}
