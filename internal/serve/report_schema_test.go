package serve

import (
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// backtickedName matches one `snake_case` token, as used for field names
// in the docs/PERFORMANCE.md schema tables.
var backtickedName = regexp.MustCompile("`([a-z0-9_]+)`")

// performanceSection returns the body of one "## title" section of
// docs/PERFORMANCE.md.
func performanceSection(t *testing.T, title string) string {
	t.Helper()
	raw, err := os.ReadFile("../../docs/PERFORMANCE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range strings.Split(string(raw), "\n## ") {
		if strings.HasPrefix(sec, title) {
			return sec
		}
	}
	t.Fatalf("docs/PERFORMANCE.md has no %q section", title)
	return ""
}

// tableFieldNames extracts the backticked field names from the FIRST
// column of every markdown table row in a section (the schema tables
// document one JSON field per row; a combined row like "`p50_ms`,
// `p99_ms`" yields both).
func tableFieldNames(sec string) map[string]bool {
	fields := map[string]bool{}
	for _, line := range strings.Split(sec, "\n") {
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 2 {
			continue
		}
		for _, m := range backtickedName.FindAllStringSubmatch(cells[1], -1) {
			fields[m[1]] = true
		}
	}
	return fields
}

// jsonTags returns the JSON field names a struct type emits.
func jsonTags(t *testing.T, v any) []string {
	t.Helper()
	rt := reflect.TypeOf(v)
	tags := make([]string, 0, rt.NumField())
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		if tag == "" || tag == "-" {
			t.Fatalf("%s.%s has no json tag", rt.Name(), rt.Field(i).Name)
		}
		tags = append(tags, strings.Split(tag, ",")[0])
	}
	return tags
}

// TestReportSchemasMatchPerformanceDoc is the docs meta-test for the
// machine-readable reports: every JSON field GroupStat (GROUPS_*.json)
// and SoakReport (SOAK_*.json) emits must be documented in the matching
// docs/PERFORMANCE.md schema table, and the tables must not document
// fields the code no longer emits.
func TestReportSchemasMatchPerformanceDoc(t *testing.T) {
	check := func(section string, v any) {
		documented := tableFieldNames(performanceSection(t, section))
		if len(documented) == 0 {
			t.Fatalf("no schema table found under %q", section)
		}
		for _, tag := range jsonTags(t, v) {
			if !documented[tag] {
				t.Errorf("%T emits %q but the %q table does not document it", v, tag, section)
			}
			delete(documented, tag)
		}
		for name := range documented {
			t.Errorf("the %q table documents %q but %T does not emit it", section, name, v)
		}
	}
	check("Group ladder reports", GroupStat{})
	check("Soak reports", SoakReport{})

	// The per-class breakdown is documented inline in the `ops` row
	// rather than as its own table; every SoakOpStat field must still be
	// named there.
	soak := performanceSection(t, "Soak reports")
	for _, tag := range jsonTags(t, SoakOpStat{}) {
		if !strings.Contains(soak, "`"+tag+"`") {
			t.Errorf("SoakOpStat emits %q but the soak section never names it", tag)
		}
	}
}
