package serve

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"

	"idgka"
	"idgka/internal/mathx"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
)

// TestHostAmortizedVerify runs many concurrent groups through a host with
// the amortized settlement queue on: every group must still commit an
// agreed key, and the queue's counters must show cross-group coalescing —
// fewer batches than claims.
func TestHostAmortizedVerify(t *testing.T) {
	const pool, groups = 6, 8
	h, lb, ids := newTestHost(t, pool, Config{Shards: pool, AmortizeVerify: true})
	keys := map[string]bool{}
	all := make([][]*Run, groups)
	for g := 0; g < groups; g++ {
		roster := []string{ids[g%pool], ids[(g+1)%pool], ids[(g+2)%pool]}
		sid := fmt.Sprintf("av/%02d", g)
		lb.addRoster(sid, roster)
		all[g] = startGroup(t, h, sid, roster, func(mb *idgka.Member, _ string) (*idgka.Session, error) {
			return mb.NewSession(sid, roster)
		})
	}
	for g := 0; g < groups; g++ {
		key := awaitGroup(t, fmt.Sprintf("group %d", g), all[g])
		keys[string(key)] = true
	}
	if len(keys) != groups {
		t.Fatalf("expected %d distinct keys, got %d", groups, len(keys))
	}
	st := h.Stats()
	if st.VerifyClaims != groups*3 {
		t.Fatalf("verify queue settled %d claims, want %d", st.VerifyClaims, groups*3)
	}
	if st.VerifyBatches == 0 || st.VerifyBatches >= st.VerifyClaims {
		t.Fatalf("no cross-group coalescing: %d claims in %d batches", st.VerifyClaims, st.VerifyBatches)
	}
	if st.VerifyBusy <= 0 {
		t.Fatalf("verify queue reports no busy time")
	}
}

// buildTestClaim fabricates one settlement claim over the default
// parameters; tamper flips the response product so the claim is invalid.
func buildTestClaim(t *testing.T, roster []string, tamper bool) *gq.Claim {
	t.Helper()
	set := params.Default()
	pub := gq.ParamsFrom(set.Public().RSA)
	taus := make([]*big.Int, len(roster))
	ts := make([]*big.Int, len(roster))
	var err error
	for i := range roster {
		if taus[i], ts[i], err = gq.Commitment(rand.Reader, pub); err != nil {
			t.Fatal(err)
		}
	}
	bigT := mathx.ProductMod(ts, pub.N)
	z, err := mathx.RandUnit(rand.Reader, pub.N)
	if err != nil {
		t.Fatal(err)
	}
	c := gq.GroupChallenge(bigT, z)
	responses := make([]*big.Int, len(roster))
	for i, id := range roster {
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			t.Fatal(err)
		}
		responses[i] = sk.Respond(taus[i], c)
	}
	cl, err := gq.NewClaim(pub, roster, responses, c, bigT)
	if err != nil {
		t.Fatal(err)
	}
	if tamper {
		cl.SProd = new(big.Int).Add(cl.SProd, big.NewInt(1))
	}
	return cl
}

// TestVerifyQueueLifecycle exercises the queue directly: claims settle
// through the worker with correct per-claim verdicts, and after close
// late claims are still verified in-line instead of deadlocking.
func TestVerifyQueueLifecycle(t *testing.T) {
	q := newVerifyQueue()
	done := make(chan struct{})
	go func() { q.worker(); close(done) }()

	if err := q.VerifyClaim(buildTestClaim(t, []string{"vq-a", "vq-b"}, false)); err != nil {
		t.Fatalf("good claim rejected: %v", err)
	}
	if err := q.VerifyClaim(buildTestClaim(t, []string{"vq-c"}, true)); err == nil {
		t.Fatal("tampered claim accepted")
	}
	q.close()
	<-done

	// Post-close: the worker is gone; claims must be checked in-line.
	if err := q.VerifyClaim(buildTestClaim(t, []string{"vq-d"}, false)); err != nil {
		t.Fatalf("post-close good claim rejected: %v", err)
	}
	if err := q.VerifyClaim(buildTestClaim(t, []string{"vq-e"}, true)); err == nil {
		t.Fatal("post-close tampered claim accepted")
	}
	if err := q.VerifyClaim(nil); err == nil {
		t.Fatal("nil claim accepted")
	}
}
