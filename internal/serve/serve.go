// Package serve hosts many concurrent group-key-agreement groups inside
// one process. A Host owns any number of goroutine-safe idgka.Members,
// demultiplexes inbound packets to the owning member — the wire envelope
// then routes each packet to the owning session inside the member's
// machine — and drives a single shared deadline ticker across every live
// session (the taschain global-ticker shape: one clock, many registered
// group contexts). All work is dispatched over a bounded worker pool, one
// lane per shard, so thousands of concurrent groups per process make
// progress without a goroutine per session: a member's packets and ticks
// always execute on its shard's one worker (per-member ordering for
// free), while members on different shards proceed in parallel.
//
// The Host is transport-agnostic: outbound packets go through the
// Transmit callback (a transport.Router for TCP deployments, a loopback
// fan-out for in-process benchmarks), and inbound packets arrive through
// Deliver from whatever pump drains the transport.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"idgka"
	"idgka/internal/engine"
)

// Transmit sends one outbound packet on behalf of member from. An empty
// p.To means broadcast to the group; the transport decides the fan-out.
// Errors are counted (Stats.SendErrors) but not fatal to the host — a
// dead route surfaces through peer-down frames and session deadlines.
type Transmit func(from string, p idgka.Packet) error

// Config tunes a Host. The zero value is serviceable: one shard per CPU,
// a 100 ms shared ticker and no per-run deadline.
type Config struct {
	// Shards is the number of dispatch lanes (worker goroutines). Members
	// are assigned to shards by identity hash; a member's traffic is
	// serialized on its shard. 0 selects GOMAXPROCS.
	Shards int
	// TickInterval is the shared deadline ticker's period: every interval
	// the host walks all live runs and calls Session.Tick, driving the
	// retransmit/timeout runtime. 0 selects 100 ms; negative disables
	// ticking (tests that control time themselves).
	TickInterval time.Duration
	// Deadline, when positive, is armed on every run at start and
	// re-armed after each Tick-driven restart, bounding how long a run
	// may sit on traffic that never arrives before it retransmits (and,
	// budget exhausted, fails with idgka.ErrSessionTimeout).
	Deadline time.Duration
	// AmortizeVerify routes every hosted member's per-round GQ batch
	// checks through one host-level settlement queue: checks from
	// concurrently keying groups coalesce per worker wakeup and settle
	// together with a single random-linear-combination verification, so
	// per-group verify cost falls as concurrent load grows. Keys,
	// verdicts and meters are unchanged. A group's finish briefly parks
	// its shard worker while its batch settles, so size Shards for the
	// intended concurrency (at least the number of simultaneously keying
	// members).
	AmortizeVerify bool
	// MaxShardQueue is the admission high watermark on a shard's queue
	// depth: a Start aimed at a shard holding this many undispatched
	// tasks is rejected with ErrOverloaded instead of deepening the
	// backlog. 0 disables the depth watermark. Delivered protocol
	// traffic is never shed — only new establishments are refused.
	MaxShardQueue int
	// MaxShardQueueAge is the admission high watermark on a shard's lag:
	// a Start aimed at a shard whose oldest queued task has waited this
	// long is rejected with ErrOverloaded. 0 disables the age watermark.
	MaxShardQueueAge time.Duration
	// FairShare is the fraction (0, 1] of a pressured shard's live runs
	// one group (session id) may hold before its new Starts are shed
	// ahead of everyone else's; pressure begins at half a configured
	// watermark. 0 selects 0.5. Irrelevant while no watermark is set.
	FairShare float64
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return max(1, runtime.GOMAXPROCS(0))
}

func (c Config) tickInterval() time.Duration {
	if c.TickInterval < 0 {
		return 0
	}
	if c.TickInterval == 0 {
		return 100 * time.Millisecond
	}
	return c.TickInterval
}

func (c Config) fairShare() float64 {
	if c.FairShare > 0 && c.FairShare <= 1 {
		return c.FairShare
	}
	return 0.5
}

// Stats is a point-in-time snapshot of a Host's counters.
type Stats struct {
	Members    int
	LiveRuns   int
	Delivered  uint64
	SendErrors uint64
	// Sheds counts Start calls rejected with ErrOverloaded by admission
	// control (zero while no watermark is configured).
	Sheds uint64
	// QueueDepth is the current total of undispatched tasks across all
	// shards; PeakQueueDepth is the deepest any single shard's queue has
	// been over the host's lifetime — the number to compare against
	// Config.MaxShardQueue when sizing watermarks.
	QueueDepth     int
	PeakQueueDepth int
	// VerifyClaims and VerifyBatches count the amortized settlement
	// queue's traffic (zero unless Config.AmortizeVerify): claims per
	// batch averages above 1 show cross-group coalescing at work.
	// VerifyBusy is the wall time the settlement lane spent checking —
	// VerifyClaims/VerifyBusy is the lane's claims/sec throughput, which
	// rises with concurrent load as batches coalesce.
	VerifyClaims  uint64
	VerifyBatches uint64
	VerifyBusy    time.Duration
}

// Host is a sharded multi-member, multi-group serving context. Create it
// with NewHost, add members, then start flows with Start and feed the
// transport's inbound traffic through Deliver.
type Host struct {
	cfg Config
	tx  Transmit

	mu sync.RWMutex
	//gkalint:guard mu
	members map[string]*hostMember
	//gkalint:callback
	onPeerDown func(owner *idgka.Member, peer string)
	closed     bool
	//gkalint:guard -

	shards []*shard
	vq     *verifyQueue
	stop   chan struct{}
	wg     sync.WaitGroup

	delivered  atomic.Uint64
	sendErrors atomic.Uint64
	sheds      atomic.Uint64
	peakDepth  atomic.Int64
}

// hostMember is one member plus the live runs the host drives for it.
type hostMember struct {
	mb         *idgka.Member
	sh         *shard
	tickQueued atomic.Bool

	mu sync.Mutex
	//gkalint:guard mu
	runs map[string]*Run
}

func (hm *hostMember) liveRuns() []*Run {
	hm.mu.Lock()
	defer hm.mu.Unlock()
	out := make([]*Run, 0, len(hm.runs))
	for _, r := range hm.runs {
		out = append(out, r)
	}
	return out
}

// task is one unit of shard work: a packet delivery or a tick sweep.
// enq stamps admission into the shard queue, the base of the queue-age
// watermark and the queue-delay histogram.
type task struct {
	hm   *hostMember
	pkt  idgka.Packet
	tick bool
	now  time.Time
	enq  time.Time
}

// shard is one dispatch lane: an unbounded FIFO drained by a single
// worker goroutine. The queue must not block producers — a blocking
// bounded queue would deadlock loopback transports whose workers transmit
// into each other's shards; memory is bounded by shedding at ADMISSION
// instead (Config.MaxShardQueue / MaxShardQueueAge reject new Starts
// once the lane lags, while delivered protocol traffic always queues).
type shard struct {
	idx  int
	mu   sync.Mutex
	cond *sync.Cond
	//gkalint:guard mu
	q      []task
	closed bool
	// runs/groups is the shard's admission-fairness ledger: live runs
	// total and per session id, maintained by Host as runs register and
	// settle.
	runs   int
	groups map[string]int
	//gkalint:guard -
}

func newShard(idx int) *shard {
	s := &shard{idx: idx, groups: map[string]int{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue appends one task and reports the queue depth after the append
// (-1 when the shard is closed and the task dropped).
func (s *shard) enqueue(t task) int {
	t.enq = time.Now()
	s.mu.Lock()
	depth := -1
	if !s.closed {
		s.q = append(s.q, t)
		depth = len(s.q)
		s.cond.Signal()
	}
	s.mu.Unlock()
	return depth
}

func (s *shard) next() (task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.q) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.q) == 0 {
		return task{}, false
	}
	t := s.q[0]
	s.q[0] = task{} // release the payload; append reuses the array tail
	s.q = s.q[1:]
	return t, true
}

// pressure reports the shard's queue depth and the age of its oldest
// queued task — the two admission watermarks.
func (s *shard) pressure(now time.Time) (depth int, age time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.q) > 0 {
		age = now.Sub(s.q[0].enq)
	}
	return len(s.q), age
}

// depth reports the current queue depth.
func (s *shard) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.q)
}

// addRun/dropRun maintain the fairness ledger; exactly one drop pairs
// with every add (the run-registry delete sites guarantee it).
func (s *shard) addRun(sid string) {
	s.mu.Lock()
	s.groups[sid]++
	s.runs++
	s.mu.Unlock()
	mLiveRuns.Add(1)
}

func (s *shard) dropRun(sid string) {
	s.mu.Lock()
	if n := s.groups[sid]; n <= 1 {
		delete(s.groups, sid)
	} else {
		s.groups[sid] = n - 1
	}
	s.runs--
	s.mu.Unlock()
	mLiveRuns.Add(-1)
}

// groupLoad reports the shard's live-run total and the share one group
// holds of it.
func (s *shard) groupLoad(sid string) (runs, group int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs, s.groups[sid]
}

func (s *shard) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// NewHost builds a host and starts its shard workers and ticker.
func NewHost(cfg Config, tx Transmit) *Host {
	h := &Host{
		cfg:     cfg,
		tx:      tx,
		members: map[string]*hostMember{},
		stop:    make(chan struct{}),
	}
	for i := 0; i < cfg.shards(); i++ {
		s := newShard(i)
		h.shards = append(h.shards, s)
		h.wg.Add(1)
		go h.worker(s)
	}
	if cfg.AmortizeVerify {
		h.vq = newVerifyQueue()
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.vq.worker()
		}()
	}
	if h.cfg.tickInterval() > 0 {
		h.wg.Add(1)
		go h.tickLoop()
	}
	return h
}

// shardIndex maps a member identity onto a dispatch lane.
func shardIndex(id string, n int) int {
	f := fnv.New32a()
	_, _ = f.Write([]byte(id))
	return int(f.Sum32() % uint32(n))
}

// AddMember registers a member with the host and installs the host's
// peer-down relay on it (replacing any handler the application set
// directly — use SetPeerDownHandler on the host instead).
func (h *Host) AddMember(mb *idgka.Member) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return errors.New("serve: host is closed")
	}
	id := mb.ID()
	if _, dup := h.members[id]; dup {
		h.mu.Unlock()
		return fmt.Errorf("serve: duplicate member %q", id)
	}
	hm := &hostMember{mb: mb, runs: map[string]*Run{}}
	hm.sh = h.shards[shardIndex(id, len(h.shards))]
	h.members[id] = hm
	h.mu.Unlock()
	if h.vq != nil {
		mb.SetBatchVerifier(h.vq)
	}
	// The member invokes peer-down handlers lock-free, so the relay (and
	// the application callback behind it) may call back into member and
	// host — e.g. to start eviction runs.
	mb.SetPeerDownHandler(func(peer string) {
		h.mu.RLock()
		fn := h.onPeerDown
		h.mu.RUnlock()
		if fn != nil {
			fn(mb, peer)
		}
	})
	return nil
}

// SetPeerDownHandler installs the host-level peer-death callback: it
// fires once per (member, dead peer) pair, identifying which hosted
// member observed the death. The callback may call back into the host
// (the idiomatic reaction starts LeaveSession runs for every group the
// member shares with the dead peer).
func (h *Host) SetPeerDownHandler(f func(owner *idgka.Member, peer string)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.onPeerDown = f
}

// Member returns a hosted member by id, or nil.
func (h *Host) Member(id string) *idgka.Member {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if hm := h.members[id]; hm != nil {
		return hm.mb
	}
	return nil
}

// Deliver routes one inbound packet to the hosted member it addresses
// (enqueued on the member's shard; the wire envelope routes it further to
// the owning session). An empty to fans the packet out to every hosted
// member except the packet's sender — convenient for loopback transports;
// transports that already fan out (the TCP hub) pass the receiving
// member's id explicitly.
func (h *Host) Deliver(to string, p idgka.Packet) error {
	if to == "" {
		h.mu.RLock()
		targets := make([]*hostMember, 0, len(h.members))
		for id, hm := range h.members {
			if id != p.From {
				targets = append(targets, hm)
			}
		}
		h.mu.RUnlock()
		for _, hm := range targets {
			h.enqueue(hm.sh, task{hm: hm, pkt: p})
		}
		return nil
	}
	h.mu.RLock()
	hm := h.members[to]
	h.mu.RUnlock()
	if hm == nil {
		return fmt.Errorf("serve: unknown member %q", to)
	}
	h.enqueue(hm.sh, task{hm: hm, pkt: p})
	return nil
}

// enqueue is the host-side wrapper around shard.enqueue that maintains
// the queue-depth gauges and the host's peak-depth high-water mark.
func (h *Host) enqueue(s *shard, t task) {
	depth := s.enqueue(t)
	if depth < 0 {
		return // shard closed; the task was dropped, nothing queued
	}
	mQueueDepth.Add(1)
	d := int64(depth)
	mQueuePeak.SetMax(d)
	for {
		cur := h.peakDepth.Load()
		if d <= cur || h.peakDepth.CompareAndSwap(cur, d) {
			break
		}
	}
}

// Start begins one flow on a hosted member and returns its Run handle.
// sid names the flow's session id up front (the group identity admission
// control accounts fairness against); start builds the session under
// that id (e.g. mb.NewSession / mb.LeaveSession). The host admits the
// start against the member's shard watermarks BEFORE any session state
// exists — a shed Start returns ErrOverloaded with nothing registered,
// so retrying the same sid later is always safe. Once admitted, the host
// transmits the opening traffic, arms the configured deadline, and from
// then on completes the run from inbound traffic and ticks. A run under
// the same session id supersedes a previous live one, which is settled
// as superseded (mirroring the Session sid-reuse contract).
func (h *Host) Start(memberID, sid string, start func(mb *idgka.Member) (*idgka.Session, error)) (*Run, error) {
	h.mu.RLock()
	hm := h.members[memberID]
	closed := h.closed
	h.mu.RUnlock()
	if hm == nil || closed {
		return nil, fmt.Errorf("serve: unknown member %q (or host closed)", memberID)
	}
	if err := h.admit(hm, sid); err != nil {
		return nil, err
	}
	mStarts.Inc()
	// Session creation and the run-registry swap happen under one lock,
	// so concurrent Starts of one sid order identically at the member and
	// the host: the registry's prev is always the member-superseded
	// handle, never the live successor. (Safe to nest: start() never
	// fires peer-down handlers — those only arise from delivered
	// packets — so nothing re-enters the host while hm.mu is held.)
	hm.mu.Lock()
	sess, err := start(hm.mb)
	if err != nil {
		hm.mu.Unlock()
		return nil, err
	}
	if got := sess.SID(); got != sid {
		hm.mu.Unlock()
		sess.Close()
		return nil, fmt.Errorf("serve: start built session %q but declared sid %q", got, sid)
	}
	r := &Run{hm: hm, sess: sess, sid: sid, started: time.Now(), done: make(chan struct{})}
	prev := hm.runs[r.sid]
	hm.runs[r.sid] = r
	hm.mu.Unlock()
	if prev == nil {
		// A supersede replaces the registry slot in place, so the ledger
		// count carries over from prev; only a fresh slot adds.
		hm.sh.addRun(sid)
	}
	if d := h.cfg.Deadline; d > 0 {
		sess.SetDeadline(time.Now().Add(d))
	}
	if prev != nil {
		// Close marks the stale handle failed without disturbing the
		// successor's flow (the Session sid-reuse contract), so the
		// superseded run settles with a definite error.
		prev.sess.Close()
		prev.finalize()
	}
	// Re-check: a Close that raced this Start may have swept hm.runs
	// before the registration above and would leave the run unsettled
	// forever (workers and ticker are gone).
	h.mu.RLock()
	closed = h.closed
	h.mu.RUnlock()
	if closed {
		r.Cancel()
		return nil, errors.New("serve: host is closed")
	}
	h.transmit(memberID, sess.Outbox())
	h.settleRun(r) // opening transitions can already commit or fail
	return r, nil
}

// worker is one shard's dispatch loop.
func (h *Host) worker(s *shard) {
	defer h.wg.Done()
	for {
		t, ok := s.next()
		if !ok {
			return
		}
		mQueueDepth.Add(-1)
		mQueueDelay.ObserveSince(t.enq)
		if t.tick {
			h.tickMember(t.hm, t.now)
		} else {
			h.deliverTo(t.hm, t.pkt)
		}
	}
}

// deliverTo feeds one packet into a member and transmits the reactions.
func (h *Host) deliverTo(hm *hostMember, p idgka.Packet) {
	reactions := hm.mb.HandlePacket(p)
	h.delivered.Add(1)
	mDelivered.Inc()
	h.transmit(hm.mb.ID(), reactions)
	// The only run a packet can complete is the one its envelope names.
	if sid := engine.EnvelopeSID(p.Payload); sid != "" {
		hm.mu.Lock()
		r := hm.runs[sid]
		hm.mu.Unlock()
		if r != nil {
			h.settleRun(r)
		}
	}
}

// tickLoop is the shared deadline ticker: one clock for every hosted
// member, fanned out as shard tasks so tick work is serialized with the
// member's deliveries and bounded by the worker pool. A member with a
// tick already queued is skipped (ticks coalesce under backlog).
func (h *Host) tickLoop() {
	defer h.wg.Done()
	t := time.NewTicker(h.cfg.tickInterval())
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case now := <-t.C:
			h.mu.RLock()
			for _, hm := range h.members {
				if hm.tickQueued.CompareAndSwap(false, true) {
					h.enqueue(hm.sh, task{hm: hm, tick: true, now: now})
				}
			}
			h.mu.RUnlock()
		}
	}
}

// tickMember sweeps one member's live runs: Tick each session, transmit
// any restart traffic, re-arm the deadline after a restart, settle what
// finished.
func (h *Host) tickMember(hm *hostMember, now time.Time) {
	hm.tickQueued.Store(false)
	for _, r := range hm.liveRuns() {
		_ = r.sess.Tick(now)
		if pkts := r.sess.Outbox(); len(pkts) > 0 {
			h.transmit(hm.mb.ID(), pkts)
		}
		if a := r.sess.Attempts(); a != int(r.attempts.Load()) {
			r.attempts.Store(int32(a))
			if d := h.cfg.Deadline; d > 0 && !r.sess.Done() {
				r.sess.SetDeadline(now.Add(d))
			}
		}
		h.settleRun(r)
	}
}

// settleRun finalizes a run whose session reached a terminal state.
func (h *Host) settleRun(r *Run) {
	if !r.sess.Done() {
		return
	}
	r.hm.mu.Lock()
	dropped := r.hm.runs[r.sid] == r
	if dropped {
		delete(r.hm.runs, r.sid)
	}
	r.hm.mu.Unlock()
	if dropped {
		r.hm.sh.dropRun(r.sid)
	}
	r.finalize()
}

// transmit pushes packets out through the Transmit callback.
func (h *Host) transmit(from string, pkts []idgka.Packet) {
	if h.tx == nil {
		return
	}
	for _, p := range pkts {
		if err := h.tx(from, p); err != nil {
			h.sendErrors.Add(1)
			mSendErrors.Inc()
		}
	}
}

// Stats snapshots the host's counters.
func (h *Host) Stats() Stats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	st := Stats{
		Members:        len(h.members),
		Delivered:      h.delivered.Load(),
		SendErrors:     h.sendErrors.Load(),
		Sheds:          h.sheds.Load(),
		PeakQueueDepth: int(h.peakDepth.Load()),
	}
	for _, s := range h.shards {
		st.QueueDepth += s.depth()
	}
	if h.vq != nil {
		st.VerifyClaims = h.vq.claims.Load()
		st.VerifyBatches = h.vq.batches.Load()
		st.VerifyBusy = time.Duration(h.vq.busyNS.Load())
	}
	for _, hm := range h.members {
		hm.mu.Lock()
		st.LiveRuns += len(hm.runs)
		hm.mu.Unlock()
	}
	return st
}

// Close stops the ticker and shard workers, then cancels every live run
// (their waiters unblock with the session's close error). Idempotent.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	members := make([]*hostMember, 0, len(h.members))
	for _, hm := range h.members {
		members = append(members, hm)
	}
	h.mu.Unlock()
	close(h.stop)
	for _, s := range h.shards {
		s.close()
	}
	if h.vq != nil {
		// Drain the settlement backlog so shard workers blocked in
		// VerifyClaim unblock before the Wait below; late claims from
		// still-running tasks verify in-line.
		h.vq.close()
	}
	h.wg.Wait()
	for _, hm := range members {
		hm.mu.Lock()
		runs := make([]*Run, 0, len(hm.runs))
		for _, r := range hm.runs {
			runs = append(runs, r)
		}
		hm.runs = map[string]*Run{}
		hm.mu.Unlock()
		for _, r := range runs {
			hm.sh.dropRun(r.sid)
			r.sess.Close()
			r.finalize()
		}
	}
}

// Run is the host's handle on one flow it drives to completion.
type Run struct {
	hm       *hostMember
	sess     *idgka.Session
	sid      string
	started  time.Time
	attempts atomic.Int32
	once     sync.Once
	done     chan struct{}
}

// finalize marks the run settled exactly once; a run settling with a
// committed key feeds the time-to-key histogram.
func (r *Run) finalize() {
	r.once.Do(func() {
		if !r.started.IsZero() && r.sess.Err() == nil {
			mTimeToKey.ObserveSince(r.started)
		}
		close(r.done)
	})
}

// Done is closed once the run reached a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// Wait blocks until the run settles and returns its error (nil on a
// committed key).
func (r *Run) Wait() error {
	<-r.done //gkalint:unbounded blocking-by-contract public API; session deadlines and Tick bound settlement, after which finalize closes done
	return r.sess.Err()
}

// SID returns the run's session id.
func (r *Run) SID() string { return r.sid }

// Err returns the session's failure, if any.
func (r *Run) Err() error { return r.sess.Err() }

// Key returns the committed key material, or nil.
func (r *Run) Key() []byte { return r.sess.Key() }

// Roster returns the committed ring, or nil.
func (r *Run) Roster() []string { return r.sess.Roster() }

// Session exposes the underlying handle (e.g. to Close a committed
// group once it has been superseded).
func (r *Run) Session() *idgka.Session { return r.sess }

// Cancel abandons the run: the session is closed (aborting its in-flight
// flow, or releasing its committed group) and waiters unblock.
func (r *Run) Cancel() {
	r.sess.Close()
	r.hm.mu.Lock()
	dropped := r.hm.runs[r.sid] == r
	if dropped {
		delete(r.hm.runs, r.sid)
	}
	r.hm.mu.Unlock()
	if dropped {
		r.hm.sh.dropRun(r.sid)
	}
	r.finalize()
}
