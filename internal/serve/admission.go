package serve

import (
	"errors"
	"fmt"
	"time"

	"idgka/internal/metrics"
)

// ErrOverloaded classifies Start calls shed by admission control: the
// target shard's queue crossed a configured lag watermark (or the group
// exceeded its fair share of a pressured shard), so the host refuses to
// take on a NEW establishment rather than let the backlog grow without
// bound. In-flight protocol traffic is never dropped — load shedding
// happens at admission, not delivery — so every already-admitted run
// still completes. Match with errors.Is; the concrete *OverloadError
// carries the shard's observed state for logs and retry policy.
var ErrOverloaded = errors.New("serve: overloaded")

// OverloadError is the typed rejection admission control returns from
// Host.Start. Callers shed load upstream (back off, fail the request,
// try another host); the run was never registered, so retrying later
// under the same session id is always safe.
type OverloadError struct {
	// Member and SID identify the rejected start.
	Member string
	SID    string
	// Shard is the dispatch lane the member hashes onto; Depth and Age
	// are its queue depth and oldest-task age at the admission check.
	Shard int
	Depth int
	Age   time.Duration
	// Reason names the watermark that tripped: "queue-depth",
	// "queue-age" or "group-fairness".
	Reason string
}

// Error renders the rejection with the shard state that caused it.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: start %s/%s shed (%s): shard %d at depth %d, oldest %v",
		e.Member, e.SID, e.Reason, e.Shard, e.Depth, e.Age.Round(time.Microsecond))
}

// Is lets errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// The serve layer's process-wide metrics surface; every name is
// documented in the docs/OPERATIONS.md reference table (a meta-test
// keeps the two in lockstep).
var (
	mStarts        = metrics.NewCounter("serve_starts_total")
	mSheds         = metrics.NewCounter("serve_sheds_total")
	mDelivered     = metrics.NewCounter("serve_delivered_total")
	mSendErrors    = metrics.NewCounter("serve_send_errors_total")
	mLiveRuns      = metrics.NewGauge("serve_live_runs")
	mQueueDepth    = metrics.NewGauge("serve_queue_depth")
	mQueuePeak     = metrics.NewGauge("serve_queue_peak_depth")
	mQueueDelay    = metrics.NewHistogram("serve_queue_delay_ms")
	mTimeToKey     = metrics.NewHistogram("serve_time_to_key_ms")
	mVerifyClaims  = metrics.NewCounter("serve_verify_claims_total")
	mVerifyBatches = metrics.NewCounter("serve_verify_batches_total")
	mVerifyBusy    = metrics.NewCounter("serve_verify_busy_us_total")
)

// admit is the admission-control gate Start runs BEFORE any session
// state is created: with watermarks configured, a Start aimed at a shard
// whose queue depth or queue age crossed its high watermark is rejected
// with a *OverloadError, and under pressure (half a watermark) a group
// already holding more than its fair share of the shard's live runs is
// rejected first — one giant group cannot starve the shard's other
// sessions of admission. Delivered traffic is never shed: a bounded
// queue would deadlock loopback transports, so the bound is applied to
// new establishments only.
func (h *Host) admit(hm *hostMember, sid string) error {
	maxQ, maxAge := h.cfg.MaxShardQueue, h.cfg.MaxShardQueueAge
	if maxQ <= 0 && maxAge <= 0 {
		return nil
	}
	depth, age := hm.sh.pressure(time.Now())
	reason := ""
	switch {
	case maxQ > 0 && depth >= maxQ:
		reason = "queue-depth"
	case maxAge > 0 && age >= maxAge:
		reason = "queue-age"
	default:
		pressured := (maxQ > 0 && 2*depth >= maxQ) || (maxAge > 0 && 2*age >= maxAge)
		if pressured {
			runs, group := hm.sh.groupLoad(sid)
			// Fairness bites only when OTHER groups hold runs on this
			// shard — with nobody to starve, a lone group may fill it.
			if runs > group && group+1 > fairLimit(runs+1, h.cfg.fairShare()) {
				reason = "group-fairness"
			}
		}
	}
	if reason == "" {
		return nil
	}
	h.sheds.Add(1)
	mSheds.Inc()
	return &OverloadError{
		Member: hm.mb.ID(), SID: sid, Shard: hm.sh.idx,
		Depth: depth, Age: age, Reason: reason,
	}
}

// fairLimit is the most live runs one group may hold of a pressured
// shard's total: the configured share, never below one run.
func fairLimit(total int, share float64) int {
	limit := int(share * float64(total))
	if limit < 1 {
		limit = 1
	}
	return limit
}
