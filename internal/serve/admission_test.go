package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"idgka"
	"idgka/internal/metrics"
)

// stuffShard parks n no-op tasks on a shard WITHOUT signalling its
// worker: appended under the shard lock with no cond.Signal, the worker
// stays asleep in next() and the queue depth holds exactly where the
// test put it — deterministic admission pressure, no timing games.
func stuffShard(s *shard, hm *hostMember, n int, enq time.Time) {
	s.mu.Lock()
	for i := 0; i < n; i++ {
		s.q = append(s.q, task{hm: hm, tick: true, now: enq, enq: enq})
	}
	s.mu.Unlock()
}

// drainShard empties a stuffed shard's queue.
func drainShard(s *shard) {
	s.mu.Lock()
	s.q = nil
	s.mu.Unlock()
}

// TestOverloadShedsBeforeRegistration is the no-half-started-state
// regression: a Start shed by the depth watermark returns ErrOverloaded
// BEFORE the start callback runs, so no session exists at the member, no
// run is registered at the host — and the same sid Starts cleanly once
// the backlog drains.
func TestOverloadShedsBeforeRegistration(t *testing.T) {
	h, lb, ids := newTestHost(t, 2, Config{
		Shards: 1, TickInterval: -1, MaxShardQueue: 4,
	})
	roster := []string{ids[0], ids[1]}
	lb.addRoster("ov", roster)
	h.mu.RLock()
	hm := h.members[ids[0]]
	h.mu.RUnlock()

	stuffShard(hm.sh, hm, 4, time.Now())
	built := false
	r, err := h.Start(ids[0], "ov", func(mb *idgka.Member) (*idgka.Session, error) {
		built = true
		return mb.NewSession("ov", roster)
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v (run %v)", err, r)
	}
	if built {
		t.Fatal("start callback ran despite the shed — session state leaked")
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("error is not an *OverloadError: %v", err)
	}
	if oe.Reason != "queue-depth" || oe.Depth != 4 || oe.Member != ids[0] || oe.SID != "ov" {
		t.Fatalf("overload detail = %+v", oe)
	}
	hm.mu.Lock()
	_, live := hm.runs["ov"]
	hm.mu.Unlock()
	if live {
		t.Fatal("shed Start left a registered run")
	}
	if st := h.Stats(); st.Sheds != 1 || st.LiveRuns != 0 {
		t.Fatalf("stats after shed: %+v", st)
	}

	// Backlog gone, the same sid is admitted — a shed is always safely
	// retryable.
	drainShard(hm.sh)
	r, err = h.Start(ids[0], "ov", func(mb *idgka.Member) (*idgka.Session, error) {
		return mb.NewSession("ov", roster)
	})
	if err != nil {
		t.Fatalf("post-drain Start still rejected: %v", err)
	}
	r.Cancel()
}

// TestOverloadQueueAgeWatermark: the age watermark sheds when the oldest
// queued task has waited too long, independent of depth.
func TestOverloadQueueAgeWatermark(t *testing.T) {
	h, _, ids := newTestHost(t, 2, Config{
		Shards: 1, TickInterval: -1, MaxShardQueueAge: 50 * time.Millisecond,
	})
	h.mu.RLock()
	hm := h.members[ids[0]]
	h.mu.RUnlock()

	// One task, but stamped old: depth is far below any bound, age trips.
	stuffShard(hm.sh, hm, 1, time.Now().Add(-time.Second))
	_, err := h.Start(ids[0], "age", func(mb *idgka.Member) (*idgka.Session, error) {
		return mb.NewSession("age", []string{ids[0], ids[1]})
	})
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue-age" {
		t.Fatalf("want queue-age shed, got %v", err)
	}
	drainShard(hm.sh)
}

// TestGroupFairnessShedsHogFirst: under pressure (half a watermark) a
// group holding more than its fair share of the shard's live runs is
// shed while a small group is still admitted — and with no other group
// on the shard, the lone group is never shed below the high watermark.
func TestGroupFairnessShedsHogFirst(t *testing.T) {
	h, lb, ids := newTestHost(t, 2, Config{
		Shards: 1, TickInterval: -1, MaxShardQueue: 8,
	})
	roster := []string{ids[0], ids[1]}
	h.mu.RLock()
	hm := h.members[ids[0]]
	h.mu.RUnlock()
	sh := hm.sh

	// Pressure: half the depth watermark, not over it.
	stuffShard(sh, hm, 4, time.Now())
	defer drainShard(sh)

	// A lone group may fill a pressured shard — nobody to starve.
	sh.addRun("hog")
	sh.addRun("hog")
	sh.addRun("hog")
	if err := h.admit(hm, "hog"); err != nil {
		t.Fatalf("lone group shed under pressure: %v", err)
	}
	// Another group appears; the hog is now over its 0.5 share.
	sh.addRun("small")
	var oe *OverloadError
	if err := h.admit(hm, "hog"); !errors.As(err, &oe) || oe.Reason != "group-fairness" {
		t.Fatalf("want group-fairness shed for the hog, got %v", err)
	}
	// The small group still gets in.
	if err := h.admit(hm, "small"); err != nil {
		t.Fatalf("small group shed alongside the hog: %v", err)
	}
	// Fairness never bites an unpressured shard.
	drainShard(sh)
	if err := h.admit(hm, "hog"); err != nil {
		t.Fatalf("fairness shed without pressure: %v", err)
	}
	sh.dropRun("hog")
	sh.dropRun("hog")
	sh.dropRun("hog")
	sh.dropRun("small")

	lb.addRoster("unused", roster)
}

// TestStatsAndMetricsConsistencyUnderLoad hammers one host with
// concurrent group establishments while readers poll Host.Stats and
// render every default-registry metric; under -race this proves the
// snapshots are never torn, and the assertions prove the counters are
// monotone and the histogram JSON stays well-formed.
func TestStatsAndMetricsConsistencyUnderLoad(t *testing.T) {
	h, lb, ids := newTestHost(t, 4, Config{})
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var prev Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := h.Stats()
			if st.Delivered < prev.Delivered || st.Sheds < prev.Sheds {
				t.Errorf("counter went backwards: %+v then %+v", prev, st)
				return
			}
			if st.QueueDepth < 0 || st.LiveRuns < 0 {
				t.Errorf("negative level: %+v", st)
				return
			}
			prev = st
		}
	}()
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Every instrument's String() must stay a valid JSON value
			// even while observers are mid-flight.
			metrics.Default.Do(func(name string, v metrics.Var) {
				var any any
				if err := json.Unmarshal([]byte(v.String()), &any); err != nil {
					t.Errorf("metric %s rendered invalid JSON: %v", name, err)
				}
			})
		}
	}()

	const rounds, groups = 3, 6
	for round := 0; round < rounds; round++ {
		all := make([][]*Run, groups)
		for g := 0; g < groups; g++ {
			roster := []string{ids[g%4], ids[(g+1)%4], ids[(g+2)%4]}
			sid := fmt.Sprintf("cons/%d/%02d", round, g)
			lb.addRoster(sid, roster)
			all[g] = startGroup(t, h, sid, roster, func(mb *idgka.Member, _ string) (*idgka.Session, error) {
				return mb.NewSession(sid, roster)
			})
		}
		for g := 0; g < groups; g++ {
			awaitGroup(t, fmt.Sprintf("cons %d/%d", round, g), all[g])
		}
	}
	close(stop)
	readers.Wait()

	st := h.Stats()
	if st.Delivered == 0 || st.LiveRuns != 0 {
		t.Fatalf("final stats: %+v", st)
	}
	if st.PeakQueueDepth < 1 {
		t.Fatalf("peak queue depth never recorded: %+v", st)
	}
}
