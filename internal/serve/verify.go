package serve

import (
	"crypto/rand"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"idgka/internal/sigs/gq"
)

// verifyQueue is the host's amortized GQ settlement lane: shard workers
// executing a group's finish phase block in VerifyClaim while their claim
// sits in the pending list, and one dedicated worker drains EVERYTHING
// pending per wakeup, settling the whole batch with a single
// random-linear-combination check (gq.VerifyClaimsRLC). Under concurrent
// load the batches form naturally — while one batch is being checked,
// the next batch accumulates — so per-claim cost falls as the number of
// concurrently keying groups grows. A failed combined check falls back
// to individual verdicts inside VerifyClaimsRLC, and each waiter gets
// exactly its own claim's verdict.
type verifyQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	//gkalint:guard mu
	pend   []pendingClaim
	closed bool
	//gkalint:guard -

	claims  atomic.Uint64
	batches atomic.Uint64
	busyNS  atomic.Uint64 // wall time spent inside settle — the verify
	// lane's busy time, denominator of its claims/sec throughput
}

type pendingClaim struct {
	claim *gq.Claim
	done  chan error
}

func newVerifyQueue() *verifyQueue {
	q := &verifyQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// VerifyClaim implements engine.BatchVerifier: enqueue and block until
// the batch containing this claim settles. After close, claims are
// checked in-line so late finishes still get correct verdicts.
func (q *verifyQueue) VerifyClaim(cl *gq.Claim) error {
	if cl == nil {
		return errors.New("serve: nil claim")
	}
	done := make(chan error, 1)
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return cl.Verify()
	}
	q.pend = append(q.pend, pendingClaim{claim: cl, done: done})
	q.cond.Signal()
	q.mu.Unlock()
	return <-done //gkalint:unbounded done is buffered (cap 1) and the worker settles every enqueued claim, draining the backlog even across close
}

// gather yield budgets: after the first claim arrives, the worker yields
// the processor so every other runnable submitter gets to finish its claim
// and enqueue before settlement — without this, a single-P scheduler would
// run the worker the moment the first claim lands and every batch would be
// a singleton. Gathering stops after two consecutive yields that grew
// nothing (the remaining goroutines are not about to produce claims) or
// after a hard cap, so a steady trickle cannot starve settlement.
const (
	gatherMaxYields = 64
	gatherIdleStop  = 2
)

// worker drains the queue until closed AND empty: claims that arrived
// before close still settle, so shard workers blocked in VerifyClaim
// always unblock.
func (q *verifyQueue) worker() {
	for {
		q.mu.Lock()
		for len(q.pend) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pend) == 0 {
			q.mu.Unlock()
			return
		}
		idle := 0
		for y := 0; y < gatherMaxYields && idle < gatherIdleStop && !q.closed; y++ {
			before := len(q.pend)
			q.mu.Unlock()
			runtime.Gosched()
			q.mu.Lock()
			if len(q.pend) == before {
				idle++
			} else {
				idle = 0
			}
		}
		batch := q.pend
		q.pend = nil
		q.mu.Unlock()
		q.settle(batch)
	}
}

// settle checks one coalesced batch and delivers per-claim verdicts.
func (q *verifyQueue) settle(batch []pendingClaim) {
	start := time.Now()
	defer func() {
		busy := time.Since(start)
		q.busyNS.Add(uint64(busy))
		mVerifyBusy.Add(uint64(busy.Microseconds()))
	}()
	q.batches.Add(1)
	q.claims.Add(uint64(len(batch)))
	mVerifyBatches.Inc()
	mVerifyClaims.Add(uint64(len(batch)))
	if len(batch) == 1 {
		batch[0].done <- batch[0].claim.Verify() //gkalint:unbounded per-claim done channels are buffered (cap 1) with exactly one verdict each
		return
	}
	claims := make([]*gq.Claim, len(batch))
	for i, p := range batch {
		claims[i] = p.claim
	}
	if err := gq.VerifyClaimsRLC(rand.Reader, claims); err == nil {
		for _, p := range batch {
			p.done <- nil //gkalint:unbounded per-claim done channels are buffered (cap 1) with exactly one verdict each
		}
		return
	}
	// The combined equation failed: deliver individual verdicts so only
	// the actually-bad claims' groups fail.
	for _, p := range batch {
		p.done <- p.claim.Verify() //gkalint:unbounded per-claim done channels are buffered (cap 1) with exactly one verdict each
	}
}

// close stops the worker after the backlog drains; subsequent
// VerifyClaim calls verify in-line.
func (q *verifyQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
