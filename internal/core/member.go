// Package core implements the paper's contribution: the two-round ID-based
// authenticated group key agreement of Section 4 (Burmester-Desmedt keying
// authenticated by a single GQ batch verification) and the four dynamic
// protocols of Section 7 (Join, Leave, Merge, Partition).
//
// Each participant is a *Member holding its identity key and session state;
// package-level orchestrators (RunInitial, RunJoin, RunLeave, RunPartition,
// RunMerge) drive the message rounds over a netsim.Network, running
// per-member computation concurrently (one goroutine per member, as the
// nodes would compute in the field) and metering every operation the
// paper's complexity analysis charges.
package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/meter"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
)

// Message type labels on the simulated medium.
const (
	MsgRound1   = "gka/round1"   // m_i  = U_i ‖ z_i ‖ t_i
	MsgRound2   = "gka/round2"   // m'_i = U_i ‖ X_i ‖ s_i
	MsgJoin1    = "join/round1"  // m_{n+1} = U_{n+1} ‖ z_{n+1} ‖ σ_{n+1}
	MsgJoinCtl  = "join/round2a" // m'_1  = U_1 ‖ E_K(K*‖U_1)
	MsgJoinLast = "join/round2b" // m''_n = U_n ‖ E_K(K_DH‖U_n) ‖ z_n ‖ σ'_n
	MsgJoinFwd  = "join/round3"  // m'''_n = U_n → U_{n+1}: E_{K_DH}(K*‖U_n)
	MsgLeave1   = "leave/round1" // m_j  = U_j ‖ z'_j ‖ t'_j
	MsgLeave2   = "leave/round2" // m'_i = U_i ‖ X'_i ‖ s̄_i
	MsgMerge1   = "merge/round1" // controller advertisement
	MsgMerge2   = "merge/round2" // cross+intra wrapped keys
	MsgMerge3   = "merge/round3" // re-wrapped foreign keys
)

// Config carries the knobs shared by all members of a deployment.
type Config struct {
	// Set is the public parameter set from the PKG.
	Set *params.Set
	// Rand is the randomness source (crypto/rand when nil).
	Rand io.Reader
	// MaxRetries bounds the paper's "all members retransmit again" loop on
	// verification failure. Zero means 2.
	MaxRetries int
	// StrictNonceRefresh makes even-indexed survivors of Leave/Partition
	// draw fresh GQ commitments (and broadcast the new t'_j in Round 1)
	// instead of reusing τ_i as the paper specifies. The paper's reuse is a
	// security weakness (two GQ responses under one commitment leak the
	// long-term key); see DESIGN.md §4. Off by default for paper fidelity.
	StrictNonceRefresh bool
}

func (c Config) rand() io.Reader {
	if c.Rand == nil {
		return rand.Reader
	}
	return c.Rand
}

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 2
	}
	return c.MaxRetries
}

// Session is the per-member view of an established group: the ring roster,
// the member's own secrets, everything it has learned about peers, and the
// current group key.
type Session struct {
	// Roster is the ring order U_1 … U_n (index 0 is the trusted
	// controller U_1).
	Roster []string
	// pos maps identity to 0-based ring position.
	pos map[string]int
	// R is the member's own Diffie-Hellman exponent r_i.
	R *big.Int
	// Tau is the member's GQ commitment τ_i, retained because the
	// Leave/Partition protocols reuse it for even-indexed survivors.
	Tau *big.Int
	// Z holds the latest z_j seen for each member (own included).
	Z map[string]*big.Int
	// T holds the latest GQ commitment image t_j for each member.
	T map[string]*big.Int
	// Key is the current group key K.
	Key *big.Int
}

func newSession(roster []string) *Session {
	s := &Session{
		Roster: append([]string(nil), roster...),
		pos:    make(map[string]int, len(roster)),
		Z:      map[string]*big.Int{},
		T:      map[string]*big.Int{},
	}
	for i, id := range roster {
		s.pos[id] = i
	}
	return s
}

// Position returns the 0-based ring index of an identity, or -1.
func (s *Session) Position(id string) int {
	if p, ok := s.pos[id]; ok {
		return p
	}
	return -1
}

// Size returns the ring size.
func (s *Session) Size() int { return len(s.Roster) }

// Controller returns the trusted controller U_1.
func (s *Session) Controller() string { return s.Roster[0] }

// Last returns U_n, the closing member of the ring.
func (s *Session) Last() string { return s.Roster[len(s.Roster)-1] }

// neighbor returns the id at offset d from position i around the ring.
func (s *Session) neighbor(i, d int) string {
	n := len(s.Roster)
	return s.Roster[((i+d)%n+n)%n]
}

// Member is one protocol participant.
type Member struct {
	cfg Config
	id  string
	sk  *gq.PrivateKey
	m   *meter.Meter

	sess *Session

	// Transient state for an in-flight initial/leave round.
	pending pendingRound
}

// pendingRound buffers the values a member accumulates between rounds of
// the initial protocol and the Leave/Partition protocols.
type pendingRound struct {
	roster []string // ring being (re)keyed
	r      *big.Int
	tau    *big.Int
	z      map[string]*big.Int
	t      map[string]*big.Int
	x      map[string]*big.Int
	s      map[string]*big.Int
	bigZ   *big.Int
	c      *big.Int
	ownX   *big.Int
	ownS   *big.Int
}

// NewMember constructs a participant from its extracted GQ identity key.
// The meter may be nil for uninstrumented runs.
func NewMember(cfg Config, sk *gq.PrivateKey, m *meter.Meter) (*Member, error) {
	if cfg.Set == nil {
		return nil, errors.New("core: nil parameter set")
	}
	if sk == nil {
		return nil, errors.New("core: nil identity key")
	}
	return &Member{cfg: cfg, id: sk.ID, sk: sk, m: m}, nil
}

// ID returns the member's identity.
func (mb *Member) ID() string { return mb.id }

// Meter returns the member's operation meter (may be nil).
func (mb *Member) Meter() *meter.Meter { return mb.m }

// Session returns the member's current session (nil before the initial
// GKA completes).
func (mb *Member) Session() *Session { return mb.sess }

// Key returns the current group key, or nil.
func (mb *Member) Key() *big.Int {
	if mb.sess == nil {
		return nil
	}
	return mb.sess.Key
}

// errRetry marks verification failures that trigger the paper's
// "all members retransmit again" path.
type errRetry struct{ cause error }

func (e errRetry) Error() string {
	return fmt.Sprintf("core: verification failed (retransmit): %v", e.cause)
}
func (e errRetry) Unwrap() error { return e.cause }

// IsRetryable reports whether an orchestrator error is the protocol-level
// "retransmit" signal.
func IsRetryable(err error) bool {
	var r errRetry
	return errors.As(err, &r)
}
