// Package core implements the paper's contribution — the two-round
// ID-based authenticated group key agreement of Section 4 and the four
// dynamic protocols of Section 7 (Join, Leave, Merge, Partition) — as
// lockstep orchestrators over the event-driven protocol engine of
// internal/engine.
//
// Each participant is a *Member wrapping an engine.Machine (the
// per-member protocol state machine); the package-level orchestrators
// (RunInitial, RunJoin, RunLeave, RunPartition, RunMerge) start the same
// flow on every machine and then pump delivered messages between them
// over a netsim.Medium until every machine commits, running per-member
// computation concurrently (one goroutine per member, as the nodes would
// compute in the field). The engine meters every operation the paper's
// complexity analysis charges and emits byte-identical wire traffic in
// this lockstep mode, so the Tables 1–5 reproduction is unaffected by the
// refactor. Event-driven deployments (cmd/gkanet, the idgka.Session API,
// netsim's async mode) drive the same engine without these orchestrators.
package core

import (
	"errors"
	"math/big"

	"idgka/internal/engine"
	"idgka/internal/meter"
	"idgka/internal/sigs/gq"
)

// Message type labels on the simulated medium (owned by internal/engine).
const (
	MsgRound1   = engine.MsgRound1   // m_i  = U_i ‖ z_i ‖ t_i
	MsgRound2   = engine.MsgRound2   // m'_i = U_i ‖ X_i ‖ s_i
	MsgJoin1    = engine.MsgJoin1    // m_{n+1} = U_{n+1} ‖ z_{n+1} ‖ σ_{n+1}
	MsgJoinCtl  = engine.MsgJoinCtl  // m'_1  = U_1 ‖ E_K(K*‖U_1)
	MsgJoinLast = engine.MsgJoinLast // m''_n = U_n ‖ E_K(K_DH‖U_n) ‖ z_n ‖ σ'_n
	MsgJoinFwd  = engine.MsgJoinFwd  // m'''_n = U_n → U_{n+1}: E_{K_DH}(K*‖U_n)
	MsgLeave1   = engine.MsgLeave1   // m_j  = U_j ‖ z'_j ‖ t'_j
	MsgLeave2   = engine.MsgLeave2   // m'_i = U_i ‖ X'_i ‖ s̄_i
	MsgMerge1   = engine.MsgMerge1   // controller advertisement
	MsgMerge2   = engine.MsgMerge2   // cross+intra wrapped keys
	MsgMerge3   = engine.MsgMerge3   // re-wrapped foreign keys
)

// Config carries the knobs shared by all members of a deployment; see the
// field docs in internal/engine.
type Config = engine.Config

// Session is the per-member view of an established group: the ring roster,
// the member's own secrets, everything it has learned about peers, and the
// current group key.
type Session = engine.Group

// Member is one protocol participant: a thin handle on the member's
// event-driven protocol machine.
type Member struct {
	cfg  Config
	mach *engine.Machine
}

// NewMember constructs a participant from its extracted GQ identity key.
// The meter may be nil for uninstrumented runs.
func NewMember(cfg Config, sk *gq.PrivateKey, m *meter.Meter) (*Member, error) {
	if cfg.Set == nil {
		return nil, errors.New("core: nil parameter set")
	}
	if sk == nil {
		return nil, errors.New("core: nil identity key")
	}
	mach, err := engine.NewMachine(cfg, sk, m)
	if err != nil {
		return nil, err
	}
	return &Member{cfg: cfg, mach: mach}, nil
}

// ID returns the member's identity.
func (mb *Member) ID() string { return mb.mach.ID() }

// Meter returns the member's operation meter (may be nil).
func (mb *Member) Meter() *meter.Meter { return mb.mach.Meter() }

// SetBatchVerifier installs (or clears) the host-level claim verifier on
// the member's machine; see engine.BatchVerifier.
func (mb *Member) SetBatchVerifier(bv engine.BatchVerifier) { mb.mach.SetBatchVerifier(bv) }

// Machine returns the member's underlying protocol engine, for callers
// that drive the member event-by-event instead of through the lockstep
// orchestrators.
func (mb *Member) Machine() *engine.Machine { return mb.mach }

// Session returns the member's current session (nil before the initial
// GKA completes).
func (mb *Member) Session() *Session { return mb.mach.Group() }

// Key returns the current group key, or nil.
func (mb *Member) Key() *big.Int { return mb.mach.Key() }

// IsRetryable reports whether an orchestrator error is the protocol-level
// "retransmit" signal.
func IsRetryable(err error) bool { return engine.IsRetryable(err) }

// errNoSession is returned by dynamic protocols invoked before RunInitial.
var errNoSession = engine.ErrNoSession
