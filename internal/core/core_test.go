package core

import (
	"fmt"
	"math/big"
	"testing"

	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
)

// buildGroup extracts keys and wires up n members on a fresh network.
func buildGroup(t testing.TB, n int, cfgMod func(*Config)) (*netsim.Network, []*Member) {
	t.Helper()
	set := params.Default()
	cfg := Config{Set: set.Public()}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	net := netsim.New()
	members := make([]*Member, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("U%02d", i+1)
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			t.Fatal(err)
		}
		m := meter.New()
		mb, err := NewMember(cfg, sk, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Register(id, m); err != nil {
			t.Fatal(err)
		}
		members[i] = mb
	}
	return net, members
}

// assertAgreement checks that every member holds the same non-nil key.
func assertAgreement(t *testing.T, members []*Member) *big.Int {
	t.Helper()
	key := members[0].Key()
	if key == nil || key.Sign() == 0 {
		t.Fatal("controller has no key")
	}
	for _, mb := range members[1:] {
		if mb.Key() == nil || mb.Key().Cmp(key) != 0 {
			t.Fatalf("member %s disagrees on the group key", mb.ID())
		}
	}
	return key
}

func TestInitialGKAAgreement(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			net, members := buildGroup(t, n, nil)
			if err := RunInitial(net, members); err != nil {
				t.Fatalf("RunInitial: %v", err)
			}
			assertAgreement(t, members)
		})
	}
}

func TestInitialGKARejectsTinyGroup(t *testing.T) {
	net, members := buildGroup(t, 1, nil)
	if err := RunInitial(net, members); err == nil {
		t.Fatal("singleton group accepted")
	}
}

// TestInitialCountersMatchTable1 verifies the paper's Table 1 row for the
// proposed scheme: per-user 3 exponentiations, 2 message transmissions,
// 2(n-1) receptions, 1 signature generation, 1 (batch) verification, no
// certificates, no MapToPoint.
func TestInitialCountersMatchTable1(t *testing.T) {
	n := 6
	net, members := buildGroup(t, n, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	for _, mb := range members {
		r := mb.Meter().Report()
		if r.Exp != 3 {
			t.Errorf("%s: Exp = %d, want 3", mb.ID(), r.Exp)
		}
		if r.MsgTx != 2 {
			t.Errorf("%s: MsgTx = %d, want 2", mb.ID(), r.MsgTx)
		}
		if r.MsgRx != 2*(n-1) {
			t.Errorf("%s: MsgRx = %d, want %d", mb.ID(), r.MsgRx, 2*(n-1))
		}
		if r.SignGen[meter.SchemeGQ] != 1 {
			t.Errorf("%s: SignGen = %d, want 1", mb.ID(), r.SignGen[meter.SchemeGQ])
		}
		if r.SignVer[meter.SchemeGQ] != 1 {
			t.Errorf("%s: SignVer = %d, want 1 (batch)", mb.ID(), r.SignVer[meter.SchemeGQ])
		}
		if r.CertTx != 0 || r.CertRx != 0 || r.CertVer != 0 || r.MapToPoint != 0 {
			t.Errorf("%s: unexpected cert/pairing ops: %+v", mb.ID(), r)
		}
	}
}

func TestInitialRecoversFromCorruptedRound2(t *testing.T) {
	net, members := buildGroup(t, 4, func(c *Config) { c.MaxRetries = 3 })
	// Corrupt the first round-2 broadcast: batch verification (or Lemma 1)
	// must fail and the paper's retransmission path must recover.
	net.SetFaults(netsim.FaultPlan{CorruptFirst: MsgRound2})
	if err := RunInitial(net, members); err != nil {
		t.Fatalf("RunInitial with fault: %v", err)
	}
	assertAgreement(t, members)
}

func TestInitialFailsAfterPersistentCorruption(t *testing.T) {
	net, members := buildGroup(t, 3, func(c *Config) { c.MaxRetries = 1 })
	// Re-arm corruption before every attempt by corrupting round 1 too;
	// a single FaultPlan disarms, so use drop of round1 permanently via
	// repeated SetFaults through a wrapper is not available — instead use
	// two sequential faults and only 1 retry.
	net.SetFaults(netsim.FaultPlan{CorruptFirst: MsgRound1})
	err := RunInitial(net, members)
	// First attempt fails; the retry succeeds (fault disarmed), so this
	// must succeed — which demonstrates the retry path works with round-1
	// corruption as well.
	if err != nil {
		t.Fatalf("expected recovery on retry: %v", err)
	}
	assertAgreement(t, members)
}

func TestJoinProducesSharedKeyAndRoster(t *testing.T) {
	net, members := buildGroup(t, 5, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	oldKey := assertAgreement(t, members)

	// Build the joiner.
	set := params.Default()
	sk, err := gq.Extract(set.RSA, "U99")
	if err != nil {
		t.Fatal(err)
	}
	jm := meter.New()
	joiner, err := NewMember(Config{Set: set.Public()}, sk, jm)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Register("U99", jm); err != nil {
		t.Fatal(err)
	}
	if err := RunJoin(net, members, joiner); err != nil {
		t.Fatalf("RunJoin: %v", err)
	}
	all := append(append([]*Member{}, members...), joiner)
	newKey := assertAgreement(t, all)
	if newKey.Cmp(oldKey) == 0 {
		t.Fatal("join did not refresh the group key (no backward secrecy)")
	}
	for _, mb := range all {
		if got := mb.Session().Size(); got != 6 {
			t.Fatalf("%s: roster size %d, want 6", mb.ID(), got)
		}
		if mb.Session().Last() != "U99" {
			t.Fatalf("%s: joiner not last in ring", mb.ID())
		}
	}
}

// TestJoinCounters verifies the footnote of Table 4: only U_1 and U_{n+1}
// perform 2 exponentiations each (U_n performs its DH exponentiation), the
// rest perform none; 4 messages hit the medium.
func TestJoinCounters(t *testing.T) {
	net, members := buildGroup(t, 5, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	for _, mb := range members {
		mb.Meter().Reset()
	}
	net.ResetTotals()

	set := params.Default()
	sk, _ := gq.Extract(set.RSA, "U99")
	jm := meter.New()
	joiner, _ := NewMember(Config{Set: set.Public()}, sk, jm)
	if err := net.Register("U99", jm); err != nil {
		t.Fatal(err)
	}
	if err := RunJoin(net, members, joiner); err != nil {
		t.Fatal(err)
	}

	u1 := members[0].Meter().Report()
	un := members[len(members)-1].Meter().Report()
	j := joiner.Meter().Report()
	if u1.Exp != 2 {
		t.Errorf("U1 Exp = %d, want 2", u1.Exp)
	}
	if un.Exp != 1 {
		t.Errorf("Un Exp = %d, want 1", un.Exp)
	}
	if j.Exp != 2 {
		t.Errorf("joiner Exp = %d, want 2", j.Exp)
	}
	for _, mb := range members[1 : len(members)-1] {
		r := mb.Meter().Report()
		if r.Exp != 0 {
			t.Errorf("%s Exp = %d, want 0", mb.ID(), r.Exp)
		}
		if r.SymDec != 2 {
			t.Errorf("%s SymDec = %d, want 2", mb.ID(), r.SymDec)
		}
	}
	msgs, _ := net.Totals()
	if msgs != 4 {
		t.Errorf("join used %d messages, protocol text implies 4 (paper's table says 5)", msgs)
	}
}

func TestLeaveExcludesLeaverAndRefreshesKey(t *testing.T) {
	net, members := buildGroup(t, 6, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	oldKey := assertAgreement(t, members)
	leaver := members[2] // U03
	if err := RunLeave(net, members, leaver.ID()); err != nil {
		t.Fatalf("RunLeave: %v", err)
	}
	remain := append(append([]*Member{}, members[:2]...), members[3:]...)
	newKey := assertAgreement(t, remain)
	if newKey.Cmp(oldKey) == 0 {
		t.Fatal("leave did not refresh the key (no forward secrecy)")
	}
	// The leaver's stale session key must differ from the new key.
	if leaver.Key().Cmp(newKey) == 0 {
		t.Fatal("leaver can compute the new key")
	}
	for _, mb := range remain {
		if mb.Session().Size() != 5 {
			t.Fatalf("%s: ring size %d after leave, want 5", mb.ID(), mb.Session().Size())
		}
		if mb.Session().Position(leaver.ID()) != -1 {
			t.Fatalf("%s still lists the leaver", mb.ID())
		}
	}
}

// TestLeaveCounters verifies footnote c of Table 4: odd-indexed survivors
// perform 3 exponentiations, even-indexed 2.
func TestLeaveCounters(t *testing.T) {
	n := 7
	net, members := buildGroup(t, n, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	for _, mb := range members {
		mb.Meter().Reset()
	}
	leaver := members[3] // U04, even-indexed (1-based 4)
	if err := RunLeave(net, members, leaver.ID()); err != nil {
		t.Fatal(err)
	}
	for i, mb := range members {
		if mb == leaver {
			continue
		}
		r := mb.Meter().Report()
		oneBased := i + 1
		want := 2
		if oneBased%2 == 1 {
			want = 3
		}
		if r.Exp != want {
			t.Errorf("%s (pos %d): Exp = %d, want %d", mb.ID(), oneBased, r.Exp, want)
		}
		if r.SignGen[meter.SchemeGQ] != 1 || r.SignVer[meter.SchemeGQ] != 1 {
			t.Errorf("%s: sign ops %d/%d, want 1/1", mb.ID(), r.SignGen[meter.SchemeGQ], r.SignVer[meter.SchemeGQ])
		}
	}
}

func TestPartitionRemovesMany(t *testing.T) {
	net, members := buildGroup(t, 8, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	oldKey := assertAgreement(t, members)
	leavers := []string{members[1].ID(), members[4].ID(), members[6].ID()}
	if err := RunPartition(net, members, leavers); err != nil {
		t.Fatalf("RunPartition: %v", err)
	}
	var remain []*Member
	out := map[string]bool{}
	for _, l := range leavers {
		out[l] = true
	}
	for _, mb := range members {
		if !out[mb.ID()] {
			remain = append(remain, mb)
		}
	}
	newKey := assertAgreement(t, remain)
	if newKey.Cmp(oldKey) == 0 {
		t.Fatal("partition did not refresh the key")
	}
	if remain[0].Session().Size() != 5 {
		t.Fatalf("ring size %d, want 5", remain[0].Session().Size())
	}
}

func TestPartitionValidation(t *testing.T) {
	net, members := buildGroup(t, 4, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	if err := RunPartition(net, members, nil); err == nil {
		t.Fatal("empty leaver set accepted")
	}
	if err := RunPartition(net, members, []string{"nobody"}); err == nil {
		t.Fatal("unknown leaver accepted")
	}
	if err := RunPartition(net, members, []string{members[0].ID(), members[1].ID(), members[2].ID()}); err == nil {
		t.Fatal("partition to singleton accepted")
	}
}

func TestMergeTwoGroups(t *testing.T) {
	netA, groupA := buildGroup(t, 4, nil)
	if err := RunInitial(netA, groupA); err != nil {
		t.Fatal(err)
	}
	// Group B on its own medium first, then both join a common medium.
	set := params.Default()
	netB := netsim.New()
	var groupB []*Member
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("V%02d", i+1)
		sk, _ := gq.Extract(set.RSA, id)
		m := meter.New()
		mb, _ := NewMember(Config{Set: set.Public()}, sk, m)
		if err := netB.Register(id, m); err != nil {
			t.Fatal(err)
		}
		groupB = append(groupB, mb)
	}
	if err := RunInitial(netB, groupB); err != nil {
		t.Fatal(err)
	}
	keyA := assertAgreement(t, groupA)
	keyB := assertAgreement(t, groupB)

	// The merged network: register B members on A's medium.
	for _, mb := range groupB {
		if err := netA.Register(mb.ID(), mb.Meter()); err != nil {
			t.Fatal(err)
		}
	}
	if err := RunMerge(netA, groupA, groupB); err != nil {
		t.Fatalf("RunMerge: %v", err)
	}
	all := append(append([]*Member{}, groupA...), groupB...)
	newKey := assertAgreement(t, all)
	if newKey.Cmp(keyA) == 0 || newKey.Cmp(keyB) == 0 {
		t.Fatal("merged key must differ from both old keys")
	}
	for _, mb := range all {
		if mb.Session().Size() != 7 {
			t.Fatalf("%s: merged ring size %d, want 7", mb.ID(), mb.Session().Size())
		}
	}
}

// TestMergeCounters verifies footnote d of Table 4: only the two
// controllers exponentiate (4 each); 6 messages for a 2-group merge.
func TestMergeCounters(t *testing.T) {
	net, groupA := buildGroup(t, 4, nil)
	if err := RunInitial(net, groupA); err != nil {
		t.Fatal(err)
	}
	set := params.Default()
	var groupB []*Member
	netB := netsim.New()
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("V%02d", i+1)
		sk, _ := gq.Extract(set.RSA, id)
		m := meter.New()
		mb, _ := NewMember(Config{Set: set.Public()}, sk, m)
		_ = netB.Register(id, m)
		groupB = append(groupB, mb)
	}
	if err := RunInitial(netB, groupB); err != nil {
		t.Fatal(err)
	}
	for _, mb := range append(append([]*Member{}, groupA...), groupB...) {
		mb.Meter().Reset()
		if err := func() error {
			if mb.ID()[0] == 'V' {
				return net.Register(mb.ID(), mb.Meter())
			}
			return nil
		}(); err != nil {
			t.Fatal(err)
		}
	}
	net.ResetTotals()
	if err := RunMerge(net, groupA, groupB); err != nil {
		t.Fatal(err)
	}
	u1 := groupA[0].Meter().Report()
	uB := groupB[0].Meter().Report()
	if u1.Exp != 4 {
		t.Errorf("U1 Exp = %d, want 4", u1.Exp)
	}
	if uB.Exp != 4 {
		t.Errorf("U_{n+1} Exp = %d, want 4", uB.Exp)
	}
	for _, mb := range append(append([]*Member{}, groupA[1:]...), groupB[1:]...) {
		if r := mb.Meter().Report(); r.Exp != 0 {
			t.Errorf("%s Exp = %d, want 0", mb.ID(), r.Exp)
		}
	}
	msgs, _ := net.Totals()
	if msgs != 6 {
		t.Errorf("merge used %d messages, want 6", msgs)
	}
}

func TestMergeMultiThreeGroups(t *testing.T) {
	set := params.Default()
	net := netsim.New()
	mk := func(prefix string, n int) []*Member {
		sub := netsim.New()
		var g []*Member
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("%s%02d", prefix, i+1)
			sk, _ := gq.Extract(set.RSA, id)
			m := meter.New()
			mb, _ := NewMember(Config{Set: set.Public()}, sk, m)
			_ = sub.Register(id, m)
			g = append(g, mb)
		}
		if err := RunInitial(sub, g); err != nil {
			t.Fatal(err)
		}
		for _, mb := range g {
			if err := net.Register(mb.ID(), mb.Meter()); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	a, b, c := mk("A", 3), mk("B", 2), mk("C", 2)
	merged, err := RunMergeMulti(net, a, b, c)
	if err != nil {
		t.Fatalf("RunMergeMulti: %v", err)
	}
	if len(merged) != 7 {
		t.Fatalf("merged size %d, want 7", len(merged))
	}
	assertAgreement(t, merged)
}

func TestDynamicLifecycle(t *testing.T) {
	// A realistic MANET session: initial GKA, a join, a leave, another
	// join, a partition — keys must stay consistent throughout.
	net, members := buildGroup(t, 5, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	set := params.Default()
	addMember := func(id string) *Member {
		sk, _ := gq.Extract(set.RSA, id)
		m := meter.New()
		mb, _ := NewMember(Config{Set: set.Public()}, sk, m)
		if err := net.Register(id, m); err != nil {
			t.Fatal(err)
		}
		return mb
	}
	j1 := addMember("J01")
	if err := RunJoin(net, members, j1); err != nil {
		t.Fatalf("join 1: %v", err)
	}
	group := append(append([]*Member{}, members...), j1)
	assertAgreement(t, group)

	// U02 leaves.
	if err := RunLeave(net, group, "U02"); err != nil {
		t.Fatalf("leave: %v", err)
	}
	var g2 []*Member
	for _, mb := range group {
		if mb.ID() != "U02" {
			g2 = append(g2, mb)
		}
	}
	assertAgreement(t, g2)

	// Another join.
	j2 := addMember("J02")
	if err := RunJoin(net, g2, j2); err != nil {
		t.Fatalf("join 2: %v", err)
	}
	g3 := append(append([]*Member{}, g2...), j2)
	assertAgreement(t, g3)

	// Partition: two members drop off.
	if err := RunPartition(net, g3, []string{g3[1].ID(), g3[3].ID()}); err != nil {
		t.Fatalf("partition: %v", err)
	}
	var g4 []*Member
	for _, mb := range g3 {
		if mb.ID() != g3[1].ID() && mb.ID() != g3[3].ID() {
			g4 = append(g4, mb)
		}
	}
	assertAgreement(t, g4)
}

func TestStrictNonceRefreshMode(t *testing.T) {
	net, members := buildGroup(t, 6, func(c *Config) { c.StrictNonceRefresh = true })
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	if err := RunLeave(net, members, members[3].ID()); err != nil {
		t.Fatalf("strict-mode leave: %v", err)
	}
	remain := append(append([]*Member{}, members[:3]...), members[4:]...)
	assertAgreement(t, remain)
	// In strict mode every survivor broadcasts in round 1 (fresh t'), so
	// tx counts are n-1 round-1 messages + n-1 round-2 messages.
	var totalTx int
	for _, mb := range remain {
		totalTx += mb.Meter().Report().MsgTx
	}
	// Initial: 2 per surviving member (the leaver's 2 initial messages are
	// not summed); leave round1: 5 (all survivors in strict mode), round2: 5.
	want := 2*5 + 5 + 5
	if totalTx != want {
		t.Errorf("strict-mode total tx = %d, want %d", totalTx, want)
	}
}

// TestPaperNonceReuseWeakness documents the weakness carried from the
// paper: in default (paper-faithful) mode, an even-indexed survivor reuses
// its GQ commitment τ across the initial run and a leave, producing two
// responses s = τ·S^c, s' = τ·S^c' under distinct challenges. The quotient
// s/s' = S^(c-c') would let an adversary recover the long-term key S by
// computing (c-c')^{-1} mod e-order... (see DESIGN.md §4). Here we verify
// the observable precondition: the commitment is indeed reused.
func TestPaperNonceReuseWeakness(t *testing.T) {
	net, members := buildGroup(t, 6, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	evenMember := members[1] // U02, 1-based index 2
	tauBefore := evenMember.Session().Tau
	if err := RunLeave(net, members, members[4].ID()); err != nil {
		t.Fatal(err)
	}
	if evenMember.Session().Tau != tauBefore {
		t.Fatal("paper-faithful mode should reuse the even member's commitment")
	}
	// Strict mode must NOT reuse: covered by TestStrictNonceRefreshMode's
	// protocol success; verify directly here.
	net2, members2 := buildGroup(t, 6, func(c *Config) { c.StrictNonceRefresh = true })
	if err := RunInitial(net2, members2); err != nil {
		t.Fatal(err)
	}
	even2 := members2[1]
	tau2 := even2.Session().Tau
	if err := RunLeave(net2, members2, members2[4].ID()); err != nil {
		t.Fatal(err)
	}
	if even2.Session().Tau == tau2 {
		t.Fatal("strict mode must refresh the commitment")
	}
}

func TestJoinRequiresSession(t *testing.T) {
	net, members := buildGroup(t, 3, nil)
	set := params.Default()
	sk, _ := gq.Extract(set.RSA, "U99")
	joiner, _ := NewMember(Config{Set: set.Public()}, sk, meter.New())
	_ = net.Register("U99", meter.New())
	if err := RunJoin(net, members, joiner); err == nil {
		t.Fatal("join without established session accepted")
	}
}

// TestFailedFlowDoesNotPoisonNextRun: a flow that dies mid-way (dropped
// message -> stall) must leave the members' machines clean, so the group
// can run another protocol afterwards.
func TestFailedFlowDoesNotPoisonNextRun(t *testing.T) {
	net, members := buildGroup(t, 4, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	set := params.Default()
	sk, _ := gq.Extract(set.RSA, "U99")
	jm := meter.New()
	joiner, _ := NewMember(Config{Set: set.Public()}, sk, jm)
	if err := net.Register("U99", jm); err != nil {
		t.Fatal(err)
	}
	// Drop the controller's join broadcast: the join stalls and fails.
	net.SetFaults(netsim.FaultPlan{DropFirst: MsgJoinCtl})
	err := RunJoin(net, members, joiner)
	if err == nil {
		t.Fatal("join with dropped control message succeeded")
	}
	// The failure must NOT invite a retry: members' sessions are now
	// asymmetric (the controller may have committed), so a re-run cannot
	// converge.
	if IsRetryable(err) {
		t.Errorf("stalled join reported as retryable: %v", err)
	}
	// The group must still be able to re-key (old sessions intact,
	// machines not stuck on the dead join flow).
	if err := RunLeave(net, members, members[1].ID()); err != nil {
		t.Fatalf("leave after failed join: %v", err)
	}
	remain := append(append([]*Member{}, members[:1]...), members[2:]...)
	assertAgreement(t, remain)
}
