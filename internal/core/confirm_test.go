package core

import (
	"math/big"
	"testing"
)

func TestConfirmKeySucceeds(t *testing.T) {
	net, members := buildGroup(t, 4, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	if err := ConfirmKey(net, members); err != nil {
		t.Fatalf("ConfirmKey: %v", err)
	}
}

func TestConfirmKeyDetectsDivergence(t *testing.T) {
	net, members := buildGroup(t, 3, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	// Corrupt one member's key.
	members[1].Session().Key = new(big.Int).Add(members[1].Session().Key, big.NewInt(1))
	if err := ConfirmKey(net, members); err == nil {
		t.Fatal("diverged key passed confirmation")
	}
}

func TestConfirmKeyRequiresSession(t *testing.T) {
	net, members := buildGroup(t, 3, nil)
	if err := ConfirmKey(net, members); err == nil {
		t.Fatal("confirmation without session accepted")
	}
	if err := ConfirmKey(net, nil); err == nil {
		t.Fatal("empty member list accepted")
	}
}

func TestConfirmKeyAfterDynamicEvents(t *testing.T) {
	net, members := buildGroup(t, 5, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	if err := RunLeave(net, members, members[2].ID()); err != nil {
		t.Fatal(err)
	}
	remain := append(append([]*Member{}, members[:2]...), members[3:]...)
	if err := ConfirmKey(net, remain); err != nil {
		t.Fatalf("confirmation after leave: %v", err)
	}
}
