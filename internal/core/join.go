package core

import (
	"errors"

	"idgka/internal/engine"
	"idgka/internal/netsim"
)

// RunJoin executes the three-round Join protocol of Section 7, admitting
// joiner into the group currently held by members (which must share an
// established session; members must be in ring order). After success every
// member of the new group, including the joiner, holds the new key
// K' = K* · K_{U_n U_{n+1}} (equation 6) and a session with the joiner
// appended to the ring between U_n and U_1.
//
// Message and operation counts follow the paper exactly: 4 messages on the
// medium (the paper's Table 4 lists 5; see EXPERIMENTS.md), 2
// exponentiations for U_1 and U_{n+1}, 1 for U_n, none for the rest.
func RunJoin(net netsim.Medium, members []*Member, joiner *Member) error {
	if len(members) < 2 {
		return errors.New("core: join needs an existing group of >= 2")
	}
	for _, mb := range members {
		if mb.Session() == nil || mb.Session().Key == nil {
			return errNoSession
		}
	}
	roster := rosterOf(members)
	all := append(append([]*Member{}, members...), joiner)
	return runFlowFatal(net, all, func(mb *Member) ([]engine.Outbound, []engine.Event, error) {
		return mb.mach.StartJoin(lockstepSID, lockstepBase, roster, joiner.ID())
	}, "join")
}
