package core

import (
	"errors"
	"fmt"
	"math/big"

	"idgka/internal/mathx"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/sigs/gq"
	"idgka/internal/sym"
	"idgka/internal/wire"
)

// RunJoin executes the three-round Join protocol of Section 7, admitting
// joiner into the group currently held by members (which must share an
// established session; members must be in ring order). After success every
// member of the new group, including the joiner, holds the new key
// K' = K* · K_{U_n U_{n+1}} (equation 6) and a session with the joiner
// appended to the ring between U_n and U_1.
//
// Message and operation counts follow the paper exactly: 4 messages on the
// medium (the paper's Table 4 lists 5; see EXPERIMENTS.md), 2
// exponentiations for U_1 and U_{n+1}, 1 for U_n, none for the rest.
func RunJoin(net netsim.Medium, members []*Member, joiner *Member) error {
	if len(members) < 2 {
		return errors.New("core: join needs an existing group of >= 2")
	}
	for _, mb := range members {
		if mb.sess == nil || mb.sess.Key == nil {
			return errNoSession
		}
	}
	u1 := members[0]
	un := members[len(members)-1]
	sg := u1.cfg.Set.Schnorr

	// --- Round 1: the joiner broadcasts z_{n+1} under a GQ signature. ---
	rJoin, err := mathx.RandScalar(joiner.cfg.rand(), sg.Q)
	if err != nil {
		return err
	}
	zJoin := sg.Exp(rJoin)
	joiner.m.Exp(1)
	signed := wire.NewBuffer().PutString(joiner.id).PutBig(zJoin).Bytes()
	sig, err := joiner.sk.Sign(joiner.cfg.rand(), signed)
	if err != nil {
		return err
	}
	joiner.m.SignGen(meter.SchemeGQ, 1)
	m1 := wire.NewBuffer().PutString(joiner.id).PutBig(zJoin).PutBig(sig.S).PutBig(sig.C).Bytes()
	if err := net.Broadcast(joiner.id, MsgJoin1, m1); err != nil {
		return err
	}

	// Every existing member receives m_{n+1}; U_1 and U_n act on it.
	type joinR1 struct {
		id  string
		z   *big.Int
		sig *gq.Signature
	}
	parseR1 := func(mb *Member) (*joinR1, error) {
		msgs, err := net.RecvType(mb.id, MsgJoin1)
		if err != nil {
			return nil, err
		}
		if len(msgs) != 1 {
			return nil, fmt.Errorf("core: join round1: expected 1 message, got %d", len(msgs))
		}
		r := wire.NewReader(msgs[0].Payload)
		out := &joinR1{id: r.String(), z: r.Big()}
		out.sig = &gq.Signature{S: r.Big(), C: r.Big()}
		if err := r.Close(); err != nil {
			return nil, err
		}
		if out.id != msgs[0].From {
			return nil, errors.New("core: join round1 identity mismatch")
		}
		return out, nil
	}
	verifyR1 := func(mb *Member, r1 *joinR1) error {
		payload := wire.NewBuffer().PutString(r1.id).PutBig(r1.z).Bytes()
		err := gq.Verify(gq.ParamsFrom(mb.cfg.Set.RSA), r1.id, payload, r1.sig)
		mb.m.SignVer(meter.SchemeGQ, 1)
		return err
	}

	// --- Round 2 ---
	// U_1: verify σ_{n+1}; compute K* with a fresh r'_1 (equation 5);
	// broadcast E_K(K* ‖ U_1).
	r1u1, err := parseR1(u1)
	if err != nil {
		return err
	}
	if err := verifyR1(u1, r1u1); err != nil {
		return fmt.Errorf("core: U1 rejects joiner: %w", err)
	}
	sessU1 := u1.sess
	z2 := sessU1.Z[sessU1.neighbor(0, 1)]
	zn := sessU1.Z[sessU1.Last()]
	rPrime, err := mathx.RandScalar(u1.cfg.rand(), sg.Q)
	if err != nil {
		return err
	}
	// K* = K · (z_2·z_n)^{-r_1} · (z_2·z_{n+1})^{r'_1} mod p.
	t1 := new(big.Int).Mul(z2, zn)
	t1.Mod(t1, sg.P)
	t1, err = mathx.ModExp(t1, new(big.Int).Neg(sessU1.R), sg.P)
	if err != nil {
		return err
	}
	t2 := new(big.Int).Mul(z2, r1u1.z)
	t2.Mod(t2, sg.P)
	t2.Exp(t2, rPrime, sg.P)
	u1.m.Exp(2)
	kStar := new(big.Int).Mul(sessU1.Key, t1)
	kStar.Mod(kStar, sg.P)
	kStar.Mul(kStar, t2)
	kStar.Mod(kStar, sg.P)

	cipherK, err := sym.NewFromBig(sessU1.Key)
	if err != nil {
		return err
	}
	wrapped, err := cipherK.WrapSecret(u1.cfg.rand(), kStar, u1.id)
	if err != nil {
		return err
	}
	u1.m.Sym(1, 0)
	m2a := wire.NewBuffer().PutString(u1.id).PutBytes(wrapped).Bytes()
	if err := net.Broadcast(u1.id, MsgJoinCtl, m2a); err != nil {
		return err
	}

	// U_n: verify σ_{n+1}; DH key with the joiner; broadcast
	// E_K(K_DH ‖ U_n) ‖ z_n under a GQ signature.
	r1un, err := parseR1(un)
	if err != nil {
		return err
	}
	if err := verifyR1(un, r1un); err != nil {
		return fmt.Errorf("core: Un rejects joiner: %w", err)
	}
	kDH := new(big.Int).Exp(r1un.z, un.sess.R, sg.P)
	un.m.Exp(1)
	cipherKn, err := sym.NewFromBig(un.sess.Key)
	if err != nil {
		return err
	}
	wrappedDH, err := cipherKn.WrapSecret(un.cfg.rand(), kDH, un.id)
	if err != nil {
		return err
	}
	un.m.Sym(1, 0)
	znOwn := un.sess.Z[un.id]
	signedUn := wire.NewBuffer().PutBytes(wrappedDH).PutBig(znOwn).Bytes()
	sigUn, err := un.sk.Sign(un.cfg.rand(), signedUn)
	if err != nil {
		return err
	}
	un.m.SignGen(meter.SchemeGQ, 1)
	m2b := wire.NewBuffer().PutString(un.id).PutBytes(wrappedDH).PutBig(znOwn).
		PutBig(sigUn.S).PutBig(sigUn.C).Bytes()
	if err := net.Broadcast(un.id, MsgJoinLast, m2b); err != nil {
		return err
	}

	// --- Round 3 ---
	// Joiner: verify σ'_n, compute the DH key.
	joinerMsgs, err := net.RecvType(joiner.id, MsgJoinLast)
	if err != nil {
		return err
	}
	if len(joinerMsgs) != 1 {
		return fmt.Errorf("core: joiner expected 1 round-2 message from U_n, got %d", len(joinerMsgs))
	}
	jr := wire.NewReader(joinerMsgs[0].Payload)
	unID := jr.String()
	jWrappedDH := jr.Bytes()
	jzn := jr.Big()
	jsig := &gq.Signature{S: jr.Big(), C: jr.Big()}
	if err := jr.Close(); err != nil {
		return err
	}
	signedCheck := wire.NewBuffer().PutBytes(jWrappedDH).PutBig(jzn).Bytes()
	if err := gq.Verify(gq.ParamsFrom(joiner.cfg.Set.RSA), unID, signedCheck, jsig); err != nil {
		joiner.m.SignVer(meter.SchemeGQ, 1)
		return fmt.Errorf("core: joiner rejects U_n: %w", err)
	}
	joiner.m.SignVer(meter.SchemeGQ, 1)
	kDHJoiner := new(big.Int).Exp(jzn, rJoin, sg.P)
	joiner.m.Exp(1)
	// The joiner also discards the U_1 broadcast it cannot read yet.
	_, _ = net.RecvType(joiner.id, MsgJoinCtl)

	// U_n: decrypt K* from m'_1, re-wrap under the DH key for the joiner.
	unCtl, err := net.RecvType(un.id, MsgJoinCtl)
	if err != nil {
		return err
	}
	if len(unCtl) != 1 {
		return fmt.Errorf("core: U_n expected 1 controller message, got %d", len(unCtl))
	}
	ur := wire.NewReader(unCtl[0].Payload)
	_ = ur.String()
	unWrapped := ur.Bytes()
	if err := ur.Close(); err != nil {
		return err
	}
	kStarAtUn, err := cipherKn.UnwrapSecret(unWrapped, u1.id)
	if err != nil {
		return fmt.Errorf("core: U_n failed to unwrap K*: %w", err)
	}
	un.m.Sym(0, 1)
	cipherDH, err := sym.NewFromBig(kDH)
	if err != nil {
		return err
	}
	fwd, err := cipherDH.WrapSecret(un.cfg.rand(), kStarAtUn, un.id)
	if err != nil {
		return err
	}
	un.m.Sym(1, 0)
	// Append U_n's session tables so the joiner learns the group's current
	// z/t state (metered as state transfer; see DESIGN.md §4).
	tables := encodeStateTables(un.sess)
	m3 := wire.NewBuffer().PutString(un.id).PutBytes(fwd).Bytes()
	m3 = append(m3, tables...)
	if err := net.SendState(un.id, joiner.id, MsgJoinFwd, m3, len(tables)); err != nil {
		return err
	}

	// --- Key computation (everyone). ---
	newRoster := append(rosterOf(members), joiner.id)

	// Joiner: unwrap K* via the DH key and combine.
	fwdMsgs, err := net.RecvType(joiner.id, MsgJoinFwd)
	if err != nil {
		return err
	}
	if len(fwdMsgs) != 1 {
		return fmt.Errorf("core: joiner expected forwarded K*, got %d messages", len(fwdMsgs))
	}
	fr := wire.NewReader(fwdMsgs[0].Payload)
	_ = fr.String()
	fwdWrapped := fr.Bytes()
	joinerTables := fr // remaining fields are the state tables, read below
	cipherDHJoiner, err := sym.NewFromBig(kDHJoiner)
	if err != nil {
		return err
	}
	kStarJoiner, err := cipherDHJoiner.UnwrapSecret(fwdWrapped, un.id)
	if err != nil {
		return fmt.Errorf("core: joiner failed to unwrap K*: %w", err)
	}
	joiner.m.Sym(0, 1)

	// Build each member's new session.
	finalize := func(mb *Member, kStar, kDH *big.Int, r *big.Int) {
		key := new(big.Int).Mul(kStar, kDH)
		key.Mod(key, sg.P)
		old := mb.sess
		sess := newSession(newRoster)
		sess.R = r
		if old != nil {
			sess.Tau = old.Tau
			for id, z := range old.Z {
				sess.Z[id] = z
			}
			for id, t := range old.T {
				sess.T[id] = t
			}
		}
		sess.Z[joiner.id] = zJoin
		sess.Key = key
		mb.sess = sess
	}

	// Ordinary members decrypt both broadcasts.
	for _, mb := range members[1 : len(members)-1] {
		ctl, err := net.RecvType(mb.id, MsgJoinCtl)
		if err != nil {
			return err
		}
		last, err := net.RecvType(mb.id, MsgJoinLast)
		if err != nil {
			return err
		}
		if len(ctl) != 1 || len(last) != 1 {
			return fmt.Errorf("core: member %s missing join broadcasts", mb.id)
		}
		cr := wire.NewReader(ctl[0].Payload)
		_ = cr.String()
		wrappedStar := cr.Bytes()
		if err := cr.Close(); err != nil {
			return err
		}
		lr := wire.NewReader(last[0].Payload)
		_ = lr.String()
		wrappedDHm := lr.Bytes()
		_ = lr.Big() // z_n (already known)
		_ = lr.Big() // signature S (covered by U_1/U_n verification; see paper)
		_ = lr.Big() // signature C
		if err := lr.Close(); err != nil {
			return err
		}
		cm, err := sym.NewFromBig(mb.sess.Key)
		if err != nil {
			return err
		}
		ks, err := cm.UnwrapSecret(wrappedStar, u1.id)
		if err != nil {
			return fmt.Errorf("core: %s failed to unwrap K*: %w", mb.id, err)
		}
		kd, err := cm.UnwrapSecret(wrappedDHm, un.id)
		if err != nil {
			return fmt.Errorf("core: %s failed to unwrap K_DH: %w", mb.id, err)
		}
		mb.m.Sym(0, 2)
		finalize(mb, ks, kd, mb.sess.R)
	}

	// U_1 decrypts K_DH from U_n's broadcast.
	u1Last, err := net.RecvType(u1.id, MsgJoinLast)
	if err != nil {
		return err
	}
	if len(u1Last) != 1 {
		return errors.New("core: U_1 missing U_n broadcast")
	}
	u1r := wire.NewReader(u1Last[0].Payload)
	_ = u1r.String()
	u1WrappedDH := u1r.Bytes()
	_ = u1r.Big()
	_ = u1r.Big()
	_ = u1r.Big()
	if err := u1r.Close(); err != nil {
		return err
	}
	kDHAtU1, err := cipherK.UnwrapSecret(u1WrappedDH, un.id)
	if err != nil {
		return fmt.Errorf("core: U_1 failed to unwrap K_DH: %w", err)
	}
	u1.m.Sym(0, 1)
	finalize(u1, kStar, kDHAtU1, rPrime) // U_1's exponent becomes r'_1

	// U_n combines its locally known K* and K_DH.
	finalize(un, kStarAtUn, kDH, un.sess.R)

	// Joiner's session: ingest the transferred state tables, then record
	// its own z.
	finalize(joiner, kStarJoiner, kDHJoiner, rJoin)
	joiner.sess.Z[joiner.id] = zJoin
	if err := decodeStateTables(joinerTables, joiner.sess); err != nil {
		return fmt.Errorf("core: joiner state tables: %w", err)
	}
	if err := joinerTables.Close(); err != nil {
		return fmt.Errorf("core: joiner state tables: %w", err)
	}

	// Drain the joiner round-1 broadcast from uninvolved members' queues.
	for _, mb := range members[1 : len(members)-1] {
		_, _ = net.RecvType(mb.id, MsgJoin1)
	}
	return nil
}
