package core

import (
	"errors"
	"fmt"
	"math/big"

	"idgka/internal/mathx"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/sigs/gq"
	"idgka/internal/sym"
	"idgka/internal/wire"
)

// RunMerge executes the three-round Merge protocol of Section 7, fusing
// group A (ring U_1…U_n) and group B (ring U_{n+1}…U_{n+m}) into a single
// keyed group with ring A‖B. Only the two controllers U_1 and U_{n+1}
// perform exponentiations (4 each); every other member does symmetric
// decryptions only. The final key is K' = K*_A · K*_B (equation 9).
func RunMerge(net netsim.Medium, groupA, groupB []*Member) error {
	if len(groupA) < 2 || len(groupB) < 2 {
		return errors.New("core: merge needs two groups of >= 2")
	}
	for _, mb := range append(append([]*Member{}, groupA...), groupB...) {
		if mb.sess == nil || mb.sess.Key == nil {
			return errNoSession
		}
	}
	u1 := groupA[0] // controller of A
	uB := groupB[0] // controller of B (the paper's U_{n+1})
	sg := u1.cfg.Set.Schnorr

	// --- Round 1: both controllers advertise fresh blinded exponents and
	// their ring-closing member's z under GQ signatures. ---
	type advert struct {
		id    string
		zNew  *big.Int // z̃: fresh controller exponent image
		zLast *big.Int // z of the ring-closing member (z_n / z_{n+m})
		sig   *gq.Signature
	}
	announce := func(ctl *Member) (*big.Int, error) {
		rNew, err := mathx.RandScalar(ctl.cfg.rand(), sg.Q)
		if err != nil {
			return nil, err
		}
		zNew := sg.Exp(rNew)
		ctl.m.Exp(1)
		zLast := ctl.sess.Z[ctl.sess.Last()]
		signed := wire.NewBuffer().PutString(ctl.id).PutBig(zNew).PutBig(zLast).Bytes()
		sig, err := ctl.sk.Sign(ctl.cfg.rand(), signed)
		if err != nil {
			return nil, err
		}
		ctl.m.SignGen(meter.SchemeGQ, 1)
		payload := wire.NewBuffer().PutString(ctl.id).PutBig(zNew).PutBig(zLast).
			PutBig(sig.S).PutBig(sig.C).Bytes()
		if err := net.Broadcast(ctl.id, MsgMerge1, payload); err != nil {
			return nil, err
		}
		return rNew, nil
	}
	rNewA, err := announce(u1)
	if err != nil {
		return err
	}
	rNewB, err := announce(uB)
	if err != nil {
		return err
	}
	recvAdvert := func(mb *Member, from string) (*advert, error) {
		msgs, err := net.RecvType(mb.id, MsgMerge1)
		if err != nil {
			return nil, err
		}
		var found *advert
		for _, msg := range msgs {
			r := wire.NewReader(msg.Payload)
			a := &advert{id: r.String(), zNew: r.Big(), zLast: r.Big()}
			a.sig = &gq.Signature{S: r.Big(), C: r.Big()}
			if err := r.Close(); err != nil {
				return nil, err
			}
			if a.id == from && msg.From == from {
				found = a
			}
		}
		if found == nil {
			return nil, fmt.Errorf("core: %s missing merge advert from %s", mb.id, from)
		}
		return found, nil
	}
	verifyAdvert := func(mb *Member, a *advert) error {
		signed := wire.NewBuffer().PutString(a.id).PutBig(a.zNew).PutBig(a.zLast).Bytes()
		err := gq.Verify(gq.ParamsFrom(mb.cfg.Set.RSA), a.id, signed, a.sig)
		mb.m.SignVer(meter.SchemeGQ, 1)
		return err
	}

	// --- Round 2: each controller verifies the other's advert, derives the
	// cross-controller DH key, folds its group key into K*, and broadcasts
	// K* wrapped under both the old group key and the DH key. ---
	type fold struct {
		kStar *big.Int
		kDH   *big.Int
	}
	foldController := func(ctl *Member, peerCtl string, rNew *big.Int, firstOfRing bool) (*fold, error) {
		a, err := recvAdvert(ctl, peerCtl)
		if err != nil {
			return nil, err
		}
		if err := verifyAdvert(ctl, a); err != nil {
			return nil, fmt.Errorf("core: %s rejects merge advert: %w", ctl.id, err)
		}
		kDH := new(big.Int).Exp(a.zNew, rNew, sg.P)
		ctl.m.Exp(1)
		sess := ctl.sess
		var kStar *big.Int
		if firstOfRing {
			// U_1: K*_A = K_A · (z_2·z_n)^{-r_1} · (z_2·z_{n+m})^{r'_1}.
			z2 := sess.Z[sess.neighbor(0, 1)]
			zn := sess.Z[sess.Last()]
			t1 := new(big.Int).Mul(z2, zn)
			t1.Mod(t1, sg.P)
			t1, err = mathx.ModExp(t1, new(big.Int).Neg(sess.R), sg.P)
			if err != nil {
				return nil, err
			}
			t2 := new(big.Int).Mul(z2, a.zLast) // z_{n+m} from the advert
			t2.Mod(t2, sg.P)
			t2.Exp(t2, rNew, sg.P)
			ctl.m.Exp(2)
			kStar = new(big.Int).Mul(sess.Key, t1)
			kStar.Mod(kStar, sg.P)
			kStar.Mul(kStar, t2)
			kStar.Mod(kStar, sg.P)
		} else {
			// U_{n+1}: K*_B = K_B · (z_n·z_{n+2})^{r'_{n+1}} · (z_{n+2}·z_{n+m})^{-r_{n+1}}.
			zNext := sess.Z[sess.neighbor(0, 1)]   // z_{n+2}
			zLast := sess.Z[sess.Last()]           // z_{n+m}
			t1 := new(big.Int).Mul(a.zLast, zNext) // z_n from the advert
			t1.Mod(t1, sg.P)
			t1.Exp(t1, rNew, sg.P)
			t2 := new(big.Int).Mul(zNext, zLast)
			t2.Mod(t2, sg.P)
			t2, err = mathx.ModExp(t2, new(big.Int).Neg(sess.R), sg.P)
			if err != nil {
				return nil, err
			}
			ctl.m.Exp(2)
			kStar = new(big.Int).Mul(sess.Key, t1)
			kStar.Mod(kStar, sg.P)
			kStar.Mul(kStar, t2)
			kStar.Mod(kStar, sg.P)
		}
		// Wrap K* under the old group key and under the DH key.
		cg, err := sym.NewFromBig(sess.Key)
		if err != nil {
			return nil, err
		}
		wrapGroup, err := cg.WrapSecret(ctl.cfg.rand(), kStar, ctl.id)
		if err != nil {
			return nil, err
		}
		cd, err := sym.NewFromBig(kDH)
		if err != nil {
			return nil, err
		}
		wrapDH, err := cd.WrapSecret(ctl.cfg.rand(), kStar, ctl.id)
		if err != nil {
			return nil, err
		}
		ctl.m.Sym(2, 0)
		payload := wire.NewBuffer().PutString(ctl.id).PutBytes(wrapGroup).PutBytes(wrapDH).Bytes()
		if err := net.Broadcast(ctl.id, MsgMerge2, payload); err != nil {
			return nil, err
		}
		return &fold{kStar: kStar, kDH: kDH}, nil
	}
	foldA, err := foldController(u1, uB.id, rNewA, true)
	if err != nil {
		return err
	}
	foldB, err := foldController(uB, u1.id, rNewB, false)
	if err != nil {
		return err
	}

	// --- Round 3: each controller decrypts the other's K* via the DH key
	// and re-broadcasts it wrapped under its own group key. ---
	recvRound2 := func(mb *Member, from string) (wrapGroup, wrapDH []byte, err error) {
		msgs, err := net.RecvType(mb.id, MsgMerge2)
		if err != nil {
			return nil, nil, err
		}
		for _, msg := range msgs {
			r := wire.NewReader(msg.Payload)
			id := r.String()
			wg := r.Bytes()
			wd := r.Bytes()
			if err := r.Close(); err != nil {
				return nil, nil, err
			}
			if id == from && msg.From == from {
				wrapGroup, wrapDH = wg, wd
			}
		}
		if wrapGroup == nil {
			return nil, nil, fmt.Errorf("core: %s missing merge round2 from %s", mb.id, from)
		}
		return wrapGroup, wrapDH, nil
	}
	crossDecrypt := func(ctl *Member, peer string, kDH *big.Int) (*big.Int, error) {
		_, wrapDH, err := recvRound2(ctl, peer)
		if err != nil {
			return nil, err
		}
		cd, err := sym.NewFromBig(kDH)
		if err != nil {
			return nil, err
		}
		peerKStar, err := cd.UnwrapSecret(wrapDH, peer)
		if err != nil {
			return nil, fmt.Errorf("core: %s failed to unwrap peer K*: %w", ctl.id, err)
		}
		ctl.m.Sym(0, 1)
		// Re-wrap under own group key for the rest of the ring.
		cg, err := sym.NewFromBig(ctl.sess.Key)
		if err != nil {
			return nil, err
		}
		rewrapped, err := cg.WrapSecret(ctl.cfg.rand(), peerKStar, ctl.id)
		if err != nil {
			return nil, err
		}
		ctl.m.Sym(1, 0)
		// Append the controller's session tables so the other group learns
		// this ring's z/t state (metered as state transfer).
		tables := encodeStateTables(ctl.sess)
		payload := wire.NewBuffer().PutString(ctl.id).PutBytes(rewrapped).Bytes()
		payload = append(payload, tables...)
		if err := net.BroadcastState(ctl.id, MsgMerge3, payload, len(tables)); err != nil {
			return nil, err
		}
		return peerKStar, nil
	}
	kStarBatU1, err := crossDecrypt(u1, uB.id, foldA.kDH)
	if err != nil {
		return err
	}
	kStarAatUB, err := crossDecrypt(uB, u1.id, foldB.kDH)
	if err != nil {
		return err
	}

	// --- Key computation. ---
	newRoster := append(rosterOf(groupA), rosterOf(groupB)...)
	zNewA := sg.Exp(rNewA) // z̃_1 (broadcast in round 1)
	zNewB := sg.Exp(rNewB) // z̃_{n+1}
	// Both adverts were broadcast to every node, so every member also
	// learns the two ring-closing z values; retaining them keeps later
	// merges and leaves runnable from any member's state.
	lastA, zLastA := u1.sess.Last(), u1.sess.Z[u1.sess.Last()]
	lastB, zLastB := uB.sess.Last(), uB.sess.Z[uB.sess.Last()]
	finalize := func(mb *Member, kA, kB *big.Int, r *big.Int) {
		key := new(big.Int).Mul(kA, kB)
		key.Mod(key, sg.P)
		old := mb.sess
		sess := newSession(newRoster)
		sess.R = r
		sess.Tau = old.Tau
		for id, z := range old.Z {
			sess.Z[id] = z
		}
		for id, t := range old.T {
			sess.T[id] = t
		}
		sess.Z[u1.id] = zNewA
		sess.Z[uB.id] = zNewB
		sess.Z[lastA] = zLastA
		sess.Z[lastB] = zLastB
		sess.Key = key
		mb.sess = sess
	}

	// parseRound3 extracts the rewrapped secret (when from == wantWrap) and
	// the raw state-table bytes per sending controller.
	parseRound3 := func(mb *Member, wantWrap string) (rewrapped []byte, tables map[string][]byte, err error) {
		msgs, err := net.RecvType(mb.id, MsgMerge3)
		if err != nil {
			return nil, nil, err
		}
		tables = map[string][]byte{}
		for _, msg := range msgs {
			r := wire.NewReader(msg.Payload)
			id := r.String()
			w := r.Bytes()
			if r.Err() != nil {
				return nil, nil, r.Err()
			}
			if id != msg.From {
				continue
			}
			// The remainder of the payload is the state table block.
			rest := msg.Payload[len(msg.Payload)-r.Remaining():]
			tables[id] = rest
			if id == wantWrap {
				rewrapped = w
			}
		}
		return rewrapped, tables, nil
	}
	ingestTables := func(mb *Member, tables map[string][]byte, foreignCtl string) error {
		blob, ok := tables[foreignCtl]
		if !ok {
			return fmt.Errorf("core: %s missing round3 tables from %s", mb.id, foreignCtl)
		}
		r := wire.NewReader(blob)
		if err := decodeStateTables(r, mb.sess); err != nil {
			return err
		}
		return r.Close()
	}

	// Ordinary members: unwrap K* of their own ring (round 2, own-group
	// wrap) and the foreign K* (round 3 rebroadcast by their controller).
	memberDecrypt := func(mb *Member, ownCtl string) (*big.Int, *big.Int, map[string][]byte, error) {
		wrapGroup, _, err := recvRound2(mb, ownCtl)
		if err != nil {
			return nil, nil, nil, err
		}
		rewrapped, tables, err := parseRound3(mb, ownCtl)
		if err != nil {
			return nil, nil, nil, err
		}
		if rewrapped == nil {
			return nil, nil, nil, fmt.Errorf("core: %s missing round3 from %s", mb.id, ownCtl)
		}
		cg, err := sym.NewFromBig(mb.sess.Key)
		if err != nil {
			return nil, nil, nil, err
		}
		own, err := cg.UnwrapSecret(wrapGroup, ownCtl)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: %s failed to unwrap own K*: %w", mb.id, err)
		}
		foreign, err := cg.UnwrapSecret(rewrapped, ownCtl)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: %s failed to unwrap foreign K*: %w", mb.id, err)
		}
		mb.m.Sym(0, 2)
		// Drain remaining cross-group traffic this member cannot read.
		_, _ = net.RecvType(mb.id, MsgMerge1)
		_, _ = net.RecvType(mb.id, MsgMerge2)
		return own, foreign, tables, nil
	}
	for _, mb := range groupA[1:] {
		own, foreign, tables, err := memberDecrypt(mb, u1.id)
		if err != nil {
			return err
		}
		finalize(mb, own, foreign, mb.sess.R)
		if err := ingestTables(mb, tables, uB.id); err != nil {
			return err
		}
	}
	for _, mb := range groupB[1:] {
		own, foreign, tables, err := memberDecrypt(mb, uB.id)
		if err != nil {
			return err
		}
		// For B members: own = K*_B, foreign = K*_A; K' = K*_A · K*_B.
		finalize(mb, foreign, own, mb.sess.R)
		if err := ingestTables(mb, tables, u1.id); err != nil {
			return err
		}
	}
	// Controllers: parse the peer's round-3 broadcast for its tables.
	_, tablesAtU1, err := parseRound3(u1, "")
	if err != nil {
		return err
	}
	_, tablesAtUB, err := parseRound3(uB, "")
	if err != nil {
		return err
	}
	finalize(u1, foldA.kStar, kStarBatU1, rNewA)
	finalize(uB, kStarAatUB, foldB.kStar, rNewB)
	if err := ingestTables(u1, tablesAtU1, uB.id); err != nil {
		return err
	}
	if err := ingestTables(uB, tablesAtUB, u1.id); err != nil {
		return err
	}
	// Drain leftover adverts at controllers.
	_, _ = net.RecvType(u1.id, MsgMerge1)
	_, _ = net.RecvType(uB.id, MsgMerge1)
	return nil
}

// RunMergeMulti folds k groups into one by sequential pairwise merges
// (k-1 merges, matching the paper's 6(k-1) message count).
func RunMergeMulti(net netsim.Medium, groups ...[]*Member) ([]*Member, error) {
	if len(groups) < 2 {
		return nil, errors.New("core: multi-merge needs >= 2 groups")
	}
	acc := groups[0]
	for _, g := range groups[1:] {
		if err := RunMerge(net, acc, g); err != nil {
			return nil, err
		}
		acc = append(append([]*Member{}, acc...), g...)
	}
	return acc, nil
}
