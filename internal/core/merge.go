package core

import (
	"errors"

	"idgka/internal/engine"
	"idgka/internal/netsim"
)

// RunMerge executes the three-round Merge protocol of Section 7, fusing
// group A (ring U_1…U_n) and group B (ring U_{n+1}…U_{n+m}) into a single
// keyed group with ring A‖B. Only the two controllers U_1 and U_{n+1}
// perform exponentiations (4 each); every other member does symmetric
// decryptions only. The final key is K' = K*_A · K*_B (equation 9).
func RunMerge(net netsim.Medium, groupA, groupB []*Member) error {
	if len(groupA) < 2 || len(groupB) < 2 {
		return errors.New("core: merge needs two groups of >= 2")
	}
	for _, mb := range append(append([]*Member{}, groupA...), groupB...) {
		if mb.Session() == nil || mb.Session().Key == nil {
			return errNoSession
		}
	}
	rosterA := rosterOf(groupA)
	rosterB := rosterOf(groupB)
	all := append(append([]*Member{}, groupA...), groupB...)
	return runFlowFatal(net, all, func(mb *Member) ([]engine.Outbound, []engine.Event, error) {
		return mb.mach.StartMerge(lockstepSID, lockstepBase, rosterA, rosterB)
	}, "merge")
}

// RunMergeMulti folds k groups into one by sequential pairwise merges
// (k-1 merges, matching the paper's 6(k-1) message count).
func RunMergeMulti(net netsim.Medium, groups ...[]*Member) ([]*Member, error) {
	if len(groups) < 2 {
		return nil, errors.New("core: multi-merge needs >= 2 groups")
	}
	acc := groups[0]
	for _, g := range groups[1:] {
		if err := RunMerge(net, acc, g); err != nil {
			return nil, err
		}
		acc = append(append([]*Member{}, acc...), g...)
	}
	return acc, nil
}
