package core

import (
	"idgka/internal/engine"
	"idgka/internal/netsim"
)

// MsgConfirm labels key-confirmation broadcasts.
const MsgConfirm = engine.MsgConfirm

// ConfirmKey runs an optional explicit key-confirmation round — an
// extension beyond the paper (whose protocols provide only implicit key
// authentication): every member broadcasts H(key ‖ id ‖ roster) and checks
// every peer's digest. One hash broadcast per member; detects any
// divergence in the computed group key before the key is used.
func ConfirmKey(net netsim.Medium, members []*Member) error {
	if len(members) == 0 {
		return errNoSession
	}
	return runFlowFatal(net, members, func(mb *Member) ([]engine.Outbound, []engine.Event, error) {
		return mb.mach.StartConfirm(lockstepSID, lockstepBase)
	}, "key confirmation")
}
