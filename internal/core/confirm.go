package core

import (
	"crypto/subtle"
	"fmt"

	"idgka/internal/hashx"
	"idgka/internal/netsim"
	"idgka/internal/wire"
)

// MsgConfirm labels key-confirmation broadcasts.
const MsgConfirm = "gka/confirm"

// ConfirmKey runs an optional explicit key-confirmation round — an
// extension beyond the paper (whose protocols provide only implicit key
// authentication): every member broadcasts H(key ‖ id ‖ roster) and checks
// every peer's digest. One hash broadcast per member; detects any
// divergence in the computed group key before the key is used.
func ConfirmKey(net netsim.Medium, members []*Member) error {
	if len(members) == 0 {
		return errNoSession
	}
	digest := func(mb *Member) ([]byte, error) {
		if mb.sess == nil || mb.sess.Key == nil {
			return nil, errNoSession
		}
		chunks := [][]byte{mb.sess.Key.Bytes(), []byte(mb.id)}
		for _, id := range mb.sess.Roster {
			chunks = append(chunks, []byte(id))
		}
		return hashx.Sum(hashx.TagKeyConfirm, chunks...), nil
	}
	// Broadcast phase.
	if err := forEach(members, func(mb *Member) error {
		d, err := digest(mb)
		if err != nil {
			return err
		}
		payload := wire.NewBuffer().PutString(mb.id).PutBytes(d).Bytes()
		return net.Broadcast(mb.id, MsgConfirm, payload)
	}); err != nil {
		return err
	}
	// Verification phase: recompute each peer's expected digest from the
	// local key and compare.
	return forEach(members, func(mb *Member) error {
		msgs, err := net.RecvType(mb.id, MsgConfirm)
		if err != nil {
			return err
		}
		if len(msgs) < mb.sess.Size()-1 {
			return fmt.Errorf("core: confirm: %s got %d of %d digests", mb.id, len(msgs), mb.sess.Size()-1)
		}
		for _, msg := range msgs {
			r := wire.NewReader(msg.Payload)
			peer := r.String()
			got := r.Bytes()
			if err := r.Close(); err != nil {
				return fmt.Errorf("core: confirm from %s: %w", msg.From, err)
			}
			if peer != msg.From || mb.sess.Position(peer) < 0 {
				continue // digests from non-members are ignored
			}
			chunks := [][]byte{mb.sess.Key.Bytes(), []byte(peer)}
			for _, id := range mb.sess.Roster {
				chunks = append(chunks, []byte(id))
			}
			want := hashx.Sum(hashx.TagKeyConfirm, chunks...)
			if subtle.ConstantTimeCompare(got, want) != 1 {
				return fmt.Errorf("core: key confirmation failed: %s and %s disagree", mb.id, peer)
			}
		}
		return nil
	})
}
