package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"testing"

	"idgka/internal/engine"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
)

// montCtrReader is a deterministic randomness stream (SHA-256 in counter
// mode). Each member gets its own stream seeded by its identity, so the
// keying material two runs draw is identical regardless of how the
// orchestrators interleave the members' goroutines.
type montCtrReader struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

func newMontCtrReader(seed string) *montCtrReader {
	return &montCtrReader{seed: sha256.Sum256([]byte(seed))}
}

func (r *montCtrReader) Read(p []byte) (int, error) {
	for len(r.buf) < len(p) {
		var block [40]byte
		copy(block[:32], r.seed[:])
		binary.BigEndian.PutUint64(block[32:], r.ctr)
		r.ctr++
		sum := sha256.Sum256(block[:])
		r.buf = append(r.buf, sum[:]...)
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

// runFiveFlows drives all five protocol flows — initial, join, leave,
// merge, partition — with the given acceleration config and per-member
// deterministic randomness, running the explicit key-confirmation round
// after every flow, and returns the five committed keys in order.
func runFiveFlows(t *testing.T, accel engine.AccelConfig, seed string) []*big.Int {
	t.Helper()
	set := params.Default()
	newMb := func(net *netsim.Network, id string) *Member {
		cfg := Config{Set: set.Public(), Rand: newMontCtrReader(seed + "/" + id), Accel: accel}
		sk, err := gq.Extract(set.RSA, id)
		if err != nil {
			t.Fatal(err)
		}
		m := meter.New()
		mb, err := NewMember(cfg, sk, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Register(id, m); err != nil {
			t.Fatal(err)
		}
		return mb
	}
	confirm := func(net *netsim.Network, members []*Member, what string) *big.Int {
		if err := ConfirmKey(net, members); err != nil {
			t.Fatalf("%s: key confirmation: %v", what, err)
		}
		return assertAgreement(t, members)
	}

	var keys []*big.Int
	net := netsim.New()
	var group []*Member
	for i := 0; i < 5; i++ {
		group = append(group, newMb(net, fmt.Sprintf("M%02d", i+1)))
	}
	if err := RunInitial(net, group); err != nil {
		t.Fatalf("initial: %v", err)
	}
	keys = append(keys, confirm(net, group, "initial"))

	joiner := newMb(net, "M06")
	if err := RunJoin(net, group, joiner); err != nil {
		t.Fatalf("join: %v", err)
	}
	group = append(group, joiner)
	keys = append(keys, confirm(net, group, "join"))

	if err := RunLeave(net, group, "M02"); err != nil {
		t.Fatalf("leave: %v", err)
	}
	var g2 []*Member
	for _, mb := range group {
		if mb.ID() != "M02" {
			g2 = append(g2, mb)
		}
	}
	group = g2
	keys = append(keys, confirm(net, group, "leave"))

	netB := netsim.New()
	var groupB []*Member
	for i := 0; i < 3; i++ {
		groupB = append(groupB, newMb(netB, fmt.Sprintf("N%02d", i+1)))
	}
	if err := RunInitial(netB, groupB); err != nil {
		t.Fatalf("merge: group B initial: %v", err)
	}
	for _, mb := range groupB {
		if err := net.Register(mb.ID(), mb.Meter()); err != nil {
			t.Fatal(err)
		}
	}
	if err := RunMerge(net, group, groupB); err != nil {
		t.Fatalf("merge: %v", err)
	}
	group = append(group, groupB...)
	keys = append(keys, confirm(net, group, "merge"))

	evict := []string{group[1].ID(), group[3].ID()}
	if err := RunPartition(net, group, evict); err != nil {
		t.Fatalf("partition: %v", err)
	}
	var g3 []*Member
	for _, mb := range group {
		if mb.ID() != evict[0] && mb.ID() != evict[1] {
			g3 = append(g3, mb)
		}
	}
	keys = append(keys, confirm(net, g3, "partition"))
	return keys
}

// TestMontTransparent pins the Montgomery-accelerated arithmetic to the
// math/big paper path across all five flows: with identical randomness,
// the committed session keys (and therefore the confirm digests, which
// every member cross-checks in ConfirmKey) must be bit-identical whether
// the acceleration layer is off or fully on.
func TestMontTransparent(t *testing.T) {
	flows := []string{"initial", "join", "leave", "merge", "partition"}
	plain := runFiveFlows(t, engine.AccelConfig{}, "mont-transparency")
	accel := runFiveFlows(t, engine.AccelConfig{Precompute: true, VerifyWorkers: 4}, "mont-transparency")
	if len(plain) != len(flows) || len(accel) != len(flows) {
		t.Fatalf("expected %d keys per run, got %d plain / %d accelerated", len(flows), len(plain), len(accel))
	}
	for i, name := range flows {
		if plain[i].Cmp(accel[i]) != 0 {
			t.Errorf("%s: keys diverge between math/big and Montgomery runs", name)
		}
	}
}
