package core

import (
	"errors"
	"sync"

	"idgka/internal/netsim"
	"idgka/internal/wire"
)

// forEach runs fn concurrently for every member (one goroutine per node,
// mirroring how the devices compute in the field) and returns the first
// error observed.
func forEach(members []*Member, fn func(*Member) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(members))
	for i, mb := range members {
		wg.Add(1)
		go func(i int, mb *Member) {
			defer wg.Done()
			errs[i] = fn(mb)
		}(i, mb)
	}
	wg.Wait()
	// Prefer a retryable error so the orchestrator re-runs rather than
	// aborts when both kinds occur in one phase.
	var firstFatal error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if IsRetryable(err) {
			return err
		}
		if firstFatal == nil {
			firstFatal = err
		}
	}
	return firstFatal
}

// drainAll empties members' inboxes between retransmission attempts so a
// stale message cannot poison the next attempt.
func drainAll(net netsim.Medium, members []*Member) {
	for _, mb := range members {
		_, _ = net.Recv(mb.id)
		mb.pending = pendingRound{}
	}
}

// rosterOf extracts the identity ring from a member slice.
func rosterOf(members []*Member) []string {
	ids := make([]string, len(members))
	for i, m := range members {
		ids[i] = m.id
	}
	return ids
}

// errNoSession is returned by dynamic protocols invoked before RunInitial.
var errNoSession = errors.New("core: member has no established session")

// encodeStateTables serialises the (id, z, t) view a session holds so it
// can be shipped to joiners and across merged groups. The paper leaves this
// state acquisition unspecified (its Leave protocol assumes every member
// knows every z_i and t_i); the transfer bytes are metered separately as
// state traffic. Entries with neither z nor t are skipped.
func encodeStateTables(sess *Session) []byte {
	buf := wire.NewBuffer()
	var ids []string
	for _, id := range sess.Roster {
		if sess.Z[id] != nil || sess.T[id] != nil {
			ids = append(ids, id)
		}
	}
	buf.PutUint(uint64(len(ids)))
	for _, id := range ids {
		buf.PutString(id)
		buf.PutBig(sess.Z[id])
		buf.PutBig(sess.T[id])
	}
	return buf.Bytes()
}

// decodeStateTables parses encodeStateTables output into a session,
// without overwriting values the session already holds fresher copies of
// (existing entries win: the receiver may have observed later broadcasts).
func decodeStateTables(r *wire.Reader, sess *Session) error {
	count := r.Uint()
	for i := uint64(0); i < count; i++ {
		id := r.String()
		z := r.Big()
		t := r.Big()
		if r.Err() != nil {
			return r.Err()
		}
		if _, have := sess.Z[id]; !have && z != nil && z.Sign() > 0 {
			sess.Z[id] = z
		}
		if _, have := sess.T[id]; !have && t != nil && t.Sign() > 0 {
			sess.T[id] = t
		}
	}
	return nil
}
