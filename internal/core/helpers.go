package core

import (
	"fmt"
	"sync"

	"idgka/internal/engine"
	"idgka/internal/netsim"
)

// lockstepSID is the session id of driver-pumped flows: the empty id
// selects the engine's legacy wire mode, whose payloads are byte-identical
// to the original lockstep implementation (no session envelope), keeping
// the paper-comparable traffic accounting exact.
const lockstepSID = ""

// lockstepBase selects the machine's most recently committed group as a
// dynamic flow's base — the single-group model of the lockstep drivers,
// which run one group per machine.
const lockstepBase = ""

// starter begins one member's flow and returns its opening messages.
type starter func(mb *Member) ([]engine.Outbound, []engine.Event, error)

// errStalled marks an attempt in which the network went quiet before every
// member finished — e.g. a dropped broadcast; the paper's answer is "all
// members retransmit again".
var errStalled = fmt.Errorf("flow stalled: message lost before completion")

// maxSweeps is a livelock backstop far above any protocol's round count.
const maxSweeps = 1 << 10

// runFlowOnce starts the same flow on every member and pumps messages
// between the machines over the medium until every machine commits: each
// sweep drains every member's inbox, steps the machines concurrently (one
// goroutine per member, as the nodes would compute in the field), then
// transmits whatever the machines emitted. Retryable protocol failures
// (verification failure, lost messages) surface as engine-retryable
// errors for the caller's retransmission loop. On ANY failure the
// members' in-flight flows are aborted, so a later Run* on the same
// group starts from a clean machine instead of tripping over a stale
// active flow.
func runFlowOnce(net netsim.Medium, members []*Member, start starter) (err error) {
	defer func() {
		if err != nil {
			for _, mb := range members {
				mb.mach.Abort(lockstepSID)
			}
		}
	}()
	return pumpFlow(net, members, start)
}

// pumpFlow is runFlowOnce without the failure cleanup.
func pumpFlow(net netsim.Medium, members []*Member, start starter) error {
	n := len(members)
	outs := make([][]engine.Outbound, n)
	evts := make([][]engine.Event, n)
	errs := make([]error, n)
	done := make([]bool, n)

	// Discard stale traffic from earlier flows a member did not take part
	// in (e.g. merge broadcasts that arrived while it sat attached to the
	// medium but idle); nothing of the current flow can exist yet.
	for _, mb := range members {
		if _, err := net.Recv(mb.ID()); err != nil {
			return err
		}
	}

	forEach(members, func(i int, mb *Member) {
		outs[i], evts[i], errs[i] = start(mb)
	})
	if err := harvest(members, evts, errs, done); err != nil {
		return err
	}
	if err := transmit(net, members, outs); err != nil {
		return err
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		inboxes := make([][]netsim.Message, n)
		total := 0
		for i, mb := range members {
			msgs, err := net.Recv(mb.ID())
			if err != nil {
				return err
			}
			inboxes[i] = msgs
			total += len(msgs)
		}
		if total == 0 {
			if allDone(done) {
				return nil
			}
			return engine.Retryable(errStalled)
		}
		forEach(members, func(i int, mb *Member) {
			outs[i], evts[i], errs[i] = nil, nil, nil
			for _, msg := range inboxes[i] {
				o, e := mb.mach.Step(msg)
				outs[i] = append(outs[i], o...)
				evts[i] = append(evts[i], e...)
			}
		})
		if err := harvest(members, evts, errs, done); err != nil {
			return err
		}
		if err := transmit(net, members, outs); err != nil {
			return err
		}
	}
	return engine.Retryable(errStalled)
}

// runFlowFatal runs a flow that cannot be retransmitted mid-flight: the
// Join/Merge/Confirm protocols change per-member state asymmetrically
// (e.g. the controller may commit the new key before a stall is
// detected), so re-running them against half-updated sessions cannot
// converge. Any failure — including a protocol-retryable one — is
// surfaced stripped of the retryable marker, so callers are not invited
// into a doomed retry. The full re-key flows (initial, partition) retry
// safely via runFlowRetrying instead.
func runFlowFatal(net netsim.Medium, members []*Member, start starter, what string) error {
	err := runFlowOnce(net, members, start)
	if err != nil && IsRetryable(err) {
		return fmt.Errorf("core: %s failed (not retryable mid-flight): %v", what, err)
	}
	return err
}

// runFlowRetrying wraps runFlowOnce in the paper's retransmission loop:
// on a retryable failure every member aborts, inboxes are drained, and
// the flow restarts with fresh randomness, up to the configured retry
// budget.
func runFlowRetrying(net netsim.Medium, members []*Member, start starter, what string) error {
	retries := members[0].cfg.Retries()
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		err := runFlowOnce(net, members, start)
		if err == nil {
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
		lastErr = err
		drainAll(net, members)
	}
	return fmt.Errorf("core: %s failed after retries: %w", what, lastErr)
}

// forEach runs fn concurrently for every member (one goroutine per node).
func forEach(members []*Member, fn func(int, *Member)) {
	var wg sync.WaitGroup
	for i, mb := range members {
		wg.Add(1)
		go func(i int, mb *Member) {
			defer wg.Done()
			fn(i, mb)
		}(i, mb)
	}
	wg.Wait()
}

// harvest folds per-member step results into the done set, preferring a
// retryable error over a fatal one when both occur in one phase (so the
// orchestrator re-runs rather than aborts).
func harvest(members []*Member, evts [][]engine.Event, errs []error, done []bool) error {
	var firstFatal error
	var retry error
	for i := range members {
		if errs[i] != nil {
			if IsRetryable(errs[i]) {
				retry = errs[i]
			} else if firstFatal == nil {
				firstFatal = errs[i]
			}
			continue
		}
		for _, ev := range evts[i] {
			switch ev.Kind {
			case engine.EventEstablished, engine.EventConfirmed:
				done[i] = true
			case engine.EventFailed:
				if ev.Retryable {
					retry = engine.Retryable(ev.Err)
				} else if firstFatal == nil {
					firstFatal = ev.Err
				}
			}
		}
	}
	if retry != nil {
		return retry
	}
	return firstFatal
}

// transmit sends every emitted message in member order (deterministic for
// the fault injector and the medium's traffic accounting).
func transmit(net netsim.Medium, members []*Member, outs [][]engine.Outbound) error {
	for i, mb := range members {
		if err := engine.SendAll(net, mb.ID(), outs[i]); err != nil {
			return err
		}
	}
	return nil
}

func allDone(done []bool) bool {
	for _, d := range done {
		if !d {
			return false
		}
	}
	return true
}

// drainAll empties members' inboxes and aborts their in-flight flows
// between retransmission attempts so a stale message cannot poison the
// next attempt.
func drainAll(net netsim.Medium, members []*Member) {
	for _, mb := range members {
		_, _ = net.Recv(mb.ID())
		mb.mach.Abort(lockstepSID)
	}
}

// rosterOf extracts the identity ring from a member slice.
func rosterOf(members []*Member) []string {
	ids := make([]string, len(members))
	for i, m := range members {
		ids[i] = m.ID()
	}
	return ids
}
