package core

import (
	"errors"
	"fmt"
	"math/big"

	"idgka/internal/bdkey"
	"idgka/internal/mathx"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/sigs/gq"
	"idgka/internal/wire"
)

// RunLeave executes the two-round Leave protocol of Section 7, removing a
// single member. members must be the current ring (including the leaver).
func RunLeave(net netsim.Medium, members []*Member, leaver string) error {
	return RunPartition(net, members, []string{leaver})
}

// RunPartition executes the Partition protocol — the mass-leave
// generalisation of Leave (the paper presents them separately; the
// mathematics is identical with L the set of departed members). Remaining
// odd-indexed members (1-based positions in the current ring) refresh
// their exponents and GQ commitments; everyone remaining recomputes X
// values over the contracted ring, authenticates with one batch
// verification, and derives the new key (equations 11/13).
func RunPartition(net netsim.Medium, members []*Member, leavers []string) error {
	if len(leavers) == 0 {
		return errors.New("core: no leavers given")
	}
	leaving := map[string]bool{}
	for _, id := range leavers {
		leaving[id] = true
	}
	var remain []*Member
	var refresh []*Member // odd-indexed survivors (plus members lacking commitments)
	for i, mb := range members {
		if mb.sess == nil || mb.sess.Key == nil {
			return errNoSession
		}
		if leaving[mb.id] {
			continue
		}
		remain = append(remain, mb)
		oneBased := i + 1
		if oneBased%2 == 1 || mb.sess.Tau == nil {
			refresh = append(refresh, mb)
		}
	}
	if len(remain) < 2 {
		return errors.New("core: partition would leave fewer than 2 members")
	}
	if len(remain) == len(members) {
		return errors.New("core: leavers are not in the group")
	}
	newRoster := rosterOf(remain)
	refreshSet := map[string]bool{}
	for _, mb := range refresh {
		refreshSet[mb.id] = true
	}

	retries := remain[0].cfg.maxRetries()
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		err := runPartitionAttempt(net, remain, refresh, refreshSet, newRoster)
		if err == nil {
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
		lastErr = err
		drainAll(net, remain)
	}
	return fmt.Errorf("core: partition failed after retries: %w", lastErr)
}

func runPartitionAttempt(net netsim.Medium, remain, refresh []*Member, refreshSet map[string]bool, newRoster []string) error {
	strict := remain[0].cfg.StrictNonceRefresh

	// --- Round 1: refreshers broadcast z'_j ‖ t'_j; in strict mode the
	// remaining even members broadcast a fresh t'_j as well. ---
	if err := forEach(remain, func(mb *Member) error {
		refreshing := refreshSet[mb.id]
		if !refreshing && !strict {
			// Paper behaviour: even members stay silent and will reuse
			// their stored commitment.
			mb.pending = pendingRound{
				roster: newRoster,
				r:      mb.sess.R,
				tau:    mb.sess.Tau,
				z:      map[string]*big.Int{},
				t:      map[string]*big.Int{},
				x:      map[string]*big.Int{},
				s:      map[string]*big.Int{},
			}
			return nil
		}
		sg := mb.cfg.Set.Schnorr
		r := mb.sess.R
		var z *big.Int
		if refreshing {
			var err error
			r, err = mathx.RandScalar(mb.cfg.rand(), sg.Q)
			if err != nil {
				return err
			}
			z = sg.Exp(r)
			mb.m.Exp(1)
		}
		tau, t, err := gq.Commitment(mb.cfg.rand(), gq.ParamsFrom(mb.cfg.Set.RSA))
		if err != nil {
			return err
		}
		mb.pending = pendingRound{
			roster: newRoster,
			r:      r, tau: tau,
			z: map[string]*big.Int{},
			t: map[string]*big.Int{mb.id: t},
			x: map[string]*big.Int{},
			s: map[string]*big.Int{},
		}
		if z != nil {
			mb.pending.z[mb.id] = z
		}
		payload := wire.NewBuffer().PutString(mb.id).PutBig(z).PutBig(t).Bytes()
		return net.Broadcast(mb.id, MsgLeave1, payload)
	}); err != nil {
		return err
	}

	// Ingest round 1: update z/t views.
	if err := forEach(remain, func(mb *Member) error {
		msgs, err := net.RecvType(mb.id, MsgLeave1)
		if err != nil {
			return err
		}
		// Start from the session's stored views, without overwriting the
		// fresh own values recorded during the broadcast phase.
		for _, id := range newRoster {
			if _, have := mb.pending.z[id]; !have {
				if z, ok := mb.sess.Z[id]; ok {
					mb.pending.z[id] = z
				}
			}
			if _, have := mb.pending.t[id]; !have {
				if t, ok := mb.sess.T[id]; ok {
					mb.pending.t[id] = t
				}
			}
		}
		for _, msg := range msgs {
			r := wire.NewReader(msg.Payload)
			id := r.String()
			z := r.Big()
			t := r.Big()
			if err := r.Close(); err != nil {
				return errRetry{fmt.Errorf("leave round1 from %s: %w", msg.From, err)}
			}
			if id != msg.From {
				return errRetry{errors.New("leave round1 identity mismatch")}
			}
			if z.Sign() > 0 {
				mb.pending.z[id] = z
			}
			if t.Sign() > 0 {
				mb.pending.t[id] = t
			}
		}
		// All survivors must now have a current z and t on file.
		for _, id := range newRoster {
			if mb.pending.z[id] == nil {
				return errRetry{fmt.Errorf("leave: %s missing z for %s", mb.id, id)}
			}
			if mb.pending.t[id] == nil {
				return errRetry{fmt.Errorf("leave: %s missing t for %s", mb.id, id)}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// --- Round 2: everyone broadcasts X'_i ‖ s̄_i; the (new) controller
	// last. ---
	if err := forEach(remain[1:], func(mb *Member) error {
		payload, err := mb.leaveRound2()
		if err != nil {
			return err
		}
		return net.Broadcast(mb.id, MsgLeave2, payload)
	}); err != nil {
		return err
	}
	controller := remain[0]
	{
		msgs, err := net.RecvType(controller.id, MsgLeave2)
		if err != nil {
			return err
		}
		payload, err := controller.leaveRound2()
		if err != nil {
			return err
		}
		if err := controller.handleRound2(msgs); err != nil {
			return err
		}
		if err := net.Broadcast(controller.id, MsgLeave2, payload); err != nil {
			return err
		}
	}
	if err := forEach(remain[1:], func(mb *Member) error {
		msgs, err := net.RecvType(mb.id, MsgLeave2)
		if err != nil {
			return err
		}
		return mb.handleRound2(msgs)
	}); err != nil {
		return err
	}

	// --- Authentication and key computation (equations 10-13). ---
	return forEach(remain, func(mb *Member) error { return mb.finishLeave(refreshSet) })
}

// leaveRound2 computes X'_i over the contracted ring plus the batch
// signature response, reusing the stored commitment for non-refreshing
// members exactly as the paper specifies.
func (mb *Member) leaveRound2() ([]byte, error) {
	sg := mb.cfg.Set.Schnorr
	roster := mb.pending.roster
	n := len(roster)
	idx := -1
	for i, id := range roster {
		if id == mb.id {
			idx = i
		}
	}
	if idx < 0 {
		return nil, errors.New("core: member not in contracted ring")
	}
	zNext := mb.pending.z[roster[(idx+1)%n]]
	zPrev := mb.pending.z[roster[(idx-1+n)%n]]
	x, err := bdkey.XValue(zNext, zPrev, mb.pending.r, sg.P)
	if err != nil {
		return nil, err
	}
	mb.m.Exp(1)

	zs := make([]*big.Int, 0, n)
	ts := make([]*big.Int, 0, n)
	for _, id := range roster {
		zs = append(zs, mb.pending.z[id])
		ts = append(ts, mb.pending.t[id])
	}
	bigZ := mathx.ProductMod(zs, sg.P)
	bigT := mathx.ProductMod(ts, mb.cfg.Set.RSA.N)
	c := gq.GroupChallenge(bigT, bigZ)
	s := mb.sk.Respond(mb.pending.tau, c)
	mb.m.SignGen(meter.SchemeGQ, 1)

	mb.pending.bigZ = bigZ
	mb.pending.c = c
	mb.pending.ownX = x
	mb.pending.ownS = s
	mb.pending.x[mb.id] = x
	mb.pending.s[mb.id] = s
	return wire.NewBuffer().PutString(mb.id).PutBig(x).PutBig(s).Bytes(), nil
}

// finishLeave verifies the batch (equation 10/12), checks Lemma 1 and
// computes the contracted-ring key (equation 11/13), committing the new
// session.
func (mb *Member) finishLeave(refreshSet map[string]bool) error {
	sg := mb.cfg.Set.Schnorr
	roster := mb.pending.roster
	n := len(roster)
	responses := make([]*big.Int, 0, n)
	for _, id := range roster {
		responses = append(responses, mb.pending.s[id])
	}
	if err := gq.BatchVerify(gq.ParamsFrom(mb.cfg.Set.RSA), roster, responses, mb.pending.c, mb.pending.bigZ); err != nil {
		mb.m.SignVer(meter.SchemeGQ, 1)
		return errRetry{err}
	}
	mb.m.SignVer(meter.SchemeGQ, 1)

	xsOrdered := make([]*big.Int, n)
	for i, id := range roster {
		xsOrdered[i] = mb.pending.x[id]
	}
	if err := bdkey.CheckLemma1(xsOrdered, sg.P); err != nil {
		return errRetry{err}
	}

	idx := 0
	for i, id := range roster {
		if id == mb.id {
			idx = i
		}
	}
	zPrev := mb.pending.z[roster[(idx-1+n)%n]]
	key, err := bdkey.Key(idx, mb.pending.r, zPrev, xsOrdered, sg.P)
	if err != nil {
		return err
	}
	mb.m.Exp(1)

	sess := newSession(roster)
	sess.R = mb.pending.r
	sess.Tau = mb.pending.tau
	for id, z := range mb.pending.z {
		sess.Z[id] = z
	}
	for id, t := range mb.pending.t {
		sess.T[id] = t
	}
	sess.Key = key
	mb.sess = sess
	mb.pending = pendingRound{}
	_ = refreshSet
	return nil
}
