package core

import (
	"errors"

	"idgka/internal/engine"
	"idgka/internal/netsim"
)

// RunLeave executes the two-round Leave protocol of Section 7, removing a
// single member. members must be the current ring (including the leaver).
func RunLeave(net netsim.Medium, members []*Member, leaver string) error {
	return RunPartition(net, members, []string{leaver})
}

// RunPartition executes the Partition protocol — the mass-leave
// generalisation of Leave (the paper presents them separately; the
// mathematics is identical with L the set of departed members). Remaining
// odd-indexed members (1-based positions in the current ring) refresh
// their exponents and GQ commitments; everyone remaining recomputes X
// values over the contracted ring, authenticates with one batch
// verification, and derives the new key (equations 11/13).
func RunPartition(net netsim.Medium, members []*Member, leavers []string) error {
	if len(leavers) == 0 {
		return errors.New("core: no leavers given")
	}
	// Members whose stored commitment cannot be reused (e.g. a member that
	// joined since the last full keying holds no τ) must refresh too.
	stale := map[string]bool{}
	for _, mb := range members {
		if mb.Session() == nil || mb.Session().Key == nil {
			return errNoSession
		}
		if mb.Session().Tau == nil {
			stale[mb.ID()] = true
		}
	}
	newRoster, refresh, err := engine.PlanPartition(rosterOf(members), leavers, stale)
	if err != nil {
		return err
	}
	remainSet := map[string]bool{}
	for _, id := range newRoster {
		remainSet[id] = true
	}
	var remain []*Member
	for _, mb := range members {
		if remainSet[mb.ID()] {
			remain = append(remain, mb)
		}
	}
	return runFlowRetrying(net, remain, func(mb *Member) ([]engine.Outbound, []engine.Event, error) {
		return mb.mach.StartPartition(lockstepSID, lockstepBase, newRoster, refresh)
	}, "partition")
}
