package core

import (
	"errors"
	"fmt"
	"math/big"

	"idgka/internal/bdkey"
	"idgka/internal/mathx"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/sigs/gq"
	"idgka/internal/wire"
)

// round1 draws the member's fresh keying material and returns the encoded
// broadcast m_i = U_i ‖ z_i ‖ t_i.
func (mb *Member) round1(roster []string) ([]byte, error) {
	sg := mb.cfg.Set.Schnorr
	r, err := mathx.RandScalar(mb.cfg.rand(), sg.Q)
	if err != nil {
		return nil, fmt.Errorf("core: round1: %w", err)
	}
	z := sg.Exp(r)
	mb.m.Exp(1)
	tau, t, err := gq.Commitment(mb.cfg.rand(), gq.ParamsFrom(mb.cfg.Set.RSA))
	if err != nil {
		return nil, err
	}
	mb.pending = pendingRound{
		roster: append([]string(nil), roster...),
		r:      r, tau: tau,
		z: map[string]*big.Int{mb.id: z},
		t: map[string]*big.Int{mb.id: t},
		x: map[string]*big.Int{},
		s: map[string]*big.Int{},
	}
	return wire.NewBuffer().PutString(mb.id).PutBig(z).PutBig(t).Bytes(), nil
}

// handleRound1 ingests the peers' round-1 broadcasts.
func (mb *Member) handleRound1(msgs []netsim.Message) error {
	for _, msg := range msgs {
		r := wire.NewReader(msg.Payload)
		id := r.String()
		z := r.Big()
		t := r.Big()
		if err := r.Close(); err != nil {
			return errRetry{fmt.Errorf("round1 from %s: %w", msg.From, err)}
		}
		if id != msg.From {
			return errRetry{fmt.Errorf("round1 identity mismatch: payload %q, sender %q", id, msg.From)}
		}
		if !mb.inPendingRoster(id) {
			return errRetry{fmt.Errorf("round1 from non-member %q", id)}
		}
		sg := mb.cfg.Set.Schnorr
		if z.Sign() <= 0 || z.Cmp(sg.P) >= 0 {
			return errRetry{fmt.Errorf("round1 z from %s out of range", id)}
		}
		if t.Sign() <= 0 || t.Cmp(mb.cfg.Set.RSA.N) >= 0 {
			return errRetry{fmt.Errorf("round1 t from %s out of range", id)}
		}
		mb.pending.z[id] = z
		mb.pending.t[id] = t
	}
	if len(mb.pending.z) != len(mb.pending.roster) {
		return errRetry{fmt.Errorf("round1 incomplete: have %d of %d", len(mb.pending.z), len(mb.pending.roster))}
	}
	return nil
}

// round2 computes X_i, the common challenge c = H(T, Z) and the GQ response
// s_i, returning the encoded broadcast m'_i = U_i ‖ X_i ‖ s_i.
func (mb *Member) round2() ([]byte, error) {
	sg := mb.cfg.Set.Schnorr
	roster := mb.pending.roster
	n := len(roster)
	idx := -1
	for i, id := range roster {
		if id == mb.id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, errors.New("core: member not in pending roster")
	}
	zNext := mb.pending.z[roster[(idx+1)%n]]
	zPrev := mb.pending.z[roster[(idx-1+n)%n]]
	x, err := bdkey.XValue(zNext, zPrev, mb.pending.r, sg.P)
	if err != nil {
		return nil, err
	}
	mb.m.Exp(1)

	// Z = Π z_i mod p, T = Π t_i mod n, c = H(T, Z).
	zs := make([]*big.Int, 0, n)
	ts := make([]*big.Int, 0, n)
	for _, id := range roster {
		zs = append(zs, mb.pending.z[id])
		ts = append(ts, mb.pending.t[id])
	}
	bigZ := mathx.ProductMod(zs, sg.P)
	bigT := mathx.ProductMod(ts, mb.cfg.Set.RSA.N)
	c := gq.GroupChallenge(bigT, bigZ)
	s := mb.sk.Respond(mb.pending.tau, c)
	mb.m.SignGen(meter.SchemeGQ, 1)

	mb.pending.bigZ = bigZ
	mb.pending.c = c
	mb.pending.ownX = x
	mb.pending.ownS = s
	mb.pending.x[mb.id] = x
	mb.pending.s[mb.id] = s
	return wire.NewBuffer().PutString(mb.id).PutBig(x).PutBig(s).Bytes(), nil
}

// handleRound2 ingests peers' round-2 broadcasts.
func (mb *Member) handleRound2(msgs []netsim.Message) error {
	for _, msg := range msgs {
		r := wire.NewReader(msg.Payload)
		id := r.String()
		x := r.Big()
		s := r.Big()
		if err := r.Close(); err != nil {
			return errRetry{fmt.Errorf("round2 from %s: %w", msg.From, err)}
		}
		if id != msg.From || !mb.inPendingRoster(id) {
			return errRetry{fmt.Errorf("round2 bad sender %q/%q", id, msg.From)}
		}
		mb.pending.x[id] = x
		mb.pending.s[id] = s
	}
	if len(mb.pending.x) != len(mb.pending.roster) {
		return errRetry{fmt.Errorf("round2 incomplete: have %d of %d", len(mb.pending.x), len(mb.pending.roster))}
	}
	return nil
}

// finish performs the paper's Authentication and Key Computation phase:
// one batch verification of all GQ responses (equation 2), the Lemma-1
// product check on the X values, and the BD key computation (equation 3).
func (mb *Member) finish() error {
	sg := mb.cfg.Set.Schnorr
	roster := mb.pending.roster
	n := len(roster)

	// Equation (2): c == H((Πs_i)^e · (ΠH(U_i))^{-c}, Z).
	responses := make([]*big.Int, 0, n)
	for _, id := range roster {
		responses = append(responses, mb.pending.s[id])
	}
	if err := gq.BatchVerify(gq.ParamsFrom(mb.cfg.Set.RSA), roster, responses, mb.pending.c, mb.pending.bigZ); err != nil {
		mb.m.SignVer(meter.SchemeGQ, 1)
		return errRetry{err}
	}
	mb.m.SignVer(meter.SchemeGQ, 1)

	// Lemma 1: Π X_i ≡ 1 (mod p).
	xsOrdered := make([]*big.Int, n)
	for i, id := range roster {
		xsOrdered[i] = mb.pending.x[id]
	}
	if err := bdkey.CheckLemma1(xsOrdered, sg.P); err != nil {
		return errRetry{err}
	}

	// Equation (3): the shared key.
	idx := 0
	for i, id := range roster {
		if id == mb.id {
			idx = i
		}
	}
	zPrev := mb.pending.z[roster[(idx-1+n)%n]]
	key, err := bdkey.Key(idx, mb.pending.r, zPrev, xsOrdered, sg.P)
	if err != nil {
		return err
	}
	mb.m.Exp(1)

	sess := newSession(roster)
	sess.R = mb.pending.r
	sess.Tau = mb.pending.tau
	for id, z := range mb.pending.z {
		sess.Z[id] = z
	}
	for id, t := range mb.pending.t {
		sess.T[id] = t
	}
	sess.Key = key
	mb.sess = sess
	mb.pending = pendingRound{}
	return nil
}

func (mb *Member) inPendingRoster(id string) bool {
	for _, v := range mb.pending.roster {
		if v == id {
			return true
		}
	}
	return false
}

// RunInitial executes the two-round authenticated GKA of Section 4 over the
// network for the given members (ring order = slice order; members[0] is
// the trusted controller U_1, who broadcasts its round-2 message after all
// others). On verification failure every member retransmits with fresh
// randomness, up to cfg.MaxRetries attempts.
func RunInitial(net netsim.Medium, members []*Member) error {
	if len(members) < 2 {
		return errors.New("core: initial GKA needs at least 2 members")
	}
	roster := make([]string, len(members))
	for i, m := range members {
		roster[i] = m.id
	}
	retries := members[0].cfg.maxRetries()
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		err := runInitialAttempt(net, members, roster)
		if err == nil {
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
		lastErr = err
		drainAll(net, members)
	}
	return fmt.Errorf("core: initial GKA failed after retries: %w", lastErr)
}

func runInitialAttempt(net netsim.Medium, members []*Member, roster []string) error {
	// Round 1: everyone broadcasts m_i.
	if err := forEach(members, func(mb *Member) error {
		payload, err := mb.round1(roster)
		if err != nil {
			return err
		}
		return net.Broadcast(mb.id, MsgRound1, payload)
	}); err != nil {
		return err
	}
	// Ingest round 1.
	if err := forEach(members, func(mb *Member) error {
		msgs, err := net.RecvType(mb.id, MsgRound1)
		if err != nil {
			return err
		}
		return mb.handleRound1(msgs)
	}); err != nil {
		return err
	}
	// Round 2: all members except the controller broadcast; the controller
	// (U_1, a trusted node) broadcasts last, per the paper.
	if err := forEach(members[1:], func(mb *Member) error {
		payload, err := mb.round2()
		if err != nil {
			return err
		}
		return net.Broadcast(mb.id, MsgRound2, payload)
	}); err != nil {
		return err
	}
	controller := members[0]
	{
		msgs, err := net.RecvType(controller.id, MsgRound2)
		if err != nil {
			return err
		}
		payload, err := controller.round2()
		if err != nil {
			return err
		}
		if err := controller.handleRound2(msgs); err != nil {
			return err
		}
		if err := net.Broadcast(controller.id, MsgRound2, payload); err != nil {
			return err
		}
	}
	// Everyone else ingests round 2 (peers + controller) and finishes; the
	// controller finishes too.
	if err := forEach(members[1:], func(mb *Member) error {
		msgs, err := net.RecvType(mb.id, MsgRound2)
		if err != nil {
			return err
		}
		return mb.handleRound2(msgs)
	}); err != nil {
		return err
	}
	return forEach(members, func(mb *Member) error { return mb.finish() })
}
