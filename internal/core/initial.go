package core

import (
	"errors"

	"idgka/internal/engine"
	"idgka/internal/netsim"
)

// RunInitial executes the two-round authenticated GKA of Section 4 over
// the network for the given members (ring order = slice order; members[0]
// is the trusted controller U_1, whose machine broadcasts its round-2
// message after all others). On verification failure every member
// retransmits with fresh randomness, up to cfg.MaxRetries attempts.
func RunInitial(net netsim.Medium, members []*Member) error {
	if len(members) < 2 {
		return errors.New("core: initial GKA needs at least 2 members")
	}
	roster := rosterOf(members)
	return runFlowRetrying(net, members, func(mb *Member) ([]engine.Outbound, []engine.Event, error) {
		return mb.mach.StartInitial(lockstepSID, roster)
	}, "initial GKA")
}
