package core

import (
	"fmt"
	"math/big"
	"testing"
	"testing/quick"

	"idgka/internal/bdkey"
	"idgka/internal/meter"
	"idgka/internal/netsim"
	"idgka/internal/params"
	"idgka/internal/sigs/gq"
)

// TestConsecutiveJoins checks state consistency across repeated joins:
// each joiner becomes the new U_n and must be able to serve the next join.
func TestConsecutiveJoins(t *testing.T) {
	net, members := buildGroup(t, 3, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	set := params.Default()
	group := members
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("J%02d", i+1)
		sk, _ := gq.Extract(set.RSA, id)
		m := meter.New()
		joiner, _ := NewMember(Config{Set: set.Public()}, sk, m)
		if err := net.Register(id, m); err != nil {
			t.Fatal(err)
		}
		if err := RunJoin(net, group, joiner); err != nil {
			t.Fatalf("join %d: %v", i+1, err)
		}
		group = append(group, joiner)
		assertAgreement(t, group)
	}
	if group[0].Session().Size() != 6 {
		t.Fatalf("final ring size %d, want 6", group[0].Session().Size())
	}
}

// TestJoinThenLeaveJoiner: the joiner (no stored commitment) must survive a
// later Leave regardless of its ring parity.
func TestJoinThenLeaveJoiner(t *testing.T) {
	for _, initial := range []int{3, 4} { // joiner lands at even/odd 1-based position
		net, members := buildGroup(t, initial, nil)
		if err := RunInitial(net, members); err != nil {
			t.Fatal(err)
		}
		set := params.Default()
		sk, _ := gq.Extract(set.RSA, "JX")
		m := meter.New()
		joiner, _ := NewMember(Config{Set: set.Public()}, sk, m)
		if err := net.Register("JX", m); err != nil {
			t.Fatal(err)
		}
		if err := RunJoin(net, members, joiner); err != nil {
			t.Fatal(err)
		}
		group := append(append([]*Member{}, members...), joiner)
		// Someone else leaves; the joiner must participate correctly.
		if err := RunLeave(net, group, members[1].ID()); err != nil {
			t.Fatalf("initial=%d: leave after join: %v", initial, err)
		}
		var remain []*Member
		for _, mb := range group {
			if mb.ID() != members[1].ID() {
				remain = append(remain, mb)
			}
		}
		assertAgreement(t, remain)

		// And then the joiner itself leaves.
		if err := RunLeave(net, remain, "JX"); err != nil {
			t.Fatalf("initial=%d: joiner leaving: %v", initial, err)
		}
		var rest []*Member
		for _, mb := range remain {
			if mb.ID() != "JX" {
				rest = append(rest, mb)
			}
		}
		assertAgreement(t, rest)
	}
}

// TestMergeThenLeaveAcrossBoundary: after a merge, members of the former
// group B must be able to leave and the survivors (mixed A/B) agree.
func TestMergeThenLeaveAcrossBoundary(t *testing.T) {
	net, groupA := buildGroup(t, 4, nil)
	if err := RunInitial(net, groupA); err != nil {
		t.Fatal(err)
	}
	set := params.Default()
	netB := netsim.New()
	var groupB []*Member
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("W%02d", i+1)
		sk, _ := gq.Extract(set.RSA, id)
		m := meter.New()
		mb, _ := NewMember(Config{Set: set.Public()}, sk, m)
		_ = netB.Register(id, m)
		groupB = append(groupB, mb)
	}
	if err := RunInitial(netB, groupB); err != nil {
		t.Fatal(err)
	}
	for _, mb := range groupB {
		if err := net.Register(mb.ID(), mb.Meter()); err != nil {
			t.Fatal(err)
		}
	}
	if err := RunMerge(net, groupA, groupB); err != nil {
		t.Fatal(err)
	}
	merged := append(append([]*Member{}, groupA...), groupB...)
	assertAgreement(t, merged)

	// A former-B member leaves the merged ring.
	if err := RunLeave(net, merged, "W02"); err != nil {
		t.Fatalf("leave across merge boundary: %v", err)
	}
	var remain []*Member
	for _, mb := range merged {
		if mb.ID() != "W02" {
			remain = append(remain, mb)
		}
	}
	assertAgreement(t, remain)

	// Then the former-A controller leaves: ring re-anchors on a new
	// controller.
	if err := RunLeave(net, remain, groupA[0].ID()); err != nil {
		t.Fatalf("controller leaving: %v", err)
	}
	var rest []*Member
	for _, mb := range remain {
		if mb.ID() != groupA[0].ID() {
			rest = append(rest, mb)
		}
	}
	assertAgreement(t, rest)
}

// TestLeaveRecoversFromCorruption exercises the retransmission loop in the
// Leave protocol.
func TestLeaveRecoversFromCorruption(t *testing.T) {
	net, members := buildGroup(t, 5, func(c *Config) { c.MaxRetries = 3 })
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	net.SetFaults(netsim.FaultPlan{CorruptFirst: MsgLeave2})
	if err := RunLeave(net, members, members[2].ID()); err != nil {
		t.Fatalf("leave with corruption: %v", err)
	}
	remain := append(append([]*Member{}, members[:2]...), members[3:]...)
	assertAgreement(t, remain)
}

// TestSessionAccessors covers the Session helper methods.
func TestSessionAccessors(t *testing.T) {
	net, members := buildGroup(t, 4, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	s := members[0].Session()
	if s.Controller() != members[0].ID() || s.Last() != members[3].ID() {
		t.Fatal("controller/last wrong")
	}
	if s.Position(members[2].ID()) != 2 || s.Position("nobody") != -1 {
		t.Fatal("Position wrong")
	}
	if s.Neighbor(0, -1) != members[3].ID() || s.Neighbor(3, 1) != members[0].ID() {
		t.Fatal("ring neighbours wrong")
	}
}

// TestGroupKeyMatchesDirectComputation white-boxes equation (3): the
// protocol key equals g^{Σ r_i r_{i+1}} computed from the members' secret
// exponents.
func TestGroupKeyMatchesDirectComputation(t *testing.T) {
	net, members := buildGroup(t, 5, nil)
	if err := RunInitial(net, members); err != nil {
		t.Fatal(err)
	}
	sg := params.Default().Schnorr
	rs := make([]*big.Int, len(members))
	for i, mb := range members {
		rs[i] = mb.Session().R
	}
	want := bdkey.DirectKey(sg.G, rs, sg.Q, sg.P)
	if members[0].Key().Cmp(want) != 0 {
		t.Fatal("protocol key does not match equation (3)")
	}
}

// TestKeyUnpredictability (property): distinct runs produce distinct keys.
func TestKeyUnpredictability(t *testing.T) {
	seen := map[string]bool{}
	f := func(seed uint8) bool {
		_ = seed
		net, members := buildGroup(t, 2, nil)
		if err := RunInitial(net, members); err != nil {
			return false
		}
		k := members[0].Key().String()
		if seen[k] {
			return false
		}
		seen[k] = true
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestNewMemberValidation covers constructor error paths.
func TestNewMemberValidation(t *testing.T) {
	set := params.Default()
	sk, _ := gq.Extract(set.RSA, "x")
	if _, err := NewMember(Config{}, sk, nil); err == nil {
		t.Fatal("nil set accepted")
	}
	if _, err := NewMember(Config{Set: set.Public()}, nil, nil); err == nil {
		t.Fatal("nil key accepted")
	}
	mb, err := NewMember(Config{Set: set.Public()}, sk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Key() != nil || mb.Session() != nil {
		t.Fatal("fresh member must have no session")
	}
}

// TestMergeRejectsUnkeyedGroups covers merge validation.
func TestMergeRejectsUnkeyedGroups(t *testing.T) {
	net, a := buildGroup(t, 2, nil)
	_, b := buildGroup(t, 2, nil)
	if err := RunMerge(net, a, b); err == nil {
		t.Fatal("merge of unkeyed groups accepted")
	}
	if err := RunMerge(net, a[:1], b); err == nil {
		t.Fatal("merge with singleton accepted")
	}
}
