// Package sym provides the symmetric layer the dynamic protocols rely on:
// an AEAD cipher keyed from the current group key, plus the paper's
// identity-tagged key wrapping — E_K(K*||U_i) with the receiver checking
// that the sender identity decrypts correctly to validate K*.
//
// The paper's era would have used a block cipher in CBC mode with a MAC; we
// use AES-128-GCM, which preserves the accounting (one symmetric
// encryption / decryption per wrap) while being the right construction
// today. Studies [3][6] cited by the paper put symmetric costs orders of
// magnitude below modular exponentiation, which is exactly why the dynamic
// protocols win; internal/energy prices these operations accordingly.
package sym

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/hashx"
)

// KeySize is the AES key size used throughout (128-bit, the paper-era
// standard).
const KeySize = 16

// Cipher is an AEAD keyed from a group key.
type Cipher struct {
	aead cipher.AEAD
}

// New derives an AES-GCM cipher from arbitrary group-key material.
func New(groupKey []byte) (*Cipher, error) {
	if len(groupKey) == 0 {
		return nil, errors.New("sym: empty group key")
	}
	key := hashx.KDF(groupKey, hashx.TagSymKey, KeySize)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sym: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sym: %w", err)
	}
	return &Cipher{aead: aead}, nil
}

// NewFromBig keys the cipher from a big.Int group key (the GKA output).
func NewFromBig(k *big.Int) (*Cipher, error) {
	if k == nil || k.Sign() == 0 {
		return nil, errors.New("sym: nil group key")
	}
	return New(k.Bytes())
}

// Seal encrypts plaintext with associated data, prefixing a random nonce.
func (c *Cipher) Seal(rnd io.Reader, plaintext, ad []byte) ([]byte, error) {
	nonce := make([]byte, c.aead.NonceSize())
	if _, err := io.ReadFull(rnd, nonce); err != nil {
		return nil, fmt.Errorf("sym: nonce: %w", err)
	}
	return c.aead.Seal(nonce, nonce, plaintext, ad), nil
}

// Open decrypts a Seal output.
func (c *Cipher) Open(ciphertext, ad []byte) ([]byte, error) {
	ns := c.aead.NonceSize()
	if len(ciphertext) < ns {
		return nil, errors.New("sym: ciphertext too short")
	}
	pt, err := c.aead.Open(nil, ciphertext[:ns], ciphertext[ns:], ad)
	if err != nil {
		return nil, errors.New("sym: authentication failed")
	}
	return pt, nil
}

// WrapSecret implements the paper's E_K(secret || senderID) pattern used by
// the Join and Merge protocols to distribute intermediate keys.
func (c *Cipher) WrapSecret(rnd io.Reader, secret *big.Int, senderID string) ([]byte, error) {
	if secret == nil {
		return nil, errors.New("sym: nil secret")
	}
	sb := secret.Bytes()
	buf := make([]byte, 4+len(sb)+len(senderID))
	buf[0] = byte(len(sb) >> 24)
	buf[1] = byte(len(sb) >> 16)
	buf[2] = byte(len(sb) >> 8)
	buf[3] = byte(len(sb))
	copy(buf[4:], sb)
	copy(buf[4+len(sb):], senderID)
	return c.Seal(rnd, buf, nil)
}

// UnwrapSecret decrypts a WrapSecret payload and performs the paper's
// identity check: the decrypted sender identity must match the expected
// one, which validates the wrapped secret's origin.
func (c *Cipher) UnwrapSecret(ciphertext []byte, expectSender string) (*big.Int, error) {
	pt, err := c.Open(ciphertext, nil)
	if err != nil {
		return nil, err
	}
	if len(pt) < 4 {
		return nil, errors.New("sym: wrapped secret truncated")
	}
	sl := int(pt[0])<<24 | int(pt[1])<<16 | int(pt[2])<<8 | int(pt[3])
	if sl < 0 || 4+sl > len(pt) {
		return nil, errors.New("sym: wrapped secret malformed")
	}
	sender := string(pt[4+sl:])
	if sender != expectSender {
		return nil, fmt.Errorf("sym: identity check failed: got %q want %q", sender, expectSender)
	}
	return new(big.Int).SetBytes(pt[4 : 4+sl]), nil
}

// DefaultRand is the randomness source used by convenience wrappers.
var DefaultRand io.Reader = rand.Reader
