package sym

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

func testCipher(t testing.TB) *Cipher {
	t.Helper()
	c, err := NewFromBig(big.NewInt(0x1122334455667788))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSealOpenRoundTrip(t *testing.T) {
	c := testCipher(t)
	pt := []byte("the quick brown fox")
	ad := []byte("round-3")
	ct, err := c.Seal(rand.Reader, pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Open(ct, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("round trip mismatch")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	c := testCipher(t)
	ct, _ := c.Seal(rand.Reader, []byte("secret"), nil)
	ct[len(ct)-1] ^= 1
	if _, err := c.Open(ct, nil); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
}

func TestOpenRejectsWrongAD(t *testing.T) {
	c := testCipher(t)
	ct, _ := c.Seal(rand.Reader, []byte("secret"), []byte("ad1"))
	if _, err := c.Open(ct, []byte("ad2")); err == nil {
		t.Fatal("wrong AD accepted")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	c1 := testCipher(t)
	c2, _ := NewFromBig(big.NewInt(999))
	ct, _ := c1.Seal(rand.Reader, []byte("secret"), nil)
	if _, err := c2.Open(ct, nil); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestOpenRejectsShortCiphertext(t *testing.T) {
	c := testCipher(t)
	if _, err := c.Open([]byte{1, 2, 3}, nil); err == nil {
		t.Fatal("short ciphertext accepted")
	}
}

func TestWrapUnwrapSecret(t *testing.T) {
	c := testCipher(t)
	secret := new(big.Int).Lsh(big.NewInt(0xabcdef), 500)
	ct, err := c.WrapSecret(rand.Reader, secret, "U1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.UnwrapSecret(ct, "U1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatal("secret mismatch")
	}
}

func TestUnwrapIdentityCheck(t *testing.T) {
	// The paper's validity check: decrypted identity must match.
	c := testCipher(t)
	ct, _ := c.WrapSecret(rand.Reader, big.NewInt(42), "U1")
	if _, err := c.UnwrapSecret(ct, "U2"); err == nil {
		t.Fatal("identity mismatch accepted")
	}
}

func TestWrapZeroAndEmptyEdge(t *testing.T) {
	c := testCipher(t)
	ct, err := c.WrapSecret(rand.Reader, big.NewInt(0), "U1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.UnwrapSecret(ct, "U1")
	if err != nil || got.Sign() != 0 {
		t.Fatal("zero secret round trip failed")
	}
	if _, err := c.WrapSecret(rand.Reader, nil, "U1"); err == nil {
		t.Fatal("nil secret accepted")
	}
}

func TestNewRejectsEmptyKey(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := NewFromBig(nil); err == nil {
		t.Fatal("nil big key accepted")
	}
	if _, err := NewFromBig(big.NewInt(0)); err == nil {
		t.Fatal("zero big key accepted")
	}
}

func TestDistinctKeysFromDistinctGroupKeys(t *testing.T) {
	c1, _ := NewFromBig(big.NewInt(1))
	c2, _ := NewFromBig(big.NewInt(2))
	ct, _ := c1.Seal(rand.Reader, []byte("x"), nil)
	if _, err := c2.Open(ct, nil); err == nil {
		t.Fatal("different group keys derived the same cipher")
	}
}
