package meter

import (
	"sync"
	"testing"
)

func TestNilMeterIsNoOp(t *testing.T) {
	var m *Meter
	m.Exp(3)
	m.SignGen(SchemeGQ, 1)
	m.Tx(100)
	r := m.Report()
	if r.Exp != 0 || r.MsgTx != 0 {
		t.Fatal("nil meter accumulated counts")
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := New()
	m.Exp(3)
	m.Exp(2)
	m.SignGen(SchemeGQ, 1)
	m.SignVer(SchemeGQ, 1)
	m.SignVer(SchemeECDSA, 4)
	m.Cert(1, 9, 9)
	m.MapToPoint(2)
	m.Pairing(3)
	m.Sym(2, 5)
	m.Tx(128)
	m.Tx(32)
	m.Rx(64)
	r := m.Report()
	if r.Exp != 5 {
		t.Fatalf("Exp = %d, want 5", r.Exp)
	}
	if r.SignGen[SchemeGQ] != 1 || r.SignVer[SchemeGQ] != 1 || r.SignVer[SchemeECDSA] != 4 {
		t.Fatalf("signature counters wrong: %+v", r)
	}
	if r.CertTx != 1 || r.CertRx != 9 || r.CertVer != 9 {
		t.Fatalf("cert counters wrong: %+v", r)
	}
	if r.MsgTx != 2 || r.BytesTx != 160 || r.MsgRx != 1 || r.BytesRx != 64 {
		t.Fatalf("traffic counters wrong: %+v", r)
	}
	if r.SymEnc != 2 || r.SymDec != 5 || r.MapToPoint != 2 || r.Pairing != 3 {
		t.Fatalf("misc counters wrong: %+v", r)
	}
}

func TestZeroValueMeterUsable(t *testing.T) {
	var m Meter
	m.SignGen(SchemeDSA, 2)
	if got := m.Report().SignGen[SchemeDSA]; got != 2 {
		t.Fatalf("zero-value meter SignGen = %d, want 2", got)
	}
}

func TestReportAdd(t *testing.T) {
	a := NewReport()
	a.Exp = 3
	a.SignGen = map[Scheme]int{SchemeGQ: 1}
	b := NewReport()
	b.Exp = 4
	b.SignGen = map[Scheme]int{SchemeGQ: 2, SchemeSOK: 1}
	sum := a.Add(b)
	if sum.Exp != 7 || sum.SignGen[SchemeGQ] != 3 || sum.SignGen[SchemeSOK] != 1 {
		t.Fatalf("Add wrong: %+v", sum)
	}
	// Inputs untouched.
	if a.Exp != 3 || b.SignGen[SchemeGQ] != 2 {
		t.Fatal("Add mutated inputs")
	}
}

func TestTotals(t *testing.T) {
	r := NewReport()
	r.SignGen[SchemeGQ] = 2
	r.SignGen[SchemeDSA] = 3
	r.SignVer[SchemeSOK] = 4
	if r.TotalSignGen() != 5 || r.TotalSignVer() != 4 {
		t.Fatalf("totals wrong: %d %d", r.TotalSignGen(), r.TotalSignVer())
	}
}

func TestMeterConcurrentSafety(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Exp(1)
				m.Tx(10)
			}
		}()
	}
	wg.Wait()
	r := m.Report()
	if r.Exp != 16000 || r.MsgTx != 16000 || r.BytesTx != 160000 {
		t.Fatalf("lost updates: %+v", r)
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.Exp(5)
	m.Reset()
	if m.Report().Exp != 0 {
		t.Fatal("Reset did not clear")
	}
	m.Exp(1)
	if m.Report().Exp != 1 {
		t.Fatal("meter unusable after Reset")
	}
}
