// Package meter counts the operations the paper's complexity and energy
// analysis charges for: modular exponentiations, signature generation and
// verification per scheme, certificate handling, MapToPoint, pairings,
// symmetric operations, and message/byte traffic.
//
// A *Meter is attached to each protocol participant; every method is
// nil-safe so uninstrumented runs pay nothing. Reports are plain value
// structs that can be added, compared against the analytic formulas of
// internal/analytic, and priced by internal/energy.
package meter

import "sync"

// Scheme identifies a signature scheme for per-scheme counters.
type Scheme string

// The four signature schemes of the paper's comparison.
const (
	SchemeGQ    Scheme = "GQ"
	SchemeDSA   Scheme = "DSA"
	SchemeECDSA Scheme = "ECDSA"
	SchemeSOK   Scheme = "SOK"
)

// Report is a snapshot of all counters for one participant (or the sum over
// participants). Fields mirror the rows of the paper's Tables 1 and 4.
type Report struct {
	// Exp counts group exponentiations charged by the paper's "Exp." row:
	// z_i, X_i and key computation in the Schnorr group, plus the SSN
	// scheme's n-dependent exponentiations.
	Exp int
	// SignGen / SignVer count signature operations per scheme. A batch
	// verification counts as ONE SignVer for the verifying scheme, which is
	// exactly the accounting that makes the proposed protocol win.
	SignGen map[Scheme]int
	SignVer map[Scheme]int
	// Certificate traffic and verification (certificate-based baselines).
	CertTx, CertRx, CertVer int
	// MapToPoint and Pairing are pairing-substrate operations (SOK).
	MapToPoint, Pairing int
	// Symmetric-key operations used by the dynamic protocols.
	SymEnc, SymDec int
	// Message and byte traffic.
	MsgTx, MsgRx     int
	BytesTx, BytesRx int64
	// State-transfer bytes: payload carrying session state (z/t tables) to
	// joiners and merged groups. The paper's protocols leave this state
	// acquisition unspecified (see DESIGN.md §4); we meter it separately so
	// the paper-comparable BytesTx/BytesRx stay clean.
	StateTx, StateRx int64
}

// NewReport returns a Report with allocated maps.
func NewReport() Report {
	return Report{SignGen: map[Scheme]int{}, SignVer: map[Scheme]int{}}
}

// Add returns the field-wise sum of r and o.
func (r Report) Add(o Report) Report {
	sum := NewReport()
	sum.Exp = r.Exp + o.Exp
	for _, src := range []Report{r, o} {
		for k, v := range src.SignGen {
			sum.SignGen[k] += v
		}
		for k, v := range src.SignVer {
			sum.SignVer[k] += v
		}
	}
	sum.CertTx = r.CertTx + o.CertTx
	sum.CertRx = r.CertRx + o.CertRx
	sum.CertVer = r.CertVer + o.CertVer
	sum.MapToPoint = r.MapToPoint + o.MapToPoint
	sum.Pairing = r.Pairing + o.Pairing
	sum.SymEnc = r.SymEnc + o.SymEnc
	sum.SymDec = r.SymDec + o.SymDec
	sum.MsgTx = r.MsgTx + o.MsgTx
	sum.MsgRx = r.MsgRx + o.MsgRx
	sum.BytesTx = r.BytesTx + o.BytesTx
	sum.BytesRx = r.BytesRx + o.BytesRx
	sum.StateTx = r.StateTx + o.StateTx
	sum.StateRx = r.StateRx + o.StateRx
	return sum
}

// TotalSignGen sums signature generations across schemes.
func (r Report) TotalSignGen() int {
	t := 0
	for _, v := range r.SignGen {
		t += v
	}
	return t
}

// TotalSignVer sums signature verifications across schemes.
func (r Report) TotalSignVer() int {
	t := 0
	for _, v := range r.SignVer {
		t += v
	}
	return t
}

// Meter accumulates a Report. The zero value is ready to use; a nil *Meter
// is a valid no-op sink. All methods are safe for concurrent use.
type Meter struct {
	mu sync.Mutex
	r  Report
}

// New returns an empty meter.
func New() *Meter { return &Meter{r: NewReport()} }

func (m *Meter) locked(f func(r *Report)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.r.SignGen == nil {
		m.r.SignGen = map[Scheme]int{}
		m.r.SignVer = map[Scheme]int{}
	}
	f(&m.r)
}

// Exp records n group exponentiations.
func (m *Meter) Exp(n int) { m.locked(func(r *Report) { r.Exp += n }) }

// SignGen records a signature generation under the given scheme.
func (m *Meter) SignGen(s Scheme, n int) { m.locked(func(r *Report) { r.SignGen[s] += n }) }

// SignVer records a signature verification (a batch counts once).
func (m *Meter) SignVer(s Scheme, n int) { m.locked(func(r *Report) { r.SignVer[s] += n }) }

// Cert records certificate transmissions, receptions and verifications.
func (m *Meter) Cert(tx, rx, ver int) {
	m.locked(func(r *Report) { r.CertTx += tx; r.CertRx += rx; r.CertVer += ver })
}

// MapToPoint records n hash-to-group operations.
func (m *Meter) MapToPoint(n int) { m.locked(func(r *Report) { r.MapToPoint += n }) }

// Pairing records n pairing evaluations.
func (m *Meter) Pairing(n int) { m.locked(func(r *Report) { r.Pairing += n }) }

// Sym records symmetric encryptions and decryptions.
func (m *Meter) Sym(enc, dec int) { m.locked(func(r *Report) { r.SymEnc += enc; r.SymDec += dec }) }

// Tx records one transmitted message of the given byte size.
func (m *Meter) Tx(bytes int) { m.locked(func(r *Report) { r.MsgTx++; r.BytesTx += int64(bytes) }) }

// Rx records one received message of the given byte size.
func (m *Meter) Rx(bytes int) { m.locked(func(r *Report) { r.MsgRx++; r.BytesRx += int64(bytes) }) }

// TxState reclassifies bytes of the latest transmission as state transfer.
func (m *Meter) TxState(bytes int) {
	m.locked(func(r *Report) { r.BytesTx -= int64(bytes); r.StateTx += int64(bytes) })
}

// RxState reclassifies bytes of the latest reception as state transfer.
func (m *Meter) RxState(bytes int) {
	m.locked(func(r *Report) { r.BytesRx -= int64(bytes); r.StateRx += int64(bytes) })
}

// Report returns a copy of the current counters.
func (m *Meter) Report() Report {
	if m == nil {
		return NewReport()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewReport()
	out = out.Add(m.r)
	return out
}

// Reset clears all counters.
func (m *Meter) Reset() {
	m.locked(func(r *Report) { *r = NewReport() })
}
