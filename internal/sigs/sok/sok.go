// Package sok implements the Sakai-Ohgishi-Kasahara identity-based
// signature scheme over the supersingular pairing of internal/pairing.
// It is the paper's "BD with SOK" baseline: ID-based like GQ, but each
// verification costs three pairing evaluations plus a MapToPoint, which is
// what makes it lose the energy comparison.
//
// Scheme (symmetric pairing ê : G × G → GT, generator G, master key s,
// P_pub = s·G):
//
//	Extract: Q_ID = H1(ID) ∈ G (MapToPoint), D_ID = s·Q_ID.
//	Sign:    r ∈R Z_q, U = r·G, h = H2(ID, m, U) ∈ Z_q,
//	         V = D_ID + (r·h)·G.  Signature σ = (U, V).
//	Verify:  ê(V, G) == ê(Q_ID, P_pub) · ê(G, U)^h.
//
// Correctness: ê(V,G) = ê(s·Q_ID,G)·ê(rh·G,G)
//
//	= ê(Q_ID,P_pub)·ê(G,r·G)^h = ê(Q_ID,P_pub)·ê(G,U)^h.
package sok

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/hashx"
	"idgka/internal/pairing"
)

// SystemParams carries the public SOK parameters shared by all users.
type SystemParams struct {
	Group *pairing.Group
	PPub  pairing.Point // master public key s·G
}

// PKG is the SOK private key generator holding the master secret.
type PKG struct {
	Params SystemParams
	//gkalint:secret
	s *big.Int
}

// NewPKG draws a master key pair over the group.
func NewPKG(r io.Reader, g *pairing.Group) (*PKG, error) {
	s, err := g.RandScalar(r)
	if err != nil {
		return nil, fmt.Errorf("sok: master key: %w", err)
	}
	return &PKG{
		Params: SystemParams{Group: g, PPub: g.ScalarBaseMult(s)},
		s:      s,
	}, nil
}

// PrivateKey is the extracted identity key D_ID = s·H1(ID).
type PrivateKey struct {
	ID string
	//gkalint:secret
	D      pairing.Point
	Params SystemParams
}

// Extract derives the private key for an identity (one MapToPoint plus one
// scalar multiplication; PKG-only).
func (p *PKG) Extract(id string) (*PrivateKey, error) {
	if id == "" {
		return nil, errors.New("sok: empty identity")
	}
	q, err := p.Params.Group.HashToGroup(id)
	if err != nil {
		return nil, err
	}
	return &PrivateKey{
		ID:     id,
		D:      p.Params.Group.ScalarMult(q, p.s),
		Params: p.Params,
	}, nil
}

// Signature is the SOK pair (U, V) of group elements.
type Signature struct {
	U, V pairing.Point
}

// Sign produces σ = (U, V) on msg.
func (sk *PrivateKey) Sign(rnd io.Reader, msg []byte) (*Signature, error) {
	g := sk.Params.Group
	r, err := g.RandScalar(rnd)
	if err != nil {
		return nil, err
	}
	u := g.ScalarBaseMult(r)
	h := challenge(g, sk.ID, msg, u)
	rh := new(big.Int).Mul(r, h)
	rh.Mod(rh, g.Order())
	v := g.Add(sk.D, g.ScalarBaseMult(rh))
	return &Signature{U: u, V: v}, nil
}

// Verify checks σ against the identity: three pairings plus one MapToPoint.
func Verify(p SystemParams, id string, msg []byte, sig *Signature) error {
	if sig == nil {
		return errors.New("sok: nil signature")
	}
	g := p.Group
	if err := g.CheckSubgroup(sig.U); err != nil {
		return fmt.Errorf("sok: U invalid: %w", err)
	}
	if err := g.CheckSubgroup(sig.V); err != nil {
		return fmt.Errorf("sok: V invalid: %w", err)
	}
	qID, err := g.HashToGroup(id) // MapToPoint
	if err != nil {
		return err
	}
	h := challenge(g, id, msg, sig.U)
	lhs, err := g.Pair(sig.V, g.Generator())
	if err != nil {
		return err
	}
	e1, err := g.Pair(qID, p.PPub)
	if err != nil {
		return err
	}
	e2, err := g.Pair(g.Generator(), sig.U)
	if err != nil {
		return err
	}
	rhs := g.MulGT(e1, g.Exp(e2, h))
	if !lhs.Equal(rhs) {
		return errors.New("sok: verification failed")
	}
	return nil
}

// challenge computes h = H2(ID, m, U) ∈ Z_q.
func challenge(g *pairing.Group, id string, msg []byte, u pairing.Point) *big.Int {
	return hashx.ScalarDigest(hashx.TagSOKDigest, g.Order(), []byte(id), msg, g.Marshal(u))
}

// Encode serialises the signature as U || V (uncompressed points).
func (s *Signature) Encode(g *pairing.Group) []byte {
	u := g.Marshal(s.U)
	v := g.Marshal(s.V)
	return append(u, v...)
}

// Decode parses a signature produced by Encode.
func Decode(g *pairing.Group, data []byte) (*Signature, error) {
	bl := 2 * ((g.Params().P.BitLen() + 7) / 8)
	if len(data) != 2*bl {
		return nil, fmt.Errorf("sok: bad signature length %d", len(data))
	}
	u, err := g.Unmarshal(data[:bl])
	if err != nil {
		return nil, err
	}
	v, err := g.Unmarshal(data[bl:])
	if err != nil {
		return nil, err
	}
	return &Signature{U: u, V: v}, nil
}
