package sok

import (
	"crypto/rand"
	"sync"
	"testing"

	"idgka/internal/pairing"
	"idgka/internal/params"
)

var (
	pkgOnce sync.Once
	pkgInst *PKG
)

func testPKG(t testing.TB) *PKG {
	t.Helper()
	pkgOnce.Do(func() {
		g, err := pairing.NewGroup(params.Default().Pairing)
		if err != nil {
			panic(err)
		}
		p, err := NewPKG(rand.Reader, g)
		if err != nil {
			panic(err)
		}
		pkgInst = p
	})
	return pkgInst
}

func TestSignVerify(t *testing.T) {
	p := testPKG(t)
	sk, err := p.Extract("alice")
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	msg := []byte("BD round payload")
	sig, err := sk.Sign(rand.Reader, msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := Verify(p.Params, "alice", msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsWrongIdentity(t *testing.T) {
	p := testPKG(t)
	sk, _ := p.Extract("alice")
	sig, _ := sk.Sign(rand.Reader, []byte("m"))
	if err := Verify(p.Params, "bob", []byte("m"), sig); err == nil {
		t.Fatal("wrong identity accepted")
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	p := testPKG(t)
	sk, _ := p.Extract("alice")
	sig, _ := sk.Sign(rand.Reader, []byte("original"))
	if err := Verify(p.Params, "alice", []byte("tampered"), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
}

func TestVerifyRejectsSwappedComponents(t *testing.T) {
	p := testPKG(t)
	sk, _ := p.Extract("alice")
	sig, _ := sk.Sign(rand.Reader, []byte("m"))
	bad := &Signature{U: sig.V, V: sig.U}
	if err := Verify(p.Params, "alice", []byte("m"), bad); err == nil {
		t.Fatal("swapped components accepted")
	}
}

func TestVerifyRejectsNilAndOffCurve(t *testing.T) {
	p := testPKG(t)
	if err := Verify(p.Params, "alice", []byte("m"), nil); err == nil {
		t.Fatal("nil signature accepted")
	}
	sk, _ := p.Extract("alice")
	sig, _ := sk.Sign(rand.Reader, []byte("m"))
	bad := &Signature{U: pairing.Infinity(), V: sig.V}
	// Infinity is technically in the subgroup; ensure verification fails
	// rather than panics.
	if err := Verify(p.Params, "alice", []byte("m"), bad); err == nil {
		t.Fatal("U = infinity accepted")
	}
}

func TestExtractRejectsEmptyID(t *testing.T) {
	p := testPKG(t)
	if _, err := p.Extract(""); err == nil {
		t.Fatal("empty identity accepted")
	}
}

func TestSignaturesDifferAcrossCalls(t *testing.T) {
	p := testPKG(t)
	sk, _ := p.Extract("alice")
	s1, _ := sk.Sign(rand.Reader, []byte("m"))
	s2, _ := sk.Sign(rand.Reader, []byte("m"))
	if s1.U.Equal(s2.U) {
		t.Fatal("randomised signatures repeated U")
	}
	if err := Verify(p.Params, "alice", []byte("m"), s1); err != nil {
		t.Fatal(err)
	}
	if err := Verify(p.Params, "alice", []byte("m"), s2); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := testPKG(t)
	sk, _ := p.Extract("alice")
	sig, _ := sk.Sign(rand.Reader, []byte("m"))
	g := p.Params.Group
	enc := sig.Encode(g)
	dec, err := Decode(g, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.U.Equal(sig.U) || !dec.V.Equal(sig.V) {
		t.Fatal("round trip mismatch")
	}
	if _, err := Decode(g, enc[:len(enc)-1]); err == nil {
		t.Fatal("short encoding accepted")
	}
}

func TestCrossUserIndependence(t *testing.T) {
	// A key extracted for alice must not sign for carol even with the same
	// PKG.
	p := testPKG(t)
	alice, _ := p.Extract("alice")
	carol, _ := p.Extract("carol")
	sig, _ := alice.Sign(rand.Reader, []byte("m"))
	if err := Verify(p.Params, carol.ID, []byte("m"), sig); err == nil {
		t.Fatal("alice's signature verified as carol")
	}
}

func BenchmarkSign(b *testing.B) {
	p := testPKG(b)
	sk, _ := p.Extract("bench")
	msg := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Sign(rand.Reader, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	p := testPKG(b)
	sk, _ := p.Extract("bench")
	msg := []byte("bench")
	sig, _ := sk.Sign(rand.Reader, msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(p.Params, "bench", msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
