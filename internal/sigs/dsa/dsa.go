// Package dsa implements the Digital Signature Algorithm over a Schnorr
// group from scratch, providing the paper's "BD with 1024-bit DSA"
// certificate-based baseline.
//
// Signatures are the classic (r, s) pair of q-sized integers (2×160 bits =
// 320 bits on the wire, the size Table 3 charges for).
package dsa

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/hashx"
	"idgka/internal/mathx"
)

// KeyPair holds a DSA private/public key over the given Schnorr group.
type KeyPair struct {
	Group *mathx.SchnorrGroup
	//gkalint:secret
	X *big.Int // private, in [1, q-1]
	Y *big.Int // public, g^x mod p
}

// Signature is the DSA pair (r, s), both in [1, q-1].
type Signature struct {
	R, S *big.Int
}

// GenerateKey draws a fresh key pair.
func GenerateKey(rnd io.Reader, g *mathx.SchnorrGroup) (*KeyPair, error) {
	x, err := mathx.RandScalar(rnd, g.Q)
	if err != nil {
		return nil, fmt.Errorf("dsa: keygen: %w", err)
	}
	return &KeyPair{Group: g, X: x, Y: g.Exp(x)}, nil
}

// PublicOnly returns a verification-only copy of the key pair.
func (kp *KeyPair) PublicOnly() *KeyPair {
	return &KeyPair{Group: kp.Group, Y: kp.Y}
}

// Sign produces a signature on msg. The per-signature nonce k is drawn from
// rnd; the rare degenerate cases (r = 0 or s = 0) are retried.
func (kp *KeyPair) Sign(rnd io.Reader, msg []byte) (*Signature, error) {
	if kp.X == nil {
		return nil, errors.New("dsa: signing needs the private key")
	}
	g := kp.Group
	h := hashx.ScalarDigest(hashx.TagDSADigest, g.Q, msg)
	for attempt := 0; attempt < 64; attempt++ {
		k, err := mathx.RandScalar(rnd, g.Q)
		if err != nil {
			return nil, err
		}
		r := g.Exp(k)
		r.Mod(r, g.Q)
		if r.Sign() == 0 {
			continue
		}
		kInv, err := mathx.ModInverse(k, g.Q)
		if err != nil {
			continue
		}
		// s = k^-1 (h + x r) mod q
		s := new(big.Int).Mul(kp.X, r)
		s.Add(s, h)
		s.Mul(s, kInv)
		s.Mod(s, g.Q)
		if s.Sign() == 0 {
			continue
		}
		return &Signature{R: r, S: s}, nil
	}
	return nil, errors.New("dsa: signing retries exhausted")
}

// Verify checks a signature against the public key in kp.
func (kp *KeyPair) Verify(msg []byte, sig *Signature) error {
	if sig == nil || sig.R == nil || sig.S == nil {
		return errors.New("dsa: malformed signature")
	}
	g := kp.Group
	if sig.R.Sign() <= 0 || sig.R.Cmp(g.Q) >= 0 || sig.S.Sign() <= 0 || sig.S.Cmp(g.Q) >= 0 {
		return errors.New("dsa: signature component out of range")
	}
	h := hashx.ScalarDigest(hashx.TagDSADigest, g.Q, msg)
	w, err := mathx.ModInverse(sig.S, g.Q)
	if err != nil {
		return errors.New("dsa: s not invertible")
	}
	u1 := new(big.Int).Mul(h, w)
	u1.Mod(u1, g.Q)
	u2 := new(big.Int).Mul(sig.R, w)
	u2.Mod(u2, g.Q)
	// v = (g^u1 · y^u2 mod p) mod q. The g^u1 leg is a fixed-base power;
	// when the group carries a precomputation table (sg.Precompute) it is
	// read from the table — bit-identical to big.Exp — while the
	// variable-base y^u2 leg stays on big.Exp.
	var v *big.Int
	if tab := g.FixedBase(); tab != nil && tab.Covers(u1) {
		v = tab.Exp(u1)
	} else {
		v = new(big.Int).Exp(g.G, u1, g.P)
	}
	yv := new(big.Int).Exp(kp.Y, u2, g.P)
	v.Mul(v, yv)
	v.Mod(v, g.P)
	v.Mod(v, g.Q)
	if v.Cmp(sig.R) != 0 {
		return errors.New("dsa: verification failed")
	}
	return nil
}

// Encode serialises the signature as two q-sized big-endian blocks.
func (s *Signature) Encode(q *big.Int) []byte {
	bl := (q.BitLen() + 7) / 8
	out := make([]byte, 2*bl)
	s.R.FillBytes(out[:bl])
	s.S.FillBytes(out[bl:])
	return out
}

// Decode parses a signature produced by Encode.
func Decode(data []byte, q *big.Int) (*Signature, error) {
	bl := (q.BitLen() + 7) / 8
	if len(data) != 2*bl {
		return nil, fmt.Errorf("dsa: bad signature length %d", len(data))
	}
	return &Signature{
		R: new(big.Int).SetBytes(data[:bl]),
		S: new(big.Int).SetBytes(data[bl:]),
	}, nil
}
