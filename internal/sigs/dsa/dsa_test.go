package dsa

import (
	"crypto/rand"
	"math/big"
	"testing"

	"idgka/internal/mathx"
	"idgka/internal/params"
)

func testGroupKey(t testing.TB) *KeyPair {
	t.Helper()
	kp, err := GenerateKey(rand.Reader, params.Default().Schnorr)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return kp
}

func TestSignVerify(t *testing.T) {
	kp := testGroupKey(t)
	msg := []byte("BD round 2 payload")
	sig, err := kp.Sign(rand.Reader, msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := kp.Verify(msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if err := kp.PublicOnly().Verify(msg, sig); err != nil {
		t.Fatalf("Verify with public-only key: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	kp := testGroupKey(t)
	msg := []byte("m")
	sig, _ := kp.Sign(rand.Reader, msg)
	if err := kp.Verify([]byte("other"), sig); err == nil {
		t.Fatal("wrong message accepted")
	}
	bad := &Signature{R: new(big.Int).Add(sig.R, big.NewInt(1)), S: sig.S}
	if err := kp.Verify(msg, bad); err == nil {
		t.Fatal("tampered r accepted")
	}
	bad = &Signature{R: sig.R, S: new(big.Int).Add(sig.S, big.NewInt(1))}
	if err := kp.Verify(msg, bad); err == nil {
		t.Fatal("tampered s accepted")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	kp1 := testGroupKey(t)
	kp2 := testGroupKey(t)
	sig, _ := kp1.Sign(rand.Reader, []byte("m"))
	if err := kp2.Verify([]byte("m"), sig); err == nil {
		t.Fatal("signature accepted under wrong key")
	}
}

func TestVerifyRejectsRangeViolations(t *testing.T) {
	kp := testGroupKey(t)
	q := kp.Group.Q
	for _, sig := range []*Signature{
		nil,
		{R: big.NewInt(0), S: big.NewInt(1)},
		{R: big.NewInt(1), S: big.NewInt(0)},
		{R: q, S: big.NewInt(1)},
		{R: big.NewInt(1), S: q},
	} {
		if err := kp.Verify([]byte("m"), sig); err == nil {
			t.Fatalf("out-of-range signature accepted: %+v", sig)
		}
	}
}

// TestVerifyFixedBaseMatches pins the fixed-base verify path to the plain
// path: the same signature must verify (and the same tampered one must
// fail) whether or not the group carries a precomputation table.
func TestVerifyFixedBaseMatches(t *testing.T) {
	def := params.Default().Schnorr
	plain := &mathx.SchnorrGroup{P: def.P, Q: def.Q, G: def.G}
	accel := &mathx.SchnorrGroup{P: def.P, Q: def.Q, G: def.G}
	if accel.Precompute() == nil {
		t.Fatal("Precompute returned nil table")
	}
	kp, err := GenerateKey(rand.Reader, plain)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	kpAccel := &KeyPair{Group: accel, Y: kp.Y}
	for i := 0; i < 8; i++ {
		msg := []byte{byte(i), 'm'}
		sig, err := kp.Sign(rand.Reader, msg)
		if err != nil {
			t.Fatalf("Sign: %v", err)
		}
		if err := kpAccel.Verify(msg, sig); err != nil {
			t.Fatalf("fixed-base Verify rejected a good signature: %v", err)
		}
		bad := &Signature{R: sig.R, S: new(big.Int).Add(sig.S, big.NewInt(1))}
		if kpAccel.Verify(msg, bad) == nil {
			t.Fatal("fixed-base Verify accepted a tampered signature")
		}
	}
}

func TestSignRequiresPrivate(t *testing.T) {
	kp := testGroupKey(t).PublicOnly()
	if _, err := kp.Sign(rand.Reader, []byte("m")); err == nil {
		t.Fatal("public-only key signed")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	kp := testGroupKey(t)
	sig, _ := kp.Sign(rand.Reader, []byte("m"))
	enc := sig.Encode(kp.Group.Q)
	if len(enc) != 40 { // 2 × 160-bit
		t.Fatalf("DSA signature wire size %d, want 40", len(enc))
	}
	dec, err := Decode(enc, kp.Group.Q)
	if err != nil {
		t.Fatal(err)
	}
	if dec.R.Cmp(sig.R) != 0 || dec.S.Cmp(sig.S) != 0 {
		t.Fatal("round trip mismatch")
	}
	if _, err := Decode(enc[:len(enc)-1], kp.Group.Q); err == nil {
		t.Fatal("short encoding accepted")
	}
}

func BenchmarkSign(b *testing.B) {
	kp := testGroupKey(b)
	msg := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kp.Sign(rand.Reader, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	kp := testGroupKey(b)
	msg := []byte("bench")
	sig, _ := kp.Sign(rand.Reader, msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kp.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
