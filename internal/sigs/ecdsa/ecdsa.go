// Package ecdsa implements ECDSA over internal/ec from scratch, providing
// the paper's "BD with 160-bit ECDSA" certificate-based baseline
// (secp160r1 by default).
//
// Signatures are (r, s), two order-sized integers — 320 bits on the wire at
// the 160-bit level, the size Table 3 charges.
package ecdsa

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/ec"
	"idgka/internal/hashx"
	"idgka/internal/mathx"
)

// KeyPair holds an ECDSA key pair on a curve.
type KeyPair struct {
	Curve *ec.Curve
	//gkalint:secret
	D *big.Int // private scalar
	Q ec.Point // public point D*G
}

// Signature is the ECDSA pair (r, s).
type Signature struct {
	R, S *big.Int
}

// GenerateKey draws a fresh key pair on the curve.
func GenerateKey(rnd io.Reader, c *ec.Curve) (*KeyPair, error) {
	d, err := c.RandScalar(rnd)
	if err != nil {
		return nil, fmt.Errorf("ecdsa: keygen: %w", err)
	}
	return &KeyPair{Curve: c, D: d, Q: c.ScalarBaseMult(d)}, nil
}

// PublicOnly returns a verification-only copy.
func (kp *KeyPair) PublicOnly() *KeyPair {
	return &KeyPair{Curve: kp.Curve, Q: kp.Q}
}

// Sign produces a signature on msg.
func (kp *KeyPair) Sign(rnd io.Reader, msg []byte) (*Signature, error) {
	if kp.D == nil {
		return nil, errors.New("ecdsa: signing needs the private key")
	}
	c := kp.Curve
	e := hashx.ScalarDigest(hashx.TagECDSADigest, c.N, msg)
	for attempt := 0; attempt < 64; attempt++ {
		k, err := c.RandScalar(rnd)
		if err != nil {
			return nil, err
		}
		pt := c.ScalarBaseMult(k)
		r := new(big.Int).Mod(pt.X, c.N)
		if r.Sign() == 0 {
			continue
		}
		kInv, err := mathx.ModInverse(k, c.N)
		if err != nil {
			continue
		}
		s := new(big.Int).Mul(kp.D, r)
		s.Add(s, e)
		s.Mul(s, kInv)
		s.Mod(s, c.N)
		if s.Sign() == 0 {
			continue
		}
		return &Signature{R: r, S: s}, nil
	}
	return nil, errors.New("ecdsa: signing retries exhausted")
}

// Verify checks sig on msg against the public key.
func (kp *KeyPair) Verify(msg []byte, sig *Signature) error {
	if sig == nil || sig.R == nil || sig.S == nil {
		return errors.New("ecdsa: malformed signature")
	}
	c := kp.Curve
	if sig.R.Sign() <= 0 || sig.R.Cmp(c.N) >= 0 || sig.S.Sign() <= 0 || sig.S.Cmp(c.N) >= 0 {
		return errors.New("ecdsa: signature component out of range")
	}
	if kp.Q.IsInfinity() || !c.IsOnCurve(kp.Q) {
		return errors.New("ecdsa: invalid public key")
	}
	e := hashx.ScalarDigest(hashx.TagECDSADigest, c.N, msg)
	w, err := mathx.ModInverse(sig.S, c.N)
	if err != nil {
		return errors.New("ecdsa: s not invertible")
	}
	u1 := new(big.Int).Mul(e, w)
	u1.Mod(u1, c.N)
	u2 := new(big.Int).Mul(sig.R, w)
	u2.Mod(u2, c.N)
	pt := c.Add(c.ScalarBaseMult(u1), c.ScalarMult(kp.Q, u2))
	if pt.IsInfinity() {
		return errors.New("ecdsa: verification failed (infinity)")
	}
	v := new(big.Int).Mod(pt.X, c.N)
	if v.Cmp(sig.R) != 0 {
		return errors.New("ecdsa: verification failed")
	}
	return nil
}

// Encode serialises the signature as two order-sized big-endian blocks.
func (s *Signature) Encode(c *ec.Curve) []byte {
	bl := (c.N.BitLen() + 7) / 8
	out := make([]byte, 2*bl)
	s.R.FillBytes(out[:bl])
	s.S.FillBytes(out[bl:])
	return out
}

// Decode parses a signature produced by Encode.
func Decode(data []byte, c *ec.Curve) (*Signature, error) {
	bl := (c.N.BitLen() + 7) / 8
	if len(data) != 2*bl {
		return nil, fmt.Errorf("ecdsa: bad signature length %d", len(data))
	}
	return &Signature{
		R: new(big.Int).SetBytes(data[:bl]),
		S: new(big.Int).SetBytes(data[bl:]),
	}, nil
}
