package ecdsa

import (
	"crypto/rand"
	"math/big"
	"testing"

	"idgka/internal/ec"
)

func testKey(t testing.TB, c *ec.Curve) *KeyPair {
	t.Helper()
	kp, err := GenerateKey(rand.Reader, c)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return kp
}

func TestSignVerifyBothCurves(t *testing.T) {
	for _, c := range []*ec.Curve{ec.Secp160r1(), ec.P256()} {
		kp := testKey(t, c)
		msg := []byte("BD round 2 payload")
		sig, err := kp.Sign(rand.Reader, msg)
		if err != nil {
			t.Fatalf("%s: Sign: %v", c.Name, err)
		}
		if err := kp.Verify(msg, sig); err != nil {
			t.Fatalf("%s: Verify: %v", c.Name, err)
		}
		if err := kp.PublicOnly().Verify(msg, sig); err != nil {
			t.Fatalf("%s: public-only verify: %v", c.Name, err)
		}
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	kp := testKey(t, ec.Secp160r1())
	msg := []byte("m")
	sig, _ := kp.Sign(rand.Reader, msg)
	if err := kp.Verify([]byte("other"), sig); err == nil {
		t.Fatal("wrong message accepted")
	}
	bad := &Signature{R: new(big.Int).Add(sig.R, big.NewInt(1)), S: sig.S}
	if err := kp.Verify(msg, bad); err == nil {
		t.Fatal("tampered r accepted")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	c := ec.Secp160r1()
	kp1 := testKey(t, c)
	kp2 := testKey(t, c)
	sig, _ := kp1.Sign(rand.Reader, []byte("m"))
	if err := kp2.Verify([]byte("m"), sig); err == nil {
		t.Fatal("signature accepted under wrong key")
	}
}

func TestVerifyRejectsRangeViolations(t *testing.T) {
	c := ec.Secp160r1()
	kp := testKey(t, c)
	for _, sig := range []*Signature{
		nil,
		{R: big.NewInt(0), S: big.NewInt(1)},
		{R: c.N, S: big.NewInt(1)},
		{R: big.NewInt(1), S: big.NewInt(0)},
	} {
		if err := kp.Verify([]byte("m"), sig); err == nil {
			t.Fatalf("out-of-range signature accepted: %+v", sig)
		}
	}
}

func TestVerifyRejectsBadPublicKey(t *testing.T) {
	c := ec.Secp160r1()
	kp := testKey(t, c)
	sig, _ := kp.Sign(rand.Reader, []byte("m"))
	bad := &KeyPair{Curve: c, Q: ec.Point{X: big.NewInt(1), Y: big.NewInt(1)}}
	if err := bad.Verify([]byte("m"), sig); err == nil {
		t.Fatal("off-curve public key accepted")
	}
}

func TestSignRequiresPrivate(t *testing.T) {
	kp := testKey(t, ec.Secp160r1()).PublicOnly()
	if _, err := kp.Sign(rand.Reader, []byte("m")); err == nil {
		t.Fatal("public-only key signed")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := ec.Secp160r1()
	kp := testKey(t, c)
	sig, _ := kp.Sign(rand.Reader, []byte("m"))
	enc := sig.Encode(c)
	// 168-bit order -> 21-byte components.
	if len(enc) != 42 {
		t.Fatalf("wire size %d, want 42", len(enc))
	}
	dec, err := Decode(enc, c)
	if err != nil {
		t.Fatal(err)
	}
	if dec.R.Cmp(sig.R) != 0 || dec.S.Cmp(sig.S) != 0 {
		t.Fatal("round trip mismatch")
	}
}

func BenchmarkSign160(b *testing.B) {
	kp := testKey(b, ec.Secp160r1())
	msg := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kp.Sign(rand.Reader, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify160(b *testing.B) {
	kp := testKey(b, ec.Secp160r1())
	msg := []byte("bench")
	sig, _ := kp.Sign(rand.Reader, msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kp.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
