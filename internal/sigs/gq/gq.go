// Package gq implements the variant of the Guillou-Quisquater ID-based
// signature scheme from Section 3 of the paper, together with the
// commitment/response split and the n-signature batch verification that
// Section 4's group key agreement is built on.
//
// Scheme summary (all arithmetic mod the PKG modulus n):
//
//	Setup:   PKG holds n = p'q', public exponent e, secret d with
//	         e·d ≡ 1 (mod λ(n)).
//	Extract: S_ID = H(ID)^d.
//	Sign:    τ ∈R Z_n^*, t = τ^e, c = H(t, M), s = τ·S_ID^c; σ = (s, c).
//	Verify:  c == H(s^e · H(ID)^{-c}, M).
//
// Batch verification over a set of signers sharing ONE challenge c:
//
//	c == H((Π s_i)^e · (Π H(ID_i))^{-c}, Z)
//
// which costs a single verification-sized computation regardless of the
// number of signers — the paper's core efficiency argument.
package gq

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/hashx"
	"idgka/internal/mathx"
)

// Params carries the public GQ parameters (n, e).
type Params struct {
	N *big.Int
	E *big.Int
}

// ParamsFrom extracts the public view of an RSA parameter set.
func ParamsFrom(rp *mathx.RSAParams) Params {
	return Params{N: rp.N, E: rp.E}
}

// PrivateKey is the ID-based secret S_ID = H(ID)^d delivered by the PKG.
type PrivateKey struct {
	ID  string
	S   *big.Int
	Pub Params
}

// Signature is the GQ pair σ = (s, c).
type Signature struct {
	S *big.Int // 1024-bit response
	C *big.Int // 160-bit challenge
}

// Extract computes the secret key for an identity using the PKG master
// exponent d. This is the paper's Extract phase; only the PKG can run it.
func Extract(rp *mathx.RSAParams, id string) (*PrivateKey, error) {
	if rp.D == nil {
		return nil, errors.New("gq: Extract requires the PKG master key")
	}
	if id == "" {
		return nil, errors.New("gq: empty identity")
	}
	h := hashx.IdentityDigest(id, rp.N)
	s := new(big.Int).Exp(h, rp.D, rp.N)
	return &PrivateKey{ID: id, S: s, Pub: ParamsFrom(rp)}, nil
}

// Commitment draws the per-signature randomness: τ ∈R Z_n^* and its public
// image t = τ^e mod n. In the group protocol, t is the value t_i broadcast
// in Round 1.
func Commitment(r io.Reader, pub Params) (tau, t *big.Int, err error) {
	tau, err = mathx.RandUnit(r, pub.N)
	if err != nil {
		return nil, nil, fmt.Errorf("gq: commitment: %w", err)
	}
	t = new(big.Int).Exp(tau, pub.E, pub.N)
	return tau, t, nil
}

// Respond computes the response s = τ·S_ID^c mod n for a previously drawn
// commitment τ and an agreed challenge c. In the group protocol this is the
// s_i broadcast in Round 2.
func (sk *PrivateKey) Respond(tau, c *big.Int) *big.Int {
	s := new(big.Int).Exp(sk.S, c, sk.Pub.N)
	s.Mul(s, tau)
	return s.Mod(s, sk.Pub.N)
}

// Sign produces a standalone signature σ = (s, c) on msg, used by the
// Join and Merge dynamic protocols.
func (sk *PrivateKey) Sign(r io.Reader, msg []byte) (*Signature, error) {
	tau, t, err := Commitment(r, sk.Pub)
	if err != nil {
		return nil, err
	}
	c := hashx.Challenge(hashx.TagChallenge, hashx.BigBytes(t), msg)
	return &Signature{S: sk.Respond(tau, c), C: c}, nil
}

// Verify checks a standalone signature: c == H(s^e · H(ID)^{-c}, msg).
func Verify(pub Params, id string, msg []byte, sig *Signature) error {
	if sig == nil || sig.S == nil || sig.C == nil {
		return errors.New("gq: malformed signature")
	}
	if sig.S.Sign() <= 0 || sig.S.Cmp(pub.N) >= 0 {
		return errors.New("gq: signature response out of range")
	}
	lhs, err := recoverCommitment(pub, []string{id}, sig.S, sig.C)
	if err != nil {
		return err
	}
	c := hashx.Challenge(hashx.TagChallenge, hashx.BigBytes(lhs), msg)
	if c.Cmp(sig.C) != 0 {
		return errors.New("gq: signature verification failed")
	}
	return nil
}

// recoverCommitment computes s^e · (Π H(ID_i))^{-c} mod n — the quantity
// that equals the (product of) commitment(s) for a valid (batch of)
// signature(s).
func recoverCommitment(pub Params, ids []string, s, c *big.Int) (*big.Int, error) {
	se := new(big.Int).Exp(s, pub.E, pub.N)
	hprod := big.NewInt(1)
	for _, id := range ids {
		hprod.Mul(hprod, hashx.IdentityDigest(id, pub.N))
		hprod.Mod(hprod, pub.N)
	}
	hInvC, err := mathx.ModExp(hprod, new(big.Int).Neg(c), pub.N)
	if err != nil {
		return nil, fmt.Errorf("gq: identity product not invertible: %w", err)
	}
	se.Mul(se, hInvC)
	return se.Mod(se, pub.N), nil
}

// GroupChallenge derives the common challenge c = H(T, Z) of the group
// protocol, where T = Π t_i mod n and Z = Π z_i mod p.
func GroupChallenge(t, z *big.Int) *big.Int {
	return hashx.Challenge(hashx.TagChallenge, hashx.BigBytes(t), hashx.BigBytes(z))
}

// BatchVerify checks equation (2) of the paper: given the signer
// identities, their responses s_i, the common challenge c and the bound
// value Z, it verifies all signatures with one exponentiation-sized check:
//
//	c == H((Π s_i)^e · (Π H(ID_i))^{-c}, Z)
func BatchVerify(pub Params, ids []string, responses []*big.Int, c, z *big.Int) error {
	if len(ids) == 0 || len(ids) != len(responses) {
		return errors.New("gq: batch size mismatch")
	}
	for i, s := range responses {
		if s == nil || s.Sign() <= 0 || s.Cmp(pub.N) >= 0 {
			return fmt.Errorf("gq: response %d out of range", i)
		}
	}
	sProd := mathx.ProductMod(responses, pub.N)
	lhs, err := recoverCommitment(pub, ids, sProd, c)
	if err != nil {
		return err
	}
	check := hashx.Challenge(hashx.TagChallenge, hashx.BigBytes(lhs), hashx.BigBytes(z))
	if check.Cmp(c) != 0 {
		return errors.New("gq: batch verification failed")
	}
	return nil
}

// SignDeterministicRand is a helper for tests that need reproducible
// signatures: it signs with the supplied reader instead of crypto/rand.
func (sk *PrivateKey) SignDeterministicRand(r io.Reader, msg []byte) (*Signature, error) {
	return sk.Sign(r, msg)
}

// SignDefault signs with crypto/rand.
func (sk *PrivateKey) SignDefault(msg []byte) (*Signature, error) {
	return sk.Sign(rand.Reader, msg)
}
