// Package gq implements the variant of the Guillou-Quisquater ID-based
// signature scheme from Section 3 of the paper, together with the
// commitment/response split and the n-signature batch verification that
// Section 4's group key agreement is built on.
//
// Scheme summary (all arithmetic mod the PKG modulus n):
//
//	Setup:   PKG holds n = p'q', public exponent e, secret d with
//	         e·d ≡ 1 (mod λ(n)).
//	Extract: S_ID = H(ID)^d.
//	Sign:    τ ∈R Z_n^*, t = τ^e, c = H(t, M), s = τ·S_ID^c; σ = (s, c).
//	Verify:  c == H(s^e · H(ID)^{-c}, M).
//
// Batch verification over a set of signers sharing ONE challenge c:
//
//	c == H((Π s_i)^e · (Π H(ID_i))^{-c}, Z)
//
// which costs a single verification-sized computation regardless of the
// number of signers — the paper's core efficiency argument.
package gq

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"idgka/internal/hashx"
	"idgka/internal/mathx"
)

// Params carries the public GQ parameters (n, e).
type Params struct {
	N *big.Int
	E *big.Int
}

// ParamsFrom extracts the public view of an RSA parameter set.
func ParamsFrom(rp *mathx.RSAParams) Params {
	return Params{N: rp.N, E: rp.E}
}

// PrivateKey is the ID-based secret S_ID = H(ID)^d delivered by the PKG.
type PrivateKey struct {
	ID string
	//gkalint:secret
	S   *big.Int
	Pub Params

	// fixedBase caches the windowed precomputation table for S_ID,
	// attached by Precompute. S_ID is exponentiated by a fresh challenge
	// on every response the member signs, so the table pays for itself
	// after a handful of rounds. Published atomically because one key may
	// be shared by an application goroutine and a verification pool.
	fixedBase atomic.Pointer[mathx.FixedBaseTable]
}

// Precompute attaches a fixed-base table for S_ID covering challenge-
// sized exponents, accelerating Respond (and hence Sign). Idempotent,
// safe for concurrent use, and mathematically transparent: responses are
// bit-identical to the naive computation.
func (sk *PrivateKey) Precompute() *mathx.FixedBaseTable {
	if sk == nil || sk.S == nil || sk.Pub.N == nil {
		return nil
	}
	if t := sk.fixedBase.Load(); t != nil {
		return t
	}
	t, err := mathx.NewFixedBaseTable(sk.S, sk.Pub.N, hashx.ChallengeBits, mathx.DefaultWindow)
	if err != nil {
		return nil
	}
	sk.fixedBase.CompareAndSwap(nil, t)
	return sk.fixedBase.Load()
}

// Signature is the GQ pair σ = (s, c).
type Signature struct {
	S *big.Int // 1024-bit response
	C *big.Int // 160-bit challenge
}

// Extract computes the secret key for an identity using the PKG master
// exponent d. This is the paper's Extract phase; only the PKG can run it.
func Extract(rp *mathx.RSAParams, id string) (*PrivateKey, error) {
	if rp.D == nil {
		return nil, errors.New("gq: Extract requires the PKG master key")
	}
	if id == "" {
		return nil, errors.New("gq: empty identity")
	}
	h := hashx.IdentityDigest(id, rp.N)
	s := new(big.Int).Exp(h, rp.D, rp.N)
	return &PrivateKey{ID: id, S: s, Pub: ParamsFrom(rp)}, nil
}

// Commitment draws the per-signature randomness: τ ∈R Z_n^* and its public
// image t = τ^e mod n. In the group protocol, t is the value t_i broadcast
// in Round 1.
func Commitment(r io.Reader, pub Params) (tau, t *big.Int, err error) {
	tau, err = mathx.RandUnit(r, pub.N)
	if err != nil {
		return nil, nil, fmt.Errorf("gq: commitment: %w", err)
	}
	t = new(big.Int).Exp(tau, pub.E, pub.N)
	return tau, t, nil
}

// Respond computes the response s = τ·S_ID^c mod n for a previously drawn
// commitment τ and an agreed challenge c, through the fixed-base table
// when one has been precomputed. In the group protocol this is the s_i
// broadcast in Round 2.
func (sk *PrivateKey) Respond(tau, c *big.Int) *big.Int {
	var s *big.Int
	if t := sk.fixedBase.Load(); t != nil {
		s = t.Exp(c)
	} else {
		s = new(big.Int).Exp(sk.S, c, sk.Pub.N)
	}
	s.Mul(s, tau)
	return s.Mod(s, sk.Pub.N)
}

// Sign produces a standalone signature σ = (s, c) on msg, used by the
// Join and Merge dynamic protocols.
func (sk *PrivateKey) Sign(r io.Reader, msg []byte) (*Signature, error) {
	tau, t, err := Commitment(r, sk.Pub)
	if err != nil {
		return nil, err
	}
	c := hashx.Challenge(hashx.TagChallenge, hashx.BigBytes(t), msg)
	return &Signature{S: sk.Respond(tau, c), C: c}, nil
}

// Verify checks a standalone signature: c == H(s^e · H(ID)^{-c}, msg).
func Verify(pub Params, id string, msg []byte, sig *Signature) error {
	if sig == nil || sig.S == nil || sig.C == nil {
		return errors.New("gq: malformed signature")
	}
	if sig.S.Sign() <= 0 || sig.S.Cmp(pub.N) >= 0 {
		return errors.New("gq: signature response out of range")
	}
	lhs, err := recoverCommitment(pub, []string{id}, sig.S, sig.C)
	if err != nil {
		return err
	}
	c := hashx.Challenge(hashx.TagChallenge, hashx.BigBytes(lhs), msg)
	if c.Cmp(sig.C) != 0 {
		return errors.New("gq: signature verification failed")
	}
	return nil
}

// recoverCommitment computes s^e · (Π H(ID_i))^{-c} mod n — the quantity
// that equals the (product of) commitment(s) for a valid (batch of)
// signature(s).
func recoverCommitment(pub Params, ids []string, s, c *big.Int) (*big.Int, error) {
	return foldCommitment(pub, identityProduct(pub, ids, 1), s, c)
}

// GroupChallenge derives the common challenge c = H(T, Z) of the group
// protocol, where T = Π t_i mod n and Z = Π z_i mod p.
func GroupChallenge(t, z *big.Int) *big.Int {
	return hashx.Challenge(hashx.TagChallenge, hashx.BigBytes(t), hashx.BigBytes(z))
}

// BatchVerify checks equation (2) of the paper: given the signer
// identities, their responses s_i, the common challenge c and the bound
// value Z, it verifies all signatures with one exponentiation-sized check:
//
//	c == H((Π s_i)^e · (Π H(ID_i))^{-c}, Z)
func BatchVerify(pub Params, ids []string, responses []*big.Int, c, z *big.Int) error {
	return BatchVerifyWorkers(pub, ids, responses, c, z, 1)
}

// BatchVerifyWorkers is BatchVerify with the per-contribution work — the
// response product and the identity digest product — spread across up to
// `workers` goroutines. Contributions from distinct peers are
// independent, so the products chunk freely; the verdict and every
// intermediate value are bit-identical to the serial path, which
// workers <= 1 selects exactly.
func BatchVerifyWorkers(pub Params, ids []string, responses []*big.Int, c, z *big.Int, workers int) error {
	if len(ids) == 0 || len(ids) != len(responses) {
		return errors.New("gq: batch size mismatch")
	}
	for i, s := range responses {
		if s == nil || s.Sign() <= 0 || s.Cmp(pub.N) >= 0 {
			return fmt.Errorf("gq: response %d out of range", i)
		}
	}
	var sProd, hProd *big.Int
	if workers <= 1 {
		sProd = mathx.ProductMod(responses, pub.N)
		hProd = identityProduct(pub, ids, 1)
	} else {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			sProd = mathx.ProductModParallel(responses, pub.N, workers/2)
		}()
		hProd = identityProduct(pub, ids, workers-workers/2)
		wg.Wait()
	}
	lhs, err := foldCommitment(pub, hProd, sProd, c)
	if err != nil {
		return err
	}
	check := hashx.Challenge(hashx.TagChallenge, hashx.BigBytes(lhs), hashx.BigBytes(z))
	if check.Cmp(c) != 0 {
		return errors.New("gq: batch verification failed")
	}
	return nil
}

// identityProduct computes Π H(ID_i) mod n, hashing the identities on up
// to `workers` goroutines.
func identityProduct(pub Params, ids []string, workers int) *big.Int {
	digests := make([]*big.Int, len(ids))
	if workers <= 1 || len(ids) < 16 {
		for i, id := range ids {
			digests[i] = hashx.IdentityDigest(id, pub.N)
		}
	} else {
		if workers > len(ids) {
			workers = len(ids)
		}
		chunk := (len(ids) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(ids) {
				hi = len(ids)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					digests[i] = hashx.IdentityDigest(ids[i], pub.N)
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	return mathx.ProductModParallel(digests, pub.N, workers)
}

// foldCommitment computes s^e · hProd^{-c} mod n given a precomputed
// identity product.
func foldCommitment(pub Params, hProd, s, c *big.Int) (*big.Int, error) {
	se := new(big.Int).Exp(s, pub.E, pub.N)
	hInvC, err := mathx.ModExp(hProd, new(big.Int).Neg(c), pub.N)
	if err != nil {
		return nil, fmt.Errorf("gq: identity product not invertible: %w", err)
	}
	se.Mul(se, hInvC)
	return se.Mod(se, pub.N), nil
}

// SignDeterministicRand is a helper for tests that need reproducible
// signatures: it signs with the supplied reader instead of crypto/rand.
func (sk *PrivateKey) SignDeterministicRand(r io.Reader, msg []byte) (*Signature, error) {
	return sk.Sign(r, msg)
}

// SignDefault signs with crypto/rand.
func (sk *PrivateKey) SignDefault(msg []byte) (*Signature, error) {
	return sk.Sign(rand.Reader, msg)
}
