// Amortized batch verification: the per-membership GroupVerifier caches
// everything about a signer set that BatchVerify recomputes on every call
// (identity digests, their product, and a fixed-base table for the
// inverse product), and the Claim/VerifyClaimsRLC pair lets a host defer
// many groups' batch checks and settle them with one random-linear-
// combination equation per wakeup.

package gq

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"idgka/internal/hashx"
	"idgka/internal/mathx"
)

// RLCBits is the bit length of the random exponents in VerifyClaimsRLC.
// A forged claim survives a combined check with probability about
// 2^-RLCBits (see the soundness note on VerifyClaimsRLC); 64 is the
// conventional strength for small-exponent batch tests and keeps the
// scaled challenge exponents c_j·ρ_j short enough that the combined
// chain beats per-claim verification already at small batch sizes.
const RLCBits = 64

// GroupVerifier is the amortized batch-verification context for one fixed
// signer set. Construction hashes every identity, folds the digest
// product H = Π H(ID_i), inverts it once and builds a fixed-base table
// for the inverse, so each subsequent BatchVerify costs one response
// product, one short public-exponent power and a table walk — no
// per-round hashing, inversion or full-width exponentiation. Verdicts
// are identical to gq.BatchVerify. Safe for concurrent use once built.
type GroupVerifier struct {
	pub     Params
	ids     []string
	hProd   *big.Int
	hInv    *big.Int
	hInvTab *mathx.FixedBaseTable
}

// NewGroupVerifier builds the cached context for a signer set.
func NewGroupVerifier(pub Params, ids []string) (*GroupVerifier, error) {
	if len(ids) == 0 {
		return nil, errors.New("gq: empty signer set")
	}
	hProd := identityProduct(pub, ids, 1)
	hInv, err := mathx.ModInverse(hProd, pub.N)
	if err != nil {
		return nil, fmt.Errorf("gq: identity product not invertible: %w", err)
	}
	tab, err := mathx.NewFixedBaseTable(hInv, pub.N, hashx.ChallengeBits, mathx.DefaultWindow)
	if err != nil {
		return nil, err
	}
	return &GroupVerifier{
		pub:     pub,
		ids:     append([]string(nil), ids...),
		hProd:   hProd,
		hInv:    hInv,
		hInvTab: tab,
	}, nil
}

// NewClaimBuilder is NewGroupVerifier without the fixed-base table: the
// right shape when the membership only emits claims (claims never walk
// the table), costing one identity-product hash and one inversion
// instead of a full table build. BatchVerify still works, through a
// plain exponentiation of the cached inverse.
func NewClaimBuilder(pub Params, ids []string) (*GroupVerifier, error) {
	if len(ids) == 0 {
		return nil, errors.New("gq: empty signer set")
	}
	hProd := identityProduct(pub, ids, 1)
	hInv, err := mathx.ModInverse(hProd, pub.N)
	if err != nil {
		return nil, fmt.Errorf("gq: identity product not invertible: %w", err)
	}
	return &GroupVerifier{
		pub:   pub,
		ids:   append([]string(nil), ids...),
		hProd: hProd,
		hInv:  hInv,
	}, nil
}

// IDs returns the signer set the verifier was built for (read-only).
func (gv *GroupVerifier) IDs() []string { return gv.ids }

// BatchVerify checks equation (2) for one round of the cached signer set:
// c == H((Π s_i)^e · (Π H(ID_i))^{-c}, Z). The verdict is identical to
// gq.BatchVerify over the same inputs.
func (gv *GroupVerifier) BatchVerify(responses []*big.Int, c, z *big.Int) error {
	if len(responses) != len(gv.ids) {
		return errors.New("gq: batch size mismatch")
	}
	for i, s := range responses {
		if s == nil || s.Sign() <= 0 || s.Cmp(gv.pub.N) >= 0 {
			return fmt.Errorf("gq: response %d out of range", i)
		}
	}
	sProd := mathx.ProductMod(responses, gv.pub.N)
	lhs := new(big.Int).Exp(sProd, gv.pub.E, gv.pub.N)
	if gv.hInvTab != nil {
		lhs.Mul(lhs, gv.hInvTab.Exp(c)) // hProd^{-c} via the cached table
	} else {
		lhs.Mul(lhs, new(big.Int).Exp(gv.hInv, c, gv.pub.N))
	}
	lhs.Mod(lhs, gv.pub.N)
	check := hashx.Challenge(hashx.TagChallenge, hashx.BigBytes(lhs), hashx.BigBytes(z))
	if check.Cmp(c) != 0 {
		return errors.New("gq: batch verification failed")
	}
	return nil
}

// Claim carries the deferred batch-verification claim for a signer set's
// responses in one keying round:
//
//	SProd^e · HProd^{-c} ≡ T (mod n)
//
// with SProd = Π s_i, HProd = Π H(ID_i) and T = Π t_i. When the claimant
// derived c = H(T, Z) itself — as the protocol's round 2 does — the
// algebraic form is equivalent to the hash check of equation (2) up to
// hash collisions, and unlike the hash form it is linear, so many claims
// can be settled together (VerifyClaimsRLC).
type Claim struct {
	Pub   Params
	SProd *big.Int // Π s_i mod n
	HProd *big.Int // Π H(ID_i) mod n
	C     *big.Int // common challenge, = H(T, Z) at the claimant
	T     *big.Int // Π t_i mod n, the commitment product c hashes
	// HInv optionally carries HProd^{-1} from a membership cache
	// (GroupVerifier.NewClaim); when present, neither the individual nor
	// the combined check spends an inversion on this claim.
	HInv *big.Int
}

// NewClaim builds a claim against the verifier's cached signer set —
// identity digests, their product and its inverse all come from the
// cache, so a round's claim costs only the response product.
func (gv *GroupVerifier) NewClaim(responses []*big.Int, c, t *big.Int) (*Claim, error) {
	if len(responses) != len(gv.ids) {
		return nil, errors.New("gq: batch size mismatch")
	}
	if c == nil || t == nil {
		return nil, errors.New("gq: claim missing challenge or commitment")
	}
	for i, s := range responses {
		if s == nil || s.Sign() <= 0 || s.Cmp(gv.pub.N) >= 0 {
			return nil, fmt.Errorf("gq: response %d out of range", i)
		}
	}
	return &Claim{
		Pub:   gv.pub,
		SProd: mathx.ProductMod(responses, gv.pub.N),
		HProd: gv.hProd,
		C:     c,
		T:     new(big.Int).Mod(t, gv.pub.N),
		HInv:  gv.hInv,
	}, nil
}

// NewClaim folds a signer set's responses into a deferred claim,
// performing the same malformed-input rejection as BatchVerify.
func NewClaim(pub Params, ids []string, responses []*big.Int, c, t *big.Int) (*Claim, error) {
	if len(ids) == 0 || len(ids) != len(responses) {
		return nil, errors.New("gq: batch size mismatch")
	}
	if c == nil || t == nil {
		return nil, errors.New("gq: claim missing challenge or commitment")
	}
	for i, s := range responses {
		if s == nil || s.Sign() <= 0 || s.Cmp(pub.N) >= 0 {
			return nil, fmt.Errorf("gq: response %d out of range", i)
		}
	}
	return &Claim{
		Pub:   pub,
		SProd: mathx.ProductMod(responses, pub.N),
		HProd: identityProduct(pub, ids, 1),
		C:     c,
		T:     new(big.Int).Mod(t, pub.N),
	}, nil
}

func (cl *Claim) validate() error {
	if cl == nil || cl.SProd == nil || cl.HProd == nil || cl.C == nil || cl.T == nil ||
		cl.Pub.N == nil || cl.Pub.E == nil {
		return errors.New("gq: malformed claim")
	}
	if cl.C.Sign() < 0 {
		return errors.New("gq: negative claim challenge")
	}
	return nil
}

// Verify checks the claim individually (the fallback path).
func (cl *Claim) Verify() error {
	if err := cl.validate(); err != nil {
		return err
	}
	var lhs *big.Int
	if cl.HInv != nil {
		lhs = new(big.Int).Exp(cl.SProd, cl.Pub.E, cl.Pub.N)
		lhs.Mul(lhs, new(big.Int).Exp(cl.HInv, cl.C, cl.Pub.N))
		lhs.Mod(lhs, cl.Pub.N)
	} else {
		var err error
		lhs, err = foldCommitment(cl.Pub, cl.HProd, cl.SProd, cl.C)
		if err != nil {
			return err
		}
	}
	if lhs.Cmp(new(big.Int).Mod(cl.T, cl.Pub.N)) != 0 {
		return errors.New("gq: claim verification failed")
	}
	return nil
}

// VerifyClaimsRLC settles many deferred claims at once. Claims sharing a
// modulus are folded into one random-linear-combination equation
//
//	Π_j (SProd_j^e · HProd_j^{-c_j} · T_j^{-1})^{ρ_j} ≡ 1 (mod n)
//
// evaluated as a single interleaved multi-exponentiation in the
// Montgomery domain, with all the HProd/T inverses coming from one batch
// inversion. The ρ_j are independent odd RLCBits-bit exponents drawn from
// rnd: a claim whose defect d_j ≠ 1 passes only when ρ_j hits a specific
// residue class mod ord(d_j), probability ≤ 2^-RLCBits for full-order
// defects. Odd ρ kills order-2 defects outright, and crafting any other
// small-order defect mod an RSA n is as hard as factoring it (an order-2
// element yields a nontrivial square root of 1, i.e. a factor), so the
// amortized check is as sound as the individual one against anyone who
// cannot already forge at will. If the combined equation fails, every
// claim in that partition is re-checked individually and the first
// failing claim's error is returned — no false rejections, ever.
func VerifyClaimsRLC(rnd io.Reader, claims []*Claim) error {
	for _, cl := range claims {
		if err := cl.validate(); err != nil {
			return err
		}
	}
	// Partition by modulus: one combined equation per distinct n.
	parts := make(map[string][]*Claim)
	var order []string
	for _, cl := range claims {
		k := string(cl.Pub.N.Bytes())
		if _, ok := parts[k]; !ok {
			order = append(order, k)
		}
		parts[k] = append(parts[k], cl)
	}
	for _, k := range order {
		part := parts[k]
		if len(part) == 1 {
			if err := part[0].Verify(); err != nil {
				return err
			}
			continue
		}
		if err := rlcCheck(rnd, part); err == nil {
			continue
		}
		// Combined equation failed (a bad claim, or a non-invertible
		// operand): fall back to individual checks so honest claims in
		// the batch are never rejected.
		for _, cl := range part {
			if err := cl.Verify(); err != nil {
				return err
			}
		}
		// Every claim verified individually: the combined check failed
		// only because an operand was outside Z_n^* (batch inversion
		// refuses); the individual verdicts stand.
	}
	return nil
}

// rlcCheck evaluates the combined equation for claims sharing a modulus.
func rlcCheck(rnd io.Reader, part []*Claim) error {
	pub := part[0].Pub
	mo, err := mathx.NewModulus(pub.N)
	if err != nil {
		return err
	}
	// One batch inversion for every T and every HProd that did not arrive
	// with a cached inverse.
	hInvs := make([]*big.Int, len(part))
	toInvert := make([]*big.Int, 0, 2*len(part))
	for _, cl := range part {
		if cl.HInv == nil {
			toInvert = append(toInvert, cl.HProd)
		}
		toInvert = append(toInvert, cl.T)
	}
	invs, err := mo.BatchInverse(toInvert)
	if err != nil {
		return err
	}
	tInvs := make([]*big.Int, len(part))
	for j, cl := range part {
		if cl.HInv == nil {
			hInvs[j] = invs[0]
			invs = invs[1:]
		} else {
			hInvs[j] = cl.HInv
		}
		tInvs[j] = invs[0]
		invs = invs[1:]
	}
	rhoBound := new(big.Int).Lsh(mathx.One, RLCBits)
	bases := make([]mathx.Elem, 0, 3*len(part))
	exps := make([]*big.Int, 0, 3*len(part))
	for j, cl := range part {
		rho, err := mathx.RandInt(rnd, rhoBound)
		if err != nil {
			return err
		}
		rho.SetBit(rho, 0, 1) // odd: order-2 defects cannot vanish
		bases = append(bases, mo.ToMont(cl.SProd), mo.ToMont(hInvs[j]), mo.ToMont(tInvs[j]))
		exps = append(exps,
			new(big.Int).Mul(pub.E, rho),
			new(big.Int).Mul(cl.C, rho),
			rho)
	}
	acc, err := mo.MultiExpElem(bases, exps)
	if err != nil {
		return err
	}
	if !mo.IsOne(acc) {
		return errors.New("gq: combined claim verification failed")
	}
	return nil
}
