package gq

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"

	"idgka/internal/mathx"
)

// TestPrecomputeRespondTransparent checks the fixed-base response path is
// bit-identical to the naive one across random challenges and edges.
func TestPrecomputeRespondTransparent(t *testing.T) {
	sk := testKey(t, "accel-alice")
	tau, _, err := Commitment(rand.Reader, sk.Pub)
	if err != nil {
		t.Fatal(err)
	}
	cs := []*big.Int{big.NewInt(0), big.NewInt(1)}
	for i := 0; i < 8; i++ {
		c, err := mathx.RandInt(rand.Reader, new(big.Int).Lsh(mathx.One, 160))
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	naive := make([]*big.Int, len(cs))
	for i, c := range cs {
		naive[i] = sk.Respond(tau, c)
	}
	if sk.Precompute() == nil {
		t.Fatal("Precompute returned nil")
	}
	for i, c := range cs {
		if got := sk.Respond(tau, c); got.Cmp(naive[i]) != 0 {
			t.Fatalf("precomputed Respond diverges for c=%v", c)
		}
	}
	// Precomputed responses still verify.
	msg := []byte("accelerated signing")
	sig, err := sk.SignDefault(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sk.Pub, sk.ID, msg, sig); err != nil {
		t.Fatalf("precomputed signature rejected: %v", err)
	}
}

// batchFixture builds a valid n-signer batch over the default parameters.
func batchFixture(t testing.TB, n int) (pub Params, ids []string, responses []*big.Int, c, z *big.Int) {
	pub = testKey(t, "seed").Pub
	ids = make([]string, n)
	taus := make([]*big.Int, n)
	ts := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("batch-%03d", i)
		tau, ti, err := Commitment(rand.Reader, pub)
		if err != nil {
			t.Fatal(err)
		}
		taus[i], ts[i] = tau, ti
	}
	z = big.NewInt(77)
	c = GroupChallenge(mathx.ProductMod(ts, pub.N), z)
	responses = make([]*big.Int, n)
	for i, id := range ids {
		responses[i] = testKey(t, id).Respond(taus[i], c)
	}
	return pub, ids, responses, c, z
}

func TestBatchVerifyWorkersMatchesSerial(t *testing.T) {
	for _, n := range []int{2, 16, 40} {
		pub, ids, responses, c, z := batchFixture(t, n)
		for _, workers := range []int{0, 1, 2, 4, 8} {
			if err := BatchVerifyWorkers(pub, ids, responses, c, z, workers); err != nil {
				t.Fatalf("n=%d workers=%d: valid batch rejected: %v", n, workers, err)
			}
		}
		// A corrupted response must fail at every parallelism level.
		bad := append([]*big.Int(nil), responses...)
		bad[n/2] = new(big.Int).Add(bad[n/2], mathx.One)
		for _, workers := range []int{1, 4} {
			if err := BatchVerifyWorkers(pub, ids, bad, c, z, workers); err == nil {
				t.Fatalf("n=%d workers=%d: corrupted batch accepted", n, workers)
			}
		}
	}
}

func BenchmarkRespondNaive(b *testing.B) {
	sk := testKey(b, "bench-respond")
	tau, _, err := Commitment(rand.Reader, sk.Pub)
	if err != nil {
		b.Fatal(err)
	}
	c, _ := mathx.RandInt(rand.Reader, new(big.Int).Lsh(mathx.One, 160))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Respond(tau, c)
	}
}

func BenchmarkRespondPrecomputed(b *testing.B) {
	sk := testKey(b, "bench-respond")
	sk.Precompute()
	tau, _, err := Commitment(rand.Reader, sk.Pub)
	if err != nil {
		b.Fatal(err)
	}
	c, _ := mathx.RandInt(rand.Reader, new(big.Int).Lsh(mathx.One, 160))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Respond(tau, c)
	}
}
