package gq

import (
	"crypto/rand"
	"math/big"
	"testing"

	"idgka/internal/hashx"
	"idgka/internal/mathx"
	"idgka/internal/params"
)

func testKey(t testing.TB, id string) *PrivateKey {
	t.Helper()
	sk, err := Extract(params.Default().RSA, id)
	if err != nil {
		t.Fatalf("Extract(%q): %v", id, err)
	}
	return sk
}

func TestSignVerifyRoundTrip(t *testing.T) {
	sk := testKey(t, "alice")
	msg := []byte("round-1 keying material")
	sig, err := sk.SignDefault(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := Verify(sk.Pub, "alice", msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsWrongIdentity(t *testing.T) {
	sk := testKey(t, "alice")
	msg := []byte("m")
	sig, _ := sk.SignDefault(msg)
	if err := Verify(sk.Pub, "bob", msg, sig); err == nil {
		t.Fatal("signature verified under wrong identity")
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	sk := testKey(t, "alice")
	sig, _ := sk.SignDefault([]byte("original"))
	if err := Verify(sk.Pub, "alice", []byte("tampered"), sig); err == nil {
		t.Fatal("tampered message verified")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	sk := testKey(t, "alice")
	msg := []byte("m")
	sig, _ := sk.SignDefault(msg)
	bad := &Signature{S: new(big.Int).Add(sig.S, big.NewInt(1)), C: sig.C}
	if err := Verify(sk.Pub, "alice", msg, bad); err == nil {
		t.Fatal("tampered s verified")
	}
	bad2 := &Signature{S: sig.S, C: new(big.Int).Add(sig.C, big.NewInt(1))}
	if err := Verify(sk.Pub, "alice", msg, bad2); err == nil {
		t.Fatal("tampered c verified")
	}
}

func TestVerifyRejectsMalformed(t *testing.T) {
	sk := testKey(t, "alice")
	if err := Verify(sk.Pub, "alice", []byte("m"), nil); err == nil {
		t.Fatal("nil signature accepted")
	}
	if err := Verify(sk.Pub, "alice", []byte("m"), &Signature{S: big.NewInt(0), C: big.NewInt(1)}); err == nil {
		t.Fatal("zero s accepted")
	}
	if err := Verify(sk.Pub, "alice", []byte("m"), &Signature{S: sk.Pub.N, C: big.NewInt(1)}); err == nil {
		t.Fatal("s = n accepted")
	}
}

func TestExtractRequiresMasterKey(t *testing.T) {
	pub := params.Default().RSA.Public()
	if _, err := Extract(pub, "alice"); err == nil {
		t.Fatal("Extract succeeded without master key")
	}
	if _, err := Extract(params.Default().RSA, ""); err == nil {
		t.Fatal("Extract accepted empty identity")
	}
}

func TestExtractConsistency(t *testing.T) {
	rp := params.Default().RSA
	sk := testKey(t, "alice")
	// S_ID^e == H(ID) mod n.
	back := new(big.Int).Exp(sk.S, rp.E, rp.N)
	if back.Cmp(hashx.IdentityDigest("alice", rp.N)) != 0 {
		t.Fatal("extracted key does not invert to identity digest")
	}
}

// TestBatchVerify exercises equation (2): n users, one shared challenge.
func TestBatchVerify(t *testing.T) {
	pub := ParamsFrom(params.Default().RSA)
	ids := []string{"u1", "u2", "u3", "u4", "u5"}
	taus := make([]*big.Int, len(ids))
	ts := make([]*big.Int, len(ids))
	for i, id := range ids {
		_ = id
		tau, ti, err := Commitment(rand.Reader, pub)
		if err != nil {
			t.Fatal(err)
		}
		taus[i], ts[i] = tau, ti
	}
	bigT := mathx.ProductMod(ts, pub.N)
	z := big.NewInt(0xdeadbeef) // stands in for Π z_i mod p
	c := GroupChallenge(bigT, z)

	responses := make([]*big.Int, len(ids))
	for i, id := range ids {
		sk := testKey(t, id)
		responses[i] = sk.Respond(taus[i], c)
	}
	if err := BatchVerify(pub, ids, responses, c, z); err != nil {
		t.Fatalf("BatchVerify: %v", err)
	}
}

func TestBatchVerifyDetectsOneBadResponse(t *testing.T) {
	pub := ParamsFrom(params.Default().RSA)
	ids := []string{"u1", "u2", "u3"}
	taus := make([]*big.Int, len(ids))
	ts := make([]*big.Int, len(ids))
	for i := range ids {
		tau, ti, err := Commitment(rand.Reader, pub)
		if err != nil {
			t.Fatal(err)
		}
		taus[i], ts[i] = tau, ti
	}
	bigT := mathx.ProductMod(ts, pub.N)
	z := big.NewInt(7)
	c := GroupChallenge(bigT, z)
	responses := make([]*big.Int, len(ids))
	for i, id := range ids {
		responses[i] = testKey(t, id).Respond(taus[i], c)
	}
	// Corrupt one response.
	responses[1] = new(big.Int).Add(responses[1], big.NewInt(1))
	if err := BatchVerify(pub, ids, responses, c, z); err == nil {
		t.Fatal("batch verification accepted a corrupted response")
	}
}

func TestBatchVerifyDetectsImpostor(t *testing.T) {
	pub := ParamsFrom(params.Default().RSA)
	// "mallory" signs but claims to be "u2".
	ids := []string{"u1", "u2"}
	taus := make([]*big.Int, 2)
	ts := make([]*big.Int, 2)
	for i := range ids {
		tau, ti, err := Commitment(rand.Reader, pub)
		if err != nil {
			t.Fatal(err)
		}
		taus[i], ts[i] = tau, ti
	}
	bigT := mathx.ProductMod(ts, pub.N)
	z := big.NewInt(7)
	c := GroupChallenge(bigT, z)
	responses := []*big.Int{
		testKey(t, "u1").Respond(taus[0], c),
		testKey(t, "mallory").Respond(taus[1], c),
	}
	if err := BatchVerify(pub, ids, responses, c, z); err == nil {
		t.Fatal("impostor passed batch verification")
	}
}

func TestBatchVerifySizeMismatch(t *testing.T) {
	pub := ParamsFrom(params.Default().RSA)
	if err := BatchVerify(pub, []string{"a"}, nil, big.NewInt(1), big.NewInt(1)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := BatchVerify(pub, nil, nil, big.NewInt(1), big.NewInt(1)); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestBatchVerifySingleEqualsIndividual(t *testing.T) {
	// A batch of one is the protocol's degenerate case; make sure the
	// equation still holds.
	pub := ParamsFrom(params.Default().RSA)
	tau, ti, err := Commitment(rand.Reader, pub)
	if err != nil {
		t.Fatal(err)
	}
	z := big.NewInt(99)
	c := GroupChallenge(ti, z)
	resp := testKey(t, "solo").Respond(tau, c)
	if err := BatchVerify(pub, []string{"solo"}, []*big.Int{resp}, c, z); err != nil {
		t.Fatalf("singleton batch failed: %v", err)
	}
}

func TestCommitmentInRange(t *testing.T) {
	pub := ParamsFrom(params.Default().RSA)
	for i := 0; i < 10; i++ {
		tau, ti, err := Commitment(rand.Reader, pub)
		if err != nil {
			t.Fatal(err)
		}
		if tau.Sign() <= 0 || tau.Cmp(pub.N) >= 0 || ti.Sign() <= 0 || ti.Cmp(pub.N) >= 0 {
			t.Fatal("commitment out of range")
		}
	}
}

func BenchmarkSign(b *testing.B) {
	sk := testKey(b, "bench")
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.SignDefault(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	sk := testKey(b, "bench")
	msg := []byte("benchmark message")
	sig, _ := sk.SignDefault(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(sk.Pub, "bench", msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchVerify100(b *testing.B) {
	pub := ParamsFrom(params.Default().RSA)
	nUsers := 100
	ids := make([]string, nUsers)
	taus := make([]*big.Int, nUsers)
	ts := make([]*big.Int, nUsers)
	for i := 0; i < nUsers; i++ {
		ids[i] = "user" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		tau, ti, err := Commitment(rand.Reader, pub)
		if err != nil {
			b.Fatal(err)
		}
		taus[i], ts[i] = tau, ti
	}
	bigT := mathx.ProductMod(ts, pub.N)
	z := big.NewInt(42)
	c := GroupChallenge(bigT, z)
	responses := make([]*big.Int, nUsers)
	for i, id := range ids {
		responses[i] = testKey(b, id).Respond(taus[i], c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := BatchVerify(pub, ids, responses, c, z); err != nil {
			b.Fatal(err)
		}
	}
}
