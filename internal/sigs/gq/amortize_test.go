package gq

import (
	"crypto/rand"
	"math/big"
	"testing"

	"idgka/internal/mathx"
	"idgka/internal/params"
)

// buildBatch produces one honest keying round for the given signer set:
// commitments, the common challenge and every response, exactly as the
// protocol's rounds 1-2 would.
func buildBatch(t testing.TB, ids []string) (pub Params, responses []*big.Int, c, bigT, z *big.Int) {
	t.Helper()
	pub = ParamsFrom(params.Default().RSA)
	taus := make([]*big.Int, len(ids))
	ts := make([]*big.Int, len(ids))
	for i := range ids {
		tau, ti, err := Commitment(rand.Reader, pub)
		if err != nil {
			t.Fatal(err)
		}
		taus[i], ts[i] = tau, ti
	}
	bigT = mathx.ProductMod(ts, pub.N)
	z, err := mathx.RandUnit(rand.Reader, pub.N)
	if err != nil {
		t.Fatal(err)
	}
	c = GroupChallenge(bigT, z)
	responses = make([]*big.Int, len(ids))
	for i, id := range ids {
		responses[i] = testKey(t, id).Respond(taus[i], c)
	}
	return pub, responses, c, bigT, z
}

// TestGroupVerifierMatchesBatchVerify checks the cached verifier agrees
// with the uncached path on honest and corrupted batches.
func TestGroupVerifierMatchesBatchVerify(t *testing.T) {
	ids := []string{"u1", "u2", "u3", "u4", "u5"}
	pub, responses, c, _, z := buildBatch(t, ids)
	gv, err := NewGroupVerifier(pub, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := BatchVerify(pub, ids, responses, c, z); err != nil {
		t.Fatalf("reference BatchVerify: %v", err)
	}
	if err := gv.BatchVerify(responses, c, z); err != nil {
		t.Fatalf("GroupVerifier.BatchVerify: %v", err)
	}
	bad := append([]*big.Int(nil), responses...)
	bad[2] = new(big.Int).Add(bad[2], big.NewInt(1))
	if err := gv.BatchVerify(bad, c, z); err == nil {
		t.Fatal("corrupted response accepted")
	}
	if BatchVerify(pub, ids, bad, c, z) == nil {
		t.Fatal("reference accepted corrupted response")
	}
	if err := gv.BatchVerify(responses[:3], c, z); err == nil {
		t.Fatal("short batch accepted")
	}
	if _, err := NewGroupVerifier(pub, nil); err == nil {
		t.Fatal("empty signer set accepted")
	}
}

// TestClaimMatchesBatchVerify checks the algebraic claim form gives the
// same verdict as the hash-form equation (2) when c = H(T, Z).
func TestClaimMatchesBatchVerify(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	pub, responses, c, bigT, _ := buildBatch(t, ids)
	claim, err := NewClaim(pub, ids, responses, c, bigT)
	if err != nil {
		t.Fatal(err)
	}
	if err := claim.Verify(); err != nil {
		t.Fatalf("honest claim rejected: %v", err)
	}
	bad := *claim
	bad.SProd = new(big.Int).Add(claim.SProd, big.NewInt(1))
	if bad.Verify() == nil {
		t.Fatal("corrupted claim accepted")
	}
	// The cached builder must produce a claim with the same verdicts and
	// the same algebraic content, plus the cached inverse.
	gv, err := NewGroupVerifier(pub, ids)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := gv.NewClaim(responses, c, bigT)
	if err != nil {
		t.Fatal(err)
	}
	if cached.SProd.Cmp(claim.SProd) != 0 || cached.HProd.Cmp(claim.HProd) != 0 {
		t.Fatal("cached claim diverges from NewClaim")
	}
	if cached.HInv == nil {
		t.Fatal("cached claim missing HInv")
	}
	if err := cached.Verify(); err != nil {
		t.Fatalf("cached claim rejected: %v", err)
	}
	badCached := *cached
	badCached.SProd = bad.SProd
	if badCached.Verify() == nil {
		t.Fatal("corrupted cached claim accepted")
	}
	if _, err := NewClaim(pub, ids, responses[:2], c, bigT); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := NewClaim(pub, ids, append(responses[:3:3], big.NewInt(0)), c, bigT); err == nil {
		t.Fatal("zero response accepted")
	}
}

// TestVerifyClaimsRLC checks the combined random-linear-combination
// settlement: all-honest batches pass, and a single corrupted claim is
// pinpointed through the individual fallback.
func TestVerifyClaimsRLC(t *testing.T) {
	sets := [][]string{
		{"g1a", "g1b", "g1c"},
		{"g2a", "g2b", "g2c", "g2d"},
		{"g3a", "g3b"},
		{"g4a", "g4b", "g4c", "g4d", "g4e"},
	}
	claims := make([]*Claim, len(sets))
	for i, ids := range sets {
		pub, responses, c, bigT, _ := buildBatch(t, ids)
		cl, err := NewClaim(pub, ids, responses, c, bigT)
		if err != nil {
			t.Fatal(err)
		}
		claims[i] = cl
	}
	if err := VerifyClaimsRLC(rand.Reader, claims); err != nil {
		t.Fatalf("honest claims rejected: %v", err)
	}
	// Corrupt one claim: the combined equation must fail and the fallback
	// must surface an error (the corrupt claim fails individually).
	good := claims[2].SProd
	claims[2] = &Claim{
		Pub:   claims[2].Pub,
		SProd: new(big.Int).Add(good, big.NewInt(1)),
		HProd: claims[2].HProd,
		C:     claims[2].C,
		T:     claims[2].T,
	}
	if err := VerifyClaimsRLC(rand.Reader, claims); err == nil {
		t.Fatal("corrupted claim batch accepted")
	}
	claims[2].SProd = good
	if err := VerifyClaimsRLC(rand.Reader, claims); err != nil {
		t.Fatalf("repaired claims rejected: %v", err)
	}
	// Degenerate shapes.
	if err := VerifyClaimsRLC(rand.Reader, nil); err != nil {
		t.Fatalf("empty claim set rejected: %v", err)
	}
	if err := VerifyClaimsRLC(rand.Reader, claims[:1]); err != nil {
		t.Fatalf("singleton claim set rejected: %v", err)
	}
	if err := VerifyClaimsRLC(rand.Reader, []*Claim{nil}); err == nil {
		t.Fatal("nil claim accepted")
	}
}

// BenchmarkAmortizedVerify compares one round's verification cost across
// the three tiers: the uncached batch check, the cached GroupVerifier,
// and the per-claim share of a 16-claim RLC settlement.
func BenchmarkAmortizedVerify(b *testing.B) {
	ids := make([]string, 16)
	for i := range ids {
		ids[i] = "m" + string(rune('a'+i))
	}
	pub, responses, c, bigT, z := buildBatch(b, ids)
	b.Run("batch-verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := BatchVerify(pub, ids, responses, c, z); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("group-verifier", func(b *testing.B) {
		gv, err := NewGroupVerifier(pub, ids)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := gv.BatchVerify(responses, c, z); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("claim-individual", func(b *testing.B) {
		gv, err := NewGroupVerifier(pub, ids)
		if err != nil {
			b.Fatal(err)
		}
		claim, err := gv.NewClaim(responses, c, bigT)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := claim.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rlc-16", func(b *testing.B) {
		gv, err := NewGroupVerifier(pub, ids)
		if err != nil {
			b.Fatal(err)
		}
		claim, err := gv.NewClaim(responses, c, bigT)
		if err != nil {
			b.Fatal(err)
		}
		claims := make([]*Claim, 16)
		for i := range claims {
			claims[i] = claim
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := VerifyClaimsRLC(rand.Reader, claims); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(16), "claims/op")
	})
}
