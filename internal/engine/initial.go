package engine

import (
	"errors"
	"fmt"

	"idgka/internal/mathx"
	"idgka/internal/netsim"
	"idgka/internal/sigs/gq"
	"idgka/internal/wire"
)

// initialFlow runs the two-round authenticated GKA of Section 4 for one
// member. Round 1: everyone broadcasts m_i = U_i ‖ z_i ‖ t_i. Round 2:
// every member except the controller broadcasts m'_i = U_i ‖ X_i ‖ s_i as
// soon as its round-1 view is complete; the controller (U_1, a trusted
// node) broadcasts last, per the paper — its machine withholds its round-2
// message until it has received everyone else's.
type initialFlow struct {
	mc   *Machine
	ring *ringState

	started   bool
	emittedR2 bool
	seen      map[string]bool
}

// StartInitial begins the two-round authenticated group key agreement for
// the given ring (roster order = ring order; roster[0] is the trusted
// controller U_1). The machine's member must appear in the roster.
func (mc *Machine) StartInitial(sid string, roster []string) ([]Outbound, []Event, error) {
	if len(roster) < 2 {
		return nil, nil, errors.New("engine: initial GKA needs at least 2 members")
	}
	rs, err := newRingState(roster, mc.id)
	if err != nil {
		return nil, nil, err
	}
	return mc.start(sid, &initialFlow{mc: mc, ring: rs, seen: map[string]bool{}})
}

// begin draws the member's fresh keying material and returns the encoded
// round-1 broadcast m_i = U_i ‖ z_i ‖ t_i.
func (f *initialFlow) begin() (Outbound, error) {
	mc := f.mc
	sg := mc.cfg.Set.Schnorr
	r, err := mathx.RandScalar(mc.cfg.rand(), sg.Q)
	if err != nil {
		return Outbound{}, fmt.Errorf("engine: round1: %w", err)
	}
	z := sg.Exp(r)
	mc.m.Exp(1)
	tau, t, err := gq.Commitment(mc.cfg.rand(), gq.ParamsFrom(mc.cfg.Set.RSA))
	if err != nil {
		return Outbound{}, err
	}
	f.ring.r = r
	f.ring.tau = tau
	f.ring.z[mc.id] = z
	f.ring.t[mc.id] = t
	payload := wire.NewBuffer().PutString(mc.id).PutBig(z).PutBig(t).Bytes()
	return Outbound{Type: MsgRound1, Payload: payload}, nil //gkalint:nosid wrapOuts stamps the flow sid on every enveloped outbound
}

func (f *initialFlow) deliver(msg *netsim.Message) error {
	key := msg.Type + "|" + msg.From
	if f.seen[key] {
		return nil // duplicate broadcast; first delivery wins
	}
	switch msg.Type {
	case MsgRound1:
		f.seen[key] = true
		return f.recordRound1(msg)
	case MsgRound2:
		f.seen[key] = true
		return f.ring.recordRound2(msg)
	default:
		return nil // stray traffic of another protocol phase
	}
}

// recordRound1 ingests one peer's round-1 broadcast.
func (f *initialFlow) recordRound1(msg *netsim.Message) error {
	mc := f.mc
	r := wire.NewReader(msg.Payload)
	id := r.String()
	z := r.Big()
	t := r.Big()
	if err := r.Close(); err != nil {
		return Retryable(fmt.Errorf("round1 from %s: %w", msg.From, err))
	}
	if id != msg.From {
		return Retryable(fmt.Errorf("round1 identity mismatch: payload %q, sender %q", id, msg.From))
	}
	if !f.ring.inRoster(id) {
		return Retryable(fmt.Errorf("round1 from non-member %q", id))
	}
	sg := mc.cfg.Set.Schnorr
	if z.Sign() <= 0 || z.Cmp(sg.P) >= 0 {
		return Retryable(fmt.Errorf("round1 z from %s out of range", id))
	}
	if t.Sign() <= 0 || t.Cmp(mc.cfg.Set.RSA.N) >= 0 {
		return Retryable(fmt.Errorf("round1 t from %s out of range", id))
	}
	f.ring.z[id] = z
	f.ring.t[id] = t
	return nil
}

func (f *initialFlow) advance() ([]Outbound, []Event, error) {
	var outs []Outbound
	if !f.started {
		out, err := f.begin()
		if err != nil {
			return nil, nil, err
		}
		outs = append(outs, out)
		f.started = true
	}
	if !f.emittedR2 && f.ring.round1Complete() {
		isController := f.ring.self == 0
		// The controller broadcasts its round-2 message only after every
		// other member's has arrived (len(x) counts peers until our own
		// round2Payload records ours).
		if !isController || len(f.ring.x) == f.ring.n()-1 {
			payload, err := f.ring.round2Payload(f.mc)
			if err != nil {
				return nil, nil, err
			}
			outs = append(outs, Outbound{Type: MsgRound2, Payload: payload}) //gkalint:nosid wrapOuts stamps the flow sid on every enveloped outbound
			f.emittedR2 = true
		}
	}
	if f.emittedR2 && len(f.ring.x) == f.ring.n() {
		g, err := f.ring.finish(f.mc)
		if err != nil {
			return outs, nil, err
		}
		return outs, []Event{{Kind: EventEstablished, Group: g}}, nil
	}
	return outs, nil, nil
}
