package engine_test

import (
	"testing"

	"idgka/internal/engine"
	"idgka/internal/netsim"
)

// msgOf converts an engine outbound into a delivered message.
func msgOf(from string, o engine.Outbound) netsim.Message {
	return netsim.Message{From: from, To: o.To, Type: o.Type, Payload: o.Payload}
}

// step feeds one message into a node and returns the reaction.
func step(t *testing.T, nd *node, msg netsim.Message) []engine.Outbound {
	t.Helper()
	outs, evts := nd.mc.Step(msg)
	nd.record(evts)
	for _, ev := range evts {
		if ev.Kind == engine.EventFailed {
			t.Fatalf("unexpected failure: %v", ev.Err)
		}
	}
	return outs
}

// TestRound2BeforeRound1 delivers the controller's round-2 traffic before
// its round-1 view is complete: the machine must buffer the early X/s
// values and converge once the late round-1 broadcasts arrive.
func TestRound2BeforeRound1(t *testing.T) {
	ring := []string{"A", "B", "C"} // A is the controller
	nodes := buildNodes(t, ring)
	sid := "s"

	// Start everyone; collect the round-1 broadcasts.
	r1 := map[string]engine.Outbound{}
	for _, id := range ring {
		outs, evts, err := nodes[id].mc.StartInitial(sid, ring)
		if err != nil {
			t.Fatal(err)
		}
		nodes[id].record(evts)
		if len(outs) != 1 || outs[0].Type != engine.MsgRound1 {
			t.Fatalf("%s emitted %d opening messages", id, len(outs))
		}
		r1[id] = outs[0]
	}

	// B and C complete round 1 and emit their round-2 broadcasts.
	var r2B, r2C engine.Outbound
	step(t, nodes["B"], msgOf("A", r1["A"]))
	if outs := step(t, nodes["B"], msgOf("C", r1["C"])); len(outs) == 1 {
		r2B = outs[0]
	} else {
		t.Fatalf("B emitted %d messages after round 1", len(outs))
	}
	step(t, nodes["C"], msgOf("A", r1["A"]))
	if outs := step(t, nodes["C"], msgOf("B", r1["B"])); len(outs) == 1 {
		r2C = outs[0]
	} else {
		t.Fatalf("C emitted %d messages after round 1", len(outs))
	}

	// Adversarial schedule: the controller sees round 2 BEFORE round 1.
	if outs := step(t, nodes["A"], msgOf("B", r2B)); len(outs) != 0 {
		t.Fatalf("controller acted on early round-2 traffic: %d messages", len(outs))
	}
	if outs := step(t, nodes["A"], msgOf("C", r2C)); len(outs) != 0 {
		t.Fatalf("controller acted on early round-2 traffic: %d messages", len(outs))
	}
	step(t, nodes["A"], msgOf("B", r1["B"]))
	outs := step(t, nodes["A"], msgOf("C", r1["C"]))
	if len(outs) != 1 || outs[0].Type != engine.MsgRound2 {
		t.Fatalf("controller did not emit round 2 once round 1 completed (got %d messages)", len(outs))
	}
	if nodes["A"].established(sid) == nil {
		t.Fatal("controller did not finish")
	}

	// The stragglers finish once they hold the full round-2 view (their
	// peers' broadcasts and the controller's).
	step(t, nodes["B"], msgOf("C", r2C))
	step(t, nodes["C"], msgOf("B", r2B))
	step(t, nodes["B"], msgOf("A", outs[0]))
	step(t, nodes["C"], msgOf("A", outs[0]))
	assertSession(t, nodes, ring, sid)
}

// TestDuplicateBroadcasts delivers every message twice: machines must
// suppress the duplicates, converge to one key, and charge each metered
// operation exactly once.
func TestDuplicateBroadcasts(t *testing.T) {
	ring := []string{"U01", "U02", "U03", "U04"}
	nodes := buildNodes(t, ring)
	// Double every delivery by re-sending each outbound twice.
	queue := []busDelivery{}
	enqueue := func(from string, outs []engine.Outbound) {
		for _, o := range outs {
			for rep := 0; rep < 2; rep++ {
				for _, id := range ring {
					if id != from {
						queue = append(queue, busDelivery{to: id, msg: msgOf(from, o)})
					}
				}
			}
		}
	}
	for _, id := range ring {
		outs, evts, err := nodes[id].mc.StartInitial("s", ring)
		if err != nil {
			t.Fatal(err)
		}
		nodes[id].record(evts)
		enqueue(id, outs)
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		nd := nodes[d.to]
		outs, evts := nd.mc.Step(d.msg)
		nd.record(evts)
		enqueue(d.to, outs)
	}
	assertSession(t, nodes, ring, "s")
	// Exactly the paper's per-user operation counts despite double
	// delivery: 3 exponentiations, 1 signature generation, 1 batch
	// verification.
	for _, id := range ring {
		r := nodes[id].mc.Meter().Report()
		if r.Exp != 3 || r.TotalSignGen() != 1 || r.TotalSignVer() != 1 {
			t.Fatalf("%s double-charged under duplicates: Exp=%d gen=%d ver=%d",
				id, r.Exp, r.TotalSignGen(), r.TotalSignVer())
		}
	}
}

// TestInterleavedSessions runs two concurrent establishments over the same
// machines (different session ids, different ring orders) with all
// traffic shuffled into one seeded lottery: both sessions must converge
// independently.
func TestInterleavedSessions(t *testing.T) {
	ring := []string{"U01", "U02", "U03", "U04"}
	reversed := []string{"U04", "U03", "U02", "U01"}
	nodes := buildNodes(t, ring)
	async := netsim.NewAsync(99)
	for _, id := range ring {
		id := id
		nd := nodes[id]
		if err := async.Register(id, nd.mc.Meter(), func(msg netsim.Message) error {
			outs, evts := nd.mc.Step(msg)
			nd.record(evts)
			return sendAll(async, id, outs)
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Start BOTH sessions on every machine before any delivery happens,
	// then let the scheduler interleave them arbitrarily.
	for _, id := range ring {
		outs, evts, err := nodes[id].mc.StartInitial("red", ring)
		if err != nil {
			t.Fatal(err)
		}
		nodes[id].record(evts)
		if err := sendAll(async, id, outs); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ring {
		outs, evts, err := nodes[id].mc.StartInitial("blue", reversed)
		if err != nil {
			t.Fatal(err)
		}
		nodes[id].record(evts)
		if err := sendAll(async, id, outs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := async.Run(0); err != nil {
		t.Fatal(err)
	}
	red := assertSession(t, nodes, ring, "red")
	blue := assertSession(t, nodes, ring, "blue")
	if red.Cmp(blue) == 0 {
		t.Fatal("independent sessions derived the same key")
	}
	// Machine-level session lookup agrees with the events.
	for _, id := range ring {
		if g := nodes[id].mc.Session("red"); g == nil || g.Key.Cmp(red) != 0 {
			t.Fatalf("%s: Session(red) lookup mismatch", id)
		}
		if g := nodes[id].mc.Session("blue"); g == nil || g.Key.Cmp(blue) != 0 {
			t.Fatalf("%s: Session(blue) lookup mismatch", id)
		}
	}
}

// TestEarlyTrafficBuffered delivers round-1 traffic to a machine BEFORE
// it starts the flow: everything must buffer, replay on StartInitial, and
// the whole group still converges.
func TestEarlyTrafficBuffered(t *testing.T) {
	ring := []string{"B", "C", "A"} // B is the controller; A starts late
	nodes := buildNodes(t, ring)
	sid := "s"

	// B and C start and exchange their round-1 broadcasts; neither can
	// reach round 2 without A's.
	outsB, _, err := nodes["B"].mc.StartInitial(sid, ring)
	if err != nil {
		t.Fatal(err)
	}
	outsC, _, err := nodes["C"].mc.StartInitial(sid, ring)
	if err != nil {
		t.Fatal(err)
	}
	if len(outsB) != 1 || len(outsC) != 1 {
		t.Fatalf("unexpected opening traffic: %d/%d", len(outsB), len(outsC))
	}
	if outs := step(t, nodes["B"], msgOf("C", outsC[0])); len(outs) != 0 {
		t.Fatal("B advanced without A's round-1 broadcast")
	}
	if outs := step(t, nodes["C"], msgOf("B", outsB[0])); len(outs) != 0 {
		t.Fatal("C advanced without A's round-1 broadcast")
	}

	// A receives both broadcasts before starting: everything buffers.
	if outs, _ := nodes["A"].mc.Step(msgOf("B", outsB[0])); len(outs) != 0 {
		t.Fatal("machine reacted before the flow started")
	}
	if outs, _ := nodes["A"].mc.Step(msgOf("C", outsC[0])); len(outs) != 0 {
		t.Fatal("machine reacted before the flow started")
	}

	// On start the buffered traffic replays: A's round-1 view is complete
	// immediately, so it emits round 1 AND round 2 in one go; the bus
	// routes the remaining handshake to quiescence.
	b := newBus(t, nodes, ring)
	b.start("A", func(mc *engine.Machine) ([]engine.Outbound, []engine.Event, error) {
		return mc.StartInitial(sid, ring)
	})
	b.pump()
	assertSession(t, nodes, ring, sid)
}

// TestAbortRestartFreshAttempt: after Abort, restarting the same session
// id must use a fresh attempt number, so in-flight traffic of the aborted
// attempt is dropped instead of poisoning the new run's duplicate
// suppression.
func TestAbortRestartFreshAttempt(t *testing.T) {
	ring := []string{"A", "B", "C"}
	nodes := buildNodes(t, ring)
	sid := "s"

	// Attempt 0: start everyone and capture A's round-1 broadcast as the
	// straggler that will arrive late.
	var staleFromA engine.Outbound
	for _, id := range ring {
		outs, _, err := nodes[id].mc.StartInitial(sid, ring)
		if err != nil {
			t.Fatal(err)
		}
		if id == "A" {
			staleFromA = outs[0]
		}
	}
	// The attempt is abandoned (e.g. a lost message elsewhere).
	for _, id := range ring {
		nodes[id].mc.Abort(sid)
	}

	// Attempt 1: fresh start; the straggler from attempt 0 arrives first
	// at B and must be ignored.
	b := newBus(t, nodes, ring)
	if outs, _ := nodes["B"].mc.Step(msgOf("A", staleFromA)); len(outs) != 0 {
		t.Fatal("stale-attempt traffic provoked a reaction")
	}
	for _, id := range ring {
		b.start(id, func(mc *engine.Machine) ([]engine.Outbound, []engine.Event, error) {
			return mc.StartInitial(sid, ring)
		})
	}
	b.pump()
	assertSession(t, nodes, ring, sid)
}
